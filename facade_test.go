package repro_test

import (
	"testing"

	"repro"
)

// TestFacadeEndToEnd exercises the public API the way the README quickstart
// does: bootstrap, focused writes, subjective reads, history, a process
// pipeline and a deferred aggregate.
func TestFacadeEndToEnd(t *testing.T) {
	k, err := repro.Bootstrap(repro.Options{Node: "facade", Units: 2}, repro.StandardTypes()...)
	if err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}
	defer k.Close()

	acct := repro.Key{Type: "Account", ID: "ACC-1"}
	if _, err := k.Update(acct,
		repro.Set("owner", "Ada"),
		repro.Delta("balance", 250).Described("opening deposit"),
	); err != nil {
		t.Fatalf("Update: %v", err)
	}
	st, err := k.Read(acct)
	if err != nil || st.Float("balance") != 250 || st.StringField("owner") != "Ada" {
		t.Fatalf("Read: %+v %v", st, err)
	}
	h, err := k.History(acct)
	if err != nil || h.Len() != 1 {
		t.Fatalf("History: %v %v", h, err)
	}

	// Process pipeline through the facade types.
	def := repro.NewProcess("pay")
	def.Step("account.charge", func(ctx *repro.StepContext) error {
		return ctx.Txn.Update(ctx.Event.Entity, repro.Delta("balance", -50).Described("charge"))
	})
	if err := k.DefineProcess(def); err != nil {
		t.Fatal(err)
	}
	if err := k.Submit(repro.Event{Name: "account.charge", Entity: acct, TxnID: "charge-1"}); err != nil {
		t.Fatal(err)
	}
	if steps := k.Drain(); steps != 1 {
		t.Fatalf("Drain = %d", steps)
	}
	st, _ = k.Read(acct)
	if st.Float("balance") != 200 {
		t.Fatalf("balance = %v, want 200", st.Float("balance"))
	}

	// Deferred aggregate.
	k.DefineSumAggregate("balances", "Account", "balance", "")
	k.CatchUpAggregates()
	total, err := k.Sum("balances", "")
	if err != nil || total != 200 {
		t.Fatalf("Sum = %v %v", total, err)
	}
}

// TestFacadeTentativePromise exercises the apology-oriented API.
func TestFacadeTentativePromise(t *testing.T) {
	k, err := repro.Bootstrap(repro.Options{Node: "facade2"}, repro.StandardTypes()...)
	if err != nil {
		t.Fatal(err)
	}
	defer k.Close()
	book := repro.Key{Type: "Book", ID: "b1"}
	k.Update(book, repro.Set("stock", 1))
	p, err := k.UpdateTentative(book, "alice", "order-confirmation", 1, repro.Delta("stock", -1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.BreakPromise(p.ID, "warehouse fire", "refund"); err != nil {
		t.Fatal(err)
	}
	st, _ := k.Read(book)
	if st.Int("stock") != 1 {
		t.Fatalf("withdrawn reservation still visible: %d", st.Int("stock"))
	}
	if len(k.Ledger().Apologies()) != 1 {
		t.Fatal("no apology recorded")
	}
}
