// Package metrics provides the measurement primitives used by the benchmark
// harness: latency histograms, throughput counters, availability windows,
// staleness probes and simple table/series printers.
//
// The paper has no quantitative evaluation, so every experiment in this
// repository reports the measures the paper argues about in prose: response
// time (user experience, section 3.2), throughput and parallelism (2.5, 2.6),
// availability (2.11), apology counts (2.9), conflict/lost-update counts
// (2.10) and staleness of secondary data (2.3).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-boundary latency histogram with power-of-two style
// bucketing from 1µs to ~17s. It is safe for concurrent use and allocation
// free on the record path.
type Histogram struct {
	counts [bucketCount]atomic.Uint64
	sum    atomic.Int64 // nanoseconds
	min    atomic.Int64
	max    atomic.Int64
}

const bucketCount = 48

// bucketFor maps a duration to a bucket index. Buckets are quarter-powers of
// two starting at 1µs, giving ~19% resolution across six decades.
func bucketFor(d time.Duration) int {
	ns := d.Nanoseconds()
	if ns < 1000 {
		return 0
	}
	// log2(ns/1000) * 4 quarter steps.
	idx := int(math.Log2(float64(ns)/1000.0) * 2)
	if idx < 0 {
		idx = 0
	}
	if idx >= bucketCount {
		idx = bucketCount - 1
	}
	return idx
}

// bucketUpper returns the representative upper bound of bucket i.
func bucketUpper(i int) time.Duration {
	ns := 1000.0 * math.Pow(2, float64(i+1)/2)
	return time.Duration(ns)
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxInt64)
	return h
}

// Record adds one observation.
func (h *Histogram) Record(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.counts[bucketFor(d)].Add(1)
	h.sum.Add(d.Nanoseconds())
	for {
		cur := h.min.Load()
		if d.Nanoseconds() >= cur || h.min.CompareAndSwap(cur, d.Nanoseconds()) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if d.Nanoseconds() <= cur || h.max.CompareAndSwap(cur, d.Nanoseconds()) {
			break
		}
	}
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 {
	var total uint64
	for i := range h.counts {
		total += h.counts[i].Load()
	}
	return total
}

// Mean returns the mean latency, or zero when empty.
func (h *Histogram) Mean() time.Duration {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return time.Duration(uint64(h.sum.Load()) / n)
}

// Min returns the smallest recorded value (zero when empty).
func (h *Histogram) Min() time.Duration {
	if h.Count() == 0 {
		return 0
	}
	return time.Duration(h.min.Load())
}

// Max returns the largest recorded value.
func (h *Histogram) Max() time.Duration { return time.Duration(h.max.Load()) }

// Quantile returns an upper-bound estimate of the q-quantile (0 < q <= 1).
func (h *Histogram) Quantile(q float64) time.Duration {
	n := h.Count()
	if n == 0 {
		return 0
	}
	if q <= 0 {
		return h.Min()
	}
	if q > 1 {
		q = 1
	}
	target := uint64(math.Ceil(q * float64(n)))
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= target {
			return bucketUpper(i)
		}
	}
	return h.Max()
}

// Snapshot is an immutable summary of a histogram.
type Snapshot struct {
	Count          uint64
	Mean, Min, Max time.Duration
	P50, P95, P99  time.Duration
}

// Snapshot returns summary statistics.
func (h *Histogram) Snapshot() Snapshot {
	return Snapshot{
		Count: h.Count(),
		Mean:  h.Mean(),
		Min:   h.Min(),
		Max:   h.Max(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
}

// String renders the snapshot compactly.
func (s Snapshot) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v max=%v",
		s.Count, s.Mean.Round(time.Microsecond), s.P50.Round(time.Microsecond),
		s.P95.Round(time.Microsecond), s.P99.Round(time.Microsecond), s.Max.Round(time.Microsecond))
}

// Counter is a monotonically increasing concurrent counter.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge holds an instantaneous signed value.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Throughput measures completed operations over a wall-clock window.
type Throughput struct {
	ops   Counter
	start time.Time
	nowFn func() time.Time
}

// NewThroughput starts a throughput meter using the real clock.
func NewThroughput() *Throughput { return NewThroughputWithSource(time.Now) }

// NewThroughputWithSource starts a throughput meter reading time from nowFn.
func NewThroughputWithSource(nowFn func() time.Time) *Throughput {
	if nowFn == nil {
		nowFn = time.Now
	}
	return &Throughput{start: nowFn(), nowFn: nowFn}
}

// Done records n completed operations.
func (t *Throughput) Done(n uint64) { t.ops.Add(n) }

// Ops returns the number of operations recorded so far.
func (t *Throughput) Ops() uint64 { return t.ops.Value() }

// PerSecond returns the operation rate since construction.
func (t *Throughput) PerSecond() float64 {
	elapsed := t.nowFn().Sub(t.start).Seconds()
	if elapsed <= 0 {
		return 0
	}
	return float64(t.ops.Value()) / elapsed
}

// Availability tracks request outcomes so experiments can report the fraction
// of requests served successfully during failures (principle 2.11: "the show
// must go on").
type Availability struct {
	success Counter
	failure Counter
	timeout Counter
}

// Success records a served request.
func (a *Availability) Success() { a.success.Inc() }

// Failure records a rejected or errored request.
func (a *Availability) Failure() { a.failure.Inc() }

// Timeout records a request abandoned due to unavailability.
func (a *Availability) Timeout() { a.timeout.Inc() }

// Total returns the total number of recorded requests.
func (a *Availability) Total() uint64 {
	return a.success.Value() + a.failure.Value() + a.timeout.Value()
}

// Ratio returns the fraction of requests that succeeded (1.0 when no
// requests were recorded, since no user was ever turned away).
func (a *Availability) Ratio() float64 {
	total := a.Total()
	if total == 0 {
		return 1.0
	}
	return float64(a.success.Value()) / float64(total)
}

// Counts returns (success, failure, timeout).
func (a *Availability) Counts() (uint64, uint64, uint64) {
	return a.success.Value(), a.failure.Value(), a.timeout.Value()
}

// StalenessProbe records how far secondary/replicated data lags behind the
// primary, as both a duration and a count of missing updates (principle 2.3).
type StalenessProbe struct {
	mu       sync.Mutex
	lags     []time.Duration
	missing  []int
	maxLag   time.Duration
	maxMiss  int
	observed int
}

// Observe records one staleness measurement.
func (p *StalenessProbe) Observe(lag time.Duration, missingUpdates int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.lags = append(p.lags, lag)
	p.missing = append(p.missing, missingUpdates)
	if lag > p.maxLag {
		p.maxLag = lag
	}
	if missingUpdates > p.maxMiss {
		p.maxMiss = missingUpdates
	}
	p.observed++
}

// Summary returns (observations, mean lag, max lag, mean missing, max missing).
func (p *StalenessProbe) Summary() (int, time.Duration, time.Duration, float64, int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.observed == 0 {
		return 0, 0, 0, 0, 0
	}
	var lagSum time.Duration
	for _, l := range p.lags {
		lagSum += l
	}
	var missSum int
	for _, m := range p.missing {
		missSum += m
	}
	return p.observed,
		lagSum / time.Duration(p.observed),
		p.maxLag,
		float64(missSum) / float64(p.observed),
		p.maxMiss
}

// Registry is a named collection of metric instruments, used by the kernel to
// expose per-node measurements to the harness and the HTTP server.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = NewHistogram()
		r.histograms[name] = h
	}
	return h
}

// Dump renders every instrument, sorted by name, one per line.
func (r *Registry) Dump() string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var lines []string
	for name, c := range r.counters {
		lines = append(lines, fmt.Sprintf("counter %s = %d", name, c.Value()))
	}
	for name, g := range r.gauges {
		lines = append(lines, fmt.Sprintf("gauge %s = %d", name, g.Value()))
	}
	for name, h := range r.histograms {
		lines = append(lines, fmt.Sprintf("histogram %s: %s", name, h.Snapshot()))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// Table accumulates experiment results and renders them in the aligned
// plain-text form the benchmark harness prints (one table per experiment,
// mirroring how the paper's evaluation section would have presented them).
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
	mu      sync.Mutex
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(values ...interface{}) {
	t.mu.Lock()
	defer t.mu.Unlock()
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			row[i] = formatFloat(x)
		case time.Duration:
			row[i] = x.Round(time.Microsecond).String()
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// Rows returns a copy of the accumulated rows.
func (t *Table) Rows() [][]string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([][]string, len(t.rows))
	for i, r := range t.rows {
		out[i] = append([]string(nil), r...)
	}
	return out
}

func formatFloat(f float64) string {
	switch {
	case f == math.Trunc(f) && math.Abs(f) < 1e12:
		return fmt.Sprintf("%.0f", f)
	case math.Abs(f) >= 100:
		return fmt.Sprintf("%.1f", f)
	default:
		return fmt.Sprintf("%.3f", f)
	}
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString("== " + t.Title + " ==\n")
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(widths) && len(cell) < widths[i] {
				b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Series is a labelled (x, y) sequence used for figure-style outputs
// (e.g. latency vs partition duration, convergence time vs replica count).
type Series struct {
	Name   string
	XLabel string
	YLabel string
	mu     sync.Mutex
	xs     []float64
	ys     []float64
}

// NewSeries creates an empty series.
func NewSeries(name, xLabel, yLabel string) *Series {
	return &Series{Name: name, XLabel: xLabel, YLabel: yLabel}
}

// Add appends one point.
func (s *Series) Add(x, y float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.xs = append(s.xs, x)
	s.ys = append(s.ys, y)
}

// Points returns copies of the x and y slices.
func (s *Series) Points() ([]float64, []float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]float64(nil), s.xs...), append([]float64(nil), s.ys...)
}

// Len returns the number of points.
func (s *Series) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.xs)
}

// String renders the series as "name: (x,y) (x,y) ...".
func (s *Series) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var b strings.Builder
	fmt.Fprintf(&b, "%s [%s vs %s]:", s.Name, s.YLabel, s.XLabel)
	for i := range s.xs {
		fmt.Fprintf(&b, " (%s,%s)", formatFloat(s.xs[i]), formatFloat(s.ys[i]))
	}
	return b.String()
}

// Stopwatch measures a single interval; a tiny convenience used in examples.
type Stopwatch struct {
	start time.Time
	nowFn func() time.Time
}

// StartStopwatch begins timing with the real clock.
func StartStopwatch() *Stopwatch {
	return &Stopwatch{start: time.Now(), nowFn: time.Now}
}

// Elapsed returns the time since the stopwatch was started.
func (s *Stopwatch) Elapsed() time.Duration { return s.nowFn().Sub(s.start) }
