package metrics

import (
	"encoding/json"
	"fmt"
	"os"
)

// TableJSON is the serialized shape of one experiment table in a
// BENCH_*.json trajectory file. Rows carry the already-formatted cell
// strings (durations rounded, floats trimmed) so a diff between two PRs'
// files reads the same as a diff between their plain-text tables. Both
// cmd/benchharness (E1..E22) and cmd/soupsbench (E23) emit this shape.
type TableJSON struct {
	Experiment string     `json:"experiment"`
	Title      string     `json:"title"`
	Columns    []string   `json:"columns"`
	Rows       [][]string `json:"rows"`
}

// TableAsJSON snapshots a Table under an experiment label.
func TableAsJSON(experiment string, t *Table) TableJSON {
	return TableJSON{
		Experiment: experiment,
		Title:      t.Title,
		Columns:    t.Columns,
		Rows:       t.Rows(),
	}
}

// WriteTablesJSON writes the collected tables to path as indented JSON with
// a trailing newline, the trajectory-file convention.
func WriteTablesJSON(path string, tables []TableJSON) error {
	raw, err := json.MarshalIndent(tables, "", "  ")
	if err != nil {
		return fmt.Errorf("marshal tables: %w", err)
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}
