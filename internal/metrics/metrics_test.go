package metrics

import (
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramBasicStats(t *testing.T) {
	h := NewHistogram()
	for _, d := range []time.Duration{time.Millisecond, 2 * time.Millisecond, 3 * time.Millisecond} {
		h.Record(d)
	}
	if h.Count() != 3 {
		t.Fatalf("Count = %d, want 3", h.Count())
	}
	if h.Mean() != 2*time.Millisecond {
		t.Fatalf("Mean = %v, want 2ms", h.Mean())
	}
	if h.Min() != time.Millisecond {
		t.Fatalf("Min = %v, want 1ms", h.Min())
	}
	if h.Max() != 3*time.Millisecond {
		t.Fatalf("Max = %v, want 3ms", h.Max())
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Quantile(0.99) != 0 {
		t.Fatalf("empty histogram should report zeros: %+v", h.Snapshot())
	}
}

func TestHistogramNegativeDurationClamped(t *testing.T) {
	h := NewHistogram()
	h.Record(-time.Second)
	if h.Count() != 1 {
		t.Fatalf("negative duration should still count")
	}
	if h.Max() != 0 {
		t.Fatalf("negative duration should clamp to 0, got %v", h.Max())
	}
}

func TestHistogramQuantileOrdering(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	p50, p95, p99 := h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99)
	if p50 > p95 || p95 > p99 {
		t.Fatalf("quantiles out of order: p50=%v p95=%v p99=%v", p50, p95, p99)
	}
	// The bucket resolution is ~19%, so p99 of a uniform 1..1000µs load must
	// land within a factor of 2 of the true value (990µs).
	if p99 < 700*time.Microsecond || p99 > 2*time.Millisecond {
		t.Fatalf("p99 = %v outside plausible range", p99)
	}
}

func TestHistogramQuantileBounds(t *testing.T) {
	h := NewHistogram()
	h.Record(5 * time.Millisecond)
	if got := h.Quantile(0); got != h.Min() {
		t.Fatalf("Quantile(0) = %v, want Min %v", got, h.Min())
	}
	if got := h.Quantile(2); got == 0 {
		t.Fatalf("Quantile(>1) should clamp, got 0")
	}
}

func TestHistogramConcurrentRecord(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	const goroutines, per = 8, 1000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Record(time.Duration(g*per+i) * time.Microsecond)
			}
		}(g)
	}
	wg.Wait()
	if h.Count() != goroutines*per {
		t.Fatalf("Count = %d, want %d", h.Count(), goroutines*per)
	}
}

// Property: quantile estimates never exceed the recorded maximum by more than
// one bucket width and are never below the minimum.
func TestHistogramQuantileWithinBounds(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		h := NewHistogram()
		var maxSeen time.Duration
		for _, r := range raw {
			d := time.Duration(r) * time.Microsecond
			if d > maxSeen {
				maxSeen = d
			}
			h.Record(d)
		}
		q := h.Quantile(0.5)
		return q >= h.Min() && q <= 2*maxSeen+2*time.Microsecond
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotString(t *testing.T) {
	h := NewHistogram()
	h.Record(time.Millisecond)
	s := h.Snapshot().String()
	if !strings.Contains(s, "n=1") || !strings.Contains(s, "p99=") {
		t.Fatalf("snapshot string missing fields: %q", s)
	}
}

func TestCounterAndGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("Counter = %d, want 5", c.Value())
	}
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if g.Value() != 7 {
		t.Fatalf("Gauge = %d, want 7", g.Value())
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 16000 {
		t.Fatalf("Counter = %d, want 16000", c.Value())
	}
}

func TestThroughput(t *testing.T) {
	now := time.Unix(0, 0)
	tp := NewThroughputWithSource(func() time.Time { return now })
	tp.Done(100)
	now = now.Add(2 * time.Second)
	if got := tp.PerSecond(); got != 50 {
		t.Fatalf("PerSecond = %v, want 50", got)
	}
	if tp.Ops() != 100 {
		t.Fatalf("Ops = %d, want 100", tp.Ops())
	}
}

func TestThroughputZeroElapsed(t *testing.T) {
	now := time.Unix(0, 0)
	tp := NewThroughputWithSource(func() time.Time { return now })
	tp.Done(10)
	if got := tp.PerSecond(); got != 0 {
		t.Fatalf("PerSecond with zero elapsed = %v, want 0", got)
	}
}

func TestAvailability(t *testing.T) {
	var a Availability
	if a.Ratio() != 1.0 {
		t.Fatalf("empty availability should be 1.0, got %v", a.Ratio())
	}
	for i := 0; i < 9; i++ {
		a.Success()
	}
	a.Failure()
	if a.Ratio() != 0.9 {
		t.Fatalf("Ratio = %v, want 0.9", a.Ratio())
	}
	a.Timeout()
	s, f, to := a.Counts()
	if s != 9 || f != 1 || to != 1 {
		t.Fatalf("Counts = %d,%d,%d", s, f, to)
	}
	if a.Total() != 11 {
		t.Fatalf("Total = %d, want 11", a.Total())
	}
}

func TestStalenessProbe(t *testing.T) {
	var p StalenessProbe
	p.Observe(10*time.Millisecond, 2)
	p.Observe(30*time.Millisecond, 6)
	n, meanLag, maxLag, meanMiss, maxMiss := p.Summary()
	if n != 2 {
		t.Fatalf("n = %d, want 2", n)
	}
	if meanLag != 20*time.Millisecond {
		t.Fatalf("meanLag = %v, want 20ms", meanLag)
	}
	if maxLag != 30*time.Millisecond {
		t.Fatalf("maxLag = %v", maxLag)
	}
	if meanMiss != 4 || maxMiss != 6 {
		t.Fatalf("miss stats = %v, %v", meanMiss, maxMiss)
	}
}

func TestStalenessProbeEmpty(t *testing.T) {
	var p StalenessProbe
	n, _, _, _, _ := p.Summary()
	if n != 0 {
		t.Fatalf("empty probe n = %d", n)
	}
}

func TestRegistryReturnsSameInstrument(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("txn.commits")
	c1.Inc()
	c2 := r.Counter("txn.commits")
	if c2.Value() != 1 {
		t.Fatalf("registry returned a different counter instance")
	}
	g := r.Gauge("queue.depth")
	g.Set(4)
	if r.Gauge("queue.depth").Value() != 4 {
		t.Fatal("registry returned a different gauge instance")
	}
	h := r.Histogram("latency")
	h.Record(time.Millisecond)
	if r.Histogram("latency").Count() != 1 {
		t.Fatal("registry returned a different histogram instance")
	}
}

func TestRegistryDump(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Inc()
	r.Gauge("b").Set(2)
	r.Histogram("c").Record(time.Millisecond)
	dump := r.Dump()
	for _, want := range []string{"counter a = 1", "gauge b = 2", "histogram c"} {
		if !strings.Contains(dump, want) {
			t.Errorf("dump missing %q:\n%s", want, dump)
		}
	}
}

func TestRegistryConcurrentAccess(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				r.Counter("shared").Inc()
				r.Histogram("lat").Record(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if r.Counter("shared").Value() != 1600 {
		t.Fatalf("shared counter = %d, want 1600", r.Counter("shared").Value())
	}
}

func TestTableRendering(t *testing.T) {
	tbl := NewTable("E1: sync vs deferred", "writers", "mode", "ops/sec", "p99")
	tbl.AddRow(8, "sync", 1234.5678, 40*time.Millisecond)
	tbl.AddRow(8, "deferred", 9999.0, 2*time.Millisecond)
	out := tbl.String()
	if !strings.Contains(out, "E1: sync vs deferred") {
		t.Fatalf("missing title:\n%s", out)
	}
	if !strings.Contains(out, "deferred") || !strings.Contains(out, "9999") {
		t.Fatalf("missing row data:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("unexpected line count %d:\n%s", len(lines), out)
	}
	if len(tbl.Rows()) != 2 {
		t.Fatalf("Rows() = %d, want 2", len(tbl.Rows()))
	}
}

func TestTableFloatFormatting(t *testing.T) {
	tbl := NewTable("", "v")
	tbl.AddRow(3.0)
	tbl.AddRow(1234.567)
	tbl.AddRow(0.12345)
	rows := tbl.Rows()
	if rows[0][0] != "3" {
		t.Errorf("integral float rendered as %q", rows[0][0])
	}
	if rows[1][0] != "1234.6" {
		t.Errorf("large float rendered as %q", rows[1][0])
	}
	if rows[2][0] != "0.123" {
		t.Errorf("small float rendered as %q", rows[2][0])
	}
}

func TestSeries(t *testing.T) {
	s := NewSeries("availability", "partition seconds", "success ratio")
	s.Add(0, 1.0)
	s.Add(5, 0.6)
	xs, ys := s.Points()
	if len(xs) != 2 || len(ys) != 2 || s.Len() != 2 {
		t.Fatalf("points not recorded")
	}
	if !strings.Contains(s.String(), "(5,0.600)") {
		t.Fatalf("series string missing point: %s", s.String())
	}
	// Mutating returned slices must not affect the series.
	xs[0] = 99
	nx, _ := s.Points()
	if nx[0] == 99 {
		t.Fatal("Points returned an aliased slice")
	}
}

func TestStopwatch(t *testing.T) {
	sw := StartStopwatch()
	if sw.Elapsed() < 0 {
		t.Fatal("elapsed negative")
	}
}
