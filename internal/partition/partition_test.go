package partition

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/entity"
)

func keys(n int) []entity.Key {
	out := make([]entity.Key, n)
	for i := range out {
		out[i] = entity.Key{Type: "Order", ID: fmt.Sprintf("O-%06d", i)}
	}
	return out
}

func TestHashLocatorNoUnits(t *testing.T) {
	l := NewHashLocator(8)
	if _, err := l.Locate(entity.Key{Type: "Order", ID: "1"}); !errors.Is(err, ErrNoUnits) {
		t.Fatalf("want ErrNoUnits, got %v", err)
	}
}

func TestHashLocatorDeterministic(t *testing.T) {
	l := NewHashLocator(16)
	for i := 0; i < 4; i++ {
		l.AddUnit(UnitID(fmt.Sprintf("u%d", i)))
	}
	k := entity.Key{Type: "Order", ID: "O-42"}
	first, err := l.Locate(k)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		u, _ := l.Locate(k)
		if u != first {
			t.Fatalf("location changed between calls: %s vs %s", u, first)
		}
	}
}

func TestHashLocatorAddRemoveUnit(t *testing.T) {
	l := NewHashLocator(16)
	if err := l.AddUnit("u1"); err != nil {
		t.Fatal(err)
	}
	if err := l.AddUnit("u1"); !errors.Is(err, ErrDuplicateUnit) {
		t.Fatalf("want ErrDuplicateUnit, got %v", err)
	}
	if err := l.RemoveUnit("missing"); !errors.Is(err, ErrUnknownUnit) {
		t.Fatalf("want ErrUnknownUnit, got %v", err)
	}
	l.AddUnit("u2")
	if len(l.Units()) != 2 {
		t.Fatalf("Units = %v", l.Units())
	}
	if err := l.RemoveUnit("u1"); err != nil {
		t.Fatal(err)
	}
	// All keys must now land on u2.
	for _, k := range keys(50) {
		u, err := l.Locate(k)
		if err != nil || u != "u2" {
			t.Fatalf("Locate after removal = %s, %v", u, err)
		}
	}
}

func TestHashLocatorBalance(t *testing.T) {
	l := NewHashLocator(128)
	const units = 4
	for i := 0; i < units; i++ {
		l.AddUnit(UnitID(fmt.Sprintf("u%d", i)))
	}
	ks := keys(4000)
	dist, err := Distribution(l, ks)
	if err != nil {
		t.Fatal(err)
	}
	if len(dist) != units {
		t.Fatalf("some units received no keys: %s", FormatDistribution(dist))
	}
	for u, n := range dist {
		share := float64(n) / float64(len(ks))
		if share < 0.10 || share > 0.45 {
			t.Fatalf("unit %s share %.2f badly imbalanced: %s", u, share, FormatDistribution(dist))
		}
	}
}

func TestHashLocatorMinimalRelocationOnGrowth(t *testing.T) {
	before := NewHashLocator(128)
	after := NewHashLocator(128)
	for i := 0; i < 4; i++ {
		before.AddUnit(UnitID(fmt.Sprintf("u%d", i)))
		after.AddUnit(UnitID(fmt.Sprintf("u%d", i)))
	}
	after.AddUnit("u4")
	frac, err := RelocatedFraction(before, after, keys(4000))
	if err != nil {
		t.Fatal(err)
	}
	// Ideal is 1/5 = 0.20; consistent hashing should stay well below a naive
	// rehash (which would move ~0.8).
	if frac > 0.40 {
		t.Fatalf("relocated fraction %.2f too high for consistent hashing", frac)
	}
	if frac == 0 {
		t.Fatal("adding a unit should relocate some keys")
	}
}

func TestRangeLocator(t *testing.T) {
	l := NewRangeLocator("")
	if err := l.AddRange(Range{Type: "Order", From: "", To: "M", Unit: "u1"}); err != nil {
		t.Fatal(err)
	}
	if err := l.AddRange(Range{Type: "Order", From: "M", To: "", Unit: "u2"}); err != nil {
		t.Fatal(err)
	}
	u, err := l.Locate(entity.Key{Type: "Order", ID: "Apple"})
	if err != nil || u != "u1" {
		t.Fatalf("Locate(Apple) = %s, %v", u, err)
	}
	u, _ = l.Locate(entity.Key{Type: "Order", ID: "Zebra"})
	if u != "u2" {
		t.Fatalf("Locate(Zebra) = %s", u)
	}
	// Boundary: "M" belongs to the upper range.
	u, _ = l.Locate(entity.Key{Type: "Order", ID: "M"})
	if u != "u2" {
		t.Fatalf("Locate(M) = %s", u)
	}
	if _, err := l.Locate(entity.Key{Type: "Customer", ID: "C1"}); err == nil {
		t.Fatal("undeclared type without fallback should fail")
	}
	if len(l.Units()) != 2 {
		t.Fatalf("Units = %v", l.Units())
	}
}

func TestRangeLocatorFallback(t *testing.T) {
	l := NewRangeLocator("default-unit")
	u, err := l.Locate(entity.Key{Type: "Customer", ID: "C1"})
	if err != nil || u != "default-unit" {
		t.Fatalf("fallback = %s, %v", u, err)
	}
	units := l.Units()
	if len(units) != 1 || units[0] != "default-unit" {
		t.Fatalf("Units = %v", units)
	}
}

func TestRangeLocatorOverlapRejected(t *testing.T) {
	l := NewRangeLocator("")
	l.AddRange(Range{Type: "Order", From: "A", To: "M", Unit: "u1"})
	if err := l.AddRange(Range{Type: "Order", From: "G", To: "T", Unit: "u2"}); err == nil {
		t.Fatal("overlapping range accepted")
	}
	if err := l.AddRange(Range{Type: "Order", From: "M", To: "T", Unit: "u2"}); err != nil {
		t.Fatalf("adjacent range rejected: %v", err)
	}
	if err := l.AddRange(Range{Type: "Order", From: "B", To: "C", Unit: ""}); err == nil {
		t.Fatal("range without unit accepted")
	}
	// Open-ended overlap.
	if err := l.AddRange(Range{Type: "Order", From: "S", To: "", Unit: "u3"}); err == nil {
		t.Fatal("open-ended overlapping range accepted")
	}
}

func TestRangeLocatorSplit(t *testing.T) {
	l := NewRangeLocator("")
	l.AddRange(Range{Type: "Order", From: "", To: "", Unit: "u1"})
	if err := l.SplitRange("Order", "M", "u2"); err != nil {
		t.Fatalf("SplitRange: %v", err)
	}
	u, _ := l.Locate(entity.Key{Type: "Order", ID: "Apple"})
	if u != "u1" {
		t.Fatalf("lower half = %s", u)
	}
	u, _ = l.Locate(entity.Key{Type: "Order", ID: "Zebra"})
	if u != "u2" {
		t.Fatalf("upper half = %s", u)
	}
	if len(l.Ranges("Order")) != 2 {
		t.Fatalf("Ranges = %+v", l.Ranges("Order"))
	}
	if err := l.SplitRange("Customer", "M", "u3"); err == nil {
		t.Fatal("splitting a type with no ranges should fail")
	}
}

func TestDirectoryPinning(t *testing.T) {
	l := NewHashLocator(16)
	l.AddUnit("u1")
	l.AddUnit("u2")
	d := NewDirectory(l)
	k := entity.Key{Type: "Order", ID: "hot-entity"}
	natural, err := d.Locate(k)
	if err != nil {
		t.Fatal(err)
	}
	other := UnitID("u1")
	if natural == "u1" {
		other = "u2"
	}
	d.Pin(k, other)
	got, _ := d.Locate(k)
	if got != other {
		t.Fatalf("pin not honoured: %s", got)
	}
	if d.Moves() != 1 {
		t.Fatalf("Moves = %d", d.Moves())
	}
	// Re-pinning to the same unit does not count as a move.
	d.Pin(k, other)
	if d.Moves() != 1 {
		t.Fatalf("Moves after redundant pin = %d", d.Moves())
	}
	d.Unpin(k)
	got, _ = d.Locate(k)
	if got != natural {
		t.Fatalf("unpin did not restore natural placement: %s", got)
	}
	if len(d.Units()) != 2 {
		t.Fatalf("Units = %v", d.Units())
	}
}

func TestDirectorySameUnit(t *testing.T) {
	l := NewHashLocator(16)
	l.AddUnit("u1")
	d := NewDirectory(l)
	same, err := d.SameUnit(entity.Key{Type: "Order", ID: "1"}, entity.Key{Type: "Order", ID: "2"})
	if err != nil || !same {
		t.Fatalf("single unit: same=%v err=%v", same, err)
	}
	l2 := NewHashLocator(16)
	d2 := NewDirectory(l2)
	if _, err := d2.SameUnit(entity.Key{Type: "Order", ID: "1"}, entity.Key{Type: "Order", ID: "2"}); err == nil {
		t.Fatal("SameUnit with no units should fail")
	}
}

func TestDistributionError(t *testing.T) {
	l := NewHashLocator(8)
	if _, err := Distribution(l, keys(3)); err == nil {
		t.Fatal("Distribution with no units should fail")
	}
	if _, err := RelocatedFraction(l, l, keys(3)); err == nil {
		t.Fatal("RelocatedFraction with no units should fail")
	}
	frac, err := RelocatedFraction(l, l, nil)
	if err != nil || frac != 0 {
		t.Fatalf("empty key list: %v %v", frac, err)
	}
}

// Property: every key always locates to exactly one unit that is a member of
// the ring, for any non-empty set of units.
func TestHashLocatorTotalAssignmentProperty(t *testing.T) {
	f := func(nUnits uint8, ids []string) bool {
		n := int(nUnits%6) + 1
		l := NewHashLocator(32)
		members := map[UnitID]bool{}
		for i := 0; i < n; i++ {
			u := UnitID(fmt.Sprintf("u%d", i))
			l.AddUnit(u)
			members[u] = true
		}
		for _, id := range ids {
			u, err := l.Locate(entity.Key{Type: "T", ID: id})
			if err != nil || !members[u] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: range splitting never loses coverage — after any sequence of
// splits, every key still locates somewhere.
func TestRangeSplitCoverageProperty(t *testing.T) {
	f := func(splitPoints []string, probes []string) bool {
		l := NewRangeLocator("")
		l.AddRange(Range{Type: "T", From: "", To: "", Unit: "u0"})
		for i, sp := range splitPoints {
			if sp == "" {
				continue
			}
			// Splits at a point outside any range are rejected but must not
			// corrupt coverage.
			_ = l.SplitRange("T", sp, UnitID(fmt.Sprintf("u%d", i+1)))
		}
		for _, p := range probes {
			if _, err := l.Locate(entity.Key{Type: "T", ID: p}); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
