// Package partition implements serialization units and dynamic entity
// location (principle 2.5 / section 3.1): "a single organization may
// partition data by entity type and key, where partitions are managed as
// separate serialization units with separate logs. Entity location is
// determined dynamically, e.g., by key range partitioning or with a dynamic
// hash table."
//
// The package provides both strategies — consistent hashing with virtual
// nodes and per-type key ranges — behind a common Locator interface, plus a
// Directory that supports adding and removing units at runtime and reports
// how many entities such a change relocates.
package partition

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"

	"repro/internal/entity"
)

// UnitID names one serialization unit (one LSDB with its own log and queues).
type UnitID string

// Common errors.
var (
	// ErrNoUnits is returned when locating a key while no units exist.
	ErrNoUnits = errors.New("partition: no serialization units")
	// ErrUnknownUnit is returned when removing or addressing a unit that is
	// not part of the directory.
	ErrUnknownUnit = errors.New("partition: unknown unit")
	// ErrDuplicateUnit is returned when adding a unit that already exists.
	ErrDuplicateUnit = errors.New("partition: duplicate unit")
)

// Locator maps an entity key to the serialization unit responsible for it.
type Locator interface {
	// Locate returns the unit owning the key.
	Locate(key entity.Key) (UnitID, error)
	// Units lists all units, sorted.
	Units() []UnitID
}

// HashLocator distributes keys over units with consistent hashing so that
// adding or removing a unit relocates only ~1/n of the keys.
type HashLocator struct {
	mu       sync.RWMutex
	replicas int
	ring     []uint32
	owner    map[uint32]UnitID
	units    map[UnitID]bool
}

// NewHashLocator creates a consistent-hash locator with the given number of
// virtual nodes per unit (defaults to 64 when <= 0).
func NewHashLocator(virtualNodes int) *HashLocator {
	if virtualNodes <= 0 {
		virtualNodes = 64
	}
	return &HashLocator{replicas: virtualNodes, owner: map[uint32]UnitID{}, units: map[UnitID]bool{}}
}

func hash32(s string) uint32 {
	h := fnv.New32a()
	_, _ = h.Write([]byte(s))
	return h.Sum32()
}

// AddUnit inserts a unit into the ring.
func (l *HashLocator) AddUnit(u UnitID) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.units[u] {
		return fmt.Errorf("%w: %s", ErrDuplicateUnit, u)
	}
	l.units[u] = true
	for i := 0; i < l.replicas; i++ {
		h := hash32(fmt.Sprintf("%s#%d", u, i))
		// In the (unlikely) event of a hash collision the later unit wins the
		// point; correctness only needs a deterministic owner.
		l.owner[h] = u
		l.ring = append(l.ring, h)
	}
	sort.Slice(l.ring, func(i, j int) bool { return l.ring[i] < l.ring[j] })
	return nil
}

// RemoveUnit removes a unit from the ring.
func (l *HashLocator) RemoveUnit(u UnitID) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.units[u] {
		return fmt.Errorf("%w: %s", ErrUnknownUnit, u)
	}
	delete(l.units, u)
	kept := l.ring[:0]
	for _, h := range l.ring {
		if l.owner[h] == u {
			delete(l.owner, h)
			continue
		}
		kept = append(kept, h)
	}
	l.ring = kept
	return nil
}

// Locate returns the unit owning the key.
func (l *HashLocator) Locate(key entity.Key) (UnitID, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if len(l.ring) == 0 {
		return "", ErrNoUnits
	}
	h := hash32(key.String())
	i := sort.Search(len(l.ring), func(i int) bool { return l.ring[i] >= h })
	if i == len(l.ring) {
		i = 0
	}
	return l.owner[l.ring[i]], nil
}

// Units lists all units, sorted.
func (l *HashLocator) Units() []UnitID {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make([]UnitID, 0, len(l.units))
	for u := range l.units {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// KeyShard maps an entity key to a stable shard index in [0, n). It is the
// intra-unit analogue of Locate: where a Locator spreads entities over
// serialization units, KeyShard spreads them over the lock-striped segments
// inside one unit's log store, so both layers agree on one hash function.
// n <= 1 always yields shard 0.
func KeyShard(key entity.Key, n int) int {
	if n <= 1 {
		return 0
	}
	return int(hash32(key.String()) % uint32(n))
}

// Range is one key range [From, To) assigned to a unit. An empty To means
// "to the end of the keyspace".
type Range struct {
	Type string
	From string
	To   string
	Unit UnitID
}

// contains reports whether the range covers the id.
func (r Range) contains(id string) bool {
	if id < r.From {
		return false
	}
	return r.To == "" || id < r.To
}

// RangeLocator assigns keys to units by per-type key ranges, the second
// strategy section 3.1 names. Ranges can be split and merged at runtime.
type RangeLocator struct {
	mu     sync.RWMutex
	ranges map[string][]Range // type -> sorted ranges
	// fallback owns keys of types with no declared ranges (empty disables).
	fallback UnitID
}

// NewRangeLocator creates an empty range locator. If fallback is non-empty,
// keys of undeclared types map to it instead of failing.
func NewRangeLocator(fallback UnitID) *RangeLocator {
	return &RangeLocator{ranges: map[string][]Range{}, fallback: fallback}
}

// AddRange declares a range. Ranges of one type must not overlap; the caller
// is expected to partition the keyspace (validated here).
func (l *RangeLocator) AddRange(r Range) error {
	if r.Unit == "" {
		return errors.New("partition: range needs a unit")
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, existing := range l.ranges[r.Type] {
		if rangesOverlap(existing, r) {
			return fmt.Errorf("partition: range [%s,%s) overlaps [%s,%s) for type %s",
				r.From, r.To, existing.From, existing.To, r.Type)
		}
	}
	l.ranges[r.Type] = append(l.ranges[r.Type], r)
	sort.Slice(l.ranges[r.Type], func(i, j int) bool { return l.ranges[r.Type][i].From < l.ranges[r.Type][j].From })
	return nil
}

func rangesOverlap(a, b Range) bool {
	aEndsBeforeB := a.To != "" && a.To <= b.From
	bEndsBeforeA := b.To != "" && b.To <= a.From
	return !(aEndsBeforeB || bEndsBeforeA)
}

// SplitRange splits the range containing splitAt for the type so that keys
// >= splitAt move to newUnit.
func (l *RangeLocator) SplitRange(typeName, splitAt string, newUnit UnitID) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	ranges := l.ranges[typeName]
	for i, r := range ranges {
		if r.contains(splitAt) {
			upper := Range{Type: typeName, From: splitAt, To: r.To, Unit: newUnit}
			ranges[i].To = splitAt
			l.ranges[typeName] = append(ranges, upper)
			sort.Slice(l.ranges[typeName], func(a, b int) bool { return l.ranges[typeName][a].From < l.ranges[typeName][b].From })
			return nil
		}
	}
	return fmt.Errorf("partition: no range of %s contains %q", typeName, splitAt)
}

// Locate returns the unit owning the key.
func (l *RangeLocator) Locate(key entity.Key) (UnitID, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	for _, r := range l.ranges[key.Type] {
		if r.contains(key.ID) {
			return r.Unit, nil
		}
	}
	if l.fallback != "" {
		return l.fallback, nil
	}
	return "", fmt.Errorf("%w: no range covers %s", ErrNoUnits, key)
}

// Units lists all units referenced by any range (plus the fallback), sorted.
func (l *RangeLocator) Units() []UnitID {
	l.mu.RLock()
	defer l.mu.RUnlock()
	seen := map[UnitID]bool{}
	if l.fallback != "" {
		seen[l.fallback] = true
	}
	for _, ranges := range l.ranges {
		for _, r := range ranges {
			seen[r.Unit] = true
		}
	}
	out := make([]UnitID, 0, len(seen))
	for u := range seen {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Ranges returns a copy of the declared ranges for a type, sorted by From.
func (l *RangeLocator) Ranges(typeName string) []Range {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return append([]Range(nil), l.ranges[typeName]...)
}

// Directory wraps a Locator with explicit overrides (pinned entities) and
// relocation accounting, giving the kernel one place to ask "which
// serialization unit owns this entity right now?".
type Directory struct {
	mu        sync.RWMutex
	locator   Locator
	overrides map[entity.Key]UnitID
	moves     uint64
}

// NewDirectory wraps a locator.
func NewDirectory(l Locator) *Directory {
	return &Directory{locator: l, overrides: map[entity.Key]UnitID{}}
}

// Locate returns the owning unit, honouring pins first.
func (d *Directory) Locate(key entity.Key) (UnitID, error) {
	d.mu.RLock()
	if u, ok := d.overrides[key]; ok {
		d.mu.RUnlock()
		return u, nil
	}
	d.mu.RUnlock()
	return d.locator.Locate(key)
}

// Pin forces a key onto a unit (dynamic relocation of a hot entity).
func (d *Directory) Pin(key entity.Key, unit UnitID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if cur, ok := d.overrides[key]; !ok || cur != unit {
		d.moves++
	}
	d.overrides[key] = unit
}

// Unpin removes a pin.
func (d *Directory) Unpin(key entity.Key) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.overrides, key)
}

// Moves returns how many explicit relocations have been recorded.
func (d *Directory) Moves() uint64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.moves
}

// Units delegates to the underlying locator.
func (d *Directory) Units() []UnitID { return d.locator.Units() }

// SameUnit reports whether two keys are currently co-located, which is what
// decides whether a transaction touching both would be local or distributed
// (principle 2.5).
func (d *Directory) SameUnit(a, b entity.Key) (bool, error) {
	ua, err := d.Locate(a)
	if err != nil {
		return false, err
	}
	ub, err := d.Locate(b)
	if err != nil {
		return false, err
	}
	return ua == ub, nil
}

// Distribution counts how many of the given keys land on each unit; the
// benchmark harness uses it to verify balanced placement.
func Distribution(l Locator, keys []entity.Key) (map[UnitID]int, error) {
	out := map[UnitID]int{}
	for _, k := range keys {
		u, err := l.Locate(k)
		if err != nil {
			return nil, err
		}
		out[u]++
	}
	return out, nil
}

// RelocatedFraction measures which fraction of keys change owner between two
// locators (e.g. before and after adding a unit).
func RelocatedFraction(before, after Locator, keys []entity.Key) (float64, error) {
	if len(keys) == 0 {
		return 0, nil
	}
	moved := 0
	for _, k := range keys {
		b, err := before.Locate(k)
		if err != nil {
			return 0, err
		}
		a, err := after.Locate(k)
		if err != nil {
			return 0, err
		}
		if a != b {
			moved++
		}
	}
	return float64(moved) / float64(len(keys)), nil
}

// FormatDistribution renders a distribution map deterministically for logs.
func FormatDistribution(dist map[UnitID]int) string {
	units := make([]string, 0, len(dist))
	for u := range dist {
		units = append(units, string(u))
	}
	sort.Strings(units)
	parts := make([]string, 0, len(units))
	for _, u := range units {
		parts = append(parts, fmt.Sprintf("%s=%d", u, dist[UnitID(u)]))
	}
	return strings.Join(parts, " ")
}
