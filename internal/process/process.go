// Package process implements the process-step engine of principles 2.4 and
// 2.6 (SOUPS): a business process is a series of steps connected by events;
// each step contains at most one transaction, which updates exactly one
// entity and may enqueue further events. The engine schedules steps from
// reliable queues, retries failed steps with idempotent re-delivery,
// supports non-transactional audit writes and post-rollback compensation
// actions, and implements the vertical and horizontal step-collapsing
// optimisations sketched in section 3.1.
//
// Scheduling is a work-stealing worker pool over per-entity serial lanes
// (pool.go): a dispatcher pulls events off the queue in per-entity enqueue
// order and hash-routes each one to its entity's lane; workers claim and
// steal whole lanes, never individual messages. Steps for different
// entities therefore run concurrently — the parallelism the paper's
// serialization units promise (2.5/2.6) — while every entity's steps,
// including retries, backoff redeliveries and same-entity vertically
// collapsed children, execute serially in enqueue order. That ordering is
// what lets idempotent consumers treat at-least-once delivery as effective
// exactly-once (the Helland recipe the paper cites in 2.4); the contract is
// written out in docs/CONCURRENCY.md and pinned by the ordering stress
// suite in order_test.go.
package process

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/entity"
	"repro/internal/queue"
	"repro/internal/txn"
)

// Common errors.
var (
	// ErrUnknownStep is returned when an event names a step no definition
	// handles.
	ErrUnknownStep = errors.New("process: no step handles event")
	// ErrDuplicateStep is returned when two definitions claim the same event.
	ErrDuplicateStep = errors.New("process: step already registered for event")
	// ErrStopped is returned by Submit after the engine stopped.
	ErrStopped = errors.New("process: engine stopped")
)

// StepContext is what a step handler works with: the triggering event, a
// transaction scoped to this step, and helpers for emitting follow-up events
// and auditing.
type StepContext struct {
	// Event is the event that triggered the step.
	Event queue.Event
	// Txn is the single transaction of this step (principle 2.4); the engine
	// commits it when the handler returns nil and aborts it otherwise.
	Txn *txn.Txn
	// Attempt is the delivery attempt number (1 for the first try).
	Attempt int

	engine  *Engine
	emitted []queue.Event
}

// Emit schedules a follow-up event. The event is only delivered if this
// step's transaction commits; the engine either enqueues it or — when
// vertical collapsing is enabled and the handler is local — executes the next
// step inline.
func (c *StepContext) Emit(ev queue.Event) {
	if ev.TxnID == "" {
		ev.TxnID = fmt.Sprintf("%s/%s#%d", c.Txn.ID(), ev.Name, len(c.emitted))
	}
	if ev.Deadline.IsZero() {
		// Follow-up steps inherit the triggering request's patience: if the
		// submitter stops waiting, the whole chain becomes droppable.
		ev.Deadline = c.Event.Deadline
	}
	c.emitted = append(c.emitted, ev)
}

// Audit writes a non-transactional audit line: it is retained even when the
// step's transaction rolls back ("there may be non-transactional writes,
// e.g., for auditing purposes, which should not be rolled back", 2.4).
func (c *StepContext) Audit(format string, args ...interface{}) {
	c.engine.audit(fmt.Sprintf(format, args...))
}

// Handler executes one process step.
type Handler func(*StepContext) error

// CompensationHandler runs after a step has exhausted its retries; it is
// infrastructure-generated, non-transactional work (post-rollback actions,
// principle 2.4).
type CompensationHandler func(ev queue.Event, attempts int, lastErr error)

// Definition declares a business process: which step runs for which event,
// and what to do when a step ultimately fails.
type Definition struct {
	Name  string
	steps map[string]Handler
	comp  map[string]CompensationHandler
}

// NewDefinition creates an empty process definition.
func NewDefinition(name string) *Definition {
	return &Definition{Name: name, steps: map[string]Handler{}, comp: map[string]CompensationHandler{}}
}

// Step registers the handler for an event name and returns the definition
// for chaining.
func (d *Definition) Step(eventName string, h Handler) *Definition {
	d.steps[eventName] = h
	return d
}

// OnFailure registers the compensation handler invoked when the step for
// eventName exhausts its retries.
func (d *Definition) OnFailure(eventName string, h CompensationHandler) *Definition {
	d.comp[eventName] = h
	return d
}

// Events returns the event names this definition handles, sorted.
func (d *Definition) Events() []string {
	out := make([]string, 0, len(d.steps))
	for e := range d.steps {
		out = append(out, e)
	}
	sort.Strings(out)
	return out
}

// Options configure an Engine.
type Options struct {
	// Workers is the size of the work-stealing pool Start launches (default
	// 1; experiment E19 sweeps this for the parallelism claims of 2.5/2.6).
	// Workers steal whole entity lanes, so any setting preserves per-entity
	// ordering; more workers only add cross-entity concurrency.
	Workers int
	// MaxAttempts is how many times a step is retried before compensation
	// (default 5).
	MaxAttempts int
	// RetryBackoff delays redelivery of a failed step (default 1ms).
	RetryBackoff time.Duration
	// TxnMode is the concurrency-control mode steps run under (default
	// Solipsistic, per principle 2.10).
	TxnMode txn.Mode
	// CollapseVertical executes events emitted by a step inline, in the same
	// worker, up to CollapseDepth levels, instead of going through the queue
	// (the "collapse steps vertically" optimisation of section 3.1). Each
	// collapsed step still runs its own transaction.
	CollapseVertical bool
	// CollapseDepth bounds vertical collapsing (default 8).
	CollapseDepth int
	// Topic is the queue topic the engine consumes (default "steps").
	Topic string
	// Route selects the queue an emitted event is delivered to (nil keeps it
	// on this engine's own queue). The kernel uses it to ship events to the
	// serialization unit owning the event's entity; enqueue remains a local
	// operation on that queue (principle 2.6).
	Route func(queue.Event) *queue.Queue
}

// Stats counts engine activity.
type Stats struct {
	StepsExecuted  uint64
	StepsFailed    uint64
	Retries        uint64
	Compensations  uint64
	Collapsed      uint64
	EventsEmitted  uint64
	AuditLines     uint64
	UnknownEvents  uint64
	EnqueuedEvents uint64
	// LaneSteals counts lanes an idle worker claimed from another worker's
	// run queue — the work-stealing that keeps all cores busy under skew.
	LaneSteals uint64
	// PeakLaneDepth is the most deliveries any single entity lane has held
	// at once: a high value means one entity dominates the workload and its
	// steps are (correctly) serialising.
	PeakLaneDepth uint64
	// KeyedDequeues counts deliveries a lane owner pulled straight off the
	// queue for its own entity (lane hinting), bypassing the dispatcher.
	KeyedDequeues uint64
	// DeadlineDropped counts deliveries discarded unexecuted because their
	// event deadline had passed by the time a worker reached them.
	DeadlineDropped uint64
	// LeaseRenewals counts visibility-lease renewals lane owners issued for
	// deliveries they were still holding.
	LeaseRenewals uint64
}

// Engine schedules process steps from a queue against one serialization
// unit's transaction manager. Start launches the work-stealing pool; Drain
// executes synchronously on the calling goroutine. Both preserve per-entity
// enqueue order.
type Engine struct {
	opts Options
	mgr  *txn.Manager
	q    *queue.Queue

	mu        sync.Mutex
	handlers  map[string]Handler
	comps     map[string]CompensationHandler
	stats     Stats
	auditLog  []string
	stopCh    chan struct{}
	stopped   bool
	pool      *pool           // non-nil once Start launched the worker pool
	completed map[string]bool // step identities already executed successfully
}

// NewEngine creates an engine executing steps against mgr, consuming from q.
func NewEngine(mgr *txn.Manager, q *queue.Queue, opts Options) *Engine {
	if opts.Workers <= 0 {
		opts.Workers = 1
	}
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = 5
	}
	if opts.RetryBackoff <= 0 {
		opts.RetryBackoff = time.Millisecond
	}
	if opts.CollapseDepth <= 0 {
		opts.CollapseDepth = 8
	}
	if opts.Topic == "" {
		opts.Topic = "steps"
	}
	return &Engine{
		opts:      opts,
		mgr:       mgr,
		q:         q,
		handlers:  map[string]Handler{},
		comps:     map[string]CompensationHandler{},
		stopCh:    make(chan struct{}),
		completed: map[string]bool{},
	}
}

// Register adds every step of the definition to the engine.
func (e *Engine) Register(def *Definition) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	for ev := range def.steps {
		if _, exists := e.handlers[ev]; exists {
			return fmt.Errorf("%w: %s", ErrDuplicateStep, ev)
		}
	}
	for ev, h := range def.steps {
		e.handlers[ev] = h
	}
	for ev, h := range def.comp {
		e.comps[ev] = h
	}
	return nil
}

// Submit enqueues an event that will trigger a process step.
func (e *Engine) Submit(ev queue.Event) error {
	e.mu.Lock()
	stopped := e.stopped
	e.mu.Unlock()
	if stopped {
		return ErrStopped
	}
	_, err := e.q.Enqueue(e.opts.Topic, ev)
	if err == nil {
		e.mu.Lock()
		e.stats.EnqueuedEvents++
		e.mu.Unlock()
	}
	return err
}

// Start launches the work-stealing worker pool: a dispatcher routing
// dequeued events onto per-entity serial lanes and Options.Workers workers
// claiming (and stealing) whole lanes. It is a no-op if the pool is already
// running or the engine stopped.
func (e *Engine) Start() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.pool != nil || e.stopped {
		return
	}
	e.pool = newPool(e, e.opts.Workers)
	e.pool.start()
}

// Stop terminates the pool after in-flight steps finish. Deliveries still
// waiting in lanes are abandoned un-acked (the engine is terminal after
// Stop); their effects either committed — and are recorded in the
// idempotence set — or never happened. It is safe to call more than once.
func (e *Engine) Stop() {
	e.mu.Lock()
	if e.stopped {
		e.mu.Unlock()
		return
	}
	e.stopped = true
	close(e.stopCh)
	p := e.pool
	e.mu.Unlock()
	if p != nil {
		p.stop()
	}
}

// Drain processes queued events synchronously on the calling goroutine until
// nothing is deliverable. It is what tests and single-threaded benchmarks
// use instead of Start/Stop. The ordered dequeue keeps per-entity enqueue
// order even here: an entity whose head delivery is backing off is held
// back entirely rather than having its later steps run first.
func (e *Engine) Drain() int {
	n := 0
	for {
		m, err := e.q.DequeueOrdered(e.opts.Topic)
		if errors.Is(err, queue.ErrEmpty) || errors.Is(err, queue.ErrClosed) {
			return n
		}
		if err != nil {
			return n
		}
		e.handleMessage(m)
		n++
	}
}

// handleMessage executes the step for one delivery on the synchronous Drain
// path, acking or nacking it. Retries round-trip through the queue here —
// with a single caller and the ordered dequeue that cannot reorder an
// entity's steps; the pool path instead retries inside the lane
// (runLaneDelivery).
func (e *Engine) handleMessage(m *queue.Message) {
	if e.pastDeadline(m.Event) {
		_ = e.q.Ack(m.ID)
		return
	}
	err := e.executeStep(m.Event, m.Attempts, e.opts.CollapseDepth, nil)
	switch {
	case err == nil:
		_ = e.q.Ack(m.ID)
	case errors.Is(err, ErrUnknownStep):
		// Nothing will ever handle it; dead-letter via compensation path.
		e.mu.Lock()
		e.stats.UnknownEvents++
		e.mu.Unlock()
		_ = e.q.Ack(m.ID)
	default:
		e.mu.Lock()
		e.stats.Retries++
		maxed := m.Attempts >= e.opts.MaxAttempts
		comp := e.comps[m.Event.Name]
		e.mu.Unlock()
		if maxed {
			if comp != nil {
				comp(m.Event, m.Attempts, err)
				e.mu.Lock()
				e.stats.Compensations++
				e.mu.Unlock()
			}
			_ = e.q.Ack(m.ID)
			return
		}
		_ = e.q.Nack(m.ID, e.opts.RetryBackoff)
	}
}

// runLaneDelivery executes one lane-owned delivery and classifies the
// outcome. It reports true when the delivery is terminal — executed,
// deduplicated, unknown, or dead-lettered through its compensation handler
// — and false when the lane should keep it at the head and back off.
func (e *Engine) runLaneDelivery(lm laneMsg, laneKey entity.Key) bool {
	if e.pastDeadline(lm.m.Event) {
		return true
	}
	err := e.executeStep(lm.m.Event, lm.attempts, e.opts.CollapseDepth, &laneKey)
	switch {
	case err == nil:
		return true
	case errors.Is(err, ErrUnknownStep):
		e.mu.Lock()
		e.stats.UnknownEvents++
		e.mu.Unlock()
		return true
	default:
		e.mu.Lock()
		e.stats.Retries++
		maxed := lm.attempts >= e.opts.MaxAttempts
		comp := e.comps[lm.m.Event.Name]
		e.mu.Unlock()
		if maxed {
			if comp != nil {
				comp(lm.m.Event, lm.attempts, err)
				e.mu.Lock()
				e.stats.Compensations++
				e.mu.Unlock()
			}
			return true
		}
		return false
	}
}

// pastDeadline reports (and counts) a delivery whose event deadline passed
// before execution: the queue drops expired work at dequeue, but a deadline
// can also expire while the delivery waits in a lane, so the engine
// re-checks immediately before running the step. The drop is terminal.
func (e *Engine) pastDeadline(ev queue.Event) bool {
	if ev.Deadline.IsZero() || !time.Now().After(ev.Deadline) {
		return false
	}
	e.mu.Lock()
	e.stats.DeadlineDropped++
	e.mu.Unlock()
	return true
}

// stepIdentity derives the idempotence key of one step execution.
func stepIdentity(ev queue.Event) string {
	if ev.TxnID == "" {
		return ""
	}
	return ev.Name + "|" + ev.TxnID
}

// executeStep runs the handler for one event inside its own transaction. If
// vertical collapsing is enabled, events emitted by the step whose handlers
// are known locally are executed inline (depth-limited); everything else
// goes through the queue. laneKey, when non-nil, is the entity lane this
// execution is serialised under: inline collapsing is then restricted to
// children of that same entity, because running another entity's step here
// would bypass that entity's lane and break its serial order.
func (e *Engine) executeStep(ev queue.Event, attempt, depth int, laneKey *entity.Key) error {
	e.mu.Lock()
	h, ok := e.handlers[ev.Name]
	already := e.completed[stepIdentity(ev)]
	e.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownStep, ev.Name)
	}
	// Idempotence: at-least-once delivery may hand us a step that already
	// executed successfully (same event identity); skip the re-delivery.
	if id := stepIdentity(ev); id != "" && already {
		return nil
	}
	t := e.mgr.Begin(e.opts.TxnMode)
	ctx := &StepContext{Event: ev, Txn: t, Attempt: attempt, engine: e}
	if err := h(ctx); err != nil {
		t.Abort()
		e.mu.Lock()
		e.stats.StepsFailed++
		e.mu.Unlock()
		return err
	}
	if _, err := t.Commit(nil); err != nil {
		e.mu.Lock()
		e.stats.StepsFailed++
		e.mu.Unlock()
		return err
	}
	e.mu.Lock()
	e.stats.StepsExecuted++
	e.stats.EventsEmitted += uint64(len(ctx.emitted))
	if id := stepIdentity(ev); id != "" {
		e.completed[id] = true
	}
	e.mu.Unlock()
	e.dispatch(ctx.emitted, depth, laneKey)
	return nil
}

// dispatch delivers events emitted by a committed step: inline when vertical
// collapsing applies, otherwise through the destination queue.
func (e *Engine) dispatch(events []queue.Event, depth int, laneKey *entity.Key) {
	for _, next := range events {
		target := e.q
		if e.opts.Route != nil {
			if routed := e.opts.Route(next); routed != nil {
				target = routed
			}
		}
		e.mu.Lock()
		_, local := e.handlers[next.Name]
		e.mu.Unlock()
		// Inline collapsing only applies when the next step runs on this very
		// unit; cross-unit events always travel through their owning queue.
		// Under the pool it is additionally restricted to the lane's own
		// entity: a collapsed child runs inside its parent's serialisation
		// slot, and only the lane owner may do that for this entity.
		sameLane := laneKey == nil || *laneKey == next.Entity
		if e.opts.CollapseVertical && depth > 0 && local && target == e.q && sameLane {
			e.mu.Lock()
			e.stats.Collapsed++
			e.mu.Unlock()
			if err := e.executeStep(next, 1, depth-1, laneKey); err == nil {
				continue
			}
			// Inline execution failed: fall back to the queue so the normal
			// retry machinery applies.
		}
		if _, err := target.Enqueue(e.opts.Topic, next); err == nil {
			e.mu.Lock()
			e.stats.EnqueuedEvents++
			e.mu.Unlock()
		}
	}
}

// HorizontalBatch groups pending events of one topic by entity and executes
// each group in a single transaction ("collapse process steps horizontally",
// section 3.1). Only events whose handler is registered participate; others
// are requeued. It returns the number of events absorbed into batches.
func (e *Engine) HorizontalBatch(maxEvents int) (int, error) {
	type pending struct {
		msg *queue.Message
	}
	byEntity := map[entity.Key][]pending{}
	var order []entity.Key
	taken := 0
	for taken < maxEvents {
		m, err := e.q.DequeueOrdered(e.opts.Topic)
		if errors.Is(err, queue.ErrEmpty) {
			break
		}
		if err != nil {
			return taken, err
		}
		e.mu.Lock()
		_, known := e.handlers[m.Event.Name]
		e.mu.Unlock()
		if !known {
			_ = e.q.Nack(m.ID, 0)
			continue
		}
		if _, ok := byEntity[m.Event.Entity]; !ok {
			order = append(order, m.Event.Entity)
		}
		byEntity[m.Event.Entity] = append(byEntity[m.Event.Entity], pending{msg: m})
		taken++
	}
	absorbed := 0
	for _, key := range order {
		group := byEntity[key]
		t := e.mgr.Begin(e.opts.TxnMode)
		var emitted []queue.Event
		failed := false
		for _, p := range group {
			e.mu.Lock()
			h := e.handlers[p.msg.Event.Name]
			e.mu.Unlock()
			ctx := &StepContext{Event: p.msg.Event, Txn: t, Attempt: p.msg.Attempts, engine: e}
			if err := h(ctx); err != nil {
				failed = true
				break
			}
			emitted = append(emitted, ctx.emitted...)
		}
		if failed {
			t.Abort()
			for _, p := range group {
				_ = e.q.Nack(p.msg.ID, e.opts.RetryBackoff)
			}
			continue
		}
		if _, err := t.Commit(nil); err != nil {
			for _, p := range group {
				_ = e.q.Nack(p.msg.ID, e.opts.RetryBackoff)
			}
			continue
		}
		for _, p := range group {
			_ = e.q.Ack(p.msg.ID)
		}
		absorbed += len(group)
		e.mu.Lock()
		e.stats.StepsExecuted++
		e.stats.Collapsed += uint64(len(group) - 1)
		e.stats.EventsEmitted += uint64(len(emitted))
		e.mu.Unlock()
		e.dispatch(emitted, 0, nil)
	}
	return absorbed, nil
}

// Stats returns a copy of the counters, including the pool's scheduling
// counters when Start has launched it.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	s := e.stats
	p := e.pool
	e.mu.Unlock()
	if p != nil {
		s.LaneSteals, s.PeakLaneDepth, s.KeyedDequeues, s.LeaseRenewals = p.snapshot()
	}
	return s
}

// AuditLog returns a copy of the non-transactional audit lines.
func (e *Engine) AuditLog() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]string(nil), e.auditLog...)
}

func (e *Engine) audit(line string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.auditLog = append(e.auditLog, line)
	e.stats.AuditLines++
}

// QueueDepth returns the number of events waiting in the engine's topic.
func (e *Engine) QueueDepth() int { return e.q.Len() }
