package process

// Deadline propagation and lane lease renewal: work that nobody is waiting
// for anymore is dropped instead of executed, and a lane owner working
// through a deep per-entity backlog renews the visibility leases of the
// messages it holds so they are not redelivered out from under it.

import (
	"sync"
	"testing"
	"time"

	"repro/internal/entity"
	"repro/internal/lsdb"
	"repro/internal/queue"
	"repro/internal/txn"
)

// newEngineWithQueue is newEngine with the queue under the test's control.
func newEngineWithQueue(t *testing.T, qopts queue.Options, opts Options) (*Engine, *txn.Manager, *queue.Queue) {
	t.Helper()
	db := lsdb.Open(lsdb.Options{Node: "u1", SnapshotEvery: 16, Validation: entity.Managed})
	for _, typ := range orderTypes() {
		if err := db.RegisterType(typ); err != nil {
			t.Fatal(err)
		}
	}
	mgr := txn.NewManager(db, nil, nil, txn.Options{Node: "u1", EnforceSingleEntity: true})
	q := queue.New("u1", qopts)
	e := NewEngine(mgr, q, opts)
	return e, mgr, q
}

// A deep lane over a short lease: without renewal the messages at the back
// of the lane would expire mid-backlog and be redelivered; with renewal each
// event runs exactly once and nothing is dead-lettered.
func TestLaneLeaseRenewalKeepsDeepBacklogClaimed(t *testing.T) {
	const n = 30
	// Lease 90ms, renewed every 30ms by the lane owner; the backlog takes
	// ~150ms to drain, so the original leases would expire partway through.
	e, _, q := newEngineWithQueue(t, queue.Options{VisibilityTimeout: 90 * time.Millisecond}, Options{Workers: 1})
	var mu sync.Mutex
	runs := map[string]int{}
	def := NewDefinition("slow-drain")
	def.Step("slow.step", func(ctx *StepContext) error {
		mu.Lock()
		runs[ctx.Event.TxnID]++
		mu.Unlock()
		time.Sleep(5 * time.Millisecond)
		return ctx.Txn.Update(ctx.Event.Entity, entity.Delta("total", 1))
	})
	if err := e.Register(def); err != nil {
		t.Fatal(err)
	}
	e.Start()
	for i := 0; i < n; i++ {
		if err := e.Submit(queue.Event{Name: "slow.step", Entity: orderKey("O1"), TxnID: "lease-" + string(rune('a'+i))}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && e.Stats().StepsExecuted < n {
		time.Sleep(5 * time.Millisecond)
	}
	e.Stop()

	mu.Lock()
	defer mu.Unlock()
	if len(runs) != n {
		t.Fatalf("executed %d distinct events, want %d", len(runs), n)
	}
	for txnID, c := range runs {
		if c != 1 {
			t.Fatalf("event %s ran %d times, want exactly once (lease expired mid-lane?)", txnID, c)
		}
	}
	if dead := q.DeadLetters(); len(dead) != 0 {
		t.Fatalf("%d messages dead-lettered during the backlog: %v", len(dead), dead)
	}
	if e.Stats().LeaseRenewals == 0 {
		t.Fatal("lane owner renewed no leases over a 150ms backlog on a 90ms visibility timeout")
	}
}

// An event whose deadline passed while it sat in a lane is dropped by the
// engine just before execution (the queue-side drop uses the queue's clock;
// here the queue's clock is frozen so only the engine check can fire).
func TestEngineDropsExpiredDeadlineBeforeExecution(t *testing.T) {
	frozen := time.Unix(0, 0)
	e, _, _ := newEngineWithQueue(t, queue.Options{Clock: func() time.Time { return frozen }}, Options{})
	ran := false
	def := NewDefinition("stale")
	def.Step("stale.step", func(ctx *StepContext) error {
		ran = true
		return nil
	})
	if err := e.Register(def); err != nil {
		t.Fatal(err)
	}
	ev := queue.Event{Name: "stale.step", Entity: orderKey("O1"), TxnID: "stale-1"}
	ev.Deadline = time.Now().Add(-time.Second)
	if err := e.Submit(ev); err != nil {
		t.Fatal(err)
	}
	e.Drain()
	if ran {
		t.Fatal("expired event was executed")
	}
	if got := e.Stats().DeadlineDropped; got != 1 {
		t.Fatalf("DeadlineDropped = %d, want 1", got)
	}
}

// Events emitted by a step inherit the parent's deadline unless they carry
// their own: the whole chain a request started shares the request's patience.
func TestEmitInheritsParentDeadline(t *testing.T) {
	e, _, _ := newEngineWithQueue(t, queue.Options{}, Options{})
	parentDeadline := time.Now().Add(time.Hour)
	ownDeadline := time.Now().Add(30 * time.Minute)
	var gotInherited, gotOwn time.Time
	def := NewDefinition("chain")
	def.Step("parent", func(ctx *StepContext) error {
		ctx.Emit(queue.Event{Name: "child.inherits", Entity: ctx.Event.Entity})
		own := queue.Event{Name: "child.own", Entity: ctx.Event.Entity}
		own.Deadline = ownDeadline
		ctx.Emit(own)
		return nil
	})
	def.Step("child.inherits", func(ctx *StepContext) error {
		gotInherited = ctx.Event.Deadline
		return nil
	})
	def.Step("child.own", func(ctx *StepContext) error {
		gotOwn = ctx.Event.Deadline
		return nil
	})
	if err := e.Register(def); err != nil {
		t.Fatal(err)
	}
	parent := queue.Event{Name: "parent", Entity: orderKey("O1"), TxnID: "p1"}
	parent.Deadline = parentDeadline
	if err := e.Submit(parent); err != nil {
		t.Fatal(err)
	}
	e.Drain()
	if !gotInherited.Equal(parentDeadline) {
		t.Fatalf("child deadline = %v, want inherited %v", gotInherited, parentDeadline)
	}
	if !gotOwn.Equal(ownDeadline) {
		t.Fatalf("child with own deadline = %v, want %v", gotOwn, ownDeadline)
	}
}
