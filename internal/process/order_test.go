package process

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/entity"
	"repro/internal/partition"
	"repro/internal/queue"
)

// recorder captures the per-entity sequence of successfully executed steps.
type recorder struct {
	mu   sync.Mutex
	seen map[entity.Key][]int
}

func newRecorder() *recorder { return &recorder{seen: map[entity.Key][]int{}} }

func (r *recorder) record(key entity.Key, seq int) {
	r.mu.Lock()
	r.seen[key] = append(r.seen[key], seq)
	r.mu.Unlock()
}

func (r *recorder) total() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, s := range r.seen {
		n += len(s)
	}
	return n
}

// TestPerEntityOrderingUnderConcurrentWritersAndRetries is the ordering
// stress suite of the work-stealing pool: N writer goroutines submit M
// entities' steps concurrently while every third step fails its first
// delivery (exercising the lane-park retry path), and the pool runs with
// more workers than entities' home slots. Each entity's observed execution
// sequence must equal its enqueue sequence exactly — the contract of
// docs/CONCURRENCY.md. Run under -race in CI.
func TestPerEntityOrderingUnderConcurrentWritersAndRetries(t *testing.T) {
	const (
		writers   = 4
		perWriter = 4  // entities per writer (disjoint, so enqueue order per entity is the writer's order)
		perEntity = 30 // steps per entity
		workers   = 8
	)
	e, _, _ := newEngine(t, Options{Workers: workers, MaxAttempts: 5, RetryBackoff: 200 * time.Microsecond})

	rec := newRecorder()
	var failedOnce sync.Map // "entity|seq" -> struct{}{}, to fail only the first delivery
	def := NewDefinition("ordered")
	def.Step("seq.step", func(ctx *StepContext) error {
		seq := ctx.Event.Data["seq"].(int)
		if seq%3 == 0 {
			id := ctx.Event.Entity.String() + "|" + fmt.Sprint(seq)
			if _, loaded := failedOnce.LoadOrStore(id, struct{}{}); !loaded {
				return errors.New("injected transient failure")
			}
		}
		if err := ctx.Txn.Update(ctx.Event.Entity, entity.Delta("total", 1)); err != nil {
			return err
		}
		rec.record(ctx.Event.Entity, seq)
		return nil
	})
	if err := e.Register(def); err != nil {
		t.Fatal(err)
	}

	e.Start()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each writer owns disjoint entities and submits each entity's
			// steps in sequence order, so enqueue order per entity is 0..N-1.
			for seq := 0; seq < perEntity; seq++ {
				for ent := 0; ent < perWriter; ent++ {
					key := orderKey(fmt.Sprintf("W%d-E%d", w, ent))
					ev := queue.Event{
						Name:   "seq.step",
						Entity: key,
						TxnID:  fmt.Sprintf("%s#%d", key.ID, seq),
						Data:   map[string]interface{}{"seq": seq},
					}
					if err := e.Submit(ev); err != nil {
						t.Errorf("Submit: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()

	want := writers * perWriter * perEntity
	deadline := time.Now().Add(30 * time.Second)
	for rec.total() < want {
		if time.Now().After(deadline) {
			t.Fatalf("timed out: %d/%d steps executed (stats %+v)", rec.total(), want, e.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	e.Stop()

	rec.mu.Lock()
	defer rec.mu.Unlock()
	if len(rec.seen) != writers*perWriter {
		t.Fatalf("entities observed = %d, want %d", len(rec.seen), writers*perWriter)
	}
	for key, got := range rec.seen {
		if len(got) != perEntity {
			t.Fatalf("%s executed %d steps, want %d", key, len(got), perEntity)
		}
		for i, seq := range got {
			if seq != i {
				t.Fatalf("%s reordered: position %d ran seq %d (full: %v)", key, i, seq, got)
			}
		}
	}
	stats := e.Stats()
	if stats.Retries == 0 {
		t.Fatal("injected failures never retried — the stress did not stress")
	}
}

// TestIdleWorkersStealLanes pins the stealing behaviour down
// deterministically: every submitted entity hashes to worker 0's run
// queue, so with 4 workers the other three can only make progress by
// stealing lanes — and the steal counter must show it.
func TestIdleWorkersStealLanes(t *testing.T) {
	const workers = 4
	e, mgr, _ := newEngine(t, Options{Workers: workers})
	def := NewDefinition("steal")
	def.Step("slow.step", func(ctx *StepContext) error {
		time.Sleep(2 * time.Millisecond) // long enough that lanes pile up on worker 0
		return ctx.Txn.Update(ctx.Event.Entity, entity.Delta("total", 1))
	})
	if err := e.Register(def); err != nil {
		t.Fatal(err)
	}

	// Collect entity keys that all home to worker 0.
	var keys []entity.Key
	for i := 0; len(keys) < 24; i++ {
		key := orderKey(fmt.Sprintf("H%d", i))
		if partition.KeyShard(key, workers) == 0 {
			keys = append(keys, key)
		}
	}
	for i, key := range keys {
		if err := e.Submit(queue.Event{Name: "slow.step", Entity: key, TxnID: fmt.Sprintf("s%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	e.Start()
	deadline := time.Now().Add(30 * time.Second)
	for e.Stats().StepsExecuted < uint64(len(keys)) {
		if time.Now().After(deadline) {
			t.Fatalf("timed out: %d/%d steps (stats %+v)", e.Stats().StepsExecuted, len(keys), e.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	e.Stop()
	stats := e.Stats()
	if stats.LaneSteals == 0 {
		t.Fatalf("no lanes were stolen with every lane homed to one worker: %+v", stats)
	}
	for _, key := range keys {
		st, _, err := mgr.DB().Current(key)
		if err != nil || st.Float("total") != 1 {
			t.Fatalf("%s = %v, %v", key, st, err)
		}
	}
}

// TestPoolCollapsesOnlySameEntityChildren verifies the lane-safety rule:
// under the pool, a vertically collapsed child may only run inline when it
// targets the parent's own entity; children of other entities go through
// the queue (and their own lanes).
func TestPoolCollapsesOnlySameEntityChildren(t *testing.T) {
	e, mgr, _ := newEngine(t, Options{Workers: 2, CollapseVertical: true})
	def := NewDefinition("chain")
	def.Step("parent.step", func(ctx *StepContext) error {
		if err := ctx.Txn.Update(ctx.Event.Entity, entity.Set("status", "PARENT")); err != nil {
			return err
		}
		// Same entity: eligible for inline collapse under the lane.
		ctx.Emit(queue.Event{Name: "same.child", Entity: ctx.Event.Entity})
		// Different entity: must travel through the queue.
		ctx.Emit(queue.Event{Name: "other.child", Entity: inventoryKey("widget")})
		return nil
	})
	def.Step("same.child", func(ctx *StepContext) error {
		return ctx.Txn.Update(ctx.Event.Entity, entity.Set("status", "CHILD"))
	})
	def.Step("other.child", func(ctx *StepContext) error {
		return ctx.Txn.Update(ctx.Event.Entity, entity.Delta("onhand", 1))
	})
	if err := e.Register(def); err != nil {
		t.Fatal(err)
	}
	e.Start()
	if err := e.Submit(queue.Event{Name: "parent.step", Entity: orderKey("O1"), TxnID: "p1"}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for e.Stats().StepsExecuted < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("timed out: stats %+v", e.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	e.Stop()
	stats := e.Stats()
	if stats.Collapsed != 1 {
		t.Fatalf("collapsed = %d, want exactly the same-entity child", stats.Collapsed)
	}
	order, _, _ := mgr.DB().Current(orderKey("O1"))
	if order.StringField("status") != "CHILD" {
		t.Fatalf("order status = %q", order.StringField("status"))
	}
	inv, _, _ := mgr.DB().Current(inventoryKey("widget"))
	if inv.Int("onhand") != 1 {
		t.Fatalf("inventory = %d", inv.Int("onhand"))
	}
}

// TestCompensationRunsAfterLaneRetriesExhausted exercises the lane-internal
// dead-letter path: a permanently failing step must park-and-retry
// MaxAttempts times and then hand the event to its compensation handler,
// without blocking the entity's later steps forever.
func TestCompensationRunsAfterLaneRetriesExhausted(t *testing.T) {
	e, mgr, _ := newEngine(t, Options{Workers: 2, MaxAttempts: 3, RetryBackoff: 100 * time.Microsecond})
	compCh := make(chan int, 1)
	def := NewDefinition("doomed")
	def.Step("doomed.step", func(ctx *StepContext) error {
		return errors.New("permanent failure")
	})
	def.OnFailure("doomed.step", func(ev queue.Event, attempts int, lastErr error) {
		compCh <- attempts
	})
	def.Step("after.step", func(ctx *StepContext) error {
		return ctx.Txn.Update(ctx.Event.Entity, entity.Set("status", "AFTER"))
	})
	if err := e.Register(def); err != nil {
		t.Fatal(err)
	}
	e.Start()
	key := orderKey("O1")
	e.Submit(queue.Event{Name: "doomed.step", Entity: key, TxnID: "d1"})
	e.Submit(queue.Event{Name: "after.step", Entity: key, TxnID: "a1"})
	var attempts int
	select {
	case attempts = <-compCh:
	case <-time.After(10 * time.Second):
		t.Fatalf("compensation never ran: %+v", e.Stats())
	}
	if attempts != 3 {
		t.Fatalf("compensation saw %d attempts, want 3", attempts)
	}
	// The later step for the same entity still executes — after the doomed
	// one resolved, never before it.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, _, err := mgr.DB().Current(key)
		if err == nil && st.StringField("status") == "AFTER" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("after.step never ran: %v, %v", st, err)
		}
		time.Sleep(time.Millisecond)
	}
	e.Stop()
	if got := e.Stats().Compensations; got != 1 {
		t.Fatalf("compensations = %d", got)
	}
}

// TestHotLaneYieldsToOtherLanes pins the fairness budget down: with one
// worker and a hot entity whose backlog exceeds laneBudget, a second
// entity's single step must run before the hot entity finishes — the hot
// lane yields at the budget instead of monopolising the worker.
func TestHotLaneYieldsToOtherLanes(t *testing.T) {
	const hotSteps = laneBudget + 40
	e, _, _ := newEngine(t, Options{Workers: 1})
	var hotDone atomic.Int32
	var hotWhenColdRan atomic.Int32
	coldRan := make(chan struct{})
	def := NewDefinition("fairness")
	def.Step("hot.step", func(ctx *StepContext) error {
		time.Sleep(50 * time.Microsecond)
		hotDone.Add(1)
		return ctx.Txn.Update(ctx.Event.Entity, entity.Delta("total", 1))
	})
	def.Step("cold.step", func(ctx *StepContext) error {
		hotWhenColdRan.Store(hotDone.Load())
		close(coldRan)
		return ctx.Txn.Update(ctx.Event.Entity, entity.Delta("total", 1))
	})
	if err := e.Register(def); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < hotSteps; i++ {
		e.Submit(queue.Event{Name: "hot.step", Entity: orderKey("HOT"), TxnID: fmt.Sprintf("h%d", i)})
	}
	e.Submit(queue.Event{Name: "cold.step", Entity: orderKey("COLD"), TxnID: "c0"})
	e.Start()
	select {
	case <-coldRan:
	case <-time.After(30 * time.Second):
		t.Fatalf("cold entity starved behind the hot lane: %+v", e.Stats())
	}
	deadline := time.Now().Add(30 * time.Second)
	for e.Stats().StepsExecuted < hotSteps+1 {
		if time.Now().After(deadline) {
			t.Fatalf("timed out: %+v", e.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	e.Stop()
	if got := hotWhenColdRan.Load(); got >= hotSteps {
		t.Fatalf("cold step ran only after all %d hot steps", hotSteps)
	}
}
