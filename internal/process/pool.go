// Work-stealing worker pool with per-entity serial lanes.
//
// The scheduling model (principles 2.5/2.6): steps for *different* entities
// may run concurrently — that is where the parallelism of serialization
// units comes from — but steps for the *same* entity must execute serially,
// in enqueue order, even across retries and redeliveries; the paper's
// at-least-once-plus-idempotence recipe only yields effective exactly-once
// when a single entity's steps are never reordered.
//
// The pool realises that contract with three pieces:
//
//   - A dispatcher pulls deliverable messages off the engine's queue with
//     queue.DequeueWaitOrdered — per-entity enqueue order, head-of-line
//     blocking per entity — and hash-routes each one onto its entity's
//     lane, creating the lane on first use.
//   - A lane is the serial execution queue of one entity key: deliveries
//     ordered by message ID (= enqueue order), owned by at most one worker
//     at a time. A step failure keeps the delivery at the lane head and
//     parks the whole lane for the retry backoff, so a retry can never be
//     overtaken by the entity's later steps.
//   - Workers claim whole lanes, never individual messages: each worker
//     prefers the run queue it is "home" to (partition.KeyShard of the
//     entity key), and an idle worker steals a lane from the tail of
//     another worker's run queue. Stealing moves the unit of serialisation,
//     so concurrency scales with cores while the ordering contract is
//     untouched.
//
// When a worker drains its lane empty it asks the queue for more work for
// that same entity first (queue.DequeueEntity, "lane hinting") before
// releasing the lane — a hot entity keeps flowing through one worker
// without a dispatcher round-trip per message.
package process

import (
	"errors"
	"sync"
	"time"

	"repro/internal/entity"
	"repro/internal/partition"
	"repro/internal/queue"
)

// laneMsg is one delivery owned by a lane. attempts counts executions of
// this delivery (lane-internal retries do not round-trip through the queue,
// so the queue's per-delivery counter alone would under-count).
type laneMsg struct {
	m        *queue.Message
	attempts int
}

// lane is the serial execution queue of one entity key. Where it lives is
// implied by ownership: on exactly one worker's run queue, held by exactly
// one draining worker, or parked (the one state that needs a flag, because
// the unpark timer must not requeue a lane that was already resumed).
type lane struct {
	key  entity.Key
	home int // preferred worker index: hash of the entity key
	// parked marks a lane waiting out a retry backoff; a timer requeues it.
	parked bool
	// lastRenew is when the owner last renewed the visibility leases of the
	// deliveries this lane holds (zero until the first drain touches it).
	lastRenew time.Time
	// notBefore delays the lane's next execution (retry backoff). The failed
	// delivery stays at the head of fifo, so the entity's later steps wait
	// behind it instead of overtaking it.
	notBefore time.Time
	fifo      []laneMsg // pending deliveries, ascending message ID
}

// pool is the engine's work-stealing scheduler.
type pool struct {
	e       *Engine
	workers int
	// renewEvery is the lease-renewal cadence: a lane owner refreshes the
	// visibility leases of the deliveries it holds every renewEvery while
	// draining, so a backlog deeper than one visibility timeout's worth of
	// work is neither reclaimed out from under the lane (redelivery thrash)
	// nor marched attempt by attempt into the dead-letter list.
	renewEvery time.Duration

	mu      sync.Mutex
	cond    *sync.Cond
	lanes   map[entity.Key]*lane
	runq    [][]*lane // per-worker queues of claimable lanes
	stopped bool
	wg      sync.WaitGroup

	// Counters surfaced through Engine.Stats.
	steals    uint64
	peakDepth uint64
	hints     uint64
	renewals  uint64
}

func newPool(e *Engine, workers int) *pool {
	p := &pool{
		e:          e,
		workers:    workers,
		renewEvery: e.q.VisibilityTimeout() / 3,
		lanes:      map[entity.Key]*lane{},
		runq:       make([][]*lane, workers),
	}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// start launches the dispatcher and the workers.
func (p *pool) start() {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		p.dispatchLoop()
	}()
	for w := 0; w < p.workers; w++ {
		w := w
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			p.workerLoop(w)
		}()
	}
}

// stop wakes every worker and waits for the dispatcher and workers to
// finish their current step. Deliveries still sitting in lanes stay leased
// on the queue; the engine is terminal after Stop, so they are simply
// abandoned (a restarted consumer would receive them again after the
// visibility timeout — at-least-once).
func (p *pool) stop() {
	p.mu.Lock()
	p.stopped = true
	p.cond.Broadcast()
	p.mu.Unlock()
	p.wg.Wait()
}

// dispatchLoop is the pool's intake: deliverable messages come off the
// queue in per-entity enqueue order and are hash-routed to their entity's
// lane.
func (p *pool) dispatchLoop() {
	for {
		select {
		case <-p.e.stopCh:
			return
		default:
		}
		m, err := p.e.q.DequeueWaitOrdered(p.e.opts.Topic, 20*time.Millisecond)
		if errors.Is(err, queue.ErrClosed) {
			return
		}
		if err != nil {
			continue
		}
		p.route(m)
	}
}

// route places one dequeued delivery on its entity's lane, creating the
// lane (homed to a worker by key hash) when the entity has none, and makes
// a fresh lane claimable.
func (p *pool) route(m *queue.Message) {
	p.mu.Lock()
	defer p.mu.Unlock()
	ln := p.lanes[m.Event.Entity]
	if ln == nil {
		ln = &lane{
			key:  m.Event.Entity,
			home: partition.KeyShard(m.Event.Entity, p.workers),
		}
		p.lanes[m.Event.Entity] = ln
		p.insertLocked(ln, m)
		p.runq[ln.home] = append(p.runq[ln.home], ln)
		p.cond.Broadcast()
		return
	}
	// The lane exists: it is queued, running or parked. Appending is enough
	// in every case — the owner (or the unpark timer) sees the new delivery.
	p.insertLocked(ln, m)
}

// insertLocked adds a delivery in message-ID order (IDs are assigned at
// enqueue, so ID order is the entity's enqueue order) and drops a duplicate
// of a delivery the lane already holds — a visibility-timeout redelivery of
// a message that is still pending here. Reports whether the delivery was
// added.
func (p *pool) insertLocked(ln *lane, m *queue.Message) bool {
	i := len(ln.fifo)
	for i > 0 && ln.fifo[i-1].m.ID > m.ID {
		i--
	}
	if i > 0 && ln.fifo[i-1].m.ID == m.ID {
		// Already pending: the lane's eventual Ack settles the fresh lease.
		return false
	}
	ln.fifo = append(ln.fifo, laneMsg{})
	copy(ln.fifo[i+1:], ln.fifo[i:])
	ln.fifo[i] = laneMsg{m: m, attempts: m.Attempts}
	if d := uint64(len(ln.fifo)); d > p.peakDepth {
		p.peakDepth = d
	}
	return true
}

// workerLoop claims lanes and drains them until the pool stops.
func (p *pool) workerLoop(w int) {
	for {
		ln := p.claim(w)
		if ln == nil {
			return
		}
		p.drain(ln)
	}
}

// claim blocks until a lane is claimable: the worker's own run queue first
// (oldest lane), then — work stealing — the tail of another worker's run
// queue. Returns nil when the pool stopped.
func (p *pool) claim(w int) *lane {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if p.stopped {
			return nil
		}
		if q := p.runq[w]; len(q) > 0 {
			ln := q[0]
			p.runq[w] = q[1:]
			return ln
		}
		for off := 1; off < p.workers; off++ {
			v := (w + off) % p.workers
			q := p.runq[v]
			if len(q) == 0 {
				continue
			}
			ln := q[len(q)-1]
			p.runq[v] = q[:len(q)-1]
			p.steals++
			return ln
		}
		p.cond.Wait()
	}
}

// laneBudget is how many deliveries (executions plus hinted dequeues) one
// lane claim may consume before the worker yields: a continuously refilled
// hot lane goes back to the tail of its home run queue so the other lanes
// queued behind it make progress instead of starving.
const laneBudget = 64

// drain executes the lane's deliveries in enqueue order. The lane is
// released when empty (after offering the queue a chance to hand over newly
// arrived work for the same entity), parked when its head delivery is
// backing off after a failure, and requeued when it exhausts this claim's
// fairness budget.
func (p *pool) drain(ln *lane) {
	e := p.e
	budget := laneBudget
	for {
		p.mu.Lock()
		if p.stopped {
			p.mu.Unlock()
			return
		}
		p.renewLeasesLocked(ln, time.Now())
		if budget <= 0 {
			if len(ln.fifo) > 0 {
				// Yield: back of the home run queue, behind waiting lanes.
				p.runq[ln.home] = append(p.runq[ln.home], ln)
				p.cond.Broadcast()
			} else {
				// Out of budget and empty: retire without another hint; the
				// dispatcher re-lanes the entity if more work arrives.
				delete(p.lanes, ln.key)
			}
			p.mu.Unlock()
			return
		}
		if !ln.notBefore.IsZero() && ln.notBefore.After(time.Now()) {
			p.parkLocked(ln)
			p.mu.Unlock()
			return
		}
		if len(ln.fifo) == 0 {
			p.mu.Unlock()
			// Lane hinting: pull the entity's next delivery straight off the
			// queue while we still own its serialisation. DequeueEntity
			// refuses when any of the entity's messages is leased elsewhere
			// (e.g. in the dispatcher's hands between dequeue and route), so
			// the hint can never overtake an earlier in-flight delivery.
			if m, err := e.q.DequeueEntity(e.opts.Topic, ln.key); err == nil {
				budget--
				p.mu.Lock()
				if p.insertLocked(ln, m) {
					p.hints++
				}
				p.mu.Unlock()
				continue
			}
			p.mu.Lock()
			if len(ln.fifo) == 0 {
				// Nothing pending and nothing on the queue: retire the lane.
				// The dispatcher creates a fresh one if the entity comes back.
				delete(p.lanes, ln.key)
				p.mu.Unlock()
				return
			}
			p.mu.Unlock()
			continue
		}
		lm := ln.fifo[0]
		p.mu.Unlock()

		budget--
		if e.runLaneDelivery(lm, ln.key) {
			// Terminal: executed, skipped as a duplicate, dead-lettered to
			// compensation, or unknown. The delivery leaves the lane.
			_ = e.q.Ack(lm.m.ID)
			p.mu.Lock()
			if len(ln.fifo) > 0 && ln.fifo[0].m.ID == lm.m.ID {
				ln.fifo = ln.fifo[1:]
			}
			ln.notBefore = time.Time{}
			p.mu.Unlock()
			continue
		}
		// Retry: the delivery stays at the head and the whole lane backs
		// off, so the entity's later steps cannot overtake the failed one.
		p.mu.Lock()
		if len(ln.fifo) > 0 && ln.fifo[0].m.ID == lm.m.ID {
			ln.fifo[0].attempts++
		}
		ln.notBefore = time.Now().Add(e.opts.RetryBackoff)
		p.mu.Unlock()
	}
}

// renewLeasesLocked refreshes the visibility leases of every delivery the
// lane still holds, at most once per renewEvery. The first touch only
// stamps the clock — the leases were granted at dequeue, so a full renewal
// interval of margin remains. A renewal that fails (the delivery was acked
// or already reclaimed) is ignored; insertLocked dedups any redelivery.
func (p *pool) renewLeasesLocked(ln *lane, now time.Time) {
	if p.renewEvery <= 0 || len(ln.fifo) == 0 {
		return
	}
	if ln.lastRenew.IsZero() {
		ln.lastRenew = now
		return
	}
	if now.Sub(ln.lastRenew) < p.renewEvery {
		return
	}
	ln.lastRenew = now
	for _, lm := range ln.fifo {
		if p.e.q.ExtendLease(lm.m.ID) == nil {
			p.renewals++
		}
	}
}

// parkLocked suspends a backing-off lane; a timer requeues it on its home
// worker when the backoff elapses.
func (p *pool) parkLocked(ln *lane) {
	ln.parked = true
	wait := time.Until(ln.notBefore)
	if wait < 0 {
		wait = 0
	}
	time.AfterFunc(wait, func() { p.unpark(ln) })
}

// unpark returns a parked lane to its home run queue.
func (p *pool) unpark(ln *lane) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.stopped || !ln.parked {
		return
	}
	ln.parked = false
	p.runq[ln.home] = append(p.runq[ln.home], ln)
	p.cond.Broadcast()
}

// snapshot returns the pool counters for Engine.Stats.
func (p *pool) snapshot() (steals, peakDepth, hints, renewals uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.steals, p.peakDepth, p.hints, p.renewals
}
