package process

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/entity"
	"repro/internal/lsdb"
	"repro/internal/queue"
	"repro/internal/txn"
)

func orderTypes() []*entity.Type {
	return []*entity.Type{
		{Name: "Order", Fields: []entity.Field{
			{Name: "status", Type: entity.String},
			{Name: "total", Type: entity.Float},
		}},
		{Name: "Inventory", Fields: []entity.Field{
			{Name: "onhand", Type: entity.Int},
		}},
		{Name: "Shipment", Fields: []entity.Field{
			{Name: "state", Type: entity.String},
		}},
	}
}

func newEngine(t *testing.T, opts Options) (*Engine, *txn.Manager, *queue.Queue) {
	t.Helper()
	db := lsdb.Open(lsdb.Options{Node: "u1", SnapshotEvery: 16, Validation: entity.Managed})
	for _, typ := range orderTypes() {
		if err := db.RegisterType(typ); err != nil {
			t.Fatal(err)
		}
	}
	mgr := txn.NewManager(db, nil, nil, txn.Options{Node: "u1", EnforceSingleEntity: true})
	q := queue.New("u1", queue.Options{})
	e := NewEngine(mgr, q, opts)
	return e, mgr, q
}

func orderKey(id string) entity.Key     { return entity.Key{Type: "Order", ID: id} }
func inventoryKey(id string) entity.Key { return entity.Key{Type: "Inventory", ID: id} }
func shipmentKey(id string) entity.Key  { return entity.Key{Type: "Shipment", ID: id} }

// orderPipeline wires a three-step order-to-cash pipeline:
// order.created -> inventory.reserve -> shipment.create.
func orderPipeline() *Definition {
	def := NewDefinition("order-to-cash")
	def.Step("order.created", func(ctx *StepContext) error {
		if err := ctx.Txn.Update(ctx.Event.Entity, entity.Set("status", "OPEN")); err != nil {
			return err
		}
		ctx.Emit(queue.Event{
			Name:   "inventory.reserve",
			Entity: inventoryKey("widget"),
			Data:   map[string]interface{}{"order": ctx.Event.Entity.ID, "qty": int64(1)},
		})
		ctx.Audit("order %s entered", ctx.Event.Entity.ID)
		return nil
	})
	def.Step("inventory.reserve", func(ctx *StepContext) error {
		if err := ctx.Txn.Update(ctx.Event.Entity, entity.Delta("onhand", -1).Described("reserve for "+fmt.Sprint(ctx.Event.Data["order"]))); err != nil {
			return err
		}
		ctx.Emit(queue.Event{
			Name:   "shipment.create",
			Entity: shipmentKey(fmt.Sprint(ctx.Event.Data["order"])),
		})
		return nil
	})
	def.Step("shipment.create", func(ctx *StepContext) error {
		return ctx.Txn.Update(ctx.Event.Entity, entity.Set("state", "PLANNED"))
	})
	return def
}

func TestPipelineDrainsEndToEnd(t *testing.T) {
	e, mgr, _ := newEngine(t, Options{})
	if err := e.Register(orderPipeline()); err != nil {
		t.Fatal(err)
	}
	if err := e.Submit(queue.Event{Name: "order.created", Entity: orderKey("O1"), TxnID: "ext-1"}); err != nil {
		t.Fatal(err)
	}
	steps := e.Drain()
	if steps != 3 {
		t.Fatalf("drained %d steps, want 3", steps)
	}
	// Every entity was updated by exactly one single-entity transaction.
	order, _, err := mgr.DB().Current(orderKey("O1"))
	if err != nil || order.StringField("status") != "OPEN" {
		t.Fatalf("order state: %v %v", order, err)
	}
	inv, _, _ := mgr.DB().Current(inventoryKey("widget"))
	if inv.Int("onhand") != -1 {
		t.Fatalf("inventory = %d (negative inventory is allowed, principle 2.1)", inv.Int("onhand"))
	}
	ship, _, _ := mgr.DB().Current(shipmentKey("O1"))
	if ship.StringField("state") != "PLANNED" {
		t.Fatalf("shipment = %v", ship)
	}
	stats := e.Stats()
	if stats.StepsExecuted != 3 || stats.EventsEmitted != 2 {
		t.Fatalf("stats = %+v", stats)
	}
	if len(e.AuditLog()) != 1 || !strings.Contains(e.AuditLog()[0], "O1") {
		t.Fatalf("audit log = %v", e.AuditLog())
	}
}

func TestWorkersProcessConcurrently(t *testing.T) {
	e, mgr, _ := newEngine(t, Options{Workers: 4})
	def := NewDefinition("deposits")
	def.Step("deposit", func(ctx *StepContext) error {
		return ctx.Txn.Update(ctx.Event.Entity, entity.Delta("total", 1))
	})
	if err := e.Register(def); err != nil {
		t.Fatal(err)
	}
	e.Start()
	const n = 100
	for i := 0; i < n; i++ {
		e.Submit(queue.Event{Name: "deposit", Entity: orderKey("O1"), TxnID: fmt.Sprintf("d%d", i)})
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if e.Stats().StepsExecuted >= n {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	e.Stop()
	st, _, err := mgr.DB().Current(orderKey("O1"))
	if err != nil || st.Float("total") != n {
		t.Fatalf("total = %v, want %d", st.Float("total"), n)
	}
}

func TestStopIsIdempotentAndSubmitAfterStopFails(t *testing.T) {
	e, _, _ := newEngine(t, Options{})
	e.Start()
	e.Stop()
	e.Stop()
	if err := e.Submit(queue.Event{Name: "x"}); !errors.Is(err, ErrStopped) {
		t.Fatalf("want ErrStopped, got %v", err)
	}
}

func TestRetryThenSuccess(t *testing.T) {
	e, mgr, _ := newEngine(t, Options{MaxAttempts: 5})
	var failures atomic.Int32
	def := NewDefinition("flaky")
	def.Step("flaky.step", func(ctx *StepContext) error {
		if failures.Add(1) <= 2 {
			return errors.New("transient")
		}
		return ctx.Txn.Update(ctx.Event.Entity, entity.Set("status", "DONE"))
	})
	e.Register(def)
	e.Submit(queue.Event{Name: "flaky.step", Entity: orderKey("O1"), TxnID: "f1"})
	// Drain repeatedly: failed deliveries go back with a short backoff.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		e.Drain()
		st, _, err := mgr.DB().Current(orderKey("O1"))
		if err == nil && st.StringField("status") == "DONE" {
			if e.Stats().Retries < 2 {
				t.Fatalf("retries = %d, want >= 2", e.Stats().Retries)
			}
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("step never succeeded after retries")
}

func TestCompensationAfterMaxAttempts(t *testing.T) {
	e, mgr, _ := newEngine(t, Options{MaxAttempts: 2})
	var compensated atomic.Int32
	def := NewDefinition("doomed")
	def.Step("doomed.step", func(ctx *StepContext) error {
		ctx.Audit("attempt %d on %s", ctx.Attempt, ctx.Event.Entity.ID)
		return errors.New("permanent failure")
	})
	def.OnFailure("doomed.step", func(ev queue.Event, attempts int, lastErr error) {
		compensated.Add(1)
		if attempts < 2 || lastErr == nil {
			t.Errorf("compensation called with attempts=%d err=%v", attempts, lastErr)
		}
	})
	e.Register(def)
	e.Submit(queue.Event{Name: "doomed.step", Entity: orderKey("O1"), TxnID: "d1"})
	deadline := time.Now().Add(5 * time.Second)
	for compensated.Load() == 0 && time.Now().Before(deadline) {
		e.Drain()
		time.Sleep(2 * time.Millisecond)
	}
	if compensated.Load() != 1 {
		t.Fatal("compensation handler never ran")
	}
	// The transaction never committed.
	if _, _, err := mgr.DB().Current(orderKey("O1")); !errors.Is(err, lsdb.ErrNotFound) {
		t.Fatal("failed step leaked a write")
	}
	// Audit lines from failed attempts are retained (non-transactional).
	if len(e.AuditLog()) < 2 {
		t.Fatalf("audit log = %v", e.AuditLog())
	}
	if e.Stats().Compensations != 1 {
		t.Fatalf("stats = %+v", e.Stats())
	}
}

func TestUnknownEventIsDeadLettered(t *testing.T) {
	e, _, _ := newEngine(t, Options{})
	def := NewDefinition("known")
	def.Step("known.step", func(ctx *StepContext) error { return nil })
	e.Register(def)
	e.Submit(queue.Event{Name: "unknown.step", TxnID: "u1"})
	e.Drain()
	if e.Stats().UnknownEvents != 1 {
		t.Fatalf("stats = %+v", e.Stats())
	}
	if e.QueueDepth() != 0 {
		t.Fatal("unknown event left in the queue")
	}
}

func TestDuplicateDeliveryIsIdempotent(t *testing.T) {
	e, mgr, q := newEngine(t, Options{})
	def := NewDefinition("deposits")
	def.Step("deposit", func(ctx *StepContext) error {
		return ctx.Txn.Update(ctx.Event.Entity, entity.Delta("total", 10))
	})
	e.Register(def)
	// The same logical event delivered twice (at-least-once).
	ev := queue.Event{Name: "deposit", Entity: orderKey("O1"), TxnID: "dup-1"}
	q.Enqueue("steps", ev)
	q.Enqueue("steps", ev)
	e.Drain()
	st, _, err := mgr.DB().Current(orderKey("O1"))
	if err != nil || st.Float("total") != 10 {
		t.Fatalf("duplicate delivery applied twice: %v", st.Float("total"))
	}
}

func TestRegisterDuplicateStepRejected(t *testing.T) {
	e, _, _ := newEngine(t, Options{})
	a := NewDefinition("a")
	a.Step("shared.event", func(*StepContext) error { return nil })
	b := NewDefinition("b")
	b.Step("shared.event", func(*StepContext) error { return nil })
	if err := e.Register(a); err != nil {
		t.Fatal(err)
	}
	if err := e.Register(b); !errors.Is(err, ErrDuplicateStep) {
		t.Fatalf("want ErrDuplicateStep, got %v", err)
	}
}

func TestDefinitionEventsSorted(t *testing.T) {
	def := NewDefinition("p")
	def.Step("zeta", func(*StepContext) error { return nil })
	def.Step("alpha", func(*StepContext) error { return nil })
	ev := def.Events()
	if len(ev) != 2 || ev[0] != "alpha" || ev[1] != "zeta" {
		t.Fatalf("Events = %v", ev)
	}
}

func TestVerticalCollapseExecutesPipelineInline(t *testing.T) {
	e, mgr, _ := newEngine(t, Options{CollapseVertical: true, CollapseDepth: 8})
	e.Register(orderPipeline())
	e.Submit(queue.Event{Name: "order.created", Entity: orderKey("O1"), TxnID: "ext-1"})
	// A single drained message executes the whole pipeline inline.
	drained := e.Drain()
	if drained != 1 {
		t.Fatalf("drained %d messages, want 1 (rest collapsed)", drained)
	}
	stats := e.Stats()
	if stats.StepsExecuted != 3 {
		t.Fatalf("steps executed = %d, want 3", stats.StepsExecuted)
	}
	if stats.Collapsed != 2 {
		t.Fatalf("collapsed = %d, want 2", stats.Collapsed)
	}
	ship, _, err := mgr.DB().Current(shipmentKey("O1"))
	if err != nil || ship.StringField("state") != "PLANNED" {
		t.Fatalf("pipeline result missing: %v %v", ship, err)
	}
	// Each collapsed step still ran its own transaction (SOUPS preserved).
	if mgr.Stats().Commits != 3 {
		t.Fatalf("commits = %d, want 3", mgr.Stats().Commits)
	}
}

func TestCollapseDepthLimit(t *testing.T) {
	e, _, _ := newEngine(t, Options{CollapseVertical: true, CollapseDepth: 1})
	e.Register(orderPipeline())
	e.Submit(queue.Event{Name: "order.created", Entity: orderKey("O1"), TxnID: "ext-1"})
	e.Drain()
	// Depth 1 collapses only the first follow-up; the third step goes through
	// the queue but Drain picks it up, so everything still completes.
	if e.Stats().StepsExecuted != 3 {
		t.Fatalf("steps executed = %d", e.Stats().StepsExecuted)
	}
	if e.Stats().Collapsed != 1 {
		t.Fatalf("collapsed = %d, want 1", e.Stats().Collapsed)
	}
}

func TestHorizontalBatchGroupsByEntity(t *testing.T) {
	e, mgr, _ := newEngine(t, Options{})
	// Horizontal collapsing folds several deposits to the same entity into
	// one transaction, so disable the single-entity enforcement's
	// multi-commit overhead by using one entity per group (which is what the
	// optimisation requires anyway: "that single transaction would have to
	// address local data only").
	def := NewDefinition("deposits")
	def.Step("deposit", func(ctx *StepContext) error {
		return ctx.Txn.Update(ctx.Event.Entity, entity.Delta("total", 1))
	})
	e.Register(def)
	for i := 0; i < 6; i++ {
		key := orderKey("A")
		if i%2 == 1 {
			key = orderKey("B")
		}
		e.Submit(queue.Event{Name: "deposit", Entity: key, TxnID: fmt.Sprintf("h%d", i)})
	}
	absorbed, err := e.HorizontalBatch(100)
	if err != nil {
		t.Fatal(err)
	}
	if absorbed != 6 {
		t.Fatalf("absorbed = %d, want 6", absorbed)
	}
	a, _, _ := mgr.DB().Current(orderKey("A"))
	b, _, _ := mgr.DB().Current(orderKey("B"))
	if a.Float("total") != 3 || b.Float("total") != 3 {
		t.Fatalf("totals = %v / %v", a.Float("total"), b.Float("total"))
	}
	// Two groups -> two transactions instead of six.
	if mgr.Stats().Commits != 2 {
		t.Fatalf("commits = %d, want 2", mgr.Stats().Commits)
	}
	if e.Stats().Collapsed != 4 {
		t.Fatalf("collapsed = %d, want 4", e.Stats().Collapsed)
	}
}

func TestHorizontalBatchEmptyQueue(t *testing.T) {
	e, _, _ := newEngine(t, Options{})
	def := NewDefinition("x")
	def.Step("e", func(*StepContext) error { return nil })
	e.Register(def)
	n, err := e.HorizontalBatch(10)
	if err != nil || n != 0 {
		t.Fatalf("HorizontalBatch on empty queue = %d, %v", n, err)
	}
}

// TestWorkerPoolRidesGroupCommit runs the engine's worker pool against a
// group-commit store: concurrent step transactions enqueue their appends on
// the shard commit queues, and every step's effect must still land exactly
// once (idempotence keys intact, no lost or doubled updates).
func TestWorkerPoolRidesGroupCommit(t *testing.T) {
	db := lsdb.Open(lsdb.Options{Node: "u1", SnapshotEvery: 16, Validation: entity.Managed, GroupCommit: true, MaxBatch: 8})
	for _, typ := range orderTypes() {
		if err := db.RegisterType(typ); err != nil {
			t.Fatal(err)
		}
	}
	mgr := txn.NewManager(db, nil, nil, txn.Options{Node: "u1", EnforceSingleEntity: true})
	q := queue.New("u1", queue.Options{})
	e := NewEngine(mgr, q, Options{Workers: 4})
	def := NewDefinition("bump")
	def.Step("order.bump", func(ctx *StepContext) error {
		return ctx.Txn.Update(ctx.Event.Entity, entity.Delta("total", 1))
	})
	if err := e.Register(def); err != nil {
		t.Fatal(err)
	}
	const events, orders = 120, 6
	for i := 0; i < events; i++ {
		ev := queue.Event{
			Name:   "order.bump",
			Entity: orderKey(fmt.Sprintf("O%d", i%orders)),
			TxnID:  fmt.Sprintf("bump-%d", i),
		}
		if err := e.Submit(ev); err != nil {
			t.Fatal(err)
		}
	}
	e.Start()
	deadline := time.Now().Add(10 * time.Second)
	for e.Stats().StepsExecuted < events {
		if time.Now().After(deadline) {
			t.Fatalf("timed out: %d/%d steps executed", e.Stats().StepsExecuted, events)
		}
		time.Sleep(time.Millisecond)
	}
	e.Stop()
	if got := e.Stats().StepsExecuted; got != events {
		t.Fatalf("steps executed = %d, want %d", got, events)
	}
	for o := 0; o < orders; o++ {
		st, _, err := db.Current(orderKey(fmt.Sprintf("O%d", o)))
		if err != nil {
			t.Fatalf("Current(O%d): %v", o, err)
		}
		if got := st.Float("total"); got != float64(events/orders) {
			t.Fatalf("O%d total = %v, want %d", o, got, events/orders)
		}
	}
	records := db.RecordsAfter(0)
	if len(records) != events {
		t.Fatalf("log has %d records, want %d", len(records), events)
	}
	for i, rec := range records {
		if rec.LSN != uint64(i+1) {
			t.Fatalf("LSN %d at position %d: worker commits left a gap", rec.LSN, i)
		}
	}
}
