// Package netsim simulates the network between serialization units and
// replicas: configurable latency, message loss and partitions.
//
// The paper argues from the CAP principle that partitions and latency force
// the consistency trade-offs its principles address; the authors' context is
// real SAP landscapes and internet-scale systems. This repository substitutes
// an in-process simulated network so the CAP experiments (E5, E7) exercise
// the same code paths — blocked quorums, divergent replicas, anti-entropy
// after healing — on a single machine. See DESIGN.md, substitution 1.
package netsim

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/clock"
)

// Common errors.
var (
	// ErrUnknownNode is returned when sending to or from an unregistered node.
	ErrUnknownNode = errors.New("netsim: unknown node")
	// ErrUnreachable is returned when a partition separates the two nodes.
	ErrUnreachable = errors.New("netsim: unreachable (partitioned)")
	// ErrDropped is returned when the simulated transport lost the message.
	ErrDropped = errors.New("netsim: message dropped")
	// ErrTimeout is returned when a request's handler did not answer in time.
	ErrTimeout = errors.New("netsim: request timeout")
	// ErrNoHandler is returned when the destination registered no request
	// handler.
	ErrNoHandler = errors.New("netsim: no request handler")
)

// Config sets the fault and latency model of a simulated network.
type Config struct {
	// BaseLatency is the one-way delivery delay before jitter.
	BaseLatency time.Duration
	// Jitter adds a uniformly distributed extra delay in [0, Jitter).
	Jitter time.Duration
	// LossRate is the probability (0..1) that an async message is silently
	// dropped. Requests are never silently dropped; they fail with
	// ErrDropped so callers can retry.
	LossRate float64
	// UnreachableDelay is how long a request to a partitioned node takes to
	// fail, modelling a timeout at the caller.
	UnreachableDelay time.Duration
	// Seed makes the loss/jitter sequence deterministic (0 uses a fixed
	// default so tests are reproducible).
	Seed int64
}

// LinkFault is a directional fault override for one from→to link, layered on
// top of the network-wide Config. The fault-injection harness scripts these
// per link so a schedule can degrade exactly one direction of one connection
// — a flaky primary→standby path, an asymmetric partition — while the rest of
// the fabric stays healthy.
type LinkFault struct {
	// Block makes the link behave like a partition: async sends are
	// silently discarded, requests fail with ErrUnreachable.
	Block bool
	// Loss is an additional independent drop probability (0..1) applied
	// after the network-wide LossRate.
	Loss float64
	// ExtraLatency is added to each one-way traversal of the link.
	ExtraLatency time.Duration
}

type linkKey struct {
	from, to clock.NodeID
}

// Handler consumes asynchronous messages delivered to a node.
type Handler func(from clock.NodeID, payload interface{})

// RequestHandler answers synchronous requests sent to a node.
type RequestHandler func(from clock.NodeID, payload interface{}) (interface{}, error)

// Stats counts what happened on the wire.
type Stats struct {
	Sent        uint64
	Delivered   uint64
	Dropped     uint64
	Blocked     uint64
	Requests    uint64
	RequestFail uint64
}

type node struct {
	handler    Handler
	reqHandler RequestHandler
}

// Network is a simulated message fabric between named nodes. All methods are
// safe for concurrent use.
type Network struct {
	mu     sync.Mutex
	cfg    Config
	rng    *rand.Rand
	nodes  map[clock.NodeID]*node
	groups map[clock.NodeID]int // partition group per node; all zero = healed
	links  map[linkKey]LinkFault
	stats  Stats
	wg     sync.WaitGroup
	closed bool
}

// New creates a network with the given configuration.
func New(cfg Config) *Network {
	seed := cfg.Seed
	if seed == 0 {
		seed = 42
	}
	if cfg.UnreachableDelay <= 0 {
		cfg.UnreachableDelay = 5 * time.Millisecond
	}
	return &Network{
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(seed)),
		nodes:  map[clock.NodeID]*node{},
		groups: map[clock.NodeID]int{},
		links:  map[linkKey]LinkFault{},
	}
}

// Register adds a node with an async message handler (may be nil).
func (n *Network) Register(id clock.NodeID, h Handler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	existing := n.nodes[id]
	if existing == nil {
		existing = &node{}
		n.nodes[id] = existing
	}
	existing.handler = h
	if _, ok := n.groups[id]; !ok {
		n.groups[id] = 0
	}
}

// RegisterRequestHandler sets the synchronous request handler of a node.
func (n *Network) RegisterRequestHandler(id clock.NodeID, h RequestHandler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	existing := n.nodes[id]
	if existing == nil {
		existing = &node{}
		n.nodes[id] = existing
	}
	existing.reqHandler = h
	if _, ok := n.groups[id]; !ok {
		n.groups[id] = 0
	}
}

// Nodes returns all registered node ids, sorted.
func (n *Network) Nodes() []clock.NodeID {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]clock.NodeID, 0, len(n.nodes))
	for id := range n.nodes {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Partition splits the nodes into isolated groups: nodes in different groups
// cannot exchange messages until Heal is called. Nodes not mentioned stay in
// group 0.
func (n *Network) Partition(groups ...[]clock.NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for id := range n.groups {
		n.groups[id] = 0
	}
	for gi, group := range groups {
		for _, id := range group {
			n.groups[id] = gi + 1
		}
	}
}

// Heal removes all partitions.
func (n *Network) Heal() {
	n.mu.Lock()
	defer n.mu.Unlock()
	for id := range n.groups {
		n.groups[id] = 0
	}
}

// Partitioned reports whether two nodes are currently separated.
func (n *Network) Partitioned(a, b clock.NodeID) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.groups[a] != n.groups[b]
}

// SetLinkFault installs (or replaces) the directional fault override on the
// from→to link. The zero LinkFault clears any override, same as
// ClearLinkFault.
func (n *Network) SetLinkFault(from, to clock.NodeID, f LinkFault) {
	n.mu.Lock()
	defer n.mu.Unlock()
	key := linkKey{from, to}
	if f == (LinkFault{}) {
		delete(n.links, key)
		return
	}
	n.links[key] = f
}

// ClearLinkFault removes the directional fault override on the from→to link.
func (n *Network) ClearLinkFault(from, to clock.NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.links, linkKey{from, to})
}

// ClearLinkFaults removes every per-link fault override. Partitions and the
// network-wide Config are unaffected.
func (n *Network) ClearLinkFaults() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.links = map[linkKey]LinkFault{}
}

// SetLossRate changes the async loss probability at runtime.
func (n *Network) SetLossRate(p float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.cfg.LossRate = p
}

// SetLatency changes the latency model at runtime.
func (n *Network) SetLatency(base, jitter time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.cfg.BaseLatency = base
	n.cfg.Jitter = jitter
}

// Stats returns a copy of the wire counters.
func (n *Network) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// latencyLocked samples a one-way delay.
func (n *Network) latencyLocked() time.Duration {
	d := n.cfg.BaseLatency
	if n.cfg.Jitter > 0 {
		d += time.Duration(n.rng.Int63n(int64(n.cfg.Jitter)))
	}
	return d
}

// Send delivers payload asynchronously to the destination's handler after the
// simulated latency. It returns an error only for immediately detectable
// conditions (unknown node); loss and partitions silently discard the
// message, exactly like a real datagram network.
func (n *Network) Send(from, to clock.NodeID, payload interface{}) error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return errors.New("netsim: closed")
	}
	dst, ok := n.nodes[to]
	if !ok || dst.handler == nil {
		n.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnknownNode, to)
	}
	if _, ok := n.nodes[from]; !ok {
		n.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnknownNode, from)
	}
	n.stats.Sent++
	fault := n.links[linkKey{from, to}]
	if n.groups[from] != n.groups[to] || fault.Block {
		n.stats.Blocked++
		n.mu.Unlock()
		return nil
	}
	if n.cfg.LossRate > 0 && n.rng.Float64() < n.cfg.LossRate {
		n.stats.Dropped++
		n.mu.Unlock()
		return nil
	}
	if fault.Loss > 0 && n.rng.Float64() < fault.Loss {
		n.stats.Dropped++
		n.mu.Unlock()
		return nil
	}
	delay := n.latencyLocked() + fault.ExtraLatency
	handler := dst.handler
	n.wg.Add(1)
	n.mu.Unlock()

	deliver := func() {
		defer n.wg.Done()
		handler(from, payload)
		n.mu.Lock()
		n.stats.Delivered++
		n.mu.Unlock()
	}
	if delay <= 0 {
		go deliver()
	} else {
		time.AfterFunc(delay, deliver)
	}
	return nil
}

// Request performs a synchronous round trip to the destination's request
// handler, paying the simulated latency both ways. Partitions make it fail
// with ErrUnreachable after UnreachableDelay (the caller-side timeout);
// losses make it fail with ErrDropped so the caller can retry.
//
// The handler runs on its own goroutine and its response is returned through
// a reply slot private to this call. When the round trip exceeds timeout the
// caller gets ErrTimeout and the late response is discarded with the slot —
// it can never surface as the answer to a later request — but the handler
// still runs, so destination-side effects happen exactly as they would on a
// real network where only the ack was lost.
func (n *Network) Request(from, to clock.NodeID, payload interface{}, timeout time.Duration) (interface{}, error) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil, errors.New("netsim: closed")
	}
	dst, ok := n.nodes[to]
	if !ok {
		n.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrUnknownNode, to)
	}
	if dst.reqHandler == nil {
		n.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrNoHandler, to)
	}
	n.stats.Requests++
	fault := n.links[linkKey{from, to}]
	if n.groups[from] != n.groups[to] || fault.Block {
		n.stats.RequestFail++
		wait := n.cfg.UnreachableDelay
		n.mu.Unlock()
		if timeout > 0 && timeout < wait {
			wait = timeout
		}
		time.Sleep(wait)
		return nil, fmt.Errorf("%w: %s -> %s", ErrUnreachable, from, to)
	}
	if n.cfg.LossRate > 0 && n.rng.Float64() < n.cfg.LossRate {
		n.stats.RequestFail++
		n.mu.Unlock()
		return nil, fmt.Errorf("%w: %s -> %s", ErrDropped, from, to)
	}
	if fault.Loss > 0 && n.rng.Float64() < fault.Loss {
		n.stats.RequestFail++
		n.mu.Unlock()
		return nil, fmt.Errorf("%w: %s -> %s", ErrDropped, from, to)
	}
	there := n.latencyLocked() + fault.ExtraLatency
	back := n.latencyLocked() + n.links[linkKey{to, from}].ExtraLatency
	handler := dst.reqHandler
	n.wg.Add(1)
	n.mu.Unlock()

	type result struct {
		resp interface{}
		err  error
	}
	reply := make(chan result, 1) // private slot: a late response parks here and is garbage collected
	go func() {
		defer n.wg.Done()
		if there > 0 {
			time.Sleep(there)
		}
		resp, err := handler(from, payload)
		if back > 0 {
			time.Sleep(back)
		}
		reply <- result{resp, err}
	}()

	var expired <-chan time.Time
	if timeout > 0 {
		timer := time.NewTimer(timeout)
		defer timer.Stop()
		expired = timer.C
	}
	select {
	case r := <-reply:
		if r.err != nil {
			n.mu.Lock()
			n.stats.RequestFail++
			n.mu.Unlock()
			return nil, r.err
		}
		return r.resp, nil
	case <-expired:
		n.mu.Lock()
		n.stats.RequestFail++
		n.mu.Unlock()
		return nil, fmt.Errorf("%w: %s -> %s after %v", ErrTimeout, from, to, timeout)
	}
}

// Broadcast sends payload to every registered node except the sender and
// returns how many sends were attempted.
func (n *Network) Broadcast(from clock.NodeID, payload interface{}) int {
	targets := n.Nodes()
	count := 0
	for _, to := range targets {
		if to == from {
			continue
		}
		if err := n.Send(from, to, payload); err == nil {
			count++
		}
	}
	return count
}

// Quiesce blocks until all in-flight asynchronous deliveries have completed.
// Tests and the convergence experiment use it to wait for the network to
// drain.
func (n *Network) Quiesce() {
	n.wg.Wait()
}

// Close marks the network closed; subsequent Sends fail. In-flight messages
// still deliver.
func (n *Network) Close() {
	n.mu.Lock()
	n.closed = true
	n.mu.Unlock()
	n.wg.Wait()
}
