package netsim

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/clock"
)

func TestSendDelivers(t *testing.T) {
	n := New(Config{})
	var got atomic.Value
	done := make(chan struct{})
	n.Register("a", nil)
	n.Register("b", func(from clock.NodeID, payload interface{}) {
		got.Store(payload)
		close(done)
	})
	if err := n.Send("a", "b", "hello"); err != nil {
		t.Fatalf("Send: %v", err)
	}
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("message never delivered")
	}
	if got.Load() != "hello" {
		t.Fatalf("payload = %v", got.Load())
	}
	st := n.Stats()
	if st.Sent != 1 || st.Delivered != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSendUnknownNode(t *testing.T) {
	n := New(Config{})
	n.Register("a", func(clock.NodeID, interface{}) {})
	if err := n.Send("a", "ghost", 1); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("want ErrUnknownNode, got %v", err)
	}
	if err := n.Send("ghost", "a", 1); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("unknown sender: %v", err)
	}
}

func TestSendWithLatency(t *testing.T) {
	n := New(Config{BaseLatency: 30 * time.Millisecond})
	delivered := make(chan time.Time, 1)
	n.Register("a", nil)
	n.Register("b", func(clock.NodeID, interface{}) { delivered <- time.Now() })
	start := time.Now()
	n.Send("a", "b", 1)
	select {
	case at := <-delivered:
		if at.Sub(start) < 20*time.Millisecond {
			t.Fatalf("delivered too fast: %v", at.Sub(start))
		}
	case <-time.After(2 * time.Second):
		t.Fatal("never delivered")
	}
}

func TestPartitionBlocksAndHealRestores(t *testing.T) {
	n := New(Config{})
	var count atomic.Int64
	n.Register("a", func(clock.NodeID, interface{}) { count.Add(1) })
	n.Register("b", func(clock.NodeID, interface{}) { count.Add(1) })
	n.Register("c", func(clock.NodeID, interface{}) { count.Add(1) })
	n.Partition([]clock.NodeID{"a"}, []clock.NodeID{"b", "c"})
	if !n.Partitioned("a", "b") {
		t.Fatal("a and b should be partitioned")
	}
	if n.Partitioned("b", "c") {
		t.Fatal("b and c share a group")
	}
	n.Send("a", "b", 1) // blocked
	n.Send("b", "c", 1) // delivered
	n.Quiesce()
	if count.Load() != 1 {
		t.Fatalf("delivered = %d, want 1", count.Load())
	}
	st := n.Stats()
	if st.Blocked != 1 {
		t.Fatalf("Blocked = %d", st.Blocked)
	}
	n.Heal()
	if n.Partitioned("a", "b") {
		t.Fatal("heal did not remove partition")
	}
	n.Send("a", "b", 2)
	n.Quiesce()
	if count.Load() != 2 {
		t.Fatalf("delivered after heal = %d", count.Load())
	}
}

func TestLossRateDropsSomeMessages(t *testing.T) {
	n := New(Config{LossRate: 0.5, Seed: 7})
	var count atomic.Int64
	n.Register("a", nil)
	n.Register("b", func(clock.NodeID, interface{}) { count.Add(1) })
	const total = 200
	for i := 0; i < total; i++ {
		n.Send("a", "b", i)
	}
	n.Quiesce()
	st := n.Stats()
	if st.Dropped == 0 {
		t.Fatal("no messages dropped at 50% loss")
	}
	if st.Delivered == 0 {
		t.Fatal("all messages dropped at 50% loss")
	}
	if st.Delivered+st.Dropped != total {
		t.Fatalf("delivered %d + dropped %d != %d", st.Delivered, st.Dropped, total)
	}
	if int64(st.Delivered) != count.Load() {
		t.Fatalf("stats delivered %d != handler count %d", st.Delivered, count.Load())
	}
}

func TestDeterministicLossWithSeed(t *testing.T) {
	run := func() uint64 {
		n := New(Config{LossRate: 0.3, Seed: 99})
		n.Register("a", nil)
		n.Register("b", func(clock.NodeID, interface{}) {})
		for i := 0; i < 100; i++ {
			n.Send("a", "b", i)
		}
		n.Quiesce()
		return n.Stats().Dropped
	}
	if run() != run() {
		t.Fatal("same seed produced different loss patterns")
	}
}

func TestRequestResponse(t *testing.T) {
	n := New(Config{})
	n.Register("client", nil)
	n.RegisterRequestHandler("server", func(from clock.NodeID, payload interface{}) (interface{}, error) {
		return payload.(int) * 2, nil
	})
	resp, err := n.Request("client", "server", 21, time.Second)
	if err != nil {
		t.Fatalf("Request: %v", err)
	}
	if resp.(int) != 42 {
		t.Fatalf("resp = %v", resp)
	}
	st := n.Stats()
	if st.Requests != 1 || st.RequestFail != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRequestHandlerError(t *testing.T) {
	n := New(Config{})
	n.Register("client", nil)
	errBoom := errors.New("boom")
	n.RegisterRequestHandler("server", func(clock.NodeID, interface{}) (interface{}, error) {
		return nil, errBoom
	})
	if _, err := n.Request("client", "server", 1, time.Second); !errors.Is(err, errBoom) {
		t.Fatalf("want handler error, got %v", err)
	}
	if n.Stats().RequestFail != 1 {
		t.Fatal("RequestFail not counted")
	}
}

func TestRequestToPartitionedNode(t *testing.T) {
	n := New(Config{UnreachableDelay: 5 * time.Millisecond})
	n.Register("client", nil)
	n.RegisterRequestHandler("server", func(clock.NodeID, interface{}) (interface{}, error) { return 1, nil })
	n.Partition([]clock.NodeID{"client"}, []clock.NodeID{"server"})
	start := time.Now()
	_, err := n.Request("client", "server", 1, time.Second)
	if !errors.Is(err, ErrUnreachable) {
		t.Fatalf("want ErrUnreachable, got %v", err)
	}
	if time.Since(start) < 4*time.Millisecond {
		t.Fatal("unreachable request returned without the simulated timeout delay")
	}
}

func TestRequestUnknownNodeAndNoHandler(t *testing.T) {
	n := New(Config{})
	n.Register("client", nil)
	if _, err := n.Request("client", "ghost", 1, time.Second); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("want ErrUnknownNode, got %v", err)
	}
	n.Register("plain", func(clock.NodeID, interface{}) {})
	if _, err := n.Request("client", "plain", 1, time.Second); !errors.Is(err, ErrNoHandler) {
		t.Fatalf("want ErrNoHandler, got %v", err)
	}
}

func TestRequestTimeoutWhenLatencyTooHigh(t *testing.T) {
	n := New(Config{BaseLatency: 50 * time.Millisecond})
	n.Register("client", nil)
	n.RegisterRequestHandler("server", func(clock.NodeID, interface{}) (interface{}, error) { return 1, nil })
	_, err := n.Request("client", "server", 1, 10*time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
}

// Regression: a handler response that arrives after the caller timed out must
// be discarded with that request's private reply slot — it must never surface
// as the answer to a later request — while the handler's side effects still
// happen (only the ack was lost, not the work).
func TestRequestTimeoutDoesNotLeakLateResponse(t *testing.T) {
	n := New(Config{})
	n.Register("client", nil)
	var calls atomic.Int64
	n.RegisterRequestHandler("server", func(clock.NodeID, interface{}) (interface{}, error) {
		if calls.Add(1) == 1 {
			time.Sleep(60 * time.Millisecond)
			return "SLOW", nil
		}
		return "FAST", nil
	})
	if _, err := n.Request("client", "server", 1, 10*time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("first request: want ErrTimeout, got %v", err)
	}
	resp, err := n.Request("client", "server", 2, time.Second)
	if err != nil {
		t.Fatalf("second request: %v", err)
	}
	if resp != "FAST" {
		t.Fatalf("second request got %v — the timed-out response leaked into a later reply slot", resp)
	}
	n.Quiesce()
	if calls.Load() != 2 {
		t.Fatalf("handler calls = %d, want 2 (timed-out request must still run its handler)", calls.Load())
	}
}

// Regression: even when the simulated rtt alone exceeds the timeout, the
// destination handler must run — on a real network the request is in flight
// and the server does the work; only the caller gives up waiting.
func TestRequestTimeoutStillInvokesHandler(t *testing.T) {
	n := New(Config{BaseLatency: 30 * time.Millisecond})
	n.Register("client", nil)
	var invoked atomic.Bool
	n.RegisterRequestHandler("server", func(clock.NodeID, interface{}) (interface{}, error) {
		invoked.Store(true)
		return 1, nil
	})
	if _, err := n.Request("client", "server", 1, 5*time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
	n.Quiesce()
	if !invoked.Load() {
		t.Fatal("handler never invoked for a request that timed out at the caller")
	}
}

func TestLinkFaultBlockIsDirectional(t *testing.T) {
	n := New(Config{UnreachableDelay: time.Millisecond})
	var got atomic.Int64
	n.Register("a", func(clock.NodeID, interface{}) { got.Add(1) })
	n.Register("b", func(clock.NodeID, interface{}) { got.Add(1) })
	n.RegisterRequestHandler("b", func(clock.NodeID, interface{}) (interface{}, error) { return 1, nil })
	n.SetLinkFault("a", "b", LinkFault{Block: true})
	n.Send("a", "b", 1) // blocked
	n.Send("b", "a", 2) // unaffected direction
	n.Quiesce()
	if got.Load() != 1 {
		t.Fatalf("delivered = %d, want 1 (a->b blocked, b->a open)", got.Load())
	}
	if _, err := n.Request("a", "b", 1, time.Second); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("request over blocked link: want ErrUnreachable, got %v", err)
	}
	n.ClearLinkFault("a", "b")
	n.Send("a", "b", 3)
	n.Quiesce()
	if got.Load() != 2 {
		t.Fatal("link did not recover after ClearLinkFault")
	}
}

func TestLinkFaultLossAndLatency(t *testing.T) {
	n := New(Config{})
	var got atomic.Int64
	n.Register("a", nil)
	n.Register("b", func(clock.NodeID, interface{}) { got.Add(1) })
	n.SetLinkFault("a", "b", LinkFault{Loss: 1.0})
	n.Send("a", "b", 1)
	n.Quiesce()
	if got.Load() != 0 {
		t.Fatal("message survived 100% link loss")
	}
	n.SetLinkFault("a", "b", LinkFault{ExtraLatency: 50 * time.Millisecond})
	n.RegisterRequestHandler("b", func(clock.NodeID, interface{}) (interface{}, error) { return 1, nil })
	if _, err := n.Request("a", "b", 1, 10*time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("slow link: want ErrTimeout, got %v", err)
	}
	n.ClearLinkFaults()
	if _, err := n.Request("a", "b", 1, time.Second); err != nil {
		t.Fatalf("after ClearLinkFaults: %v", err)
	}
	n.Quiesce()
}

func TestRequestLoss(t *testing.T) {
	n := New(Config{LossRate: 1.0})
	n.Register("client", nil)
	n.RegisterRequestHandler("server", func(clock.NodeID, interface{}) (interface{}, error) { return 1, nil })
	if _, err := n.Request("client", "server", 1, time.Second); !errors.Is(err, ErrDropped) {
		t.Fatalf("want ErrDropped, got %v", err)
	}
}

func TestBroadcast(t *testing.T) {
	n := New(Config{})
	var count atomic.Int64
	handler := func(clock.NodeID, interface{}) { count.Add(1) }
	n.Register("a", handler)
	n.Register("b", handler)
	n.Register("c", handler)
	sent := n.Broadcast("a", "gossip")
	n.Quiesce()
	if sent != 2 || count.Load() != 2 {
		t.Fatalf("sent=%d delivered=%d", sent, count.Load())
	}
}

func TestNodesSorted(t *testing.T) {
	n := New(Config{})
	n.Register("zebra", nil)
	n.Register("alpha", nil)
	nodes := n.Nodes()
	if len(nodes) != 2 || nodes[0] != "alpha" || nodes[1] != "zebra" {
		t.Fatalf("Nodes = %v", nodes)
	}
}

func TestSetLatencyAndLossAtRuntime(t *testing.T) {
	n := New(Config{})
	n.Register("a", nil)
	var count atomic.Int64
	n.Register("b", func(clock.NodeID, interface{}) { count.Add(1) })
	n.SetLossRate(1.0)
	n.Send("a", "b", 1)
	n.Quiesce()
	if count.Load() != 0 {
		t.Fatal("message delivered despite 100% loss")
	}
	n.SetLossRate(0)
	n.SetLatency(0, 0)
	n.Send("a", "b", 2)
	n.Quiesce()
	if count.Load() != 1 {
		t.Fatal("message not delivered after loss reset")
	}
}

func TestCloseStopsSends(t *testing.T) {
	n := New(Config{})
	n.Register("a", nil)
	n.Register("b", func(clock.NodeID, interface{}) {})
	n.Close()
	if err := n.Send("a", "b", 1); err == nil {
		t.Fatal("Send after Close should fail")
	}
}

func TestConcurrentSendsSafe(t *testing.T) {
	n := New(Config{Jitter: time.Millisecond})
	var count atomic.Int64
	n.Register("a", nil)
	n.Register("b", func(clock.NodeID, interface{}) { count.Add(1) })
	var wg sync.WaitGroup
	const senders, per = 8, 50
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				n.Send("a", "b", i)
			}
		}()
	}
	wg.Wait()
	n.Quiesce()
	if count.Load() != senders*per {
		t.Fatalf("delivered = %d, want %d", count.Load(), senders*per)
	}
}
