package core

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/entity"
	"repro/internal/storage"
	"repro/internal/workload"
)

// kernelStates captures every entity state the kernel serves, projected to
// the observable surface (fields, flags, child rows), keyed by entity key.
func kernelStates(t *testing.T, k *Kernel) map[string]map[string]interface{} {
	t.Helper()
	out := map[string]map[string]interface{}{}
	for _, typ := range workload.Types() {
		err := k.Query(typ.Name, func(st *entity.State) bool {
			snap := map[string]interface{}{
				"fields":    st.Fields,
				"tentative": st.Tentative,
				"deleted":   st.Deleted,
			}
			for _, col := range st.Collections() {
				snap["col:"+col] = st.Children(col)
			}
			out[st.Key.String()] = snap
			return true
		})
		if err != nil {
			t.Fatalf("Query(%s): %v", typ.Name, err)
		}
	}
	return out
}

func assertSameKernelStates(t *testing.T, want, got map[string]map[string]interface{}) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("entity counts differ: %d vs %d", len(want), len(got))
	}
	for key, w := range want {
		g, ok := got[key]
		if !ok {
			t.Fatalf("entity %s missing after restart", key)
		}
		if !reflect.DeepEqual(w, g) {
			t.Fatalf("entity %s differs:\nwant %v\n got %v", key, w, g)
		}
	}
}

// populate drives a representative mix through the kernel: plain updates,
// child rows, concurrent writers, a kept and a broken promise, and queued
// process steps.
func populate(t *testing.T, k *Kernel) {
	t.Helper()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				key := accountKey(fmt.Sprintf("acct-%d", i%5))
				if _, err := k.Update(key, entity.Delta("balance", 1)); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if _, err := k.Update(orderKey("O1"),
		entity.Set("status", "OPEN"),
		entity.InsertChild("lineitems", "L1", entity.Fields{"product": "Inventory/widget", "qty": int64(3), "price": 9.5}),
		entity.InsertChild("lineitems", "L2", entity.Fields{"product": "Inventory/gadget", "qty": int64(1), "price": 20.0}),
	); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Update(orderKey("O1"), entity.DeleteChild("lineitems", "L2")); err != nil {
		t.Fatal(err)
	}
	kept, err := k.UpdateTentative(invKey("widget"), "partner-a", "reservation", 5, entity.Delta("reserved", 5))
	if err != nil {
		t.Fatal(err)
	}
	if err := k.KeepPromise(kept.ID); err != nil {
		t.Fatal(err)
	}
	broken, err := k.UpdateTentative(invKey("widget"), "partner-b", "reservation", 7, entity.Delta("reserved", 7))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.BreakPromise(broken.ID, "oversold", "coupon"); err != nil {
		t.Fatal(err)
	}
	k.Drain()
}

// TestDurableKernelRestart is the end-to-end acceptance check at the kernel
// layer: a durable node populated under group commit stops, reopens from its
// data directory alone, and serves identical states; new writes continue the
// log.
func TestDurableKernelRestart(t *testing.T) {
	dir := t.TempDir()
	opts := Options{
		Node: "dur", Units: 3, GroupCommit: true,
		DataDir: dir, Fsync: storage.SyncAlways, CheckpointEvery: 50,
	}
	k := newKernel(t, Options{Node: opts.Node, Units: opts.Units, GroupCommit: true,
		DataDir: dir, Fsync: storage.SyncAlways, CheckpointEvery: 50})
	populate(t, k)
	want := kernelStates(t, k)
	if len(want) == 0 {
		t.Fatal("populate produced no entities")
	}
	k.Close()

	k2 := newKernel(t, opts)
	assertSameKernelStates(t, want, kernelStates(t, k2))
	// The log continues: a fresh write lands and survives another restart.
	// Asserting the balance actually moved matters — the restarted node must
	// resume its transaction-id sequence past the recovered log, or the new
	// write wears a recycled id and is silently dropped as its own replay.
	before, err := k2.Read(accountKey("acct-0"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k2.Update(accountKey("acct-0"), entity.Delta("balance", 100)); err != nil {
		t.Fatalf("write after restart: %v", err)
	}
	after, err := k2.Read(accountKey("acct-0"))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := after.Float("balance"), before.Float("balance")+100; got != want {
		t.Fatalf("balance after restart write = %v, want %v (recycled txn id dropped the write)", got, want)
	}
	want2 := kernelStates(t, k2)
	k2.Close()
	k3 := newKernel(t, opts)
	assertSameKernelStates(t, want2, kernelStates(t, k3))
}

// TestKernelExportImportRoundTrip covers the backup/restore codec end to
// end, including the unit-count guard.
func TestKernelExportImportRoundTrip(t *testing.T) {
	src := newKernel(t, Options{Node: "src", Units: 3})
	populate(t, src)
	var backup bytes.Buffer
	if err := src.Export(&backup); err != nil {
		t.Fatalf("Export: %v", err)
	}

	wrong := newKernel(t, Options{Node: "wrong", Units: 2})
	if err := wrong.Import(bytes.NewReader(backup.Bytes())); err == nil || !strings.Contains(err.Error(), "unit counts must match") {
		t.Fatalf("unit-count mismatch not rejected: %v", err)
	}

	dst := newKernel(t, Options{Node: "dst", Units: 3})
	if err := dst.Import(bytes.NewReader(backup.Bytes())); err != nil {
		t.Fatalf("Import: %v", err)
	}
	assertSameKernelStates(t, kernelStates(t, src), kernelStates(t, dst))
}

// TestKernelExportImportWithCompactedHistory: archived summaries are not
// reconstructible from the record stream, so a backup taken after Compact
// must carry them explicitly — restoring must reproduce every compacted
// entity's state.
func TestKernelExportImportWithCompactedHistory(t *testing.T) {
	src := newKernel(t, Options{Node: "src", Units: 2})
	populate(t, src)
	if n := src.Compact(); n == 0 {
		t.Fatal("Compact summarised nothing")
	}
	want := kernelStates(t, src)
	var backup bytes.Buffer
	if err := src.Export(&backup); err != nil {
		t.Fatal(err)
	}

	dst := newKernel(t, Options{Node: "dst", Units: 2})
	if err := dst.Import(bytes.NewReader(backup.Bytes())); err != nil {
		t.Fatalf("Import: %v", err)
	}
	assertSameKernelStates(t, want, kernelStates(t, dst))

	// A truncated backup — any prefix decodes cleanly line by line, so only
	// the trailer can catch it — must be refused, not silently restored.
	raw := backup.Bytes()
	cut := bytes.LastIndexByte(raw[:len(raw)-1], '\n')
	trunc := newKernel(t, Options{Node: "trunc", Units: 2})
	if err := trunc.Import(bytes.NewReader(raw[:cut+1])); err == nil || !strings.Contains(err.Error(), "trailer") {
		t.Fatalf("truncated backup not rejected: %v", err)
	}
}

// TestDurableImportPersists: restoring into a durable node checkpoints the
// imported content, so it survives a restart without ever having gone
// through the write path.
func TestDurableImportPersists(t *testing.T) {
	src := newKernel(t, Options{Node: "src", Units: 2})
	populate(t, src)
	var backup bytes.Buffer
	if err := src.Export(&backup); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	opts := Options{Node: "dur", Units: 2, DataDir: dir}
	dst := newKernel(t, opts)
	if err := dst.Import(bytes.NewReader(backup.Bytes())); err != nil {
		t.Fatal(err)
	}
	want := kernelStates(t, dst)
	dst.Close()

	re := newKernel(t, opts)
	assertSameKernelStates(t, want, kernelStates(t, re))
}
