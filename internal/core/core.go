// Package core implements the kernel of the inconsistency-principled data
// management system: it composes the log-structured storage, serialization
// units, transaction managers, event queues, the process-step engine,
// deferred secondary data, logical locks, tentative operations and apologies,
// and online schema migration into a single embeddable component with a
// selectable consistency discipline.
//
// The programming model follows principles 2.4–2.6 (SOUPS): applications are
// written as process steps, each containing at most one transaction that
// updates one entity and emits events; the kernel routes entities to
// serialization units, schedules steps, maintains aggregates asynchronously
// and handles constraint violations and conflicts as managed exceptions
// rather than refusals.
//
// Scheduling: each serialization unit runs its own process engine, and
// Start launches Options.Workers workers per unit as a work-stealing pool
// over per-entity serial lanes (see internal/process). Steps for different
// entities run concurrently across — and now also within — units, while
// every entity's steps execute serially in enqueue order, the guarantee the
// paper's at-least-once-plus-idempotence recipe depends on. ProcessStats
// aggregates the pool counters (lane steals, peak lane depth, keyed
// dequeues) across units; docs/CONCURRENCY.md states the full ordering
// contract.
package core

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/aggregate"
	"repro/internal/apology"
	"repro/internal/clock"
	"repro/internal/entity"
	"repro/internal/locks"
	"repro/internal/lsdb"
	"repro/internal/lsm"
	"repro/internal/metrics"
	"repro/internal/migrate"
	"repro/internal/netsim"
	"repro/internal/partition"
	"repro/internal/process"
	"repro/internal/queue"
	"repro/internal/replica"
	"repro/internal/storage"
	"repro/internal/txn"
)

// Common errors.
var (
	// ErrClosed is returned after Close.
	ErrClosed = errors.New("core: kernel closed")
	// ErrMultiUnit is returned when a strongly consistent multi-entity
	// transaction is requested but the kernel runs in SOUPS mode.
	ErrMultiUnit = errors.New("core: multi-unit transaction not allowed in SOUPS mode")
)

// Consistency selects the kernel-wide discipline.
type Consistency int

// Consistency disciplines.
const (
	// EventualSOUPS is the paper's recommendation: solipsistic single-entity
	// transactions, deferred secondary data, queued propagation, managed
	// constraint violations.
	EventualSOUPS Consistency = iota
	// StrongSingleCopy is the conventional baseline: pessimistic concurrency
	// control, two-phase commit for multi-entity work, synchronous
	// aggregates, strict validation.
	StrongSingleCopy
)

// String returns the discipline name.
func (c Consistency) String() string {
	if c == StrongSingleCopy {
		return "strong-single-copy"
	}
	return "eventual-soups"
}

// Options configure a Kernel.
type Options struct {
	// Node names this kernel instance.
	Node clock.NodeID
	// Units is the number of serialization units (partitions). Default 1.
	Units int
	// Consistency selects the kernel-wide discipline. Default EventualSOUPS.
	Consistency Consistency
	// TxnMode overrides the concurrency-control mode implied by Consistency.
	TxnMode *txn.Mode
	// Validation overrides the validation mode implied by Consistency.
	Validation *entity.ValidationMode
	// SnapshotEvery configures LSDB snapshot frequency (default 32).
	SnapshotEvery int
	// DBShards is the number of lock-striped shards inside each
	// serialization unit's log store (default 8). More shards reduce
	// intra-unit lock contention between entities that hash to different
	// stripes; 1 reproduces the single-lock layout.
	DBShards int
	// GroupCommit enables group-commit append batching inside every unit's
	// log store: concurrent writers — transactions committing on different
	// goroutines, process-engine workers, migration backfills — enqueue their
	// appends on per-shard commit queues and a leader commits each batch
	// under one lock hold with one contiguous LSN run. Semantics are
	// unchanged; experiment E17 measures the multi-writer throughput win.
	GroupCommit bool
	// DataDir, when non-empty, makes the kernel durable: every serialization
	// unit opens a segmented write-ahead log in its own subdirectory
	// (unit-0, unit-1, ...), commits append to it (one framed batch write —
	// and with Fsync always, one fsync — per commit cycle; GroupCommit
	// amortises that force across concurrent writers), and Open recovers each
	// unit from its latest checkpoint plus the log tail. The unit count must
	// match across restarts — the directory layout is per-unit.
	DataDir string
	// Fsync selects the durability/latency trade-off of the write-ahead log
	// (only meaningful with DataDir): storage.SyncAlways forces every commit
	// cycle, storage.SyncOS (default) leaves flushing to the page cache.
	Fsync storage.SyncMode
	// CheckpointEvery takes a checkpoint of a unit's store after roughly
	// this many records since the last one (only meaningful with DataDir;
	// default 4096, negative disables automatic checkpoints). Checkpoints
	// bound recovery to the post-checkpoint log tail.
	CheckpointEvery int
	// SegmentBytes is the WAL segment rotation threshold (only meaningful
	// with DataDir; default 4 MiB).
	SegmentBytes int64
	// FlushBytes triggers a tiered background flush once roughly this many
	// bytes of record payload have been committed since the last one (only
	// meaningful with DataDir; default 4 MiB, negative disables the byte
	// trigger — the CheckpointEvery record trigger still applies).
	FlushBytes int64
	// CompactAfter is how many level-0 SSTables accumulate before the
	// background compactor merges them into the level-1 run (only meaningful
	// with DataDir; default 4).
	CompactAfter int
	// CompactThrottle is the pause the compactor takes between merge batches
	// so background merging never monopolises the disk against foreground
	// commits (only meaningful with DataDir; default 500µs, negative
	// disables throttling).
	CompactThrottle time.Duration
	// DisableTiered keeps the pre-LSM layout: a bare WAL per unit with
	// stop-the-world checkpoints, no SSTables. Escape hatch and the E22
	// baseline.
	DisableTiered bool
	// MaxAppendBatch bounds how many queued appends one group-commit leader
	// folds into a single batch (default 64; only meaningful with
	// GroupCommit).
	MaxAppendBatch int
	// DeferredAggregates maintains secondary data asynchronously; the
	// default follows the consistency discipline.
	DeferredAggregates *bool
	// CollapseVertical enables inline execution of follow-up steps.
	CollapseVertical bool
	// Workers is the size of each unit's work-stealing step pool when Start
	// is used (default 2). Workers claim whole per-entity lanes, so raising
	// it scales cross-entity step throughput with cores without ever
	// reordering one entity's steps.
	Workers int
	// MaxQueueDepth is the admission-control high-water mark on each unit's
	// event queue: a Submit that would grow a unit's pending list past it is
	// shed with an error wrapping queue.ErrOverloaded (soupsd maps it to
	// 503 + Retry-After). Redeliveries of accepted work are exempt, so
	// backpressure never reorders or drops per-entity work already taken in.
	// Zero disables shedding.
	MaxQueueDepth int
	// RearmAfter is how long a unit stays in retryable degraded read-only
	// mode (an ENOSPC-style append failure) before the next write probes the
	// backend again (default 1s; see lsdb.Options.RearmAfter).
	RearmAfter time.Duration
	// TxnRetries is how many times Transact retries optimistic conflicts.
	TxnRetries int
	// PromiseLimit caps how many pending promises one entity may carry at
	// once: UpdateTentative refuses further promises on that entity with
	// apology.ErrPromiseLimit until some settle. Every pending promise is a
	// potential apology; this is the guardrail against unbounded
	// over-promising. Zero means unlimited.
	PromiseLimit int
	// Replication ships every unit's durable log to standby replicas: each
	// unit's store gets a commit sink that forwards its commit cycles (and
	// obsolescence/compaction marks) under the configured ack mode. Nil
	// disables replication.
	Replication *ReplicationOptions
	// UnitBackends, when non-nil, supplies the per-unit storage backends
	// directly instead of opening WALs under DataDir: unit i is recovered
	// from UnitBackends[i], and its length must equal Units. This is how a
	// promoted standby becomes a kernel — its received logs are handed here
	// — and how tests run durable semantics on in-memory backends. Takes
	// precedence over DataDir.
	UnitBackends []storage.Backend
}

// ReplicationOptions configure the primary side of WAL shipping (see
// internal/replica: the shipped stream is the storage log itself, and a
// standby is promoted by replaying it).
type ReplicationOptions struct {
	// Self is this node's id on the transport; defaults to Options.Node.
	Self clock.NodeID
	// Standbys are the peers every commit cycle ships to.
	Standbys []clock.NodeID
	// Ack selects the durability/latency trade-off: AckAsync (default),
	// AckSync or AckQuorum. Under the synchronous modes a failed ship
	// surfaces to the writer as an error wrapping replica.ErrStandbyAcks —
	// the write is still committed and durable locally (post-install
	// indeterminacy).
	Ack replica.AckMode
	// Timeout bounds each synchronous ship (default 500ms).
	Timeout time.Duration
	// Transport moves the batches; when nil and Net is set a
	// replica.NetTransport is used. cmd/soupsd supplies an HTTP transport.
	Transport replica.Transport
	// Net, when set, also registers a catch-up handler so standbys can pull
	// missing log tails from this kernel.
	Net *netsim.Network
	// Window bounds each standby lane's in-flight batch queue (default
	// 128). The commit path never blocks on a full lane: the overflow
	// counts as that standby's ship failure and heals through catch-up.
	Window int
	// CatchupChunk caps how many appended records one catch-up response
	// carries (default 512); standbys stream the tail chunk by chunk.
	CatchupChunk int
}

func (o *Options) fill() {
	if o.Node == "" {
		o.Node = "kernel"
	}
	if o.Units <= 0 {
		o.Units = 1
	}
	if o.SnapshotEvery <= 0 {
		o.SnapshotEvery = 32
	}
	if o.DBShards <= 0 {
		o.DBShards = 8
	}
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.TxnRetries < 0 {
		o.TxnRetries = 0
	}
	if o.CheckpointEvery == 0 {
		o.CheckpointEvery = 4096
	}
	if o.CheckpointEvery < 0 {
		o.CheckpointEvery = 0
	}
}

// txnMode returns the effective concurrency-control mode.
func (o Options) txnMode() txn.Mode {
	if o.TxnMode != nil {
		return *o.TxnMode
	}
	if o.Consistency == StrongSingleCopy {
		return txn.Pessimistic
	}
	return txn.Solipsistic
}

// validation returns the effective validation mode.
func (o Options) validation() entity.ValidationMode {
	if o.Validation != nil {
		return *o.Validation
	}
	if o.Consistency == StrongSingleCopy {
		return entity.Strict
	}
	return entity.Managed
}

// deferredAggregates returns whether secondary data is maintained lazily.
func (o Options) deferredAggregates() bool {
	if o.DeferredAggregates != nil {
		return *o.DeferredAggregates
	}
	return o.Consistency == EventualSOUPS
}

// unit bundles the per-serialization-unit machinery.
type unit struct {
	id     partition.UnitID
	db     *lsdb.DB
	mgr    *txn.Manager
	queue  *queue.Queue
	engine *process.Engine
	maint  *aggregate.Maintainer
}

// Kernel is one node of the inconsistency-principled DMS.
type Kernel struct {
	opts Options

	mu       sync.Mutex
	closed   bool
	units    map[partition.UnitID]*unit
	byIndex  []*unit // creation order: byIndex[i] owns unit-i (replication's unit numbering)
	shipper  *replica.Shipper
	unitIDs  []partition.UnitID
	dir      *partition.Directory
	locks    *locks.Manager
	hlc      *clock.HLC
	ledger   *apology.Ledger
	registry *migrate.Registry
	metrics  *metrics.Registry
	coord    *txn.Coordinator
	warnings []entity.Warning
	started  bool
}

// Open creates a kernel.
func Open(opts Options) (*Kernel, error) {
	opts.fill()
	k := &Kernel{
		opts:     opts,
		units:    map[partition.UnitID]*unit{},
		locks:    locks.NewManager(locks.Options{}),
		hlc:      clock.NewHLC(opts.Node),
		registry: migrate.NewRegistry(),
		metrics:  metrics.NewRegistry(),
	}
	k.ledger = apology.NewLedger(apology.Options{
		OnBreak:             k.onPromiseBroken,
		MaxPendingPerEntity: opts.PromiseLimit,
	})
	if opts.UnitBackends != nil && len(opts.UnitBackends) != opts.Units {
		return nil, fmt.Errorf("core: %d unit backends for %d units", len(opts.UnitBackends), opts.Units)
	}
	locator := partition.NewHashLocator(64)
	var participants []txn.Participant
	for i := 0; i < opts.Units; i++ {
		id := partition.UnitID(fmt.Sprintf("%s-u%d", opts.Node, i))
		if err := locator.AddUnit(id); err != nil {
			return nil, err
		}
		db, err := openUnitStore(opts, id, i)
		if err != nil {
			return nil, err
		}
		mgr := txn.NewManager(db, k.locks, k.hlc, txn.Options{
			Node:                clock.NodeID(id),
			EnforceSingleEntity: opts.Consistency == EventualSOUPS,
		})
		// Unit queues are in-process and die with the kernel, so visibility
		// redelivery exists only for a consumer that lost a message while the
		// process lives — which the engine's lanes never do. A long lease
		// keeps deep lane backlogs (the dispatcher leases the whole
		// deliverable backlog into lanes) from churning reclaim/redelivery
		// cycles and spuriously dead-lettering messages that are alive in a
		// lane; see the step-pool notes in internal/process.
		q := queue.New(string(id), queue.Options{
			VisibilityTimeout: 10 * time.Minute,
			MaxDepth:          opts.MaxQueueDepth,
		})
		engine := process.NewEngine(mgr, q, process.Options{
			Workers:          opts.Workers,
			TxnMode:          opts.txnMode(),
			CollapseVertical: opts.CollapseVertical,
			Route:            k.routeQueue,
		})
		maintMode := aggregate.Deferred
		if !opts.deferredAggregates() {
			maintMode = aggregate.Synchronous
		}
		u := &unit{
			id:     id,
			db:     db,
			mgr:    mgr,
			queue:  q,
			engine: engine,
			maint:  aggregate.NewMaintainer(db, maintMode),
		}
		k.units[id] = u
		k.byIndex = append(k.byIndex, u)
		k.unitIDs = append(k.unitIDs, id)
		participants = append(participants, txn.Participant{Manager: mgr})
	}
	sort.Slice(k.unitIDs, func(i, j int) bool { return k.unitIDs[i] < k.unitIDs[j] })
	k.dir = partition.NewDirectory(locator)
	k.coord = txn.NewCoordinator(participants...)
	if r := opts.Replication; r != nil && len(r.Standbys) > 0 {
		self := r.Self
		if self == "" {
			self = opts.Node
		}
		k.shipper = replica.NewShipper(replica.ShipperOptions{
			Self:         self,
			Standbys:     r.Standbys,
			Mode:         r.Ack,
			Timeout:      r.Timeout,
			Transport:    r.Transport,
			Net:          r.Net,
			Source:       k.unitTail,
			Window:       r.Window,
			CatchupChunk: r.CatchupChunk,
		})
		// Attaching the sinks here is safe: the kernel is not shared yet,
		// so no commit can race the late bind.
		for i, u := range k.byIndex {
			u.db.SetCommitSink(k.shipper.Sink(i))
		}
	}
	return k, nil
}

// UnitTail returns one streaming catch-up chunk of a unit's log: up to limit
// records with LSN > after, in log order (limit <= 0 means unbounded).
// cmd/soupsd serves /catchup from it.
func (k *Kernel) UnitTail(unit int, after uint64, limit int) []lsdb.Record {
	return k.unitTail(unit, after, limit)
}

// unitTail serves standby catch-up requests from a unit's log, bounded to
// one streaming chunk.
func (k *Kernel) unitTail(unit int, after uint64, limit int) []lsdb.Record {
	if unit < 0 || unit >= len(k.byIndex) {
		return nil
	}
	return k.byIndex[unit].db.RecordsAfterN(after, limit)
}

// openUnitStore opens one unit's log store: purely in-memory without a
// DataDir, otherwise recovered from (and durably attached to) the unit's
// segmented WAL. Recovery runs before entity types are registered; that is
// safe — records, summaries and obsolescence marks replay without types, and
// a compaction mark simply re-archives less (identical rollup states either
// way, see lsdb.Recover).
func openUnitStore(opts Options, id partition.UnitID, index int) (*lsdb.DB, error) {
	dbOpts := lsdb.Options{
		Node:            clock.NodeID(id),
		SnapshotEvery:   opts.SnapshotEvery,
		Validation:      opts.validation(),
		Shards:          opts.DBShards,
		GroupCommit:     opts.GroupCommit,
		MaxBatch:        opts.MaxAppendBatch,
		CheckpointEvery: opts.CheckpointEvery,
		RearmAfter:      opts.RearmAfter,
	}
	if opts.UnitBackends != nil {
		dbOpts.Backend = opts.UnitBackends[index]
		db, err := lsdb.Recover(dbOpts)
		if err != nil {
			return nil, fmt.Errorf("core: recovering unit %s from supplied backend: %w", id, err)
		}
		return db, nil
	}
	if opts.DataDir == "" {
		return lsdb.Open(dbOpts), nil
	}
	unitDir := filepath.Join(opts.DataDir, fmt.Sprintf("unit-%d", index))
	wal, err := storage.OpenWAL(storage.WALOptions{
		Dir:          unitDir,
		SegmentBytes: opts.SegmentBytes,
		Sync:         opts.Fsync,
	})
	if err != nil {
		return nil, fmt.Errorf("core: unit %s: %w", id, err)
	}
	dbOpts.Backend = wal
	if !opts.DisableTiered {
		// Tier the WAL: flushes write SSTables beside the segments, the WAL
		// becomes the tail-only redo log, and recovery reads newest tables
		// plus that tail instead of a monolithic checkpoint.
		tiered, err := lsm.Open(wal, lsm.Options{
			Dir:             filepath.Join(unitDir, "sst"),
			CompactAfter:    opts.CompactAfter,
			CompactThrottle: opts.CompactThrottle,
		})
		if err != nil {
			wal.Close()
			return nil, fmt.Errorf("core: unit %s: %w", id, err)
		}
		dbOpts.Backend = tiered
		dbOpts.FlushBytes = opts.FlushBytes
	}
	db, err := lsdb.Recover(dbOpts)
	if err != nil {
		dbOpts.Backend.Close()
		return nil, fmt.Errorf("core: recovering unit %s: %w", id, err)
	}
	return db, nil
}

// Options returns the kernel's effective options.
func (k *Kernel) Options() Options { return k.opts }

// Consistency returns the configured discipline.
func (k *Kernel) Consistency() Consistency { return k.opts.Consistency }

// Units returns the serialization unit ids, sorted.
func (k *Kernel) Units() []partition.UnitID {
	return append([]partition.UnitID(nil), k.unitIDs...)
}

// Locks exposes the shared logical lock manager.
func (k *Kernel) Locks() *locks.Manager { return k.locks }

// Metrics exposes the kernel's metric registry.
func (k *Kernel) Metrics() *metrics.Registry { return k.metrics }

// Ledger exposes the promise/apology ledger.
func (k *Kernel) Ledger() *apology.Ledger { return k.ledger }

// SchemaRegistry exposes the schema version registry.
func (k *Kernel) SchemaRegistry() *migrate.Registry { return k.registry }

// routeQueue returns the queue of the serialization unit owning an event's
// entity, so emitted events always land where their step must execute.
func (k *Kernel) routeQueue(ev queue.Event) *queue.Queue {
	u, err := k.unitFor(ev.Entity)
	if err != nil {
		return nil
	}
	return u.queue
}

// unitFor returns the unit owning the key.
func (k *Kernel) unitFor(key entity.Key) (*unit, error) {
	id, err := k.dir.Locate(key)
	if err != nil {
		return nil, err
	}
	u, ok := k.units[id]
	if !ok {
		return nil, fmt.Errorf("core: directory points at unknown unit %s", id)
	}
	return u, nil
}

// unitIndex returns the participant index of a unit for the 2PC coordinator.
func (k *Kernel) unitIndex(id partition.UnitID) int {
	for i, u := range k.unitIDs {
		if u == id {
			return i
		}
	}
	return -1
}

// RegisterType registers an entity type on every unit and in the schema
// registry.
func (k *Kernel) RegisterType(t *entity.Type) error {
	if err := k.registry.Register(t); err != nil {
		return err
	}
	for _, u := range k.units {
		if err := u.db.RegisterType(t); err != nil {
			return err
		}
	}
	return nil
}

// RegisterTypes registers several types, stopping at the first error.
func (k *Kernel) RegisterTypes(types ...*entity.Type) error {
	for _, t := range types {
		if err := k.RegisterType(t); err != nil {
			return err
		}
	}
	return nil
}

// --- Transactions -----------------------------------------------------------

// checkReferences enforces referential integrity for Reference fields set by
// ops: in strict mode a dangling reference is an error; in managed mode it is
// recorded as a warning and handled by later process steps (principle 2.2).
func (k *Kernel) checkReferences(key entity.Key, ops []entity.Op) error {
	u, err := k.unitFor(key)
	if err != nil {
		return err
	}
	typ, ok := u.db.TypeOf(key.Type)
	if !ok {
		return nil // the append itself will report the unknown type
	}
	refTypes := map[string]string{}
	for _, f := range typ.Fields {
		if f.Type == entity.Reference {
			refTypes[f.Name] = f.RefType
		}
	}
	for _, op := range ops {
		if op.Kind != entity.OpSet {
			continue
		}
		refType, isRef := refTypes[op.Field]
		if !isRef {
			continue
		}
		val, _ := op.Value.(string)
		if val == "" {
			continue
		}
		refKey, err := entity.ParseKey(val)
		if err != nil {
			refKey = entity.Key{Type: refType, ID: val}
		}
		if k.Exists(refKey) {
			continue
		}
		problem := fmt.Sprintf("dangling reference %s.%s -> %s", key.Type, op.Field, refKey)
		if k.opts.validation() == entity.Strict {
			return fmt.Errorf("core: %s", problem)
		}
		k.recordWarnings([]entity.Warning{{Key: key, Op: op, Problem: problem}})
	}
	return nil
}

// Transact runs fn inside one focused transaction against the unit owning
// key and commits it. Events emitted via Txn.Emit go to that unit's queue.
func (k *Kernel) Transact(key entity.Key, fn func(*txn.Txn) error) (txn.CommitResult, error) {
	u, err := k.unitFor(key)
	if err != nil {
		return txn.CommitResult{}, err
	}
	start := time.Now()
	res, err := u.mgr.Run(k.opts.txnMode(), u.queue, k.opts.TxnRetries, fn)
	k.metrics.Histogram("txn.latency").Record(time.Since(start))
	if err != nil {
		k.metrics.Counter("txn.failed").Inc()
		return res, err
	}
	k.metrics.Counter("txn.committed").Inc()
	k.recordWarnings(res.Warnings)
	if !k.opts.deferredAggregates() {
		u.maint.CatchUp()
	}
	return res, nil
}

// Update is the single-shot convenience: apply ops to key in one focused
// transaction. Referential integrity of Reference fields is enforced in
// strict mode and turned into managed warnings otherwise.
func (k *Kernel) Update(key entity.Key, ops ...entity.Op) (txn.CommitResult, error) {
	if err := k.checkReferences(key, ops); err != nil {
		k.metrics.Counter("txn.failed").Inc()
		return txn.CommitResult{}, err
	}
	return k.Transact(key, func(t *txn.Txn) error {
		return t.Update(key, ops...)
	})
}

// UpdateTentative applies ops as a tentative promise and registers it in the
// apology ledger. The returned promise can later be kept or broken.
func (k *Kernel) UpdateTentative(key entity.Key, partner, kind string, quantity float64, ops ...entity.Op) (apology.Promise, error) {
	u, err := k.unitFor(key)
	if err != nil {
		return apology.Promise{}, err
	}
	res, err := u.mgr.Run(k.opts.txnMode(), u.queue, k.opts.TxnRetries, func(t *txn.Txn) error {
		return t.UpdateTentative(key, ops...)
	})
	if err != nil {
		return apology.Promise{}, err
	}
	p, err := k.ledger.MakeChecked(apology.Promise{
		Kind:     kind,
		Entity:   key,
		TxnID:    res.TxnID,
		Partner:  partner,
		Quantity: quantity,
	})
	if err != nil {
		// The entity is at its promise limit: withdraw the tentative record
		// just written so the refused promise leaves no trace in rollups (it
		// stays in the log as an obsolete record, like any broken promise).
		k.metrics.Counter("promise.refused").Inc()
		_ = u.db.MarkObsolete(key, res.TxnID)
		return apology.Promise{}, err
	}
	k.metrics.Counter("promise.made").Inc()
	return p, nil
}

// MultiWrite is one entity write inside a multi-entity request.
type MultiWrite struct {
	Key entity.Key
	Ops []entity.Op
	// Event optionally names the process-step event used to propagate this
	// write asynchronously in SOUPS mode ("" uses "core.apply").
	Event string
}

// ApplyEventName is the built-in process step that applies propagated writes.
const ApplyEventName = "core.apply"

// TransactMulti applies writes that may span entities and serialization
// units.
//
// In StrongSingleCopy mode it runs a two-phase commit across the owning
// units (the baseline the paper argues against). In EventualSOUPS mode the
// first write is applied in a focused local transaction and the remaining
// writes are propagated as process-step events to their owning units
// (principles 2.5/2.6); callers observe them once the steps execute.
func (k *Kernel) TransactMulti(writes []MultiWrite) error {
	if len(writes) == 0 {
		return nil
	}
	if k.opts.Consistency == StrongSingleCopy {
		var dws []txn.DistributedWrite
		for _, w := range writes {
			u, err := k.unitFor(w.Key)
			if err != nil {
				return err
			}
			dws = append(dws, txn.DistributedWrite{Participant: k.unitIndex(u.id), Key: w.Key, Ops: w.Ops})
		}
		start := time.Now()
		err := k.coord.Execute(dws, nil)
		k.metrics.Histogram("txn2pc.latency").Record(time.Since(start))
		if err != nil {
			k.metrics.Counter("txn2pc.failed").Inc()
			return err
		}
		k.metrics.Counter("txn2pc.committed").Inc()
		return nil
	}
	first := writes[0]
	res, err := k.Transact(first.Key, func(t *txn.Txn) error {
		return t.Update(first.Key, first.Ops...)
	})
	if err != nil {
		return err
	}
	// The remaining writes propagate as process-step events to their owning
	// units once the first transaction committed (principle 2.4: a committed
	// transaction may enqueue events that result in additional process
	// steps).
	for i, w := range writes[1:] {
		name := w.Event
		if name == "" {
			name = ApplyEventName
		}
		ev := queue.Event{
			Name:   name,
			Entity: w.Key,
			TxnID:  fmt.Sprintf("%s/propagate-%d", res.TxnID, i),
			Data:   map[string]interface{}{"ops": w.Ops},
		}
		if err := k.Submit(ev); err != nil {
			return err
		}
	}
	return nil
}

// --- Reads -------------------------------------------------------------------

// Read returns the subjective current state of an entity. The state is
// frozen and served zero-copy from the owning unit's materialised cache;
// call State.Thaw before mutating it.
func (k *Kernel) Read(key entity.Key) (*entity.State, error) {
	u, err := k.unitFor(key)
	if err != nil {
		return nil, err
	}
	st, _, err := u.db.Current(key)
	return st, err
}

// ReadAsOf returns the entity state as of a timestamp.
func (k *Kernel) ReadAsOf(key entity.Key, ts clock.Timestamp) (*entity.State, error) {
	u, err := k.unitFor(key)
	if err != nil {
		return nil, err
	}
	return u.db.AsOf(key, ts)
}

// History returns the insert-only version history of an entity.
func (k *Kernel) History(key entity.Key) (*entity.History, error) {
	u, err := k.unitFor(key)
	if err != nil {
		return nil, err
	}
	return u.db.History(key)
}

// Exists reports whether the entity has any recorded state.
func (k *Kernel) Exists(key entity.Key) bool {
	u, err := k.unitFor(key)
	if err != nil {
		return false
	}
	return u.db.Exists(key)
}

// Query scans every unit for entities of a type and calls fn with each
// current state; returning false stops the scan. States are frozen and
// shared zero-copy with the store's cache — fn must Thaw one before
// mutating it.
func (k *Kernel) Query(typeName string, fn func(*entity.State) bool) error {
	for _, id := range k.unitIDs {
		u := k.units[id]
		stop := false
		err := u.db.Scan(typeName, func(st *entity.State) bool {
			cont := fn(st)
			if !cont {
				stop = true
			}
			return cont
		})
		if err != nil {
			return err
		}
		if stop {
			return nil
		}
	}
	return nil
}

// Now returns a kernel timestamp (useful for ReadAsOf).
func (k *Kernel) Now() clock.Timestamp { return k.hlc.Now() }

// Warnings returns constraint violations accepted as managed exceptions so
// far (principle 2.2). The slice is a copy.
func (k *Kernel) Warnings() []entity.Warning {
	k.mu.Lock()
	defer k.mu.Unlock()
	return append([]entity.Warning(nil), k.warnings...)
}

func (k *Kernel) recordWarnings(ws []entity.Warning) {
	if len(ws) == 0 {
		return
	}
	k.mu.Lock()
	k.warnings = append(k.warnings, ws...)
	k.mu.Unlock()
	k.metrics.Counter("constraint.managed").Add(uint64(len(ws)))
}

// --- Process steps ------------------------------------------------------------

// DefineProcess registers the process definition on every unit's engine and
// installs the built-in propagation step.
func (k *Kernel) DefineProcess(def *process.Definition) error {
	for _, u := range k.units {
		if err := u.engine.Register(def); err != nil {
			return err
		}
	}
	return nil
}

// ensureApplyStep installs the built-in step that applies propagated writes.
func (k *Kernel) ensureApplyStep() error {
	def := process.NewDefinition("core-propagation")
	def.Step(ApplyEventName, func(ctx *process.StepContext) error {
		rawOps, _ := ctx.Event.Data["ops"].([]entity.Op)
		return ctx.Txn.Update(ctx.Event.Entity, rawOps...)
	})
	return k.DefineProcess(def)
}

// Submit enqueues an event on the unit owning its entity.
func (k *Kernel) Submit(ev queue.Event) error {
	u, err := k.unitFor(ev.Entity)
	if err != nil {
		return err
	}
	return u.engine.Submit(ev)
}

// Drain processes queued events synchronously on every unit until all queues
// are empty. Events emitted by steps are routed to the owning unit's queue,
// so the loop keeps going until a full pass over all units processes nothing.
func (k *Kernel) Drain() int {
	total := 0
	for {
		ran := 0
		for _, id := range k.unitIDs {
			ran += k.units[id].engine.Drain()
		}
		total += ran
		if ran == 0 {
			return total
		}
	}
}

// Start launches process workers and deferred-aggregate maintainers on every
// unit.
func (k *Kernel) Start() {
	k.mu.Lock()
	if k.started || k.closed {
		k.mu.Unlock()
		return
	}
	k.started = true
	k.mu.Unlock()
	for _, u := range k.units {
		u.engine.Start()
	}
}

// Stop halts workers started by Start.
func (k *Kernel) Stop() {
	k.mu.Lock()
	if !k.started {
		k.mu.Unlock()
		return
	}
	k.started = false
	k.mu.Unlock()
	for _, u := range k.units {
		u.engine.Stop()
	}
	if k.shipper != nil {
		// Flush the lanes before stopping them so an orderly shutdown does
		// not turn in-flight async batches into catch-up work.
		k.shipper.Drain()
		k.shipper.Close()
	}
}

// Close shuts the kernel down, flushing and closing every unit's durable
// backend. Flush errors are not reported here — durable deployments call
// Flush first and act on its error before closing.
func (k *Kernel) Close() {
	k.Stop()
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.closed {
		return
	}
	k.closed = true
	for _, u := range k.units {
		u.queue.Close()
		_ = u.db.Close()
	}
}

// Flush forces everything committed so far to every unit's stable storage.
// A no-op for in-memory kernels.
func (k *Kernel) Flush() error {
	for _, id := range k.unitIDs {
		if err := k.units[id].db.Sync(); err != nil {
			return fmt.Errorf("core: flushing unit %s: %w", id, err)
		}
	}
	return nil
}

// Checkpoint takes a checkpoint of every unit's store, bounding the next
// restart's recovery to the log tail written afterwards. A no-op for
// in-memory kernels.
func (k *Kernel) Checkpoint() error {
	for _, id := range k.unitIDs {
		if err := k.units[id].db.Checkpoint(); err != nil {
			return fmt.Errorf("core: checkpointing unit %s: %w", id, err)
		}
	}
	return nil
}

// StorageErr returns the most recent background storage failure on any unit
// — an automatic checkpoint or a compaction mark that could not be logged —
// or nil. Background failures do not fail the writes that triggered them,
// so health probes should surface this: a node whose checkpoints silently
// stopped keeps answering while its recovery time grows without bound.
func (k *Kernel) StorageErr() error {
	for _, id := range k.unitIDs {
		if err := k.units[id].db.BackendErr(); err != nil {
			return fmt.Errorf("core: unit %s: %w", id, err)
		}
	}
	return nil
}

// Compact summarises history on every unit: each entity's current rollup is
// archived and its detail records removed, up to the unit's present head
// (the paper's summarisation-and-archival functionality at kernel scale).
// Entities written concurrently with the pass keep their records. Returns
// how many entities were summarised.
func (k *Kernel) Compact() int {
	total := 0
	for _, id := range k.unitIDs {
		u := k.units[id]
		stats := u.db.Compact(u.db.HeadLSN())
		total += stats.Summarised
	}
	return total
}

// --- Backup and restore ---------------------------------------------------------

// exportHeader opens an export stream: the format version and the unit count
// the stream was taken from (LSN spaces are per-unit, so restore requires
// the same partitioning).
type exportHeader struct {
	Version int `json:"version"`
	Units   int `json:"units"`
}

// exportLine is one line of an export stream: an archived summary (Summary),
// a record (Record), or the end-of-stream trailer (Lines — the count of
// summary+record lines, letting Import detect a truncated backup: the
// line-per-JSON-document format would otherwise decode any prefix cleanly).
type exportLine struct {
	Unit    int                   `json:"unit"`
	Summary *lsdb.PersistedState  `json:"summary,omitempty"`
	Record  *lsdb.PersistedRecord `json:"record,omitempty"`
	Lines   *int                  `json:"lines,omitempty"`
}

// Export writes a portable backup of every unit as a JSON stream: a header
// line, each unit's archived summaries (compacted entities are not
// reconstructible from records, so they travel explicitly), each unit's
// retained records in LSN order, and a trailer with the total line count.
// The stream uses the same export codec as lsdb.Save, so int64 values
// survive exactly.
func (k *Kernel) Export(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(exportHeader{Version: 1, Units: len(k.unitIDs)}); err != nil {
		return fmt.Errorf("core: export: %w", err)
	}
	lines := 0
	for i, id := range k.unitIDs {
		// One atomic cut per unit: a Compact racing the export cannot move
		// an entity between the summary and record sets unseen.
		summaries, records := k.units[id].db.ExportCut()
		for _, sum := range summaries {
			ps := lsdb.ToPersistedState(sum.State)
			if err := enc.Encode(exportLine{Unit: i, Summary: &ps}); err != nil {
				return fmt.Errorf("core: export: %w", err)
			}
			lines++
		}
		for _, rec := range records {
			pr := lsdb.ToPersisted(rec)
			if err := enc.Encode(exportLine{Unit: i, Record: &pr}); err != nil {
				return fmt.Errorf("core: export: %w", err)
			}
			lines++
		}
	}
	if err := enc.Encode(exportLine{Lines: &lines}); err != nil {
		return fmt.Errorf("core: export: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("core: export: %w", err)
	}
	return nil
}

// Import replays a stream produced by Export into this kernel. The kernel
// must be freshly bootstrapped with the same unit count and entity types and
// must not be serving writes: records install through the bulk-load path
// with their original LSNs, which a concurrent append could collide with. A
// kernel that already holds records is refused up front, and a write that
// slips in while the import runs is detected afterwards — the import fails
// and the node must be wiped rather than serve an interleaved log. A stream
// without its trailer (a truncated backup) is rejected. Durable kernels
// checkpoint after the import, so the restored state is on disk before
// Import returns.
func (k *Kernel) Import(r io.Reader) error {
	for _, id := range k.unitIDs {
		if k.units[id].db.HeadLSN() != 0 {
			return fmt.Errorf("core: import: unit %s already has records; restore requires a fresh node", id)
		}
	}
	dec := json.NewDecoder(bufio.NewReaderSize(r, 1<<16))
	dec.UseNumber() // exact int64 round trip; see lsdb.FromPersisted
	var hdr exportHeader
	if err := dec.Decode(&hdr); err != nil {
		return fmt.Errorf("core: import: reading header: %w", err)
	}
	if hdr.Version != 1 {
		return fmt.Errorf("core: import: unsupported stream version %d", hdr.Version)
	}
	if hdr.Units != len(k.unitIDs) {
		return fmt.Errorf("core: import: stream has %d units, kernel has %d (unit counts must match)", hdr.Units, len(k.unitIDs))
	}
	lines := 0
	recordsPerUnit := make([]int, len(k.unitIDs))
	sawTrailer := false
	for {
		var line exportLine
		if err := dec.Decode(&line); err == io.EOF {
			break
		} else if err != nil {
			return fmt.Errorf("core: import: %w", err)
		}
		if line.Lines != nil {
			if *line.Lines != lines {
				return fmt.Errorf("core: import: stream trailer claims %d lines, read %d (truncated or corrupt backup)", *line.Lines, lines)
			}
			sawTrailer = true
			continue
		}
		if line.Unit < 0 || line.Unit >= len(k.unitIDs) {
			return fmt.Errorf("core: import: line for unknown unit %d", line.Unit)
		}
		db := k.units[k.unitIDs[line.Unit]].db
		switch {
		case line.Summary != nil:
			st, err := lsdb.FromPersistedState(*line.Summary)
			if err != nil {
				return fmt.Errorf("core: import: %w", err)
			}
			db.RestoreSummary(st.Key, st)
		case line.Record != nil:
			rec, err := lsdb.FromPersisted(*line.Record)
			if err != nil {
				return fmt.Errorf("core: import: %w", err)
			}
			db.LoadRecord(rec)
			recordsPerUnit[line.Unit]++
		default:
			return fmt.Errorf("core: import: line %d carries neither summary nor record", lines+1)
		}
		lines++
	}
	if !sawTrailer {
		return fmt.Errorf("core: import: stream ended without its trailer (truncated backup)")
	}
	// Detect writes that raced the import: every unit must hold exactly the
	// imported records, or the log is interleaved and unusable.
	for i, id := range k.unitIDs {
		if got := k.units[id].db.Len(); got != recordsPerUnit[i] {
			return fmt.Errorf("core: import: unit %s holds %d records, imported %d — the node took writes during restore and must be wiped", id, got, recordsPerUnit[i])
		}
	}
	// The bulk-load path bypasses the write-ahead log; a checkpoint captures
	// the imported content durably in one pass.
	return k.Checkpoint()
}

// ProcessStats aggregates process-engine statistics across units: counters
// are summed; PeakLaneDepth — a high-water mark, not a rate — is the
// maximum over units.
func (k *Kernel) ProcessStats() process.Stats {
	var total process.Stats
	for _, u := range k.units {
		s := u.engine.Stats()
		total.StepsExecuted += s.StepsExecuted
		total.StepsFailed += s.StepsFailed
		total.Retries += s.Retries
		total.Compensations += s.Compensations
		total.Collapsed += s.Collapsed
		total.EventsEmitted += s.EventsEmitted
		total.AuditLines += s.AuditLines
		total.UnknownEvents += s.UnknownEvents
		total.EnqueuedEvents += s.EnqueuedEvents
		total.LaneSteals += s.LaneSteals
		total.KeyedDequeues += s.KeyedDequeues
		total.DeadlineDropped += s.DeadlineDropped
		total.LeaseRenewals += s.LeaseRenewals
		if s.PeakLaneDepth > total.PeakLaneDepth {
			total.PeakLaneDepth = s.PeakLaneDepth
		}
	}
	return total
}

// TxnStats sums transaction statistics across units.
func (k *Kernel) TxnStats() txn.Stats {
	var total txn.Stats
	for _, u := range k.units {
		s := u.mgr.Stats()
		total.Commits += s.Commits
		total.Aborts += s.Aborts
		total.Conflicts += s.Conflicts
		total.LockTimeouts += s.LockTimeouts
	}
	return total
}

// ReplicaStats describes the kernel's replication posture and progress.
type ReplicaStats struct {
	// Enabled is false when the kernel ships nowhere.
	Enabled bool
	// Mode is the ack discipline ("async", "sync", "quorum").
	Mode string
	// Standbys is how many peers every commit ships to.
	Standbys int
	// Ship are the cumulative shipping counters.
	Ship replica.ShipStats
}

// ReplicaStats returns the replication counters (zero value when replication
// is off).
func (k *Kernel) ReplicaStats() ReplicaStats {
	if k.shipper == nil {
		return ReplicaStats{}
	}
	return ReplicaStats{
		Enabled:  true,
		Mode:     k.shipper.Mode().String(),
		Standbys: len(k.shipper.Standbys()),
		Ship:     k.shipper.Stats(),
	}
}

// PromoteStandby turns a log-receiving standby into a live kernel: it unions
// the log tails the surviving peers hold (quorum acks can scatter batches
// across standbys, so no single log is guaranteed complete), fences the
// standby against the old stream, and opens a kernel that recovers every unit
// from the received logs — the same replay a restart performs, so watermarks,
// caches and per-entity lane order come back exactly as the primary committed
// them. Unreachable peers are skipped (they are usually why promotion is
// happening). opts.Units is forced to the standby's unit count; set
// opts.Replication to have the new primary ship onward to the remaining
// standbys.
func PromoteStandby(sb *replica.Standby, peers []clock.NodeID, opts Options) (*Kernel, error) {
	for _, p := range peers {
		if p == sb.ID() {
			continue
		}
		for u := 0; u < sb.Units(); u++ {
			_, _ = sb.CatchUp(p, u) // best effort
		}
	}
	sb.Stop()
	opts.Units = sb.Units()
	opts.UnitBackends = sb.Backends()
	return Open(opts)
}

// QueueDepth returns the number of pending events across all units.
func (k *Kernel) QueueDepth() int {
	total := 0
	for _, u := range k.units {
		total += u.queue.Len()
	}
	return total
}

// UnitHealth is one serialization unit's degraded posture.
type UnitHealth struct {
	Unit       string `json:"unit"`
	QueueDepth int    `json:"queue_depth"`
	// Degraded marks a unit refusing writes; Reason is the documented
	// degraded state ("append-error", "fail-stopped", "corrupt",
	// "poisoned"), Permanent whether only repair/restart clears it.
	Degraded  bool      `json:"degraded,omitempty"`
	Reason    string    `json:"reason,omitempty"`
	Permanent bool      `json:"permanent,omitempty"`
	Since     time.Time `json:"since,omitempty"`
	Error     string    `json:"error,omitempty"`
}

// Health is the kernel's health surface: whether writes are being accepted,
// which units are degraded and why, the queue/backpressure counters, and
// the standby breaker states. soupsd serves it on /readyz and /status and
// folds the counters into /metrics; soupsctl status prints it.
type Health struct {
	// WritesOK is false while any unit refuses writes (degraded read-only
	// mode). Reads keep serving either way.
	WritesOK      bool         `json:"writes_ok"`
	DegradedUnits int          `json:"degraded_units"`
	Units         []UnitHealth `json:"units"`
	// QueueDepth is the pending-event total; QueueShed counts enqueues
	// refused by admission control; DeadlineDropped counts events dropped
	// unexecuted past their deadline (at dequeue or in a lane);
	// WritesRefused counts appends refused with lsdb.ErrDegraded.
	QueueDepth      int    `json:"queue_depth"`
	QueueShed       uint64 `json:"queue_shed"`
	DeadlineDropped uint64 `json:"deadline_dropped"`
	WritesRefused   uint64 `json:"writes_refused"`
	// Breakers maps each standby to its circuit-breaker state ("closed",
	// "open", "half-open"); nil when replication is off.
	Breakers map[string]string `json:"breakers,omitempty"`
}

// Health returns the kernel's degraded/overload posture. It is cheap enough
// to poll: degraded states are lock-free reads and the counters take one
// short lock each.
func (k *Kernel) Health() Health {
	h := Health{WritesOK: true}
	for _, id := range k.unitIDs {
		u := k.units[id]
		uh := UnitHealth{Unit: string(id), QueueDepth: u.queue.Len()}
		if d := u.db.Degraded(); d != nil {
			uh.Degraded = true
			uh.Reason = d.Reason
			uh.Permanent = d.Permanent
			uh.Since = d.Since
			if d.Err != nil {
				uh.Error = d.Err.Error()
			}
			h.WritesOK = false
			h.DegradedUnits++
		}
		h.QueueDepth += uh.QueueDepth
		h.QueueShed += u.queue.Shed()
		h.DeadlineDropped += u.queue.DeadlineDropped() + u.engine.Stats().DeadlineDropped
		h.WritesRefused += u.db.WritesRefused()
		h.Units = append(h.Units, uh)
	}
	if k.shipper != nil {
		h.Breakers = map[string]string{}
		for peer, st := range k.shipper.BreakerStates() {
			h.Breakers[string(peer)] = st
		}
	}
	return h
}

// TieredStats aggregates the LSM tier's posture across every unit: table
// layout and bloom/compaction counters summed from the backends, flush
// pipeline counters summed from the stores. ok is false when no unit runs a
// tiered backend (in-memory kernels, DisableTiered, supplied backends).
func (k *Kernel) TieredStats() (storage.TieredStats, lsdb.FlushStats, bool) {
	var ts storage.TieredStats
	var fs lsdb.FlushStats
	ok := false
	for _, u := range k.byIndex {
		t := u.db.Tiered()
		if t == nil {
			continue
		}
		ok = true
		s := t.TieredStats()
		if s.Levels > ts.Levels {
			ts.Levels = s.Levels
		}
		ts.Tables += s.Tables
		ts.L0Tables += s.L0Tables
		ts.TableKeys += s.TableKeys
		ts.Bytes += s.Bytes
		ts.BloomHits += s.BloomHits
		ts.BloomSkips += s.BloomSkips
		ts.BloomFalse += s.BloomFalse
		ts.Flushes += s.Flushes
		ts.FlushFailures += s.FlushFailures
		ts.Compactions += s.Compactions
		ts.CompactFailures += s.CompactFailures
		ts.CompactionBacklog += s.CompactionBacklog
		ts.WALPruneSkips += s.WALPruneSkips
		ts.WALPruneErrors += s.WALPruneErrors
		f := u.db.FlushStats()
		fs.Flushes += f.Flushes
		fs.Failures += f.Failures
		fs.Stalls += f.Stalls
		fs.PendingBytes += f.PendingBytes
		fs.Evicted += f.Evicted
		fs.ColdReads += f.ColdReads
		if fs.Reason == "" {
			fs.Reason = f.Reason
		}
	}
	return ts, fs, ok
}

// RepairUnit heals a fail-stopped or corrupt unit backend: the bad log
// suffix is quarantined and refilled from fetch (nil refills from the
// unit's own in-memory store, which log-first commit guarantees is a
// superset of the durable log). See lsdb.Repair.
func (k *Kernel) RepairUnit(unit int, fetch func(after uint64) ([]lsdb.Record, error)) error {
	if unit < 0 || unit >= len(k.byIndex) {
		return fmt.Errorf("core: unknown unit %d", unit)
	}
	db := k.byIndex[unit].db
	if fetch == nil {
		fetch = func(after uint64) ([]lsdb.Record, error) { return db.RecordsAfter(after), nil }
	}
	return db.Repair(fetch)
}

// --- Secondary data ------------------------------------------------------------

// DefineSumAggregate declares a sum aggregate on every unit. Reading it sums
// the per-unit partial aggregates.
func (k *Kernel) DefineSumAggregate(name, entityType, field, groupBy string) {
	for _, u := range k.units {
		u.maint.DefineSum(name, entityType, field, groupBy)
	}
}

// DefineCountAggregate declares a count aggregate on every unit.
func (k *Kernel) DefineCountAggregate(name, entityType, groupBy string) {
	for _, u := range k.units {
		u.maint.DefineCount(name, entityType, groupBy)
	}
}

// DefineIndex declares a secondary index on every unit.
func (k *Kernel) DefineIndex(name, entityType, field string) {
	for _, u := range k.units {
		u.maint.DefineIndex(name, entityType, field)
	}
}

// CatchUpAggregates folds all unprocessed records into secondary data and
// returns how many records were processed.
func (k *Kernel) CatchUpAggregates() int {
	total := 0
	for _, u := range k.units {
		total += u.maint.CatchUp()
	}
	return total
}

// Sum reads a sum aggregate (summed across units).
func (k *Kernel) Sum(name, group string) (float64, error) {
	total := 0.0
	for _, u := range k.units {
		v, err := u.maint.Sum(name, group)
		if err != nil {
			return 0, err
		}
		total += v
	}
	return total, nil
}

// Count reads a count aggregate (summed across units).
func (k *Kernel) Count(name, group string) (int, error) {
	total := 0
	for _, u := range k.units {
		v, err := u.maint.Count(name, group)
		if err != nil {
			return 0, err
		}
		total += v
	}
	return total, nil
}

// Lookup merges a secondary-index lookup across units.
func (k *Kernel) Lookup(name string, value interface{}) ([]string, error) {
	var out []string
	for _, id := range k.unitIDs {
		ids, err := k.units[id].maint.Lookup(name, value)
		if err != nil {
			return nil, err
		}
		out = append(out, ids...)
	}
	sort.Strings(out)
	return out, nil
}

// AggregateStaleness returns the total number of records not yet folded into
// secondary data across units (principle 2.3's inconsistency window).
func (k *Kernel) AggregateStaleness() int {
	total := 0
	for _, u := range k.units {
		pending, _ := u.maint.Staleness()
		total += pending
	}
	return total
}

// --- Promises and apologies -----------------------------------------------------

// onPromiseBroken withdraws the tentative record backing a broken promise.
func (k *Kernel) onPromiseBroken(p apology.Promise, reason string) {
	k.metrics.Counter("apology.issued").Inc()
	if p.TxnID == "" {
		return
	}
	if u, err := k.unitFor(p.Entity); err == nil {
		_ = u.db.MarkObsolete(p.Entity, p.TxnID)
	}
}

// KeepPromise marks a promise as fulfilled and confirms the tentative state.
func (k *Kernel) KeepPromise(id string) error {
	p, err := k.ledger.Get(id)
	if err != nil {
		return err
	}
	if err := k.ledger.Keep(id); err != nil {
		return err
	}
	k.metrics.Counter("promise.kept").Inc()
	_, err = k.Update(p.Entity, entity.Confirm())
	return err
}

// BreakPromise withdraws a promise and issues an apology.
func (k *Kernel) BreakPromise(id, reason, compensation string) (apology.Apology, error) {
	return k.ledger.Break(id, reason, compensation)
}

// ResolveOverbooking settles pending promises for an entity against actual
// availability, keeping them first-come-first-served.
func (k *Kernel) ResolveOverbooking(key entity.Key, available float64, reason, compensation string) (int, []apology.Apology, error) {
	kept, apologies, err := k.ledger.ResolveOverbooking(key, available, reason, compensation)
	if err != nil {
		return kept, apologies, err
	}
	for range apologies {
		// Confirm is not needed for broken promises; the OnBreak hook already
		// withdrew the tentative records.
		k.metrics.Counter("promise.broken").Inc()
	}
	for _, p := range k.ledger.PendingFor(key) {
		_ = p // remaining pending promises stay tentative
	}
	return kept, apologies, nil
}

// --- Schema migration -----------------------------------------------------------

// Migrate applies a schema migration across every unit using the given
// strategy and returns the aggregated progress.
func (k *Kernel) Migrate(m migrate.Migration, strategy migrate.Strategy, batchSize int) (migrate.Progress, error) {
	var total migrate.Progress
	for i, id := range k.unitIDs {
		u := k.units[id]
		migrator := migrate.NewMigrator(k.registry, u.db, u.mgr, k.locks)
		if i > 0 {
			// The registry already advanced for the first unit; re-registering
			// the same change would bump the version again, so apply the
			// already-registered active type to the remaining units directly.
			active, err := k.registry.Active(m.Type)
			if err != nil {
				return total, err
			}
			if err := u.db.RegisterType(active.Type); err != nil {
				return total, err
			}
			p, err := backfillUnit(u, m, strategy, k.locks, batchSize)
			if err != nil {
				return total, err
			}
			accumulate(&total, p)
			continue
		}
		_, p, err := migrator.Apply(m, strategy, batchSize)
		if err != nil {
			return total, err
		}
		accumulate(&total, p)
	}
	return total, nil
}

func accumulate(total *migrate.Progress, p migrate.Progress) {
	total.Entities += p.Entities
	total.Backfills += p.Backfills
	total.Skipped += p.Skipped
	total.Errors += p.Errors
	total.Elapsed += p.Elapsed
}

// backfillUnit runs the backfill of an already-registered migration against
// one additional unit.
func backfillUnit(u *unit, m migrate.Migration, strategy migrate.Strategy, lm *locks.Manager, batchSize int) (migrate.Progress, error) {
	var progress migrate.Progress
	if m.Backfill == nil {
		return progress, nil
	}
	start := time.Now()
	if strategy == migrate.StopTheWorld {
		owner := locks.Owner("migration:" + m.Type + ":" + string(u.id))
		if err := lm.Acquire(owner, migrate.MigrationLockResource(m.Type), locks.Exclusive, 0, 30*time.Second); err != nil {
			return progress, err
		}
		defer lm.ReleaseAll(owner)
	}
	for _, key := range u.db.KeysOfType(m.Type) {
		progress.Entities++
		st, _, err := u.db.Current(key)
		if err != nil {
			progress.Errors++
			continue
		}
		ops := m.Backfill(st)
		if len(ops) == 0 {
			progress.Skipped++
			continue
		}
		if _, err := u.mgr.Run(txn.Solipsistic, nil, 0, func(t *txn.Txn) error {
			return t.Update(key, ops...)
		}); err != nil {
			progress.Errors++
			continue
		}
		progress.Backfills++
	}
	progress.Elapsed = time.Since(start)
	return progress, nil
}

// --- Setup helper ----------------------------------------------------------------

// Bootstrap opens a kernel, registers the given types and installs the
// built-in propagation step. Most examples and benchmarks start here.
func Bootstrap(opts Options, types ...*entity.Type) (*Kernel, error) {
	k, err := Open(opts)
	if err != nil {
		return nil, err
	}
	if err := k.RegisterTypes(types...); err != nil {
		return nil, err
	}
	if err := k.ensureApplyStep(); err != nil {
		return nil, err
	}
	return k, nil
}
