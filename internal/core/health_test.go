package core

// Kernel-level graceful degradation: admission control sheds event submits
// past MaxQueueDepth without reordering accepted work, storage faults put a
// unit into degraded read-only mode that Health reports and RepairUnit
// clears, and the two surfaces compose on one kernel.

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/entity"
	"repro/internal/lsdb"
	"repro/internal/process"
	"repro/internal/queue"
	"repro/internal/storage"
	"repro/internal/workload"
)

func TestKernelShedsSubmitsAtMaxQueueDepth(t *testing.T) {
	k := newKernel(t, Options{Node: "n1", Units: 1, MaxQueueDepth: 4})
	var mu sync.Mutex
	var ran []string
	def := process.NewDefinition("load")
	def.Step("load.step", func(ctx *process.StepContext) error {
		mu.Lock()
		ran = append(ran, ctx.Event.TxnID)
		mu.Unlock()
		return ctx.Txn.Update(ctx.Event.Entity, entity.Delta("balance", 1))
	})
	if err := k.DefineProcess(def); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"t1", "t2", "t3", "t4"} {
		if err := k.Submit(queue.Event{Name: "load.step", Entity: accountKey("A1"), TxnID: id}); err != nil {
			t.Fatalf("submit %s within depth: %v", id, err)
		}
	}
	err := k.Submit(queue.Event{Name: "load.step", Entity: accountKey("A1"), TxnID: "t5"})
	if !errors.Is(err, queue.ErrOverloaded) {
		t.Fatalf("submit past depth = %v, want ErrOverloaded", err)
	}
	h := k.Health()
	if !h.WritesOK {
		t.Fatal("overload is backpressure, not degradation: writes must stay OK")
	}
	if h.QueueDepth != 4 || h.QueueShed != 1 {
		t.Fatalf("health depth=%d shed=%d, want 4/1", h.QueueDepth, h.QueueShed)
	}
	// The shed submit left the accepted backlog untouched: draining executes
	// t1..t4 in enqueue order, and the freed depth admits new work.
	if n := k.Drain(); n != 4 {
		t.Fatalf("drained %d steps, want 4", n)
	}
	mu.Lock()
	got := append([]string(nil), ran...)
	mu.Unlock()
	for i, want := range []string{"t1", "t2", "t3", "t4"} {
		if got[i] != want {
			t.Fatalf("execution order %v, want t1..t4 in enqueue order", got)
		}
	}
	if err := k.Submit(queue.Event{Name: "load.step", Entity: accountKey("A1"), TxnID: "t6"}); err != nil {
		t.Fatalf("submit after drain: %v", err)
	}
}

func TestKernelDegradedUnitHealthAndRepair(t *testing.T) {
	fb := storage.NewFaultBackend(storage.NewMemory())
	k, err := Bootstrap(Options{
		Node:         "n1",
		Units:        1,
		UnitBackends: []storage.Backend{fb},
		RearmAfter:   time.Hour, // no self-healing probe: the test drives recovery
	}, workload.Types()...)
	if err != nil {
		t.Fatal(err)
	}
	defer k.Close()
	if _, err := k.Update(accountKey("A1"), entity.Delta("balance", 10)); err != nil {
		t.Fatal(err)
	}

	fb.FailAppends(1)
	if _, err := k.Update(accountKey("A1"), entity.Delta("balance", 5)); !errors.Is(err, lsdb.ErrDegraded) {
		t.Fatalf("update into full disk = %v, want ErrDegraded", err)
	}
	h := k.Health()
	if h.WritesOK || h.DegradedUnits != 1 {
		t.Fatalf("health after fault = %+v, want one degraded unit", h)
	}
	if u := h.Units[0]; !u.Degraded || u.Reason != "append-error" || u.Permanent {
		t.Fatalf("unit health = %+v, want retryable append-error", u)
	}
	if st, err := k.Read(accountKey("A1")); err != nil || st.Float("balance") != 10 {
		t.Fatalf("degraded read = %v %v, want balance 10 from cache", st, err)
	}
	// Second write inside the re-arm window is refused without a probe.
	if _, err := k.Update(accountKey("A1"), entity.Delta("balance", 5)); !errors.Is(err, lsdb.ErrDegraded) {
		t.Fatalf("second update = %v, want ErrDegraded", err)
	}
	if h := k.Health(); h.WritesRefused == 0 {
		t.Fatal("WritesRefused did not count the refused update")
	}

	// The fault window has passed; repair (nil fetch refills from the unit's
	// own store, a superset of the durable log) re-arms writes.
	fb.Heal()
	if err := k.RepairUnit(0, nil); err != nil {
		t.Fatalf("RepairUnit: %v", err)
	}
	if h := k.Health(); !h.WritesOK {
		t.Fatalf("health after repair = %+v, want writes OK", h)
	}
	if _, err := k.Update(accountKey("A1"), entity.Delta("balance", 7)); err != nil {
		t.Fatalf("update after repair: %v", err)
	}
	if st, _ := k.Read(accountKey("A1")); st.Float("balance") != 17 {
		t.Fatalf("balance = %v, want 17 (refused writes left no trace)", st.Float("balance"))
	}
	if err := k.RepairUnit(7, nil); err == nil {
		t.Fatal("RepairUnit on unknown unit index must fail")
	}
}
