package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/apology"
	"repro/internal/entity"
	"repro/internal/lsdb"
	"repro/internal/migrate"
	"repro/internal/process"
	"repro/internal/queue"
	"repro/internal/txn"
	"repro/internal/workload"
)

func newKernel(t *testing.T, opts Options) *Kernel {
	t.Helper()
	k, err := Bootstrap(opts, workload.Types()...)
	if err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}
	t.Cleanup(k.Close)
	return k
}

func orderKey(id string) entity.Key   { return entity.Key{Type: "Order", ID: id} }
func accountKey(id string) entity.Key { return entity.Key{Type: "Account", ID: id} }
func invKey(id string) entity.Key     { return entity.Key{Type: "Inventory", ID: id} }

func TestBootstrapAndBasicReadWrite(t *testing.T) {
	k := newKernel(t, Options{Node: "n1", Units: 2})
	res, err := k.Update(orderKey("O1"), entity.Set("status", "OPEN"), entity.Set("customer", "Customer/C1"))
	if err != nil {
		t.Fatalf("Update: %v", err)
	}
	if res.TxnID == "" || len(res.Records) != 1 {
		t.Fatalf("result = %+v", res)
	}
	st, err := k.Read(orderKey("O1"))
	if err != nil || st.StringField("status") != "OPEN" {
		t.Fatalf("Read: %v %v", st, err)
	}
	if !k.Exists(orderKey("O1")) || k.Exists(orderKey("ghost")) {
		t.Fatal("Exists wrong")
	}
	if k.TxnStats().Commits != 1 {
		t.Fatalf("TxnStats = %+v", k.TxnStats())
	}
	if len(k.Units()) != 2 {
		t.Fatalf("Units = %v", k.Units())
	}
	if k.Consistency() != EventualSOUPS {
		t.Fatal("default consistency wrong")
	}
}

func TestReadAsOfAndHistory(t *testing.T) {
	k := newKernel(t, Options{Node: "n1"})
	k.Update(orderKey("O1"), entity.Set("status", "OPEN"))
	mid := k.Now()
	time.Sleep(time.Millisecond)
	k.Update(orderKey("O1"), entity.Set("status", "SHIPPED"))
	st, err := k.ReadAsOf(orderKey("O1"), mid)
	if err != nil || st.StringField("status") != "OPEN" {
		t.Fatalf("ReadAsOf: %v %v", st, err)
	}
	h, err := k.History(orderKey("O1"))
	if err != nil || h.Len() != 2 {
		t.Fatalf("History: %v %v", h, err)
	}
}

func TestSOUPSEnforcesSingleEntityTransactions(t *testing.T) {
	k := newKernel(t, Options{Node: "n1"})
	_, err := k.Transact(accountKey("A"), func(tx *txn.Txn) error {
		if err := tx.Update(accountKey("A"), entity.Delta("balance", 1)); err != nil {
			return err
		}
		return tx.Update(accountKey("B"), entity.Delta("balance", 1))
	})
	if !errors.Is(err, txn.ErrMultiEntity) {
		t.Fatalf("want ErrMultiEntity, got %v", err)
	}
}

func TestStrongModeAllowsMultiEntityVia2PC(t *testing.T) {
	k := newKernel(t, Options{Node: "n1", Units: 4, Consistency: StrongSingleCopy})
	err := k.TransactMulti([]MultiWrite{
		{Key: accountKey("A"), Ops: []entity.Op{entity.Delta("balance", -50)}},
		{Key: accountKey("B"), Ops: []entity.Op{entity.Delta("balance", 50)}},
	})
	if err != nil {
		t.Fatalf("TransactMulti: %v", err)
	}
	a, _ := k.Read(accountKey("A"))
	b, _ := k.Read(accountKey("B"))
	if a.Float("balance") != -50 || b.Float("balance") != 50 {
		t.Fatalf("balances = %v / %v", a.Float("balance"), b.Float("balance"))
	}
}

func TestSOUPSTransactMultiPropagatesViaSteps(t *testing.T) {
	k := newKernel(t, Options{Node: "n1", Units: 4})
	err := k.TransactMulti([]MultiWrite{
		{Key: accountKey("A"), Ops: []entity.Op{entity.Delta("balance", -50).Described("transfer out")}},
		{Key: accountKey("B"), Ops: []entity.Op{entity.Delta("balance", 50).Described("transfer in")}},
	})
	if err != nil {
		t.Fatalf("TransactMulti: %v", err)
	}
	// The first write is immediately visible; the second becomes visible once
	// the propagation step runs (subjective consistency in between).
	a, _ := k.Read(accountKey("A"))
	if a.Float("balance") != -50 {
		t.Fatalf("first write missing: %v", a.Float("balance"))
	}
	k.Drain()
	b, err := k.Read(accountKey("B"))
	if err != nil || b.Float("balance") != 50 {
		t.Fatalf("propagated write missing after drain: %v %v", b, err)
	}
	if k.TransactMulti(nil) != nil {
		t.Fatal("empty TransactMulti should be a no-op")
	}
}

func TestProcessPipelineAcrossUnits(t *testing.T) {
	k := newKernel(t, Options{Node: "n1", Units: 3})
	def := process.NewDefinition("order-to-cash")
	def.Step("order.created", func(ctx *process.StepContext) error {
		if err := ctx.Txn.Update(ctx.Event.Entity, entity.Set("status", "OPEN")); err != nil {
			return err
		}
		ctx.Emit(queue.Event{Name: "inventory.reserve", Entity: invKey("widget"),
			Data: map[string]interface{}{"qty": int64(2)}})
		return nil
	})
	def.Step("inventory.reserve", func(ctx *process.StepContext) error {
		qty, _ := ctx.Event.Data["qty"].(int64)
		return ctx.Txn.Update(ctx.Event.Entity, entity.Delta("onhand", -float64(qty)).Described("reserved"))
	})
	if err := k.DefineProcess(def); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := k.Submit(queue.Event{Name: "order.created", Entity: orderKey(fmt.Sprintf("O%d", i)), TxnID: fmt.Sprintf("ext-%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	steps := k.Drain()
	if steps != 20 {
		t.Fatalf("steps = %d, want 20", steps)
	}
	inv, err := k.Read(invKey("widget"))
	if err != nil || inv.Int("onhand") != -20 {
		t.Fatalf("inventory = %v %v (negative stock is allowed)", inv, err)
	}
	for i := 0; i < 10; i++ {
		st, err := k.Read(orderKey(fmt.Sprintf("O%d", i)))
		if err != nil || st.StringField("status") != "OPEN" {
			t.Fatalf("order %d: %v %v", i, st, err)
		}
	}
	ps := k.ProcessStats()
	if ps.StepsExecuted != 20 || ps.EventsEmitted != 10 {
		t.Fatalf("process stats = %+v", ps)
	}
	if k.QueueDepth() != 0 {
		t.Fatalf("queue depth = %d", k.QueueDepth())
	}
}

func TestBackgroundWorkers(t *testing.T) {
	k := newKernel(t, Options{Node: "n1", Units: 2, Workers: 2})
	def := process.NewDefinition("deposits")
	def.Step("deposit", func(ctx *process.StepContext) error {
		return ctx.Txn.Update(ctx.Event.Entity, entity.Delta("balance", 1))
	})
	k.DefineProcess(def)
	k.Start()
	defer k.Stop()
	const n = 50
	for i := 0; i < n; i++ {
		if err := k.Submit(queue.Event{Name: "deposit", Entity: accountKey("A"), TxnID: fmt.Sprintf("d%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st, err := k.Read(accountKey("A"))
		if err == nil && st.Float("balance") == n {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	st, _ := k.Read(accountKey("A"))
	t.Fatalf("workers never processed all deposits: %v", st.Float("balance"))
}

func TestManagedWarningsSurfaceOnKernel(t *testing.T) {
	k := newKernel(t, Options{Node: "n1"})
	// Out-of-order reference plus unknown field: accepted with warnings.
	_, err := k.Update(entity.Key{Type: "Opportunity", ID: "OP1"},
		entity.Set("customer", "Customer/missing"),
		entity.Set("forecast_category", "A"))
	if err != nil {
		t.Fatalf("managed-mode update rejected: %v", err)
	}
	if len(k.Warnings()) == 0 {
		t.Fatal("no managed warnings recorded")
	}
}

func TestStrictModeRejectsUnknownField(t *testing.T) {
	k := newKernel(t, Options{Node: "n1", Consistency: StrongSingleCopy})
	_, err := k.Update(orderKey("O1"), entity.Set("bogus", 1))
	if err == nil {
		t.Fatal("strict kernel accepted unknown field")
	}
}

func TestDeferredAggregates(t *testing.T) {
	k := newKernel(t, Options{Node: "n1", Units: 2})
	k.DefineSumAggregate("revenue", "Order", "total", "")
	k.DefineCountAggregate("orders", "Order", "status")
	k.DefineIndex("orders-by-status", "Order", "status")
	for i := 0; i < 10; i++ {
		k.Update(orderKey(fmt.Sprintf("O%d", i)), entity.Set("status", "OPEN"), entity.Set("total", 10.0))
	}
	// Deferred: stale until caught up.
	if v, _ := k.Sum("revenue", ""); v != 0 {
		t.Fatalf("deferred aggregate fresh too early: %v", v)
	}
	if k.AggregateStaleness() == 0 {
		t.Fatal("staleness should be non-zero before catch-up")
	}
	k.CatchUpAggregates()
	if v, _ := k.Sum("revenue", ""); v != 100 {
		t.Fatalf("revenue = %v, want 100", v)
	}
	if n, _ := k.Count("orders", "OPEN"); n != 10 {
		t.Fatalf("count = %d", n)
	}
	ids, err := k.Lookup("orders-by-status", "OPEN")
	if err != nil || len(ids) != 10 {
		t.Fatalf("lookup = %v %v", ids, err)
	}
	if k.AggregateStaleness() != 0 {
		t.Fatalf("staleness after catch-up = %d", k.AggregateStaleness())
	}
}

func TestSynchronousAggregatesInStrongMode(t *testing.T) {
	k := newKernel(t, Options{Node: "n1", Consistency: StrongSingleCopy})
	k.DefineSumAggregate("revenue", "Order", "total", "")
	k.Update(orderKey("O1"), entity.Set("total", 25.0))
	if v, _ := k.Sum("revenue", ""); v != 25 {
		t.Fatalf("synchronous aggregate stale: %v", v)
	}
}

func TestQueryAcrossUnits(t *testing.T) {
	k := newKernel(t, Options{Node: "n1", Units: 4})
	for i := 0; i < 20; i++ {
		k.Update(orderKey(fmt.Sprintf("O%d", i)), entity.Set("status", "OPEN"))
	}
	count := 0
	if err := k.Query("Order", func(*entity.State) bool { count++; return true }); err != nil {
		t.Fatal(err)
	}
	if count != 20 {
		t.Fatalf("Query visited %d entities, want 20", count)
	}
	// Early termination.
	count = 0
	k.Query("Order", func(*entity.State) bool { count++; return false })
	if count != 1 {
		t.Fatalf("early stop visited %d", count)
	}
	if err := k.Query("Ghost", func(*entity.State) bool { return true }); err == nil {
		t.Fatal("unknown type should fail")
	}
}

func TestTentativePromiseKeepAndBreak(t *testing.T) {
	k := newKernel(t, Options{Node: "n1"})
	// Seed the bestseller with 5 copies.
	k.Update(entity.Key{Type: "Book", ID: "bestseller"}, entity.Set("stock", 5), entity.Set("title", "Principles"))
	// Two tentative orders reserve a copy each.
	p1, err := k.UpdateTentative(entity.Key{Type: "Book", ID: "bestseller"}, "alice", "order-confirmation", 1,
		entity.Delta("stock", -1).Described("reserved for alice"))
	if err != nil {
		t.Fatal(err)
	}
	p2, err := k.UpdateTentative(entity.Key{Type: "Book", ID: "bestseller"}, "bob", "order-confirmation", 1,
		entity.Delta("stock", -1).Described("reserved for bob"))
	if err != nil {
		t.Fatal(err)
	}
	st, _ := k.Read(entity.Key{Type: "Book", ID: "bestseller"})
	if st.Int("stock") != 3 || !st.Tentative {
		t.Fatalf("state after tentative reservations = %+v", st)
	}
	// Keep one promise, break the other: the broken reservation is withdrawn.
	if err := k.KeepPromise(p1.ID); err != nil {
		t.Fatal(err)
	}
	a, err := k.BreakPromise(p2.ID, "warehouse fire", "full refund")
	if err != nil || a.Partner != "bob" {
		t.Fatalf("BreakPromise: %+v %v", a, err)
	}
	st, _ = k.Read(entity.Key{Type: "Book", ID: "bestseller"})
	if st.Int("stock") != 4 {
		t.Fatalf("stock after withdrawal = %d, want 4", st.Int("stock"))
	}
	if st.Tentative {
		t.Fatal("state should no longer be tentative after confirm")
	}
	if rate := k.Ledger().ApologyRate(); rate != 0.5 {
		t.Fatalf("apology rate = %v", rate)
	}
}

func TestResolveOverbookingThroughKernel(t *testing.T) {
	k := newKernel(t, Options{Node: "n1"})
	key := entity.Key{Type: "Book", ID: "bestseller"}
	k.Update(key, entity.Set("stock", 5))
	for i := 0; i < 8; i++ {
		if _, err := k.UpdateTentative(key, fmt.Sprintf("customer-%d", i), "order-confirmation", 1,
			entity.Delta("stock", -1).Described("tentative sale")); err != nil {
			t.Fatal(err)
		}
	}
	kept, apologies, err := k.ResolveOverbooking(key, 5, "only 5 copies", "refund")
	if err != nil {
		t.Fatal(err)
	}
	if kept != 5 || len(apologies) != 3 {
		t.Fatalf("kept=%d apologies=%d", kept, len(apologies))
	}
	// The three withdrawn reservations leave stock at 0, not -3.
	st, _ := k.Read(key)
	if st.Int("stock") != 0 {
		t.Fatalf("stock = %d, want 0", st.Int("stock"))
	}
}

func TestKernelMigration(t *testing.T) {
	k := newKernel(t, Options{Node: "n1", Units: 3})
	for i := 0; i < 30; i++ {
		k.Update(orderKey(fmt.Sprintf("O%d", i)), entity.Set("status", "OPEN"), entity.Set("total", 10.0))
	}
	progress, err := k.Migrate(migrate.Migration{
		Type:      "Order",
		AddFields: []entity.Field{{Name: "channel", Type: entity.String}},
		Backfill: func(st *entity.State) []entity.Op {
			return []entity.Op{entity.Set("channel", "direct")}
		},
	}, migrate.Online, 8)
	if err != nil {
		t.Fatalf("Migrate: %v", err)
	}
	if progress.Backfills != 30 {
		t.Fatalf("progress = %+v", progress)
	}
	st, _ := k.Read(orderKey("O7"))
	if st.StringField("channel") != "direct" {
		t.Fatalf("backfill missing: %+v", st.Fields)
	}
	// The new schema version is active.
	active, err := k.SchemaRegistry().Active("Order")
	if err != nil || active.Version != 2 {
		t.Fatalf("active = %+v %v", active, err)
	}
	// Writes using the new field succeed on every unit.
	for i := 0; i < 6; i++ {
		if _, err := k.Update(orderKey(fmt.Sprintf("N%d", i)), entity.Set("channel", "web")); err != nil {
			t.Fatalf("post-migration write: %v", err)
		}
	}
}

func TestUpdateUnknownTypeFails(t *testing.T) {
	k := newKernel(t, Options{Node: "n1"})
	if _, err := k.Update(entity.Key{Type: "Ghost", ID: "1"}, entity.Set("x", 1)); !errors.Is(err, lsdb.ErrUnknownType) {
		t.Fatalf("want ErrUnknownType, got %v", err)
	}
	if _, err := k.Read(entity.Key{Type: "Ghost", ID: "1"}); err == nil {
		t.Fatal("read of unknown type should fail")
	}
}

func TestConsistencyString(t *testing.T) {
	if EventualSOUPS.String() != "eventual-soups" || StrongSingleCopy.String() != "strong-single-copy" {
		t.Fatal("names wrong")
	}
}

func TestMetricsExposed(t *testing.T) {
	k := newKernel(t, Options{Node: "n1"})
	k.Update(orderKey("O1"), entity.Set("status", "OPEN"))
	if k.Metrics().Counter("txn.committed").Value() != 1 {
		t.Fatalf("metrics not recorded: %s", k.Metrics().Dump())
	}
	if k.Metrics().Histogram("txn.latency").Count() != 1 {
		t.Fatal("latency histogram empty")
	}
}

func TestCloseIsIdempotentAndStopsWorkers(t *testing.T) {
	k, err := Bootstrap(Options{Node: "n1"}, workload.Types()...)
	if err != nil {
		t.Fatal(err)
	}
	k.Start()
	k.Close()
	k.Close()
	if err := k.Submit(queue.Event{Name: "x", Entity: orderKey("O1")}); err == nil {
		t.Fatal("Submit after Close should fail")
	}
}

func TestOptionsAccessors(t *testing.T) {
	k := newKernel(t, Options{Node: "n1", Units: 2})
	if k.Options().Units != 2 {
		t.Fatalf("Options = %+v", k.Options())
	}
	if k.Locks() == nil || k.Ledger() == nil || k.SchemaRegistry() == nil {
		t.Fatal("accessors returned nil")
	}
}

// TestKernelReadsAreFrozenAndAliasFree checks the kernel-level half of the
// copy-on-write contract: Read and Query hand out frozen states zero-copy,
// and a caller that thaws and scribbles over its copy never corrupts what
// later readers and transactions see.
func TestKernelReadsAreFrozenAndAliasFree(t *testing.T) {
	k := newKernel(t, Options{Node: "cow"})
	key := orderKey("O1")
	if _, err := k.Update(key,
		entity.Set("status", "OPEN"),
		entity.InsertChild("lineitems", "L1", entity.Fields{"product": "widget", "qty": 2}),
	); err != nil {
		t.Fatal(err)
	}
	st, err := k.Read(key)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !st.Frozen() {
		t.Fatal("Read should return a frozen state")
	}
	mine := st.Thaw()
	mine.Fields["status"] = "SCRIBBLED"
	mine.Deleted = true
	if err := k.Query("Order", func(qs *entity.State) bool {
		if !qs.Frozen() {
			t.Error("Query should hand out frozen states")
		}
		m := qs.Thaw()
		m.Fields["status"] = "SCRIBBLED-TOO"
		return true
	}); err != nil {
		t.Fatal(err)
	}
	again, err := k.Read(key)
	if err != nil {
		t.Fatal(err)
	}
	if again.StringField("status") != "OPEN" || again.Deleted {
		t.Fatalf("caller scribbling leaked into the kernel: %q deleted=%v", again.StringField("status"), again.Deleted)
	}
	if c, ok := again.ChildByID("lineitems", "L1"); !ok || c.Fields["qty"].(int64) != 2 {
		t.Fatalf("child corrupted: ok=%v %+v", ok, c)
	}
	// A transaction reading the same entity sees the clean state too and can
	// keep writing through the normal path.
	if _, err := k.Transact(key, func(tx *txn.Txn) error {
		s, err := tx.Read(key)
		if err != nil {
			return err
		}
		if s.StringField("status") != "OPEN" {
			return fmt.Errorf("txn read saw corruption: %q", s.StringField("status"))
		}
		return tx.Update(key, entity.Set("status", "PAID"))
	}); err != nil {
		t.Fatal(err)
	}
	final, _ := k.Read(key)
	if final.StringField("status") != "PAID" {
		t.Fatalf("status = %q, want PAID", final.StringField("status"))
	}
}

// TestKernelGroupCommitEquivalence drives concurrent Update traffic through a
// group-commit kernel and a per-append kernel: every read-visible outcome —
// balances, transaction stats, aggregate sums after catch-up — must match.
func TestKernelGroupCommitEquivalence(t *testing.T) {
	const goroutines, perG, accounts = 8, 30, 5
	run := func(opts Options) *Kernel {
		k := newKernel(t, opts)
		k.DefineSumAggregate("deposits", "Account", "balance", "")
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < perG; i++ {
					key := accountKey(fmt.Sprintf("A%d", (g*perG+i)%accounts))
					if _, err := k.Update(key, entity.Delta("balance", 1)); err != nil {
						t.Errorf("goroutine %d: %v", g, err)
						return
					}
				}
			}(g)
		}
		wg.Wait()
		k.CatchUpAggregates()
		return k
	}
	batched := run(Options{Node: "gc", Units: 2, GroupCommit: true, MaxAppendBatch: 8})
	serial := run(Options{Node: "pa", Units: 2})
	if t.Failed() {
		return
	}
	for a := 0; a < accounts; a++ {
		key := accountKey(fmt.Sprintf("A%d", a))
		stB, errB := batched.Read(key)
		stS, errS := serial.Read(key)
		if errB != nil || errS != nil {
			t.Fatalf("Read(%s): %v / %v", key, errB, errS)
		}
		if stB.Float("balance") != stS.Float("balance") {
			t.Fatalf("%s: batched balance %v, serial %v", key, stB.Float("balance"), stS.Float("balance"))
		}
	}
	if b, s := batched.TxnStats().Commits, serial.TxnStats().Commits; b != s || b != goroutines*perG {
		t.Fatalf("commits: batched %d, serial %d, want %d", b, s, goroutines*perG)
	}
	sumB, _ := batched.Sum("deposits", "")
	sumS, _ := serial.Sum("deposits", "")
	if sumB != sumS || sumB != float64(goroutines*perG) {
		t.Fatalf("aggregate: batched %v, serial %v, want %d", sumB, sumS, goroutines*perG)
	}
}

// TestKernelGroupCommitTentativePromises exercises the promise/apology path
// over batched appends: broken promises withdraw their tentative records even
// when those records were committed by a group-commit leader.
func TestKernelGroupCommitTentativePromises(t *testing.T) {
	k := newKernel(t, Options{Node: "gcp", GroupCommit: true})
	key := entity.Key{Type: "Book", ID: "bestseller"}
	if _, err := k.Update(key, entity.Set("stock", 3)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := k.UpdateTentative(key, fmt.Sprintf("cust-%d", i), "order", 1, entity.Delta("stock", -1)); err != nil {
			t.Fatal(err)
		}
	}
	kept, apologies, err := k.ResolveOverbooking(key, 3, "only 3 in stock", "refund")
	if err != nil {
		t.Fatal(err)
	}
	if kept != 3 || len(apologies) != 2 {
		t.Fatalf("kept=%d apologies=%d, want 3/2", kept, len(apologies))
	}
	st, err := k.Read(key)
	if err != nil {
		t.Fatal(err)
	}
	if got := st.Int("stock"); got != 0 {
		t.Fatalf("stock after reconciliation = %d, want 0 (3 kept promises applied, 2 withdrawn)", got)
	}
}

// TestKernelPoolStatsAggregateAcrossUnits drives the started kernel — the
// per-unit work-stealing pools — across several units and entities and
// checks that every step lands exactly once and the pool's scheduling
// counters surface through ProcessStats.
func TestKernelPoolStatsAggregateAcrossUnits(t *testing.T) {
	k := newKernel(t, Options{Node: "pool", Units: 2, Workers: 4})
	def := process.NewDefinition("bump")
	def.Step("acct.bump", func(ctx *process.StepContext) error {
		return ctx.Txn.Update(ctx.Event.Entity, entity.Delta("balance", 1))
	})
	if err := k.DefineProcess(def); err != nil {
		t.Fatal(err)
	}
	k.Start()
	const entities, perEntity = 8, 10
	for seq := 0; seq < perEntity; seq++ {
		for ent := 0; ent < entities; ent++ {
			ev := queue.Event{
				Name:   "acct.bump",
				Entity: accountKey(fmt.Sprintf("P%d", ent)),
				TxnID:  fmt.Sprintf("p%d-%d", ent, seq),
			}
			if err := k.Submit(ev); err != nil {
				t.Fatal(err)
			}
		}
	}
	const want = entities * perEntity
	deadline := time.Now().Add(30 * time.Second)
	for k.ProcessStats().StepsExecuted < want {
		if time.Now().After(deadline) {
			t.Fatalf("timed out: %+v", k.ProcessStats())
		}
		time.Sleep(time.Millisecond)
	}
	k.Stop()
	for ent := 0; ent < entities; ent++ {
		st, err := k.Read(accountKey(fmt.Sprintf("P%d", ent)))
		if err != nil || st.Float("balance") != perEntity {
			t.Fatalf("P%d = %v, %v", ent, st, err)
		}
	}
	stats := k.ProcessStats()
	if stats.StepsExecuted != want {
		t.Fatalf("steps executed = %d, want %d", stats.StepsExecuted, want)
	}
	if stats.PeakLaneDepth == 0 {
		t.Fatalf("peak lane depth never recorded: %+v", stats)
	}
}

// A kernel-level promise limit: UpdateTentative refuses promises beyond
// Options.PromiseLimit per entity, and a refused promise leaves no trace in
// the entity's rollup (its tentative record is withdrawn).
func TestUpdateTentativePromiseLimit(t *testing.T) {
	k := newKernel(t, Options{Node: "n1", PromiseLimit: 2})
	key := invKey("I1")
	if _, err := k.Update(key, entity.Set("stock", int64(10))); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := k.UpdateTentative(key, fmt.Sprintf("partner-%d", i), "reservation", 1,
			entity.Delta("stock", -1)); err != nil {
			t.Fatalf("promise %d: %v", i, err)
		}
	}
	_, err := k.UpdateTentative(key, "partner-2", "reservation", 1, entity.Delta("stock", -1))
	if !errors.Is(err, apology.ErrPromiseLimit) {
		t.Fatalf("third promise: want ErrPromiseLimit, got %v", err)
	}
	// The refused promise's tentative delta must not survive in the rollup.
	st, err := k.Read(key)
	if err != nil {
		t.Fatal(err)
	}
	if got := st.Float("stock"); got != 8 {
		t.Fatalf("stock = %v, want 8 (two promised, the refused third withdrawn)", got)
	}
	if pending := len(k.Ledger().PendingFor(key)); pending != 2 {
		t.Fatalf("pending promises = %d, want 2", pending)
	}
	// Settling frees capacity at the kernel level too.
	promises := k.Ledger().PendingFor(key)
	if err := k.KeepPromise(promises[0].ID); err != nil {
		t.Fatal(err)
	}
	if _, err := k.UpdateTentative(key, "partner-3", "reservation", 1, entity.Delta("stock", -1)); err != nil {
		t.Fatalf("promise after settling: %v", err)
	}
}
