package core

import (
	"fmt"
	"testing"

	"repro/internal/clock"
	"repro/internal/entity"
	"repro/internal/netsim"
	"repro/internal/replica"
	"repro/internal/storage"
	"repro/internal/workload"
)

// newStandbyFor builds a log-receiving standby with one in-memory backend per
// kernel unit.
func newStandbyFor(t *testing.T, net *netsim.Network, self clock.NodeID, units int) *replica.Standby {
	t.Helper()
	backends := make([]storage.Backend, units)
	for i := range backends {
		backends[i] = storage.NewMemory()
	}
	sb, err := replica.NewStandby(replica.StandbyOptions{Self: self, Net: net, Backends: backends})
	if err != nil {
		t.Fatalf("NewStandby: %v", err)
	}
	return sb
}

// A replicated kernel ships every unit's commits; promoting the standby
// yields a kernel with identical entity states, identical per-entity version
// order, and a continuing LSN sequence.
func TestReplicatedKernelShipsAndPromotes(t *testing.T) {
	const units = 3
	net := netsim.New(netsim.Config{})
	defer net.Close()
	sb := newStandbyFor(t, net, "s1", units)
	k := newKernel(t, Options{
		Node:  "p",
		Units: units,
		Replication: &ReplicationOptions{
			Standbys: []clock.NodeID{"s1"},
			Ack:      replica.AckSync,
			Net:      net,
		},
	})

	// Spread writes across entities (and therefore units), several versions
	// each so per-entity order is observable.
	keys := make([]entity.Key, 6)
	for i := range keys {
		keys[i] = accountKey(fmt.Sprintf("A%d", i))
		for v := 0; v < 4; v++ {
			if _, err := k.Update(keys[i], entity.Delta("balance", float64(v+1)), entity.Set("owner", fmt.Sprintf("v%d", v))); err != nil {
				t.Fatalf("Update %s v%d: %v", keys[i], v, err)
			}
		}
	}
	rs := k.ReplicaStats()
	if !rs.Enabled || rs.Mode != "sync" || rs.Standbys != 1 {
		t.Fatalf("ReplicaStats = %+v", rs)
	}
	if rs.Ship.BatchesShipped == 0 || rs.Ship.ShipFailures != 0 {
		t.Fatalf("shipping counters wrong: %+v", rs.Ship)
	}

	// Capture the primary's per-entity version order, then lose it.
	wantOrder := map[entity.Key][]string{}
	for _, key := range keys {
		h, err := k.History(key)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range h.Versions {
			wantOrder[key] = append(wantOrder[key], v.TxnID)
		}
	}
	k.Close()

	promoted, err := PromoteStandby(sb, nil, Options{Node: "s1"})
	if err != nil {
		t.Fatalf("PromoteStandby: %v", err)
	}
	defer promoted.Close()
	if err := promoted.RegisterTypes(workload.Types()...); err != nil {
		t.Fatal(err)
	}
	for _, key := range keys {
		st, err := promoted.Read(key)
		if err != nil {
			t.Fatalf("promoted Read %s: %v", key, err)
		}
		if st.Float("balance") != 10 || st.StringField("owner") != "v3" {
			t.Fatalf("promoted state %s = balance %v owner %q", key, st.Float("balance"), st.StringField("owner"))
		}
		h, err := promoted.History(key)
		if err != nil {
			t.Fatal(err)
		}
		var got []string
		for _, v := range h.Versions {
			got = append(got, v.TxnID)
		}
		if fmt.Sprint(got) != fmt.Sprint(wantOrder[key]) {
			t.Fatalf("per-entity order diverged on %s:\n got %v\nwant %v", key, got, wantOrder[key])
		}
	}
	// The promoted kernel is a live primary: writes continue.
	if _, err := promoted.Update(keys[0], entity.Delta("balance", 1)); err != nil {
		t.Fatalf("write on promoted kernel: %v", err)
	}
	st, _ := promoted.Read(keys[0])
	if st.Float("balance") != 11 {
		t.Fatalf("balance after post-promotion write = %v, want 11", st.Float("balance"))
	}
}

// Promises and their withdrawals travel the shipped log too: a broken promise
// on the primary is a withdrawn record on the promoted standby.
func TestReplicationShipsTentativeWithdrawals(t *testing.T) {
	net := netsim.New(netsim.Config{})
	defer net.Close()
	sb := newStandbyFor(t, net, "s1", 1)
	k := newKernel(t, Options{
		Node:  "p",
		Units: 1,
		Replication: &ReplicationOptions{
			Standbys: []clock.NodeID{"s1"},
			Ack:      replica.AckSync,
			Net:      net,
		},
	})
	inv := invKey("I1")
	if _, err := k.Update(inv, entity.Set("stock", 10)); err != nil {
		t.Fatal(err)
	}
	p1, err := k.UpdateTentative(inv, "partner-1", "reservation", 4, entity.Delta("stock", -4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.UpdateTentative(inv, "partner-2", "reservation", 3, entity.Delta("stock", -3)); err != nil {
		t.Fatal(err)
	}
	// Break one promise: the obsolescence mark must ship like any record.
	if _, err := k.BreakPromise(p1.ID, "stock damaged", "coupon"); err != nil {
		t.Fatal(err)
	}
	k.Close()

	promoted, err := PromoteStandby(sb, nil, Options{Node: "s1"})
	if err != nil {
		t.Fatalf("PromoteStandby: %v", err)
	}
	defer promoted.Close()
	if err := promoted.RegisterTypes(workload.Types()...); err != nil {
		t.Fatal(err)
	}
	st, err := promoted.Read(inv)
	if err != nil {
		t.Fatal(err)
	}
	if st.Float("stock") != 7 {
		t.Fatalf("promoted stock = %v, want 7 (10 - kept 3; broken 4 withdrawn)", st.Float("stock"))
	}
}

// A kernel with misconfigured unit backends refuses to open rather than
// scattering units across wrong logs.
func TestUnitBackendsLengthValidated(t *testing.T) {
	_, err := Open(Options{Node: "x", Units: 2, UnitBackends: []storage.Backend{storage.NewMemory()}})
	if err == nil {
		t.Fatal("mismatched UnitBackends accepted")
	}
}
