package replica

// Degraded storage under replication: a primary whose backend starts
// refusing, tearing or corrupting appends must fail writers with the typed
// degraded vocabulary, keep serving reads, and come back — by re-arming
// after a transient window, by quarantine + refill from a standby's received
// log, or by failover when the backend is poisoned. Plus the standby circuit
// breaker and ship-retry behaviour on the shipping side.

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/entity"
	"repro/internal/lsdb"
	"repro/internal/netsim"
	"repro/internal/storage"
)

// newFaultShipPrimary is newShipPrimary over a fault-injecting backend with
// a fast re-arm, so degraded windows heal within a test's patience.
func newFaultShipPrimary(t *testing.T, net *netsim.Network, standbys []clock.NodeID, mode AckMode, rearm time.Duration) (*shipPrimary, *storage.FaultBackend) {
	t.Helper()
	fb := storage.NewFaultBackend(storage.NewMemory())
	db := lsdb.Open(lsdb.Options{Node: "p", Backend: fb, Shards: 4, RearmAfter: rearm})
	if err := db.RegisterType(accountType()); err != nil {
		t.Fatal(err)
	}
	sh := NewShipper(ShipperOptions{
		Self:     "p",
		Standbys: standbys,
		Mode:     mode,
		Timeout:  250 * time.Millisecond,
		Net:      net,
		Source:   func(unit int, after uint64, limit int) []lsdb.Record { return db.RecordsAfterN(after, limit) },
	})
	db.SetCommitSink(sh.Sink(0))
	return &shipPrimary{db: db, shipper: sh}, fb
}

// An injected ENOSPC window degrades the unit ("append-error", retryable):
// writers get ErrDegraded, reads keep serving, and once the window passes the
// next write is admitted as the re-arm probe and the unit heals on its own.
// Every ack mode behaves the same — the refusal is log-first, before any
// shipping happens — and the standby converges on exactly the committed
// writes.
func TestEnospcWindowDegradesReadOnlyThenReArms(t *testing.T) {
	for _, mode := range []AckMode{AckAsync, AckSync, AckQuorum} {
		t.Run(mode.String(), func(t *testing.T) {
			net := netsim.New(netsim.Config{})
			defer net.Close()
			sb := newShipStandby(t, net, "s1", storage.NewMemory())
			p, fb := newFaultShipPrimary(t, net, []clock.NodeID{"s1"}, mode, 20*time.Millisecond)
			key := acct("A1")

			if _, err := p.db.Append(key, []entity.Op{entity.Delta("balance", 10)}, ts(1), "p", "t1"); err != nil {
				t.Fatalf("healthy write: %v", err)
			}
			fb.FailAppends(2)
			if _, err := p.db.Append(key, []entity.Op{entity.Delta("balance", 5)}, ts(2), "p", "t2"); !errors.Is(err, lsdb.ErrDegraded) {
				t.Fatalf("write into full disk: err = %v, want ErrDegraded", err)
			}
			d := p.db.Degraded()
			if d == nil || d.Reason != "append-error" || d.Permanent {
				t.Fatalf("degraded state = %+v, want retryable append-error", d)
			}
			// Inside the re-arm delay the write is refused without touching
			// the backend at all.
			if _, err := p.db.Append(key, []entity.Op{entity.Delta("balance", 5)}, ts(3), "p", "t3"); !errors.Is(err, lsdb.ErrDegraded) {
				t.Fatalf("write inside re-arm delay: err = %v, want ErrDegraded", err)
			}
			// Reads are untouched: the refused write never installed.
			st, _, err := p.db.Current(key)
			if err != nil || st.Float("balance") != 10 {
				t.Fatalf("read while degraded = %v, %v (want balance 10)", st, err)
			}
			// First probe hits the second injected refusal and re-degrades;
			// the one after that heals.
			deadline := time.Now().Add(2 * time.Second)
			healed := false
			for i := 0; time.Now().Before(deadline); i++ {
				time.Sleep(2 * time.Millisecond)
				if _, err := p.db.Append(key, []entity.Op{entity.Delta("balance", 1)}, ts(int64(10+i)), "p", fmt.Sprintf("probe-%d", i)); err == nil {
					healed = true
					break
				} else if !errors.Is(err, lsdb.ErrDegraded) {
					t.Fatalf("probe: %v", err)
				}
			}
			if !healed {
				t.Fatal("unit never re-armed after the ENOSPC window")
			}
			if p.db.Degraded() != nil {
				t.Fatalf("still degraded after successful write: %+v", p.db.Degraded())
			}
			if p.db.Rearms() == 0 || p.db.WritesRefused() == 0 {
				t.Fatalf("counters: rearms=%d refused=%d, want both > 0", p.db.Rearms(), p.db.WritesRefused())
			}
			// The standby holds exactly the committed writes: refused appends
			// rolled their LSNs back, so the log is dense and converges.
			net.Quiesce()
			if _, err := sb.CatchUp("p", 0); err != nil {
				t.Fatal(err)
			}
			want := uint64(2) // t1 + the healing probe
			if got := sb.Watermark(0); got != want {
				t.Fatalf("standby watermark = %d, want %d", got, want)
			}
		})
	}
}

// A failed fsync poisons the backend permanently: no probe is attempted, no
// repair is accepted, reads keep serving, and recovery is failover — the
// standby holds every acked write.
func TestFsyncPoisonIsPermanentUntilFailover(t *testing.T) {
	net := netsim.New(netsim.Config{})
	defer net.Close()
	sb := newShipStandby(t, net, "s1", storage.NewMemory())
	p, fb := newFaultShipPrimary(t, net, []clock.NodeID{"s1"}, AckSync, 20*time.Millisecond)
	key := acct("A1")

	for i := 0; i < 2; i++ {
		if _, err := p.db.Append(key, []entity.Op{entity.Delta("balance", 10)}, ts(int64(i+1)), "p", fmt.Sprintf("t%d", i+1)); err != nil {
			t.Fatal(err)
		}
	}
	fb.PoisonNextSync()
	if _, err := p.db.Append(key, []entity.Op{entity.Delta("balance", 100)}, ts(3), "p", "t3"); !errors.Is(err, lsdb.ErrDegraded) {
		t.Fatalf("write over failed fsync: err = %v, want ErrDegraded", err)
	}
	d := p.db.Degraded()
	if d == nil || d.Reason != "poisoned" || !d.Permanent {
		t.Fatalf("degraded state = %+v, want permanent poisoned", d)
	}
	// Never retry a failed fsync: well past the re-arm delay, writes are
	// still refused without touching the backend.
	time.Sleep(5 * time.Millisecond)
	if _, err := p.db.Append(key, []entity.Op{entity.Delta("balance", 1)}, ts(4), "p", "t4"); !errors.Is(err, lsdb.ErrDegraded) {
		t.Fatalf("post-poison write: err = %v, want ErrDegraded (no probe)", err)
	}
	if fb.Stats().AppendsPassed != 2 {
		t.Fatalf("backend saw %d appends after poisoning, want the 2 healthy ones only", fb.Stats().AppendsPassed)
	}
	// Quarantine cannot restore unknown durability.
	if err := p.db.Repair(nil); err == nil {
		t.Fatal("Repair healed a poisoned backend")
	}
	// Reads still serve the pre-poison state.
	st, _, err := p.db.Current(key)
	if err != nil || st.Float("balance") != 20 {
		t.Fatalf("read on poisoned unit = %v, %v (want balance 20)", st, err)
	}
	// Failover: every acked write (t1, t2) is on the standby.
	_, bal := promoteBalance(t, sb, nil, key)
	if bal != 20 {
		t.Fatalf("promoted balance = %v, want 20 (acked writes survive failover)", bal)
	}
}

// Detected log corruption fail-stops the unit until Repair quarantines the
// bad suffix and refills it from a standby's received log (TailAfter), after
// which writes resume on the dense LSN sequence.
func TestCorruptionRepairedFromStandbyTail(t *testing.T) {
	net := netsim.New(netsim.Config{})
	defer net.Close()
	sbBackend := storage.NewMemory()
	sb := newShipStandby(t, net, "s1", sbBackend)
	p, fb := newFaultShipPrimary(t, net, []clock.NodeID{"s1"}, AckSync, 20*time.Millisecond)
	key := acct("A1")

	for i := 0; i < 3; i++ {
		if _, err := p.db.Append(key, []entity.Op{entity.Delta("balance", 10)}, ts(int64(i+1)), "p", fmt.Sprintf("t%d", i+1)); err != nil {
			t.Fatal(err)
		}
	}
	fb.CorruptFrom(2)
	var ce *storage.CorruptError
	_, err := p.db.Append(key, []entity.Op{entity.Delta("balance", 1)}, ts(4), "p", "t4")
	if !errors.Is(err, lsdb.ErrDegraded) || !errors.As(err, &ce) {
		t.Fatalf("write over corrupt log: err = %v, want ErrDegraded wrapping *CorruptError", err)
	}
	if d := p.db.Degraded(); d == nil || d.Reason != "corrupt" || !d.Permanent {
		t.Fatalf("degraded state = %+v, want permanent corrupt", d)
	}
	// Repair: quarantine (cuts the primary's log back to LSN 1), then refill
	// LSNs 2.. from the standby's received copy.
	if err := p.db.Repair(func(after uint64) ([]lsdb.Record, error) {
		return TailAfter(sbBackend, after)
	}); err != nil {
		t.Fatalf("Repair from standby tail: %v", err)
	}
	if d := p.db.Degraded(); d != nil {
		t.Fatalf("still degraded after repair: %+v", d)
	}
	if fb.Stats().Quarantines != 1 {
		t.Fatalf("quarantines = %d, want 1", fb.Stats().Quarantines)
	}
	// Writes resume and the repaired log holds the full dense sequence.
	res, err := p.db.Append(key, []entity.Op{entity.Delta("balance", 10)}, ts(5), "p", "t5")
	if err != nil {
		t.Fatalf("write after repair: %v", err)
	}
	if res.Record.LSN != 4 {
		t.Fatalf("post-repair LSN = %d, want 4 (refused write left no hole)", res.Record.LSN)
	}
	tail, err := TailAfter(fb, 0)
	if err != nil {
		t.Fatalf("reading repaired log: %v", err)
	}
	if len(tail) != 4 {
		t.Fatalf("repaired log holds %d records, want 4", len(tail))
	}
	net.Quiesce()
	if _, err := sb.CatchUp("p", 0); err != nil {
		t.Fatal(err)
	}
	if got := sb.Watermark(0); got != 4 {
		t.Fatalf("standby watermark = %d, want 4", got)
	}
	_, bal := promoteBalance(t, sb, nil, key)
	if bal != 40 {
		t.Fatalf("promoted balance = %v, want 40", bal)
	}
}

// fakeNow is an injectable clock for breaker cooldowns.
type fakeNow struct{ nanos int64 }

func (f *fakeNow) now() time.Time          { return time.Unix(0, atomic.LoadInt64(&f.nanos)) }
func (f *fakeNow) advance(d time.Duration) { atomic.AddInt64(&f.nanos, int64(d)) }

// A dead standby in sync mode costs a timeout per commit only until its
// breaker opens; after that ships short-circuit instantly. Past the cooldown
// one probe is admitted half-open, a success closes the breaker, and the
// standby heals the missed window through catch-up.
func TestBreakerOpensShortCircuitsAndHealsHalfOpen(t *testing.T) {
	clk := &fakeNow{}
	net := netsim.New(netsim.Config{UnreachableDelay: time.Millisecond})
	defer net.Close()
	sb := newShipStandby(t, net, "s1", storage.NewMemory())
	db := lsdb.Open(lsdb.Options{Node: "p", Backend: storage.NewMemory(), Shards: 4})
	if err := db.RegisterType(accountType()); err != nil {
		t.Fatal(err)
	}
	sh := NewShipper(ShipperOptions{
		Self: "p", Standbys: []clock.NodeID{"s1"}, Mode: AckSync,
		Timeout: 50 * time.Millisecond, Net: net,
		Source:           func(unit int, after uint64, limit int) []lsdb.Record { return db.RecordsAfterN(after, limit) },
		RetryAttempts:    -1, // isolate the breaker from the retry loop
		BreakerThreshold: 2,
		BreakerCooldown:  time.Second,
		Now:              clk.now,
	})
	db.SetCommitSink(sh.Sink(0))
	key := acct("A1")
	write := func(i int) error {
		_, err := db.Append(key, []entity.Op{entity.Delta("balance", 1)}, ts(int64(i)), "p", fmt.Sprintf("t%d", i))
		return err
	}

	net.SetLinkFault("p", "s1", netsim.LinkFault{Block: true})
	for i := 1; i <= 2; i++ {
		if err := write(i); !errors.Is(err, ErrStandbyAcks) {
			t.Fatalf("write %d to dead standby: err = %v, want ErrStandbyAcks", i, err)
		}
	}
	if got := sh.BreakerStates()["s1"]; got != "open" {
		t.Fatalf("breaker after %d failures = %q, want open", 2, got)
	}
	if sh.Stats().BreakerOpens != 1 {
		t.Fatalf("breaker opens = %d, want 1", sh.Stats().BreakerOpens)
	}
	// Open breaker: the ship is skipped outright (no transport attempt, no
	// timeout), still failing the sync ack verdict.
	before := sh.Stats()
	if err := write(3); !errors.Is(err, ErrStandbyAcks) {
		t.Fatalf("write during open breaker: err = %v, want ErrStandbyAcks", err)
	}
	after := sh.Stats()
	if after.BreakerShortCircuits != before.BreakerShortCircuits+1 {
		t.Fatalf("short circuits %d -> %d, want +1", before.BreakerShortCircuits, after.BreakerShortCircuits)
	}
	// A failed probe re-opens immediately (still blocked past the cooldown).
	clk.advance(2 * time.Second)
	if err := write(4); !errors.Is(err, ErrStandbyAcks) {
		t.Fatalf("failed probe: err = %v, want ErrStandbyAcks", err)
	}
	if got := sh.BreakerStates()["s1"]; got != "open" {
		t.Fatalf("breaker after failed probe = %q, want open", got)
	}
	// Standby comes back; the next probe closes the breaker.
	net.ClearLinkFaults()
	clk.advance(2 * time.Second)
	if err := write(5); err != nil {
		t.Fatalf("healing probe: %v", err)
	}
	if got := sh.BreakerStates()["s1"]; got != "closed" {
		t.Fatalf("breaker after successful probe = %q, want closed", got)
	}
	// The standby missed LSNs 1-4; catch-up heals the gap.
	if _, err := sb.CatchUp("p", 0); err != nil {
		t.Fatal(err)
	}
	if got := sb.Watermark(0); got != 5 {
		t.Fatalf("standby watermark after heal = %d, want 5", got)
	}
	_, bal := promoteBalance(t, sb, nil, key)
	if bal != 5 {
		t.Fatalf("promoted balance = %v, want 5", bal)
	}
}

// dropNTransport fails the first n ships with a transient error, then
// delivers straight into the standby.
type dropNTransport struct {
	drops int32
	sb    *Standby
	calls int32
}

func (d *dropNTransport) Ship(_ clock.NodeID, batch ShipBatch, _ bool, _ time.Duration) error {
	atomic.AddInt32(&d.calls, 1)
	if atomic.AddInt32(&d.drops, -1) >= 0 {
		return errors.New("transient: packet dropped")
	}
	_, _, err := d.sb.Receive(batch)
	return err
}

// One dropped packet must not fail a sync commit: the bounded in-ship retry
// absorbs it before the ack verdict, so the client sees success and the
// standby holds the write.
func TestShipRetryAbsorbsSingleDrop(t *testing.T) {
	sb, err := NewStandby(StandbyOptions{Self: "s1", Backends: []storage.Backend{storage.NewMemory()}})
	if err != nil {
		t.Fatal(err)
	}
	tr := &dropNTransport{drops: 1, sb: sb}
	db := lsdb.Open(lsdb.Options{Node: "p", Backend: storage.NewMemory(), Shards: 4})
	if err := db.RegisterType(accountType()); err != nil {
		t.Fatal(err)
	}
	sh := NewShipper(ShipperOptions{
		Self: "p", Standbys: []clock.NodeID{"s1"}, Mode: AckSync,
		Transport:    tr,
		RetryBackoff: time.Millisecond,
	})
	db.SetCommitSink(sh.Sink(0))
	key := acct("A1")
	if _, err := db.Append(key, []entity.Op{entity.Delta("balance", 10)}, ts(1), "p", "t1"); err != nil {
		t.Fatalf("sync commit over one dropped packet: %v (retry should have absorbed it)", err)
	}
	if got := atomic.LoadInt32(&tr.calls); got != 2 {
		t.Fatalf("transport calls = %d, want 2 (original + one retry)", got)
	}
	st := sh.Stats()
	if st.ShipRetries != 1 || st.ShipFailures != 0 || st.BreakerOpens != 0 {
		t.Fatalf("stats = %+v, want 1 retry, 0 failures, 0 breaker opens", st)
	}
	if got := sb.Watermark(0); got != 1 {
		t.Fatalf("standby watermark = %d, want 1", got)
	}
}

// Retries are bounded: a standby that stays dead exhausts them and the
// verdict still lands, with the retry count on the meter.
func TestShipRetryBoundedOnDeadStandby(t *testing.T) {
	sb, err := NewStandby(StandbyOptions{Self: "s1", Backends: []storage.Backend{storage.NewMemory()}})
	if err != nil {
		t.Fatal(err)
	}
	tr := &dropNTransport{drops: 1 << 20, sb: sb}
	db := lsdb.Open(lsdb.Options{Node: "p", Backend: storage.NewMemory(), Shards: 4})
	if err := db.RegisterType(accountType()); err != nil {
		t.Fatal(err)
	}
	sh := NewShipper(ShipperOptions{
		Self: "p", Standbys: []clock.NodeID{"s1"}, Mode: AckSync,
		Transport:     tr,
		RetryAttempts: 2,
		RetryBackoff:  time.Millisecond,
	})
	db.SetCommitSink(sh.Sink(0))
	if _, err := db.Append(acct("A1"), []entity.Op{entity.Delta("balance", 1)}, ts(1), "p", "t1"); !errors.Is(err, ErrStandbyAcks) {
		t.Fatalf("err = %v, want ErrStandbyAcks after retries exhaust", err)
	}
	if got := atomic.LoadInt32(&tr.calls); got != 3 {
		t.Fatalf("transport calls = %d, want 3 (original + 2 retries)", got)
	}
	if st := sh.Stats(); st.ShipRetries != 2 || st.ShipFailures != 1 {
		t.Fatalf("stats = %+v, want 2 retries and 1 failure", st)
	}
}
