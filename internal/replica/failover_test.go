package replica

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/entity"
	"repro/internal/lsdb"
	"repro/internal/netsim"
	"repro/internal/storage"
)

// Failover suite: the primary dies while concurrent writers are mid-flight —
// including mid-group-commit, where one leader is folding several writers
// into a single batch — and a standby is promoted underneath them.
// Invariants: every write acked to its writer survives; writes whose fate
// was indeterminate resubmit with their original transaction ids and land
// exactly once; and each entity's surviving records are a prefix of its
// issue order (per-entity lanes never reorder, even across the failover).

type issuedWrite struct {
	txn   string
	acked bool
}

// crashPrimary runs concurrent writers against a group-commit primary with
// synchronous shipping, promotes the standby mid-stream, and returns what
// each writer issued plus the promoted store.
func crashPrimary(t *testing.T, writers, perWriter int) (map[entity.Key][]issuedWrite, *lsdb.DB) {
	t.Helper()
	net := netsim.New(netsim.Config{})
	t.Cleanup(net.Close)
	sb := newShipStandby(t, net, "s1", storage.NewMemory())
	db := lsdb.Open(lsdb.Options{Node: "p", Backend: storage.NewMemory(), Shards: 2, GroupCommit: true})
	if err := db.RegisterType(accountType()); err != nil {
		t.Fatal(err)
	}
	sh := NewShipper(ShipperOptions{
		Self:     "p",
		Standbys: []clock.NodeID{"s1"},
		Mode:     AckSync,
		Timeout:  250 * time.Millisecond,
		Net:      net,
	})
	db.SetCommitSink(sh.Sink(0))

	var mu sync.Mutex
	issued := map[entity.Key][]issuedWrite{}
	count := 0
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			key := acct(fmt.Sprintf("W%d", w))
			for i := 0; i < perWriter; i++ {
				txn := fmt.Sprintf("w%d-%d", w, i)
				_, err := db.Append(key, []entity.Op{entity.Delta("balance", 1)},
					ts(int64(w*1000+i+1)), "p", txn)
				mu.Lock()
				issued[key] = append(issued[key], issuedWrite{txn: txn, acked: err == nil})
				count++
				mu.Unlock()
				if err != nil {
					// Replication refused the ack: the primary is dying under
					// us; a real client would fail over, not keep writing.
					return
				}
			}
		}(w)
	}

	// Kill the primary once the stream is genuinely mid-flight: promotion
	// fences the standby while group-commit leaders are still shipping.
	for {
		mu.Lock()
		n := count
		mu.Unlock()
		if n >= writers*perWriter/2 {
			break
		}
		time.Sleep(100 * time.Microsecond)
	}
	dbs, err := sb.Promote(nil, lsdb.Options{Node: "s1"}, accountType())
	if err != nil {
		t.Fatalf("Promote: %v", err)
	}
	wg.Wait()
	return issued, dbs[0]
}

func TestFailoverMidGroupCommitKeepsAckedWritesAndLaneOrder(t *testing.T) {
	const writers, perWriter = 4, 40
	issued, promoted := crashPrimary(t, writers, perWriter)

	for key, ws := range issued {
		var present []string
		for _, rec := range promoted.RecordsFor(key) {
			present = append(present, rec.TxnID)
		}
		// Per-entity lane order: the surviving records are exactly a prefix
		// of the issue order. Each writer is sequential on its own key and
		// stops at the first unacked write, so anything beyond the prefix
		// would mean the stream reordered or invented records.
		if len(present) > len(ws) {
			t.Fatalf("%s: standby holds %d records, only %d issued", key, len(present), len(ws))
		}
		for i, txn := range present {
			if ws[i].txn != txn {
				t.Fatalf("%s: lane order broken at %d: got %s, issued %s", key, i, txn, ws[i].txn)
			}
		}
		// No lost acked writes: every acked txn is within the prefix.
		acked := 0
		for _, w := range ws {
			if w.acked {
				acked++
			}
		}
		if len(present) < acked {
			t.Fatalf("%s: %d acked writes but only %d survived failover", key, acked, len(present))
		}
	}

	// Exactly-once resubmission: replay every issued write with its original
	// transaction id; survivors dedup, the rest land once. The final balance
	// is then exactly the issue count.
	for key, ws := range issued {
		for i, w := range ws {
			_, err := promoted.Append(key, []entity.Op{entity.Delta("balance", 1)},
				ts(int64(50000+i)), "s1", w.txn)
			if err != nil && !errors.Is(err, lsdb.ErrDuplicateTxn) {
				t.Fatalf("resubmitting %s: %v", w.txn, err)
			}
		}
		st, _, err := promoted.Current(key)
		if err != nil {
			t.Fatalf("Current(%s): %v", key, err)
		}
		if got, want := st.Float("balance"), float64(len(ws)); got != want {
			t.Fatalf("%s: balance after resubmission = %v, want %v (exactly-once violated)", key, got, want)
		}
	}
}

// The same crash with a larger writer pool, to shake out leader/batch edges
// under -race; invariants only, no balances.
func TestFailoverMidGroupCommitManyWriters(t *testing.T) {
	if testing.Short() {
		t.Skip("long crash matrix")
	}
	issued, promoted := crashPrimary(t, 8, 60)
	for key, ws := range issued {
		present := map[string]bool{}
		for _, rec := range promoted.RecordsFor(key) {
			present[rec.TxnID] = true
		}
		for _, w := range ws {
			if w.acked && !present[w.txn] {
				t.Fatalf("%s: acked write %s lost", key, w.txn)
			}
		}
	}
}
