package replica

import (
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/entity"
	"repro/internal/lsdb"
	"repro/internal/netsim"
	"repro/internal/storage"
)

// fanoutPrimary builds a primary whose shipper options the test controls —
// the latency and chunking tests need non-default windows and chunk sizes.
func fanoutPrimary(t *testing.T, net *netsim.Network, standbys []clock.NodeID, mode AckMode, tweak func(*ShipperOptions)) *shipPrimary {
	t.Helper()
	db := lsdb.Open(lsdb.Options{Node: "p", Backend: storage.NewMemory(), Shards: 4})
	if err := db.RegisterType(accountType()); err != nil {
		t.Fatal(err)
	}
	opts := ShipperOptions{
		Self:     "p",
		Standbys: standbys,
		Mode:     mode,
		Timeout:  time.Second,
		Net:      net,
		Source:   func(unit int, after uint64, limit int) []lsdb.Record { return db.RecordsAfterN(after, limit) },
	}
	if tweak != nil {
		tweak(&opts)
	}
	sh := NewShipper(opts)
	db.SetCommitSink(sh.Sink(0))
	return &shipPrimary{db: db, shipper: sh}
}

// Quorum commits return at the majority ack, not the slowest lane: with two
// fast standbys and one behind a high-latency link, the commit latency tracks
// the fast acks while the slow lane still delivers in the background.
func TestQuorumReturnsAtMajorityNotSlowest(t *testing.T) {
	net := netsim.New(netsim.Config{})
	defer net.Close()
	newShipStandby(t, net, "s1", storage.NewMemory())
	newShipStandby(t, net, "s2", storage.NewMemory())
	s3 := newShipStandby(t, net, "s3", storage.NewMemory())
	p := fanoutPrimary(t, net, []clock.NodeID{"s1", "s2", "s3"}, AckQuorum, nil)
	net.SetLinkFault("p", "s3", netsim.LinkFault{ExtraLatency: 100 * time.Millisecond})

	key := acct("A1")
	start := time.Now()
	if _, err := p.db.Append(key, []entity.Op{entity.Delta("balance", 10)}, ts(1), "p", "t1"); err != nil {
		t.Fatalf("quorum append: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 75*time.Millisecond {
		t.Fatalf("quorum commit took %v — waited on the slow lane (link RTT 200ms)", elapsed)
	}
	// The slow lane is still in flight; draining the shipper delivers it.
	p.shipper.Drain()
	if got := s3.Watermark(0); got != 1 {
		t.Fatalf("slow standby watermark after drain = %d, want 1", got)
	}
}

// Sync commits block on every standby's ack: the slowest lane sets the
// commit latency, and when Append returns the batch is on all of them.
func TestSyncReturnsAtSlowestAck(t *testing.T) {
	net := netsim.New(netsim.Config{})
	defer net.Close()
	newShipStandby(t, net, "s1", storage.NewMemory())
	s2 := newShipStandby(t, net, "s2", storage.NewMemory())
	p := fanoutPrimary(t, net, []clock.NodeID{"s1", "s2"}, AckSync, nil)
	// ExtraLatency is per direction; slow both so the RTT is 60ms.
	net.SetLinkFault("p", "s2", netsim.LinkFault{ExtraLatency: 30 * time.Millisecond})
	net.SetLinkFault("s2", "p", netsim.LinkFault{ExtraLatency: 30 * time.Millisecond})

	start := time.Now()
	if _, err := p.db.Append(acct("A1"), []entity.Op{entity.Delta("balance", 10)}, ts(1), "p", "t1"); err != nil {
		t.Fatalf("sync append: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Fatalf("sync commit returned in %v, before the slow lane's 60ms RTT could ack", elapsed)
	}
	if got := s2.Watermark(0); got != 1 {
		t.Fatalf("sync returned but slow standby watermark = %d, want 1", got)
	}
}

// A parked standby — link blocked, lane burning retries, breaker opening —
// must not delay commits the remaining standbys already satisfy. Ten quorum
// writes against a 3-standby set with one blocked stay fast throughout.
func TestParkedStandbyDoesNotDelaySatisfiedCommits(t *testing.T) {
	net := netsim.New(netsim.Config{UnreachableDelay: time.Millisecond})
	defer net.Close()
	newShipStandby(t, net, "s1", storage.NewMemory())
	newShipStandby(t, net, "s2", storage.NewMemory())
	s3 := newShipStandby(t, net, "s3", storage.NewMemory())
	p := fanoutPrimary(t, net, []clock.NodeID{"s1", "s2", "s3"}, AckQuorum, nil)
	net.SetLinkFault("p", "s3", netsim.LinkFault{Block: true})

	key := acct("A1")
	for i := 0; i < 10; i++ {
		start := time.Now()
		if _, err := p.db.Append(key, []entity.Op{entity.Delta("balance", 1)}, ts(int64(i+1)), "p", ""); err != nil {
			t.Fatalf("quorum append %d with one parked standby: %v", i, err)
		}
		if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
			t.Fatalf("append %d took %v — the parked lane's retries leaked into the commit path", i, elapsed)
		}
	}
	// Heal and converge: the parked standby catches up from the primary (its
	// breaker may still be open, so pull rather than wait for pushes).
	p.shipper.Drain()
	net.ClearLinkFaults()
	if _, err := s3.CatchUp("p", 0); err != nil {
		t.Fatalf("catch-up on healed standby: %v", err)
	}
	if got := s3.Watermark(0); got != 10 {
		t.Fatalf("healed standby watermark = %d, want 10", got)
	}
}

// gatedTransport parks every ship until the gate channel is closed — a
// deterministic stand-in for a standby that is slow to ack.
type gatedTransport struct {
	gate chan struct{}
}

func (g gatedTransport) Ship(peer clock.NodeID, batch ShipBatch, sync bool, timeout time.Duration) error {
	<-g.gate
	return nil
}

// The sink captures under the shard lock and waits outside it: while a sync
// commit is blocked on a standby's ack, reads on the same shard proceed.
// The ack is gated on a channel, so the interleaving is deterministic: the
// read happens while the commit is provably parked in its ack wait.
func TestReadsProceedWhileSyncShipWaits(t *testing.T) {
	gate := make(chan struct{})
	p := fanoutPrimary(t, nil, []clock.NodeID{"s1"}, AckSync, func(o *ShipperOptions) {
		o.Transport = gatedTransport{gate: gate}
	})
	defer p.shipper.Close()

	key := acct("A1")
	done := make(chan error, 1)
	go func() {
		_, err := p.db.Append(key, []entity.Op{entity.Delta("balance", 10)}, ts(1), "p", "t1")
		done <- err
	}()
	// Wait for the batch to be captured: from then on the commit is parked in
	// its ack wait and the shard lock must already be free.
	deadline := time.Now().Add(2 * time.Second)
	for p.shipper.Stats().BatchesShipped == 0 {
		if time.Now().After(deadline) {
			t.Fatal("ship was never captured")
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case err := <-done:
		t.Fatalf("sync append returned (err=%v) while its ack was still gated", err)
	default:
	}
	readDone := make(chan error, 1)
	go func() {
		_, _, err := p.db.Current(key)
		readDone <- err
	}()
	select {
	case err := <-readDone:
		if err != nil {
			t.Fatalf("read during sync ship wait: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("read blocked while a sync commit was waiting — the ack wait is holding the shard lock")
	}
	close(gate)
	if err := <-done; err != nil {
		t.Fatalf("sync append: %v", err)
	}
}

// Catch-up streams in bounded chunks: a 10-record tail over a chunk size of
// 4 takes three rounds, each resumable by the cursor the previous round
// advanced, and lands the full tail.
func TestStreamingCatchUpChunksAndResumes(t *testing.T) {
	net := netsim.New(netsim.Config{UnreachableDelay: time.Millisecond})
	defer net.Close()
	sb, err := NewStandby(StandbyOptions{
		Self:         "s1",
		Net:          net,
		Backends:     []storage.Backend{storage.NewMemory()},
		Timeout:      time.Second,
		CatchupChunk: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := fanoutPrimary(t, net, []clock.NodeID{"s1"}, AckAsync, func(o *ShipperOptions) { o.CatchupChunk = 4 })
	net.SetLinkFault("p", "s1", netsim.LinkFault{Block: true})
	key := acct("A1")
	for i := 0; i < 10; i++ {
		if _, err := p.db.Append(key, []entity.Op{entity.Delta("balance", 1)}, ts(int64(i+1)), "p", ""); err != nil {
			t.Fatal(err)
		}
	}
	p.shipper.Drain() // lose the pushes while the link is down
	net.ClearLinkFaults()

	n, err := sb.CatchUp("p", 0)
	if err != nil {
		t.Fatalf("CatchUp: %v", err)
	}
	if n != 10 {
		t.Fatalf("catch-up delivered %d records, want 10", n)
	}
	if got := sb.Watermark(0); got != 10 {
		t.Fatalf("watermark = %d, want 10", got)
	}
	st := sb.Stats()
	if st.CatchupRounds != 3 {
		t.Fatalf("catch-up rounds = %d, want 3 (chunks of 4,4,2)", st.CatchupRounds)
	}
	if ps := p.shipper.Stats(); ps.CatchupServed != 3 {
		t.Fatalf("primary CatchupServed = %d, want 3", ps.CatchupServed)
	}
}

// Regression for the mark re-append bug: obsolescence marks sit below the
// append cursor, so a chunked catch-up re-sends them every round and a
// repeated catch-up re-sends them wholesale. The receiver must deduplicate
// marks like it deduplicates appends, or its log grows without bound.
func TestCatchUpDoesNotReappendMarks(t *testing.T) {
	net := netsim.New(netsim.Config{})
	defer net.Close()
	s1 := newShipStandby(t, net, "s1", storage.NewMemory())
	p := newShipPrimary(t, net, "p", []clock.NodeID{"s1"}, AckSync)
	key := acct("A1")
	for i := 0; i < 6; i++ {
		if _, err := p.db.Append(key, []entity.Op{entity.Delta("balance", 10)}, ts(int64(i+1)), "p", ""); err != nil {
			t.Fatal(err)
		}
	}
	for _, txn := range []string{"tent-1", "tent-2"} {
		if _, err := p.db.AppendTentative(key, []entity.Op{entity.Delta("balance", 100)}, ts(10), "p", txn); err != nil {
			t.Fatal(err)
		}
		if err := p.db.MarkObsolete(key, txn); err != nil {
			t.Fatal(err)
		}
	}
	// s1's log now holds 8 appends and 2 obsolescence marks.
	tail1, err := TailAfter(s1.Backends()[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(tail1) != 10 {
		t.Fatalf("mirror log holds %d records, want 10 (8 appends + 2 marks)", len(tail1))
	}

	// A fresh standby pulls from the mirror in chunks of 2: five append
	// rounds, and the marks are offered again on every one of them.
	s2, err := NewStandby(StandbyOptions{
		Self:         "s2",
		Net:          net,
		Backends:     []storage.Backend{storage.NewMemory()},
		Timeout:      time.Second,
		CatchupChunk: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.CatchUp("s1", 0); err != nil {
		t.Fatalf("catch-up from mirror: %v", err)
	}
	count := func() int {
		tail, err := TailAfter(s2.Backends()[0], 0)
		if err != nil {
			t.Fatal(err)
		}
		return len(tail)
	}
	if got := count(); got != 10 {
		t.Fatalf("chunked catch-up landed %d records, want 10 — marks re-appended across rounds", got)
	}
	// Catching up again re-offers everything; the log must not grow.
	for round := 0; round < 3; round++ {
		if _, err := s2.CatchUp("s1", 0); err != nil {
			t.Fatalf("repeat catch-up %d: %v", round, err)
		}
	}
	if got := count(); got != 10 {
		t.Fatalf("log grew to %d records after repeated catch-up, want 10", got)
	}
	// Promotion replays cleanly: both tentative writes withdrawn exactly once.
	_, bal := promoteBalance(t, s2, nil, key)
	if bal != 60 {
		t.Fatalf("promoted balance = %v, want 60", bal)
	}
}

// Streaming promotion serves reads from the recovered local log while the
// union of the surviving peers' tails is still in flight; Wait fences the
// pull, after which the peer-only write is visible.
func TestReadsServeDuringStreamingPromotion(t *testing.T) {
	net := netsim.New(netsim.Config{UnreachableDelay: time.Millisecond})
	defer net.Close()
	s1 := newShipStandby(t, net, "s1", storage.NewMemory())
	newShipStandby(t, net, "s2", storage.NewMemory())
	p := newShipPrimary(t, net, "p", []clock.NodeID{"s1", "s2"}, AckQuorum)
	key := acct("A1")

	// Split the acked writes: LSN 1 on s1 only, LSN 2 on s2 only.
	net.SetLinkFault("p", "s2", netsim.LinkFault{Block: true})
	if _, err := p.db.Append(key, []entity.Op{entity.Delta("balance", 10)}, ts(1), "p", "t1"); err != nil {
		t.Fatal(err)
	}
	p.shipper.Drain()
	net.ClearLinkFaults()
	net.SetLinkFault("p", "s1", netsim.LinkFault{Block: true})
	if _, err := p.db.Append(key, []entity.Op{entity.Delta("balance", 5)}, ts(2), "p", "t2"); err != nil {
		t.Fatal(err)
	}
	p.shipper.Drain()
	net.ClearLinkFaults()

	// Slow the union pull so the test can read before it completes.
	net.SetLinkFault("s1", "s2", netsim.LinkFault{ExtraLatency: 50 * time.Millisecond})
	pr, err := s1.PromoteStreaming([]clock.NodeID{"s2"}, lsdb.Options{Node: "s1"}, accountType())
	if err != nil {
		t.Fatalf("PromoteStreaming: %v", err)
	}
	st, _, err := pr.Stores()[0].Current(key)
	if err != nil {
		t.Fatalf("read during streaming promotion: %v", err)
	}
	if bal := st.Float("balance"); bal != 10 {
		t.Fatalf("pre-union balance = %v, want 10 (the locally acked write)", bal)
	}
	if err := pr.Wait(); err != nil {
		t.Fatalf("union: %v", err)
	}
	if !pr.Done() {
		t.Fatal("Done() false after Wait returned")
	}
	if pr.Pulled() == 0 {
		t.Fatal("union pulled nothing; the peer-only write was not fetched")
	}
	st, _, err = pr.Stores()[0].Current(key)
	if err != nil {
		t.Fatal(err)
	}
	if bal := st.Float("balance"); bal != 15 {
		t.Fatalf("post-union balance = %v, want 15 (both acked writes)", bal)
	}
}
