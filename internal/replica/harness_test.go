package replica

// A deterministic, seedable fault-injection harness for WAL-shipped
// replication. One primary and a set of standbys run a scripted write
// schedule interleaved with link faults — loss, blocks, extra latency, whole
// standby crash/restarts — all drawn from seeded generators, so a failing
// (mode, seed, steps) triple replays exactly. Two independent streams keep
// the schedules aligned across ack modes: the write stream (keys, amounts)
// and the fault stream never observe outcomes, so every mode faces the same
// history and must converge to the same state.
//
// To shrink a failure, rerun with the reported seed and lower the step count
// passed to run() until the symptom disappears.

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/entity"
	"repro/internal/lsdb"
	"repro/internal/netsim"
	"repro/internal/storage"
)

type harnessWrite struct {
	txn    string
	key    entity.Key
	amount float64
	acked  bool // the client saw success
}

type faultHarness struct {
	t    *testing.T
	seed int64
	mode AckMode
	rngW *rand.Rand // write schedule — identical across modes
	rngF *rand.Rand // fault schedule — identical across modes

	net      *netsim.Network
	p        *shipPrimary
	pfb      *storage.FaultBackend // the primary's backend, fault-injectable
	sbIDs    []clock.NodeID
	standbys map[clock.NodeID]*Standby
	backends map[clock.NodeID]storage.Backend

	// storageFaults adds the disk's failure vocabulary to the fault
	// schedule: ENOSPC windows, torn appends, corruption, mid-run repair.
	// Off for the pure link-fault tests (whose model assumes every write
	// commits locally).
	storageFaults bool
	refused       int // writes refused with ErrDegraded (never committed anywhere)

	keys   []entity.Key
	model  map[entity.Key]float64 // sum of every committed write
	writes []harnessWrite
}

func newFaultHarness(t *testing.T, mode AckMode, seed int64, nStandbys int) *faultHarness {
	t.Helper()
	h := &faultHarness{
		t:        t,
		seed:     seed,
		mode:     mode,
		rngW:     rand.New(rand.NewSource(seed)),
		rngF:     rand.New(rand.NewSource(seed + 1000)),
		net:      netsim.New(netsim.Config{UnreachableDelay: time.Millisecond, Seed: seed}),
		standbys: map[clock.NodeID]*Standby{},
		backends: map[clock.NodeID]storage.Backend{},
		model:    map[entity.Key]float64{},
	}
	for i := 0; i < 4; i++ {
		h.keys = append(h.keys, acct(fmt.Sprintf("H%d", i)))
	}
	for i := 0; i < nStandbys; i++ {
		id := clock.NodeID(fmt.Sprintf("s%d", i+1))
		h.sbIDs = append(h.sbIDs, id)
		h.backends[id] = storage.NewMemory()
		h.standbys[id] = newShipStandby(t, h.net, id, h.backends[id])
	}
	// A nanosecond re-arm: after a retryable degrade every subsequent write
	// is admitted as a probe, so an injected ENOSPC window refuses roughly
	// its length in writes and then heals without wall-clock waits.
	h.p, h.pfb = newFaultShipPrimary(t, h.net, h.sbIDs, mode, time.Nanosecond)
	return h
}

func (h *faultHarness) fatalf(format string, args ...interface{}) {
	h.t.Helper()
	prefix := fmt.Sprintf("[mode=%s seed=%d writes=%d] ", h.mode, h.seed, len(h.writes))
	h.t.Fatalf(prefix+format, args...)
}

// fault draws one step of the fault schedule. Every branch consumes the same
// random values so the stream stays aligned whatever happens.
func (h *faultHarness) fault() {
	r := h.rngF.Float64()
	sb := h.sbIDs[h.rngF.Intn(len(h.sbIDs))]
	severity := h.rngF.Float64()
	switch {
	case r < 0.10: // lossy link to one standby
		h.net.SetLinkFault("p", sb, netsim.LinkFault{Loss: 0.5 + severity/2})
	case r < 0.16: // blocked link (single-standby partition)
		h.net.SetLinkFault("p", sb, netsim.LinkFault{Block: true})
	case r < 0.22: // slow link
		h.net.SetLinkFault("p", sb, netsim.LinkFault{ExtraLatency: time.Duration(1+int(severity*3)) * time.Millisecond})
	case r < 0.30: // heal every link
		h.net.ClearLinkFaults()
	case r < 0.34: // crash a standby and restart it over its surviving log
		h.restart(sb)
	case r < 0.42: // disk-full window on the primary
		if h.storageFaults {
			h.pfb.FailAppends(1 + int(severity*2))
		}
	case r < 0.46: // torn append: fail-stop until quarantine
		if h.storageFaults {
			h.pfb.TearNextAppend()
		}
	case r < 0.50: // corruption detected at the next append
		if h.storageFaults {
			h.pfb.CorruptFrom(uint64(len(h.writes)) + 1)
		}
	case r < 0.62: // operator shows up: heal the disk, repair the unit
		if h.storageFaults {
			h.repairStorage()
		}
	}
}

// repairStorage is the operator action for a degraded primary: cancel
// pending retryable injections and, for the permanent states (fail-stopped,
// corrupt), quarantine the bad log suffix and refill it. Log-first commits
// mean the primary's own memory is authoritative for the refill — it never
// installed anything the log did not accept.
func (h *faultHarness) repairStorage() {
	h.pfb.Heal()
	if d := h.p.db.Degraded(); d != nil && d.Permanent {
		if err := h.p.db.Repair(func(after uint64) ([]lsdb.Record, error) {
			return h.p.db.RecordsAfter(after), nil
		}); err != nil {
			h.fatalf("storage repair: %v", err)
		}
	}
}

// documentedDegradedReason matches the taxonomy in internal/lsdb/degraded.go
// and docs/OPERATIONS.md.
func documentedDegradedReason(reason string) bool {
	switch reason {
	case "append-error", "fail-stopped", "corrupt", "poisoned":
		return true
	}
	return false
}

// restart models a standby crash: the process dies (receiver refuses the
// stream) and comes back over whatever its backend durably holds, resuming
// its progress from the log alone.
func (h *faultHarness) restart(id clock.NodeID) {
	h.standbys[id].Stop()
	sb, err := NewStandby(StandbyOptions{
		Self:     id,
		Net:      h.net,
		Backends: []storage.Backend{h.backends[id]},
		Timeout:  250 * time.Millisecond,
	})
	if err != nil {
		h.fatalf("restarting standby %s: %v", id, err)
	}
	h.standbys[id] = sb
}

func (h *faultHarness) write(i int) {
	key := h.keys[h.rngW.Intn(len(h.keys))]
	amount := float64(h.rngW.Intn(9) + 1)
	txn := fmt.Sprintf("w%d", i)
	_, err := h.p.db.Append(key, []entity.Op{entity.Delta("balance", amount)}, ts(int64(i+1)), "p", txn)
	if errors.Is(err, lsdb.ErrDegraded) {
		// Log-first refusal: nothing was installed or shipped, the LSN
		// reservation rolled back, and the client saw a determinate typed
		// error — the write never happened anywhere.
		h.refused++
		d := h.p.db.Degraded()
		if d == nil {
			h.fatalf("write %s refused with ErrDegraded but the unit reports healthy", txn)
		}
		if !documentedDegradedReason(d.Reason) {
			h.fatalf("write %s refused with undocumented degraded reason %q", txn, d.Reason)
		}
		return
	}
	if err != nil && !errors.Is(err, ErrStandbyAcks) {
		h.fatalf("write %s failed outside replication: %v", txn, err)
	}
	// Either way the record is committed on the primary; only the client's
	// ack differs.
	h.model[key] += amount
	h.writes = append(h.writes, harnessWrite{txn: txn, key: key, amount: amount, acked: err == nil})
}

// healAndConverge clears every fault, drains in-flight ships, and has each
// standby pull its missing tail; afterwards every standby must hold the full
// log.
func (h *faultHarness) healAndConverge() {
	if h.storageFaults {
		h.repairStorage()
	}
	h.net.ClearLinkFaults()
	// Lanes ship asynchronously: drain them (retries now succeed against the
	// healed links) before quiescing the network's in-flight deliveries.
	h.p.shipper.Drain()
	h.net.Quiesce()
	want := uint64(len(h.writes))
	for _, id := range h.sbIDs {
		if _, err := h.standbys[id].CatchUp("p", 0); err != nil {
			h.fatalf("catch-up on %s: %v", id, err)
		}
		if got := h.standbys[id].Watermark(0); got != want {
			h.fatalf("standby %s watermark = %d after heal+catch-up, want %d", id, got, want)
		}
	}
}

// failover kills the primary, promotes a schedule-chosen standby (unioning
// the others' logs), and checks the two replication invariants: no acked
// write is lost, and resubmitting the indeterminate writes with their
// original transaction ids lands each exactly once. Returns the final state.
func (h *faultHarness) failover() map[entity.Key]float64 {
	idx := h.rngF.Intn(len(h.sbIDs))
	chosen := h.standbys[h.sbIDs[idx]]
	var peers []clock.NodeID
	for _, id := range h.sbIDs {
		if id != h.sbIDs[idx] {
			peers = append(peers, id)
		}
	}
	dbs, err := chosen.Promote(peers, lsdb.Options{Node: chosen.ID()}, accountType())
	if err != nil {
		h.fatalf("promoting %s: %v", chosen.ID(), err)
	}
	db := dbs[0]

	present := map[string]bool{}
	for _, key := range h.keys {
		for _, rec := range db.RecordsFor(key) {
			present[rec.TxnID] = true
		}
	}
	for _, w := range h.writes {
		if w.acked && !present[w.txn] {
			h.fatalf("acked write %s (%s += %v) lost in failover", w.txn, w.key, w.amount)
		}
	}

	duplicates := 0
	for i, w := range h.writes {
		if w.acked {
			continue
		}
		_, err := db.Append(w.key, []entity.Op{entity.Delta("balance", w.amount)},
			ts(int64(10000+i)), chosen.ID(), w.txn)
		switch {
		case errors.Is(err, lsdb.ErrDuplicateTxn):
			duplicates++ // survived replication after all — applied exactly once
		case err != nil:
			h.fatalf("resubmitting %s: %v", w.txn, err)
		}
	}
	h.t.Logf("mode=%s seed=%d: %d writes, %d acked, %d resubmitted as duplicates",
		h.mode, h.seed, len(h.writes), h.ackedCount(), duplicates)

	got := map[entity.Key]float64{}
	for _, key := range h.keys {
		if h.model[key] == 0 {
			continue
		}
		st, _, err := db.Current(key)
		if err != nil {
			h.fatalf("reading %s on promoted store: %v", key, err)
		}
		got[key] = st.Float("balance")
	}
	return got
}

func (h *faultHarness) ackedCount() int {
	n := 0
	for _, w := range h.writes {
		if w.acked {
			n++
		}
	}
	return n
}

// run drives the full scenario and returns the post-failover state.
func (h *faultHarness) run(steps int) map[entity.Key]float64 {
	for i := 0; i < steps; i++ {
		h.fault()
		h.write(i)
	}
	h.healAndConverge()
	return h.failover()
}

// serialBaseline applies the same seeded write schedule to a plain
// single-node store: the ground truth every replicated mode must match.
func serialBaseline(t *testing.T, seed int64, steps int) map[entity.Key]float64 {
	t.Helper()
	rngW := rand.New(rand.NewSource(seed))
	keys := make([]entity.Key, 4)
	for i := range keys {
		keys[i] = acct(fmt.Sprintf("H%d", i))
	}
	db := lsdb.Open(lsdb.Options{Node: "serial"})
	if err := db.RegisterType(accountType()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < steps; i++ {
		key := keys[rngW.Intn(len(keys))]
		amount := float64(rngW.Intn(9) + 1)
		if _, err := db.Append(key, []entity.Op{entity.Delta("balance", amount)}, ts(int64(i+1)), "serial", fmt.Sprintf("w%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	out := map[entity.Key]float64{}
	for _, key := range keys {
		st, _, err := db.Current(key)
		if err != nil {
			continue // key never drawn
		}
		out[key] = st.Float("balance")
	}
	return out
}

func sameState(a, b map[entity.Key]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// The fault matrix: every ack mode, several seeds, faults throughout.
// Invariants per cell: standbys converge to the full log after heal, no
// acked write is lost across failover, and exactly-once resubmission brings
// the promoted store to the model state.
func TestFaultMatrixConvergesAndKeepsAckedWrites(t *testing.T) {
	seeds := []int64{1, 7, 42}
	steps := 60
	if testing.Short() {
		seeds = seeds[:1]
		steps = 30
	}
	for _, mode := range []AckMode{AckAsync, AckSync, AckQuorum} {
		for _, seed := range seeds {
			mode, seed := mode, seed
			t.Run(fmt.Sprintf("%s/seed=%d", mode, seed), func(t *testing.T) {
				h := newFaultHarness(t, mode, seed, 2)
				defer h.net.Close()
				final := h.run(steps)
				if !sameState(final, h.model) {
					h.fatalf("promoted state diverged from model:\n got %v\nwant %v", final, h.model)
				}
			})
		}
	}
}

// Cross-mode equivalence: the same seeded schedule, run serially and under
// every ack mode with faults, ends in the identical state after heal,
// catch-up and failover. Ack modes may differ in what they promise the
// client mid-flight; they must not differ in where the data ends up.
func TestCrossModeEquivalenceAfterHealAndSync(t *testing.T) {
	seeds := []int64{3, 11}
	steps := 50
	if testing.Short() {
		seeds = seeds[:1]
		steps = 25
	}
	for _, seed := range seeds {
		want := serialBaseline(t, seed, steps)
		for _, mode := range []AckMode{AckAsync, AckSync, AckQuorum} {
			mode, seed := mode, seed
			t.Run(fmt.Sprintf("seed=%d/%s", seed, mode), func(t *testing.T) {
				h := newFaultHarness(t, mode, seed, 2)
				defer h.net.Close()
				got := h.run(steps)
				if !sameState(got, want) {
					h.fatalf("mode diverged from serial baseline:\n got %v\nwant %v", got, want)
				}
			})
		}
	}
}

// The storage-fault dimension: the same seeded schedule with disk faults —
// ENOSPC windows, torn appends, detected corruption, scripted repairs —
// layered over the link faults, across every ack mode. Invariants per cell:
// no crash, every refusal is a documented typed degraded state (checked in
// write), no acked write is lost across failover, and after heal + repair
// the standbys converge and the promoted store matches the model of
// committed writes exactly.
func TestStorageFaultMatrixKeepsInvariantsAndConverges(t *testing.T) {
	seeds := []int64{2, 9, 21}
	steps := 80
	if testing.Short() {
		seeds = seeds[:1]
		steps = 40
	}
	for _, mode := range []AckMode{AckAsync, AckSync, AckQuorum} {
		for _, seed := range seeds {
			mode, seed := mode, seed
			t.Run(fmt.Sprintf("%s/seed=%d", mode, seed), func(t *testing.T) {
				h := newFaultHarness(t, mode, seed, 2)
				h.storageFaults = true
				defer h.net.Close()
				final := h.run(steps)
				if !sameState(final, h.model) {
					h.fatalf("promoted state diverged from model:\n got %v\nwant %v", final, h.model)
				}
				fs := h.pfb.Stats()
				t.Logf("mode=%s seed=%d: %d committed, %d refused, degraded episodes=%d, faults=%+v",
					mode, seed, len(h.writes), h.refused, h.p.db.DegradedEvents(), fs)
				if h.p.db.DegradedEvents() == 0 {
					t.Fatalf("schedule injected no storage degradation (faults=%+v); pick a different seed", fs)
				}
			})
		}
	}
}
