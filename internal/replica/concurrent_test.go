package replica

// The concurrent-ship dimension of the fault matrix: several writers commit
// in parallel while the lanes fan their batches out to a deliberately uneven
// standby set — one behind a slow link, one parked behind a block, one
// taking losses — under every ack mode. The serial matrix cannot see lane
// races (a commit's ack wait overlapping the next commit's capture, barrier
// verdicts racing late reports, breaker flips under concurrent traffic);
// this one runs exactly those interleavings, under -race in CI.
//
// Invariants per cell: every write the client saw acked survives failover,
// a commit whose ack requirement is satisfied never fails because of the
// parked standby, and after heal + catch-up the standbys converge on the
// full log and the promoted store matches the model.

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/entity"
	"repro/internal/netsim"
)

type concurrentWrite struct {
	txn    string
	key    entity.Key
	amount float64
	acked  bool
}

func TestConcurrentShipFaultMatrix(t *testing.T) {
	seeds := []int64{5, 13}
	writers, perWriter := 4, 15
	if testing.Short() {
		seeds = seeds[:1]
		perWriter = 8
	}
	for _, mode := range []AckMode{AckAsync, AckSync, AckQuorum} {
		for _, seed := range seeds {
			mode, seed := mode, seed
			t.Run(fmt.Sprintf("%s/seed=%d", mode, seed), func(t *testing.T) {
				h := newFaultHarness(t, mode, seed, 3)
				defer h.net.Close()
				// s1 is the slow standby for the whole run: every one of its
				// deliveries rides a laggy link while the other lanes ack
				// fast — the shape that exposes a fan-out waiting on the
				// slowest lane when it should not.
				h.net.SetLinkFault("p", "s1", netsim.LinkFault{ExtraLatency: 500 * time.Microsecond})

				results := make([][]concurrentWrite, writers)
				errs := make(chan error, writers)
				var wg sync.WaitGroup
				for w := 0; w < writers; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						rng := rand.New(rand.NewSource(seed*100 + int64(w)))
						for i := 0; i < perWriter; i++ {
							key := h.keys[rng.Intn(len(h.keys))]
							amount := float64(rng.Intn(9) + 1)
							txn := fmt.Sprintf("c%d-%d", w, i)
							_, err := h.p.db.Append(key, []entity.Op{entity.Delta("balance", amount)},
								ts(int64(w)*1000+int64(i)+1), "p", txn)
							if err != nil && !errors.Is(err, ErrStandbyAcks) {
								errs <- fmt.Errorf("writer %d append %s: %v", w, txn, err)
								return
							}
							// Committed on the primary either way; only the
							// client's ack differs (post-install verdict).
							results[w] = append(results[w], concurrentWrite{txn: txn, key: key, amount: amount, acked: err == nil})
						}
					}(w)
				}
				// Faults land mid-stream, while writers are in flight: park
				// one standby outright, then open a lossy window on another,
				// then bring the parked one back.
				time.Sleep(2 * time.Millisecond)
				h.net.SetLinkFault("p", "s3", netsim.LinkFault{Block: true})
				time.Sleep(5 * time.Millisecond)
				h.net.SetLinkFault("p", "s2", netsim.LinkFault{Loss: 0.5})
				time.Sleep(5 * time.Millisecond)
				h.net.ClearLinkFault("p", "s3")
				wg.Wait()
				close(errs)
				for err := range errs {
					t.Fatal(err)
				}
				// Fold the per-writer journals into the harness model so its
				// heal/convergence and failover invariants apply unchanged.
				for w := range results {
					if got := len(results[w]); got != perWriter {
						t.Fatalf("writer %d completed %d/%d writes", w, got, perWriter)
					}
					for _, r := range results[w] {
						h.model[r.key] += r.amount
						h.writes = append(h.writes, harnessWrite{txn: r.txn, key: r.key, amount: r.amount, acked: r.acked})
					}
				}
				h.healAndConverge()
				final := h.failover()
				if !sameState(final, h.model) {
					h.fatalf("promoted state diverged from model:\n got %v\nwant %v", final, h.model)
				}
			})
		}
	}
}
