package replica

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/entity"
	"repro/internal/lsdb"
	"repro/internal/netsim"
)

func accountType() *entity.Type {
	return &entity.Type{
		Name: "Account",
		Fields: []entity.Field{
			{Name: "owner", Type: entity.String},
			{Name: "balance", Type: entity.Float},
		},
	}
}

func acct(id string) entity.Key { return entity.Key{Type: "Account", ID: id} }

func newCluster(t *testing.T, n int, mode Mode, cfg netsim.Config) *Cluster {
	t.Helper()
	c, err := NewCluster(n, mode, cfg, accountType())
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	t.Cleanup(c.Stop)
	return c
}

func rep(t *testing.T, c *Cluster, i int) *Replica {
	t.Helper()
	r, err := c.Replica(i)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func waitConverged(t *testing.T, c *Cluster, key entity.Key, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		c.Network().Quiesce()
		ok, err := c.Converged(key)
		if err != nil {
			t.Fatalf("Converged: %v", err)
		}
		if ok {
			return
		}
		c.SyncRound()
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("cluster did not converge on %s within %v", key, timeout)
}

func TestEventualWriteReplicatesAsynchronously(t *testing.T) {
	c := newCluster(t, 3, Eventual, netsim.Config{})
	r0 := rep(t, c, 0)
	if _, err := r0.Write(acct("A"), []entity.Op{entity.Delta("balance", 100)}, ""); err != nil {
		t.Fatalf("Write: %v", err)
	}
	// Local state is immediately visible (subjective consistency).
	st, err := r0.ReadLocal(acct("A"))
	if err != nil || st.Float("balance") != 100 {
		t.Fatalf("local read: %v %v", st, err)
	}
	c.Network().Quiesce()
	for i := 1; i < 3; i++ {
		st, err := rep(t, c, i).ReadLocal(acct("A"))
		if err != nil || st.Float("balance") != 100 {
			t.Fatalf("replica %d did not receive the write: %v %v", i, st, err)
		}
	}
	if ok, _ := c.Converged(acct("A")); !ok {
		t.Fatal("cluster should be converged after quiesce")
	}
}

func TestEventualConcurrentDeltasConvergeToSum(t *testing.T) {
	c := newCluster(t, 3, Eventual, netsim.Config{})
	// Concurrent deposits at different replicas.
	for i := 0; i < 3; i++ {
		r := rep(t, c, i)
		if _, err := r.Write(acct("A"), []entity.Op{entity.Delta("balance", float64(10*(i+1)))}, ""); err != nil {
			t.Fatal(err)
		}
	}
	waitConverged(t, c, acct("A"), 5*time.Second)
	for i := 0; i < 3; i++ {
		st, err := rep(t, c, i).ReadResolved(acct("A"))
		if err != nil {
			t.Fatal(err)
		}
		if st.Float("balance") != 60 {
			t.Fatalf("replica %d balance = %v, want 60", i, st.Float("balance"))
		}
	}
}

func TestEventualConcurrentSetsConvergeDeterministically(t *testing.T) {
	c := newCluster(t, 3, Eventual, netsim.Config{})
	for i := 0; i < 3; i++ {
		r := rep(t, c, i)
		if _, err := r.Write(acct("A"), []entity.Op{entity.Set("owner", fmt.Sprintf("owner-%d", i))}, ""); err != nil {
			t.Fatal(err)
		}
	}
	waitConverged(t, c, acct("A"), 5*time.Second)
	first, _ := rep(t, c, 0).ReadResolved(acct("A"))
	for i := 1; i < 3; i++ {
		st, _ := rep(t, c, i).ReadResolved(acct("A"))
		if st.StringField("owner") != first.StringField("owner") {
			t.Fatalf("register values diverged: %q vs %q", st.StringField("owner"), first.StringField("owner"))
		}
	}
}

func TestAntiEntropyHealsLostMessages(t *testing.T) {
	c := newCluster(t, 2, Eventual, netsim.Config{LossRate: 1.0, Seed: 3})
	r0 := rep(t, c, 0)
	// With 100% loss the async ship never arrives.
	if _, err := r0.Write(acct("A"), []entity.Op{entity.Delta("balance", 5)}, ""); err != nil {
		t.Fatal(err)
	}
	c.Network().Quiesce()
	if _, err := rep(t, c, 1).ReadLocal(acct("A")); !errors.Is(err, lsdb.ErrNotFound) {
		t.Fatal("write should not have reached replica 1")
	}
	// Heal the loss and run anti-entropy (requests are not silently dropped,
	// but set loss to 0 to let them through).
	c.Network().SetLossRate(0)
	c.SyncRound()
	st, err := rep(t, c, 1).ReadLocal(acct("A"))
	if err != nil || st.Float("balance") != 5 {
		t.Fatalf("anti-entropy did not repair: %v %v", st, err)
	}
	if ok, _ := c.Converged(acct("A")); !ok {
		t.Fatal("not converged after anti-entropy")
	}
}

func TestPartitionedEventualStaysAvailableAndConvergesAfterHeal(t *testing.T) {
	c := newCluster(t, 3, Eventual, netsim.Config{})
	net := c.Network()
	net.Partition([]clock.NodeID{"r0"}, []clock.NodeID{"r1", "r2"})
	// Both sides accept writes during the partition (principle 2.11).
	if _, err := rep(t, c, 0).Write(acct("A"), []entity.Op{entity.Delta("balance", 1).Described("minority side")}, ""); err != nil {
		t.Fatalf("minority write rejected: %v", err)
	}
	if _, err := rep(t, c, 1).Write(acct("A"), []entity.Op{entity.Delta("balance", 2).Described("majority side")}, ""); err != nil {
		t.Fatalf("majority write rejected: %v", err)
	}
	net.Quiesce()
	// Divergence while partitioned.
	if ok, _ := c.Converged(acct("A")); ok {
		t.Fatal("replicas should diverge during the partition")
	}
	if n, _ := c.Divergence([]entity.Key{acct("A")}); n != 1 {
		t.Fatalf("Divergence = %d", n)
	}
	net.Heal()
	waitConverged(t, c, acct("A"), 5*time.Second)
	st, _ := rep(t, c, 2).ReadResolved(acct("A"))
	if st.Float("balance") != 3 {
		t.Fatalf("merged balance = %v, want 3 (no lost updates)", st.Float("balance"))
	}
}

func TestQuorumWriteSucceedsWithMajority(t *testing.T) {
	c := newCluster(t, 3, Quorum, netsim.Config{})
	r0 := rep(t, c, 0)
	if _, err := r0.Write(acct("A"), []entity.Op{entity.Delta("balance", 10)}, ""); err != nil {
		t.Fatalf("quorum write: %v", err)
	}
	// Synchronous: both peers already have it.
	for i := 1; i < 3; i++ {
		st, err := rep(t, c, i).ReadLocal(acct("A"))
		if err != nil || st.Float("balance") != 10 {
			t.Fatalf("replica %d missing quorum write: %v %v", i, st, err)
		}
	}
}

func TestQuorumWriteFailsOnMinoritySide(t *testing.T) {
	c := newCluster(t, 3, Quorum, netsim.Config{UnreachableDelay: time.Millisecond})
	c.Network().Partition([]clock.NodeID{"r0"}, []clock.NodeID{"r1", "r2"})
	r0 := rep(t, c, 0)
	_, err := r0.Write(acct("A"), []entity.Op{entity.Delta("balance", 10)}, "")
	if !errors.Is(err, ErrNoQuorum) {
		t.Fatalf("want ErrNoQuorum, got %v", err)
	}
	// The rejected write leaves no visible effect locally.
	if st, err := r0.ReadLocal(acct("A")); err == nil && st.Float("balance") != 0 {
		t.Fatalf("rejected write visible: %v", st.Float("balance"))
	}
	if r0.Stats().WritesRejected != 1 {
		t.Fatalf("stats = %+v", r0.Stats())
	}
	// The majority side still accepts writes.
	if _, err := rep(t, c, 1).Write(acct("A"), []entity.Op{entity.Delta("balance", 7)}, ""); err != nil {
		t.Fatalf("majority write: %v", err)
	}
}

func TestSyncAllRequiresEveryPeer(t *testing.T) {
	c := newCluster(t, 3, SyncAll, netsim.Config{UnreachableDelay: time.Millisecond})
	// All peers reachable: fine.
	if _, err := rep(t, c, 0).Write(acct("A"), []entity.Op{entity.Delta("balance", 1)}, ""); err != nil {
		t.Fatalf("sync-all write: %v", err)
	}
	// One peer unreachable: even the majority side fails (availability cost
	// of synchronous backup commit).
	c.Network().Partition([]clock.NodeID{"r2"}, []clock.NodeID{"r0", "r1"})
	if _, err := rep(t, c, 0).Write(acct("A"), []entity.Op{entity.Delta("balance", 1)}, ""); !errors.Is(err, ErrNoQuorum) {
		t.Fatalf("want ErrNoQuorum, got %v", err)
	}
}

func TestPrimaryModeForwardsWritesToMaster(t *testing.T) {
	c := newCluster(t, 3, Primary, netsim.Config{})
	// Writing at a slave forwards to r0 (the lowest id).
	if _, err := rep(t, c, 2).Write(acct("A"), []entity.Op{entity.Delta("balance", 25)}, ""); err != nil {
		t.Fatalf("forwarded write: %v", err)
	}
	st, err := rep(t, c, 0).ReadLocal(acct("A"))
	if err != nil || st.Float("balance") != 25 {
		t.Fatalf("master state: %v %v", st, err)
	}
	// Slaves receive it asynchronously.
	waitConverged(t, c, acct("A"), 5*time.Second)
	// Writing while the master is unreachable fails at the slaves.
	c.Network().Partition([]clock.NodeID{"r0"}, []clock.NodeID{"r1", "r2"})
	if _, err := rep(t, c, 1).Write(acct("A"), []entity.Op{entity.Delta("balance", 1)}, ""); !errors.Is(err, ErrNotPrimary) {
		t.Fatalf("want ErrNotPrimary, got %v", err)
	}
	// The master itself keeps accepting writes.
	if _, err := rep(t, c, 0).Write(acct("A"), []entity.Op{entity.Delta("balance", 1)}, ""); err != nil {
		t.Fatalf("master write during partition: %v", err)
	}
}

func TestReadQuorum(t *testing.T) {
	c := newCluster(t, 3, Eventual, netsim.Config{UnreachableDelay: time.Millisecond})
	r0 := rep(t, c, 0)
	r0.Write(acct("A"), []entity.Op{entity.Delta("balance", 3)}, "")
	c.Network().Quiesce()
	st, err := r0.ReadQuorum(acct("A"))
	if err != nil || st.Float("balance") != 3 {
		t.Fatalf("ReadQuorum: %v %v", st, err)
	}
	c.Network().Partition([]clock.NodeID{"r0"}, []clock.NodeID{"r1", "r2"})
	if _, err := r0.ReadQuorum(acct("A")); !errors.Is(err, ErrNoQuorum) {
		t.Fatalf("want ErrNoQuorum on minority side, got %v", err)
	}
}

func TestReadResolvedUnknownTypeAndMissing(t *testing.T) {
	c := newCluster(t, 1, Eventual, netsim.Config{})
	r := rep(t, c, 0)
	if _, err := r.ReadResolved(entity.Key{Type: "Nope", ID: "1"}); err == nil {
		t.Fatal("unknown type should fail")
	}
	if _, err := r.ReadResolved(acct("missing")); !errors.Is(err, lsdb.ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
}

func TestDuplicateShipmentsAreIdempotent(t *testing.T) {
	c := newCluster(t, 2, Eventual, netsim.Config{})
	r0 := rep(t, c, 0)
	r0.Write(acct("A"), []entity.Op{entity.Delta("balance", 10)}, "")
	c.Network().Quiesce()
	// Run several redundant anti-entropy rounds; the balance must not change.
	for i := 0; i < 5; i++ {
		c.SyncRound()
	}
	st, _ := rep(t, c, 1).ReadResolved(acct("A"))
	if st.Float("balance") != 10 {
		t.Fatalf("duplicate application changed state: %v", st.Float("balance"))
	}
	if rep(t, c, 1).Stats().RemoteApplied != 1 {
		t.Fatalf("remote applied = %d, want 1", rep(t, c, 1).Stats().RemoteApplied)
	}
}

func TestBackgroundAntiEntropyConverges(t *testing.T) {
	c := newCluster(t, 3, Eventual, netsim.Config{LossRate: 0.5, Seed: 11})
	c.StartAntiEntropy(10 * time.Millisecond)
	for i := 0; i < 3; i++ {
		rep(t, c, i).Write(acct("A"), []entity.Op{entity.Delta("balance", 1)}, "")
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		// Requests can be dropped at 50% loss; keep checking until every
		// replica has folded in all three deposits.
		complete := true
		for i := 0; i < 3; i++ {
			st, err := rep(t, c, i).ReadResolved(acct("A"))
			if err != nil || st.Float("balance") != 3 {
				complete = false
				break
			}
		}
		if complete {
			if ok, _ := c.Converged(acct("A")); !ok {
				t.Fatal("all replicas hold all records but Converged disagrees")
			}
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("background anti-entropy never converged")
}

func TestClusterValidation(t *testing.T) {
	if _, err := NewCluster(0, Eventual, netsim.Config{}); err == nil {
		t.Fatal("zero replicas accepted")
	}
	c := newCluster(t, 2, Eventual, netsim.Config{})
	if _, err := c.Replica(9); !errors.Is(err, ErrUnknownReplica) {
		t.Fatalf("want ErrUnknownReplica, got %v", err)
	}
	if c.Size() != 2 {
		t.Fatalf("Size = %d", c.Size())
	}
	if got := rep(t, c, 0).ID(); got != "r0" {
		t.Fatalf("ID = %s", got)
	}
	if len(rep(t, c, 0).Peers()) != 1 {
		t.Fatal("peer wiring wrong")
	}
	if rep(t, c, 0).DB() == nil {
		t.Fatal("DB accessor nil")
	}
}

func TestModeString(t *testing.T) {
	for m, want := range map[Mode]string{Eventual: "eventual", SyncAll: "sync-all", Quorum: "quorum", Primary: "primary"} {
		if m.String() != want {
			t.Errorf("%d = %q, want %q", int(m), m.String(), want)
		}
	}
	if Mode(42).String() == "" {
		t.Error("unknown mode should render")
	}
}

func TestWriteRejectedStatsForUnknownType(t *testing.T) {
	c := newCluster(t, 1, Eventual, netsim.Config{})
	r := rep(t, c, 0)
	if _, err := r.Write(entity.Key{Type: "Ghost", ID: "1"}, []entity.Op{entity.Set("x", 1)}, ""); err == nil {
		t.Fatal("write to unknown type should fail")
	}
	if r.Stats().WritesRejected != 1 {
		t.Fatalf("stats = %+v", r.Stats())
	}
}
