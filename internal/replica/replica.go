// Package replica implements the replication schemes whose trade-offs the
// paper's section 2 enumerates: "active systems with asynchronous commits to
// backups, active systems with synchronous commits to backups, active/active
// replication with subjective/eventual consistency, and replication with
// strong consistency".
//
// Each replica owns a log-structured database (lsdb.DB). Replication ships
// log records (operation descriptors, principle 2.8) between replicas, which
// makes reconciliation an aggregation over the union of records: replicas
// that hold the same record set and resolve reads in a deterministic order
// converge to identical states (eventual consistency), and commutative
// operations merge losslessly (principle 2.7's delta strategy).
package replica

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/entity"
	"repro/internal/lsdb"
	"repro/internal/netsim"
)

// Mode selects how writes propagate between replicas.
type Mode int

// Replication modes.
const (
	// Eventual is active/active, asynchronous propagation: the write commits
	// locally (subjective consistency) and ships to peers in the background.
	Eventual Mode = iota
	// SyncAll commits only after every peer acknowledged the record
	// ("active systems with synchronous commits to backups").
	SyncAll
	// Quorum commits after a majority of replicas (including the origin)
	// acknowledged the record (strong consistency via quorums).
	Quorum
	// Primary designates replica 0 as master: all writes are forwarded to it
	// and ship asynchronously to the slaves; slaves serve (possibly stale)
	// reads. This is the master/slave mixed-consistency deployment of
	// section 3.1.
	Primary
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case Eventual:
		return "eventual"
	case SyncAll:
		return "sync-all"
	case Quorum:
		return "quorum"
	case Primary:
		return "primary"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Common errors.
var (
	// ErrNoQuorum is returned when a strong write cannot reach enough
	// replicas (availability sacrificed for consistency, per CAP).
	ErrNoQuorum = errors.New("replica: quorum not reached")
	// ErrNotPrimary is returned when a write in Primary mode cannot reach
	// the master.
	ErrNotPrimary = errors.New("replica: primary unreachable")
	// ErrUnknownReplica is returned for operations on replicas that do not
	// exist.
	ErrUnknownReplica = errors.New("replica: unknown replica")
)

// shippedRecord is the wire form of one log record.
type shippedRecord struct {
	Origin    clock.NodeID
	OriginLSN uint64
	Key       entity.Key
	Ops       []entity.Op
	Stamp     clock.Timestamp
	TxnID     string
	Tentative bool
}

// wire payloads.
type replicatePayload struct{ Records []shippedRecord }
type syncRequestPayload struct {
	From  clock.NodeID
	Known map[clock.NodeID]uint64 // per-origin high-water mark
}
type syncResponsePayload struct{ Records []shippedRecord }

// Stats counts replica-level outcomes; the availability experiment (E5)
// reads these.
type Stats struct {
	WritesAccepted uint64
	WritesRejected uint64
	RemoteApplied  uint64
	Duplicates     uint64
	SyncRounds     uint64
}

// Replica is one copy of the data.
type Replica struct {
	id   clock.NodeID
	db   *lsdb.DB
	hlc  *clock.HLC
	net  *netsim.Network
	mode Mode

	mu      sync.Mutex
	peers   []clock.NodeID
	applied map[clock.NodeID]map[uint64]bool // origin -> origin LSNs applied
	high    map[clock.NodeID]uint64          // origin -> contiguous high-water mark
	// originLSNs remembers the origin LSN of every applied record, keyed by
	// origin and txn id, so anti-entropy can re-ship records under their
	// original identity even when they arrived out of order or via a third
	// replica.
	originLSNs map[clock.NodeID]map[string]uint64
	originN    clock.Sequence // LSN sequence for records this replica originates
	stats      Stats
	types      map[string]*entity.Type
}

// NewReplica creates a replica bound to a network. Entity types must be
// registered before use.
func NewReplica(id clock.NodeID, net *netsim.Network, mode Mode) *Replica {
	r := &Replica{
		id:         id,
		db:         lsdb.Open(lsdb.Options{Node: id, SnapshotEvery: 32, Validation: entity.Managed}),
		hlc:        clock.NewHLC(id),
		net:        net,
		mode:       mode,
		applied:    map[clock.NodeID]map[uint64]bool{},
		high:       map[clock.NodeID]uint64{},
		originLSNs: map[clock.NodeID]map[string]uint64{},
		types:      map[string]*entity.Type{},
	}
	if net != nil {
		net.Register(id, r.onMessage)
		net.RegisterRequestHandler(id, r.onRequest)
	}
	return r
}

// ID returns the replica identity.
func (r *Replica) ID() clock.NodeID { return r.id }

// DB exposes the underlying LSDB (read-only use by callers).
func (r *Replica) DB() *lsdb.DB { return r.db }

// Stats returns a copy of the counters.
func (r *Replica) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// RegisterType registers an entity type on this replica.
func (r *Replica) RegisterType(t *entity.Type) error {
	if err := r.db.RegisterType(t); err != nil {
		return err
	}
	r.mu.Lock()
	r.types[t.Name] = t
	r.mu.Unlock()
	return nil
}

// SetPeers declares the other replicas.
func (r *Replica) SetPeers(peers []clock.NodeID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.peers = append([]clock.NodeID(nil), peers...)
}

// Peers returns the peer list.
func (r *Replica) Peers() []clock.NodeID {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]clock.NodeID(nil), r.peers...)
}

// Write applies ops to key at this replica under the configured replication
// mode and returns the timestamp assigned to the write.
func (r *Replica) Write(key entity.Key, ops []entity.Op, txnID string) (clock.Timestamp, error) {
	switch r.mode {
	case Primary:
		return r.writePrimary(key, ops, txnID)
	case Quorum, SyncAll:
		return r.writeStrong(key, ops, txnID)
	default:
		return r.writeEventual(key, ops, txnID)
	}
}

// WriteTentative applies ops as a tentative record — a promise the replica
// may later have to withdraw with an apology. Tentative writes always commit
// locally and ship asynchronously, whatever the replica's mode: a promise is
// made on local knowledge precisely when coordination is unavailable, and the
// apology machinery (not the write path) owns reconciling it later.
func (r *Replica) WriteTentative(key entity.Key, ops []entity.Op, txnID string) (clock.Timestamp, error) {
	rec, err := r.appendLocal(key, ops, txnID, true)
	if err != nil {
		r.reject()
		return clock.Timestamp{}, err
	}
	r.shipAsync([]shippedRecord{rec})
	r.accept()
	return rec.Stamp, nil
}

// writeEventual commits locally and ships asynchronously (subjective
// consistency; the show goes on even if peers are unreachable).
func (r *Replica) writeEventual(key entity.Key, ops []entity.Op, txnID string) (clock.Timestamp, error) {
	rec, err := r.appendLocal(key, ops, txnID, false)
	if err != nil {
		r.reject()
		return clock.Timestamp{}, err
	}
	r.shipAsync([]shippedRecord{rec})
	r.accept()
	return rec.Stamp, nil
}

// writeStrong commits only if enough replicas acknowledge synchronously.
func (r *Replica) writeStrong(key entity.Key, ops []entity.Op, txnID string) (clock.Timestamp, error) {
	rec, err := r.appendLocal(key, ops, txnID, false)
	if err != nil {
		r.reject()
		return clock.Timestamp{}, err
	}
	peers := r.Peers()
	need := len(peers) // SyncAll: every backup must acknowledge
	if r.mode == Quorum {
		// Majority of the full cluster, counting ourselves, so we need
		// majority-1 acknowledgements from peers.
		need = (len(peers)+1)/2 + 1 - 1
	}
	acks := 0
	for _, p := range peers {
		if r.net == nil {
			break
		}
		_, err := r.net.Request(r.id, p, replicatePayload{Records: []shippedRecord{rec}}, 200*time.Millisecond)
		if err == nil {
			acks++
		}
	}
	if acks < need {
		// The write cannot take effect: withdraw the local record. Peers that
		// did acknowledge keep it (the classic in-doubt window of synchronous
		// schemes); anti-entropy will not resurrect it here because the
		// obsolete mark survives.
		_ = r.db.MarkObsolete(key, rec.TxnID)
		r.reject()
		return clock.Timestamp{}, fmt.Errorf("%w: %d/%d acks", ErrNoQuorum, acks, need)
	}
	r.accept()
	return rec.Stamp, nil
}

// writePrimary forwards the write to replica peers[0] (or applies locally if
// this replica is the primary).
func (r *Replica) writePrimary(key entity.Key, ops []entity.Op, txnID string) (clock.Timestamp, error) {
	primary := r.primaryID()
	if primary == r.id {
		return r.writeEventual(key, ops, txnID)
	}
	if r.net == nil {
		r.reject()
		return clock.Timestamp{}, ErrNotPrimary
	}
	resp, err := r.net.Request(r.id, primary, forwardWrite{Key: key, Ops: ops, TxnID: txnID}, 500*time.Millisecond)
	if err != nil {
		r.reject()
		return clock.Timestamp{}, fmt.Errorf("%w: %v", ErrNotPrimary, err)
	}
	stamp, _ := resp.(clock.Timestamp)
	r.accept()
	return stamp, nil
}

type forwardWrite struct {
	Key   entity.Key
	Ops   []entity.Op
	TxnID string
}

// primaryID returns the lowest node id across this replica and its peers,
// which all replicas agree on without coordination.
func (r *Replica) primaryID() clock.NodeID {
	ids := append(r.Peers(), r.id)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids[0]
}

// appendLocal writes the record into the local LSDB and assigns it an
// origin LSN for shipping.
func (r *Replica) appendLocal(key entity.Key, ops []entity.Op, txnID string, tentative bool) (shippedRecord, error) {
	stamp := r.hlc.Now()
	if txnID == "" {
		txnID = fmt.Sprintf("%s-%d", r.id, r.originN.Peek()+1)
	}
	var res lsdb.AppendResult
	var err error
	if tentative {
		res, err = r.db.AppendTentative(key, ops, stamp, r.id, txnID)
	} else {
		res, err = r.db.Append(key, ops, stamp, r.id, txnID)
	}
	if err != nil {
		return shippedRecord{}, err
	}
	originLSN := r.originN.Next()
	r.mu.Lock()
	r.markAppliedLocked(r.id, originLSN)
	r.rememberOriginLocked(r.id, txnID, originLSN)
	r.mu.Unlock()
	return shippedRecord{
		Origin: r.id, OriginLSN: originLSN, Key: key, Ops: ops,
		Stamp: res.Record.Stamp, TxnID: txnID, Tentative: tentative,
	}, nil
}

func (r *Replica) accept() {
	r.mu.Lock()
	r.stats.WritesAccepted++
	r.mu.Unlock()
}

func (r *Replica) reject() {
	r.mu.Lock()
	r.stats.WritesRejected++
	r.mu.Unlock()
}

// shipAsync sends records to every peer without waiting.
func (r *Replica) shipAsync(records []shippedRecord) {
	if r.net == nil {
		return
	}
	for _, p := range r.Peers() {
		_ = r.net.Send(r.id, p, replicatePayload{Records: records})
	}
}

// onMessage handles asynchronous replication traffic.
func (r *Replica) onMessage(from clock.NodeID, payload interface{}) {
	switch msg := payload.(type) {
	case replicatePayload:
		r.applyRemote(msg.Records)
	case syncResponsePayload:
		r.applyRemote(msg.Records)
	}
}

// onRequest handles synchronous replication traffic.
func (r *Replica) onRequest(from clock.NodeID, payload interface{}) (interface{}, error) {
	switch msg := payload.(type) {
	case replicatePayload:
		r.applyRemote(msg.Records)
		return "ack", nil
	case forwardWrite:
		stamp, err := r.writeEventual(msg.Key, msg.Ops, msg.TxnID)
		if err != nil {
			return nil, err
		}
		return stamp, nil
	case syncRequestPayload:
		return syncResponsePayload{Records: r.recordsUnknownTo(msg.Known)}, nil
	case readRequest:
		st, _, err := r.db.Current(msg.Key)
		if err != nil {
			return nil, err
		}
		return st, nil
	default:
		return nil, fmt.Errorf("replica: unknown request %T", payload)
	}
}

type readRequest struct{ Key entity.Key }

// applyRemote idempotently applies records originated elsewhere.
func (r *Replica) applyRemote(records []shippedRecord) {
	for _, rec := range records {
		r.mu.Lock()
		if rec.Origin == r.id || (r.applied[rec.Origin] != nil && r.applied[rec.Origin][rec.OriginLSN]) {
			r.stats.Duplicates++
			r.mu.Unlock()
			continue
		}
		r.mu.Unlock()
		var err error
		if rec.Tentative {
			_, err = r.db.AppendTentative(rec.Key, rec.Ops, rec.Stamp, rec.Origin, rec.TxnID)
		} else {
			_, err = r.db.Append(rec.Key, rec.Ops, rec.Stamp, rec.Origin, rec.TxnID)
		}
		r.mu.Lock()
		if err == nil || errors.Is(err, lsdb.ErrDuplicateTxn) {
			r.markAppliedLocked(rec.Origin, rec.OriginLSN)
			r.rememberOriginLocked(rec.Origin, rec.TxnID, rec.OriginLSN)
			if err == nil {
				r.stats.RemoteApplied++
			} else {
				r.stats.Duplicates++
			}
		}
		r.mu.Unlock()
		r.hlc.Observe(rec.Stamp)
	}
}

func (r *Replica) markAppliedLocked(origin clock.NodeID, lsn uint64) {
	if r.applied[origin] == nil {
		r.applied[origin] = map[uint64]bool{}
	}
	r.applied[origin][lsn] = true
	for r.applied[origin][r.high[origin]+1] {
		r.high[origin]++
	}
}

func (r *Replica) rememberOriginLocked(origin clock.NodeID, txnID string, lsn uint64) {
	if r.originLSNs[origin] == nil {
		r.originLSNs[origin] = map[string]uint64{}
	}
	r.originLSNs[origin][txnID] = lsn
}

// knownHighWater returns the per-origin contiguous high-water marks.
func (r *Replica) knownHighWater() map[clock.NodeID]uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[clock.NodeID]uint64, len(r.high))
	for k, v := range r.high {
		out[k] = v
	}
	return out
}

// recordsUnknownTo returns local records the requester has not yet seen,
// based on its per-origin high-water marks. Origin LSNs come from the
// originLSNs map so the record identity is stable no matter how the record
// reached this replica.
func (r *Replica) recordsUnknownTo(known map[clock.NodeID]uint64) []shippedRecord {
	recs := r.db.RecordsAfter(0)
	var out []shippedRecord
	for _, rec := range recs {
		if rec.Obsolete {
			// Withdrawn records (failed quorum writes, revoked promises) are
			// a local concern; shipping them would resurrect their effects.
			continue
		}
		r.mu.Lock()
		originLSN, ok := r.originLSNs[rec.Origin][rec.TxnID]
		r.mu.Unlock()
		if !ok {
			// Records written directly to the LSDB outside the replica API
			// (e.g. by the kernel before replication was attached) have no
			// origin LSN; ship them under a synthetic one above the
			// requester's horizon so they are not lost.
			originLSN = known[rec.Origin] + 1
		}
		if originLSN <= known[rec.Origin] {
			continue
		}
		out = append(out, shippedRecord{
			Origin: rec.Origin, OriginLSN: originLSN, Key: rec.Key, Ops: rec.Ops,
			Stamp: rec.Stamp, TxnID: rec.TxnID, Tentative: rec.Tentative,
		})
	}
	return out
}

// SyncWith performs one anti-entropy round with a peer: it asks the peer for
// everything it has not yet seen and applies the response. Returns the number
// of records received, or an error when the peer is unreachable (the round is
// simply retried later).
func (r *Replica) SyncWith(peer clock.NodeID) (int, error) {
	if r.net == nil {
		return 0, errors.New("replica: no network")
	}
	r.mu.Lock()
	r.stats.SyncRounds++
	r.mu.Unlock()
	resp, err := r.net.Request(r.id, peer, syncRequestPayload{From: r.id, Known: r.knownHighWater()}, 500*time.Millisecond)
	if err != nil {
		return 0, err
	}
	sr, ok := resp.(syncResponsePayload)
	if !ok {
		return 0, fmt.Errorf("replica: unexpected sync response %T", resp)
	}
	r.applyRemote(sr.Records)
	return len(sr.Records), nil
}

// ReadLocal returns the subjective (local) state of an entity.
func (r *Replica) ReadLocal(key entity.Key) (*entity.State, error) {
	st, _, err := r.db.Current(key)
	return st, err
}

// ReadResolved returns the state obtained by replaying every record this
// replica holds for the entity in deterministic (Stamp, Origin) order. Two
// replicas holding the same record set produce identical resolved states —
// the convergence guarantee of eventual consistency, implemented as "a single
// end-to-end conflict-handling mechanism" (principle 2.10).
func (r *Replica) ReadResolved(key entity.Key) (*entity.State, error) {
	r.mu.Lock()
	typ := r.types[key.Type]
	r.mu.Unlock()
	if typ == nil {
		return nil, fmt.Errorf("%w: %s", lsdb.ErrUnknownType, key.Type)
	}
	recs := r.db.RecordsFor(key)
	if len(recs) == 0 {
		return nil, lsdb.ErrNotFound
	}
	sort.Slice(recs, func(i, j int) bool {
		c := recs[i].Stamp.Compare(recs[j].Stamp)
		if c != clock.Equal {
			return c == clock.Before
		}
		return recs[i].Origin < recs[j].Origin
	})
	state := entity.NewState(key)
	for _, rec := range recs {
		if rec.Obsolete {
			continue
		}
		next, _, err := entity.Apply(typ, state, rec.Ops, entity.Managed)
		if err != nil {
			continue
		}
		if rec.Tentative {
			next.Tentative = true
		}
		state = next
	}
	return state, nil
}

// ReadQuorum reads the entity from a majority of replicas and returns the
// resolved state over the union of what the majority holds. It fails when a
// majority is unreachable (consistency chosen over availability).
func (r *Replica) ReadQuorum(key entity.Key) (*entity.State, error) {
	peers := r.Peers()
	needed := (len(peers)+1)/2 + 1 // majority including self
	reached := 1
	for _, p := range peers {
		if r.net == nil {
			break
		}
		if _, err := r.net.Request(r.id, p, readRequest{Key: key}, 200*time.Millisecond); err == nil {
			reached++
		}
	}
	if reached < needed {
		return nil, fmt.Errorf("%w: reached %d of %d", ErrNoQuorum, reached, needed)
	}
	return r.ReadResolved(key)
}

// Cluster wires a set of replicas over one simulated network.
type Cluster struct {
	net      *netsim.Network
	replicas []*Replica
	mode     Mode

	stopCh chan struct{}
	wg     sync.WaitGroup
	once   sync.Once
}

// NewCluster creates n replicas named r0..r(n-1) in the given mode.
func NewCluster(n int, mode Mode, netCfg netsim.Config, types ...*entity.Type) (*Cluster, error) {
	if n <= 0 {
		return nil, errors.New("replica: cluster needs at least one replica")
	}
	c := &Cluster{net: netsim.New(netCfg), mode: mode, stopCh: make(chan struct{})}
	ids := make([]clock.NodeID, n)
	for i := 0; i < n; i++ {
		ids[i] = clock.NodeID(fmt.Sprintf("r%d", i))
	}
	for i := 0; i < n; i++ {
		rep := NewReplica(ids[i], c.net, mode)
		for _, t := range types {
			if err := rep.RegisterType(t); err != nil {
				return nil, err
			}
		}
		var peers []clock.NodeID
		for j, id := range ids {
			if j != i {
				peers = append(peers, id)
			}
		}
		rep.SetPeers(peers)
		c.replicas = append(c.replicas, rep)
	}
	return c, nil
}

// Network exposes the simulated network (for partition injection).
func (c *Cluster) Network() *netsim.Network { return c.net }

// Replica returns the i-th replica.
func (c *Cluster) Replica(i int) (*Replica, error) {
	if i < 0 || i >= len(c.replicas) {
		return nil, fmt.Errorf("%w: index %d", ErrUnknownReplica, i)
	}
	return c.replicas[i], nil
}

// Size returns the number of replicas.
func (c *Cluster) Size() int { return len(c.replicas) }

// StartAntiEntropy runs periodic pairwise sync rounds until Stop is called.
func (c *Cluster) StartAntiEntropy(interval time.Duration) {
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-c.stopCh:
				return
			case <-ticker.C:
				c.SyncRound()
			}
		}
	}()
}

// SyncRound performs one full pairwise anti-entropy pass.
func (c *Cluster) SyncRound() {
	for _, r := range c.replicas {
		for _, p := range r.Peers() {
			_, _ = r.SyncWith(p)
		}
	}
}

// Stop terminates background anti-entropy and closes the network.
func (c *Cluster) Stop() {
	c.once.Do(func() {
		close(c.stopCh)
		c.wg.Wait()
		c.net.Close()
	})
}

// Converged reports whether every replica resolves the key to the same
// serialized state.
func (c *Cluster) Converged(key entity.Key) (bool, error) {
	var first string
	for i, r := range c.replicas {
		st, err := r.ReadResolved(key)
		if errors.Is(err, lsdb.ErrNotFound) {
			st = entity.NewState(key)
		} else if err != nil {
			return false, err
		}
		enc := fingerprint(st)
		if i == 0 {
			first = enc
		} else if enc != first {
			return false, nil
		}
	}
	return true, nil
}

// Divergence returns how many of the keys are not yet converged.
func (c *Cluster) Divergence(keys []entity.Key) (int, error) {
	n := 0
	for _, k := range keys {
		ok, err := c.Converged(k)
		if err != nil {
			return 0, err
		}
		if !ok {
			n++
		}
	}
	return n, nil
}

// fingerprint renders a state deterministically for convergence comparison.
func fingerprint(st *entity.State) string {
	fields := make([]string, 0, len(st.Fields))
	for k, v := range st.Fields {
		fields = append(fields, fmt.Sprintf("%s=%v", k, v))
	}
	sort.Strings(fields)
	names := st.Collections()
	colls := make([]string, 0, len(names))
	for _, name := range names {
		rows := st.Children(name)
		ids := make([]string, 0, len(rows))
		for _, row := range rows {
			rf := make([]string, 0, len(row.Fields))
			for k, v := range row.Fields {
				rf = append(rf, fmt.Sprintf("%s=%v", k, v))
			}
			sort.Strings(rf)
			ids = append(ids, fmt.Sprintf("%s(del=%v)%v", row.ID, row.Deleted, rf))
		}
		sort.Strings(ids)
		colls = append(colls, fmt.Sprintf("%s:%v", name, ids))
	}
	sort.Strings(colls)
	return fmt.Sprintf("del=%v tent=%v %v %v", st.Deleted, st.Tentative, fields, colls)
}
