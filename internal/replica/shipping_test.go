package replica

import (
	"errors"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/entity"
	"repro/internal/lsdb"
	"repro/internal/netsim"
	"repro/internal/storage"
)

func ts(n int64) clock.Timestamp {
	return clock.Timestamp{WallNanos: n, Node: "p"}
}

// shipPrimary is a single-unit primary: a store whose commit sink ships to
// the standbys.
type shipPrimary struct {
	db      *lsdb.DB
	shipper *Shipper
}

func newShipPrimary(t *testing.T, net *netsim.Network, self clock.NodeID, standbys []clock.NodeID, mode AckMode) *shipPrimary {
	t.Helper()
	db := lsdb.Open(lsdb.Options{Node: self, Backend: storage.NewMemory(), Shards: 4})
	if err := db.RegisterType(accountType()); err != nil {
		t.Fatal(err)
	}
	sh := NewShipper(ShipperOptions{
		Self:     self,
		Standbys: standbys,
		Mode:     mode,
		Timeout:  250 * time.Millisecond,
		Net:      net,
		Source:   func(unit int, after uint64, limit int) []lsdb.Record { return db.RecordsAfterN(after, limit) },
	})
	db.SetCommitSink(sh.Sink(0))
	return &shipPrimary{db: db, shipper: sh}
}

func newShipStandby(t *testing.T, net *netsim.Network, self clock.NodeID, backend storage.Backend) *Standby {
	t.Helper()
	sb, err := NewStandby(StandbyOptions{
		Self:     self,
		Net:      net,
		Backends: []storage.Backend{backend},
		Timeout:  250 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sb
}

func promoteBalance(t *testing.T, sb *Standby, peers []clock.NodeID, key entity.Key) (*lsdb.DB, float64) {
	t.Helper()
	dbs, err := sb.Promote(peers, lsdb.Options{Node: sb.ID()}, accountType())
	if err != nil {
		t.Fatalf("Promote: %v", err)
	}
	st, _, err := dbs[0].Current(key)
	if err != nil {
		t.Fatalf("Current on promoted store: %v", err)
	}
	return dbs[0], st.Float("balance")
}

// Synchronous shipping keeps the standby's log a live mirror: after appends
// and an obsolescence mark, promoting the standby reproduces the primary's
// state exactly, including the withdrawn record.
func TestShipSyncMirrorsLogAndPromotes(t *testing.T) {
	net := netsim.New(netsim.Config{})
	defer net.Close()
	sb := newShipStandby(t, net, "s1", storage.NewMemory())
	p := newShipPrimary(t, net, "p", []clock.NodeID{"s1"}, AckSync)
	key := acct("A1")
	for i := 0; i < 3; i++ {
		if _, err := p.db.Append(key, []entity.Op{entity.Delta("balance", 10)}, ts(int64(i+1)), "p", ""); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if _, err := p.db.AppendTentative(key, []entity.Op{entity.Delta("balance", 100)}, ts(4), "p", "tentative-1"); err != nil {
		t.Fatal(err)
	}
	if err := p.db.MarkObsolete(key, "tentative-1"); err != nil {
		t.Fatal(err)
	}
	if got := sb.Watermark(0); got != 4 {
		t.Fatalf("standby watermark = %d, want 4", got)
	}
	if st := sb.Stats(); st.Gaps != 0 || st.Duplicates != 0 {
		t.Fatalf("clean sync stream recorded gaps/duplicates: %+v", st)
	}
	_, bal := promoteBalance(t, sb, nil, key)
	if bal != 30 {
		t.Fatalf("promoted balance = %v, want 30 (obsolete mark must have shipped)", bal)
	}
}

// Each ack mode draws the line differently when standbys are unreachable.
func TestAckModesUnderBlockedLinks(t *testing.T) {
	cases := []struct {
		name    string
		mode    AckMode
		blocked []clock.NodeID
		wantErr bool
	}{
		{"sync-one-blocked", AckSync, []clock.NodeID{"s2"}, true},
		{"quorum-minority-blocked", AckQuorum, []clock.NodeID{"s2"}, false},
		{"quorum-majority-blocked", AckQuorum, []clock.NodeID{"s1", "s2"}, true},
		{"async-all-blocked", AckAsync, []clock.NodeID{"s1", "s2"}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			net := netsim.New(netsim.Config{UnreachableDelay: time.Millisecond})
			defer net.Close()
			newShipStandby(t, net, "s1", storage.NewMemory())
			newShipStandby(t, net, "s2", storage.NewMemory())
			p := newShipPrimary(t, net, "p", []clock.NodeID{"s1", "s2"}, tc.mode)
			for _, s := range tc.blocked {
				net.SetLinkFault("p", s, netsim.LinkFault{Block: true})
			}
			key := acct("A1")
			_, err := p.db.Append(key, []entity.Op{entity.Delta("balance", 10)}, ts(1), "p", "t1")
			if tc.wantErr {
				if !errors.Is(err, ErrStandbyAcks) {
					t.Fatalf("err = %v, want ErrStandbyAcks", err)
				}
			} else if err != nil {
				t.Fatalf("err = %v, want success", err)
			}
			// Whatever the replication verdict, the write is committed and
			// durable on the primary (post-install indeterminacy).
			st, _, cerr := p.db.Current(key)
			if cerr != nil || st.Float("balance") != 10 {
				t.Fatalf("primary state after ship: %v %v", st, cerr)
			}
		})
	}
}

// Lost asynchronous batches leave a hole the standby can see (a later LSN
// arrives first) and catch-up heals it from the primary's log.
func TestAsyncLossGapDetectionAndCatchUp(t *testing.T) {
	net := netsim.New(netsim.Config{})
	defer net.Close()
	sb := newShipStandby(t, net, "s1", storage.NewMemory())
	p := newShipPrimary(t, net, "p", []clock.NodeID{"s1"}, AckAsync)
	key := acct("A1")

	net.SetLinkFault("p", "s1", netsim.LinkFault{Loss: 1})
	for i := 0; i < 3; i++ {
		if _, err := p.db.Append(key, []entity.Op{entity.Delta("balance", 10)}, ts(int64(i+1)), "p", ""); err != nil {
			t.Fatal(err)
		}
	}
	// Async ships ride the lanes: drain them while the loss fault is still
	// set, so the first three batches are really lost.
	p.shipper.Drain()
	net.ClearLinkFaults()
	if _, err := p.db.Append(key, []entity.Op{entity.Delta("balance", 1)}, ts(4), "p", ""); err != nil {
		t.Fatal(err)
	}
	p.shipper.Drain()
	net.Quiesce()

	if got := sb.Watermark(0); got != 0 {
		t.Fatalf("watermark after losses = %d, want 0 (LSNs 1-3 missing)", got)
	}
	if st := sb.Stats(); st.Gaps == 0 {
		t.Fatalf("standby did not notice the hole: %+v", st)
	}
	n, err := sb.CatchUp("p", 0)
	if err != nil {
		t.Fatalf("CatchUp: %v", err)
	}
	if n == 0 {
		t.Fatal("catch-up returned no records")
	}
	if got := sb.Watermark(0); got != 4 {
		t.Fatalf("watermark after catch-up = %d, want 4", got)
	}
	if st := p.shipper.Stats(); st.CatchupServed == 0 {
		t.Fatalf("primary served no catch-up: %+v", st)
	}
	_, bal := promoteBalance(t, sb, nil, key)
	if bal != 31 {
		t.Fatalf("promoted balance = %v, want 31", bal)
	}
}

// A standby over a WAL persists its replication watermark and resumes its
// progress from the durable log after a restart, deduplicating overlap.
func TestStandbyResumesProgressFromDurableLog(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "standby-unit-0")
	wal, err := storage.OpenWAL(storage.WALOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	net := netsim.New(netsim.Config{})
	defer net.Close()
	sb := newShipStandby(t, net, "s1", wal)
	p := newShipPrimary(t, net, "p", []clock.NodeID{"s1"}, AckSync)
	key := acct("A1")
	for i := 0; i < 3; i++ {
		if _, err := p.db.Append(key, []entity.Op{entity.Delta("balance", 10)}, ts(int64(i+1)), "p", ""); err != nil {
			t.Fatal(err)
		}
	}
	if got := wal.ReplicationWatermark(); got != 3 {
		t.Fatalf("durable replication watermark = %d, want 3", got)
	}
	// Restart: close the receiver's WAL, reopen the directory, rebuild the
	// standby over it. Progress must come back from the log itself.
	sb.Stop()
	if err := wal.Close(); err != nil {
		t.Fatal(err)
	}
	wal2, err := storage.OpenWAL(storage.WALOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer wal2.Close()
	sb2 := newShipStandby(t, net, "s1", wal2)
	if got := sb2.Watermark(0); got != 3 {
		t.Fatalf("restarted standby watermark = %d, want 3", got)
	}
	// The primary keeps shipping; a full catch-up overlaps the restored log
	// and must not duplicate records.
	if _, err := p.db.Append(key, []entity.Op{entity.Delta("balance", 1)}, ts(4), "p", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := sb2.CatchUp("p", 0); err != nil {
		t.Fatal(err)
	}
	if got := sb2.Watermark(0); got != 4 {
		t.Fatalf("watermark = %d, want 4", got)
	}
	_, bal := promoteBalance(t, sb2, nil, key)
	if bal != 31 {
		t.Fatalf("promoted balance = %v, want 31", bal)
	}
}

// Under quorum, consecutive writes can be acked by different standbys; no
// single standby holds every acked write. Promotion must union the surviving
// logs before replaying, or acked writes would be lost.
func TestPromoteUnionsQuorumSplitAcrossStandbys(t *testing.T) {
	net := netsim.New(netsim.Config{UnreachableDelay: time.Millisecond})
	defer net.Close()
	s1 := newShipStandby(t, net, "s1", storage.NewMemory())
	s2 := newShipStandby(t, net, "s2", storage.NewMemory())
	p := newShipPrimary(t, net, "p", []clock.NodeID{"s1", "s2"}, AckQuorum)
	key := acct("A1")

	net.SetLinkFault("p", "s2", netsim.LinkFault{Block: true})
	if _, err := p.db.Append(key, []entity.Op{entity.Delta("balance", 10)}, ts(1), "p", "t1"); err != nil {
		t.Fatalf("write acked by s1 only: %v", err)
	}
	// Quorum returns at the first ack; the blocked lane is still retrying in
	// the background. Drain it while the fault is set so the constructed
	// split survives (a retry after the clear would heal it).
	p.shipper.Drain()
	net.ClearLinkFaults()
	net.SetLinkFault("p", "s1", netsim.LinkFault{Block: true})
	if _, err := p.db.Append(key, []entity.Op{entity.Delta("balance", 5)}, ts(2), "p", "t2"); err != nil {
		t.Fatalf("write acked by s2 only: %v", err)
	}
	p.shipper.Drain()
	net.ClearLinkFaults()
	if s1.Watermark(0) != 1 || s2.Watermark(0) != 0 {
		t.Fatalf("split setup wrong: s1=%d s2=%d", s1.Watermark(0), s2.Watermark(0))
	}

	// Primary dies; s1 promotes, pulling what s2 holds.
	db, bal := promoteBalance(t, s1, []clock.NodeID{"s2"}, key)
	if bal != 15 {
		t.Fatalf("promoted balance = %v, want 15 (union of both acked writes)", bal)
	}
	// The promoted store resumes the LSN sequence past everything replayed.
	res, err := db.Append(key, []entity.Op{entity.Delta("balance", 1)}, ts(3), "s1", "t3")
	if err != nil {
		t.Fatal(err)
	}
	if res.Record.LSN != 3 {
		t.Fatalf("post-promotion LSN = %d, want 3", res.Record.LSN)
	}
	// A stopped standby refuses the old stream.
	if _, _, err := s1.Receive(ShipBatch{From: "p", Unit: 0, Records: []lsdb.Record{{LSN: 99}}}); err == nil {
		t.Fatal("stopped standby accepted a batch")
	}
}

func TestParseAckMode(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want AckMode
	}{{"async", AckAsync}, {"", AckAsync}, {"sync", AckSync}, {"quorum", AckQuorum}} {
		got, err := ParseAckMode(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseAckMode(%q) = %v, %v", tc.in, got, err)
		}
		if tc.in != "" && got.String() != tc.in {
			t.Fatalf("String() = %q, want %q", got.String(), tc.in)
		}
	}
	if _, err := ParseAckMode("bogus"); err == nil {
		t.Fatal("bogus mode accepted")
	}
}
