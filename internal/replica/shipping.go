// WAL-shipped replication: the primary's durable log is the replication
// stream.
//
// The in-memory scheme in replica.go re-applies operation descriptors on
// every peer; this file implements the production shape the paper's section 2
// calls "active systems with asynchronous/synchronous commits to backups":
// the primary ships every record written to its storage.Backend — commit
// cycles (riding the group-commit cadence via lsdb.Options.CommitSink),
// obsolescence marks, compaction horizons — to standby replicas that append
// them, unapplied, into backends of their own. A standby is therefore a log
// copy, not a second database: promotion replays the received log through
// lsdb.Recover, which rebuilds stores, caches and watermarks exactly as a
// restart would, and the promoted node resumes as primary.
//
// Ack modes tune the durability/latency trade-off per cluster:
//
//   - AckAsync: the commit cycle returns as soon as the batch is handed to
//     the transport; loss and partitions are healed by catch-up.
//   - AckSync: every standby must acknowledge the durable append before the
//     writers' commit returns ("synchronous commit to backup").
//   - AckQuorum: a majority of the cluster (standbys + primary) must hold the
//     batch before the commit returns.
//
// A standby tracks, per unit, the contiguous prefix of append LSNs it holds
// (plus the out-of-order set beyond it — commit cycles from independently
// committing shards ship concurrently, so arrival order is not LSN order).
// Anything missing is pulled by LSN with a catch-up request, served straight
// from the source's durable log (storage.Streamer). The contiguous watermark
// is durably recorded through storage.ReplicationMarker so a restarted
// standby knows how far its log reaches without replaying it.
package replica

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/entity"
	"repro/internal/lsdb"
	"repro/internal/netsim"
	"repro/internal/storage"
)

// AckMode selects when a shipped commit cycle is acknowledged to its writers.
type AckMode int

// Ack modes.
const (
	// AckAsync hands the batch to the transport and returns: maximum
	// throughput, and a primary crash can lose commits that were acked to
	// clients but not yet received by any standby.
	AckAsync AckMode = iota
	// AckSync returns only after every standby acknowledged the durable
	// append: an acked write survives the loss of all but one node.
	AckSync
	// AckQuorum returns after a majority of the cluster (standbys plus the
	// primary itself) holds the batch.
	AckQuorum
)

// String returns the flag spelling of the mode.
func (m AckMode) String() string {
	switch m {
	case AckSync:
		return "sync"
	case AckQuorum:
		return "quorum"
	default:
		return "async"
	}
}

// ParseAckMode maps the -ack flag vocabulary onto an AckMode.
func ParseAckMode(s string) (AckMode, error) {
	switch s {
	case "async", "":
		return AckAsync, nil
	case "sync":
		return AckSync, nil
	case "quorum":
		return AckQuorum, nil
	default:
		return AckAsync, fmt.Errorf("replica: unknown ack mode %q (want async, sync or quorum)", s)
	}
}

// ErrStandbyAcks is returned to writers when a synchronous ack mode could not
// gather enough standby acknowledgements. Like any post-commit failure it is
// indeterminate: the records are committed and durable on the primary; only
// the replication guarantee is in doubt.
var ErrStandbyAcks = errors.New("replica: insufficient standby acks")

// ShipBatch is the wire unit of WAL shipping: one commit cycle (or one
// history-rewrite mark, or a catch-up tail) of one serialization unit.
type ShipBatch struct {
	From    clock.NodeID
	Unit    int
	Records []lsdb.Record
}

// shipAck acknowledges a synchronous ShipBatch with the standby's new
// contiguous watermark for the unit.
type shipAck struct {
	Unit      int
	Watermark uint64
}

// catchupRequest asks a node for the records of one unit after an LSN.
type catchupRequest struct {
	Unit  int
	After uint64
}

type catchupResponse struct {
	Records []lsdb.Record
}

// Transport moves ship batches to a standby. The bundled NetTransport runs
// over netsim; cmd/soupsd provides an HTTP implementation for real processes.
type Transport interface {
	// Ship delivers batch to peer. When sync is true it must not return
	// success before the standby durably appended the batch; when false it
	// may return immediately (loss is the caller's problem, healed by
	// catch-up).
	Ship(peer clock.NodeID, batch ShipBatch, sync bool, timeout time.Duration) error
}

// NetTransport ships over a simulated network: synchronous batches as
// requests, asynchronous ones as sends (silently lossy, like a datagram).
type NetTransport struct {
	Net  *netsim.Network
	Self clock.NodeID
}

// Ship implements Transport.
func (t NetTransport) Ship(peer clock.NodeID, batch ShipBatch, sync bool, timeout time.Duration) error {
	if sync {
		resp, err := t.Net.Request(t.Self, peer, batch, timeout)
		if err != nil {
			return err
		}
		if _, ok := resp.(shipAck); !ok {
			return fmt.Errorf("replica: unexpected ship response %T", resp)
		}
		return nil
	}
	return t.Net.Send(t.Self, peer, batch)
}

// ShipStats counts the primary side of WAL shipping.
type ShipStats struct {
	BatchesShipped uint64
	RecordsShipped uint64
	SyncAcks       uint64
	ShipFailures   uint64
	CatchupServed  uint64
	// ShipRetries counts transient transport failures absorbed by the
	// in-ship retry loop (each retry that was attempted, successful or not).
	ShipRetries uint64
	// BreakerOpens counts closed→open transitions across all standbys.
	BreakerOpens uint64
	// BreakerShortCircuits counts ships skipped because the standby's
	// breaker was open — failures that cost nothing instead of a timeout.
	BreakerShortCircuits uint64
}

// ShipperOptions configure the primary side of WAL shipping.
type ShipperOptions struct {
	// Self is the primary's node id on the transport.
	Self clock.NodeID
	// Standbys are the peers every batch ships to.
	Standbys []clock.NodeID
	// Mode selects the ack discipline.
	Mode AckMode
	// Timeout bounds each synchronous ship (default 500ms).
	Timeout time.Duration
	// Transport moves the batches. When nil and Net is set, a NetTransport
	// is used.
	Transport Transport
	// Source serves catch-up requests: the records of one unit with
	// LSN > after (an lsdb.RecordsAfter closure, or a storage.Streamer
	// read). Nil disables catch-up serving.
	Source func(unit int, after uint64) []lsdb.Record
	// Net, when set, registers Self on the simulated network (senders must
	// be registered) and, with Source, a catch-up request handler.
	Net *netsim.Network
	// RetryAttempts is how many extra tries a failed ship gets before its
	// error counts toward the ack verdict (default 2; negative disables):
	// one dropped packet must not fail a sync commit. Retries are bounded
	// and jittered; they absorb transient transport faults, not dead
	// standbys — those are the breaker's job.
	RetryAttempts int
	// RetryBackoff is the base delay between retries (default 5ms), doubled
	// per retry and jittered ±50% so retrying shippers do not convoy.
	RetryBackoff time.Duration
	// BreakerThreshold opens a standby's circuit breaker after this many
	// consecutive failed ships (default 3). While open, ships to that
	// standby are skipped outright — a persistently dead standby in sync
	// mode stops costing a timeout per commit cycle.
	BreakerThreshold int
	// BreakerCooldown is how long a breaker stays open before one probe
	// ship is let through half-open (default 2s). A successful probe closes
	// the breaker; the standby then heals the gap through catch-up.
	BreakerCooldown time.Duration
	// Now supplies time for breaker state transitions (default time.Now);
	// tests inject a fake clock to step through cooldowns deterministically.
	Now func() time.Time
}

// breakerState is a standby circuit breaker's position.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// breaker tracks one standby's failure streak. Guarded by Shipper.mu.
type breaker struct {
	state    breakerState
	failures int // consecutive failures while closed
	openedAt time.Time
}

// Shipper is the primary side of WAL shipping: its Sink closures attach to
// the units' stores as lsdb.Options.CommitSink and ship every logged record
// to the standbys under the configured ack mode.
type Shipper struct {
	opts ShipperOptions

	mu       sync.Mutex
	stats    ShipStats
	breakers map[clock.NodeID]*breaker
	jitter   *rand.Rand // retry-backoff jitter; seeded, guarded by mu
}

// NewShipper creates a shipper and, on a simulated network, registers its
// catch-up handler.
func NewShipper(opts ShipperOptions) *Shipper {
	if opts.Timeout <= 0 {
		opts.Timeout = 500 * time.Millisecond
	}
	if opts.Transport == nil && opts.Net != nil {
		opts.Transport = NetTransport{Net: opts.Net, Self: opts.Self}
	}
	if opts.RetryAttempts < 0 {
		opts.RetryAttempts = 0
	} else if opts.RetryAttempts == 0 {
		opts.RetryAttempts = 2
	}
	if opts.RetryBackoff <= 0 {
		opts.RetryBackoff = 5 * time.Millisecond
	}
	if opts.BreakerThreshold <= 0 {
		opts.BreakerThreshold = 3
	}
	if opts.BreakerCooldown <= 0 {
		opts.BreakerCooldown = 2 * time.Second
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	s := &Shipper{
		opts:     opts,
		breakers: map[clock.NodeID]*breaker{},
		jitter:   rand.New(rand.NewSource(1)),
	}
	for _, peer := range opts.Standbys {
		s.breakers[peer] = &breaker{}
	}
	if opts.Net != nil {
		opts.Net.Register(opts.Self, nil)
		if opts.Source != nil {
			opts.Net.RegisterRequestHandler(opts.Self, s.onRequest)
		}
	}
	return s
}

// Mode returns the configured ack mode.
func (s *Shipper) Mode() AckMode { return s.opts.Mode }

// Standbys returns the configured standby ids.
func (s *Shipper) Standbys() []clock.NodeID {
	return append([]clock.NodeID(nil), s.opts.Standbys...)
}

// Stats returns a copy of the counters.
func (s *Shipper) Stats() ShipStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Sink returns the commit sink for one unit's store. The returned closure is
// invoked under the store's shard lock with records that are already
// installed and durable locally; per-entity order is preserved because an
// entity commits under one shard lock.
func (s *Shipper) Sink(unit int) func([]lsdb.Record) error {
	return func(records []lsdb.Record) error { return s.ship(unit, records) }
}

// acksNeeded is how many standby acks the mode requires before a commit
// returns. Quorum counts the primary itself as one holder.
func (s *Shipper) acksNeeded() int {
	switch s.opts.Mode {
	case AckSync:
		return len(s.opts.Standbys)
	case AckQuorum:
		return (len(s.opts.Standbys)+1)/2 + 1 - 1
	default:
		return 0
	}
}

func (s *Shipper) ship(unit int, records []lsdb.Record) error {
	if len(s.opts.Standbys) == 0 || s.opts.Transport == nil || len(records) == 0 {
		return nil
	}
	// The sink's slice is only valid for the duration of the call, and an
	// asynchronous transport delivers after it returns: copy.
	recs := make([]lsdb.Record, len(records))
	copy(recs, records)
	batch := ShipBatch{From: s.opts.Self, Unit: unit, Records: recs}
	sync := s.opts.Mode != AckAsync
	acks, failures := 0, 0
	var firstErr error
	for _, peer := range s.opts.Standbys {
		if !s.breakerAdmits(peer) {
			failures++
			if firstErr == nil {
				firstErr = fmt.Errorf("replica: standby %s breaker open", peer)
			}
			continue
		}
		err := s.shipWithRetry(peer, batch, sync)
		s.breakerReport(peer, err == nil)
		if err != nil {
			failures++
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if sync {
			acks++
		}
	}
	s.mu.Lock()
	s.stats.BatchesShipped++
	s.stats.RecordsShipped += uint64(len(recs))
	s.stats.SyncAcks += uint64(acks)
	s.stats.ShipFailures += uint64(failures)
	s.mu.Unlock()
	if need := s.acksNeeded(); acks < need {
		if firstErr != nil {
			return fmt.Errorf("%w: %d/%d (%v)", ErrStandbyAcks, acks, need, firstErr)
		}
		return fmt.Errorf("%w: %d/%d", ErrStandbyAcks, acks, need)
	}
	return nil
}

// shipWithRetry ships to one standby, absorbing transient transport errors
// with up to RetryAttempts bounded, jittered, exponentially backed-off
// retries before the error reaches the ack verdict.
func (s *Shipper) shipWithRetry(peer clock.NodeID, batch ShipBatch, sync bool) error {
	err := s.opts.Transport.Ship(peer, batch, sync, s.opts.Timeout)
	backoff := s.opts.RetryBackoff
	for try := 0; err != nil && try < s.opts.RetryAttempts; try++ {
		s.mu.Lock()
		s.stats.ShipRetries++
		// ±50% jitter: concurrent shard shippers retrying the same blip
		// should not re-collide in lockstep.
		delay := backoff/2 + time.Duration(s.jitter.Int63n(int64(backoff)))
		s.mu.Unlock()
		time.Sleep(delay)
		backoff *= 2
		err = s.opts.Transport.Ship(peer, batch, sync, s.opts.Timeout)
	}
	return err
}

// breakerAdmits decides whether a ship to peer may go out. Closed admits;
// open short-circuits until the cooldown elapses, then lets exactly one
// probe through half-open (concurrent ships keep short-circuiting while the
// probe is in flight).
func (s *Shipper) breakerAdmits(peer clock.NodeID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.breakers[peer]
	if b == nil {
		return true
	}
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if s.opts.Now().Sub(b.openedAt) >= s.opts.BreakerCooldown {
			b.state = breakerHalfOpen
			return true // the probe
		}
	}
	s.stats.BreakerShortCircuits++
	return false
}

// breakerReport feeds one ship outcome into peer's breaker: a success
// closes it (the standby then heals any gap through catch-up); a failure
// re-opens a half-open breaker immediately and opens a closed one after
// BreakerThreshold consecutive failures.
func (s *Shipper) breakerReport(peer clock.NodeID, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.breakers[peer]
	if b == nil {
		return
	}
	if ok {
		b.state = breakerClosed
		b.failures = 0
		return
	}
	b.failures++
	if b.state == breakerHalfOpen || b.failures >= s.opts.BreakerThreshold {
		if b.state != breakerOpen {
			s.stats.BreakerOpens++
		}
		b.state = breakerOpen
		b.openedAt = s.opts.Now()
	}
}

// BreakerStates reports each standby's breaker position ("closed", "open",
// "half-open") for the health surface.
func (s *Shipper) BreakerStates() map[clock.NodeID]string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[clock.NodeID]string, len(s.breakers))
	for peer, b := range s.breakers {
		out[peer] = b.state.String()
	}
	return out
}

// onRequest serves catch-up requests from the primary's log.
func (s *Shipper) onRequest(from clock.NodeID, payload interface{}) (interface{}, error) {
	req, ok := payload.(catchupRequest)
	if !ok {
		return nil, fmt.Errorf("replica: unknown request %T", payload)
	}
	recs := s.opts.Source(req.Unit, req.After)
	s.mu.Lock()
	s.stats.CatchupServed++
	s.mu.Unlock()
	return catchupResponse{Records: recs}, nil
}

// StandbyStats counts the standby side of WAL shipping.
type StandbyStats struct {
	BatchesReceived uint64
	RecordsReceived uint64
	Duplicates      uint64
	Gaps            uint64
	CatchupRounds   uint64
	CatchupRecords  uint64
}

// StandbyOptions configure a log-receiving standby.
type StandbyOptions struct {
	// Self is the standby's node id on the network.
	Self clock.NodeID
	// Net is the simulated network the standby receives on (nil for
	// transports that deliver by calling Receive directly, like HTTP).
	Net *netsim.Network
	// Backends hold the received log, one per serialization unit of the
	// primary. For a durable standby use WALs (with SyncAlways, an ack
	// means the batch survives the standby's own crash).
	Backends []storage.Backend
	// PersistEvery records the contiguous watermark through
	// storage.ReplicationMarker every N received batches (default 1; the
	// WAL's marker is a manifest install, so busy standbys raise this).
	PersistEvery int
	// AutoCatchUp pulls the missing tail from the shipping node as soon as
	// a gap is detected, inline on the delivery. Off by default so the
	// fault harness can script catch-up deterministically.
	AutoCatchUp bool
	// Timeout bounds the standby's own requests (default 500ms).
	Timeout time.Duration
}

// unitProgress tracks how much of one unit's append-LSN space the standby
// holds: the contiguous prefix plus the out-of-order set beyond it.
type unitProgress struct {
	contig  uint64
	pending map[uint64]bool
}

// markLocked records lsn as held and advances the contiguous watermark.
func (u *unitProgress) markLocked(lsn uint64) {
	if lsn <= u.contig {
		return
	}
	u.pending[lsn] = true
	for u.pending[u.contig+1] {
		delete(u.pending, u.contig+1)
		u.contig++
	}
}

// hasLocked reports whether lsn is already held.
func (u *unitProgress) hasLocked(lsn uint64) bool {
	return lsn <= u.contig || u.pending[lsn]
}

// Standby receives a primary's shipped log into per-unit backends. It applies
// nothing — it is a log copy, promoted by replaying the backends through
// lsdb.Recover (see Promote).
type Standby struct {
	opts StandbyOptions

	mu      sync.Mutex
	stopped bool
	units   []unitProgress
	batches uint64
	stats   StandbyStats
}

// NewStandby creates a standby over its unit backends. Existing backend
// content (a restarted standby re-opening its received log) is scanned to
// resume the per-unit progress, and the network handlers are registered.
func NewStandby(opts StandbyOptions) (*Standby, error) {
	if len(opts.Backends) == 0 {
		return nil, errors.New("replica: standby needs at least one unit backend")
	}
	if opts.PersistEvery <= 0 {
		opts.PersistEvery = 1
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 500 * time.Millisecond
	}
	sb := &Standby{opts: opts, units: make([]unitProgress, len(opts.Backends))}
	for i := range sb.units {
		sb.units[i].pending = map[uint64]bool{}
	}
	for i, b := range opts.Backends {
		u := &sb.units[i]
		if _, err := b.Replay(func(rec storage.WALRecord) error {
			if rec.Kind == storage.KindAppend {
				u.markLocked(rec.LSN)
			}
			return nil
		}); err != nil {
			return nil, fmt.Errorf("replica: scanning standby unit %d: %w", i, err)
		}
	}
	if opts.Net != nil {
		opts.Net.Register(opts.Self, sb.onMessage)
		opts.Net.RegisterRequestHandler(opts.Self, sb.onRequest)
	}
	return sb, nil
}

// ID returns the standby's node id.
func (sb *Standby) ID() clock.NodeID { return sb.opts.Self }

// Units returns how many unit logs the standby receives.
func (sb *Standby) Units() int { return len(sb.opts.Backends) }

// Backends exposes the received per-unit logs (promotion opens stores over
// them).
func (sb *Standby) Backends() []storage.Backend {
	return append([]storage.Backend(nil), sb.opts.Backends...)
}

// Watermark returns the contiguous replication watermark of one unit: every
// append with LSN at or below it has been received.
func (sb *Standby) Watermark(unit int) uint64 {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	if unit < 0 || unit >= len(sb.units) {
		return 0
	}
	return sb.units[unit].contig
}

// Stats returns a copy of the counters.
func (sb *Standby) Stats() StandbyStats {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	return sb.stats
}

// Stop makes the standby refuse further batches (promotion fences the old
// stream this way).
func (sb *Standby) Stop() {
	sb.mu.Lock()
	sb.stopped = true
	sb.mu.Unlock()
}

// Receive appends one batch to the unit's log, deduplicating records the
// standby already holds (catch-up tails overlap in-flight ships). It returns
// the unit's new contiguous watermark and whether a gap is open — some LSN
// below the batch's highest is still missing (lost or still in flight from
// another shard's commit).
func (sb *Standby) Receive(batch ShipBatch) (watermark uint64, gap bool, err error) {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	if sb.stopped {
		return 0, false, errors.New("replica: standby stopped")
	}
	if batch.Unit < 0 || batch.Unit >= len(sb.units) {
		return 0, false, fmt.Errorf("replica: unknown unit %d", batch.Unit)
	}
	u := &sb.units[batch.Unit]
	var fresh []lsdb.Record
	for _, rec := range batch.Records {
		if rec.Kind == storage.KindAppend && u.hasLocked(rec.LSN) {
			sb.stats.Duplicates++
			continue
		}
		fresh = append(fresh, rec)
	}
	if len(fresh) > 0 {
		// Durability before progress: the marks advance only for records
		// the backend accepted, so a failed append is indistinguishable
		// from a lost batch and heals the same way.
		if err := sb.opts.Backends[batch.Unit].AppendBatch(fresh); err != nil {
			return u.contig, len(u.pending) > 0, fmt.Errorf("replica: standby append: %w", err)
		}
		for _, rec := range fresh {
			if rec.Kind == storage.KindAppend {
				u.markLocked(rec.LSN)
			}
		}
	}
	sb.stats.BatchesReceived++
	sb.stats.RecordsReceived += uint64(len(fresh))
	gap = len(u.pending) > 0
	if gap {
		sb.stats.Gaps++
	}
	sb.batches++
	if sb.batches%uint64(sb.opts.PersistEvery) == 0 {
		if rm, ok := sb.opts.Backends[batch.Unit].(storage.ReplicationMarker); ok {
			_ = rm.SetReplicationWatermark(u.contig)
		}
	}
	return u.contig, gap, nil
}

// onMessage receives asynchronous ship batches.
func (sb *Standby) onMessage(from clock.NodeID, payload interface{}) {
	batch, ok := payload.(ShipBatch)
	if !ok {
		return
	}
	_, gap, _ := sb.Receive(batch)
	if gap && sb.opts.AutoCatchUp {
		_, _ = sb.CatchUp(batch.From, batch.Unit)
	}
}

// onRequest receives synchronous ship batches and serves catch-up requests
// from the standby's own log (a promoting peer unions the surviving tails
// this way).
func (sb *Standby) onRequest(from clock.NodeID, payload interface{}) (interface{}, error) {
	switch msg := payload.(type) {
	case ShipBatch:
		watermark, gap, err := sb.Receive(msg)
		if err != nil {
			return nil, err
		}
		if gap && sb.opts.AutoCatchUp {
			if _, err := sb.CatchUp(msg.From, msg.Unit); err == nil {
				watermark = sb.Watermark(msg.Unit)
			}
		}
		return shipAck{Unit: msg.Unit, Watermark: watermark}, nil
	case catchupRequest:
		return sb.serveCatchup(msg)
	default:
		return nil, fmt.Errorf("replica: unknown request %T", payload)
	}
}

// serveCatchup streams the standby's received log after an LSN.
func (sb *Standby) serveCatchup(req catchupRequest) (interface{}, error) {
	sb.mu.Lock()
	if req.Unit < 0 || req.Unit >= len(sb.opts.Backends) {
		sb.mu.Unlock()
		return nil, fmt.Errorf("replica: unknown unit %d", req.Unit)
	}
	backend := sb.opts.Backends[req.Unit]
	sb.mu.Unlock()
	recs, err := TailAfter(backend, req.After)
	if err != nil {
		return nil, err
	}
	return catchupResponse{Records: recs}, nil
}

// TailAfter collects a backend's records after an LSN: through the
// storage.Streamer fast path when available, otherwise by filtered replay.
func TailAfter(backend storage.Backend, after uint64) ([]lsdb.Record, error) {
	var recs []lsdb.Record
	collect := func(rec storage.WALRecord) error {
		recs = append(recs, rec)
		return nil
	}
	if st, ok := backend.(storage.Streamer); ok {
		if err := st.StreamAfter(after, collect); err != nil {
			return nil, err
		}
		return recs, nil
	}
	if _, err := backend.Replay(func(rec storage.WALRecord) error {
		if rec.Kind == storage.KindAppend && rec.LSN <= after {
			return nil
		}
		if rec.Kind == storage.KindSummary {
			return storage.ErrCompacted
		}
		return collect(rec)
	}); err != nil {
		return nil, err
	}
	return recs, nil
}

// CatchUp pulls the records of one unit after the standby's contiguous
// watermark from a peer — the primary (served from its store) or another
// standby (served from its received log) — and appends the fresh ones. It
// returns how many records the peer sent.
func (sb *Standby) CatchUp(from clock.NodeID, unit int) (int, error) {
	if sb.opts.Net == nil {
		return 0, errors.New("replica: standby has no network")
	}
	after := sb.Watermark(unit)
	resp, err := sb.opts.Net.Request(sb.opts.Self, from, catchupRequest{Unit: unit, After: after}, sb.opts.Timeout)
	if err != nil {
		return 0, err
	}
	cr, ok := resp.(catchupResponse)
	if !ok {
		return 0, fmt.Errorf("replica: unexpected catch-up response %T", resp)
	}
	sb.mu.Lock()
	sb.stats.CatchupRounds++
	sb.stats.CatchupRecords += uint64(len(cr.Records))
	sb.mu.Unlock()
	if len(cr.Records) == 0 {
		return 0, nil
	}
	if _, _, err := sb.Receive(ShipBatch{From: from, Unit: unit, Records: cr.Records}); err != nil {
		return len(cr.Records), err
	}
	return len(cr.Records), nil
}

// RecoverUnit replays one unit's received log into a live store — the replay
// half of promotion. The passed options are used as-is except for Backend.
func (sb *Standby) RecoverUnit(unit int, opts lsdb.Options, types ...*entity.Type) (*lsdb.DB, error) {
	if unit < 0 || unit >= len(sb.opts.Backends) {
		return nil, fmt.Errorf("replica: unknown unit %d", unit)
	}
	opts.Backend = sb.opts.Backends[unit]
	return lsdb.Recover(opts, types...)
}

// Promote turns the standby into a primary: it unions the log tails the
// surviving peers hold (per-write quorums can scatter acked batches across
// standbys; the union is what makes "a majority holds it" recoverable), stops
// receiving from the old stream, and replays every unit through lsdb.Recover.
// Unreachable peers are skipped — they are usually why promotion is
// happening. The returned stores resume the primary's LSN watermarks, so a
// shipper attached to them continues the stream.
func (sb *Standby) Promote(peers []clock.NodeID, opts lsdb.Options, types ...*entity.Type) ([]*lsdb.DB, error) {
	for _, p := range peers {
		if p == sb.opts.Self {
			continue
		}
		for unit := range sb.opts.Backends {
			_, _ = sb.CatchUp(p, unit) // best effort
		}
	}
	sb.Stop()
	dbs := make([]*lsdb.DB, len(sb.opts.Backends))
	for i := range dbs {
		db, err := sb.RecoverUnit(i, opts, types...)
		if err != nil {
			return nil, fmt.Errorf("replica: promoting unit %d: %w", i, err)
		}
		dbs[i] = db
	}
	return dbs, nil
}
