// WAL-shipped replication: the primary's durable log is the replication
// stream.
//
// The in-memory scheme in replica.go re-applies operation descriptors on
// every peer; this file implements the production shape the paper's section 2
// calls "active systems with asynchronous/synchronous commits to backups":
// the primary ships every record written to its storage.Backend — commit
// cycles (riding the group-commit cadence via lsdb.Options.CommitSink),
// obsolescence marks, compaction horizons — to standby replicas that append
// them, unapplied, into backends of their own. A standby is therefore a log
// copy, not a second database: promotion replays the received log through
// lsdb.Recover, which rebuilds stores, caches and watermarks exactly as a
// restart would, and the promoted node resumes as primary.
//
// Shipping is fanned out, not serial: the commit sink's capture phase (which
// runs under the store's shard lock) only snapshots the batch and enqueues it
// on one bounded lane per standby; per-standby goroutines do the actual
// transport work — including retries, jittered backoff and the circuit
// breaker — with no store lock held. Sync and quorum commits block on an ack
// barrier that releases at the slowest *needed* ack: quorum returns after the
// majority, so one slow or parked standby prices only its own lane, and a
// commit over N standbys costs one round trip, not N.
//
// Ack modes tune the durability/latency trade-off per cluster:
//
//   - AckAsync: the commit cycle returns as soon as the batch is handed to
//     the lanes; loss and partitions are healed by catch-up.
//   - AckSync: every standby must acknowledge the durable append before the
//     writers' commit returns ("synchronous commit to backup").
//   - AckQuorum: a majority of the cluster (standbys + primary) must hold the
//     batch before the commit returns.
//
// A standby tracks, per unit, the contiguous prefix of append LSNs it holds
// (plus the out-of-order set beyond it — commit cycles from independently
// committing shards ship concurrently, so arrival order is not LSN order).
// Anything missing is pulled by LSN with streaming catch-up: segment-sized
// chunks over repeated requests, each response bounded and resumable by the
// highest append LSN received, so a deep backlog never rides in one message.
// The contiguous watermark is durably recorded through
// storage.ReplicationMarker so a restarted standby knows how far its log
// reaches without replaying it.
package replica

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/entity"
	"repro/internal/lsdb"
	"repro/internal/netsim"
	"repro/internal/storage"
)

// AckMode selects when a shipped commit cycle is acknowledged to its writers.
type AckMode int

// Ack modes.
const (
	// AckAsync hands the batch to the transport and returns: maximum
	// throughput, and a primary crash can lose commits that were acked to
	// clients but not yet received by any standby.
	AckAsync AckMode = iota
	// AckSync returns only after every standby acknowledged the durable
	// append: an acked write survives the loss of all but one node.
	AckSync
	// AckQuorum returns after a majority of the cluster (standbys plus the
	// primary itself) holds the batch.
	AckQuorum
)

// String returns the flag spelling of the mode.
func (m AckMode) String() string {
	switch m {
	case AckSync:
		return "sync"
	case AckQuorum:
		return "quorum"
	default:
		return "async"
	}
}

// ParseAckMode maps the -ack flag vocabulary onto an AckMode.
func ParseAckMode(s string) (AckMode, error) {
	switch s {
	case "async", "":
		return AckAsync, nil
	case "sync":
		return AckSync, nil
	case "quorum":
		return AckQuorum, nil
	default:
		return AckAsync, fmt.Errorf("replica: unknown ack mode %q (want async, sync or quorum)", s)
	}
}

// ErrStandbyAcks is returned to writers when a synchronous ack mode could not
// gather enough standby acknowledgements. Like any post-commit failure it is
// indeterminate: the records are committed and durable on the primary; only
// the replication guarantee is in doubt.
var ErrStandbyAcks = errors.New("replica: insufficient standby acks")

// ShipBatch is the wire unit of WAL shipping: one commit cycle (or one
// history-rewrite mark, or a catch-up tail) of one serialization unit.
type ShipBatch struct {
	From    clock.NodeID
	Unit    int
	Records []lsdb.Record
}

// shipAck acknowledges a synchronous ShipBatch with the standby's new
// contiguous watermark for the unit.
type shipAck struct {
	Unit      int
	Watermark uint64
}

// catchupRequest asks a node for the records of one unit after an LSN.
// Limit bounds how many appended records the response may carry (the server
// clamps it to its own chunk size); 0 lets the server choose.
type catchupRequest struct {
	Unit  int
	After uint64
	Limit int
}

// catchupResponse carries one streaming catch-up chunk. More reports that
// the tail continues past the chunk: the puller advances its cursor to the
// chunk's highest append LSN and asks again.
type catchupResponse struct {
	Records []lsdb.Record
	More    bool
}

// Transport moves ship batches to a standby. The bundled NetTransport runs
// over netsim; cmd/soupsd provides an HTTP implementation for real processes.
type Transport interface {
	// Ship delivers batch to peer. When sync is true it must not return
	// success before the standby durably appended the batch; when false it
	// may return immediately (loss is the caller's problem, healed by
	// catch-up).
	Ship(peer clock.NodeID, batch ShipBatch, sync bool, timeout time.Duration) error
}

// NetTransport ships over a simulated network: synchronous batches as
// requests, asynchronous ones as sends (silently lossy, like a datagram).
type NetTransport struct {
	Net  *netsim.Network
	Self clock.NodeID
}

// Ship implements Transport.
func (t NetTransport) Ship(peer clock.NodeID, batch ShipBatch, sync bool, timeout time.Duration) error {
	if sync {
		resp, err := t.Net.Request(t.Self, peer, batch, timeout)
		if err != nil {
			return err
		}
		if _, ok := resp.(shipAck); !ok {
			return fmt.Errorf("replica: unexpected ship response %T", resp)
		}
		return nil
	}
	return t.Net.Send(t.Self, peer, batch)
}

// ShipStats counts the primary side of WAL shipping.
type ShipStats struct {
	BatchesShipped uint64
	RecordsShipped uint64
	SyncAcks       uint64
	ShipFailures   uint64
	CatchupServed  uint64
	// ShipRetries counts transient transport failures absorbed by the
	// in-lane retry loop (each retry that was attempted, successful or not).
	ShipRetries uint64
	// BreakerOpens counts closed→open transitions across all standbys.
	BreakerOpens uint64
	// BreakerShortCircuits counts ships skipped because the standby's
	// breaker was open — failures that cost nothing instead of a timeout.
	BreakerShortCircuits uint64
	// WindowOverflows counts ships refused because the standby's lane
	// already had Window batches in flight: the commit proceeds (the
	// overflow counts as that standby's failure, healed by catch-up)
	// instead of the shard stalling behind a slow standby.
	WindowOverflows uint64
}

// ShipperOptions configure the primary side of WAL shipping.
type ShipperOptions struct {
	// Self is the primary's node id on the transport.
	Self clock.NodeID
	// Standbys are the peers every batch ships to.
	Standbys []clock.NodeID
	// Mode selects the ack discipline.
	Mode AckMode
	// Timeout bounds each synchronous ship (default 500ms).
	Timeout time.Duration
	// Transport moves the batches. When nil and Net is set, a NetTransport
	// is used.
	Transport Transport
	// Source serves catch-up requests: up to limit records of one unit with
	// LSN > after, in log order (an lsdb.RecordsAfterN closure, or a
	// storage.Streamer read); limit <= 0 means unbounded. Nil disables
	// catch-up serving.
	Source func(unit int, after uint64, limit int) []lsdb.Record
	// Net, when set, registers Self on the simulated network (senders must
	// be registered) and, with Source, a catch-up request handler.
	Net *netsim.Network
	// RetryAttempts is how many extra tries a failed ship gets before its
	// error counts toward the ack verdict (default 2; negative disables):
	// one dropped packet must not fail a sync commit. Retries are bounded
	// and jittered; they absorb transient transport faults, not dead
	// standbys — those are the breaker's job. Retries run inside the
	// standby's lane, so their backoff delays only that standby.
	RetryAttempts int
	// RetryBackoff is the base delay between retries (default 5ms), doubled
	// per retry and jittered ±50% so retrying lanes do not convoy.
	RetryBackoff time.Duration
	// BreakerThreshold opens a standby's circuit breaker after this many
	// consecutive failed ships (default 3). While open, ships to that
	// standby are skipped outright — a persistently dead standby in sync
	// mode stops costing a timeout per commit cycle.
	BreakerThreshold int
	// BreakerCooldown is how long a breaker stays open before one probe
	// ship is let through half-open (default 2s). A successful probe closes
	// the breaker; the standby then heals the gap through catch-up.
	BreakerCooldown time.Duration
	// Window bounds each standby lane's in-flight batch queue (default
	// 128). The capture phase never blocks: a batch that does not fit
	// fails that standby's ship immediately (WindowOverflows) and the gap
	// heals through catch-up, exactly like a lossy transport.
	Window int
	// CatchupChunk caps how many appended records one catch-up response
	// carries (default 512). Pullers stream the tail chunk by chunk.
	CatchupChunk int
	// Now supplies time for breaker state transitions (default time.Now);
	// tests inject a fake clock to step through cooldowns deterministically.
	Now func() time.Time
}

// breakerState is a standby circuit breaker's position.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// breaker tracks one standby's failure streak. Guarded by Shipper.mu.
type breaker struct {
	state    breakerState
	failures int // consecutive failures while closed
	openedAt time.Time
}

// laneJob is one batch on a standby's shipping lane, with the ack barrier
// (nil in async mode) the lane reports its outcome to.
type laneJob struct {
	batch ShipBatch
	bar   *ackBarrier
	sync  bool
}

// ackBarrier gathers one commit cycle's per-standby ship outcomes and
// releases the waiting writers at the slowest *needed* ack: quorum releases
// after the majority, not after every standby, and a cycle whose success has
// become arithmetically impossible fails without waiting out the stragglers.
// Late reports after release are absorbed; they cannot change the verdict
// (acks only grow toward an already-satisfied need, and an impossibility
// release stays impossible).
type ackBarrier struct {
	need  int
	total int

	mu       sync.Mutex
	acks     int
	fails    int
	firstErr error
	released bool
	done     chan struct{}
}

func newAckBarrier(need, total int) *ackBarrier {
	b := &ackBarrier{need: need, total: total, done: make(chan struct{})}
	if need <= 0 {
		b.released = true
		close(b.done)
	}
	return b
}

// report feeds one standby's outcome in. Safe from concurrent lanes.
func (b *ackBarrier) report(ok bool, err error) {
	b.mu.Lock()
	if ok {
		b.acks++
	} else {
		b.fails++
		if b.firstErr == nil {
			b.firstErr = err
		}
	}
	release := !b.released &&
		(b.acks >= b.need || b.acks+(b.total-b.acks-b.fails) < b.need)
	if release {
		b.released = true
	}
	b.mu.Unlock()
	if release {
		close(b.done)
	}
}

// wait blocks until the barrier releases and returns the ack verdict. It is
// the commit sink's second phase: the store invokes it after the shard lock
// is released, so writers — not the shard — absorb the round trip.
func (b *ackBarrier) wait() error {
	<-b.done
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.acks >= b.need {
		return nil
	}
	if b.firstErr != nil {
		return fmt.Errorf("%w: %d/%d (%v)", ErrStandbyAcks, b.acks, b.need, b.firstErr)
	}
	return fmt.Errorf("%w: %d/%d", ErrStandbyAcks, b.acks, b.need)
}

// Shipper is the primary side of WAL shipping: its Sink closures attach to
// the units' stores as lsdb.Options.CommitSink. The capture phase (under the
// shard lock) snapshots the batch onto one bounded lane per standby; the
// lanes ship concurrently and the returned wait blocks the writers on the
// mode's ack barrier.
type Shipper struct {
	opts ShipperOptions

	mu       sync.Mutex
	idle     *sync.Cond // broadcast when pending drops to zero (Drain)
	stats    ShipStats
	breakers map[clock.NodeID]*breaker
	jitter   *rand.Rand // retry-backoff jitter; seeded, guarded by mu
	lanes    map[clock.NodeID]chan laneJob
	pending  int // lane jobs enqueued and not yet finished
	closed   bool

	quit chan struct{}
	wg   sync.WaitGroup
}

// NewShipper creates a shipper, starts its per-standby lanes and, on a
// simulated network, registers its catch-up handler.
func NewShipper(opts ShipperOptions) *Shipper {
	if opts.Timeout <= 0 {
		opts.Timeout = 500 * time.Millisecond
	}
	if opts.Transport == nil && opts.Net != nil {
		opts.Transport = NetTransport{Net: opts.Net, Self: opts.Self}
	}
	if opts.RetryAttempts < 0 {
		opts.RetryAttempts = 0
	} else if opts.RetryAttempts == 0 {
		opts.RetryAttempts = 2
	}
	if opts.RetryBackoff <= 0 {
		opts.RetryBackoff = 5 * time.Millisecond
	}
	if opts.BreakerThreshold <= 0 {
		opts.BreakerThreshold = 3
	}
	if opts.BreakerCooldown <= 0 {
		opts.BreakerCooldown = 2 * time.Second
	}
	if opts.Window <= 0 {
		opts.Window = 128
	}
	if opts.CatchupChunk <= 0 {
		opts.CatchupChunk = 512
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	s := &Shipper{
		opts:     opts,
		breakers: map[clock.NodeID]*breaker{},
		jitter:   rand.New(rand.NewSource(1)),
		lanes:    map[clock.NodeID]chan laneJob{},
		quit:     make(chan struct{}),
	}
	s.idle = sync.NewCond(&s.mu)
	for _, peer := range opts.Standbys {
		s.breakers[peer] = &breaker{}
		jobs := make(chan laneJob, opts.Window)
		s.lanes[peer] = jobs
		s.wg.Add(1)
		go s.runLane(peer, jobs)
	}
	if opts.Net != nil {
		opts.Net.Register(opts.Self, nil)
		if opts.Source != nil {
			opts.Net.RegisterRequestHandler(opts.Self, s.onRequest)
		}
	}
	return s
}

// Mode returns the configured ack mode.
func (s *Shipper) Mode() AckMode { return s.opts.Mode }

// Standbys returns the configured standby ids.
func (s *Shipper) Standbys() []clock.NodeID {
	return append([]clock.NodeID(nil), s.opts.Standbys...)
}

// Stats returns a copy of the counters.
func (s *Shipper) Stats() ShipStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Sink returns the commit sink for one unit's store. The returned closure is
// the capture phase of lsdb's two-phase sink contract: invoked under the
// store's shard lock with records that are already installed and durable
// locally, it must not block — it snapshots the batch onto the standby lanes
// and hands back the ack barrier's wait (nil in async mode), which the store
// runs after releasing the lock. Per-entity order is preserved because an
// entity commits under one shard lock and captures enqueue under one mutex,
// so every lane sees commits in the same global order.
func (s *Shipper) Sink(unit int) func([]lsdb.Record) func() error {
	return func(records []lsdb.Record) func() error { return s.capture(unit, records) }
}

// acksNeeded is how many standby acks the mode requires before a commit
// returns. Quorum counts the primary itself as one holder.
func (s *Shipper) acksNeeded() int {
	switch s.opts.Mode {
	case AckSync:
		return len(s.opts.Standbys)
	case AckQuorum:
		return (len(s.opts.Standbys)+1)/2 + 1 - 1
	default:
		return 0
	}
}

// capture is the under-the-lock phase: copy the batch, enqueue it on every
// standby's lane, return the barrier wait. It never blocks — a lane whose
// window is full takes an immediate failure for this cycle (counted in
// WindowOverflows, healed by catch-up) rather than stalling the shard.
func (s *Shipper) capture(unit int, records []lsdb.Record) func() error {
	if len(s.opts.Standbys) == 0 || s.opts.Transport == nil || len(records) == 0 {
		return nil
	}
	// The sink's slice is only valid for the duration of the capture, and
	// the lanes deliver after it returns: copy.
	recs := make([]lsdb.Record, len(records))
	copy(recs, records)
	job := laneJob{
		batch: ShipBatch{From: s.opts.Self, Unit: unit, Records: recs},
		sync:  s.opts.Mode != AckAsync,
	}
	if job.sync {
		job.bar = newAckBarrier(s.acksNeeded(), len(s.opts.Standbys))
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		if job.bar == nil {
			return nil
		}
		return func() error { return fmt.Errorf("%w: shipper closed", ErrStandbyAcks) }
	}
	s.stats.BatchesShipped++
	s.stats.RecordsShipped += uint64(len(recs))
	for _, peer := range s.opts.Standbys {
		select {
		case s.lanes[peer] <- job:
			s.pending++
		default:
			s.stats.WindowOverflows++
			s.stats.ShipFailures++
			if job.bar != nil {
				job.bar.report(false, fmt.Errorf("replica: standby %s ship window full", peer))
			}
		}
	}
	s.mu.Unlock()
	if job.bar == nil {
		return nil
	}
	return job.bar.wait
}

// runLane is one standby's shipping goroutine: batches go out in enqueue
// order, and retries, backoff and the breaker run here with no store lock
// held — a slow or parked standby delays only its own lane. On Close the
// lane fails whatever is still queued so no barrier waits forever.
func (s *Shipper) runLane(peer clock.NodeID, jobs chan laneJob) {
	defer s.wg.Done()
	for {
		select {
		case job := <-jobs:
			s.shipJob(peer, job)
		case <-s.quit:
			for {
				select {
				case job := <-jobs:
					s.finishJob(job, errors.New("replica: shipper closed"))
				default:
					return
				}
			}
		}
	}
}

// shipJob attempts one lane job: breaker check, transport with retries,
// breaker verdict, then the barrier report.
func (s *Shipper) shipJob(peer clock.NodeID, job laneJob) {
	var err error
	if !s.breakerAdmits(peer) {
		err = fmt.Errorf("replica: standby %s breaker open", peer)
	} else {
		err = s.shipWithRetry(peer, job.batch, job.sync)
		// Breaker state first, barrier second: when a sync writer wakes,
		// the breaker already reflects the ship that released it.
		s.breakerReport(peer, err == nil)
	}
	s.finishJob(job, err)
}

// finishJob reports a job's outcome to its barrier and retires it from the
// pending count (waking Drain at zero).
func (s *Shipper) finishJob(job laneJob, err error) {
	if job.bar != nil {
		job.bar.report(err == nil, err)
	}
	s.mu.Lock()
	if err == nil {
		if job.sync {
			s.stats.SyncAcks++
		}
	} else {
		s.stats.ShipFailures++
	}
	s.pending--
	if s.pending == 0 {
		s.idle.Broadcast()
	}
	s.mu.Unlock()
}

// Drain blocks until every enqueued ship has been attempted — all lanes
// idle, all windows empty. Writers never call it; tests and orderly
// shutdown do, to fence "everything captured so far has reached the
// transport" before inspecting standbys or rewiring the network.
func (s *Shipper) Drain() {
	s.mu.Lock()
	for s.pending > 0 {
		s.idle.Wait()
	}
	s.mu.Unlock()
}

// Close stops the lanes. Queued-but-unattempted batches fail their barriers
// (ErrStandbyAcks, like any lost ship) and heal through catch-up; captures
// after Close fail immediately in sync modes and are dropped in async.
func (s *Shipper) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	close(s.quit)
	s.wg.Wait()
}

// shipWithRetry ships to one standby, absorbing transient transport errors
// with up to RetryAttempts bounded, jittered, exponentially backed-off
// retries before the error reaches the ack verdict. It runs on the
// standby's lane goroutine: the backoff sleeps hold no lock and delay no
// other standby (and abort early on Close).
func (s *Shipper) shipWithRetry(peer clock.NodeID, batch ShipBatch, sync bool) error {
	err := s.opts.Transport.Ship(peer, batch, sync, s.opts.Timeout)
	backoff := s.opts.RetryBackoff
	for try := 0; err != nil && try < s.opts.RetryAttempts; try++ {
		s.mu.Lock()
		s.stats.ShipRetries++
		// ±50% jitter: lanes retrying the same blip should not re-collide
		// in lockstep.
		delay := backoff/2 + time.Duration(s.jitter.Int63n(int64(backoff)))
		s.mu.Unlock()
		select {
		case <-time.After(delay):
		case <-s.quit:
			return err
		}
		backoff *= 2
		err = s.opts.Transport.Ship(peer, batch, sync, s.opts.Timeout)
	}
	return err
}

// breakerAdmits decides whether a ship to peer may go out. Closed admits;
// open short-circuits until the cooldown elapses, then lets exactly one
// probe through half-open (concurrent ships keep short-circuiting while the
// probe is in flight).
func (s *Shipper) breakerAdmits(peer clock.NodeID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.breakers[peer]
	if b == nil {
		return true
	}
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if s.opts.Now().Sub(b.openedAt) >= s.opts.BreakerCooldown {
			b.state = breakerHalfOpen
			return true // the probe
		}
	}
	s.stats.BreakerShortCircuits++
	return false
}

// breakerReport feeds one ship outcome into peer's breaker: a success
// closes it (the standby then heals any gap through catch-up); a failure
// re-opens a half-open breaker immediately and opens a closed one after
// BreakerThreshold consecutive failures.
func (s *Shipper) breakerReport(peer clock.NodeID, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.breakers[peer]
	if b == nil {
		return
	}
	if ok {
		b.state = breakerClosed
		b.failures = 0
		return
	}
	b.failures++
	if b.state == breakerHalfOpen || b.failures >= s.opts.BreakerThreshold {
		if b.state != breakerOpen {
			s.stats.BreakerOpens++
		}
		b.state = breakerOpen
		b.openedAt = s.opts.Now()
	}
}

// BreakerStates reports each standby's breaker position ("closed", "open",
// "half-open") for the health surface.
func (s *Shipper) BreakerStates() map[clock.NodeID]string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[clock.NodeID]string, len(s.breakers))
	for peer, b := range s.breakers {
		out[peer] = b.state.String()
	}
	return out
}

// chunkTail cuts one streaming catch-up chunk out of a tail: at most limit
// appended records plus the history-rewrite marks interleaved among them.
// Only appends count toward the limit — marks carry no LSN and ride along —
// and a cut always lands just before the first append over the limit, so a
// chunk with more true always advances the puller's cursor (the streaming
// loop terminates). limit <= 0 means no bound.
func chunkTail(recs []lsdb.Record, limit int) (chunk []lsdb.Record, more bool) {
	if limit <= 0 {
		return recs, false
	}
	appends := 0
	for i, rec := range recs {
		if rec.Kind != storage.KindAppend {
			continue
		}
		appends++
		if appends > limit {
			return recs[:i:i], true
		}
	}
	return recs, false
}

// onRequest serves streaming catch-up requests from the primary's log.
func (s *Shipper) onRequest(from clock.NodeID, payload interface{}) (interface{}, error) {
	req, ok := payload.(catchupRequest)
	if !ok {
		return nil, fmt.Errorf("replica: unknown request %T", payload)
	}
	limit := req.Limit
	if limit <= 0 || limit > s.opts.CatchupChunk {
		limit = s.opts.CatchupChunk
	}
	// One extra record decides More without a second scan; chunkTail cuts
	// it back off.
	recs := s.opts.Source(req.Unit, req.After, limit+1)
	chunk, more := chunkTail(recs, limit)
	s.mu.Lock()
	s.stats.CatchupServed++
	s.mu.Unlock()
	return catchupResponse{Records: chunk, More: more}, nil
}

// StandbyStats counts the standby side of WAL shipping.
type StandbyStats struct {
	BatchesReceived uint64
	RecordsReceived uint64
	Duplicates      uint64
	// Gaps counts gap-opening events — transitions from a complete prefix
	// to a missing LSN — not batches received while a gap happened to be
	// open (that would conflate backlog depth with fault count).
	Gaps           uint64
	CatchupRounds  uint64
	CatchupRecords uint64
}

// StandbyOptions configure a log-receiving standby.
type StandbyOptions struct {
	// Self is the standby's node id on the network.
	Self clock.NodeID
	// Net is the simulated network the standby receives on (nil for
	// transports that deliver by calling Receive directly, like HTTP).
	Net *netsim.Network
	// Backends hold the received log, one per serialization unit of the
	// primary. For a durable standby use WALs (with SyncAlways, an ack
	// means the batch survives the standby's own crash).
	Backends []storage.Backend
	// PersistEvery records the contiguous watermark through
	// storage.ReplicationMarker every N batches *that unit* received
	// (default 1; the WAL's marker is a manifest install, so busy standbys
	// raise this). The cadence is per unit so a quiet unit's watermark
	// still persists on its own schedule.
	PersistEvery int
	// AutoCatchUp pulls the missing tail from the shipping node as soon as
	// a gap is detected, inline on the delivery. Off by default so the
	// fault harness can script catch-up deterministically.
	AutoCatchUp bool
	// CatchupChunk caps how many appended records one catch-up response
	// this standby serves may carry, and sizes the chunks its own CatchUp
	// requests ask for (default 512).
	CatchupChunk int
	// Timeout bounds the standby's own requests (default 500ms).
	Timeout time.Duration
}

// obsKey identifies an obsolescence mark for deduplication (marks carry no
// LSN of their own).
type obsKey struct {
	key   entity.Key
	txnID string
}

// unitProgress tracks how much of one unit's shipped stream the standby
// holds: the contiguous append-LSN prefix plus the out-of-order set beyond
// it, the history-rewrite marks already in the log, and the unit's own
// gap/persist bookkeeping.
type unitProgress struct {
	contig  uint64
	pending map[uint64]bool
	// gapOpen remembers whether the unit is currently missing an LSN below
	// its highest, so Gaps counts opening events, not affected batches.
	gapOpen bool
	// batches counts received batches for the PersistEvery cadence.
	batches uint64
	// obsSeen and compSeen dedup history-rewrite marks: catch-up rounds
	// re-send every mark after the cursor's position (marks carry no LSN
	// to filter by), and without dedup the received log would grow without
	// bound under repeated catch-up.
	obsSeen  map[obsKey]bool
	compSeen map[uint64]bool
}

// markLocked records lsn as held and advances the contiguous watermark.
func (u *unitProgress) markLocked(lsn uint64) {
	if lsn <= u.contig {
		return
	}
	u.pending[lsn] = true
	for u.pending[u.contig+1] {
		delete(u.pending, u.contig+1)
		u.contig++
	}
}

// hasLocked reports whether lsn is already held.
func (u *unitProgress) hasLocked(lsn uint64) bool {
	return lsn <= u.contig || u.pending[lsn]
}

// freshLocked reports whether the unit's log does not yet hold rec —
// appends by LSN, marks by identity.
func (u *unitProgress) freshLocked(rec lsdb.Record) bool {
	switch rec.Kind {
	case storage.KindAppend:
		return !u.hasLocked(rec.LSN)
	case storage.KindObsolete:
		return !u.obsSeen[obsKey{key: rec.Key, txnID: rec.TxnID}]
	case storage.KindCompact:
		return !u.compSeen[rec.Horizon]
	default:
		return true
	}
}

// noteLocked records that the unit's log now holds rec.
func (u *unitProgress) noteLocked(rec lsdb.Record) {
	switch rec.Kind {
	case storage.KindAppend:
		u.markLocked(rec.LSN)
	case storage.KindObsolete:
		u.obsSeen[obsKey{key: rec.Key, txnID: rec.TxnID}] = true
	case storage.KindCompact:
		u.compSeen[rec.Horizon] = true
	}
}

// Standby receives a primary's shipped log into per-unit backends. It applies
// nothing — it is a log copy, promoted by replaying the backends through
// lsdb.Recover (see Promote and PromoteStreaming).
type Standby struct {
	opts StandbyOptions

	mu      sync.Mutex
	stopped bool
	units   []unitProgress
	stats   StandbyStats
}

// NewStandby creates a standby over its unit backends. Existing backend
// content (a restarted standby re-opening its received log) is scanned to
// resume the per-unit progress — appends and marks alike, so catch-up after
// a restart still dedups — and the network handlers are registered.
func NewStandby(opts StandbyOptions) (*Standby, error) {
	if len(opts.Backends) == 0 {
		return nil, errors.New("replica: standby needs at least one unit backend")
	}
	if opts.PersistEvery <= 0 {
		opts.PersistEvery = 1
	}
	if opts.CatchupChunk <= 0 {
		opts.CatchupChunk = 512
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 500 * time.Millisecond
	}
	sb := &Standby{opts: opts, units: make([]unitProgress, len(opts.Backends))}
	for i := range sb.units {
		sb.units[i].pending = map[uint64]bool{}
		sb.units[i].obsSeen = map[obsKey]bool{}
		sb.units[i].compSeen = map[uint64]bool{}
	}
	for i, b := range opts.Backends {
		u := &sb.units[i]
		if _, err := b.Replay(func(rec storage.WALRecord) error {
			u.noteLocked(rec)
			return nil
		}); err != nil {
			return nil, fmt.Errorf("replica: scanning standby unit %d: %w", i, err)
		}
		if len(u.pending) > 0 {
			// The restarted log already has a hole: one open gap.
			u.gapOpen = true
			sb.stats.Gaps++
		}
	}
	if opts.Net != nil {
		opts.Net.Register(opts.Self, sb.onMessage)
		opts.Net.RegisterRequestHandler(opts.Self, sb.onRequest)
	}
	return sb, nil
}

// ID returns the standby's node id.
func (sb *Standby) ID() clock.NodeID { return sb.opts.Self }

// Units returns how many unit logs the standby receives.
func (sb *Standby) Units() int { return len(sb.opts.Backends) }

// Backends exposes the received per-unit logs (promotion opens stores over
// them).
func (sb *Standby) Backends() []storage.Backend {
	return append([]storage.Backend(nil), sb.opts.Backends...)
}

// Watermark returns the contiguous replication watermark of one unit: every
// append with LSN at or below it has been received.
func (sb *Standby) Watermark(unit int) uint64 {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	if unit < 0 || unit >= len(sb.units) {
		return 0
	}
	return sb.units[unit].contig
}

// Stats returns a copy of the counters.
func (sb *Standby) Stats() StandbyStats {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	return sb.stats
}

// Stop makes the standby refuse further batches (promotion fences the old
// stream this way).
func (sb *Standby) Stop() {
	sb.mu.Lock()
	sb.stopped = true
	sb.mu.Unlock()
}

// Receive appends one batch to the unit's log, deduplicating records the
// standby already holds — appends by LSN, history-rewrite marks by identity
// (catch-up tails overlap in-flight ships, and every catch-up chunk re-sends
// the marks after its cursor). It returns the unit's new contiguous
// watermark and whether a gap is open — some LSN below the batch's highest
// is still missing (lost or still in flight from another shard's commit).
func (sb *Standby) Receive(batch ShipBatch) (watermark uint64, gap bool, err error) {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	if sb.stopped {
		return 0, false, errors.New("replica: standby stopped")
	}
	if batch.Unit < 0 || batch.Unit >= len(sb.units) {
		return 0, false, fmt.Errorf("replica: unknown unit %d", batch.Unit)
	}
	u := &sb.units[batch.Unit]
	var fresh []lsdb.Record
	for _, rec := range batch.Records {
		if !u.freshLocked(rec) {
			sb.stats.Duplicates++
			continue
		}
		fresh = append(fresh, rec)
	}
	if len(fresh) > 0 {
		// Durability before progress: the marks advance only for records
		// the backend accepted, so a failed append is indistinguishable
		// from a lost batch and heals the same way.
		if err := sb.opts.Backends[batch.Unit].AppendBatch(fresh); err != nil {
			return u.contig, len(u.pending) > 0, fmt.Errorf("replica: standby append: %w", err)
		}
		for _, rec := range fresh {
			u.noteLocked(rec)
		}
	}
	sb.stats.BatchesReceived++
	sb.stats.RecordsReceived += uint64(len(fresh))
	gap = len(u.pending) > 0
	if gap && !u.gapOpen {
		sb.stats.Gaps++
	}
	u.gapOpen = gap
	u.batches++
	if u.batches%uint64(sb.opts.PersistEvery) == 0 {
		if rm, ok := sb.opts.Backends[batch.Unit].(storage.ReplicationMarker); ok {
			_ = rm.SetReplicationWatermark(u.contig)
		}
	}
	return u.contig, gap, nil
}

// onMessage receives asynchronous ship batches.
func (sb *Standby) onMessage(from clock.NodeID, payload interface{}) {
	batch, ok := payload.(ShipBatch)
	if !ok {
		return
	}
	_, gap, _ := sb.Receive(batch)
	if gap && sb.opts.AutoCatchUp {
		_, _ = sb.CatchUp(batch.From, batch.Unit)
	}
}

// onRequest receives synchronous ship batches and serves catch-up requests
// from the standby's own log (a promoting peer unions the surviving tails
// this way).
func (sb *Standby) onRequest(from clock.NodeID, payload interface{}) (interface{}, error) {
	switch msg := payload.(type) {
	case ShipBatch:
		watermark, gap, err := sb.Receive(msg)
		if err != nil {
			return nil, err
		}
		if gap && sb.opts.AutoCatchUp {
			if _, err := sb.CatchUp(msg.From, msg.Unit); err == nil {
				watermark = sb.Watermark(msg.Unit)
			}
		}
		return shipAck{Unit: msg.Unit, Watermark: watermark}, nil
	case catchupRequest:
		return sb.serveCatchup(msg)
	default:
		return nil, fmt.Errorf("replica: unknown request %T", payload)
	}
}

// serveCatchup streams one chunk of the standby's received log after an LSN.
func (sb *Standby) serveCatchup(req catchupRequest) (interface{}, error) {
	sb.mu.Lock()
	if req.Unit < 0 || req.Unit >= len(sb.opts.Backends) {
		sb.mu.Unlock()
		return nil, fmt.Errorf("replica: unknown unit %d", req.Unit)
	}
	backend := sb.opts.Backends[req.Unit]
	sb.mu.Unlock()
	recs, err := TailAfter(backend, req.After)
	if err != nil {
		return nil, err
	}
	limit := req.Limit
	if limit <= 0 || limit > sb.opts.CatchupChunk {
		limit = sb.opts.CatchupChunk
	}
	chunk, more := chunkTail(recs, limit)
	return catchupResponse{Records: chunk, More: more}, nil
}

// ServeCatchup returns one streaming chunk of the standby's received log —
// the transport-agnostic body of the catch-up handler, which cmd/soupsd
// exposes over HTTP for operator-driven healing and promotion unions.
func (sb *Standby) ServeCatchup(unit int, after uint64, limit int) ([]lsdb.Record, bool, error) {
	resp, err := sb.serveCatchup(catchupRequest{Unit: unit, After: after, Limit: limit})
	if err != nil {
		return nil, false, err
	}
	cr := resp.(catchupResponse)
	return cr.Records, cr.More, nil
}

// TailAfter collects a backend's records after an LSN: through the
// storage.Streamer fast path when available, otherwise by filtered replay.
func TailAfter(backend storage.Backend, after uint64) ([]lsdb.Record, error) {
	var recs []lsdb.Record
	collect := func(rec storage.WALRecord) error {
		recs = append(recs, rec)
		return nil
	}
	if st, ok := backend.(storage.Streamer); ok {
		if err := st.StreamAfter(after, collect); err != nil {
			return nil, err
		}
		return recs, nil
	}
	if _, err := backend.Replay(func(rec storage.WALRecord) error {
		if rec.Kind == storage.KindAppend && rec.LSN <= after {
			return nil
		}
		if rec.Kind == storage.KindSummary {
			return storage.ErrCompacted
		}
		return collect(rec)
	}); err != nil {
		return nil, err
	}
	return recs, nil
}

// fetchTail pulls one catch-up chunk of unit from a peer: the records after
// the cursor, and whether the peer's tail continues past them.
func (sb *Standby) fetchTail(from clock.NodeID, unit int, after uint64) ([]lsdb.Record, bool, error) {
	req := catchupRequest{Unit: unit, After: after, Limit: sb.opts.CatchupChunk}
	resp, err := sb.opts.Net.Request(sb.opts.Self, from, req, sb.opts.Timeout)
	if err != nil {
		return nil, false, err
	}
	cr, ok := resp.(catchupResponse)
	if !ok {
		return nil, false, fmt.Errorf("replica: unexpected catch-up response %T", resp)
	}
	sb.mu.Lock()
	sb.stats.CatchupRounds++
	sb.stats.CatchupRecords += uint64(len(cr.Records))
	sb.mu.Unlock()
	return cr.Records, cr.More, nil
}

// advanceCursor returns the streaming cursor after one chunk: the highest
// append LSN received, and whether it moved (a chunk that advances nothing
// ends the stream — the server's cut rule makes that equivalent to More
// being false).
func advanceCursor(cursor uint64, recs []lsdb.Record) (uint64, bool) {
	advanced := false
	for _, rec := range recs {
		if rec.Kind == storage.KindAppend && rec.LSN > cursor {
			cursor, advanced = rec.LSN, true
		}
	}
	return cursor, advanced
}

// CatchUp streams the records of one unit after the standby's contiguous
// watermark from a peer — the primary (served from its store) or another
// standby (served from its received log) — in bounded chunks over repeated
// requests, appending the fresh ones as they arrive. The stream is resumable
// by construction: each round asks after the highest append LSN received, so
// an interrupted catch-up continues where it left off on the next call. It
// returns how many records the peer sent.
func (sb *Standby) CatchUp(from clock.NodeID, unit int) (int, error) {
	if sb.opts.Net == nil {
		return 0, errors.New("replica: standby has no network")
	}
	total := 0
	cursor := sb.Watermark(unit)
	for {
		recs, more, err := sb.fetchTail(from, unit, cursor)
		if err != nil {
			return total, err
		}
		if len(recs) == 0 {
			return total, nil
		}
		total += len(recs)
		if _, _, err := sb.Receive(ShipBatch{From: from, Unit: unit, Records: recs}); err != nil {
			return total, err
		}
		var advanced bool
		cursor, advanced = advanceCursor(cursor, recs)
		if !more || !advanced {
			return total, nil
		}
	}
}

// RecoverUnit replays one unit's received log into a live store — the replay
// half of promotion. The passed options are used as-is except for Backend.
func (sb *Standby) RecoverUnit(unit int, opts lsdb.Options, types ...*entity.Type) (*lsdb.DB, error) {
	if unit < 0 || unit >= len(sb.opts.Backends) {
		return nil, fmt.Errorf("replica: unknown unit %d", unit)
	}
	opts.Backend = sb.opts.Backends[unit]
	return lsdb.Recover(opts, types...)
}

// Promotion is an in-flight streaming promotion: the stores are live and
// serving reads from the locally-received log while the union of the peers'
// tails streams in chunk by chunk in the background. Writes must wait for
// Wait — the union installs records at their original LSNs, and a write
// accepted mid-union could collide with one still in flight.
type Promotion struct {
	sb   *Standby
	dbs  []*lsdb.DB
	done chan struct{}

	mu     sync.Mutex
	err    error
	pulled uint64
}

// Stores returns the promoted units' live stores. They serve reads
// immediately; anything the union has already ingested is visible.
func (p *Promotion) Stores() []*lsdb.DB {
	return append([]*lsdb.DB(nil), p.dbs...)
}

// Wait blocks until the catch-up union has finished (unreachable peers are
// skipped — they are usually why promotion is happening) and returns the
// first local ingest error, if any. After a nil Wait the stores are ready
// for writes.
func (p *Promotion) Wait() error {
	<-p.done
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}

// Done reports, without blocking, whether the union has finished.
func (p *Promotion) Done() bool {
	select {
	case <-p.done:
		return true
	default:
		return false
	}
}

// Pulled returns how many union records have been ingested so far. It moves
// while the union is in flight; reads-during-catch-up tests watch it.
func (p *Promotion) Pulled() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.pulled
}

// PromoteStreaming turns the standby into a primary without waiting for its
// peers: it fences the old stream, replays every locally-held unit log
// through lsdb.Recover — at which point the returned Promotion's stores
// serve reads — and streams the union of the surviving peers' log tails in
// the background (per-write quorums can scatter acked batches across
// standbys; the union is what makes "a majority holds it" recoverable).
// Chunks are pulled with the same bounded streaming protocol CatchUp uses
// and installed through lsdb.IngestShipped, which preserves LSNs and keeps
// the local log a complete copy. Writes wait for Promotion.Wait.
func (sb *Standby) PromoteStreaming(peers []clock.NodeID, opts lsdb.Options, types ...*entity.Type) (*Promotion, error) {
	sb.Stop()
	dbs := make([]*lsdb.DB, len(sb.opts.Backends))
	for i := range dbs {
		db, err := sb.RecoverUnit(i, opts, types...)
		if err != nil {
			return nil, fmt.Errorf("replica: promoting unit %d: %w", i, err)
		}
		dbs[i] = db
	}
	p := &Promotion{sb: sb, dbs: dbs, done: make(chan struct{})}
	go p.union(peers)
	return p, nil
}

// union streams every peer's tail of every unit into the promoted stores.
func (p *Promotion) union(peers []clock.NodeID) {
	defer close(p.done)
	if p.sb.opts.Net == nil {
		return
	}
	for _, peer := range peers {
		if peer == p.sb.opts.Self {
			continue
		}
		for unit := range p.sb.opts.Backends {
			if err := p.unionUnit(peer, unit); err != nil {
				p.mu.Lock()
				if p.err == nil {
					p.err = err
				}
				p.mu.Unlock()
			}
		}
	}
}

// unionUnit streams one peer's tail of one unit. Network errors end the
// stream silently (best effort, like Promote has always been); a local
// ingest failure is reported through Wait.
func (p *Promotion) unionUnit(peer clock.NodeID, unit int) error {
	sb := p.sb
	cursor := sb.Watermark(unit)
	for {
		recs, more, err := sb.fetchTail(peer, unit, cursor)
		if err != nil {
			return nil // unreachable peer: skip
		}
		if len(recs) == 0 {
			return nil
		}
		fresh := sb.claimFresh(unit, recs)
		if len(fresh) > 0 {
			if err := p.dbs[unit].IngestShipped(fresh); err != nil {
				return fmt.Errorf("replica: union unit %d from %s: %w", unit, peer, err)
			}
			p.mu.Lock()
			p.pulled += uint64(len(fresh))
			p.mu.Unlock()
		}
		var advanced bool
		cursor, advanced = advanceCursor(cursor, recs)
		if !more || !advanced {
			return nil
		}
	}
}

// claimFresh filters a fetched chunk down to the records this unit's log
// does not yet hold and marks them held — the promotion's equivalent of
// Receive's dedup (Receive itself is fenced by Stop; the union installs
// through the live store instead).
func (sb *Standby) claimFresh(unit int, recs []lsdb.Record) []lsdb.Record {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	u := &sb.units[unit]
	var fresh []lsdb.Record
	for _, rec := range recs {
		if !u.freshLocked(rec) {
			continue
		}
		u.noteLocked(rec)
		fresh = append(fresh, rec)
	}
	return fresh
}

// Promote turns the standby into a primary and blocks until the union of the
// surviving peers' log tails is complete — PromoteStreaming followed by
// Wait. Unreachable peers are skipped. The returned stores resume the
// primary's LSN watermarks, so a shipper attached to them continues the
// stream.
func (sb *Standby) Promote(peers []clock.NodeID, opts lsdb.Options, types ...*entity.Type) ([]*lsdb.DB, error) {
	p, err := sb.PromoteStreaming(peers, opts, types...)
	if err != nil {
		return nil, err
	}
	if err := p.Wait(); err != nil {
		return nil, err
	}
	return p.Stores(), nil
}
