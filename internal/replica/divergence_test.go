package replica

import (
	"errors"
	"testing"
	"time"

	"repro/internal/apology"
	"repro/internal/clock"
	"repro/internal/entity"
	"repro/internal/netsim"
)

// Divergence under partition, reconciled with apologies (principles 2.1 and
// 2.9): both sides of a partition keep promising from the same stock on
// local knowledge; the heal makes the over-promise visible; the resolution
// is not a rollback but first-come-first-served honouring, one broken
// promise, compensation, and withdrawal of the losing tentative record on
// every replica.
func TestDivergentTentativePromisesApologizedOnHeal(t *testing.T) {
	c := newCluster(t, 2, Eventual, netsim.Config{})
	r0, r1 := rep(t, c, 0), rep(t, c, 1)
	stock := acct("book-stock")

	if _, err := r0.Write(stock, []entity.Op{entity.Set("balance", 5)}, "seed"); err != nil {
		t.Fatal(err)
	}
	waitConverged(t, c, stock, time.Second)

	c.Network().Partition([]clock.NodeID{r0.ID()}, []clock.NodeID{r1.ID()})

	// A deterministic promise clock so first-come-first-served is exact.
	now := time.Unix(1000, 0)
	tick := func() time.Time { now = now.Add(time.Second); return now }
	withdraw := func(p apology.Promise, reason string) {
		// The infrastructure's compensation hook: the broken promise's
		// tentative record is withdrawn wherever it replicated.
		for _, r := range []*Replica{r0, r1} {
			if err := r.DB().MarkObsolete(p.Entity, p.TxnID); err != nil {
				t.Errorf("withdrawing %s on %s: %v", p.TxnID, r.ID(), err)
			}
		}
	}
	ledger := apology.NewLedger(apology.Options{Clock: tick, OnBreak: withdraw})

	// Each side promises from the stock it can see. Individually both fit
	// (5-4 and 5-3); together they overbook by 2 — the classic bookstore of
	// principle 2.9.
	if _, err := r0.WriteTentative(stock, []entity.Op{entity.Delta("balance", -4)}, "promise-r0"); err != nil {
		t.Fatal(err)
	}
	p0 := ledger.Make(apology.Promise{Kind: "reservation", Entity: stock, TxnID: "promise-r0", Partner: "alice", Quantity: 4})
	if _, err := r1.WriteTentative(stock, []entity.Op{entity.Delta("balance", -3)}, "promise-r1"); err != nil {
		t.Fatal(err)
	}
	ledger.Make(apology.Promise{Kind: "reservation", Entity: stock, TxnID: "promise-r1", Partner: "bob", Quantity: 3})

	st0, _ := r0.ReadLocal(stock)
	st1, _ := r1.ReadLocal(stock)
	if st0.Float("balance") != 1 || st1.Float("balance") != 2 {
		t.Fatalf("partitioned local views = %v / %v, want 1 / 2", st0.Float("balance"), st1.Float("balance"))
	}

	// Heal. Anti-entropy merges both histories and the divergence
	// materializes: the shared stock has been promised below zero.
	c.Network().Heal()
	c.SyncRound()
	waitConverged(t, c, stock, time.Second)
	st0, _ = r0.ReadLocal(stock)
	if st0.Float("balance") != -2 {
		t.Fatalf("merged balance = %v, want -2 (both promises applied)", st0.Float("balance"))
	}

	// Reconcile: honour promises first-come-first-served against the real
	// stock; the one that does not fit is broken with compensation.
	kept, apologies, err := ledger.ResolveOverbooking(stock, 5, "overbooked during partition", "10% discount voucher")
	if err != nil {
		t.Fatal(err)
	}
	if kept != 1 || len(apologies) != 1 {
		t.Fatalf("kept %d promises, %d apologies; want 1 and 1", kept, len(apologies))
	}
	a := apologies[0]
	if a.Partner != "bob" || a.Compensation != "10% discount voucher" {
		t.Fatalf("apology = %+v, want bob compensated (alice promised first)", a)
	}
	if got, _ := ledger.Get(p0.ID); got.Status != apology.Kept {
		t.Fatalf("alice's promise = %s, want kept", got.Status)
	}

	// The withdrawal converges everywhere: stock is non-negative again and
	// identical on both replicas.
	c.SyncRound()
	waitConverged(t, c, stock, time.Second)
	for _, r := range []*Replica{r0, r1} {
		st, err := r.ReadLocal(stock)
		if err != nil {
			t.Fatal(err)
		}
		if st.Float("balance") != 1 {
			t.Fatalf("%s balance after apology = %v, want 1 (5 - kept 4)", r.ID(), st.Float("balance"))
		}
	}
	if rate := ledger.ApologyRate(); rate != 0.5 {
		t.Fatalf("apology rate = %v, want 0.5", rate)
	}
}

// The promise limit is the up-front guardrail on the same machinery: once an
// entity carries its cap of pending promises, further ones are refused
// rather than becoming future apologies — even when replicas would accept
// the tentative write itself.
func TestPromiseLimitBoundsDivergenceExposure(t *testing.T) {
	c := newCluster(t, 2, Eventual, netsim.Config{})
	r0 := rep(t, c, 0)
	stock := acct("limited-stock")
	if _, err := r0.Write(stock, []entity.Op{entity.Set("balance", 100)}, "seed"); err != nil {
		t.Fatal(err)
	}
	ledger := apology.NewLedger(apology.Options{MaxPendingPerEntity: 2})
	for i := 0; i < 2; i++ {
		if _, err := ledger.MakeChecked(apology.Promise{Entity: stock, Quantity: 1}); err != nil {
			t.Fatalf("promise %d refused below the limit: %v", i, err)
		}
	}
	if _, err := ledger.MakeChecked(apology.Promise{Entity: stock, Quantity: 1}); !errors.Is(err, apology.ErrPromiseLimit) {
		t.Fatalf("err = %v, want ErrPromiseLimit", err)
	}
	// Settling one frees capacity for the next promise.
	pending := ledger.Pending()
	if err := ledger.Keep(pending[0].ID); err != nil {
		t.Fatal(err)
	}
	if _, err := ledger.MakeChecked(apology.Promise{Entity: stock, Quantity: 1}); err != nil {
		t.Fatalf("promise refused after capacity freed: %v", err)
	}
}
