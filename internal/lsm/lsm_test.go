package lsm

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/clock"
	"repro/internal/entity"
	"repro/internal/storage"
)

func testKey(i int) entity.Key {
	return entity.Key{Type: "Account", ID: fmt.Sprintf("a%03d", i)}
}

// summaryRec builds a settled-summary record: a frozen state carrying one
// balance field, with the given horizon.
func summaryRec(key entity.Key, horizon uint64, balance float64) storage.WALRecord {
	st := entity.NewState(key)
	st.Fields = entity.Fields{"balance": balance}
	st.Freeze()
	return storage.WALRecord{Kind: storage.KindSummary, Key: key, Horizon: horizon, Summary: st}
}

func detailRec(key entity.Key, lsn uint64, tentative, obsolete bool) storage.WALRecord {
	return storage.WALRecord{
		LSN:       lsn,
		Key:       key,
		Ops:       []entity.Op{entity.Delta("balance", float64(lsn))},
		Stamp:     clock.Timestamp{WallNanos: int64(lsn), Node: "t"},
		Origin:    "t",
		TxnID:     fmt.Sprintf("t%d", lsn),
		Tentative: tentative,
		Obsolete:  obsolete,
	}
}

func openTestStore(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	wal, err := storage.OpenWAL(storage.WALOptions{Dir: dir, SegmentBytes: 2048, Sync: storage.SyncOS})
	if err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	if opts.Dir == "" {
		opts.Dir = filepath.Join(dir, "sst")
	}
	s, err := Open(wal, opts)
	if err != nil {
		t.Fatalf("lsm.Open: %v", err)
	}
	return s
}

// TestTableRoundTrip writes one table with enough keys to exercise the sparse
// index, reopens it, and checks lookup, replay and scan agree with the input.
func TestTableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := newTableWriter(dir, tableName(1))
	if err != nil {
		t.Fatal(err)
	}
	const keys = 40 // > 2 sparse runs at sparseEvery=16
	details := 0
	for i := 0; i < keys; i++ {
		k := testKey(i)
		if err := w.add(&[]storage.WALRecord{summaryRec(k, uint64(10*i+1), float64(i))}[0]); err != nil {
			t.Fatal(err)
		}
		for j := 0; j < i%3; j++ {
			rec := detailRec(k, uint64(10*i+2+j), j == 0, false)
			if err := w.add(&rec); err != nil {
				t.Fatal(err)
			}
			details++
		}
	}
	meta, err := w.finish(nil)
	if err != nil {
		t.Fatal(err)
	}
	meta.Level, meta.Seq = 0, 1
	if meta.Keys != keys {
		t.Fatalf("meta.Keys = %d, want %d", meta.Keys, keys)
	}
	tb, err := openTable(dir, meta)
	if err != nil {
		t.Fatal(err)
	}
	defer tb.close()

	for i := 0; i < keys; i++ {
		rec, err := tb.lookupSummary(testKey(i))
		if err != nil {
			t.Fatalf("lookupSummary(%d): %v", i, err)
		}
		if rec.Kind != storage.KindSummary || rec.Horizon != uint64(10*i+1) {
			t.Fatalf("key %d: summary %+v", i, rec)
		}
		if got := rec.Summary.Fields["balance"]; got != float64(i) {
			t.Fatalf("key %d: balance %v, want %d", i, got, i)
		}
	}
	if _, err := tb.lookupSummary(entity.Key{Type: "Account", ID: "missing"}); err != errNotFound {
		t.Fatalf("absent key: %v, want errNotFound", err)
	}

	var pointers, replayDetails int
	if err := tb.replay(func(rec storage.WALRecord) error {
		switch rec.Kind {
		case storage.KindSummary:
			if rec.Summary != nil {
				t.Fatal("replay must emit light summary pointers, not payloads")
			}
			if rec.Horizon == 0 {
				t.Fatal("summary pointer lost its horizon")
			}
			pointers++
		case storage.KindAppend:
			if len(rec.Ops) == 0 {
				t.Fatal("detail record lost its ops")
			}
			replayDetails++
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if pointers != keys || replayDetails != details {
		t.Fatalf("replay saw %d pointers / %d details, want %d / %d", pointers, replayDetails, keys, details)
	}

	scanned := 0
	if err := tb.scan(func(indexEntry, storage.WALRecord) error { scanned++; return nil }); err != nil {
		t.Fatal(err)
	}
	if scanned != keys+details {
		t.Fatalf("scan saw %d records, want %d", scanned, keys+details)
	}
}

// TestTableWriterRejectsDisorder pins the writer's input contract: keys in
// composite order, each key's summary first.
func TestTableWriterRejectsDisorder(t *testing.T) {
	dir := t.TempDir()
	w, err := newTableWriter(dir, tableName(1))
	if err != nil {
		t.Fatal(err)
	}
	defer w.abort()
	b := detailRec(testKey(2), 1, false, false)
	if err := w.add(&b); err != nil {
		t.Fatal(err)
	}
	a := detailRec(testKey(1), 2, false, false)
	if err := w.add(&a); err == nil {
		t.Fatal("out-of-order key accepted")
	}
	w2, err := newTableWriter(dir, tableName(2))
	if err != nil {
		t.Fatal(err)
	}
	defer w2.abort()
	d := detailRec(testKey(1), 1, false, false)
	if err := w2.add(&d); err != nil {
		t.Fatal(err)
	}
	s := summaryRec(testKey(1), 1, 0)
	if err := w2.add(&s); err == nil {
		t.Fatal("summary after detail accepted")
	}
}

// TestBloomFilter: no false negatives ever, sidecar round-trips, and the
// false-positive rate stays in the neighbourhood the sizing promises.
func TestBloomFilter(t *testing.T) {
	const n = 500
	bl := newBloom(n)
	for i := 0; i < n; i++ {
		bl.add(compositeKey(testKey(i)))
	}
	for i := 0; i < n; i++ {
		if !bl.mayContain(compositeKey(testKey(i))) {
			t.Fatalf("false negative for key %d", i)
		}
	}
	path := filepath.Join(t.TempDir(), "x.blm")
	if err := os.WriteFile(path, bl.marshal(), 0o644); err != nil {
		t.Fatal(err)
	}
	bl2, err := loadBloom(path)
	if err != nil {
		t.Fatal(err)
	}
	fp := 0
	for i := 0; i < n; i++ {
		if !bl2.mayContain(compositeKey(testKey(i))) {
			t.Fatalf("sidecar round trip lost key %d", i)
		}
		if bl2.mayContain(compositeKey(testKey(i + 10000))) {
			fp++
		}
	}
	// 10 bits/key targets ~1%; 10% is a loose ceiling that still catches a
	// broken hash mix.
	if fp > n/10 {
		t.Fatalf("%d/%d false positives", fp, n)
	}
}

// TestOrphanSweep: open removes temp files, quarantines unmanifested tables
// and deletes their sidecars, and never reuses an orphan's sequence number.
func TestOrphanSweep(t *testing.T) {
	dir := t.TempDir()
	sstDir := filepath.Join(dir, "sst")
	if err := os.MkdirAll(sstDir, 0o755); err != nil {
		t.Fatal(err)
	}
	orphan := filepath.Join(sstDir, tableName(9))
	for _, f := range []string{orphan, filepath.Join(sstDir, "sst-0000000009.blm"), filepath.Join(sstDir, "sst-0000000003.sst.tmp")} {
		if err := os.WriteFile(f, []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	s := openTestStore(t, dir, Options{Dir: sstDir})
	defer s.Close()
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatalf("orphan table not quarantined: %v", err)
	}
	if _, err := os.Stat(orphan + ".orphaned"); err != nil {
		t.Fatalf("quarantined copy missing: %v", err)
	}
	if m, _ := filepath.Glob(filepath.Join(sstDir, "*.tmp")); len(m) != 0 {
		t.Fatalf("temp files survived open: %v", m)
	}
	if m, _ := filepath.Glob(filepath.Join(sstDir, "*.blm")); len(m) != 0 {
		t.Fatalf("unmanifested sidecars survived open: %v", m)
	}
	// The next flush must land past the orphan's sequence.
	if err := s.FlushTable([]storage.WALRecord{summaryRec(testKey(1), 1, 1)}, 1, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(sstDir, tableName(10))); err != nil {
		t.Fatalf("flush after orphan sweep did not skip its sequence: %v", err)
	}
}

// TestFlushLookupPruneRecover is the single-table lifecycle: records land in
// the WAL, a flush makes them table-durable and prunes the covered segments,
// lookups come back bloom-guided, and a reopened store replays pointers plus
// nothing from the emptied WAL.
func TestFlushLookupPruneRecover(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir, Options{})
	const keys = 8
	var lsn uint64
	var entries []storage.WALRecord
	for i := 0; i < keys; i++ {
		var batch []storage.WALRecord
		for j := 0; j < 4; j++ {
			lsn++
			batch = append(batch, detailRec(testKey(i), lsn, false, false))
		}
		if err := s.AppendBatch(batch); err != nil {
			t.Fatal(err)
		}
		entries = append(entries, summaryRec(testKey(i), lsn, float64(i)))
	}
	boundary, err := s.SealWAL()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.FlushTable(entries, lsn, boundary); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < keys; i++ {
		rec, err := s.LookupSummary(testKey(i))
		if err != nil || rec == nil {
			t.Fatalf("LookupSummary(%d): %v, %v", i, rec, err)
		}
		if rec.Horizon == 0 || rec.Summary.Fields["balance"] != float64(i) {
			t.Fatalf("key %d: %+v", i, rec)
		}
	}
	if rec, err := s.LookupSummary(entity.Key{Type: "Account", ID: "nope"}); rec != nil || err != nil {
		t.Fatalf("absent key: %v, %v", rec, err)
	}
	st := s.TieredStats()
	if st.Tables != 1 || st.L0Tables != 1 || st.TableKeys != keys || st.Flushes != 1 {
		t.Fatalf("stats %+v", st)
	}
	if st.BloomHits == 0 {
		t.Fatalf("lookups bypassed the bloom accounting: %+v", st)
	}

	// The flush pruned the sealed segments: replication cuts below the table
	// watermark are gone.
	if err := s.StreamAfter(0, func(storage.WALRecord) error { return nil }); !errors.Is(err, storage.ErrCompacted) {
		t.Fatalf("StreamAfter over pruned history = %v, want ErrCompacted", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openTestStore(t, dir, Options{})
	defer s2.Close()
	pointers := 0
	watermark, err := s2.Replay(func(rec storage.WALRecord) error {
		if rec.Kind == storage.KindSummary && rec.Summary == nil {
			pointers++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if pointers != keys {
		t.Fatalf("replay after reopen: %d pointers, want %d", pointers, keys)
	}
	if watermark < lsn {
		t.Fatalf("replay watermark %d below flushed history %d", watermark, lsn)
	}
}

// TestCompactionMergeRules pins the three merge rules on overlapping level-0
// tables: newest summary wins, detail at or below its horizon is dropped,
// obsolete detail is eliminated, and duplicate LSNs collapse to one copy.
func TestCompactionMergeRules(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir, Options{CompactAfter: 100}) // no auto trigger
	defer s.Close()
	k := testKey(1)
	old := []storage.WALRecord{
		summaryRec(k, 10, 10),
		detailRec(k, 11, false, false),
		detailRec(k, 12, true, true), // withdrawn promise: must die at merge
		detailRec(k, 13, false, false),
		summaryRec(testKey(2), 5, 5), // only in the older table: must survive
	}
	if err := s.FlushTable(old, 13, 0); err != nil {
		t.Fatal(err)
	}
	newer := []storage.WALRecord{
		summaryRec(k, 12, 12),
		detailRec(k, 13, false, false), // duplicate of the older table's 13
		detailRec(k, 14, true, false),  // live promise above the horizon
	}
	if err := s.FlushTable(newer, 14, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.CompactNow(); err != nil {
		t.Fatalf("CompactNow: %v", err)
	}

	st := s.TieredStats()
	if st.Tables != 1 || st.L0Tables != 0 || st.Compactions != 1 {
		t.Fatalf("post-compaction stats %+v", st)
	}
	rec, err := s.LookupSummary(k)
	if err != nil || rec == nil {
		t.Fatalf("LookupSummary: %v, %v", rec, err)
	}
	if rec.Horizon != 12 || rec.Summary.Fields["balance"] != 12.0 {
		t.Fatalf("newest summary did not win: %+v", rec)
	}
	if rec, err := s.LookupSummary(testKey(2)); err != nil || rec == nil || rec.Horizon != 5 {
		t.Fatalf("older-table-only key lost: %v, %v", rec, err)
	}

	s.mu.Lock()
	merged := s.tables[0]
	s.mu.Unlock()
	if merged.meta.Level != 1 {
		t.Fatalf("merged table level %d, want 1", merged.meta.Level)
	}
	var lsns []uint64
	if err := merged.scan(func(e indexEntry, rec storage.WALRecord) error {
		if rec.Kind == storage.KindAppend && compositeKey(e.key) == compositeKey(k) {
			lsns = append(lsns, rec.LSN)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// Horizon 12 drops 11 and the duplicate-free survivor set is {13, 14}; the
	// obsolete 12 is eliminated outright.
	if len(lsns) != 2 || lsns[0] != 13 || lsns[1] != 14 {
		t.Fatalf("surviving detail %v, want [13 14]", lsns)
	}
	// The superseded inputs are gone from disk, manifest and directory alike.
	if m, _ := filepath.Glob(filepath.Join(s.Dir(), "*.sst")); len(m) != 1 {
		t.Fatalf("input tables not removed: %v", m)
	}
}

// TestCompactionDoesNotResurrectWithdrawnPromise: the obsolete flag of a
// withdrawn promise can live only in the newer table's copy of the LSN — the
// older table holds the pre-mark live copy, both retained as detail because
// an earlier live tentative record blocks the horizon. The merge must
// eliminate every copy of that LSN regardless of which copy it encounters
// first; letting the older live copy through would permanently resurrect the
// withdrawn promise, since the covering MarkObsolete WAL record is pruned.
func TestCompactionDoesNotResurrectWithdrawnPromise(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir, Options{CompactAfter: 100})
	defer s.Close()
	k := testKey(1)
	older := []storage.WALRecord{
		summaryRec(k, 10, 10),
		detailRec(k, 11, true, false), // live tentative: blocks the horizon
		detailRec(k, 12, true, false), // the promise, before its withdrawal
	}
	if err := s.FlushTable(older, 12, 0); err != nil {
		t.Fatal(err)
	}
	newer := []storage.WALRecord{
		summaryRec(k, 10, 10),         // horizon still blocked at 10 by LSN 11
		detailRec(k, 11, true, false), // still live
		detailRec(k, 12, true, true),  // the withdrawal reached this flush
	}
	if err := s.FlushTable(newer, 12, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.CompactNow(); err != nil {
		t.Fatalf("CompactNow: %v", err)
	}
	s.mu.Lock()
	merged := s.tables[0]
	s.mu.Unlock()
	var lsns []uint64
	obsoleteSurvived := false
	if err := merged.scan(func(_ indexEntry, rec storage.WALRecord) error {
		if rec.Kind == storage.KindAppend {
			lsns = append(lsns, rec.LSN)
			if rec.Obsolete {
				obsoleteSurvived = true
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(lsns) != 1 || lsns[0] != 11 || obsoleteSurvived {
		t.Fatalf("surviving detail %v (obsolete kept: %v), want only the live promise [11]", lsns, obsoleteSurvived)
	}
}

// TestFlushFailureInjection: an injected flush error counts, leaves no table
// behind, and the next clean flush succeeds.
func TestFlushFailureInjection(t *testing.T) {
	dir := t.TempDir()
	boom := errors.New("disk on fire")
	armed := true
	hooks := &Hooks{FlushErr: func() error {
		if armed {
			return boom
		}
		return nil
	}}
	s := openTestStore(t, dir, Options{Hooks: hooks})
	defer s.Close()
	entries := []storage.WALRecord{summaryRec(testKey(1), 1, 1)}
	if err := s.FlushTable(entries, 1, 0); !errors.Is(err, boom) {
		t.Fatalf("injected failure not surfaced: %v", err)
	}
	if st := s.TieredStats(); st.FlushFailures != 1 || st.Tables != 0 {
		t.Fatalf("stats after failed flush: %+v", st)
	}
	armed = false
	if err := s.FlushTable(entries, 1, 0); err != nil {
		t.Fatalf("clean retry failed: %v", err)
	}
	if st := s.TieredStats(); st.Flushes != 1 || st.Tables != 1 {
		t.Fatalf("stats after retry: %+v", st)
	}
}
