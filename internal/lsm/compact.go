// Background compaction: merge every level-0 table plus the existing
// level-1 run into a fresh level-1 run.
//
// Merge rules, per key across the inputs:
//
//   - The newest summary wins (highest table Seq among inputs holding one);
//     older summaries for the key are dropped — they are strict prefixes of
//     the winner's rollup.
//   - Detail records at or below the winning summary's horizon are dropped:
//     the summary already folds them in. Detail above the horizon is
//     retained (live tentative promises and recent settled records the next
//     flush's summary has not yet covered), deduplicated by LSN across
//     overlapping tables.
//   - Obsolete detail (withdrawn promises, flagged by a MarkObsolete that
//     reached a later flush) is eliminated outright — this is where
//     tombstones die, mirroring what Compact does to the in-memory index.
//
// The compactor yields while a flush's foreground fsync is active and
// sleeps CompactThrottle between merge batches, so background merging never
// monopolises the disk against the commit path.
package lsm

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/storage"
)

// compactorLoop waits for flush signals and drains the level-0 backlog.
func (s *Store) compactorLoop() {
	defer close(s.done)
	for {
		select {
		case <-s.stopCh:
			return
		case <-s.compactCh:
			for {
				s.mu.Lock()
				due := !s.closed && s.l0CountLocked() >= s.opts.CompactAfter
				s.mu.Unlock()
				if !due {
					break
				}
				if err := s.CompactNow(); err != nil {
					break // counted; wait for the next flush to retrigger
				}
			}
		}
	}
}

// mergeIter walks one input table key-group by key-group.
type mergeIter struct {
	t   *table
	cur indexCursor
	e   indexEntry
	ok  bool
}

func newMergeIter(t *table) (*mergeIter, error) {
	payload, err := t.indexPayload()
	if err != nil {
		return nil, err
	}
	it := &mergeIter{t: t, cur: indexCursor{b: payload}}
	return it, it.advance()
}

func (it *mergeIter) advance() error {
	ok, err := it.cur.next(&it.e)
	it.ok = ok
	return err
}

// CompactNow runs one compaction pass synchronously: all current level-0
// tables plus the level-1 run merge into a new level-1 run. It is a no-op
// when there is nothing at level 0. Exported for tests and tooling; the
// background loop calls it on the flush trigger.
func (s *Store) CompactNow() error {
	s.compactMu.Lock()
	defer s.compactMu.Unlock()
	fail := func(err error) error {
		s.compactFailures.Add(1)
		return err
	}
	if h := s.opts.Hooks; h != nil && h.CompactErr != nil {
		if err := h.CompactErr(); err != nil {
			return fail(fmt.Errorf("lsm: compact: %w", err))
		}
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return storage.ErrClosed
	}
	var inputs []*table
	for _, t := range s.tables {
		if t.meta.Level <= 1 {
			inputs = append(inputs, t)
		}
	}
	l0 := s.l0CountLocked()
	s.mu.Unlock()
	if l0 == 0 {
		return nil
	}
	seq := s.nextSeq.Add(1) - 1
	out, err := s.mergeTables(inputs, seq)
	if err != nil {
		return fail(err)
	}
	if err := s.runBreakpoint("compact:pre-manifest"); err != nil {
		// Simulated crash after the output table landed but before the
		// manifest names it: the orphan sweep reclaims it on the next open.
		return fail(err)
	}
	t, err := openTable(s.opts.Dir, out)
	if err != nil {
		return fail(err)
	}
	dead := make(map[string]bool, len(inputs))
	for _, in := range inputs {
		dead[in.meta.Name] = true
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		t.close()
		return storage.ErrClosed
	}
	man := s.man
	man.Seq++
	man.NextTable = s.nextSeq.Load()
	var keep []TableMeta
	for _, m := range s.man.Tables {
		if !dead[m.Name] {
			keep = append(keep, m)
		}
	}
	man.Tables = append(keep, out)
	sortTables(man.Tables)
	if out.Watermark > man.Watermark {
		man.Watermark = out.Watermark
	}
	if err := installManifest(s.opts.Dir, man); err != nil {
		s.mu.Unlock()
		t.close()
		return fail(err)
	}
	s.man = man
	var live []*table
	for _, old := range s.tables {
		if !dead[old.meta.Name] {
			live = append(live, old)
		}
	}
	s.tables = insertTable(live, t)
	s.mu.Unlock()
	s.compactions.Add(1)
	if err := s.runBreakpoint("compact:pre-delete"); err != nil {
		// Manifest already superseded the inputs; leftover files are swept as
		// orphans on the next open.
		return nil
	}
	s.removeInputs(inputs)
	return nil
}

// removeInputs deletes superseded table files. The *os.File handles stay
// open: an in-flight cold read may still hold a snapshot of the old table
// slice, and on POSIX an unlinked open file reads fine until the last
// reference drops (the runtime's file finalizers reclaim the descriptors).
func (s *Store) removeInputs(inputs []*table) {
	for _, in := range inputs {
		os.Remove(filepath.Join(s.opts.Dir, in.meta.Name))
		os.Remove(filepath.Join(s.opts.Dir, bloomName(in.meta.Name)))
	}
	syncDir(s.opts.Dir)
}

// mergeTables k-way merges the inputs into one new level-1 table.
func (s *Store) mergeTables(inputs []*table, seq uint64) (TableMeta, error) {
	iters := make([]*mergeIter, 0, len(inputs))
	for _, in := range inputs {
		it, err := newMergeIter(in)
		if err != nil {
			return TableMeta{}, err
		}
		if it.ok {
			iters = append(iters, it)
		}
	}
	w, err := newTableWriter(s.opts.Dir, tableName(seq))
	if err != nil {
		return TableMeta{}, err
	}
	var watermark uint64
	for _, in := range inputs {
		if in.meta.Watermark > watermark {
			watermark = in.meta.Watermark
		}
	}
	var batch int
	for len(iters) > 0 {
		// Smallest key across the iterators; participants are every iterator
		// positioned on it.
		minKey := ""
		for _, it := range iters {
			if ck := compositeKey(it.e.key); minKey == "" || ck < minKey {
				minKey = ck
			}
		}
		var parts []*mergeIter
		for _, it := range iters {
			if compositeKey(it.e.key) == minKey {
				parts = append(parts, it)
			}
		}
		if err := s.mergeKey(w, parts); err != nil {
			w.abort()
			return TableMeta{}, err
		}
		// Advance the participants; drop exhausted iterators.
		liveIters := iters[:0]
		for _, it := range iters {
			if compositeKey(it.e.key) == minKey {
				if err := it.advance(); err != nil {
					w.abort()
					return TableMeta{}, err
				}
			}
			if it.ok {
				liveIters = append(liveIters, it)
			}
		}
		iters = liveIters
		if batch++; batch%64 == 0 {
			s.yieldToFlush()
		}
	}
	meta, err := w.finish(s.breakpoint("compact:pre-rename"))
	if err != nil {
		return TableMeta{}, err
	}
	meta.Level, meta.Seq = 1, seq
	if watermark > meta.Watermark {
		meta.Watermark = watermark
	}
	return meta, nil
}

// mergeKey writes one key's merged records: the winning summary, then the
// surviving detail.
func (s *Store) mergeKey(w *tableWriter, parts []*mergeIter) error {
	// Winner: newest input table holding a summary for the key.
	var winner *mergeIter
	for _, p := range parts {
		if p.e.flags&entryHasSummary == 0 {
			continue
		}
		if winner == nil || p.t.meta.Seq > winner.t.meta.Seq {
			winner = p
		}
	}
	var horizon uint64
	if winner != nil {
		horizon = winner.e.horizon
		rec, _, err := winner.t.readFrameAt(winner.e.dataOff)
		if err != nil {
			return err
		}
		if err := w.add(&rec); err != nil {
			return err
		}
	}
	// Surviving detail: above the winning horizon, not obsolete, one copy
	// per LSN. An LSN's copies can disagree across tables — only the table
	// whose flush saw the MarkObsolete carries the flag, an older table holds
	// the pre-mark live copy — so obsolescence is collected across every part
	// first and applied to whichever copy was kept. Keying the decision on
	// iteration order instead would let the older live copy resurrect a
	// withdrawn promise whose covering WAL mark has already been pruned.
	var details []storage.WALRecord
	seen := map[uint64]bool{}
	obsolete := map[uint64]bool{}
	for _, p := range parts {
		off := p.e.dataOff
		end := p.e.dataOff + p.e.dataLen
		for off < end {
			rec, next, err := p.t.readFrameAt(off)
			if err != nil {
				return err
			}
			off = next
			if rec.Kind != storage.KindAppend {
				continue
			}
			if rec.LSN <= horizon {
				continue
			}
			if rec.Obsolete {
				obsolete[rec.LSN] = true
				continue
			}
			if seen[rec.LSN] {
				continue
			}
			seen[rec.LSN] = true
			details = append(details, rec)
		}
	}
	live := details[:0]
	for i := range details {
		if !obsolete[details[i].LSN] {
			live = append(live, details[i])
		}
	}
	sort.Slice(live, func(a, b int) bool { return live[a].LSN < live[b].LSN })
	for i := range live {
		if err := w.add(&live[i]); err != nil {
			return err
		}
	}
	return nil
}

// yieldToFlush pauses the merge while a flush is writing and applies the
// configured throttle between batches.
func (s *Store) yieldToFlush() {
	for s.flushActive.Load() {
		time.Sleep(200 * time.Microsecond)
	}
	if s.opts.CompactThrottle > 0 {
		time.Sleep(s.opts.CompactThrottle)
	}
}
