// Package lsm is the tiered persistence engine behind the storage.Tiered
// seam: a segmented WAL (the hot, append-only tier) plus immutable sorted
// tables (the cold tier) produced by off-hot-path flushes and merged by a
// background compactor.
//
// The division of labour with the store (internal/lsdb):
//
//   - The store decides WHAT to flush — it captures, under its shard locks,
//     each dirty entity's settled summary (a frozen COW state, zero-copy)
//     and the detail records still above the summary's horizon — and WHEN,
//     via byte/record triggers off the commit path.
//   - This package decides WHERE it lives: FlushTable turns one capture into
//     an immutable level-0 SSTable (sparse index + bloom sidecar), installs
//     it in the LSM manifest, and only then prunes the WAL segments the
//     capture covered. Recovery therefore replays tables (light summary
//     pointers + detail) and the remaining WAL tail — bounded by the newest
//     level plus the tail, not total history.
//   - A background compactor merges level-0 tables into the level-1 run,
//     keeping the newest summary per key, dropping detail the summary
//     supersedes and eliminating obsolete (withdrawn-promise) records. It
//     throttles itself while a flush's foreground fsync is in progress.
//
// Crash safety mirrors the WAL's: tables are written temp-fsync-rename, the
// manifest is replaced atomically, and open quarantines any *.sst the
// manifest does not name (a crash between table rename and manifest install
// leaves an orphan whose content the unpruned WAL still holds).
package lsm

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/entity"
	"repro/internal/storage"
)

// WALBackend is what the hot tier must provide: a storage.Backend plus the
// seal/truncate primitives tiered pruning rides on. *storage.WAL satisfies
// it; tests wrap it to inject faults.
type WALBackend interface {
	storage.Backend
	SealActive() (uint64, error)
	// TruncateThrough prunes the log through a sealed boundary; false with a
	// nil error means the tail was deliberately retained (lagging standby).
	TruncateThrough(watermark, through uint64) (bool, error)
}

// Hooks are test seams for the table file I/O, in the spirit of
// storage.FaultBackend: error injection at operation entry and simulated
// crashes at the named breakpoints inside the flush/compaction pipelines.
type Hooks struct {
	// Breakpoint, when non-nil, is consulted at named sites:
	// "flush:pre-rename" (table durable in its temp file, not yet visible),
	// "flush:pre-manifest" (table renamed in, manifest not yet updated),
	// "compact:pre-rename", "compact:pre-manifest", "compact:pre-delete"
	// (manifest updated, input tables not yet removed). A non-nil return
	// aborts the operation exactly where a crash at that site would.
	Breakpoint func(site string) error
	// FlushErr / CompactErr inject I/O failures at operation start.
	FlushErr   func() error
	CompactErr func() error
}

// Options configure a tiered store.
type Options struct {
	// Dir is the table directory (created if missing). Keep it distinct from
	// the WAL directory so segment scans never see table files.
	Dir string
	// CompactAfter is the level-0 table count that triggers a compaction
	// pass (default 4).
	CompactAfter int
	// CompactThrottle is the pause the compactor inserts between merge
	// batches so sustained compaction cannot monopolise the disk against
	// foreground fsync (default 500µs; negative disables).
	CompactThrottle time.Duration
	// Hooks are optional fault-injection seams.
	Hooks *Hooks
}

// Store implements storage.Tiered over a WALBackend plus a table directory.
type Store struct {
	opts  Options
	inner WALBackend

	mu     sync.Mutex
	man    lsmManifest
	tables []*table // newest-first (Seq descending); slice is copy-on-write
	closed bool

	nextSeq atomic.Uint64

	// compactMu serialises compaction passes (the background loop and
	// explicit CompactNow calls).
	compactMu   sync.Mutex
	flushActive atomic.Bool

	bloomHits, bloomSkips, bloomFalse atomic.Uint64
	flushes, flushFailures            atomic.Uint64
	compactions, compactFailures      atomic.Uint64
	pruneSkips, pruneErrors           atomic.Uint64

	compactCh chan struct{}
	stopCh    chan struct{}
	done      chan struct{}
}

var _ storage.Tiered = (*Store)(nil)

// Open attaches the tiered store to its table directory: loads the
// manifest, quarantines orphans, opens and validates every live table
// (rebuilding missing bloom sidecars) and starts the background compactor.
func Open(inner WALBackend, opts Options) (*Store, error) {
	if opts.Dir == "" {
		return nil, errors.New("lsm: Options.Dir must be set")
	}
	if opts.CompactAfter <= 0 {
		opts.CompactAfter = 4
	}
	if opts.CompactThrottle == 0 {
		opts.CompactThrottle = 500 * time.Microsecond
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("lsm: %w", err)
	}
	man, err := loadManifest(opts.Dir)
	if err != nil {
		return nil, err
	}
	if _, err := sweepOrphans(opts.Dir, man); err != nil {
		return nil, err
	}
	s := &Store{
		opts:      opts,
		inner:     inner,
		man:       man,
		compactCh: make(chan struct{}, 1),
		stopCh:    make(chan struct{}),
		done:      make(chan struct{}),
	}
	sortTables(s.man.Tables)
	for _, meta := range s.man.Tables {
		t, err := openTable(opts.Dir, meta)
		if err != nil {
			for _, o := range s.tables {
				o.close()
			}
			return nil, err
		}
		s.tables = append(s.tables, t)
	}
	s.nextSeq.Store(nextTableSeq(opts.Dir, man))
	go s.compactorLoop()
	return s, nil
}

// nextTableSeq picks the first unused table sequence: past the manifest's
// counter and past any table file on disk (orphans included), so a crashed
// install can never collide with a fresh one.
func nextTableSeq(dir string, man lsmManifest) uint64 {
	next := man.NextTable
	if next == 0 {
		next = 1
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return next
	}
	for _, e := range entries {
		var i uint64
		if n, _ := fmt.Sscanf(e.Name(), "sst-%d.", &i); n == 1 && i >= next {
			next = i + 1
		}
	}
	return next
}

func tableName(seq uint64) string { return fmt.Sprintf("sst-%010d.sst", seq) }

// Dir returns the table directory.
func (s *Store) Dir() string { return s.opts.Dir }

// AppendBatch delegates to the hot tier.
func (s *Store) AppendBatch(recs []storage.WALRecord) error { return s.inner.AppendBatch(recs) }

// Sync delegates to the hot tier.
func (s *Store) Sync() error { return s.inner.Sync() }

// Checkpoint is the monolithic snapshot of the non-tiered backends; a tiered
// store persists through FlushTable instead. The store never calls it when
// tiering is active (DB.Checkpoint becomes a forced flush).
func (s *Store) Checkpoint(uint64, func(func(storage.WALRecord) error) error) error {
	return errors.New("lsm: monolithic checkpoint unsupported on a tiered store (use FlushTable)")
}

// Replay streams the durable content: every live table's recovery view —
// per key a light summary pointer (Horizon set, Summary nil: the state
// payload stays on disk for the cold read path) plus its full detail
// records — followed by the hot tier's remaining tail. The store dedups the
// overlap (a record can sit in both a table and the unpruned tail) by LSN.
func (s *Store) Replay(fn func(storage.WALRecord) error) (uint64, error) {
	s.mu.Lock()
	tables := s.tables
	watermark := s.man.Watermark
	s.mu.Unlock()
	if fn != nil {
		for _, t := range tables {
			if err := t.replay(fn); err != nil {
				return 0, err
			}
		}
	}
	w, err := s.inner.Replay(fn)
	if err != nil {
		return 0, err
	}
	if watermark > w {
		w = watermark
	}
	return w, nil
}

// Close stops the compactor, closes the live tables and the hot tier.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return s.inner.Close()
	}
	s.closed = true
	s.mu.Unlock()
	close(s.stopCh)
	<-s.done
	s.mu.Lock()
	tables := s.tables
	s.tables = nil
	s.mu.Unlock()
	for _, t := range tables {
		t.close()
	}
	return s.inner.Close()
}

// SealWAL rotates the hot tier's active segment; see storage.Tiered.
func (s *Store) SealWAL() (uint64, error) { return s.inner.SealActive() }

// FlushTable writes one level-0 table from a flush capture, installs it in
// the manifest, then prunes the WAL through the sealed boundary. The table
// landing and the prune are deliberately decoupled: once the manifest names
// the table the capture is durable, so a failed or retained prune (lagging
// standby) costs only disk, never correctness — recovery dedups the overlap.
func (s *Store) FlushTable(entries []storage.WALRecord, watermark, boundary uint64) error {
	s.flushActive.Store(true)
	defer s.flushActive.Store(false)
	fail := func(err error) error {
		s.flushFailures.Add(1)
		return err
	}
	if h := s.opts.Hooks; h != nil && h.FlushErr != nil {
		if err := h.FlushErr(); err != nil {
			return fail(fmt.Errorf("lsm: flush: %w", err))
		}
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return storage.ErrClosed
	}
	s.mu.Unlock()
	seq := s.nextSeq.Add(1) - 1
	w, err := newTableWriter(s.opts.Dir, tableName(seq))
	if err != nil {
		return fail(err)
	}
	for i := range entries {
		if err := w.add(&entries[i]); err != nil {
			w.abort()
			return fail(err)
		}
	}
	meta, err := w.finish(s.breakpoint("flush:pre-rename"))
	if err != nil {
		return fail(err)
	}
	meta.Level, meta.Seq = 0, seq
	if watermark > meta.Watermark {
		meta.Watermark = watermark
	}
	if err := s.runBreakpoint("flush:pre-manifest"); err != nil {
		return fail(err)
	}
	t, err := openTable(s.opts.Dir, meta)
	if err != nil {
		return fail(err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		t.close()
		return storage.ErrClosed
	}
	man := s.man
	man.Seq++
	man.NextTable = s.nextSeq.Load()
	man.Tables = append(append([]TableMeta(nil), s.man.Tables...), meta)
	sortTables(man.Tables)
	if meta.Watermark > man.Watermark {
		man.Watermark = meta.Watermark
	}
	if err := installManifest(s.opts.Dir, man); err != nil {
		s.mu.Unlock()
		t.close()
		return fail(err)
	}
	s.man = man
	s.tables = insertTable(s.tables, t)
	l0 := s.l0CountLocked()
	s.mu.Unlock()
	s.flushes.Add(1)
	if pruned, err := s.inner.TruncateThrough(meta.Watermark, boundary); err != nil {
		s.pruneErrors.Add(1)
	} else if !pruned {
		s.pruneSkips.Add(1)
	}
	if l0 >= s.opts.CompactAfter {
		select {
		case s.compactCh <- struct{}{}:
		default:
		}
	}
	return nil
}

// insertTable returns a new newest-first slice with t added. Copy-on-write:
// readers iterate snapshots of the old slice without locks.
func insertTable(tables []*table, t *table) []*table {
	out := make([]*table, 0, len(tables)+1)
	out = append(out, t)
	out = append(out, tables...)
	sort.SliceStable(out, func(a, b int) bool { return out[a].meta.Seq > out[b].meta.Seq })
	return out
}

func (s *Store) l0CountLocked() int {
	n := 0
	for _, t := range s.tables {
		if t.meta.Level == 0 {
			n++
		}
	}
	return n
}

// breakpoint adapts a named hook site to the tableWriter callback form.
func (s *Store) breakpoint(site string) func() error {
	if h := s.opts.Hooks; h != nil && h.Breakpoint != nil {
		return func() error { return h.Breakpoint(site) }
	}
	return nil
}

func (s *Store) runBreakpoint(site string) error {
	if h := s.opts.Hooks; h != nil && h.Breakpoint != nil {
		return h.Breakpoint(site)
	}
	return nil
}

// LookupSummary is the cold read path: newest-to-oldest over the live
// tables, each consulted only after its key range and bloom filter admit
// the key. (nil, nil) means no table holds a summary.
func (s *Store) LookupSummary(key entity.Key) (*storage.WALRecord, error) {
	s.mu.Lock()
	tables := s.tables
	s.mu.Unlock()
	ck := compositeKey(key)
	for _, t := range tables {
		if ck < t.meta.MinKey || ck > t.meta.MaxKey {
			continue
		}
		if !t.bloom.mayContain(ck) {
			s.bloomSkips.Add(1)
			continue
		}
		rec, err := t.lookupSummary(key)
		if err == errNotFound {
			s.bloomFalse.Add(1)
			continue
		}
		if err != nil {
			return nil, err
		}
		s.bloomHits.Add(1)
		return &rec, nil
	}
	return nil, nil
}

// TieredStats reports the current table layout and counters.
func (s *Store) TieredStats() storage.TieredStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := storage.TieredStats{
		BloomHits:       s.bloomHits.Load(),
		BloomSkips:      s.bloomSkips.Load(),
		BloomFalse:      s.bloomFalse.Load(),
		Flushes:         s.flushes.Load(),
		FlushFailures:   s.flushFailures.Load(),
		Compactions:     s.compactions.Load(),
		CompactFailures: s.compactFailures.Load(),
		WALPruneSkips:   s.pruneSkips.Load(),
		WALPruneErrors:  s.pruneErrors.Load(),
	}
	levels := map[int]bool{}
	for _, t := range s.tables {
		levels[t.meta.Level] = true
		st.Tables++
		if t.meta.Level == 0 {
			st.L0Tables++
		}
		st.TableKeys += t.meta.Keys
		st.Bytes += t.meta.Bytes
	}
	st.Levels = len(levels)
	if st.L0Tables >= s.opts.CompactAfter {
		st.CompactionBacklog = st.L0Tables - s.opts.CompactAfter + 1
	}
	return st
}

// Quarantine delegates the hot tier's corrupt-suffix repair.
func (s *Store) Quarantine() (uint64, error) {
	q, ok := s.inner.(storage.Quarantiner)
	if !ok {
		return 0, errors.New("lsm: hot tier does not support quarantine")
	}
	return q.Quarantine()
}

// StreamAfter delegates the hot tier's replication stream. Cuts below the
// tiered watermark answer ErrCompacted (the WAL no longer holds the detail).
func (s *Store) StreamAfter(after uint64, fn func(storage.WALRecord) error) error {
	str, ok := s.inner.(storage.Streamer)
	if !ok {
		return errors.New("lsm: hot tier does not support streaming")
	}
	return str.StreamAfter(after, fn)
}

// ReplicationWatermark delegates to the hot tier.
func (s *Store) ReplicationWatermark() uint64 {
	if m, ok := s.inner.(storage.ReplicationMarker); ok {
		return m.ReplicationWatermark()
	}
	return 0
}

// SetReplicationWatermark delegates to the hot tier.
func (s *Store) SetReplicationWatermark(lsn uint64) error {
	if m, ok := s.inner.(storage.ReplicationMarker); ok {
		return m.SetReplicationWatermark(lsn)
	}
	return nil
}
