// Bloom-filter sidecars: one filter per SSTable so a point lookup can skip
// tables that cannot hold the key without touching their index or data
// blocks. The filter is standard double hashing (Kirsch–Mitzenmacher) over
// FNV-64a, ~10 bits and 7 probes per key, which puts the false-positive rate
// around 1%. Sidecars are advisory: a missing or corrupt .blm file is
// rebuilt from the table's index block at open, never trusted blindly.
package lsm

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"os"
)

const (
	bloomBitsPerKey = 10
	bloomProbes     = 7
)

var blmMagic = []byte("SOUPBLM\x01")

type bloomFilter struct {
	bits  []byte
	nbits uint64
	k     int
}

// newBloom sizes a filter for n keys.
func newBloom(n int) *bloomFilter {
	nbits := uint64(n * bloomBitsPerKey)
	if nbits < 64 {
		nbits = 64
	}
	return &bloomFilter{bits: make([]byte, (nbits+7)/8), nbits: nbits, k: bloomProbes}
}

// bloomHash derives the double-hashing pair for a key.
func bloomHash(key string) (h1, h2 uint64) {
	h := fnv.New64a()
	h.Write([]byte(key))
	h1 = h.Sum64()
	h2 = h1>>33 | h1<<31
	h2 |= 1 // odd increment visits all probe positions
	return h1, h2
}

func (b *bloomFilter) add(key string) {
	h1, h2 := bloomHash(key)
	for i := 0; i < b.k; i++ {
		pos := (h1 + uint64(i)*h2) % b.nbits
		b.bits[pos/8] |= 1 << (pos % 8)
	}
}

func (b *bloomFilter) mayContain(key string) bool {
	h1, h2 := bloomHash(key)
	for i := 0; i < b.k; i++ {
		pos := (h1 + uint64(i)*h2) % b.nbits
		if b.bits[pos/8]&(1<<(pos%8)) == 0 {
			return false
		}
	}
	return true
}

// marshal serialises the filter: magic, geometry, bit array, CRC trailer.
func (b *bloomFilter) marshal() []byte {
	out := make([]byte, 0, len(blmMagic)+20+len(b.bits)+4)
	out = append(out, blmMagic...)
	out = binary.AppendUvarint(out, b.nbits)
	out = binary.AppendUvarint(out, uint64(b.k))
	out = append(out, b.bits...)
	return binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(out))
}

// loadBloom reads a sidecar file; any defect is an error so the caller can
// fall back to rebuilding the filter from the table itself.
func loadBloom(path string) (*bloomFilter, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(raw) < len(blmMagic)+4 || string(raw[:len(blmMagic)]) != string(blmMagic) {
		return nil, fmt.Errorf("lsm: bad bloom sidecar %s", path)
	}
	body, tail := raw[:len(raw)-4], raw[len(raw)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail) {
		return nil, fmt.Errorf("lsm: bloom sidecar CRC mismatch %s", path)
	}
	rest := body[len(blmMagic):]
	nbits, n := binary.Uvarint(rest)
	if n <= 0 {
		return nil, fmt.Errorf("lsm: bad bloom geometry %s", path)
	}
	rest = rest[n:]
	k, n := binary.Uvarint(rest)
	if n <= 0 || k == 0 || k > 64 {
		return nil, fmt.Errorf("lsm: bad bloom geometry %s", path)
	}
	rest = rest[n:]
	if uint64(len(rest)) != (nbits+7)/8 {
		return nil, fmt.Errorf("lsm: bloom bit array truncated %s", path)
	}
	return &bloomFilter{bits: rest, nbits: nbits, k: int(k)}, nil
}
