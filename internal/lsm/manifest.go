// The LSM manifest names the live tables. Like the WAL's CHECKPOINT it is
// replaced atomically (write-temp, fsync, rename, directory fsync), so a
// crash anywhere leaves either the old or the new table set installed. Any
// *.sst file the manifest does not name is an orphan from a crash between
// table rename and manifest install: open sets it aside with a .orphaned
// suffix (kept for forensics, never read) rather than guessing at its place
// in history.
package lsm

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

const manifestName = "LSMMANIFEST"

// TableMeta describes one live table.
type TableMeta struct {
	Name string `json:"name"`
	// Level 0 tables are raw flush output, overlapping and consulted
	// newest-first; level 1 is the compacted run.
	Level int `json:"level"`
	// Seq is the creation sequence: higher means newer, and for overlapping
	// keys the newer table's summary wins.
	Seq uint64 `json:"seq"`
	// Watermark is the highest LSN the table's content covers.
	Watermark uint64 `json:"watermark"`
	MinKey    string `json:"min_key"`
	MaxKey    string `json:"max_key"`
	Keys      uint64 `json:"keys"`
	Bytes     int64  `json:"bytes"`
}

type lsmManifest struct {
	Seq       uint64      `json:"seq"`        // manifest install counter
	NextTable uint64      `json:"next_table"` // next table creation sequence
	Watermark uint64      `json:"watermark"`  // highest LSN any flush has covered
	Tables    []TableMeta `json:"tables"`
}

// loadManifest reads the manifest; a missing file is an empty store.
func loadManifest(dir string) (lsmManifest, error) {
	var man lsmManifest
	raw, err := os.ReadFile(filepath.Join(dir, manifestName))
	if os.IsNotExist(err) {
		man.NextTable = 1
		return man, nil
	}
	if err != nil {
		return man, fmt.Errorf("lsm: %w", err)
	}
	if err := json.Unmarshal(raw, &man); err != nil {
		return man, fmt.Errorf("lsm: malformed manifest: %w", err)
	}
	if man.NextTable == 0 {
		man.NextTable = 1
	}
	return man, nil
}

// installManifest atomically replaces the manifest.
func installManifest(dir string, man lsmManifest) error {
	raw, err := json.Marshal(man)
	if err != nil {
		return fmt.Errorf("lsm: %w", err)
	}
	path := filepath.Join(dir, manifestName)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("lsm: %w", err)
	}
	if _, err := f.Write(raw); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("lsm: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("lsm: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("lsm: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("lsm: %w", err)
	}
	return syncDir(dir)
}

// sweepOrphans removes temp files and quarantines *.sst files the manifest
// does not name: a crash between a table's rename and its manifest install
// leaves a complete but unaccounted table whose content the WAL still holds.
func sweepOrphans(dir string, man lsmManifest) (quarantined []string, err error) {
	live := make(map[string]bool, len(man.Tables))
	for _, t := range man.Tables {
		live[t.Name] = true
		live[bloomName(t.Name)] = true
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lsm: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasSuffix(name, ".tmp"):
			os.Remove(filepath.Join(dir, name))
		case strings.HasSuffix(name, ".sst") && !live[name]:
			os.Rename(filepath.Join(dir, name), filepath.Join(dir, name+".orphaned"))
			quarantined = append(quarantined, name)
		case strings.HasSuffix(name, ".blm") && !live[name]:
			os.Remove(filepath.Join(dir, name))
		}
	}
	if len(quarantined) > 0 {
		if err := syncDir(dir); err != nil {
			return quarantined, err
		}
	}
	return quarantined, nil
}

// sortTables orders metas newest-first (Seq descending) — the lookup and
// replay order.
func sortTables(metas []TableMeta) {
	sort.Slice(metas, func(a, b int) bool { return metas[a].Seq > metas[b].Seq })
}
