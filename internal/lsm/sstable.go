// Immutable sorted-table files (SSTables).
//
// Layout of sst-%010d.sst:
//
//	8-byte magic "SOUPSST\x01"
//	data block:  CRC frames (uint32 len | uint32 CRC32 | payload), payloads
//	             are storage.EncodeRecord bytes, grouped per key — the key's
//	             settled summary first (KindSummary, Horizon set), then its
//	             detail records (KindAppend) in LSN order
//	index block: one CRC frame whose payload is the per-key index — for each
//	             key (ascending): type, id, flags, horizon, dataOff, dataLen,
//	             detailCount — all length-prefixed / uvarint
//	footer:      uint64 indexOff | uint64 indexLen | uint64 keyCount |
//	             uint32 CRC32 of the previous 24 bytes | 8-byte magic
//	             "SSTFOOT\x01"   (fixed 44 bytes, little-endian)
//
// A table is written to a .tmp name, fsynced, renamed and the directory
// synced — a crash leaves either a complete table or an ignorable temp file.
// After open only a sparse in-memory index survives (every 16th key plus its
// byte offset into the index block) alongside the bloom sidecar; lookups
// re-read one index slice and one data frame, recovery re-reads the index
// block and the detail frames but never the summary payloads of cold keys.
package lsm

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/entity"
	"repro/internal/storage"
)

var (
	sstMagic    = []byte("SOUPSST\x01")
	sstFootMag  = []byte("SSTFOOT\x01")
	errNotFound = errors.New("lsm: key not in table")
)

const (
	frameHeader = 8 // uint32 length + uint32 CRC
	footerSize  = 8 + 8 + 8 + 4 + 8
	// maxFrame mirrors the WAL's bound: a larger length prefix is corruption,
	// not an allocation request.
	maxFrame = 1 << 28
	// sparseEvery is the in-memory index granularity: one retained entry per
	// this many index-block entries.
	sparseEvery = 16
	// entryHasSummary flags an index entry whose first data frame is the
	// key's settled summary; entries without it hold only detail records
	// (a key whose every record is still a live tentative promise).
	entryHasSummary = 1
)

// compositeKey is the sort and comparison form of an entity key: type and id
// joined by a NUL, which sorts below every printable byte so distinct
// (type, id) pairs order consistently and never collide.
func compositeKey(k entity.Key) string { return k.Type + "\x00" + k.ID }

func splitComposite(c string) entity.Key {
	if i := strings.IndexByte(c, 0); i >= 0 {
		return entity.Key{Type: c[:i], ID: c[i+1:]}
	}
	return entity.Key{Type: c}
}

// indexEntry is one parsed index-block entry.
type indexEntry struct {
	key         entity.Key
	flags       uint64
	horizon     uint64
	dataOff     int64
	dataLen     int64
	detailCount uint64
}

func appendIndexEntry(b []byte, e *indexEntry) []byte {
	b = binary.AppendUvarint(b, uint64(len(e.key.Type)))
	b = append(b, e.key.Type...)
	b = binary.AppendUvarint(b, uint64(len(e.key.ID)))
	b = append(b, e.key.ID...)
	b = binary.AppendUvarint(b, e.flags)
	b = binary.AppendUvarint(b, e.horizon)
	b = binary.AppendUvarint(b, uint64(e.dataOff))
	b = binary.AppendUvarint(b, uint64(e.dataLen))
	b = binary.AppendUvarint(b, e.detailCount)
	return b
}

// indexCursor walks index-block entries sequentially.
type indexCursor struct {
	b   []byte
	off int // byte offset of the next entry within the block
}

func (c *indexCursor) next(e *indexEntry) (bool, error) {
	if len(c.b) == 0 {
		return false, nil
	}
	start := len(c.b)
	str := func() (string, error) {
		n, w := binary.Uvarint(c.b)
		if w <= 0 || uint64(len(c.b)-w) < n {
			return "", errors.New("lsm: corrupt index entry")
		}
		s := string(c.b[w : w+int(n)])
		c.b = c.b[w+int(n):]
		return s, nil
	}
	uv := func() (uint64, error) {
		v, w := binary.Uvarint(c.b)
		if w <= 0 {
			return 0, errors.New("lsm: corrupt index entry")
		}
		c.b = c.b[w:]
		return v, nil
	}
	var err error
	if e.key.Type, err = str(); err != nil {
		return false, err
	}
	if e.key.ID, err = str(); err != nil {
		return false, err
	}
	var dataOff, dataLen uint64
	for _, dst := range []*uint64{&e.flags, &e.horizon, &dataOff, &dataLen, &e.detailCount} {
		if *dst, err = uv(); err != nil {
			return false, err
		}
	}
	e.dataOff, e.dataLen = int64(dataOff), int64(dataLen)
	c.off += start - len(c.b)
	return true, nil
}

// appendFrame wraps an encoded record payload in the WAL's len+CRC framing.
func appendFrame(b []byte, rec *storage.WALRecord) ([]byte, error) {
	start := len(b)
	b = append(b, 0, 0, 0, 0, 0, 0, 0, 0)
	b, err := storage.EncodeRecord(b, rec)
	if err != nil {
		return nil, err
	}
	payload := b[start+frameHeader:]
	binary.LittleEndian.PutUint32(b[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(b[start+4:], crc32.ChecksumIEEE(payload))
	return b, nil
}

// tableWriter streams key-grouped records into a new table file. Records
// must arrive sorted by composite key, each key's summary (if any) first and
// its details in LSN order — the flush capture and the compaction merge both
// produce exactly that order.
type tableWriter struct {
	dir, name string
	tmp       string
	f         *os.File
	bw        *bufio.Writer
	off       int64 // bytes written so far (file offset)
	scratch   []byte
	index     []byte
	keys      []string // composite keys, for the bloom sidecar
	cur       indexEntry
	curKey    string // composite of cur; "" before the first record
	minKey    string
	maxKey    string
	watermark uint64
}

func newTableWriter(dir, name string) (*tableWriter, error) {
	tmp := filepath.Join(dir, name+".tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("lsm: %w", err)
	}
	w := &tableWriter{dir: dir, name: name, tmp: tmp, f: f, bw: bufio.NewWriterSize(f, 1<<16)}
	if _, err := w.bw.Write(sstMagic); err != nil {
		f.Close()
		return nil, fmt.Errorf("lsm: %w", err)
	}
	w.off = int64(len(sstMagic))
	return w, nil
}

func (w *tableWriter) add(rec *storage.WALRecord) error {
	ck := compositeKey(rec.Key)
	if ck != w.curKey {
		if w.curKey != "" && ck <= w.curKey {
			return fmt.Errorf("lsm: records out of key order (%q after %q)", ck, w.curKey)
		}
		w.flushKey()
		w.curKey = ck
		w.cur = indexEntry{key: rec.Key, dataOff: w.off}
		if w.minKey == "" {
			w.minKey = ck
		}
		w.maxKey = ck
		w.keys = append(w.keys, ck)
	}
	switch rec.Kind {
	case storage.KindSummary:
		if w.cur.flags&entryHasSummary != 0 || w.cur.detailCount > 0 {
			return fmt.Errorf("lsm: summary for %q must be the key's first record", ck)
		}
		w.cur.flags |= entryHasSummary
		w.cur.horizon = rec.Horizon
		if rec.Horizon > w.watermark {
			w.watermark = rec.Horizon
		}
	case storage.KindAppend:
		w.cur.detailCount++
		if rec.LSN > w.watermark {
			w.watermark = rec.LSN
		}
	default:
		return fmt.Errorf("lsm: record kind %d does not belong in a table", rec.Kind)
	}
	var err error
	if w.scratch, err = appendFrame(w.scratch[:0], rec); err != nil {
		return err
	}
	if _, err := w.bw.Write(w.scratch); err != nil {
		return fmt.Errorf("lsm: %w", err)
	}
	w.off += int64(len(w.scratch))
	return nil
}

func (w *tableWriter) flushKey() {
	if w.curKey == "" {
		return
	}
	w.cur.dataLen = w.off - w.cur.dataOff
	w.index = appendIndexEntry(w.index, &w.cur)
}

// finish writes the index block, footer and bloom sidecar, fsyncs and
// renames the table into place. beforeRename, when non-nil, runs after the
// data is durable in the temp file but before the rename — the crash-test
// hook point for a flush that died mid-install.
func (w *tableWriter) finish(beforeRename func() error) (TableMeta, error) {
	w.flushKey()
	indexOff := w.off
	frame := make([]byte, frameHeader, frameHeader+len(w.index))
	binary.LittleEndian.PutUint32(frame, uint32(len(w.index)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(w.index))
	frame = append(frame, w.index...)
	if _, err := w.bw.Write(frame); err != nil {
		w.abort()
		return TableMeta{}, fmt.Errorf("lsm: %w", err)
	}
	w.off += int64(len(frame))
	footer := make([]byte, 0, footerSize)
	footer = binary.LittleEndian.AppendUint64(footer, uint64(indexOff))
	footer = binary.LittleEndian.AppendUint64(footer, uint64(len(frame)))
	footer = binary.LittleEndian.AppendUint64(footer, uint64(len(w.keys)))
	footer = binary.LittleEndian.AppendUint32(footer, crc32.ChecksumIEEE(footer))
	footer = append(footer, sstFootMag...)
	if _, err := w.bw.Write(footer); err != nil {
		w.abort()
		return TableMeta{}, fmt.Errorf("lsm: %w", err)
	}
	w.off += int64(len(footer))
	if err := w.bw.Flush(); err != nil {
		w.abort()
		return TableMeta{}, fmt.Errorf("lsm: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		w.abort()
		return TableMeta{}, fmt.Errorf("lsm: %w", err)
	}
	if err := w.f.Close(); err != nil {
		os.Remove(w.tmp)
		return TableMeta{}, fmt.Errorf("lsm: %w", err)
	}
	w.f = nil
	// The bloom sidecar is advisory (rebuilt if missing), so it needs no
	// fsync ceremony — but write it before the rename so a completed table
	// normally has its filter ready.
	bl := newBloom(len(w.keys))
	for _, k := range w.keys {
		bl.add(k)
	}
	blmPath := filepath.Join(w.dir, bloomName(w.name))
	os.WriteFile(blmPath, bl.marshal(), 0o644)
	if beforeRename != nil {
		if err := beforeRename(); err != nil {
			os.Remove(w.tmp)
			os.Remove(blmPath)
			return TableMeta{}, err
		}
	}
	if err := os.Rename(w.tmp, filepath.Join(w.dir, w.name)); err != nil {
		os.Remove(w.tmp)
		return TableMeta{}, fmt.Errorf("lsm: %w", err)
	}
	if err := syncDir(w.dir); err != nil {
		return TableMeta{}, err
	}
	return TableMeta{
		Name:      w.name,
		MinKey:    w.minKey,
		MaxKey:    w.maxKey,
		Keys:      uint64(len(w.keys)),
		Bytes:     w.off,
		Watermark: w.watermark,
	}, nil
}

func (w *tableWriter) abort() {
	if w.f != nil {
		w.f.Close()
		w.f = nil
	}
	os.Remove(w.tmp)
}

// bloomName maps sst-0000000007.sst to sst-0000000007.blm.
func bloomName(table string) string { return strings.TrimSuffix(table, ".sst") + ".blm" }

// table is one open, immutable SSTable: a read-only file handle, the sparse
// index and the bloom filter.
type table struct {
	meta     TableMeta
	f        *os.File
	indexOff int64 // file offset of the index frame
	indexLen int64 // bytes of the index frame (header + payload)
	count    uint64
	sparse   []sparseSlot
	bloom    *bloomFilter
}

// sparseSlot anchors a run of sparseEvery index entries: the composite key
// of the run's first entry and its byte offset within the index payload.
type sparseSlot struct {
	key string
	off int
}

// openTable validates the footer and index block, builds the sparse index
// and loads (or rebuilds) the bloom sidecar.
func openTable(dir string, meta TableMeta) (*table, error) {
	path := filepath.Join(dir, meta.Name)
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("lsm: %w", err)
	}
	t := &table{meta: meta, f: f}
	if err := t.init(dir); err != nil {
		f.Close()
		return nil, err
	}
	return t, nil
}

func (t *table) init(dir string) error {
	info, err := t.f.Stat()
	if err != nil {
		return fmt.Errorf("lsm: %w", err)
	}
	if info.Size() < int64(len(sstMagic))+footerSize {
		return fmt.Errorf("lsm: table %s truncated", t.meta.Name)
	}
	head := make([]byte, len(sstMagic))
	if _, err := t.f.ReadAt(head, 0); err != nil || !bytes.Equal(head, sstMagic) {
		return fmt.Errorf("lsm: table %s: bad magic", t.meta.Name)
	}
	footer := make([]byte, footerSize)
	if _, err := t.f.ReadAt(footer, info.Size()-footerSize); err != nil {
		return fmt.Errorf("lsm: %w", err)
	}
	if !bytes.Equal(footer[28:], sstFootMag) {
		return fmt.Errorf("lsm: table %s: bad footer magic", t.meta.Name)
	}
	if crc32.ChecksumIEEE(footer[:24]) != binary.LittleEndian.Uint32(footer[24:28]) {
		return fmt.Errorf("lsm: table %s: footer CRC mismatch", t.meta.Name)
	}
	t.indexOff = int64(binary.LittleEndian.Uint64(footer))
	t.indexLen = int64(binary.LittleEndian.Uint64(footer[8:]))
	t.count = binary.LittleEndian.Uint64(footer[16:])
	if t.indexOff < int64(len(sstMagic)) || t.indexOff+t.indexLen+footerSize != info.Size() {
		return fmt.Errorf("lsm: table %s: footer geometry out of range", t.meta.Name)
	}
	payload, err := t.indexPayload()
	if err != nil {
		return err
	}
	cur := indexCursor{b: payload}
	var e indexEntry
	var i uint64
	for {
		off := cur.off
		ok, err := cur.next(&e)
		if err != nil {
			return fmt.Errorf("lsm: table %s: %w", t.meta.Name, err)
		}
		if !ok {
			break
		}
		if i%sparseEvery == 0 {
			t.sparse = append(t.sparse, sparseSlot{key: compositeKey(e.key), off: off})
		}
		i++
	}
	if i != t.count {
		return fmt.Errorf("lsm: table %s: index holds %d entries, footer says %d", t.meta.Name, i, t.count)
	}
	if bl, err := loadBloom(filepath.Join(dir, bloomName(t.meta.Name))); err == nil {
		t.bloom = bl
	} else {
		// Sidecar missing or damaged: rebuild from the index block we just
		// validated and rewrite it for the next open.
		bl = newBloom(int(t.count))
		cur = indexCursor{b: payload}
		for {
			ok, err := cur.next(&e)
			if err != nil || !ok {
				break
			}
			bl.add(compositeKey(e.key))
		}
		t.bloom = bl
		os.WriteFile(filepath.Join(dir, bloomName(t.meta.Name)), bl.marshal(), 0o644)
	}
	return nil
}

// indexPayload reads and CRC-verifies the index frame, returning its payload.
func (t *table) indexPayload() ([]byte, error) {
	frame := make([]byte, t.indexLen)
	if _, err := t.f.ReadAt(frame, t.indexOff); err != nil {
		return nil, fmt.Errorf("lsm: %w", err)
	}
	if t.indexLen < frameHeader {
		return nil, fmt.Errorf("lsm: table %s: index frame truncated", t.meta.Name)
	}
	length := binary.LittleEndian.Uint32(frame)
	sum := binary.LittleEndian.Uint32(frame[4:])
	if int64(length)+frameHeader != t.indexLen {
		return nil, fmt.Errorf("lsm: table %s: index frame length mismatch", t.meta.Name)
	}
	payload := frame[frameHeader:]
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, fmt.Errorf("lsm: table %s: index CRC mismatch", t.meta.Name)
	}
	return payload, nil
}

func (t *table) close() {
	if t.f != nil {
		t.f.Close()
		t.f = nil
	}
}

// findEntry locates key's index entry via the sparse index, reading only the
// covering run of the index block. Returns errNotFound for an absent key.
func (t *table) findEntry(ck string) (indexEntry, error) {
	if len(t.sparse) == 0 || ck < t.sparse[0].key {
		return indexEntry{}, errNotFound
	}
	// Greatest sparse slot whose first key <= ck.
	lo, hi := 0, len(t.sparse)
	for lo < hi {
		mid := (lo + hi) / 2
		if t.sparse[mid].key <= ck {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	slot := t.sparse[lo-1]
	end := int(t.indexLen - frameHeader)
	if lo < len(t.sparse) {
		end = t.sparse[lo].off
	}
	run := make([]byte, end-slot.off)
	if _, err := t.f.ReadAt(run, t.indexOff+frameHeader+int64(slot.off)); err != nil {
		return indexEntry{}, fmt.Errorf("lsm: %w", err)
	}
	cur := indexCursor{b: run}
	var e indexEntry
	for {
		ok, err := cur.next(&e)
		if err != nil {
			return indexEntry{}, fmt.Errorf("lsm: table %s: %w", t.meta.Name, err)
		}
		if !ok {
			return indexEntry{}, errNotFound
		}
		switch c := compositeKey(e.key); {
		case c == ck:
			return e, nil
		case c > ck:
			return indexEntry{}, errNotFound
		}
	}
}

// readFrameAt decodes the single record frame starting at off.
func (t *table) readFrameAt(off int64) (storage.WALRecord, int64, error) {
	hdr := make([]byte, frameHeader)
	if _, err := t.f.ReadAt(hdr, off); err != nil {
		return storage.WALRecord{}, 0, fmt.Errorf("lsm: %w", err)
	}
	length := binary.LittleEndian.Uint32(hdr)
	sum := binary.LittleEndian.Uint32(hdr[4:])
	if length > maxFrame {
		return storage.WALRecord{}, 0, fmt.Errorf("lsm: table %s: implausible frame length at %d", t.meta.Name, off)
	}
	payload := make([]byte, length)
	if _, err := t.f.ReadAt(payload, off+frameHeader); err != nil {
		return storage.WALRecord{}, 0, fmt.Errorf("lsm: %w", err)
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return storage.WALRecord{}, 0, fmt.Errorf("lsm: table %s: data CRC mismatch at %d", t.meta.Name, off)
	}
	rec, err := storage.DecodeRecord(payload)
	if err != nil {
		return storage.WALRecord{}, 0, fmt.Errorf("lsm: table %s: %w", t.meta.Name, err)
	}
	return rec, off + frameHeader + int64(length), nil
}

// lookupSummary returns the key's settled summary record, errNotFound when
// the table holds no summary for it (absent key or detail-only entry).
func (t *table) lookupSummary(key entity.Key) (storage.WALRecord, error) {
	e, err := t.findEntry(compositeKey(key))
	if err != nil {
		return storage.WALRecord{}, err
	}
	if e.flags&entryHasSummary == 0 {
		return storage.WALRecord{}, errNotFound
	}
	rec, _, err := t.readFrameAt(e.dataOff)
	if err != nil {
		return storage.WALRecord{}, err
	}
	if rec.Kind != storage.KindSummary {
		return storage.WALRecord{}, fmt.Errorf("lsm: table %s: entry for %s/%s does not start with its summary", t.meta.Name, key.Type, key.ID)
	}
	return rec, nil
}

// replay streams the table's recovery view: per key a light summary pointer
// (KindSummary with Horizon but a nil Summary state — the payload stays on
// disk until a cold read warms it) and every detail record in full.
func (t *table) replay(fn func(storage.WALRecord) error) error {
	payload, err := t.indexPayload()
	if err != nil {
		return err
	}
	cur := indexCursor{b: payload}
	var e indexEntry
	for {
		ok, err := cur.next(&e)
		if err != nil {
			return fmt.Errorf("lsm: table %s: %w", t.meta.Name, err)
		}
		if !ok {
			return nil
		}
		off := e.dataOff
		if e.flags&entryHasSummary != 0 {
			if err := fn(storage.WALRecord{Kind: storage.KindSummary, Key: e.key, Horizon: e.horizon}); err != nil {
				return err
			}
			// Skip the summary frame without decoding its payload.
			hdr := make([]byte, frameHeader)
			if _, err := t.f.ReadAt(hdr, off); err != nil {
				return fmt.Errorf("lsm: %w", err)
			}
			off += frameHeader + int64(binary.LittleEndian.Uint32(hdr))
		}
		for i := uint64(0); i < e.detailCount; i++ {
			rec, next, err := t.readFrameAt(off)
			if err != nil {
				return err
			}
			if err := fn(rec); err != nil {
				return err
			}
			off = next
		}
	}
}

// scan streams every record in the table in key order — the compaction
// merge's input iterator, reading data frames sequentially.
func (t *table) scan(fn func(e indexEntry, rec storage.WALRecord) error) error {
	payload, err := t.indexPayload()
	if err != nil {
		return err
	}
	cur := indexCursor{b: payload}
	var e indexEntry
	for {
		ok, err := cur.next(&e)
		if err != nil {
			return fmt.Errorf("lsm: table %s: %w", t.meta.Name, err)
		}
		if !ok {
			return nil
		}
		off := e.dataOff
		end := e.dataOff + e.dataLen
		for off < end {
			rec, next, err := t.readFrameAt(off)
			if err != nil {
				return err
			}
			if err := fn(e, rec); err != nil {
				return err
			}
			off = next
		}
	}
}

// syncDir fsyncs a directory so renames and creations in it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("lsm: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("lsm: %w", err)
	}
	return nil
}
