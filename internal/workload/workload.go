// Package workload generates the synthetic business workloads the benchmark
// harness drives through the kernel. The scenarios are shaped after the
// paper's own running examples: the CRM-to-ERP data lifecycle of principle
// 2.2 (leads become opportunities become orders), the negative-inventory
// packer of principle 2.1, banking deposits and withdrawals of principle 2.8,
// the supply-chain available-to-purchase offers and the overbooked bookstore
// of principle 2.9. Since SAP's real traces are proprietary, these generators
// are the documented substitution (DESIGN.md, substitution 2).
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/entity"
)

// Rand is the interface of the subset of math/rand used here, so tests can
// substitute a deterministic sequence.
type Rand interface {
	Intn(n int) int
	Float64() float64
}

// NewRand returns a seeded deterministic random source.
func NewRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// Zipf draws keys 0..n-1 with a Zipfian skew; s close to 1 is mild skew,
// larger is hotter. It is the standard contention knob for experiments E1,
// E3 and E11.
type Zipf struct {
	z *rand.Zipf
	n int
}

// NewZipf creates a Zipf sampler over n keys with skew parameter s (>1).
func NewZipf(seed int64, n int, s float64) *Zipf {
	if s <= 1 {
		s = 1.01
	}
	r := rand.New(rand.NewSource(seed))
	return &Zipf{z: rand.NewZipf(r, s, 1, uint64(n-1)), n: n}
}

// Next returns the next key index in [0, n).
func (z *Zipf) Next() int { return int(z.z.Uint64()) }

// N returns the keyspace size.
func (z *Zipf) N() int { return z.n }

// --- Entity type declarations shared by examples and benchmarks -----------

// Types returns the standard entity types of the business scenarios.
func Types() []*entity.Type {
	return []*entity.Type{
		CustomerType(), LeadType(), OpportunityType(), OrderType(), InventoryType(),
		AccountType(), BookType(), OfferType(),
	}
}

// CustomerType is the master-data entity that opportunities and orders
// reference; in the out-of-order scenario it often arrives after them.
func CustomerType() *entity.Type {
	return &entity.Type{Name: "Customer", Fields: []entity.Field{
		{Name: "name", Type: entity.String},
		{Name: "country", Type: entity.String},
	}}
}

// LeadType is the CRM lead (front-end, early-lifecycle, often incomplete).
func LeadType() *entity.Type {
	return &entity.Type{Name: "Lead", Fields: []entity.Field{
		{Name: "contact", Type: entity.String},
		{Name: "company", Type: entity.String},
		{Name: "status", Type: entity.String},
	}}
}

// OpportunityType is a qualified lead; it references a customer that may not
// exist yet (principle 2.2).
func OpportunityType() *entity.Type {
	return &entity.Type{Name: "Opportunity", Fields: []entity.Field{
		{Name: "customer", Type: entity.Reference, RefType: "Customer"},
		{Name: "value", Type: entity.Float},
		{Name: "status", Type: entity.String},
	}}
}

// OrderType is the hierarchical order entity (root plus line items).
func OrderType() *entity.Type {
	return &entity.Type{
		Name: "Order",
		Fields: []entity.Field{
			{Name: "customer", Type: entity.Reference, RefType: "Customer"},
			{Name: "status", Type: entity.String},
			{Name: "total", Type: entity.Float},
		},
		Children: []entity.ChildCollection{{
			Name: "lineitems",
			Fields: []entity.Field{
				{Name: "product", Type: entity.String},
				{Name: "qty", Type: entity.Int},
				{Name: "price", Type: entity.Float},
			},
		}},
	}
}

// InventoryType is per-product stock; onhand may go negative (principle 2.1).
func InventoryType() *entity.Type {
	return &entity.Type{Name: "Inventory", Fields: []entity.Field{
		{Name: "onhand", Type: entity.Int},
		{Name: "plant", Type: entity.String},
	}}
}

// AccountType is the insert-only bank account of principle 2.8: balance is
// an aggregate of deposits and withdrawals.
func AccountType() *entity.Type {
	return &entity.Type{
		Name: "Account",
		Fields: []entity.Field{
			{Name: "owner", Type: entity.String},
			{Name: "balance", Type: entity.Float},
		},
		Children: []entity.ChildCollection{{
			Name: "entries",
			Fields: []entity.Field{
				{Name: "kind", Type: entity.String},
				{Name: "amount", Type: entity.Float},
			},
		}},
	}
}

// BookType is the overbookable bestseller of principle 2.9.
func BookType() *entity.Type {
	return &entity.Type{Name: "Book", Fields: []entity.Field{
		{Name: "title", Type: entity.String},
		{Name: "stock", Type: entity.Int},
	}}
}

// OfferType is a supply-chain available-to-purchase offer.
func OfferType() *entity.Type {
	return &entity.Type{Name: "Offer", Fields: []entity.Field{
		{Name: "product", Type: entity.String},
		{Name: "qty", Type: entity.Int},
		{Name: "price", Type: entity.Float},
		{Name: "status", Type: entity.String},
	}}
}

// --- Order-to-cash pipeline ------------------------------------------------

// PipelineEvent is one front-end data entry in the CRM→ERP lifecycle.
type PipelineEvent struct {
	Kind string // "lead", "opportunity", "order"
	Key  entity.Key
	Ops  []entity.Op
	// ForwardReference is true when the entry references an entity that has
	// not been entered yet (out-of-order, principle 2.2).
	ForwardReference bool
}

// OrderToCash generates the lead → opportunity → order lifecycle with a
// configurable fraction of out-of-order entries.
type OrderToCash struct {
	rng               *rand.Rand
	nextID            int
	OutOfOrderRatio   float64 // probability an opportunity precedes its customer
	LineItemsPerOrder int
}

// NewOrderToCash creates a generator.
func NewOrderToCash(seed int64, outOfOrderRatio float64) *OrderToCash {
	return &OrderToCash{rng: NewRand(seed), OutOfOrderRatio: outOfOrderRatio, LineItemsPerOrder: 3}
}

// NextCase produces the three entries of one business case (lead,
// opportunity, order) in entry order; when the case is out of order the
// opportunity and order reference a customer entity that is never entered.
func (g *OrderToCash) NextCase() []PipelineEvent {
	g.nextID++
	id := g.nextID
	forward := g.rng.Float64() < g.OutOfOrderRatio
	customer := fmt.Sprintf("Customer/C-%05d", id)
	lead := PipelineEvent{
		Kind: "lead",
		Key:  entity.Key{Type: "Lead", ID: fmt.Sprintf("L-%05d", id)},
		Ops: []entity.Op{
			entity.Set("contact", fmt.Sprintf("contact-%d", id)),
			entity.Set("company", fmt.Sprintf("company-%d", id%97)),
			entity.Set("status", "NEW"),
		},
	}
	opp := PipelineEvent{
		Kind:             "opportunity",
		Key:              entity.Key{Type: "Opportunity", ID: fmt.Sprintf("OP-%05d", id)},
		ForwardReference: forward,
		Ops: []entity.Op{
			entity.Set("customer", customer),
			entity.Set("value", float64(100+g.rng.Intn(10000))),
			entity.Set("status", "QUALIFIED"),
		},
	}
	order := PipelineEvent{
		Kind:             "order",
		Key:              entity.Key{Type: "Order", ID: fmt.Sprintf("O-%05d", id)},
		ForwardReference: forward,
		Ops: []entity.Op{
			entity.Set("customer", customer),
			entity.Set("status", "OPEN"),
		},
	}
	for li := 0; li < g.LineItemsPerOrder; li++ {
		order.Ops = append(order.Ops, entity.InsertChild("lineitems", fmt.Sprintf("L%d", li+1), entity.Fields{
			"product": fmt.Sprintf("product-%d", g.rng.Intn(50)),
			"qty":     int64(1 + g.rng.Intn(5)),
			"price":   float64(5 + g.rng.Intn(500)),
		}))
	}
	return []PipelineEvent{lead, opp, order}
}

// --- Inventory --------------------------------------------------------------

// InventoryMove is one goods receipt (positive) or picking (negative).
type InventoryMove struct {
	Item entity.Key
	Qty  int64
	Desc string
}

// Inventory generates receipts and pickings over a fixed set of items with a
// Zipfian hot spot; PickRatio controls how often stock is consumed vs
// received, so sustained PickRatio > 0.5 drives items negative.
type Inventory struct {
	rng       *rand.Rand
	zipf      *Zipf
	PickRatio float64
}

// NewInventory creates a generator over items item-0..item-(n-1).
func NewInventory(seed int64, items int, skew, pickRatio float64) *Inventory {
	return &Inventory{rng: NewRand(seed), zipf: NewZipf(seed+1, items, skew), PickRatio: pickRatio}
}

// Next returns the next stock movement.
func (g *Inventory) Next() InventoryMove {
	item := entity.Key{Type: "Inventory", ID: fmt.Sprintf("item-%d", g.zipf.Next())}
	qty := int64(1 + g.rng.Intn(10))
	if g.rng.Float64() < g.PickRatio {
		return InventoryMove{Item: item, Qty: -qty, Desc: fmt.Sprintf("picked %d of %s", qty, item.ID)}
	}
	return InventoryMove{Item: item, Qty: qty, Desc: fmt.Sprintf("received %d of %s", qty, item.ID)}
}

// Ops converts a move into entity operations (delta + history description).
func (m InventoryMove) Ops() []entity.Op {
	return []entity.Op{entity.Delta("onhand", float64(m.Qty)).Described(m.Desc)}
}

// --- Banking ----------------------------------------------------------------

// BankOp is one deposit or withdrawal described as an operation (principle
// 2.8: record the withdrawal, not just the balance).
type BankOp struct {
	Account  entity.Key
	Amount   float64 // positive deposit, negative withdrawal
	EntryID  string
	Describe string
}

// Banking generates deposits and withdrawals over n accounts with Zipfian
// skew.
type Banking struct {
	rng  *rand.Rand
	zipf *Zipf
	seq  int
	// WithdrawRatio is the probability a generated operation is a withdrawal.
	WithdrawRatio float64
}

// NewBanking creates a generator over account-0..account-(n-1).
func NewBanking(seed int64, accounts int, skew float64) *Banking {
	return &Banking{rng: NewRand(seed), zipf: NewZipf(seed+1, accounts, skew), WithdrawRatio: 0.4}
}

// Next returns the next banking operation.
func (g *Banking) Next() BankOp {
	g.seq++
	acct := entity.Key{Type: "Account", ID: fmt.Sprintf("account-%d", g.zipf.Next())}
	amount := float64(1 + g.rng.Intn(500))
	kind := "deposit"
	if g.rng.Float64() < g.WithdrawRatio {
		amount = -amount
		kind = "withdrawal"
	}
	return BankOp{
		Account:  acct,
		Amount:   amount,
		EntryID:  fmt.Sprintf("entry-%d", g.seq),
		Describe: fmt.Sprintf("%s of %.0f on %s", kind, amount, acct.ID),
	}
}

// Ops converts the banking operation into entity operations: an insert-only
// entry child row plus a commutative balance delta.
func (b BankOp) Ops() []entity.Op {
	kind := "deposit"
	if b.Amount < 0 {
		kind = "withdrawal"
	}
	return []entity.Op{
		entity.InsertChild("entries", b.EntryID, entity.Fields{"kind": kind, "amount": b.Amount}).Described(b.Describe),
		entity.Delta("balance", b.Amount),
	}
}

// --- Bookstore overbooking ---------------------------------------------------

// BookOrder is one customer's attempt to buy a copy.
type BookOrder struct {
	Customer string
	Book     entity.Key
	Qty      int64
}

// Bookstore generates demand D for a single title with stock S, the
// overbooking scenario of principle 2.9.
type Bookstore struct {
	Title  entity.Key
	Stock  int64
	demand int
	next   int
}

// NewBookstore creates the scenario.
func NewBookstore(stock int64, demand int) *Bookstore {
	return &Bookstore{Title: entity.Key{Type: "Book", ID: "bestseller"}, Stock: stock, demand: demand}
}

// Orders returns all customer orders (demand many, one copy each).
func (b *Bookstore) Orders() []BookOrder {
	out := make([]BookOrder, b.demand)
	for i := range out {
		out[i] = BookOrder{Customer: fmt.Sprintf("customer-%d", i), Book: b.Title, Qty: 1}
	}
	return out
}

// --- Cross-partition transfer mix -------------------------------------------

// Transfer is one employee-transfer-style operation touching a source and a
// destination entity, possibly in different serialization units.
type Transfer struct {
	From, To entity.Key
	Amount   float64
	// CrossUnit is a hint set by the generator when From and To were chosen
	// from different key ranges; the actual placement is the locator's call.
	CrossUnit bool
}

// Transfers generates transfers between n entities where crossRatio of them
// intentionally pair entities from different halves of the keyspace (so that
// a range-partitioned deployment makes them cross-unit).
type Transfers struct {
	rng        *rand.Rand
	n          int
	crossRatio float64
}

// NewTransfers creates a generator over n accounts.
func NewTransfers(seed int64, n int, crossRatio float64) *Transfers {
	return &Transfers{rng: NewRand(seed), n: n, crossRatio: crossRatio}
}

// Next returns the next transfer.
func (g *Transfers) Next() Transfer {
	half := g.n / 2
	if half == 0 {
		half = 1
	}
	cross := g.rng.Float64() < g.crossRatio
	from := g.rng.Intn(half)
	to := g.rng.Intn(half)
	if cross {
		to = half + g.rng.Intn(g.n-half)
	}
	key := func(i int) entity.Key {
		return entity.Key{Type: "Account", ID: fmt.Sprintf("account-%04d", i)}
	}
	return Transfer{From: key(from), To: key(to), Amount: float64(1 + g.rng.Intn(100)), CrossUnit: cross}
}
