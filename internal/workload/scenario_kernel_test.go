package workload_test

// The business scenarios must behave identically regardless of the storage
// posture underneath the kernel: the in-memory seed configuration, and the
// production-shaped one — tiered LSM storage with per-shard group commit
// over a durable WAL. Each configuration runs the same scenario mix and
// asserts the same invariants; the durable configuration additionally closes
// and recovers the kernel mid-check to prove the scenario state survives.

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/entity"
	"repro/internal/workload"
)

// scenarioConfig is one storage posture the scenario suite runs under.
type scenarioConfig struct {
	name    string
	durable bool // close + recover and re-verify
	opts    func(t *testing.T) core.Options
}

func scenarioConfigs() []scenarioConfig {
	return []scenarioConfig{
		{
			name: "memory",
			opts: func(t *testing.T) core.Options {
				return core.Options{Node: "wl-mem", Units: 2}
			},
		},
		{
			name:    "tiered+groupcommit",
			durable: true,
			opts: func(t *testing.T) core.Options {
				return core.Options{
					Node:  "wl-tiered",
					Units: 2,
					// Durable WAL + LSM tier, aggressive thresholds so a
					// few hundred scenario operations exercise checkpoints,
					// background flushes and the group-commit batcher.
					DataDir:         t.TempDir(),
					GroupCommit:     true,
					CheckpointEvery: 64,
					FlushBytes:      16 * 1024,
				}
			},
		},
	}
}

func bootScenarioKernel(t *testing.T, opts core.Options) *core.Kernel {
	t.Helper()
	k, err := core.Bootstrap(opts, workload.Types()...)
	if err != nil {
		t.Fatalf("bootstrap %s: %v", opts.Node, err)
	}
	k.Start()
	return k
}

func TestScenariosAcrossStorageConfigs(t *testing.T) {
	for _, cfg := range scenarioConfigs() {
		t.Run(cfg.name, func(t *testing.T) {
			opts := cfg.opts(t)
			k := bootScenarioKernel(t, opts)
			closed := false
			defer func() {
				if !closed {
					k.Close()
				}
			}()

			// Banking: deposits/withdrawals with insert-only entries; the
			// balance aggregate must equal the sum of recorded operations.
			bank := workload.NewBanking(11, 16, 1.2)
			balances := map[string]float64{}
			for i := 0; i < 300; i++ {
				op := bank.Next()
				if _, err := k.Update(op.Account, op.Ops()...); err != nil {
					t.Fatalf("banking op %d: %v", i, err)
				}
				balances[op.Account.ID] += op.Amount
			}

			// Order-to-cash: forward references (opportunity before its
			// customer) must be accepted as managed warnings, not rejected.
			crm := workload.NewOrderToCash(7, 0.5)
			cases := 0
			for c := 0; c < 40; c++ {
				for _, ev := range crm.NextCase() {
					if _, err := k.Update(ev.Key, ev.Ops...); err != nil {
						t.Fatalf("crm %s %s: %v", ev.Kind, ev.Key, err)
					}
				}
				cases++
			}

			// Inventory: sustained pick ratio > 0.5 drives items negative;
			// the kernel records the movements instead of refusing them.
			inv := workload.NewInventory(3, 8, 1.3, 0.7)
			onhand := map[string]int64{}
			for i := 0; i < 300; i++ {
				mv := inv.Next()
				if _, err := k.Update(mv.Item, mv.Ops()...); err != nil {
					t.Fatalf("inventory move %d: %v", i, err)
				}
				onhand[mv.Item.ID] += mv.Qty
			}

			// Bookstore: demand 40 against stock 25 — every order is taken
			// and the oversell is visible in the final stock.
			books := workload.NewBookstore(25, 40)
			if _, err := k.Update(books.Title, entity.Set("title", "bestseller"), entity.Delta("stock", float64(books.Stock))); err != nil {
				t.Fatal(err)
			}
			for _, o := range books.Orders() {
				if _, err := k.Update(o.Book, entity.Delta("stock", -float64(o.Qty)).Described("order by "+o.Customer)); err != nil {
					t.Fatalf("book order %s: %v", o.Customer, err)
				}
			}

			k.Drain()
			verify := func(t *testing.T, k *core.Kernel, recovered bool) {
				t.Helper()
				for id, want := range balances {
					st, err := k.Read(entity.Key{Type: "Account", ID: id})
					if err != nil {
						t.Fatalf("read %s: %v", id, err)
					}
					if got := st.Float("balance"); got != want {
						t.Fatalf("%s balance = %g, want %g", id, got, want)
					}
				}
				for id, want := range onhand {
					st, err := k.Read(entity.Key{Type: "Inventory", ID: id})
					if err != nil {
						t.Fatalf("read %s: %v", id, err)
					}
					if got := st.Int("onhand"); got != want {
						t.Fatalf("%s onhand = %d, want %d", id, got, want)
					}
				}
				for c := 1; c <= cases; c++ {
					st, err := k.Read(entity.Key{Type: "Order", ID: fmt.Sprintf("O-%05d", c)})
					if err != nil {
						t.Fatalf("read order %d: %v", c, err)
					}
					if st.StringField("status") != "OPEN" {
						t.Fatalf("order %d status = %q", c, st.StringField("status"))
					}
				}
				st, err := k.Read(books.Title)
				if err != nil {
					t.Fatal(err)
				}
				if got := st.Int("stock"); got != books.Stock-40 {
					t.Fatalf("bestseller stock = %d, want %d (oversell recorded)", got, books.Stock-40)
				}
				// History must stay queryable. Before recovery the live
				// version log is present; after recovery the checkpoint has
				// folded it into the archived summary, so an empty Versions
				// slice is the documented (and separately pinned) contract.
				h, err := k.History(entity.Key{Type: "Book", ID: "bestseller"})
				if err != nil {
					t.Fatal(err)
				}
				if !recovered && len(h.Versions) == 0 {
					t.Fatal("bestseller history empty before recovery")
				}
			}
			verify(t, k, false)

			if cfg.durable {
				// Recovery: reopen over the same WAL + SSTables and re-run
				// the exact same checks against the recovered kernel.
				k.Close()
				closed = true
				k2, err := core.Bootstrap(opts, workload.Types()...)
				if err != nil {
					t.Fatalf("recover: %v", err)
				}
				defer k2.Close()
				k2.Start()
				verify(t, k2, true)
			}
		})
	}
}
