package workload

import (
	"testing"

	"repro/internal/entity"
)

func TestTypesAreValid(t *testing.T) {
	types := Types()
	if len(types) != 8 {
		t.Fatalf("Types = %d", len(types))
	}
	seen := map[string]bool{}
	for _, typ := range types {
		if err := typ.Validate(); err != nil {
			t.Errorf("type %s invalid: %v", typ.Name, err)
		}
		if seen[typ.Name] {
			t.Errorf("duplicate type %s", typ.Name)
		}
		seen[typ.Name] = true
	}
}

func TestZipfSkewsTowardsLowKeys(t *testing.T) {
	z := NewZipf(1, 100, 1.3)
	counts := make([]int, 100)
	const draws = 20000
	for i := 0; i < draws; i++ {
		k := z.Next()
		if k < 0 || k >= 100 {
			t.Fatalf("key %d out of range", k)
		}
		counts[k]++
	}
	if z.N() != 100 {
		t.Fatalf("N = %d", z.N())
	}
	// The hottest key must be dramatically hotter than a mid-range key.
	if counts[0] < 10*counts[50]+1 {
		t.Fatalf("no skew: counts[0]=%d counts[50]=%d", counts[0], counts[50])
	}
}

func TestZipfClampsLowSkew(t *testing.T) {
	z := NewZipf(1, 10, 0.5) // invalid s clamps to >1
	for i := 0; i < 100; i++ {
		if k := z.Next(); k < 0 || k >= 10 {
			t.Fatalf("key %d out of range", k)
		}
	}
}

func TestOrderToCashCases(t *testing.T) {
	g := NewOrderToCash(7, 0.5)
	forward, total := 0, 0
	for i := 0; i < 200; i++ {
		events := g.NextCase()
		if len(events) != 3 {
			t.Fatalf("case has %d events", len(events))
		}
		if events[0].Kind != "lead" || events[1].Kind != "opportunity" || events[2].Kind != "order" {
			t.Fatalf("unexpected kinds: %v %v %v", events[0].Kind, events[1].Kind, events[2].Kind)
		}
		if events[1].ForwardReference != events[2].ForwardReference {
			t.Fatal("opportunity and order must agree on forward reference")
		}
		if events[1].ForwardReference {
			forward++
		}
		total++
		// Order ops include the line items.
		if len(events[2].Ops) != 2+g.LineItemsPerOrder {
			t.Fatalf("order ops = %d", len(events[2].Ops))
		}
		// Keys are unique across cases.
		if events[2].Key.ID == "" || events[0].Key.Type != "Lead" {
			t.Fatal("bad keys")
		}
	}
	ratio := float64(forward) / float64(total)
	if ratio < 0.3 || ratio > 0.7 {
		t.Fatalf("forward-reference ratio %.2f far from configured 0.5", ratio)
	}
}

func TestOrderToCashZeroRatio(t *testing.T) {
	g := NewOrderToCash(7, 0)
	for i := 0; i < 50; i++ {
		events := g.NextCase()
		if events[1].ForwardReference {
			t.Fatal("forward reference generated at ratio 0")
		}
	}
}

func TestInventoryGenerator(t *testing.T) {
	g := NewInventory(3, 20, 1.2, 0.7)
	picks, receipts := 0, 0
	for i := 0; i < 500; i++ {
		m := g.Next()
		if m.Item.Type != "Inventory" {
			t.Fatalf("item type %s", m.Item.Type)
		}
		if m.Qty == 0 {
			t.Fatal("zero quantity move")
		}
		if m.Qty < 0 {
			picks++
		} else {
			receipts++
		}
		ops := m.Ops()
		if len(ops) != 1 || ops[0].Kind != entity.OpDelta || ops[0].Describe == "" {
			t.Fatalf("ops = %+v", ops)
		}
	}
	if picks <= receipts {
		t.Fatalf("pick ratio 0.7 but picks=%d receipts=%d", picks, receipts)
	}
}

func TestBankingGenerator(t *testing.T) {
	g := NewBanking(5, 50, 1.2)
	deposits, withdrawals := 0, 0
	seenEntries := map[string]bool{}
	for i := 0; i < 500; i++ {
		op := g.Next()
		if op.Amount == 0 {
			t.Fatal("zero amount")
		}
		if op.Amount > 0 {
			deposits++
		} else {
			withdrawals++
		}
		if seenEntries[op.EntryID] {
			t.Fatalf("duplicate entry id %s", op.EntryID)
		}
		seenEntries[op.EntryID] = true
		ops := op.Ops()
		if len(ops) != 2 {
			t.Fatalf("ops = %d", len(ops))
		}
		if ops[0].Kind != entity.OpInsertChild || ops[1].Kind != entity.OpDelta {
			t.Fatalf("op kinds = %v %v", ops[0].Kind, ops[1].Kind)
		}
		kind := ops[0].ChildRow["kind"]
		if op.Amount < 0 && kind != "withdrawal" {
			t.Fatalf("withdrawal labelled %v", kind)
		}
	}
	if deposits == 0 || withdrawals == 0 {
		t.Fatalf("mix degenerate: %d/%d", deposits, withdrawals)
	}
}

func TestBookstoreOrders(t *testing.T) {
	b := NewBookstore(5, 8)
	orders := b.Orders()
	if len(orders) != 8 {
		t.Fatalf("orders = %d", len(orders))
	}
	for i, o := range orders {
		if o.Book != b.Title || o.Qty != 1 {
			t.Fatalf("order %d = %+v", i, o)
		}
	}
	if b.Stock != 5 {
		t.Fatalf("stock = %d", b.Stock)
	}
}

func TestTransfersCrossRatio(t *testing.T) {
	g := NewTransfers(11, 100, 0.3)
	cross, total := 0, 0
	for i := 0; i < 1000; i++ {
		tr := g.Next()
		if tr.From.Type != "Account" || tr.To.Type != "Account" {
			t.Fatal("bad key types")
		}
		if tr.Amount <= 0 {
			t.Fatal("non-positive amount")
		}
		if tr.CrossUnit {
			cross++
			// Cross transfers pair the lower half with the upper half.
			if tr.From.ID >= "account-0050" {
				t.Fatalf("cross transfer from upper half: %+v", tr)
			}
			if tr.To.ID < "account-0050" {
				t.Fatalf("cross transfer to lower half: %+v", tr)
			}
		}
		total++
	}
	ratio := float64(cross) / float64(total)
	if ratio < 0.2 || ratio > 0.4 {
		t.Fatalf("cross ratio %.2f far from 0.3", ratio)
	}
}

func TestTransfersZeroAndFullCross(t *testing.T) {
	none := NewTransfers(1, 10, 0)
	for i := 0; i < 50; i++ {
		if none.Next().CrossUnit {
			t.Fatal("cross transfer at ratio 0")
		}
	}
	all := NewTransfers(1, 10, 1)
	for i := 0; i < 50; i++ {
		if !all.Next().CrossUnit {
			t.Fatal("local transfer at ratio 1")
		}
	}
}

func TestDeterministicWithSameSeed(t *testing.T) {
	a, b := NewBanking(42, 10, 1.2), NewBanking(42, 10, 1.2)
	for i := 0; i < 100; i++ {
		x, y := a.Next(), b.Next()
		if x.Account != y.Account || x.Amount != y.Amount {
			t.Fatalf("non-deterministic at %d: %+v vs %+v", i, x, y)
		}
	}
}
