package workload

// Key-space striding: the SLO harness simulates millions of entities
// without holding any per-entity client state by deriving each request's
// entity purely from the request index. Stride walks the whole key space
// in a fixed pseudo-random permutation — successive requests land on
// well-separated keys (no accidental hot run), every key is visited before
// any repeats, and request i always maps to the same key, so a reader can
// target the key an earlier writer used by just reusing a smaller index.

// strideMultiplier is a large constant ≡ 1 (mod 4) — the 64-bit golden-ratio
// mix constant, as used by splitmix64. With an odd increment, v → v*m+1
// (mod 2^k) then satisfies the Hull–Dobell conditions and is a single
// full-period cycle over any power-of-two space, which Stride's
// cycle-walking fold depends on for termination.
const strideMultiplier = 0x9e3779b97f4a7c15

// Stride maps request index i onto a key index in [0, space). Space is
// rounded up to a power of two internally so the multiplicative walk is a
// true permutation; indices landing in the rounded-up tail fold back with a
// second step, preserving determinism.
func Stride(i uint64, space uint64) uint64 {
	if space == 0 {
		return 0
	}
	// Round space up to a power of two for the permutation walk.
	pow := uint64(1)
	for pow < space {
		pow <<= 1
	}
	mask := pow - 1
	// Cycle-walking: apply one full-cycle permutation until the value lands
	// inside [0, space). Using the same map for the first step and the fold
	// makes the composite a true bijection on [0, space); the map being a
	// single full cycle guarantees the walk reaches a value < space. (Pure
	// multiplication would not: it preserves 2-adic valuation, so it has
	// cycles that never leave the rounded-up tail.)
	step := func(v uint64) uint64 { return (v*strideMultiplier + 1) & mask }
	v := step(i)
	for v >= space {
		v = step(v)
	}
	return v
}

// Mix is splitmix64: a stateless, high-quality 64-bit mixer. The harness
// derives every per-request random decision (operation class, amounts,
// read targets) from Mix(seed, i), so request i is fully determined by the
// run's seed — no shared generator state between concurrent workers, and a
// replay with the same seed issues the identical request stream.
func Mix(seed, i uint64) uint64 {
	z := seed + (i+1)*strideMultiplier
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
