package workload

import "testing"

// Stride must be a bijection on [0, space) — every simulated entity is
// visited exactly once per pass — including spaces that are not powers of
// two (the cycle-walking fold).
func TestStrideIsPermutation(t *testing.T) {
	for _, space := range []uint64{1, 2, 10, 16, 1000, 1024, 4097} {
		seen := make(map[uint64]bool, space)
		for i := uint64(0); i < space; i++ {
			v := Stride(i, space)
			if v >= space {
				t.Fatalf("space %d: Stride(%d) = %d out of range", space, i, v)
			}
			if seen[v] {
				t.Fatalf("space %d: Stride(%d) = %d repeats before full pass", space, i, v)
			}
			seen[v] = true
		}
	}
}

// Successive indexes must land on well-separated keys, not an ascending run:
// the whole point of striding is to avoid accidental locality.
func TestStrideScatters(t *testing.T) {
	const space = 1 << 20
	adjacent := 0
	for i := uint64(1); i < 1000; i++ {
		a, b := Stride(i-1, space), Stride(i, space)
		d := a - b
		if b > a {
			d = b - a
		}
		if d < 2 {
			adjacent++
		}
	}
	if adjacent > 5 {
		t.Fatalf("%d of 1000 successive strides were adjacent keys", adjacent)
	}
}

func TestMixDeterministicAndSeedSensitive(t *testing.T) {
	if Mix(1, 42) != Mix(1, 42) {
		t.Fatal("Mix is not deterministic")
	}
	if Mix(1, 42) == Mix(2, 42) {
		t.Fatal("Mix ignores the seed")
	}
	if Mix(1, 42) == Mix(1, 43) {
		t.Fatal("Mix ignores the index")
	}
	// Cheap avalanche check: low bits should not be constant across indexes.
	var ones int
	for i := uint64(0); i < 64; i++ {
		ones += int(Mix(7, i) & 1)
	}
	if ones < 16 || ones > 48 {
		t.Fatalf("low bit heavily biased: %d/64 ones", ones)
	}
}
