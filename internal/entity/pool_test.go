package entity

import (
	"reflect"
	"testing"
)

// TestRecycleOwnershipSafety is the aliasing check for the chunk free list: a
// state whose chunks were handed to a clone must not recycle them, and a
// recycled private state must not leave its rows reachable through anything
// still live.
func TestRecycleOwnershipSafety(t *testing.T) {
	typ := orderType()
	base := NewState(Key{Type: "Order", ID: "O-1"})
	s1, _, err := Apply(typ, base, []Op{
		Set("customer", "C-1"),
		InsertChild("lineitems", "L1", Fields{"product": "widget", "qty": int64(2)}),
		InsertChild("lineitems", "L2", Fields{"product": "gadget", "qty": int64(5)}),
	}, Managed)
	if err != nil {
		t.Fatal(err)
	}

	// Clone revokes chunk ownership on both sides: recycling the source must
	// be a no-op and the clone's rows must stay intact afterwards.
	s2 := s1.Clone()
	wantRows := append([]Child(nil), s2.Children("lineitems")...)
	before := ChunkPoolStats()
	s1.Recycle()
	if got := ChunkPoolStats().Recycled; got != before.Recycled {
		t.Fatalf("clone-shared chunks recycled: %d -> %d", before.Recycled, got)
	}
	// Churn the pool so any wrongly-recycled chunk would be reused and
	// overwritten before the check.
	for i := 0; i < 8; i++ {
		ck := takeChunk(chunkSize)
		for j := range ck.rows {
			ck.rows[j] = Child{ID: "poison", Fields: Fields{"product": "poison"}}
		}
		putChunk(ck)
	}
	if got := s2.Children("lineitems"); !reflect.DeepEqual(got, wantRows) {
		t.Fatalf("clone rows corrupted after source Recycle:\nwant %v\n got %v", wantRows, got)
	}

	// A frozen state never recycles: its chunks may be shared arbitrarily.
	s2.Freeze()
	before = ChunkPoolStats()
	s2.Recycle()
	if got := ChunkPoolStats().Recycled; got != before.Recycled {
		t.Fatalf("frozen state recycled chunks: %d -> %d", before.Recycled, got)
	}
	if got := s2.Children("lineitems"); !reflect.DeepEqual(got, wantRows) {
		t.Fatal("Recycle on a frozen state emptied it")
	}
}

// TestRecyclePrivateState: a never-shared apply target releases its copied
// chunks, and the counters see the round trip.
func TestRecyclePrivateState(t *testing.T) {
	typ := orderType()
	before := ChunkPoolStats()
	s, _, err := Apply(typ, NewState(Key{Type: "Order", ID: "O-2"}), []Op{
		Set("customer", "C-2"),
		InsertChild("lineitems", "L1", Fields{"product": "widget", "qty": int64(1)}),
	}, Managed)
	if err != nil {
		t.Fatal(err)
	}
	s.Recycle()
	after := ChunkPoolStats()
	if after.Recycled <= before.Recycled {
		t.Fatalf("private chunks not recycled: %+v -> %+v", before, after)
	}
	// The emptied state holds nothing that could alias a future reuse.
	if len(s.Collections()) != 0 || s.Fields != nil {
		t.Fatalf("recycled state not emptied: %v / %v", s.Collections(), s.Fields)
	}
	// nil is a no-op, not a panic.
	var nilState *State
	nilState.Recycle()
}

// TestChunkPoolRoundTrip pins putChunk's scrubbing contract: a retired chunk
// comes back zero-length with every row reference dropped, and a reuse
// request wider than the recycled capacity falls back to a fresh allocation.
func TestChunkPoolRoundTrip(t *testing.T) {
	ck := takeChunk(3)
	if len(ck.rows) != 3 {
		t.Fatalf("takeChunk(3) gave %d rows", len(ck.rows))
	}
	ck.rows[0] = Child{ID: "x", Fields: Fields{"f": "v"}}
	before := ChunkPoolStats()
	putChunk(ck)
	if got := ChunkPoolStats().Recycled; got != before.Recycled+1 {
		t.Fatalf("putChunk not counted: %d -> %d", before.Recycled, got)
	}
	rows := ck.rows[:cap(ck.rows)]
	for i := range rows {
		if rows[i].ID != "" || rows[i].Fields != nil {
			t.Fatalf("row %d not scrubbed: %+v", i, rows[i])
		}
	}
	// Under -race sync.Pool intentionally drops items, so reuse is asserted
	// only structurally: whatever takeChunk returns must have the requested
	// length and scrubbed rows.
	ck2 := takeChunk(2)
	if len(ck2.rows) != 2 || ck2.rows[0].ID != "" || ck2.rows[1].Fields != nil {
		t.Fatalf("takeChunk after recycle returned dirty rows: %+v", ck2.rows)
	}
}

// TestApplyFailureRecyclesTarget: the chained-apply error path hands its
// abandoned copy back (see Apply), so repeated validation failures do not
// leak one chunk copy each.
func TestApplyFailureRecyclesTarget(t *testing.T) {
	typ := orderType()
	s, _, err := Apply(typ, NewState(Key{Type: "Order", ID: "O-3"}), []Op{
		Set("customer", "C-3"),
		InsertChild("lineitems", "L1", Fields{"product": "widget"}),
	}, Managed)
	if err != nil {
		t.Fatal(err)
	}
	s.Freeze()
	before := ChunkPoolStats()
	// Second op fails validation after the first copied the chunk; the
	// half-applied target must be recycled by Apply itself.
	if _, _, err := Apply(typ, s, []Op{
		InsertChild("lineitems", "L2", Fields{"product": "gadget"}),
		{Kind: OpSet, Field: "no-such-field", Value: "x"},
	}, Strict); err == nil {
		t.Fatal("invalid op accepted in strict mode")
	}
	after := ChunkPoolStats()
	if after.Recycled <= before.Recycled {
		t.Fatalf("failed apply leaked its private copy: %+v -> %+v", before, after)
	}
}
