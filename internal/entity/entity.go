// Package entity implements the business-object model the paper's principles
// are expressed against: hierarchical entities (an order and its line items),
// insert-only versioning (principle 2.7 "I remember it well"), operation
// descriptors that record what a transaction does rather than only its
// consequences (principle 2.8 "Beware the consequences"), tentative versions
// (principle 2.9 "I think I can"), and merge machinery for reconciling
// concurrent versions produced by solipsistic or subjective transactions
// (principle 2.10).
package entity

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/clock"
)

// Common errors returned by the entity layer.
var (
	// ErrUnknownField is returned when an operation touches a field the
	// schema does not declare.
	ErrUnknownField = errors.New("entity: unknown field")
	// ErrTypeMismatch is returned when a value does not match the declared
	// field type.
	ErrTypeMismatch = errors.New("entity: type mismatch")
	// ErrUnknownCollection is returned for child operations against an
	// undeclared child collection.
	ErrUnknownCollection = errors.New("entity: unknown child collection")
	// ErrMissingRequired is returned in strict mode when a required field is
	// absent.
	ErrMissingRequired = errors.New("entity: missing required field")
	// ErrDeleted is returned when operating on a tombstoned entity.
	ErrDeleted = errors.New("entity: entity is deleted")
	// ErrNoSuchChild is returned when an operation references a child id that
	// does not exist.
	ErrNoSuchChild = errors.New("entity: no such child")
)

// FieldType enumerates the scalar types an entity field may hold.
type FieldType int

// Supported field types.
const (
	String FieldType = iota
	Int
	Float
	Bool
	Reference // a foreign key: the key string of another entity
)

// String returns the type name.
func (t FieldType) String() string {
	switch t {
	case String:
		return "string"
	case Int:
		return "int"
	case Float:
		return "float"
	case Bool:
		return "bool"
	case Reference:
		return "reference"
	default:
		return fmt.Sprintf("FieldType(%d)", int(t))
	}
}

// Field declares one attribute of an entity or of a child row.
type Field struct {
	Name     string
	Type     FieldType
	Required bool
	// RefType names the entity type a Reference field points at. Referential
	// integrity against it is checked by the kernel in strict mode and turned
	// into a managed exception otherwise (principle 2.2).
	RefType string
}

// ChildCollection declares a hierarchical child set, e.g. the line items of
// an order. Children live inside the parent entity and are always updated in
// the same (single-entity) transaction as the parent (principle 2.5).
type ChildCollection struct {
	Name   string
	Fields []Field
}

// Type declares an entity type: its root fields and child collections.
type Type struct {
	Name     string
	Fields   []Field
	Children []ChildCollection
}

// Validate checks the type declaration itself for internal consistency.
func (t *Type) Validate() error {
	if t.Name == "" {
		return errors.New("entity: type name must not be empty")
	}
	seen := map[string]bool{}
	for _, f := range t.Fields {
		if f.Name == "" {
			return fmt.Errorf("entity: type %s has a field with an empty name", t.Name)
		}
		if seen[f.Name] {
			return fmt.Errorf("entity: type %s declares field %s twice", t.Name, f.Name)
		}
		seen[f.Name] = true
		if f.Type == Reference && f.RefType == "" {
			return fmt.Errorf("entity: reference field %s.%s needs RefType", t.Name, f.Name)
		}
	}
	childSeen := map[string]bool{}
	for _, c := range t.Children {
		if c.Name == "" {
			return fmt.Errorf("entity: type %s has a child collection with an empty name", t.Name)
		}
		if childSeen[c.Name] {
			return fmt.Errorf("entity: type %s declares child collection %s twice", t.Name, c.Name)
		}
		childSeen[c.Name] = true
		cf := map[string]bool{}
		for _, f := range c.Fields {
			if cf[f.Name] {
				return fmt.Errorf("entity: child %s.%s declares field %s twice", t.Name, c.Name, f.Name)
			}
			cf[f.Name] = true
		}
	}
	return nil
}

// field looks up a root field declaration.
func (t *Type) field(name string) (Field, bool) {
	for _, f := range t.Fields {
		if f.Name == name {
			return f, true
		}
	}
	return Field{}, false
}

// child looks up a child collection declaration.
func (t *Type) child(name string) (ChildCollection, bool) {
	for _, c := range t.Children {
		if c.Name == name {
			return c, true
		}
	}
	return ChildCollection{}, false
}

func (c ChildCollection) field(name string) (Field, bool) {
	for _, f := range c.Fields {
		if f.Name == name {
			return f, true
		}
	}
	return Field{}, false
}

// Key identifies an entity instance: its type name plus an application key.
type Key struct {
	Type string
	ID   string
}

// String renders the key as "Type/ID".
func (k Key) String() string { return k.Type + "/" + k.ID }

// ParseKey parses the output of Key.String.
func ParseKey(s string) (Key, error) {
	i := strings.IndexByte(s, '/')
	if i <= 0 || i == len(s)-1 {
		return Key{}, fmt.Errorf("entity: malformed key %q", s)
	}
	return Key{Type: s[:i], ID: s[i+1:]}, nil
}

// Fields is the attribute map of an entity root or child row.
type Fields map[string]interface{}

// Clone deep-copies the field map (values are scalars, so a shallow value
// copy suffices).
func (f Fields) Clone() Fields {
	out := make(Fields, len(f))
	for k, v := range f {
		out[k] = v
	}
	return out
}

// Child is one row of a child collection.
type Child struct {
	ID     string
	Fields Fields
	// Deleted marks a tombstoned child row (principle 2.7: deletes are marks,
	// not removals).
	Deleted bool
}

// Clone deep-copies the child.
func (c Child) Clone() Child {
	return Child{ID: c.ID, Fields: c.Fields.Clone(), Deleted: c.Deleted}
}

// State is the materialised current value of an entity: root fields plus all
// child collections. It is what a rollup over the version log produces.
type State struct {
	Key      Key
	Fields   Fields
	Children map[string][]Child
	// Deleted marks a tombstoned entity.
	Deleted bool
	// Tentative marks state resulting from tentative operations that have not
	// been confirmed (principle 2.9); it is visible and durable but may later
	// be marked obsolete.
	Tentative bool
}

// NewState returns an empty state for the given key.
func NewState(key Key) *State {
	return &State{Key: key, Fields: Fields{}, Children: map[string][]Child{}}
}

// Clone deep-copies the state.
func (s *State) Clone() *State {
	out := &State{Key: s.Key, Fields: s.Fields.Clone(), Children: make(map[string][]Child, len(s.Children)), Deleted: s.Deleted, Tentative: s.Tentative}
	for name, rows := range s.Children {
		copied := make([]Child, len(rows))
		for i, r := range rows {
			copied[i] = r.Clone()
		}
		out.Children[name] = copied
	}
	return out
}

// ChildByID returns the child row with the given id in the named collection.
func (s *State) ChildByID(collection, id string) (Child, bool) {
	for _, c := range s.Children[collection] {
		if c.ID == id {
			return c, true
		}
	}
	return Child{}, false
}

// LiveChildren returns the non-tombstoned rows of a collection.
func (s *State) LiveChildren(collection string) []Child {
	var out []Child
	for _, c := range s.Children[collection] {
		if !c.Deleted {
			out = append(out, c)
		}
	}
	return out
}

// Int returns the named root field as int64 (0 when absent or wrong type).
func (s *State) Int(field string) int64 {
	v, _ := s.Fields[field].(int64)
	return v
}

// Float returns the named root field as float64.
func (s *State) Float(field string) float64 {
	switch v := s.Fields[field].(type) {
	case float64:
		return v
	case int64:
		return float64(v)
	default:
		return 0
	}
}

// StringField returns the named root field as string.
func (s *State) StringField(field string) string {
	v, _ := s.Fields[field].(string)
	return v
}

// Bool returns the named root field as bool.
func (s *State) Bool(field string) bool {
	v, _ := s.Fields[field].(bool)
	return v
}

// OpKind enumerates the operation descriptors a transaction may record.
// Operations are the durable unit: the LSDB stores operations, and current
// state is their rollup (section 3.1).
type OpKind int

// Supported operation kinds.
const (
	// OpSet assigns a root field (register semantics, last-writer-wins on
	// merge).
	OpSet OpKind = iota
	// OpDelta adds a numeric amount to a root field (commutative; merges by
	// applying both sides, the paper's "commutative update strategy").
	OpDelta
	// OpInsertChild appends a child row.
	OpInsertChild
	// OpSetChildField assigns a field of an existing child row.
	OpSetChildField
	// OpDeltaChildField adds a numeric amount to a field of a child row.
	OpDeltaChildField
	// OpDeleteChild tombstones a child row.
	OpDeleteChild
	// OpDelete tombstones the whole entity.
	OpDelete
	// OpUndelete clears the entity tombstone.
	OpUndelete
	// OpMarkTentative flags the entity state as tentative (principle 2.9).
	OpMarkTentative
	// OpConfirm clears the tentative flag (the promise was kept).
	OpConfirm
)

// String returns the operation kind name.
func (k OpKind) String() string {
	names := [...]string{"set", "delta", "insert-child", "set-child-field",
		"delta-child-field", "delete-child", "delete", "undelete", "mark-tentative", "confirm"}
	if int(k) < len(names) {
		return names[k]
	}
	return fmt.Sprintf("OpKind(%d)", int(k))
}

// Op is one operation descriptor. The fields used depend on Kind.
type Op struct {
	Kind       OpKind
	Field      string
	Value      interface{}
	Delta      float64
	Collection string
	ChildID    string
	ChildRow   Fields
	// Describe optionally carries the business-level description of the
	// operation ("withdrawal of 50 from account A"), kept alongside the
	// mechanical effect per principle 2.8.
	Describe string
}

// Set returns an operation assigning a root field.
func Set(field string, value interface{}) Op { return Op{Kind: OpSet, Field: field, Value: value} }

// Delta returns a commutative numeric increment of a root field.
func Delta(field string, amount float64) Op { return Op{Kind: OpDelta, Field: field, Delta: amount} }

// InsertChild returns an operation appending a child row.
func InsertChild(collection, childID string, row Fields) Op {
	return Op{Kind: OpInsertChild, Collection: collection, ChildID: childID, ChildRow: row}
}

// SetChildField returns an operation assigning one field of a child row.
func SetChildField(collection, childID, field string, value interface{}) Op {
	return Op{Kind: OpSetChildField, Collection: collection, ChildID: childID, Field: field, Value: value}
}

// DeltaChildField returns a commutative increment of one field of a child row.
func DeltaChildField(collection, childID, field string, amount float64) Op {
	return Op{Kind: OpDeltaChildField, Collection: collection, ChildID: childID, Field: field, Delta: amount}
}

// DeleteChild returns an operation tombstoning a child row.
func DeleteChild(collection, childID string) Op {
	return Op{Kind: OpDeleteChild, Collection: collection, ChildID: childID}
}

// Delete returns an operation tombstoning the entity.
func Delete() Op { return Op{Kind: OpDelete} }

// Undelete returns an operation clearing the entity tombstone.
func Undelete() Op { return Op{Kind: OpUndelete} }

// MarkTentative returns an operation marking the state tentative.
func MarkTentative(describe string) Op { return Op{Kind: OpMarkTentative, Describe: describe} }

// Confirm returns an operation confirming previously tentative state.
func Confirm() Op { return Op{Kind: OpConfirm} }

// Described attaches a business description to the operation (principle 2.8).
func (o Op) Described(text string) Op {
	o.Describe = text
	return o
}

// Commutes reports whether the operation commutes with any other operation of
// the same shape on the same entity. Commutative operations are merged by
// replaying both sides; non-commutative ones need last-writer-wins or a
// custom merger.
func (o Op) Commutes() bool {
	switch o.Kind {
	case OpDelta, OpDeltaChildField, OpInsertChild:
		return true
	default:
		return false
	}
}

// String renders the operation for logs and apologies.
func (o Op) String() string {
	switch o.Kind {
	case OpSet:
		return fmt.Sprintf("set %s=%v", o.Field, o.Value)
	case OpDelta:
		return fmt.Sprintf("delta %s%+g", o.Field, o.Delta)
	case OpInsertChild:
		return fmt.Sprintf("insert %s[%s]", o.Collection, o.ChildID)
	case OpSetChildField:
		return fmt.Sprintf("set %s[%s].%s=%v", o.Collection, o.ChildID, o.Field, o.Value)
	case OpDeltaChildField:
		return fmt.Sprintf("delta %s[%s].%s%+g", o.Collection, o.ChildID, o.Field, o.Delta)
	case OpDeleteChild:
		return fmt.Sprintf("delete %s[%s]", o.Collection, o.ChildID)
	default:
		return o.Kind.String()
	}
}

// ValidationMode controls how schema and constraint violations are treated.
type ValidationMode int

// Validation modes.
const (
	// Strict rejects operations violating the schema (the conventional DMS
	// behaviour the paper argues against for early-lifecycle data).
	Strict ValidationMode = iota
	// Managed accepts the operation and reports the violation as a Warning so
	// the business process can handle it (principle 2.2 "Out-of-order works").
	Managed
)

// Warning describes a constraint violation that was accepted and must be
// handled by a later process step rather than blocking data entry.
type Warning struct {
	Key     Key
	Op      Op
	Problem string
}

// String renders the warning.
func (w Warning) String() string {
	return fmt.Sprintf("%s: %s (op %s)", w.Key, w.Problem, w.Op)
}

// Apply applies ops to a clone of prior and returns the new state plus any
// managed-mode warnings. In Strict mode the first violation aborts the whole
// application and the prior state is returned unchanged.
func Apply(typ *Type, prior *State, ops []Op, mode ValidationMode) (*State, []Warning, error) {
	next := prior.Clone()
	var warnings []Warning
	for _, op := range ops {
		w, err := applyOne(typ, next, op, mode)
		if err != nil {
			return prior, nil, fmt.Errorf("applying %s to %s: %w", op, prior.Key, err)
		}
		warnings = append(warnings, w...)
	}
	return next, warnings, nil
}

func applyOne(typ *Type, s *State, op Op, mode ValidationMode) ([]Warning, error) {
	var warnings []Warning
	warn := func(problem string) error {
		if mode == Strict {
			return errors.New(problem)
		}
		warnings = append(warnings, Warning{Key: s.Key, Op: op, Problem: problem})
		return nil
	}
	if s.Deleted && op.Kind != OpUndelete && op.Kind != OpDelete {
		if err := warn(ErrDeleted.Error()); err != nil {
			return nil, ErrDeleted
		}
	}
	switch op.Kind {
	case OpSet:
		f, ok := typ.field(op.Field)
		if !ok {
			if err := warn(fmt.Sprintf("%v: %s", ErrUnknownField, op.Field)); err != nil {
				return nil, ErrUnknownField
			}
			s.Fields[op.Field] = op.Value
			return warnings, nil
		}
		v, err := coerce(f.Type, op.Value)
		if err != nil {
			if werr := warn(err.Error()); werr != nil {
				return nil, err
			}
			return warnings, nil
		}
		s.Fields[op.Field] = v
	case OpDelta:
		f, ok := typ.field(op.Field)
		if ok && f.Type != Int && f.Type != Float {
			if err := warn(fmt.Sprintf("delta on non-numeric field %s", op.Field)); err != nil {
				return nil, ErrTypeMismatch
			}
			return warnings, nil
		}
		applyDelta(s.Fields, op.Field, op.Delta, !ok || f.Type == Float)
	case OpInsertChild:
		coll, ok := typ.child(op.Collection)
		if !ok {
			if err := warn(fmt.Sprintf("%v: %s", ErrUnknownCollection, op.Collection)); err != nil {
				return nil, ErrUnknownCollection
			}
			s.Children[op.Collection] = append(s.Children[op.Collection], Child{ID: op.ChildID, Fields: op.ChildRow.Clone()})
			return warnings, nil
		}
		row := Fields{}
		for k, v := range op.ChildRow {
			f, ok := coll.field(k)
			if !ok {
				if err := warn(fmt.Sprintf("%v: %s.%s", ErrUnknownField, op.Collection, k)); err != nil {
					return nil, ErrUnknownField
				}
				row[k] = v
				continue
			}
			cv, err := coerce(f.Type, v)
			if err != nil {
				if werr := warn(err.Error()); werr != nil {
					return nil, err
				}
				continue
			}
			row[k] = cv
		}
		for _, f := range coll.Fields {
			if f.Required {
				if _, present := row[f.Name]; !present {
					if err := warn(fmt.Sprintf("%v: %s.%s", ErrMissingRequired, op.Collection, f.Name)); err != nil {
						return nil, ErrMissingRequired
					}
				}
			}
		}
		if existing, ok := s.ChildByID(op.Collection, op.ChildID); ok && !existing.Deleted {
			// Insert of an existing id acts as an upsert of the provided
			// fields; insert-only storage still records the operation.
			for i := range s.Children[op.Collection] {
				if s.Children[op.Collection][i].ID == op.ChildID {
					for k, v := range row {
						s.Children[op.Collection][i].Fields[k] = v
					}
				}
			}
			return warnings, nil
		}
		s.Children[op.Collection] = append(s.Children[op.Collection], Child{ID: op.ChildID, Fields: row})
	case OpSetChildField, OpDeltaChildField:
		coll, collOK := typ.child(op.Collection)
		if !collOK {
			if err := warn(fmt.Sprintf("%v: %s", ErrUnknownCollection, op.Collection)); err != nil {
				return nil, ErrUnknownCollection
			}
		}
		idx := -1
		for i, c := range s.Children[op.Collection] {
			if c.ID == op.ChildID {
				idx = i
				break
			}
		}
		if idx < 0 {
			if err := warn(fmt.Sprintf("%v: %s[%s]", ErrNoSuchChild, op.Collection, op.ChildID)); err != nil {
				return nil, ErrNoSuchChild
			}
			// Managed mode: materialise the child so the update is not lost
			// (data arrived out of order, principle 2.2).
			s.Children[op.Collection] = append(s.Children[op.Collection], Child{ID: op.ChildID, Fields: Fields{}})
			idx = len(s.Children[op.Collection]) - 1
		}
		row := s.Children[op.Collection][idx].Fields
		if op.Kind == OpSetChildField {
			value := op.Value
			if collOK {
				if f, ok := coll.field(op.Field); ok {
					cv, err := coerce(f.Type, op.Value)
					if err != nil {
						if werr := warn(err.Error()); werr != nil {
							return nil, err
						}
						return warnings, nil
					}
					value = cv
				}
			}
			row[op.Field] = value
		} else {
			isFloat := true
			if collOK {
				if f, ok := coll.field(op.Field); ok {
					isFloat = f.Type == Float
				}
			}
			applyDelta(row, op.Field, op.Delta, isFloat)
		}
	case OpDeleteChild:
		found := false
		for i, c := range s.Children[op.Collection] {
			if c.ID == op.ChildID {
				s.Children[op.Collection][i].Deleted = true
				found = true
			}
		}
		if !found {
			if err := warn(fmt.Sprintf("%v: %s[%s]", ErrNoSuchChild, op.Collection, op.ChildID)); err != nil {
				return nil, ErrNoSuchChild
			}
		}
	case OpDelete:
		s.Deleted = true
	case OpUndelete:
		s.Deleted = false
	case OpMarkTentative:
		s.Tentative = true
	case OpConfirm:
		s.Tentative = false
	default:
		return nil, fmt.Errorf("entity: unsupported operation kind %v", op.Kind)
	}
	return warnings, nil
}

// applyDelta adds amount to the numeric field, creating it when absent.
func applyDelta(fields Fields, name string, amount float64, asFloat bool) {
	switch cur := fields[name].(type) {
	case int64:
		if asFloat {
			fields[name] = float64(cur) + amount
		} else {
			fields[name] = cur + int64(amount)
		}
	case float64:
		fields[name] = cur + amount
	default:
		if asFloat {
			fields[name] = amount
		} else {
			fields[name] = int64(amount)
		}
	}
}

// coerce converts a value into the declared field type, accepting the natural
// Go widenings (int → int64 → float64).
func coerce(t FieldType, v interface{}) (interface{}, error) {
	switch t {
	case String, Reference:
		s, ok := v.(string)
		if !ok {
			return nil, fmt.Errorf("%w: want string, got %T", ErrTypeMismatch, v)
		}
		return s, nil
	case Int:
		switch x := v.(type) {
		case int:
			return int64(x), nil
		case int64:
			return x, nil
		case float64:
			if x == float64(int64(x)) {
				return int64(x), nil
			}
			return nil, fmt.Errorf("%w: non-integral float %v for int field", ErrTypeMismatch, x)
		default:
			return nil, fmt.Errorf("%w: want int, got %T", ErrTypeMismatch, v)
		}
	case Float:
		switch x := v.(type) {
		case int:
			return float64(x), nil
		case int64:
			return float64(x), nil
		case float64:
			return x, nil
		default:
			return nil, fmt.Errorf("%w: want float, got %T", ErrTypeMismatch, v)
		}
	case Bool:
		b, ok := v.(bool)
		if !ok {
			return nil, fmt.Errorf("%w: want bool, got %T", ErrTypeMismatch, v)
		}
		return b, nil
	default:
		return nil, fmt.Errorf("%w: unknown field type %v", ErrTypeMismatch, t)
	}
}

// Version is one immutable entry in an entity's insert-only history: the
// operations performed, the resulting state, causal metadata and flags.
type Version struct {
	Key       Key
	Seq       uint64 // per-entity monotonically increasing sequence
	Ops       []Op
	State     *State
	Stamp     clock.Timestamp
	DVV       clock.DottedVersionVector
	Tentative bool
	// Obsolete marks a tentative version whose promise was withdrawn; it
	// stays in the history for audit and apology purposes.
	Obsolete bool
	// Origin names the node/replica that produced the version.
	Origin clock.NodeID
	// TxnID identifies the producing transaction for idempotence checks.
	TxnID string
}

// History is the insert-only version chain of one entity (principle 2.7).
type History struct {
	Key      Key
	Versions []*Version
}

// NewHistory returns an empty history for key.
func NewHistory(key Key) *History { return &History{Key: key} }

// Append adds a version; versions must be appended in Seq order per origin
// but the history tolerates interleaving from multiple replicas.
func (h *History) Append(v *Version) { h.Versions = append(h.Versions, v) }

// Latest returns the most recent non-obsolete version (nil when empty).
func (h *History) Latest() *Version {
	for i := len(h.Versions) - 1; i >= 0; i-- {
		if !h.Versions[i].Obsolete {
			return h.Versions[i]
		}
	}
	return nil
}

// Len returns the number of versions, including obsolete ones.
func (h *History) Len() int { return len(h.Versions) }

// AsOf returns the latest non-obsolete version whose timestamp does not
// exceed ts (nil if none).
func (h *History) AsOf(ts clock.Timestamp) *Version {
	var best *Version
	for _, v := range h.Versions {
		if v.Obsolete {
			continue
		}
		if v.Stamp.Compare(ts) == clock.After {
			continue
		}
		if best == nil || v.Stamp.Compare(best.Stamp) == clock.After {
			best = v
		}
	}
	return best
}

// ContainsTxn reports whether a version produced by txnID is already present,
// which is how idempotent re-application of at-least-once deliveries is
// detected (principle 2.4).
func (h *History) ContainsTxn(txnID string) bool {
	if txnID == "" {
		return false
	}
	for _, v := range h.Versions {
		if v.TxnID == txnID {
			return true
		}
	}
	return false
}

// Trace renders the history as a human-readable audit trail: the paper's
// negative-inventory example requires being able to show "the history that
// resulted in negative inventory levels" (principle 2.1).
func (h *History) Trace() []string {
	out := make([]string, 0, len(h.Versions))
	for _, v := range h.Versions {
		var ops []string
		for _, op := range v.Ops {
			if op.Describe != "" {
				ops = append(ops, op.Describe)
			} else {
				ops = append(ops, op.String())
			}
		}
		flag := ""
		if v.Obsolete {
			flag = " [obsolete]"
		} else if v.Tentative {
			flag = " [tentative]"
		}
		out = append(out, fmt.Sprintf("#%d %s by %s: %s%s", v.Seq, v.Stamp, v.Origin, strings.Join(ops, "; "), flag))
	}
	return out
}

// MergeStrategy selects how two concurrent states of the same entity are
// reconciled (principle 2.10: a single end-to-end conflict-handling
// mechanism).
type MergeStrategy int

// Supported merge strategies.
const (
	// LastWriterWins keeps the state with the larger HLC timestamp; the other
	// side's non-commutative effects are lost (and counted).
	LastWriterWins MergeStrategy = iota
	// OperationReplay reapplies both sides' operations on top of the common
	// base; commutative operations merge losslessly, conflicting register
	// writes fall back to timestamp order.
	OperationReplay
)

// String returns the strategy name.
func (m MergeStrategy) String() string {
	switch m {
	case LastWriterWins:
		return "last-writer-wins"
	case OperationReplay:
		return "operation-replay"
	default:
		return fmt.Sprintf("MergeStrategy(%d)", int(m))
	}
}

// MergeResult reports the outcome of reconciling two concurrent versions.
type MergeResult struct {
	State *State
	// LostOps counts operations whose effect was discarded by the merge
	// (e.g. the losing side of a register conflict). Zero means lossless.
	LostOps int
	// ConflictFields lists root fields where both sides wrote different
	// values non-commutatively.
	ConflictFields []string
}

// Merge reconciles two concurrent versions whose common ancestor produced
// base (base may be an empty state). Both versions' operations and stamps
// must be populated.
func Merge(typ *Type, base *State, a, b *Version, strategy MergeStrategy) (MergeResult, error) {
	switch strategy {
	case LastWriterWins:
		winner, loser := a, b
		if b.Stamp.Compare(a.Stamp) == clock.After {
			winner, loser = b, a
		}
		return MergeResult{State: winner.State.Clone(), LostOps: len(loser.Ops), ConflictFields: conflictFields(a, b)}, nil
	case OperationReplay:
		// Deterministic order: replay the earlier-stamped side first so both
		// replicas converge to the same result regardless of merge direction.
		first, second := a, b
		if b.Stamp.Compare(a.Stamp) == clock.Before {
			first, second = b, a
		}
		merged := base.Clone()
		lost := 0
		st, _, err := Apply(typ, merged, first.Ops, Managed)
		if err != nil {
			return MergeResult{}, fmt.Errorf("merge replay (first): %w", err)
		}
		st, _, err = Apply(typ, st, second.Ops, Managed)
		if err != nil {
			return MergeResult{}, fmt.Errorf("merge replay (second): %w", err)
		}
		conflicts := conflictFields(a, b)
		// Register conflicts: the later write wins during replay; count the
		// earlier side's overwritten sets as lost.
		for _, f := range conflicts {
			for _, op := range first.Ops {
				if op.Kind == OpSet && op.Field == f {
					lost++
				}
			}
		}
		return MergeResult{State: st, LostOps: lost, ConflictFields: conflicts}, nil
	default:
		return MergeResult{}, fmt.Errorf("entity: unknown merge strategy %v", strategy)
	}
}

// conflictFields returns root fields written non-commutatively by both sides
// with different values.
func conflictFields(a, b *Version) []string {
	setsA := map[string]interface{}{}
	for _, op := range a.Ops {
		if op.Kind == OpSet {
			setsA[op.Field] = op.Value
		}
	}
	var out []string
	seen := map[string]bool{}
	for _, op := range b.Ops {
		if op.Kind != OpSet {
			continue
		}
		if va, ok := setsA[op.Field]; ok && va != op.Value && !seen[op.Field] {
			out = append(out, op.Field)
			seen[op.Field] = true
		}
	}
	sort.Strings(out)
	return out
}
