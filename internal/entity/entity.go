// Package entity implements the business-object model the paper's principles
// are expressed against: hierarchical entities (an order and its line items),
// insert-only versioning (principle 2.7 "I remember it well"), operation
// descriptors that record what a transaction does rather than only its
// consequences (principle 2.8 "Beware the consequences"), tentative versions
// (principle 2.9 "I think I can"), and merge machinery for reconciling
// concurrent versions produced by solipsistic or subjective transactions
// (principle 2.10).
package entity

import (
	"errors"
	"fmt"
	"math"
	"reflect"
	"sort"
	"strings"

	"repro/internal/clock"
)

// Common errors returned by the entity layer.
var (
	// ErrUnknownField is returned when an operation touches a field the
	// schema does not declare.
	ErrUnknownField = errors.New("entity: unknown field")
	// ErrTypeMismatch is returned when a value does not match the declared
	// field type.
	ErrTypeMismatch = errors.New("entity: type mismatch")
	// ErrUnknownCollection is returned for child operations against an
	// undeclared child collection.
	ErrUnknownCollection = errors.New("entity: unknown child collection")
	// ErrMissingRequired is returned in strict mode when a required field is
	// absent.
	ErrMissingRequired = errors.New("entity: missing required field")
	// ErrDeleted is returned when operating on a tombstoned entity.
	ErrDeleted = errors.New("entity: entity is deleted")
	// ErrNoSuchChild is returned when an operation references a child id that
	// does not exist.
	ErrNoSuchChild = errors.New("entity: no such child")
	// ErrUnsafeValue is returned when an operation carries a value that is
	// neither a scalar nor a supported container. Such values cannot be
	// safely shared between the sealed log, the state cache and callers.
	ErrUnsafeValue = errors.New("entity: non-scalar operation value")
)

// FieldType enumerates the scalar types an entity field may hold.
type FieldType int

// Supported field types.
const (
	String FieldType = iota
	Int
	Float
	Bool
	Reference // a foreign key: the key string of another entity
)

// String returns the type name.
func (t FieldType) String() string {
	switch t {
	case String:
		return "string"
	case Int:
		return "int"
	case Float:
		return "float"
	case Bool:
		return "bool"
	case Reference:
		return "reference"
	default:
		return fmt.Sprintf("FieldType(%d)", int(t))
	}
}

// Field declares one attribute of an entity or of a child row.
type Field struct {
	Name     string
	Type     FieldType
	Required bool
	// RefType names the entity type a Reference field points at. Referential
	// integrity against it is checked by the kernel in strict mode and turned
	// into a managed exception otherwise (principle 2.2).
	RefType string
}

// ChildCollection declares a hierarchical child set, e.g. the line items of
// an order. Children live inside the parent entity and are always updated in
// the same (single-entity) transaction as the parent (principle 2.5).
type ChildCollection struct {
	Name   string
	Fields []Field
}

// Type declares an entity type: its root fields and child collections.
type Type struct {
	Name     string
	Fields   []Field
	Children []ChildCollection
}

// Validate checks the type declaration itself for internal consistency.
func (t *Type) Validate() error {
	if t.Name == "" {
		return errors.New("entity: type name must not be empty")
	}
	seen := map[string]bool{}
	for _, f := range t.Fields {
		if f.Name == "" {
			return fmt.Errorf("entity: type %s has a field with an empty name", t.Name)
		}
		if seen[f.Name] {
			return fmt.Errorf("entity: type %s declares field %s twice", t.Name, f.Name)
		}
		seen[f.Name] = true
		if f.Type == Reference && f.RefType == "" {
			return fmt.Errorf("entity: reference field %s.%s needs RefType", t.Name, f.Name)
		}
	}
	childSeen := map[string]bool{}
	for _, c := range t.Children {
		if c.Name == "" {
			return fmt.Errorf("entity: type %s has a child collection with an empty name", t.Name)
		}
		if childSeen[c.Name] {
			return fmt.Errorf("entity: type %s declares child collection %s twice", t.Name, c.Name)
		}
		childSeen[c.Name] = true
		cf := map[string]bool{}
		for _, f := range c.Fields {
			if cf[f.Name] {
				return fmt.Errorf("entity: child %s.%s declares field %s twice", t.Name, c.Name, f.Name)
			}
			cf[f.Name] = true
		}
	}
	return nil
}

// field looks up a root field declaration.
func (t *Type) field(name string) (Field, bool) {
	for _, f := range t.Fields {
		if f.Name == name {
			return f, true
		}
	}
	return Field{}, false
}

// child looks up a child collection declaration.
func (t *Type) child(name string) (ChildCollection, bool) {
	for _, c := range t.Children {
		if c.Name == name {
			return c, true
		}
	}
	return ChildCollection{}, false
}

func (c ChildCollection) field(name string) (Field, bool) {
	for _, f := range c.Fields {
		if f.Name == name {
			return f, true
		}
	}
	return Field{}, false
}

// Key identifies an entity instance: its type name plus an application key.
type Key struct {
	Type string
	ID   string
}

// String renders the key as "Type/ID".
func (k Key) String() string { return k.Type + "/" + k.ID }

// ParseKey parses the output of Key.String.
func ParseKey(s string) (Key, error) {
	i := strings.IndexByte(s, '/')
	if i <= 0 || i == len(s)-1 {
		return Key{}, fmt.Errorf("entity: malformed key %q", s)
	}
	return Key{Type: s[:i], ID: s[i+1:]}, nil
}

// Fields is the attribute map of an entity root or child row.
type Fields map[string]interface{}

// Clone copies the field map. Values are normally scalars (a shallow value
// copy); the supported container types (nested Fields, map[string]interface{},
// []interface{}) are copied recursively so a clone never aliases mutable data
// with its source. Unsupported non-scalar kinds are rejected before they can
// enter a state (see SanitizeOps), so passing them through here is safe.
func (f Fields) Clone() Fields {
	out := make(Fields, len(f))
	for k, v := range f {
		out[k] = cloneValue(v)
	}
	return out
}

// cloneValue deep-copies container values and passes scalars through.
func cloneValue(v interface{}) interface{} {
	switch x := v.(type) {
	case Fields:
		return x.Clone()
	case map[string]interface{}:
		out := make(map[string]interface{}, len(x))
		for k, e := range x {
			out[k] = cloneValue(e)
		}
		return out
	case []interface{}:
		out := make([]interface{}, len(x))
		for i, e := range x {
			out[i] = cloneValue(e)
		}
		return out
	default:
		return v
	}
}

// Child is one row of a child collection.
type Child struct {
	ID     string
	Fields Fields
	// Deleted marks a tombstoned child row (principle 2.7: deletes are marks,
	// not removals).
	Deleted bool
}

// Clone deep-copies the child.
func (c Child) Clone() Child {
	return Child{ID: c.ID, Fields: c.Fields.Clone(), Deleted: c.Deleted}
}

// chunkSize is the number of child rows per chunk. Copy-on-write operates at
// chunk granularity: a write to one row copies at most one chunk, so the cost
// of Apply is proportional to the chunks it touches, not the collection width.
const chunkSize = 64

// reindexAfter bounds the unindexed tail of a collection. Once this many rows
// sit beyond the frozen id index, the next insert rebuilds the index, keeping
// ChildByID an O(1) map hit plus a bounded tail scan.
const reindexAfter = 64

// chunk is a run of up to chunkSize child rows. Chunks are shared structurally
// between state versions and never mutated while shared; a mutable state
// deep-copies a chunk the first time it writes into it.
type chunk struct {
	rows []Child
}

// collection is the copy-on-write container of one child collection. Rows are
// append-only (deletes tombstone in place), so a row's position is stable for
// the lifetime of the collection and chunk boundaries never move.
type collection struct {
	chunks []*chunk
	n      int // rows visible in this version
	live   int // rows not tombstoned
	// index maps a child id to its first position, covering rows [0, indexed).
	// It is immutable once built: inserts land in the tail and a fresh index
	// is built (in the inserting version) when the tail reaches reindexAfter.
	index   map[string]int
	indexed int
	// dups counts ids that occur on more than one row (insert after delete, or
	// raw appends into undeclared collections); deletes fall back to a full
	// scan only when it is non-zero.
	dups int
	// owned marks chunks this header's owner may mutate in place. Meaningful
	// only inside a mutable state that owns the header; always stale on shared
	// headers, which are never written.
	owned []bool
}

// header returns a copy of the collection bookkeeping with all chunks shared
// and unowned.
func (c *collection) header() *collection {
	return &collection{
		chunks:  append([]*chunk(nil), c.chunks...),
		n:       c.n,
		live:    c.live,
		index:   c.index,
		indexed: c.indexed,
		dups:    c.dups,
		owned:   make([]bool, len(c.chunks)),
	}
}

// deepCopy fully materialises the collection: every chunk and row map is
// private to the copy. The frozen index is shared (it is immutable).
func (c *collection) deepCopy() *collection {
	out := c.header()
	for i := range out.chunks {
		out.copyChunk(i)
	}
	return out
}

// rowAt returns the row at a position for reading. The returned pointer must
// not be written through unless the chunk is owned (use mutRow).
func (c *collection) rowAt(pos int) *Child {
	return &c.chunks[pos/chunkSize].rows[pos%chunkSize]
}

// copyChunk replaces chunk ci with a deep copy the owner may write to. The
// copy is sized to its current rows — narrow collections stay narrow; append
// growth re-allocates amortised up to the chunkSize bound.
func (c *collection) copyChunk(ci int) {
	old := c.chunks[ci]
	ck := takeChunk(len(old.rows))
	for i, r := range old.rows {
		ck.rows[i] = r.Clone()
	}
	c.chunks[ci] = ck
	c.owned[ci] = true
}

// mutRow returns a writable pointer to the row at pos, copying its chunk
// first if it is still shared. Only call on an owned header.
func (c *collection) mutRow(pos int) *Child {
	ci := pos / chunkSize
	if !c.owned[ci] {
		c.copyChunk(ci)
	}
	return &c.chunks[ci].rows[pos%chunkSize]
}

// find returns the first position holding id (tombstoned rows included,
// matching scan order): an index hit for the indexed prefix, then a bounded
// scan of the unindexed tail.
func (c *collection) find(id string) (int, bool) {
	if c == nil {
		return 0, false
	}
	if c.index != nil {
		if pos, ok := c.index[id]; ok && pos < c.n && c.rowAt(pos).ID == id {
			return pos, true
		}
	}
	for pos := c.indexed; pos < c.n; pos++ {
		if c.rowAt(pos).ID == id {
			return pos, true
		}
	}
	return 0, false
}

// appendRow appends a child row, tracking duplicate ids and maintaining the
// index. Only call on an owned header.
func (c *collection) appendRow(ch Child) {
	if _, ok := c.find(ch.ID); ok {
		c.dups++
	}
	ci := c.n / chunkSize
	if ci == len(c.chunks) {
		// Row capacity grows with append's amortised doubling; the position
		// math (pos/chunkSize) caps every chunk at chunkSize rows, so narrow
		// collections never pay for a full-width backing array.
		c.chunks = append(c.chunks, takeChunk(0))
		c.owned = append(c.owned, true)
	} else if !c.owned[ci] {
		c.copyChunk(ci)
	}
	ck := c.chunks[ci]
	ck.rows = append(ck.rows, ch)
	c.n++
	if !ch.Deleted {
		c.live++
	}
	if c.n-c.indexed >= reindexAfter {
		c.reindex()
	}
}

// reindex builds a fresh id -> first-position map over all rows. The map is
// private to the building version until the version is frozen; shared index
// maps are never mutated.
func (c *collection) reindex() {
	idx := make(map[string]int, c.n)
	for pos := 0; pos < c.n; pos++ {
		id := c.rowAt(pos).ID
		if _, ok := idx[id]; !ok {
			idx[id] = pos
		}
	}
	c.index = idx
	c.indexed = c.n
}

// each calls fn with every row in insertion order.
func (c *collection) each(fn func(*Child)) {
	if c == nil {
		return
	}
	pos := 0
	for _, ck := range c.chunks {
		for i := range ck.rows {
			if pos >= c.n {
				return
			}
			fn(&ck.rows[i])
			pos++
		}
	}
}

// State is the materialised current value of an entity: root fields plus all
// child collections. It is what a rollup over the version log produces.
//
// States are copy-on-write values with structural sharing. A state is either
// mutable (freshly built, cloned or thawed — owned by one goroutine) or
// frozen (immutable forever, safe to share between goroutines without
// copying). The read path hands out frozen states directly; callers that
// want to modify one must Thaw it first and mutate only through Apply and
// the root Fields map/flags of the thawed copy. Child rows returned by
// ChildByID, LiveChildren and Children are read-only views into shared
// chunks — never write through them.
type State struct {
	Key    Key
	Fields Fields
	// children maps collection name to its copy-on-write container. The map
	// itself is private to each state; the containers are shared until
	// written.
	children map[string]*collection
	// Deleted marks a tombstoned entity.
	Deleted bool
	// Tentative marks state resulting from tentative operations that have not
	// been confirmed (principle 2.9); it is visible and durable but may later
	// be marked obsolete.
	Tentative bool
	// frozen is the generation flag: once set, the state (and everything
	// reachable from it) is immutable and may be shared freely.
	frozen bool
	// owned marks collections whose header this state may mutate in place.
	// nil on frozen or freshly cloned states.
	owned map[string]bool
}

// NewState returns an empty mutable state for the given key.
func NewState(key Key) *State {
	return &State{Key: key, Fields: Fields{}, children: map[string]*collection{}}
}

// Freeze marks the state immutable and returns it. A frozen state may be
// shared between goroutines and versions without copying; mutating it through
// the entity API panics. Freezing is idempotent.
func (s *State) Freeze() *State {
	if s.frozen {
		return s
	}
	s.frozen = true
	s.owned = nil
	return s
}

// Frozen reports whether the state is immutable.
func (s *State) Frozen() bool { return s.frozen }

// Thaw returns a state the caller may mutate: the state itself when it is
// already mutable, otherwise a structural-sharing copy (O(collections), not
// O(rows)) whose writes copy only what they touch.
func (s *State) Thaw() *State {
	if !s.frozen {
		return s
	}
	return s.Clone()
}

// Clone returns a mutable copy of the state in O(collections + root fields):
// the root field map is copied, child chunks are shared and copied lazily on
// write. Cloning a mutable state revokes the source's in-place write
// ownership, so later writes to either side copy-on-write instead of
// corrupting the other.
func (s *State) Clone() *State {
	if !s.frozen {
		// The source keeps working but now shares its chunks with the clone;
		// its next write re-copies. Frozen sources are never written, so this
		// stays read-only for them (and therefore goroutine-safe).
		s.owned = nil
	}
	out := &State{
		Key:       s.Key,
		Fields:    s.Fields.Clone(),
		children:  make(map[string]*collection, len(s.children)),
		Deleted:   s.Deleted,
		Tentative: s.Tentative,
	}
	for name, c := range s.children {
		out.children[name] = c
	}
	return out
}

// DeepClone returns a mutable copy sharing no mutable structure with the
// source: every chunk and row map is copied eagerly. It exists as the
// pre-copy-on-write baseline for experiments E15/E16 and for callers that
// need a fully detached value.
func (s *State) DeepClone() *State {
	out := &State{
		Key:       s.Key,
		Fields:    s.Fields.Clone(),
		children:  make(map[string]*collection, len(s.children)),
		Deleted:   s.Deleted,
		Tentative: s.Tentative,
		owned:     make(map[string]bool, len(s.children)),
	}
	for name, c := range s.children {
		out.children[name] = c.deepCopy()
		out.owned[name] = true
	}
	return out
}

// mutableCol returns the named collection with an owned header, creating it
// when absent and copying the shared header on first write.
func (s *State) mutableCol(name string) *collection {
	if s.frozen {
		panic("entity: write to frozen State (Thaw it first)")
	}
	c := s.children[name]
	if c != nil && s.owned[name] {
		return c
	}
	if c == nil {
		c = &collection{}
	} else {
		c = c.header()
	}
	if s.children == nil {
		s.children = map[string]*collection{}
	}
	s.children[name] = c
	if s.owned == nil {
		s.owned = map[string]bool{}
	}
	s.owned[name] = true
	return c
}

// ChildByID returns the child row with the given id in the named collection
// (first match in insertion order, tombstoned rows included). The row is a
// read-only view; do not write through its Fields map.
func (s *State) ChildByID(collection, id string) (Child, bool) {
	c := s.children[collection]
	if pos, ok := c.find(id); ok {
		return *c.rowAt(pos), true
	}
	return Child{}, false
}

// LiveChildren returns the non-tombstoned rows of a collection in insertion
// order. The rows are read-only views into shared structure.
func (s *State) LiveChildren(collection string) []Child {
	c := s.children[collection]
	if c == nil || c.live == 0 {
		return nil
	}
	out := make([]Child, 0, c.live)
	c.each(func(ch *Child) {
		if !ch.Deleted {
			out = append(out, *ch)
		}
	})
	return out
}

// Children returns every row of a collection, tombstoned ones included, in
// insertion order. The rows are read-only views into shared structure.
func (s *State) Children(collection string) []Child {
	c := s.children[collection]
	if c == nil || c.n == 0 {
		return nil
	}
	out := make([]Child, 0, c.n)
	c.each(func(ch *Child) { out = append(out, *ch) })
	return out
}

// ChildCount returns the number of rows in a collection, tombstones included.
func (s *State) ChildCount(collection string) int {
	c := s.children[collection]
	if c == nil {
		return 0
	}
	return c.n
}

// Collections returns the names of the state's child collections, sorted.
func (s *State) Collections() []string {
	out := make([]string, 0, len(s.children))
	for name := range s.children {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// insertChild applies insert/upsert semantics for a declared collection: a
// live row with the same id is merged field-wise, anything else appends.
func (s *State) insertChild(collection, id string, row Fields) {
	c := s.mutableCol(collection)
	if pos, ok := c.find(id); ok && !c.rowAt(pos).Deleted {
		m := c.mutRow(pos)
		for k, v := range row {
			m.Fields[k] = v
		}
		return
	}
	if row == nil {
		row = Fields{}
	}
	c.appendRow(Child{ID: id, Fields: row})
}

// appendChild appends a row without upsert semantics (undeclared collections
// keep the raw append behaviour).
func (s *State) appendChild(collection string, ch Child) {
	s.mutableCol(collection).appendRow(ch)
}

// RestoreChild appends a raw child row — tombstone flag and all — to a
// mutable state, bypassing upsert semantics. It exists for import codecs
// (the storage checkpoint reader, the JSON summary codec) that rebuild a
// state row-for-row from its serialised form; normal writes go through
// Apply. Ownership of the row transfers to the state: the caller must not
// retain or mutate ch.Fields afterwards. Decoders hand over freshly built
// maps, so skipping the defensive clone halves their row allocations on the
// recovery path.
func (s *State) RestoreChild(collection string, ch Child) {
	if ch.Fields == nil {
		ch.Fields = Fields{}
	}
	s.appendChild(collection, ch)
}

// deleteChild tombstones every row carrying the id, reporting whether any row
// matched. The common single-occurrence case touches one chunk. The position
// found on the shared header stays valid after mutableCol: the header copy
// preserves chunk layout exactly.
func (s *State) deleteChild(collection, id string) bool {
	pos, ok := s.children[collection].find(id)
	if !ok {
		return false
	}
	c := s.mutableCol(collection)
	if c.dups == 0 {
		r := c.mutRow(pos)
		if !r.Deleted {
			r.Deleted = true
			c.live--
		}
		return true
	}
	for pos := 0; pos < c.n; pos++ {
		if c.rowAt(pos).ID == id {
			r := c.mutRow(pos)
			if !r.Deleted {
				r.Deleted = true
				c.live--
			}
		}
	}
	return true
}

// Int returns the named root field as int64 (0 when absent or wrong type).
func (s *State) Int(field string) int64 {
	v, _ := s.Fields[field].(int64)
	return v
}

// Float returns the named root field as float64.
func (s *State) Float(field string) float64 {
	switch v := s.Fields[field].(type) {
	case float64:
		return v
	case int64:
		return float64(v)
	default:
		return 0
	}
}

// StringField returns the named root field as string.
func (s *State) StringField(field string) string {
	v, _ := s.Fields[field].(string)
	return v
}

// Bool returns the named root field as bool.
func (s *State) Bool(field string) bool {
	v, _ := s.Fields[field].(bool)
	return v
}

// OpKind enumerates the operation descriptors a transaction may record.
// Operations are the durable unit: the LSDB stores operations, and current
// state is their rollup (section 3.1).
type OpKind int

// Supported operation kinds.
const (
	// OpSet assigns a root field (register semantics, last-writer-wins on
	// merge).
	OpSet OpKind = iota
	// OpDelta adds a numeric amount to a root field (commutative; merges by
	// applying both sides, the paper's "commutative update strategy").
	OpDelta
	// OpInsertChild appends a child row.
	OpInsertChild
	// OpSetChildField assigns a field of an existing child row.
	OpSetChildField
	// OpDeltaChildField adds a numeric amount to a field of a child row.
	OpDeltaChildField
	// OpDeleteChild tombstones a child row.
	OpDeleteChild
	// OpDelete tombstones the whole entity.
	OpDelete
	// OpUndelete clears the entity tombstone.
	OpUndelete
	// OpMarkTentative flags the entity state as tentative (principle 2.9).
	OpMarkTentative
	// OpConfirm clears the tentative flag (the promise was kept).
	OpConfirm
)

// String returns the operation kind name.
func (k OpKind) String() string {
	names := [...]string{"set", "delta", "insert-child", "set-child-field",
		"delta-child-field", "delete-child", "delete", "undelete", "mark-tentative", "confirm"}
	if int(k) < len(names) {
		return names[k]
	}
	return fmt.Sprintf("OpKind(%d)", int(k))
}

// Op is one operation descriptor. The fields used depend on Kind.
type Op struct {
	Kind       OpKind
	Field      string
	Value      interface{}
	Delta      float64
	Collection string
	ChildID    string
	ChildRow   Fields
	// Describe optionally carries the business-level description of the
	// operation ("withdrawal of 50 from account A"), kept alongside the
	// mechanical effect per principle 2.8.
	Describe string
}

// safeValue deep-copies supported container values so an op never aliases
// caller-owned mutable data, and passes everything else through. Unsupported
// kinds are not detected here (constructors cannot fail); SanitizeOps rejects
// them before a record is sealed.
func safeValue(v interface{}) interface{} {
	switch v.(type) {
	case Fields, map[string]interface{}, []interface{}:
		return cloneValue(v)
	default:
		return v
	}
}

// canonNumber maps the accepted numeric widths onto the canonical scalar set
// records are stored with: every integral kind becomes int64 (uint64 values
// above MaxInt64 keep their own identity so the magnitude survives exactly)
// and float32 widens to float64. One canonical form everywhere means the
// in-memory log, the state cache and the durable codecs all agree
// bit-for-bit — a store recovered from disk is byte-identical to the one
// that wrote it. ok is false for non-numeric values.
func canonNumber(v interface{}) (interface{}, bool) {
	switch x := v.(type) {
	case int:
		return int64(x), true
	case int8:
		return int64(x), true
	case int16:
		return int64(x), true
	case int32:
		return int64(x), true
	case uint8:
		return int64(x), true
	case uint16:
		return int64(x), true
	case uint32:
		return int64(x), true
	case uint:
		if uint64(x) > math.MaxInt64 {
			return uint64(x), true
		}
		return int64(x), true
	case uint64:
		if x > math.MaxInt64 {
			return x, true
		}
		return int64(x), true
	case float32:
		return float64(x), true
	default:
		return v, false
	}
}

// checkValue verifies a value is a scalar or a supported container (checked
// recursively) and returns a copy that shares no mutable structure with the
// input, numeric widths canonicalised (see canonNumber).
func checkValue(v interface{}) (interface{}, error) {
	switch x := v.(type) {
	case nil, bool, string, int64, float64:
		return v, nil
	case int, int8, int16, int32,
		uint, uint8, uint16, uint32, uint64,
		float32:
		cv, _ := canonNumber(v)
		return cv, nil
	case Fields:
		out, err := checkRow(x)
		return out, err
	case map[string]interface{}:
		out := make(map[string]interface{}, len(x))
		for k, e := range x {
			ce, err := checkValue(e)
			if err != nil {
				return nil, err
			}
			out[k] = ce
		}
		return out, nil
	case []interface{}:
		out := make([]interface{}, len(x))
		for i, e := range x {
			ce, err := checkValue(e)
			if err != nil {
				return nil, err
			}
			out[i] = ce
		}
		return out, nil
	default:
		return nil, fmt.Errorf("%w: %T", ErrUnsafeValue, v)
	}
}

func checkRow(row Fields) (Fields, error) {
	if row == nil {
		return nil, nil
	}
	out := make(Fields, len(row))
	for k, v := range row {
		cv, err := checkValue(v)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", k, err)
		}
		out[k] = cv
	}
	return out, nil
}

// SanitizeOps validates that every value carried by the operations is a
// scalar or a supported container and returns operations whose values share
// no mutable structure with the input. The store calls this before sealing a
// record, so a caller mutating a slice or map it passed into an op can never
// reach into the log or the state cache. Numeric widths are canonicalised on
// the way in (canonNumber), so a sealed record carries the same bytes the
// durable codecs reproduce on recovery. The input slice is returned
// unchanged when no value needed copying or converting.
func SanitizeOps(ops []Op) ([]Op, error) {
	out := ops
	copied := false
	for i, op := range ops {
		needsCopy := false
		var value interface{}
		var row Fields
		switch op.Value.(type) {
		case nil, bool, string, int64, float64:
			value = op.Value
		default:
			if cv, isNum := canonNumber(op.Value); isNum {
				value, needsCopy = cv, true
			} else {
				v, err := checkValue(op.Value)
				if err != nil {
					return nil, fmt.Errorf("op %s: %w", op, err)
				}
				value, needsCopy = v, true
			}
		}
		if op.ChildRow != nil {
			r, err := checkRow(op.ChildRow)
			if err != nil {
				return nil, fmt.Errorf("op %s: %w", op, err)
			}
			row, needsCopy = r, true
		}
		if !needsCopy {
			continue
		}
		if !copied {
			out = append([]Op(nil), ops...)
			copied = true
		}
		out[i].Value = value
		out[i].ChildRow = row
	}
	return out, nil
}

// Set returns an operation assigning a root field.
func Set(field string, value interface{}) Op {
	return Op{Kind: OpSet, Field: field, Value: safeValue(value)}
}

// Delta returns a commutative numeric increment of a root field.
func Delta(field string, amount float64) Op { return Op{Kind: OpDelta, Field: field, Delta: amount} }

// InsertChild returns an operation appending a child row. The row map is
// copied, so the caller may keep mutating its own map afterwards.
func InsertChild(collection, childID string, row Fields) Op {
	return Op{Kind: OpInsertChild, Collection: collection, ChildID: childID, ChildRow: row.Clone()}
}

// SetChildField returns an operation assigning one field of a child row.
func SetChildField(collection, childID, field string, value interface{}) Op {
	return Op{Kind: OpSetChildField, Collection: collection, ChildID: childID, Field: field, Value: safeValue(value)}
}

// DeltaChildField returns a commutative increment of one field of a child row.
func DeltaChildField(collection, childID, field string, amount float64) Op {
	return Op{Kind: OpDeltaChildField, Collection: collection, ChildID: childID, Field: field, Delta: amount}
}

// DeleteChild returns an operation tombstoning a child row.
func DeleteChild(collection, childID string) Op {
	return Op{Kind: OpDeleteChild, Collection: collection, ChildID: childID}
}

// Delete returns an operation tombstoning the entity.
func Delete() Op { return Op{Kind: OpDelete} }

// Undelete returns an operation clearing the entity tombstone.
func Undelete() Op { return Op{Kind: OpUndelete} }

// MarkTentative returns an operation marking the state tentative.
func MarkTentative(describe string) Op { return Op{Kind: OpMarkTentative, Describe: describe} }

// Confirm returns an operation confirming previously tentative state.
func Confirm() Op { return Op{Kind: OpConfirm} }

// Described attaches a business description to the operation (principle 2.8).
func (o Op) Described(text string) Op {
	o.Describe = text
	return o
}

// Commutes reports whether the operation commutes with any other operation of
// the same shape on the same entity. Commutative operations are merged by
// replaying both sides; non-commutative ones need last-writer-wins or a
// custom merger.
func (o Op) Commutes() bool {
	switch o.Kind {
	case OpDelta, OpDeltaChildField, OpInsertChild:
		return true
	default:
		return false
	}
}

// String renders the operation for logs and apologies.
func (o Op) String() string {
	switch o.Kind {
	case OpSet:
		return fmt.Sprintf("set %s=%v", o.Field, o.Value)
	case OpDelta:
		return fmt.Sprintf("delta %s%+g", o.Field, o.Delta)
	case OpInsertChild:
		return fmt.Sprintf("insert %s[%s]", o.Collection, o.ChildID)
	case OpSetChildField:
		return fmt.Sprintf("set %s[%s].%s=%v", o.Collection, o.ChildID, o.Field, o.Value)
	case OpDeltaChildField:
		return fmt.Sprintf("delta %s[%s].%s%+g", o.Collection, o.ChildID, o.Field, o.Delta)
	case OpDeleteChild:
		return fmt.Sprintf("delete %s[%s]", o.Collection, o.ChildID)
	default:
		return o.Kind.String()
	}
}

// ValidationMode controls how schema and constraint violations are treated.
type ValidationMode int

// Validation modes.
const (
	// Strict rejects operations violating the schema (the conventional DMS
	// behaviour the paper argues against for early-lifecycle data).
	Strict ValidationMode = iota
	// Managed accepts the operation and reports the violation as a Warning so
	// the business process can handle it (principle 2.2 "Out-of-order works").
	Managed
)

// Warning describes a constraint violation that was accepted and must be
// handled by a later process step rather than blocking data entry.
type Warning struct {
	Key     Key
	Op      Op
	Problem string
}

// String renders the warning.
func (w Warning) String() string {
	return fmt.Sprintf("%s: %s (op %s)", w.Key, w.Problem, w.Op)
}

// Apply applies ops to a copy-on-write clone of prior and returns the new
// state plus any managed-mode warnings. Only the chunks the operations touch
// are copied — O(delta), not O(state size) — and prior (frozen or not) is
// never modified. In Strict mode the first violation aborts the whole
// application and the prior state is returned unchanged.
func Apply(typ *Type, prior *State, ops []Op, mode ValidationMode) (*State, []Warning, error) {
	next := prior.Clone()
	var warnings []Warning
	for _, op := range ops {
		w, err := applyOne(typ, next, op, mode)
		if err != nil {
			// The partial clone is abandoned; its privately copied chunks go
			// back to the free list.
			next.Recycle()
			return prior, nil, fmt.Errorf("applying %s to %s: %w", op, prior.Key, err)
		}
		warnings = append(warnings, w...)
	}
	return next, warnings, nil
}

func applyOne(typ *Type, s *State, op Op, mode ValidationMode) ([]Warning, error) {
	var warnings []Warning
	warn := func(problem string) error {
		if mode == Strict {
			return errors.New(problem)
		}
		warnings = append(warnings, Warning{Key: s.Key, Op: op, Problem: problem})
		return nil
	}
	if s.Deleted && op.Kind != OpUndelete && op.Kind != OpDelete {
		if err := warn(ErrDeleted.Error()); err != nil {
			return nil, ErrDeleted
		}
	}
	switch op.Kind {
	case OpSet:
		f, ok := typ.field(op.Field)
		if !ok {
			if err := warn(fmt.Sprintf("%v: %s", ErrUnknownField, op.Field)); err != nil {
				return nil, ErrUnknownField
			}
			s.Fields[op.Field] = op.Value
			return warnings, nil
		}
		v, err := coerce(f.Type, op.Value)
		if err != nil {
			if werr := warn(err.Error()); werr != nil {
				return nil, err
			}
			return warnings, nil
		}
		s.Fields[op.Field] = v
	case OpDelta:
		f, ok := typ.field(op.Field)
		if ok && f.Type != Int && f.Type != Float {
			if err := warn(fmt.Sprintf("delta on non-numeric field %s", op.Field)); err != nil {
				return nil, ErrTypeMismatch
			}
			return warnings, nil
		}
		applyDelta(s.Fields, op.Field, op.Delta, !ok || f.Type == Float)
	case OpInsertChild:
		coll, ok := typ.child(op.Collection)
		if !ok {
			if err := warn(fmt.Sprintf("%v: %s", ErrUnknownCollection, op.Collection)); err != nil {
				return nil, ErrUnknownCollection
			}
			s.appendChild(op.Collection, Child{ID: op.ChildID, Fields: op.ChildRow.Clone()})
			return warnings, nil
		}
		row := Fields{}
		for k, v := range op.ChildRow {
			f, ok := coll.field(k)
			if !ok {
				if err := warn(fmt.Sprintf("%v: %s.%s", ErrUnknownField, op.Collection, k)); err != nil {
					return nil, ErrUnknownField
				}
				row[k] = v
				continue
			}
			cv, err := coerce(f.Type, v)
			if err != nil {
				if werr := warn(err.Error()); werr != nil {
					return nil, err
				}
				continue
			}
			row[k] = cv
		}
		for _, f := range coll.Fields {
			if f.Required {
				if _, present := row[f.Name]; !present {
					if err := warn(fmt.Sprintf("%v: %s.%s", ErrMissingRequired, op.Collection, f.Name)); err != nil {
						return nil, ErrMissingRequired
					}
				}
			}
		}
		// Insert of an existing live id acts as an upsert of the provided
		// fields; insert-only storage still records the operation.
		s.insertChild(op.Collection, op.ChildID, row)
	case OpSetChildField, OpDeltaChildField:
		coll, collOK := typ.child(op.Collection)
		if !collOK {
			if err := warn(fmt.Sprintf("%v: %s", ErrUnknownCollection, op.Collection)); err != nil {
				return nil, ErrUnknownCollection
			}
		}
		c := s.mutableCol(op.Collection)
		pos, ok := c.find(op.ChildID)
		if !ok {
			if err := warn(fmt.Sprintf("%v: %s[%s]", ErrNoSuchChild, op.Collection, op.ChildID)); err != nil {
				return nil, ErrNoSuchChild
			}
			// Managed mode: materialise the child so the update is not lost
			// (data arrived out of order, principle 2.2).
			pos = c.n
			c.appendRow(Child{ID: op.ChildID, Fields: Fields{}})
		}
		if op.Kind == OpSetChildField {
			value := op.Value
			if collOK {
				if f, ok := coll.field(op.Field); ok {
					cv, err := coerce(f.Type, op.Value)
					if err != nil {
						if werr := warn(err.Error()); werr != nil {
							return nil, err
						}
						return warnings, nil
					}
					value = cv
				}
			}
			c.mutRow(pos).Fields[op.Field] = value
		} else {
			isFloat := true
			if collOK {
				if f, ok := coll.field(op.Field); ok {
					isFloat = f.Type == Float
				}
			}
			applyDelta(c.mutRow(pos).Fields, op.Field, op.Delta, isFloat)
		}
	case OpDeleteChild:
		if !s.deleteChild(op.Collection, op.ChildID) {
			if err := warn(fmt.Sprintf("%v: %s[%s]", ErrNoSuchChild, op.Collection, op.ChildID)); err != nil {
				return nil, ErrNoSuchChild
			}
		}
	case OpDelete:
		s.Deleted = true
	case OpUndelete:
		s.Deleted = false
	case OpMarkTentative:
		s.Tentative = true
	case OpConfirm:
		s.Tentative = false
	default:
		return nil, fmt.Errorf("entity: unsupported operation kind %v", op.Kind)
	}
	return warnings, nil
}

// applyDelta adds amount to the numeric field, creating it when absent.
func applyDelta(fields Fields, name string, amount float64, asFloat bool) {
	switch cur := fields[name].(type) {
	case int64:
		if asFloat {
			fields[name] = float64(cur) + amount
		} else {
			fields[name] = cur + int64(amount)
		}
	case float64:
		fields[name] = cur + amount
	default:
		if asFloat {
			fields[name] = amount
		} else {
			fields[name] = int64(amount)
		}
	}
}

// coerce converts a value into the declared field type, accepting the natural
// Go widenings (int → int64 → float64).
func coerce(t FieldType, v interface{}) (interface{}, error) {
	switch t {
	case String, Reference:
		s, ok := v.(string)
		if !ok {
			return nil, fmt.Errorf("%w: want string, got %T", ErrTypeMismatch, v)
		}
		return s, nil
	case Int:
		switch x := v.(type) {
		case int:
			return int64(x), nil
		case int64:
			return x, nil
		case float64:
			if x == float64(int64(x)) {
				return int64(x), nil
			}
			return nil, fmt.Errorf("%w: non-integral float %v for int field", ErrTypeMismatch, x)
		default:
			return nil, fmt.Errorf("%w: want int, got %T", ErrTypeMismatch, v)
		}
	case Float:
		switch x := v.(type) {
		case int:
			return float64(x), nil
		case int64:
			return float64(x), nil
		case float64:
			return x, nil
		default:
			return nil, fmt.Errorf("%w: want float, got %T", ErrTypeMismatch, v)
		}
	case Bool:
		b, ok := v.(bool)
		if !ok {
			return nil, fmt.Errorf("%w: want bool, got %T", ErrTypeMismatch, v)
		}
		return b, nil
	default:
		return nil, fmt.Errorf("%w: unknown field type %v", ErrTypeMismatch, t)
	}
}

// Version is one immutable entry in an entity's insert-only history: the
// operations performed, the resulting state, causal metadata and flags.
type Version struct {
	Key       Key
	Seq       uint64 // per-entity monotonically increasing sequence
	Ops       []Op
	State     *State
	Stamp     clock.Timestamp
	DVV       clock.DottedVersionVector
	Tentative bool
	// Obsolete marks a tentative version whose promise was withdrawn; it
	// stays in the history for audit and apology purposes.
	Obsolete bool
	// Origin names the node/replica that produced the version.
	Origin clock.NodeID
	// TxnID identifies the producing transaction for idempotence checks.
	TxnID string
}

// History is the insert-only version chain of one entity (principle 2.7).
type History struct {
	Key      Key
	Versions []*Version
}

// NewHistory returns an empty history for key.
func NewHistory(key Key) *History { return &History{Key: key} }

// Append adds a version; versions must be appended in Seq order per origin
// but the history tolerates interleaving from multiple replicas.
func (h *History) Append(v *Version) { h.Versions = append(h.Versions, v) }

// Latest returns the most recent non-obsolete version (nil when empty).
func (h *History) Latest() *Version {
	for i := len(h.Versions) - 1; i >= 0; i-- {
		if !h.Versions[i].Obsolete {
			return h.Versions[i]
		}
	}
	return nil
}

// Len returns the number of versions, including obsolete ones.
func (h *History) Len() int { return len(h.Versions) }

// AsOf returns the latest non-obsolete version whose timestamp does not
// exceed ts (nil if none).
func (h *History) AsOf(ts clock.Timestamp) *Version {
	var best *Version
	for _, v := range h.Versions {
		if v.Obsolete {
			continue
		}
		if v.Stamp.Compare(ts) == clock.After {
			continue
		}
		if best == nil || v.Stamp.Compare(best.Stamp) == clock.After {
			best = v
		}
	}
	return best
}

// ContainsTxn reports whether a version produced by txnID is already present,
// which is how idempotent re-application of at-least-once deliveries is
// detected (principle 2.4).
func (h *History) ContainsTxn(txnID string) bool {
	if txnID == "" {
		return false
	}
	for _, v := range h.Versions {
		if v.TxnID == txnID {
			return true
		}
	}
	return false
}

// Trace renders the history as a human-readable audit trail: the paper's
// negative-inventory example requires being able to show "the history that
// resulted in negative inventory levels" (principle 2.1).
func (h *History) Trace() []string {
	out := make([]string, 0, len(h.Versions))
	for _, v := range h.Versions {
		var ops []string
		for _, op := range v.Ops {
			if op.Describe != "" {
				ops = append(ops, op.Describe)
			} else {
				ops = append(ops, op.String())
			}
		}
		flag := ""
		if v.Obsolete {
			flag = " [obsolete]"
		} else if v.Tentative {
			flag = " [tentative]"
		}
		out = append(out, fmt.Sprintf("#%d %s by %s: %s%s", v.Seq, v.Stamp, v.Origin, strings.Join(ops, "; "), flag))
	}
	return out
}

// MergeStrategy selects how two concurrent states of the same entity are
// reconciled (principle 2.10: a single end-to-end conflict-handling
// mechanism).
type MergeStrategy int

// Supported merge strategies.
const (
	// LastWriterWins keeps the state with the larger HLC timestamp; the other
	// side's non-commutative effects are lost (and counted).
	LastWriterWins MergeStrategy = iota
	// OperationReplay reapplies both sides' operations on top of the common
	// base; commutative operations merge losslessly, conflicting register
	// writes fall back to timestamp order.
	OperationReplay
)

// String returns the strategy name.
func (m MergeStrategy) String() string {
	switch m {
	case LastWriterWins:
		return "last-writer-wins"
	case OperationReplay:
		return "operation-replay"
	default:
		return fmt.Sprintf("MergeStrategy(%d)", int(m))
	}
}

// MergeResult reports the outcome of reconciling two concurrent versions.
type MergeResult struct {
	State *State
	// LostOps counts operations whose effect was discarded by the merge
	// (e.g. the losing side of a register conflict). Zero means lossless.
	LostOps int
	// ConflictFields lists root fields where both sides wrote different
	// values non-commutatively.
	ConflictFields []string
}

// Merge reconciles two concurrent versions whose common ancestor produced
// base (base may be an empty state). Both versions' operations and stamps
// must be populated.
func Merge(typ *Type, base *State, a, b *Version, strategy MergeStrategy) (MergeResult, error) {
	switch strategy {
	case LastWriterWins:
		winner, loser := a, b
		if b.Stamp.Compare(a.Stamp) == clock.After {
			winner, loser = b, a
		}
		return MergeResult{State: winner.State.Clone(), LostOps: len(loser.Ops), ConflictFields: conflictFields(a, b)}, nil
	case OperationReplay:
		// Deterministic order: replay the earlier-stamped side first so both
		// replicas converge to the same result regardless of merge direction.
		first, second := a, b
		if b.Stamp.Compare(a.Stamp) == clock.Before {
			first, second = b, a
		}
		merged := base.Clone()
		lost := 0
		st, _, err := Apply(typ, merged, first.Ops, Managed)
		if err != nil {
			return MergeResult{}, fmt.Errorf("merge replay (first): %w", err)
		}
		st, _, err = Apply(typ, st, second.Ops, Managed)
		if err != nil {
			return MergeResult{}, fmt.Errorf("merge replay (second): %w", err)
		}
		conflicts := conflictFields(a, b)
		// Register conflicts: the later write wins during replay; count the
		// earlier side's overwritten sets as lost.
		for _, f := range conflicts {
			for _, op := range first.Ops {
				if op.Kind == OpSet && op.Field == f {
					lost++
				}
			}
		}
		return MergeResult{State: st, LostOps: lost, ConflictFields: conflicts}, nil
	default:
		return MergeResult{}, fmt.Errorf("entity: unknown merge strategy %v", strategy)
	}
}

// conflictFields returns root fields written non-commutatively by both sides
// with different values. Values are compared with reflect.DeepEqual because
// ops may legitimately carry container values (sanitized maps/slices), whose
// dynamic types a plain == would panic on.
func conflictFields(a, b *Version) []string {
	setsA := map[string]interface{}{}
	for _, op := range a.Ops {
		if op.Kind == OpSet {
			setsA[op.Field] = op.Value
		}
	}
	var out []string
	seen := map[string]bool{}
	for _, op := range b.Ops {
		if op.Kind != OpSet {
			continue
		}
		if va, ok := setsA[op.Field]; ok && !seen[op.Field] && !reflect.DeepEqual(va, op.Value) {
			out = append(out, op.Field)
			seen[op.Field] = true
		}
	}
	sort.Strings(out)
	return out
}
