// Chunk recycling: a free list of retired child-row chunks.
//
// Copy-on-write discards chunks constantly — every Apply that touches a
// collection copies the chunks it writes, and short-lived states (a flush
// capture's scratch rollup, a group-commit batch that failed its log append,
// a strict-mode validation failure) abandon those copies immediately. The
// free list gives the copy path a second life for the backing arrays instead
// of a fresh allocation per copy.
//
// Safety rests on the ownership protocol: a chunk is provably private — and
// therefore recyclable — only when its state is mutable (never frozen, so
// never shared with readers), the state owns the collection header
// (s.owned[name]; Clone revokes this on both sides), and the header owns the
// chunk (c.owned[ci], set only by copyChunk/appendRow in this version).
// State.Recycle releases exactly that set and nothing else; frozen states
// no-op.
package entity

import (
	"sync"
	"sync/atomic"
)

var chunkPool sync.Pool // of *chunk with rows resliced to 0

var (
	chunkPoolReused    atomic.Uint64
	chunkPoolAllocated atomic.Uint64
	chunkPoolRecycled  atomic.Uint64
)

// takeChunk returns a chunk with rows length n: a recycled chunk when one
// with enough capacity is available, a fresh exact-size allocation otherwise
// (narrow collections keep paying only for their width, as before).
func takeChunk(n int) *chunk {
	if v := chunkPool.Get(); v != nil {
		ck := v.(*chunk)
		if cap(ck.rows) >= n {
			chunkPoolReused.Add(1)
			ck.rows = ck.rows[:n]
			return ck
		}
		// Too narrow for this copy; let it go rather than scanning the pool.
	}
	chunkPoolAllocated.Add(1)
	return &chunk{rows: make([]Child, n)}
}

// putChunk retires a privately-owned chunk into the free list, dropping
// every row reference first so recycled arrays never pin field maps.
func putChunk(ck *chunk) {
	rows := ck.rows[:cap(ck.rows)]
	for i := range rows {
		rows[i] = Child{}
	}
	ck.rows = rows[:0]
	chunkPoolRecycled.Add(1)
	chunkPool.Put(ck)
}

// PoolStats reports the chunk free list's traffic.
type PoolStats struct {
	// Reused counts chunk copies served from the free list; Allocated counts
	// copies that fell back to a fresh allocation; Recycled counts chunks
	// retired into the list.
	Reused    uint64
	Allocated uint64
	Recycled  uint64
}

// ChunkPoolStats returns the process-wide chunk free-list counters.
func ChunkPoolStats() PoolStats {
	return PoolStats{
		Reused:    chunkPoolReused.Load(),
		Allocated: chunkPoolAllocated.Load(),
		Recycled:  chunkPoolRecycled.Load(),
	}
}

// Recycle retires the chunks this state privately owns into the free list
// and empties the state. Call it only on a mutable state that is being
// discarded without ever having been frozen or returned to a caller — the
// flush pipeline's scratch rollups and abandoned apply targets. Frozen
// states (and nil) are no-ops: their chunks may be shared arbitrarily.
func (s *State) Recycle() {
	if s == nil || s.frozen {
		return
	}
	for name, own := range s.owned {
		if !own {
			continue
		}
		c := s.children[name]
		if c == nil {
			continue
		}
		for ci, ck := range c.chunks {
			if ci < len(c.owned) && c.owned[ci] {
				putChunk(ck)
			}
		}
	}
	s.children = nil
	s.owned = nil
	s.Fields = nil
}
