package entity

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/clock"
)

// orderType is the running example from the paper: an order with line items.
func orderType() *Type {
	return &Type{
		Name: "Order",
		Fields: []Field{
			{Name: "customer", Type: Reference, RefType: "Customer", Required: true},
			{Name: "status", Type: String},
			{Name: "total", Type: Float},
			{Name: "priority", Type: Int},
			{Name: "rush", Type: Bool},
		},
		Children: []ChildCollection{
			{Name: "lineitems", Fields: []Field{
				{Name: "product", Type: String, Required: true},
				{Name: "qty", Type: Int},
				{Name: "price", Type: Float},
			}},
		},
	}
}

func TestTypeValidate(t *testing.T) {
	if err := orderType().Validate(); err != nil {
		t.Fatalf("valid type rejected: %v", err)
	}
	bad := &Type{Name: "", Fields: nil}
	if err := bad.Validate(); err == nil {
		t.Fatal("empty type name should be rejected")
	}
	dup := &Type{Name: "X", Fields: []Field{{Name: "a", Type: Int}, {Name: "a", Type: Int}}}
	if err := dup.Validate(); err == nil {
		t.Fatal("duplicate field should be rejected")
	}
	badRef := &Type{Name: "X", Fields: []Field{{Name: "r", Type: Reference}}}
	if err := badRef.Validate(); err == nil {
		t.Fatal("reference without RefType should be rejected")
	}
	dupChild := &Type{Name: "X", Children: []ChildCollection{{Name: "c"}, {Name: "c"}}}
	if err := dupChild.Validate(); err == nil {
		t.Fatal("duplicate child collection should be rejected")
	}
	dupChildField := &Type{Name: "X", Children: []ChildCollection{{Name: "c", Fields: []Field{{Name: "f"}, {Name: "f"}}}}}
	if err := dupChildField.Validate(); err == nil {
		t.Fatal("duplicate child field should be rejected")
	}
	emptyChild := &Type{Name: "X", Children: []ChildCollection{{Name: ""}}}
	if err := emptyChild.Validate(); err == nil {
		t.Fatal("empty child collection name should be rejected")
	}
	emptyField := &Type{Name: "X", Fields: []Field{{Name: ""}}}
	if err := emptyField.Validate(); err == nil {
		t.Fatal("empty field name should be rejected")
	}
}

func TestKeyStringRoundTrip(t *testing.T) {
	k := Key{Type: "Order", ID: "O-1001"}
	parsed, err := ParseKey(k.String())
	if err != nil {
		t.Fatalf("ParseKey: %v", err)
	}
	if parsed != k {
		t.Fatalf("round trip mismatch: %v", parsed)
	}
	for _, bad := range []string{"", "Order", "/id", "Order/"} {
		if _, err := ParseKey(bad); err == nil {
			t.Errorf("ParseKey(%q) should fail", bad)
		}
	}
}

func TestApplySetAndAccessors(t *testing.T) {
	typ := orderType()
	s := NewState(Key{Type: "Order", ID: "1"})
	ops := []Op{
		Set("customer", "Customer/C-9"),
		Set("status", "OPEN"),
		Set("total", 99.5),
		Set("priority", 3),
		Set("rush", true),
	}
	next, warnings, err := Apply(typ, s, ops, Strict)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if len(warnings) != 0 {
		t.Fatalf("unexpected warnings: %v", warnings)
	}
	if next.StringField("status") != "OPEN" {
		t.Errorf("status = %q", next.StringField("status"))
	}
	if next.Float("total") != 99.5 {
		t.Errorf("total = %v", next.Float("total"))
	}
	if next.Int("priority") != 3 {
		t.Errorf("priority = %v", next.Int("priority"))
	}
	if !next.Bool("rush") {
		t.Error("rush not set")
	}
	// Original state must be untouched (insert-only semantics).
	if len(s.Fields) != 0 {
		t.Fatalf("prior state mutated: %v", s.Fields)
	}
}

func TestApplyStrictRejectsUnknownField(t *testing.T) {
	typ := orderType()
	s := NewState(Key{Type: "Order", ID: "1"})
	_, _, err := Apply(typ, s, []Op{Set("nonexistent", 1)}, Strict)
	if !errors.Is(err, ErrUnknownField) {
		t.Fatalf("want ErrUnknownField, got %v", err)
	}
}

func TestApplyManagedAcceptsUnknownFieldWithWarning(t *testing.T) {
	typ := orderType()
	s := NewState(Key{Type: "Order", ID: "1"})
	next, warnings, err := Apply(typ, s, []Op{Set("nonexistent", int64(1))}, Managed)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if len(warnings) != 1 {
		t.Fatalf("want 1 warning, got %v", warnings)
	}
	if next.Fields["nonexistent"] == nil {
		t.Fatal("managed mode should still record the value")
	}
	if !strings.Contains(warnings[0].String(), "unknown field") {
		t.Errorf("warning text: %s", warnings[0])
	}
}

func TestApplyTypeCoercion(t *testing.T) {
	typ := orderType()
	s := NewState(Key{Type: "Order", ID: "1"})
	next, _, err := Apply(typ, s, []Op{Set("priority", 7), Set("total", 10)}, Strict)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if _, ok := next.Fields["priority"].(int64); !ok {
		t.Errorf("int not coerced to int64: %T", next.Fields["priority"])
	}
	if _, ok := next.Fields["total"].(float64); !ok {
		t.Errorf("int not coerced to float64 for Float field: %T", next.Fields["total"])
	}
}

func TestApplyTypeMismatchStrict(t *testing.T) {
	typ := orderType()
	s := NewState(Key{Type: "Order", ID: "1"})
	cases := []Op{
		Set("priority", "high"),
		Set("status", 42),
		Set("rush", "yes"),
		Set("total", "lots"),
		Set("priority", 1.5),
	}
	for _, op := range cases {
		if _, _, err := Apply(typ, s, []Op{op}, Strict); !errors.Is(err, ErrTypeMismatch) {
			t.Errorf("op %v: want ErrTypeMismatch, got %v", op, err)
		}
	}
}

func TestApplyTypeMismatchManagedSkipsValue(t *testing.T) {
	typ := orderType()
	s := NewState(Key{Type: "Order", ID: "1"})
	next, warnings, err := Apply(typ, s, []Op{Set("priority", "high")}, Managed)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if len(warnings) != 1 {
		t.Fatalf("want warning, got %v", warnings)
	}
	if _, present := next.Fields["priority"]; present {
		t.Fatal("mismatched value should not be stored even in managed mode")
	}
}

func TestApplyDelta(t *testing.T) {
	typ := orderType()
	s := NewState(Key{Type: "Order", ID: "1"})
	next, _, err := Apply(typ, s, []Op{Delta("total", 10), Delta("total", 5.5), Delta("priority", 2)}, Strict)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if next.Float("total") != 15.5 {
		t.Errorf("total = %v, want 15.5", next.Float("total"))
	}
	if next.Int("priority") != 2 {
		t.Errorf("priority = %v, want 2", next.Int("priority"))
	}
	// Negative deltas are allowed (the paper's negative-inventory example).
	next, _, err = Apply(typ, next, []Op{Delta("priority", -5)}, Strict)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if next.Int("priority") != -3 {
		t.Errorf("priority after negative delta = %v, want -3", next.Int("priority"))
	}
}

func TestApplyDeltaOnNonNumericField(t *testing.T) {
	typ := orderType()
	s := NewState(Key{Type: "Order", ID: "1"})
	if _, _, err := Apply(typ, s, []Op{Delta("status", 1)}, Strict); err == nil {
		t.Fatal("delta on string field should fail in strict mode")
	}
	_, warnings, err := Apply(typ, s, []Op{Delta("status", 1)}, Managed)
	if err != nil || len(warnings) != 1 {
		t.Fatalf("managed delta on string: err=%v warnings=%v", err, warnings)
	}
}

func TestApplyChildren(t *testing.T) {
	typ := orderType()
	s := NewState(Key{Type: "Order", ID: "1"})
	ops := []Op{
		InsertChild("lineitems", "L1", Fields{"product": "widget", "qty": 3, "price": 9.99}),
		InsertChild("lineitems", "L2", Fields{"product": "gadget", "qty": 1, "price": 20.0}),
		SetChildField("lineitems", "L1", "qty", 5),
		DeltaChildField("lineitems", "L2", "qty", 2),
	}
	next, warnings, err := Apply(typ, s, ops, Strict)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if len(warnings) != 0 {
		t.Fatalf("warnings: %v", warnings)
	}
	l1, ok := next.ChildByID("lineitems", "L1")
	if !ok || l1.Fields["qty"].(int64) != 5 {
		t.Fatalf("L1 = %+v", l1)
	}
	l2, _ := next.ChildByID("lineitems", "L2")
	if l2.Fields["qty"].(int64) != 3 {
		t.Fatalf("L2 qty = %v, want 3", l2.Fields["qty"])
	}
	if len(next.LiveChildren("lineitems")) != 2 {
		t.Fatalf("live children = %d", len(next.LiveChildren("lineitems")))
	}
}

func TestApplyDeleteChildTombstones(t *testing.T) {
	typ := orderType()
	s := NewState(Key{Type: "Order", ID: "1"})
	next, _, err := Apply(typ, s, []Op{
		InsertChild("lineitems", "L1", Fields{"product": "widget"}),
		DeleteChild("lineitems", "L1"),
	}, Strict)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if len(next.LiveChildren("lineitems")) != 0 {
		t.Fatal("deleted child still live")
	}
	// The row is still there, just marked (principle 2.7).
	c, ok := next.ChildByID("lineitems", "L1")
	if !ok || !c.Deleted {
		t.Fatalf("tombstone missing: %+v", c)
	}
}

func TestApplyDeleteChildMissingStrictVsManaged(t *testing.T) {
	typ := orderType()
	s := NewState(Key{Type: "Order", ID: "1"})
	if _, _, err := Apply(typ, s, []Op{DeleteChild("lineitems", "nope")}, Strict); !errors.Is(err, ErrNoSuchChild) {
		t.Fatalf("want ErrNoSuchChild, got %v", err)
	}
	_, warnings, err := Apply(typ, s, []Op{DeleteChild("lineitems", "nope")}, Managed)
	if err != nil || len(warnings) != 1 {
		t.Fatalf("managed: err=%v warnings=%v", err, warnings)
	}
}

func TestApplyInsertChildRequiredField(t *testing.T) {
	typ := orderType()
	s := NewState(Key{Type: "Order", ID: "1"})
	op := InsertChild("lineitems", "L1", Fields{"qty": 1})
	if _, _, err := Apply(typ, s, []Op{op}, Strict); !errors.Is(err, ErrMissingRequired) {
		t.Fatalf("want ErrMissingRequired, got %v", err)
	}
	_, warnings, err := Apply(typ, s, []Op{op}, Managed)
	if err != nil {
		t.Fatalf("managed: %v", err)
	}
	if len(warnings) != 1 {
		t.Fatalf("warnings = %v", warnings)
	}
}

func TestApplyInsertChildUpsert(t *testing.T) {
	typ := orderType()
	s := NewState(Key{Type: "Order", ID: "1"})
	next, _, err := Apply(typ, s, []Op{
		InsertChild("lineitems", "L1", Fields{"product": "widget", "qty": 1}),
		InsertChild("lineitems", "L1", Fields{"product": "widget", "qty": 4}),
	}, Strict)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if next.ChildCount("lineitems") != 1 {
		t.Fatalf("upsert created duplicate rows: %d", next.ChildCount("lineitems"))
	}
	c, _ := next.ChildByID("lineitems", "L1")
	if c.Fields["qty"].(int64) != 4 {
		t.Fatalf("qty = %v, want 4", c.Fields["qty"])
	}
}

func TestApplySetChildFieldMissingChildManagedMaterialises(t *testing.T) {
	typ := orderType()
	s := NewState(Key{Type: "Order", ID: "1"})
	// The update arrives before the insert (out-of-order, principle 2.2).
	next, warnings, err := Apply(typ, s, []Op{SetChildField("lineitems", "L9", "qty", 7)}, Managed)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if len(warnings) != 1 {
		t.Fatalf("want warning for forward reference, got %v", warnings)
	}
	c, ok := next.ChildByID("lineitems", "L9")
	if !ok || c.Fields["qty"].(int64) != 7 {
		t.Fatalf("forward-referenced child not materialised: %+v", c)
	}
}

func TestApplyUnknownCollection(t *testing.T) {
	typ := orderType()
	s := NewState(Key{Type: "Order", ID: "1"})
	if _, _, err := Apply(typ, s, []Op{InsertChild("parts", "P1", Fields{})}, Strict); !errors.Is(err, ErrUnknownCollection) {
		t.Fatalf("want ErrUnknownCollection, got %v", err)
	}
	next, warnings, err := Apply(typ, s, []Op{InsertChild("parts", "P1", Fields{"x": int64(1)})}, Managed)
	if err != nil || len(warnings) != 1 {
		t.Fatalf("managed: err=%v warnings=%v", err, warnings)
	}
	if _, ok := next.ChildByID("parts", "P1"); !ok {
		t.Fatal("managed mode should keep the row")
	}
}

func TestApplyDeleteAndUndelete(t *testing.T) {
	typ := orderType()
	s := NewState(Key{Type: "Order", ID: "1"})
	next, _, err := Apply(typ, s, []Op{Set("status", "OPEN"), Delete()}, Strict)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if !next.Deleted {
		t.Fatal("entity not tombstoned")
	}
	// Operating on a deleted entity is a strict error, a managed warning.
	if _, _, err := Apply(typ, next, []Op{Set("status", "REOPENED")}, Strict); !errors.Is(err, ErrDeleted) {
		t.Fatalf("want ErrDeleted, got %v", err)
	}
	revived, warnings, err := Apply(typ, next, []Op{Set("status", "REOPENED")}, Managed)
	if err != nil || len(warnings) != 1 {
		t.Fatalf("managed write to deleted: err=%v warnings=%v", err, warnings)
	}
	if revived.StringField("status") != "REOPENED" {
		t.Fatal("managed write lost")
	}
	undeleted, _, err := Apply(typ, next, []Op{Undelete()}, Strict)
	if err != nil || undeleted.Deleted {
		t.Fatalf("undelete failed: %v", err)
	}
}

func TestApplyTentativeAndConfirm(t *testing.T) {
	typ := orderType()
	s := NewState(Key{Type: "Order", ID: "1"})
	next, _, err := Apply(typ, s, []Op{MarkTentative("offer pending"), Set("status", "OFFERED")}, Strict)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if !next.Tentative {
		t.Fatal("state should be tentative")
	}
	confirmed, _, err := Apply(typ, next, []Op{Confirm()}, Strict)
	if err != nil || confirmed.Tentative {
		t.Fatalf("confirm failed: %v", err)
	}
}

func TestApplyErrorLeavesPriorUntouched(t *testing.T) {
	typ := orderType()
	s := NewState(Key{Type: "Order", ID: "1"})
	s.Fields["status"] = "OPEN"
	got, _, err := Apply(typ, s, []Op{Set("status", "SHIPPED"), Set("bogus", 1)}, Strict)
	if err == nil {
		t.Fatal("expected error")
	}
	if got != s {
		t.Fatal("failed Apply should return the prior state")
	}
	if s.StringField("status") != "OPEN" {
		t.Fatal("prior state mutated by failed Apply")
	}
}

func TestStateCloneIndependence(t *testing.T) {
	typ := orderType()
	s := NewState(Key{Type: "Order", ID: "1"})
	s.Fields["status"] = "OPEN"
	s.appendChild("lineitems", Child{ID: "L1", Fields: Fields{"qty": int64(1)}})
	c := s.Clone()
	c.Fields["status"] = "CLOSED"
	// Child mutation goes through ops; the clone must copy-on-write the
	// touched chunk instead of reaching into the shared one.
	c2, _, err := Apply(typ, c, []Op{SetChildField("lineitems", "L1", "qty", 99)}, Managed)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if s.StringField("status") != "OPEN" {
		t.Fatal("clone aliased root fields")
	}
	if row, _ := s.ChildByID("lineitems", "L1"); row.Fields["qty"].(int64) != 1 {
		t.Fatal("clone aliased child fields")
	}
	if row, _ := c2.ChildByID("lineitems", "L1"); row.Fields["qty"].(int64) != 99 {
		t.Fatalf("write lost: %v", row.Fields["qty"])
	}
}

func TestFreezeThawContract(t *testing.T) {
	typ := orderType()
	s := NewState(Key{Type: "Order", ID: "1"})
	base, _, err := Apply(typ, s, []Op{
		Set("status", "OPEN"),
		InsertChild("lineitems", "L1", Fields{"product": "widget", "qty": 1}),
	}, Strict)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	frozen := base.Freeze()
	if !frozen.Frozen() || frozen != base {
		t.Fatal("Freeze should mark in place and return the state")
	}
	if frozen.Freeze() != frozen {
		t.Fatal("Freeze is not idempotent")
	}
	// Thawing yields a mutable structural-sharing copy.
	thawed := frozen.Thaw()
	if thawed == frozen || thawed.Frozen() {
		t.Fatal("Thaw of a frozen state must return a mutable copy")
	}
	if thawed.Thaw() != thawed {
		t.Fatal("Thaw of a mutable state should return itself")
	}
	thawed.Fields["status"] = "CLOSED"
	next, _, err := Apply(typ, thawed, []Op{SetChildField("lineitems", "L1", "qty", 42)}, Strict)
	if err != nil {
		t.Fatalf("Apply on thawed: %v", err)
	}
	if frozen.StringField("status") != "OPEN" {
		t.Fatal("thawed root write leaked into frozen state")
	}
	if row, _ := frozen.ChildByID("lineitems", "L1"); row.Fields["qty"].(int64) != 1 {
		t.Fatalf("thawed child write leaked into frozen state: %v", row.Fields["qty"])
	}
	if row, _ := next.ChildByID("lineitems", "L1"); row.Fields["qty"].(int64) != 42 {
		t.Fatalf("write lost on thawed copy: %v", row.Fields["qty"])
	}
	// Writing a frozen state through the entity API panics loudly.
	defer func() {
		if recover() == nil {
			t.Fatal("mutating a frozen state should panic")
		}
	}()
	frozen.mutableCol("lineitems")
}

// TestWideCollectionIndexAndCOW drives a collection past several chunk and
// reindex boundaries and checks lookups, live counts and structural sharing
// all stay correct.
func TestWideCollectionIndexAndCOW(t *testing.T) {
	typ := orderType()
	state := NewState(Key{Type: "Order", ID: "wide"})
	const width = 500
	versions := make([]*State, 0, width)
	for i := 0; i < width; i++ {
		next, _, err := Apply(typ, state, []Op{
			InsertChild("lineitems", fmt.Sprintf("L%d", i), Fields{"product": fmt.Sprintf("p%d", i), "qty": i}),
		}, Strict)
		if err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		state = next.Freeze()
		versions = append(versions, state)
	}
	// Every version still sees exactly its own prefix.
	for _, n := range []int{0, 63, 64, 127, 255, width - 1} {
		v := versions[n]
		if v.ChildCount("lineitems") != n+1 {
			t.Fatalf("version %d sees %d children", n, v.ChildCount("lineitems"))
		}
		row, ok := v.ChildByID("lineitems", fmt.Sprintf("L%d", n))
		if !ok || row.Fields["qty"].(int64) != int64(n) {
			t.Fatalf("version %d lookup of L%d: ok=%v row=%v", n, n, ok, row)
		}
		if _, ok := v.ChildByID("lineitems", fmt.Sprintf("L%d", n+1)); ok {
			t.Fatalf("version %d sees a child from the future", n)
		}
	}
	// Delete + reinsert keeps id lookups on the first occurrence and live
	// counts exact.
	next, _, err := Apply(typ, state, []Op{DeleteChild("lineitems", "L10")}, Strict)
	if err != nil {
		t.Fatalf("delete: %v", err)
	}
	if got := len(next.LiveChildren("lineitems")); got != width-1 {
		t.Fatalf("live after delete = %d, want %d", got, width-1)
	}
	if got := len(state.LiveChildren("lineitems")); got != width {
		t.Fatalf("delete leaked into frozen predecessor: live=%d", got)
	}
	reinserted, _, err := Apply(typ, next, []Op{InsertChild("lineitems", "L10", Fields{"product": "again", "qty": 777})}, Strict)
	if err != nil {
		t.Fatalf("reinsert: %v", err)
	}
	if got := len(reinserted.LiveChildren("lineitems")); got != width {
		t.Fatalf("live after reinsert = %d, want %d", got, width)
	}
	// Delete again must tombstone the duplicate-id rows too.
	gone, _, err := Apply(typ, reinserted, []Op{DeleteChild("lineitems", "L10")}, Strict)
	if err != nil {
		t.Fatalf("second delete: %v", err)
	}
	for _, row := range gone.Children("lineitems") {
		if row.ID == "L10" && !row.Deleted {
			t.Fatal("duplicate-id row survived delete")
		}
	}
}

func TestSanitizeOps(t *testing.T) {
	// Scalars pass through without copying the slice.
	ops := []Op{Set("status", "OPEN"), Delta("total", 1)}
	got, err := SanitizeOps(ops)
	if err != nil {
		t.Fatalf("SanitizeOps: %v", err)
	}
	if &got[0] != &ops[0] {
		t.Fatal("scalar ops should not be copied")
	}
	// Container values are deep-copied: mutating the caller's map afterwards
	// must not reach the sanitized op.
	row := map[string]interface{}{"nested": []interface{}{int64(1)}}
	dirty := []Op{{Kind: OpSet, Field: "blob", Value: row}}
	clean, err := SanitizeOps(dirty)
	if err != nil {
		t.Fatalf("SanitizeOps(container): %v", err)
	}
	row["nested"].([]interface{})[0] = int64(99)
	row["added"] = "later"
	cleanMap := clean[0].Value.(map[string]interface{})
	if cleanMap["nested"].([]interface{})[0].(int64) != 1 || cleanMap["added"] != nil {
		t.Fatalf("sanitized op aliases caller map: %v", cleanMap)
	}
	// Unsupported kinds are rejected.
	type weird struct{ X int }
	if _, err := SanitizeOps([]Op{{Kind: OpSet, Field: "w", Value: weird{1}}}); !errors.Is(err, ErrUnsafeValue) {
		t.Fatalf("struct value accepted: %v", err)
	}
	if _, err := SanitizeOps([]Op{{Kind: OpInsertChild, Collection: "c", ChildID: "1", ChildRow: Fields{"ch": make(chan int)}}}); !errors.Is(err, ErrUnsafeValue) {
		t.Fatalf("chan value in child row accepted: %v", err)
	}
}

func TestOpConstructorsCopyContainers(t *testing.T) {
	row := Fields{"qty": int64(1)}
	op := InsertChild("lineitems", "L1", row)
	row["qty"] = int64(99)
	if op.ChildRow["qty"].(int64) != 1 {
		t.Fatalf("InsertChild aliased the caller's row map: %v", op.ChildRow["qty"])
	}
	val := []interface{}{int64(1)}
	set := Set("blob", val)
	val[0] = int64(99)
	if set.Value.([]interface{})[0].(int64) != 1 {
		t.Fatal("Set aliased the caller's slice value")
	}
}

func TestOpStringAndCommutes(t *testing.T) {
	if !Delta("x", 1).Commutes() || !DeltaChildField("c", "1", "x", 1).Commutes() || !InsertChild("c", "1", nil).Commutes() {
		t.Error("commutative ops misclassified")
	}
	if Set("x", 1).Commutes() || Delete().Commutes() {
		t.Error("non-commutative ops misclassified")
	}
	for _, op := range []Op{Set("a", 1), Delta("a", 2), InsertChild("c", "i", nil),
		SetChildField("c", "i", "f", 1), DeltaChildField("c", "i", "f", 1), DeleteChild("c", "i"),
		Delete(), Undelete(), MarkTentative("x"), Confirm()} {
		if op.String() == "" {
			t.Errorf("empty String for %v", op.Kind)
		}
	}
	d := Set("a", 1).Described("set a for audit")
	if d.Describe != "set a for audit" {
		t.Error("Described did not attach text")
	}
}

func TestOpKindAndFieldTypeStrings(t *testing.T) {
	if OpSet.String() != "set" || OpDelta.String() != "delta" {
		t.Error("OpKind names wrong")
	}
	if OpKind(99).String() == "" || FieldType(99).String() == "" {
		t.Error("unknown enum should still render")
	}
	if String.String() != "string" || Reference.String() != "reference" {
		t.Error("FieldType names wrong")
	}
}

func newVersion(t *testing.T, typ *Type, key Key, seq uint64, origin clock.NodeID, stamp clock.Timestamp, base *State, ops ...Op) *Version {
	t.Helper()
	st, _, err := Apply(typ, base, ops, Managed)
	if err != nil {
		t.Fatalf("newVersion apply: %v", err)
	}
	return &Version{Key: key, Seq: seq, Ops: ops, State: st, Stamp: stamp, Origin: origin}
}

func TestHistoryLatestAndAsOf(t *testing.T) {
	typ := orderType()
	key := Key{Type: "Order", ID: "1"}
	h := NewHistory(key)
	base := NewState(key)
	t1 := clock.Timestamp{WallNanos: 100, Node: "a"}
	t2 := clock.Timestamp{WallNanos: 200, Node: "a"}
	t3 := clock.Timestamp{WallNanos: 300, Node: "a"}
	v1 := newVersion(t, typ, key, 1, "a", t1, base, Set("status", "OPEN"))
	v2 := newVersion(t, typ, key, 2, "a", t2, v1.State, Set("status", "PAID"))
	v3 := newVersion(t, typ, key, 3, "a", t3, v2.State, Set("status", "SHIPPED"))
	v3.Obsolete = true
	h.Append(v1)
	h.Append(v2)
	h.Append(v3)
	if h.Len() != 3 {
		t.Fatalf("Len = %d", h.Len())
	}
	if got := h.Latest(); got != v2 {
		t.Fatalf("Latest should skip obsolete versions, got seq %d", got.Seq)
	}
	if got := h.AsOf(clock.Timestamp{WallNanos: 150, Node: "z"}); got != v1 {
		t.Fatalf("AsOf(150) = seq %d, want 1", got.Seq)
	}
	if got := h.AsOf(clock.Timestamp{WallNanos: 50, Node: "z"}); got != nil {
		t.Fatalf("AsOf before first version should be nil, got seq %d", got.Seq)
	}
	if got := h.AsOf(clock.Timestamp{WallNanos: 999, Node: "z"}); got != v2 {
		t.Fatalf("AsOf(999) should skip obsolete, got seq %d", got.Seq)
	}
}

func TestHistoryLatestEmpty(t *testing.T) {
	h := NewHistory(Key{Type: "Order", ID: "1"})
	if h.Latest() != nil {
		t.Fatal("empty history Latest should be nil")
	}
}

func TestHistoryContainsTxn(t *testing.T) {
	h := NewHistory(Key{Type: "Order", ID: "1"})
	h.Append(&Version{TxnID: "txn-1"})
	if !h.ContainsTxn("txn-1") {
		t.Fatal("ContainsTxn missed existing txn")
	}
	if h.ContainsTxn("txn-2") || h.ContainsTxn("") {
		t.Fatal("ContainsTxn false positive")
	}
}

func TestHistoryTrace(t *testing.T) {
	typ := orderType()
	key := Key{Type: "Inventory", ID: "widget"}
	invType := &Type{Name: "Inventory", Fields: []Field{{Name: "onhand", Type: Int}}}
	_ = typ
	h := NewHistory(key)
	base := NewState(key)
	v1 := newVersion(t, invType, key, 1, "warehouse", clock.Timestamp{WallNanos: 1, Node: "w"}, base,
		Delta("onhand", 10).Described("received 10 widgets"))
	v2 := newVersion(t, invType, key, 2, "packer", clock.Timestamp{WallNanos: 2, Node: "p"}, v1.State,
		Delta("onhand", -12).Described("packed 12 widgets for order O-7"))
	v2.Tentative = true
	h.Append(v1)
	h.Append(v2)
	trace := h.Trace()
	if len(trace) != 2 {
		t.Fatalf("trace lines = %d", len(trace))
	}
	if !strings.Contains(trace[1], "packed 12 widgets") || !strings.Contains(trace[1], "[tentative]") {
		t.Fatalf("trace missing description or flag: %q", trace[1])
	}
	if v2.State.Int("onhand") != -2 {
		t.Fatalf("negative inventory not representable: %d", v2.State.Int("onhand"))
	}
}

func TestMergeLastWriterWinsLosesOps(t *testing.T) {
	typ := orderType()
	key := Key{Type: "Order", ID: "1"}
	base := NewState(key)
	a := newVersion(t, typ, key, 1, "r1", clock.Timestamp{WallNanos: 100, Node: "r1"}, base, Set("status", "PAID"), Delta("total", 10))
	b := newVersion(t, typ, key, 1, "r2", clock.Timestamp{WallNanos: 200, Node: "r2"}, base, Set("status", "CANCELLED"))
	res, err := Merge(typ, base, a, b, LastWriterWins)
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if res.State.StringField("status") != "CANCELLED" {
		t.Fatalf("LWW should keep later write, got %q", res.State.StringField("status"))
	}
	if res.LostOps != 2 {
		t.Fatalf("LostOps = %d, want 2 (whole losing side)", res.LostOps)
	}
	if len(res.ConflictFields) != 1 || res.ConflictFields[0] != "status" {
		t.Fatalf("ConflictFields = %v", res.ConflictFields)
	}
	// LWW drops the commutative delta: total is 0 in the merged state.
	if res.State.Float("total") != 0 {
		t.Fatalf("LWW unexpectedly preserved delta: %v", res.State.Float("total"))
	}
}

func TestMergeOperationReplayPreservesCommutativeOps(t *testing.T) {
	typ := orderType()
	key := Key{Type: "Order", ID: "1"}
	base := NewState(key)
	a := newVersion(t, typ, key, 1, "r1", clock.Timestamp{WallNanos: 100, Node: "r1"}, base, Delta("total", 10), InsertChild("lineitems", "L1", Fields{"product": "widget"}))
	b := newVersion(t, typ, key, 1, "r2", clock.Timestamp{WallNanos: 200, Node: "r2"}, base, Delta("total", 5), InsertChild("lineitems", "L2", Fields{"product": "gadget"}))
	res, err := Merge(typ, base, a, b, OperationReplay)
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if res.LostOps != 0 {
		t.Fatalf("commutative merge should lose nothing, lost %d", res.LostOps)
	}
	if res.State.Float("total") != 15 {
		t.Fatalf("total = %v, want 15", res.State.Float("total"))
	}
	if len(res.State.LiveChildren("lineitems")) != 2 {
		t.Fatalf("children = %d, want 2", len(res.State.LiveChildren("lineitems")))
	}
}

func TestMergeOperationReplayRegisterConflict(t *testing.T) {
	typ := orderType()
	key := Key{Type: "Order", ID: "1"}
	base := NewState(key)
	a := newVersion(t, typ, key, 1, "r1", clock.Timestamp{WallNanos: 300, Node: "r1"}, base, Set("status", "PAID"))
	b := newVersion(t, typ, key, 1, "r2", clock.Timestamp{WallNanos: 100, Node: "r2"}, base, Set("status", "CANCELLED"))
	res, err := Merge(typ, base, a, b, OperationReplay)
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	// Later stamp (a) wins the register; one op's effect is lost.
	if res.State.StringField("status") != "PAID" {
		t.Fatalf("status = %q, want PAID", res.State.StringField("status"))
	}
	if res.LostOps != 1 {
		t.Fatalf("LostOps = %d, want 1", res.LostOps)
	}
}

func TestMergeOperationReplayIsSymmetric(t *testing.T) {
	typ := orderType()
	key := Key{Type: "Order", ID: "1"}
	base := NewState(key)
	a := newVersion(t, typ, key, 1, "r1", clock.Timestamp{WallNanos: 100, Node: "r1"}, base, Delta("total", 10), Set("status", "PAID"))
	b := newVersion(t, typ, key, 1, "r2", clock.Timestamp{WallNanos: 200, Node: "r2"}, base, Delta("total", 7), Set("status", "SHIPPED"))
	ab, err := Merge(typ, base, a, b, OperationReplay)
	if err != nil {
		t.Fatalf("Merge ab: %v", err)
	}
	ba, err := Merge(typ, base, b, a, OperationReplay)
	if err != nil {
		t.Fatalf("Merge ba: %v", err)
	}
	if ab.State.Float("total") != ba.State.Float("total") || ab.State.StringField("status") != ba.State.StringField("status") {
		t.Fatalf("merge not symmetric: %v/%q vs %v/%q",
			ab.State.Float("total"), ab.State.StringField("status"),
			ba.State.Float("total"), ba.State.StringField("status"))
	}
}

func TestMergeUnknownStrategy(t *testing.T) {
	typ := orderType()
	key := Key{Type: "Order", ID: "1"}
	base := NewState(key)
	v := newVersion(t, typ, key, 1, "r1", clock.Timestamp{WallNanos: 1, Node: "r1"}, base, Set("status", "X"))
	if _, err := Merge(typ, base, v, v, MergeStrategy(42)); err == nil {
		t.Fatal("unknown strategy should error")
	}
	if MergeStrategy(42).String() == "" || LastWriterWins.String() != "last-writer-wins" || OperationReplay.String() != "operation-replay" {
		t.Error("MergeStrategy names wrong")
	}
}

// Property: replay-merging two versions whose ops are all commutative deltas
// always sums both sides exactly, regardless of the amounts.
func TestMergeDeltaCommutativityProperty(t *testing.T) {
	typ := &Type{Name: "Acct", Fields: []Field{{Name: "balance", Type: Float}}}
	key := Key{Type: "Acct", ID: "1"}
	f := func(d1, d2 int16) bool {
		base := NewState(key)
		a := &Version{Key: key, Ops: []Op{Delta("balance", float64(d1))}, Stamp: clock.Timestamp{WallNanos: 10, Node: "a"}}
		var err error
		a.State, _, err = Apply(typ, base, a.Ops, Managed)
		if err != nil {
			return false
		}
		b := &Version{Key: key, Ops: []Op{Delta("balance", float64(d2))}, Stamp: clock.Timestamp{WallNanos: 20, Node: "b"}}
		b.State, _, err = Apply(typ, base, b.Ops, Managed)
		if err != nil {
			return false
		}
		res, err := Merge(typ, base, a, b, OperationReplay)
		if err != nil {
			return false
		}
		return res.State.Float("balance") == float64(d1)+float64(d2) && res.LostOps == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Apply never mutates the prior state, for arbitrary delta/set
// sequences.
func TestApplyPurityProperty(t *testing.T) {
	typ := &Type{Name: "Acct", Fields: []Field{{Name: "balance", Type: Float}, {Name: "owner", Type: String}}}
	key := Key{Type: "Acct", ID: "1"}
	f := func(deltas []int8, owner string) bool {
		prior := NewState(key)
		prior.Fields["balance"] = float64(42)
		prior.Fields["owner"] = "original"
		ops := []Op{Set("owner", owner)}
		for _, d := range deltas {
			ops = append(ops, Delta("balance", float64(d)))
		}
		_, _, err := Apply(typ, prior, ops, Managed)
		if err != nil {
			return false
		}
		return prior.Float("balance") == 42 && prior.StringField("owner") == "original"
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFieldsCloneIndependence(t *testing.T) {
	f := Fields{"a": int64(1)}
	c := f.Clone()
	c["a"] = int64(2)
	if f["a"].(int64) != 1 {
		t.Fatal("Fields.Clone aliased the map")
	}
}

func TestVersionStampUsesHLC(t *testing.T) {
	// Sanity check that entity versions interoperate with the clock package.
	h := clock.NewHLCWithSource("n1", func() time.Time { return time.Unix(5, 0) })
	ts1 := h.Now()
	ts2 := h.Now()
	if ts2.Compare(ts1) != clock.After {
		t.Fatal("HLC not monotonic in entity context")
	}
}

// TestMergeWithContainerValues guards the conflict detector against the
// container op values SanitizeOps legitimizes: comparing two slice/map
// values with == panics at runtime, so conflictFields must deep-compare.
func TestMergeWithContainerValues(t *testing.T) {
	typ := orderType()
	key := Key{Type: "Order", ID: "1"}
	base := NewState(key)
	mk := func(node string, blob []interface{}, wall int64) *Version {
		ops := []Op{Set("blob", blob)}
		st, _, err := Apply(typ, base, ops, Managed)
		if err != nil {
			t.Fatal(err)
		}
		return &Version{Key: key, Ops: ops, State: st, Stamp: clock.Timestamp{WallNanos: wall, Node: clock.NodeID(node)}}
	}
	a := mk("r1", []interface{}{int64(1)}, 1)
	b := mk("r2", []interface{}{int64(2)}, 2)
	for _, strategy := range []MergeStrategy{LastWriterWins, OperationReplay} {
		res, err := Merge(typ, base, a, b, strategy)
		if err != nil {
			t.Fatalf("%v: %v", strategy, err)
		}
		if len(res.ConflictFields) != 1 || res.ConflictFields[0] != "blob" {
			t.Fatalf("%v: conflicts = %v, want [blob]", strategy, res.ConflictFields)
		}
	}
	// Equal container values are not a conflict.
	c := mk("r3", []interface{}{int64(1)}, 3)
	res, err := Merge(typ, base, a, c, OperationReplay)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ConflictFields) != 0 {
		t.Fatalf("equal containers reported as conflict: %v", res.ConflictFields)
	}
}
