// Package locks implements SAP-style logical locks: coarse-grained,
// application-level locks that are held across process steps and database
// transactions, independently of any storage-level latching. The paper notes
// (sections 2.3 and 3.1) that SAP uses logical locks with coarse granularity
// to avoid database bottlenecks: the lock prevents access by *other* users,
// not by the user (owner) who performed the transaction, and it is released
// when the deferred asynchronous work completes.
package locks

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Mode is the sharing mode of a lock request.
type Mode int

// Lock modes.
const (
	// Shared locks allow other shared holders but exclude exclusive ones.
	Shared Mode = iota
	// Exclusive locks exclude all other owners.
	Exclusive
)

// String returns the mode name.
func (m Mode) String() string {
	if m == Shared {
		return "shared"
	}
	return "exclusive"
}

// Common errors.
var (
	// ErrConflict is returned when the resource is held in an incompatible
	// mode by another owner.
	ErrConflict = errors.New("locks: conflict")
	// ErrNotHeld is returned when releasing a lock the owner does not hold.
	ErrNotHeld = errors.New("locks: not held")
	// ErrTimeout is returned when a blocking acquire exceeds its deadline.
	ErrTimeout = errors.New("locks: timeout")
)

// Owner identifies the holder of a logical lock: a user session, a process
// instance or a deferred-update worker.
type Owner string

// Lock describes one held logical lock.
type Lock struct {
	Resource string
	Owner    Owner
	Mode     Mode
	Acquired time.Time
	Expires  time.Time // zero means no expiry
}

// Options configure a Manager.
type Options struct {
	// DefaultTTL bounds how long a lock may be held before it expires and is
	// reclaimed; zero means locks never expire on their own.
	DefaultTTL time.Duration
	// Clock supplies time (tests inject a fake source).
	Clock func() time.Time
}

// Manager grants and tracks logical locks. All methods are safe for
// concurrent use.
type Manager struct {
	opts Options

	mu    sync.Mutex
	cond  *sync.Cond
	held  map[string][]Lock // resource -> holders
	waits uint64
	denls uint64
}

// NewManager creates a lock manager.
func NewManager(opts Options) *Manager {
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	m := &Manager{opts: opts, held: map[string][]Lock{}}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// compatible reports whether a new request by owner in mode can coexist with
// the current holders of the resource. Re-entrant requests by the same owner
// are always compatible: the paper's point is that logical locks block other
// users, never the owner itself.
func compatible(holders []Lock, owner Owner, mode Mode) bool {
	for _, h := range holders {
		if h.Owner == owner {
			continue
		}
		if mode == Exclusive || h.Mode == Exclusive {
			return false
		}
	}
	return true
}

// TryAcquire attempts to acquire the lock without waiting. ttl of zero uses
// the manager default.
func (m *Manager) TryAcquire(owner Owner, resource string, mode Mode, ttl time.Duration) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.acquireLocked(owner, resource, mode, ttl)
}

// Acquire blocks until the lock is granted or the timeout elapses.
func (m *Manager) Acquire(owner Owner, resource string, mode Mode, ttl, timeout time.Duration) error {
	deadline := m.opts.Clock().Add(timeout)
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		err := m.acquireLocked(owner, resource, mode, ttl)
		if err == nil {
			return nil
		}
		if !errors.Is(err, ErrConflict) {
			return err
		}
		if !m.opts.Clock().Before(deadline) {
			m.denls++
			return fmt.Errorf("%w: %s on %s", ErrTimeout, owner, resource)
		}
		m.waits++
		waker := time.AfterFunc(2*time.Millisecond, func() { m.cond.Broadcast() })
		m.cond.Wait()
		waker.Stop()
	}
}

func (m *Manager) acquireLocked(owner Owner, resource string, mode Mode, ttl time.Duration) error {
	now := m.opts.Clock()
	m.expireLocked(resource, now)
	holders := m.held[resource]
	// Re-entrant upgrade/downgrade: replace this owner's existing entry.
	for i, h := range holders {
		if h.Owner == owner {
			if !compatible(removeAt(holders, i), owner, mode) {
				return fmt.Errorf("%w: upgrade of %s on %s blocked", ErrConflict, owner, resource)
			}
			holders[i].Mode = maxMode(h.Mode, mode)
			holders[i].Expires = m.expiry(now, ttl)
			m.held[resource] = holders
			return nil
		}
	}
	if !compatible(holders, owner, mode) {
		return fmt.Errorf("%w: %s wants %s on %s", ErrConflict, owner, mode, resource)
	}
	m.held[resource] = append(holders, Lock{
		Resource: resource, Owner: owner, Mode: mode,
		Acquired: now, Expires: m.expiry(now, ttl),
	})
	return nil
}

func maxMode(a, b Mode) Mode {
	if a == Exclusive || b == Exclusive {
		return Exclusive
	}
	return Shared
}

func removeAt(ls []Lock, i int) []Lock {
	out := make([]Lock, 0, len(ls)-1)
	out = append(out, ls[:i]...)
	return append(out, ls[i+1:]...)
}

func (m *Manager) expiry(now time.Time, ttl time.Duration) time.Time {
	if ttl <= 0 {
		ttl = m.opts.DefaultTTL
	}
	if ttl <= 0 {
		return time.Time{}
	}
	return now.Add(ttl)
}

// expireLocked drops expired holders of the resource.
func (m *Manager) expireLocked(resource string, now time.Time) {
	holders := m.held[resource]
	kept := holders[:0]
	for _, h := range holders {
		if h.Expires.IsZero() || h.Expires.After(now) {
			kept = append(kept, h)
		}
	}
	if len(kept) == 0 {
		delete(m.held, resource)
		return
	}
	m.held[resource] = kept
}

// Release drops the owner's lock on the resource.
func (m *Manager) Release(owner Owner, resource string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	holders := m.held[resource]
	for i, h := range holders {
		if h.Owner == owner {
			rest := removeAt(holders, i)
			if len(rest) == 0 {
				delete(m.held, resource)
			} else {
				m.held[resource] = rest
			}
			m.cond.Broadcast()
			return nil
		}
	}
	return fmt.Errorf("%w: %s on %s", ErrNotHeld, owner, resource)
}

// ReleaseAll drops every lock the owner holds (end of a process or of the
// deferred update that the lock protected) and returns how many were
// released.
func (m *Manager) ReleaseAll(owner Owner) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	released := 0
	for res, holders := range m.held {
		kept := holders[:0]
		for _, h := range holders {
			if h.Owner == owner {
				released++
				continue
			}
			kept = append(kept, h)
		}
		if len(kept) == 0 {
			delete(m.held, res)
		} else {
			m.held[res] = kept
		}
	}
	if released > 0 {
		m.cond.Broadcast()
	}
	return released
}

// Holders returns the current holders of a resource (expired entries
// excluded).
func (m *Manager) Holders(resource string) []Lock {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.expireLocked(resource, m.opts.Clock())
	return append([]Lock(nil), m.held[resource]...)
}

// HeldBy returns every resource the owner currently holds, sorted.
func (m *Manager) HeldBy(owner Owner) []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []string
	for res, holders := range m.held {
		for _, h := range holders {
			if h.Owner == owner && (h.Expires.IsZero() || h.Expires.After(m.opts.Clock())) {
				out = append(out, res)
				break
			}
		}
	}
	sort.Strings(out)
	return out
}

// IsLockedByOther reports whether the resource is held by any owner other
// than the given one in a mode incompatible with the requested mode. This is
// what the SAP transaction model checks before letting a different user
// touch an entity whose deferred updates are still pending (section 2.3).
func (m *Manager) IsLockedByOther(owner Owner, resource string, mode Mode) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.expireLocked(resource, m.opts.Clock())
	return !compatible(m.held[resource], owner, mode)
}

// Stats returns (waits, timeouts) counters accumulated by blocking acquires.
func (m *Manager) Stats() (uint64, uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.waits, m.denls
}

// CoarseResource builds a coarse-granularity resource name from an entity
// type and a grouping key, e.g. CoarseResource("Inventory", "plant-7")
// locks all inventory of one plant with a single logical lock rather than one
// lock per item — the coarse-granularity technique section 3.1 mentions.
func CoarseResource(entityType, group string) string {
	return entityType + "::" + group
}

// FineResource builds a per-entity resource name.
func FineResource(entityType, id string) string {
	return entityType + "/" + id
}

// IsCoarse reports whether the resource name was built by CoarseResource.
func IsCoarse(resource string) bool { return strings.Contains(resource, "::") }

// Guard couples acquisition and release for the common
// "lock, run, unlock" pattern used by process steps.
type Guard struct {
	m        *Manager
	owner    Owner
	acquired []string
}

// NewGuard returns a guard for the owner.
func NewGuard(m *Manager, owner Owner) *Guard {
	return &Guard{m: m, owner: owner}
}

// Lock acquires the resource (blocking up to timeout) and remembers it for
// ReleaseAll.
func (g *Guard) Lock(resource string, mode Mode, ttl, timeout time.Duration) error {
	if err := g.m.Acquire(g.owner, resource, mode, ttl, timeout); err != nil {
		return err
	}
	g.acquired = append(g.acquired, resource)
	return nil
}

// Unlock releases every resource the guard acquired, in reverse order.
func (g *Guard) Unlock() {
	for i := len(g.acquired) - 1; i >= 0; i-- {
		_ = g.m.Release(g.owner, g.acquired[i])
	}
	g.acquired = nil
}
