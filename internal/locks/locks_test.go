package locks

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestTryAcquireAndRelease(t *testing.T) {
	m := NewManager(Options{})
	if err := m.TryAcquire("u1", "Order/1", Exclusive, 0); err != nil {
		t.Fatalf("TryAcquire: %v", err)
	}
	if err := m.TryAcquire("u2", "Order/1", Exclusive, 0); !errors.Is(err, ErrConflict) {
		t.Fatalf("want ErrConflict, got %v", err)
	}
	if err := m.Release("u1", "Order/1"); err != nil {
		t.Fatalf("Release: %v", err)
	}
	if err := m.TryAcquire("u2", "Order/1", Exclusive, 0); err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
}

func TestSharedCompatibility(t *testing.T) {
	m := NewManager(Options{})
	if err := m.TryAcquire("u1", "r", Shared, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.TryAcquire("u2", "r", Shared, 0); err != nil {
		t.Fatalf("two shared holders should coexist: %v", err)
	}
	if err := m.TryAcquire("u3", "r", Exclusive, 0); !errors.Is(err, ErrConflict) {
		t.Fatalf("exclusive over shared should conflict: %v", err)
	}
	if len(m.Holders("r")) != 2 {
		t.Fatalf("holders = %d", len(m.Holders("r")))
	}
}

func TestReentrantOwnerNeverBlocksItself(t *testing.T) {
	// The paper: logical locks "prevent access by other users, not the user
	// who performed the transaction".
	m := NewManager(Options{})
	if err := m.TryAcquire("u1", "r", Exclusive, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.TryAcquire("u1", "r", Exclusive, 0); err != nil {
		t.Fatalf("re-entrant acquire blocked: %v", err)
	}
	if err := m.TryAcquire("u1", "r", Shared, 0); err != nil {
		t.Fatalf("re-entrant downgrade blocked: %v", err)
	}
	// Still exclusive from others' perspective.
	if !m.IsLockedByOther("u2", "r", Shared) {
		t.Fatal("resource should be locked for other users")
	}
	if m.IsLockedByOther("u1", "r", Exclusive) {
		t.Fatal("owner should not be locked out by itself")
	}
}

func TestSharedToExclusiveUpgrade(t *testing.T) {
	m := NewManager(Options{})
	m.TryAcquire("u1", "r", Shared, 0)
	if err := m.TryAcquire("u1", "r", Exclusive, 0); err != nil {
		t.Fatalf("upgrade with no other holders should succeed: %v", err)
	}
	holders := m.Holders("r")
	if len(holders) != 1 || holders[0].Mode != Exclusive {
		t.Fatalf("holders = %+v", holders)
	}
	// Upgrade blocked while another shared holder exists.
	m2 := NewManager(Options{})
	m2.TryAcquire("u1", "r", Shared, 0)
	m2.TryAcquire("u2", "r", Shared, 0)
	if err := m2.TryAcquire("u1", "r", Exclusive, 0); !errors.Is(err, ErrConflict) {
		t.Fatalf("upgrade should conflict with other shared holder: %v", err)
	}
}

func TestReleaseNotHeld(t *testing.T) {
	m := NewManager(Options{})
	if err := m.Release("u1", "r"); !errors.Is(err, ErrNotHeld) {
		t.Fatalf("want ErrNotHeld, got %v", err)
	}
}

func TestReleaseAll(t *testing.T) {
	m := NewManager(Options{})
	m.TryAcquire("u1", "a", Exclusive, 0)
	m.TryAcquire("u1", "b", Shared, 0)
	m.TryAcquire("u2", "b", Shared, 0)
	if got := m.ReleaseAll("u1"); got != 2 {
		t.Fatalf("ReleaseAll = %d, want 2", got)
	}
	if len(m.HeldBy("u1")) != 0 {
		t.Fatal("u1 still holds locks")
	}
	if len(m.HeldBy("u2")) != 1 {
		t.Fatal("u2's lock was dropped")
	}
	if got := m.ReleaseAll("u1"); got != 0 {
		t.Fatalf("second ReleaseAll = %d", got)
	}
}

func TestHeldBySorted(t *testing.T) {
	m := NewManager(Options{})
	m.TryAcquire("u1", "zebra", Shared, 0)
	m.TryAcquire("u1", "alpha", Shared, 0)
	held := m.HeldBy("u1")
	if len(held) != 2 || held[0] != "alpha" || held[1] != "zebra" {
		t.Fatalf("HeldBy = %v", held)
	}
}

func TestLockExpiry(t *testing.T) {
	now := time.Unix(0, 0)
	m := NewManager(Options{DefaultTTL: 10 * time.Second, Clock: func() time.Time { return now }})
	m.TryAcquire("u1", "r", Exclusive, 0)
	if err := m.TryAcquire("u2", "r", Exclusive, 0); !errors.Is(err, ErrConflict) {
		t.Fatal("lock should still be held")
	}
	now = now.Add(11 * time.Second)
	if err := m.TryAcquire("u2", "r", Exclusive, 0); err != nil {
		t.Fatalf("expired lock should be reclaimable: %v", err)
	}
	if len(m.HeldBy("u1")) != 0 {
		t.Fatal("expired lock still listed")
	}
}

func TestExplicitTTLOverridesDefault(t *testing.T) {
	now := time.Unix(0, 0)
	m := NewManager(Options{DefaultTTL: time.Hour, Clock: func() time.Time { return now }})
	m.TryAcquire("u1", "r", Exclusive, time.Second)
	now = now.Add(2 * time.Second)
	if err := m.TryAcquire("u2", "r", Exclusive, 0); err != nil {
		t.Fatalf("short TTL not honoured: %v", err)
	}
}

func TestZeroTTLNeverExpires(t *testing.T) {
	now := time.Unix(0, 0)
	m := NewManager(Options{Clock: func() time.Time { return now }})
	m.TryAcquire("u1", "r", Exclusive, 0)
	now = now.Add(1000 * time.Hour)
	if err := m.TryAcquire("u2", "r", Exclusive, 0); !errors.Is(err, ErrConflict) {
		t.Fatal("lock without TTL expired")
	}
}

func TestAcquireBlocksUntilRelease(t *testing.T) {
	m := NewManager(Options{})
	if err := m.TryAcquire("u1", "r", Exclusive, 0); err != nil {
		t.Fatal(err)
	}
	var acquired atomic.Bool
	done := make(chan error, 1)
	go func() {
		err := m.Acquire("u2", "r", Exclusive, 0, 5*time.Second)
		acquired.Store(true)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	if acquired.Load() {
		t.Fatal("acquire succeeded while lock held")
	}
	m.Release("u1", "r")
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("blocked acquire failed: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocked acquire never completed")
	}
	waits, _ := m.Stats()
	if waits == 0 {
		t.Fatal("Stats should record at least one wait")
	}
}

func TestAcquireTimeout(t *testing.T) {
	m := NewManager(Options{})
	m.TryAcquire("u1", "r", Exclusive, 0)
	start := time.Now()
	err := m.Acquire("u2", "r", Exclusive, 0, 50*time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("timeout took far too long")
	}
	_, timeouts := m.Stats()
	if timeouts != 1 {
		t.Fatalf("timeouts = %d", timeouts)
	}
}

func TestCoarseVsFineResourceNames(t *testing.T) {
	coarse := CoarseResource("Inventory", "plant-7")
	fine := FineResource("Inventory", "widget-123")
	if !IsCoarse(coarse) {
		t.Fatalf("coarse name not recognised: %s", coarse)
	}
	if IsCoarse(fine) {
		t.Fatalf("fine name misclassified: %s", fine)
	}
	m := NewManager(Options{})
	// One coarse lock covers a whole plant: a second owner conflicts even
	// though they want a "different" item, which is the throughput trade-off
	// experiment E11 measures.
	m.TryAcquire("worker-1", coarse, Exclusive, 0)
	if err := m.TryAcquire("worker-2", coarse, Exclusive, 0); !errors.Is(err, ErrConflict) {
		t.Fatal("coarse lock should conflict")
	}
}

func TestGuardUnlocksEverything(t *testing.T) {
	m := NewManager(Options{})
	g := NewGuard(m, "proc-1")
	if err := g.Lock("a", Exclusive, 0, time.Second); err != nil {
		t.Fatal(err)
	}
	if err := g.Lock("b", Shared, 0, time.Second); err != nil {
		t.Fatal(err)
	}
	if len(m.HeldBy("proc-1")) != 2 {
		t.Fatal("guard locks not held")
	}
	g.Unlock()
	if len(m.HeldBy("proc-1")) != 0 {
		t.Fatal("guard did not release all locks")
	}
	// Unlock is idempotent.
	g.Unlock()
}

func TestGuardLockFailureDoesNotRecord(t *testing.T) {
	m := NewManager(Options{})
	m.TryAcquire("other", "a", Exclusive, 0)
	g := NewGuard(m, "proc-1")
	if err := g.Lock("a", Exclusive, 0, 10*time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
	g.Unlock() // must not panic or release the other owner's lock
	if len(m.Holders("a")) != 1 {
		t.Fatal("guard released someone else's lock")
	}
}

func TestConcurrentAcquireReleaseNoLostLocks(t *testing.T) {
	m := NewManager(Options{})
	const workers = 8
	const iterations = 50
	var counter int64 // protected only by the logical lock
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			owner := Owner(fmt.Sprintf("w%d", w))
			for i := 0; i < iterations; i++ {
				if err := m.Acquire(owner, "critical", Exclusive, 0, 10*time.Second); err != nil {
					t.Errorf("acquire: %v", err)
					return
				}
				counter++
				if err := m.Release(owner, "critical"); err != nil {
					t.Errorf("release: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if counter != workers*iterations {
		t.Fatalf("counter = %d, want %d (mutual exclusion violated)", counter, workers*iterations)
	}
}

func TestModeString(t *testing.T) {
	if Shared.String() != "shared" || Exclusive.String() != "exclusive" {
		t.Fatal("mode names wrong")
	}
}
