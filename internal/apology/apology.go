// Package apology implements the tentative-operation and apology-oriented
// computing machinery of principles 2.1 and 2.9: business promises (an order
// confirmation, an available-to-purchase offer) are recorded as tentative,
// visible and durable commitments; when reality or replica reconciliation
// makes a promise impossible to keep, the infrastructure breaks it, issues an
// apology and triggers compensation, rather than blocking the business up
// front.
package apology

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/entity"
)

// Common errors.
var (
	// ErrUnknownPromise is returned when keeping or breaking a promise that
	// was never registered.
	ErrUnknownPromise = errors.New("apology: unknown promise")
	// ErrAlreadySettled is returned when a promise has already been kept or
	// broken.
	ErrAlreadySettled = errors.New("apology: promise already settled")
	// ErrPromiseLimit is returned by MakeChecked when an entity already
	// carries its maximum number of pending promises. Refusing the promise
	// up front is the guardrail against unbounded over-promising: every
	// pending promise is a potential apology, and a business caps how many
	// it is willing to owe on one entity before it stops promising.
	ErrPromiseLimit = errors.New("apology: promise limit reached")
)

// Status is the lifecycle state of a promise.
type Status int

// Promise states.
const (
	// Pending promises have been made but not yet fulfilled or withdrawn.
	Pending Status = iota
	// Kept promises were fulfilled.
	Kept
	// Broken promises were withdrawn; an apology was issued.
	Broken
)

// String returns the status name.
func (s Status) String() string {
	switch s {
	case Pending:
		return "pending"
	case Kept:
		return "kept"
	case Broken:
		return "broken"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Promise is a tentative business commitment to a partner.
type Promise struct {
	ID      string
	Kind    string // e.g. "order-confirmation", "available-to-purchase"
	Entity  entity.Key
	TxnID   string // the tentative LSDB record backing the promise
	Partner string // who the promise was made to
	// Quantity is the promised amount for capacity-style promises (books,
	// inventory, seats); zero for non-quantitative promises.
	Quantity float64
	// Deadline is when the promise expires on its own.
	Deadline time.Time
	Made     time.Time
	Status   Status
	// Terms carries free-form promise attributes (price, delivery date, ...).
	Terms map[string]interface{}
}

// Apology records that a promise was broken, to whom, and what compensation
// was offered.
type Apology struct {
	PromiseID    string
	Kind         string
	Partner      string
	Reason       string
	Compensation string
	Issued       time.Time
}

// String renders the apology the way a customer-facing message would.
func (a Apology) String() string {
	s := fmt.Sprintf("apology to %s: %s (promise %s, %s)", a.Partner, a.Reason, a.PromiseID, a.Kind)
	if a.Compensation != "" {
		s += "; compensation: " + a.Compensation
	}
	return s
}

// BreakHook is invoked when a promise is broken, so the caller can withdraw
// the tentative LSDB record and schedule compensation process steps.
type BreakHook func(p Promise, reason string)

// Options configure a Ledger.
type Options struct {
	// Clock supplies time (tests inject a fake source).
	Clock func() time.Time
	// OnBreak is called for every broken promise (may be nil).
	OnBreak BreakHook
	// MaxPendingPerEntity caps how many pending promises one entity may
	// carry at once; MakeChecked refuses further promises with
	// ErrPromiseLimit until some settle. Zero means unlimited. The plain
	// Make path registers unconditionally — callers that configure a limit
	// should promise through MakeChecked.
	MaxPendingPerEntity int
}

// Ledger tracks promises and the apologies issued for broken ones. All
// methods are safe for concurrent use.
type Ledger struct {
	opts Options

	mu        sync.Mutex
	promises  map[string]*Promise
	apologies []Apology
	seq       uint64
	kept      uint64
	broken    uint64
}

// NewLedger creates an empty ledger.
func NewLedger(opts Options) *Ledger {
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	return &Ledger{opts: opts, promises: map[string]*Promise{}}
}

// Make registers a new pending promise and returns it with an assigned ID.
// It never refuses; see MakeChecked for the limit-enforcing variant.
func (l *Ledger) Make(p Promise) Promise {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.makeLocked(p)
}

// MakeChecked registers a new pending promise like Make, but enforces
// Options.MaxPendingPerEntity: when the promise's entity already carries the
// maximum number of pending promises it returns ErrPromiseLimit and registers
// nothing. The check and the registration are atomic, so concurrent promisers
// cannot jointly overshoot the limit.
func (l *Ledger) MakeChecked(p Promise) (Promise, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if max := l.opts.MaxPendingPerEntity; max > 0 {
		pending := 0
		for _, q := range l.promises {
			if q.Status == Pending && q.Entity == p.Entity {
				pending++
			}
		}
		if pending >= max {
			return Promise{}, fmt.Errorf("%w: %d pending on %s", ErrPromiseLimit, pending, p.Entity)
		}
	}
	return l.makeLocked(p), nil
}

func (l *Ledger) makeLocked(p Promise) Promise {
	l.seq++
	if p.ID == "" {
		p.ID = fmt.Sprintf("promise-%d", l.seq)
	}
	p.Status = Pending
	p.Made = l.opts.Clock()
	cp := p
	l.promises[p.ID] = &cp
	return p
}

// Get returns a copy of the promise.
func (l *Ledger) Get(id string) (Promise, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	p, ok := l.promises[id]
	if !ok {
		return Promise{}, fmt.Errorf("%w: %s", ErrUnknownPromise, id)
	}
	return *p, nil
}

// Keep marks the promise as fulfilled.
func (l *Ledger) Keep(id string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	p, ok := l.promises[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownPromise, id)
	}
	if p.Status != Pending {
		return fmt.Errorf("%w: %s is %s", ErrAlreadySettled, id, p.Status)
	}
	p.Status = Kept
	l.kept++
	return nil
}

// Break withdraws the promise, records an apology and invokes the break hook.
func (l *Ledger) Break(id, reason, compensation string) (Apology, error) {
	l.mu.Lock()
	p, ok := l.promises[id]
	if !ok {
		l.mu.Unlock()
		return Apology{}, fmt.Errorf("%w: %s", ErrUnknownPromise, id)
	}
	if p.Status != Pending {
		l.mu.Unlock()
		return Apology{}, fmt.Errorf("%w: %s is %s", ErrAlreadySettled, id, p.Status)
	}
	p.Status = Broken
	l.broken++
	a := Apology{
		PromiseID:    p.ID,
		Kind:         p.Kind,
		Partner:      p.Partner,
		Reason:       reason,
		Compensation: compensation,
		Issued:       l.opts.Clock(),
	}
	l.apologies = append(l.apologies, a)
	hook := l.opts.OnBreak
	promiseCopy := *p
	l.mu.Unlock()
	if hook != nil {
		hook(promiseCopy, reason)
	}
	return a, nil
}

// Pending returns copies of all pending promises, ordered by when they were
// made (first-come-first-served, the order overbooking resolution honours).
func (l *Ledger) Pending() []Promise {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []Promise
	for _, p := range l.promises {
		if p.Status == Pending {
			out = append(out, *p)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Made.Equal(out[j].Made) {
			return out[i].ID < out[j].ID
		}
		return out[i].Made.Before(out[j].Made)
	})
	return out
}

// PendingFor returns pending promises concerning one entity.
func (l *Ledger) PendingFor(key entity.Key) []Promise {
	var out []Promise
	for _, p := range l.Pending() {
		if p.Entity == key {
			out = append(out, p)
		}
	}
	return out
}

// Apologies returns a copy of all apologies issued so far.
func (l *Ledger) Apologies() []Apology {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Apology(nil), l.apologies...)
}

// Counts returns (pending, kept, broken).
func (l *Ledger) Counts() (int, uint64, uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	pending := 0
	for _, p := range l.promises {
		if p.Status == Pending {
			pending++
		}
	}
	return pending, l.kept, l.broken
}

// ApologyRate returns broken / (kept + broken), the headline metric of
// experiment E6. It is zero when nothing has been settled yet.
func (l *Ledger) ApologyRate() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	settled := l.kept + l.broken
	if settled == 0 {
		return 0
	}
	return float64(l.broken) / float64(settled)
}

// ResolveOverbooking settles the pending promises for one entity against the
// actually available quantity: promises are honoured first-come-first-served
// until capacity runs out; the rest are broken with the given reason. This is
// the bookstore scenario of principle 2.9 (5 copies, more than 5 sold).
// It returns how many promises were kept and the apologies issued.
func (l *Ledger) ResolveOverbooking(key entity.Key, available float64, reason, compensation string) (int, []Apology, error) {
	pending := l.PendingFor(key)
	kept := 0
	var apologies []Apology
	remaining := available
	for _, p := range pending {
		need := p.Quantity
		if need <= 0 {
			need = 1
		}
		if need <= remaining {
			if err := l.Keep(p.ID); err != nil {
				return kept, apologies, err
			}
			remaining -= need
			kept++
			continue
		}
		a, err := l.Break(p.ID, reason, compensation)
		if err != nil {
			return kept, apologies, err
		}
		apologies = append(apologies, a)
	}
	return kept, apologies, nil
}

// ExpireOverdue breaks every pending promise whose deadline has passed,
// returning the apologies issued. It models offers that lapse (the
// available-to-purchase deadline of SAP SCM).
func (l *Ledger) ExpireOverdue(reason string) []Apology {
	now := l.opts.Clock()
	var out []Apology
	for _, p := range l.Pending() {
		if !p.Deadline.IsZero() && p.Deadline.Before(now) {
			if a, err := l.Break(p.ID, reason, ""); err == nil {
				out = append(out, a)
			}
		}
	}
	return out
}
