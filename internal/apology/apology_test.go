package apology

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/entity"
)

func book(id string) entity.Key { return entity.Key{Type: "Book", ID: id} }

func fixedClock(start time.Time) (func() time.Time, func(time.Duration)) {
	var mu sync.Mutex
	now := start
	return func() time.Time {
			mu.Lock()
			defer mu.Unlock()
			return now
		}, func(d time.Duration) {
			mu.Lock()
			defer mu.Unlock()
			now = now.Add(d)
		}
}

func TestMakeKeepBreakLifecycle(t *testing.T) {
	l := NewLedger(Options{})
	p := l.Make(Promise{Kind: "order-confirmation", Entity: book("b1"), Partner: "alice", Quantity: 1})
	if p.ID == "" || p.Status != Pending {
		t.Fatalf("Make returned %+v", p)
	}
	got, err := l.Get(p.ID)
	if err != nil || got.Partner != "alice" {
		t.Fatalf("Get: %+v %v", got, err)
	}
	if err := l.Keep(p.ID); err != nil {
		t.Fatalf("Keep: %v", err)
	}
	if err := l.Keep(p.ID); !errors.Is(err, ErrAlreadySettled) {
		t.Fatalf("double Keep: %v", err)
	}
	if _, err := l.Break(p.ID, "too late", ""); !errors.Is(err, ErrAlreadySettled) {
		t.Fatalf("Break after Keep: %v", err)
	}
	pending, kept, broken := l.Counts()
	if pending != 0 || kept != 1 || broken != 0 {
		t.Fatalf("Counts = %d/%d/%d", pending, kept, broken)
	}
	if l.ApologyRate() != 0 {
		t.Fatalf("ApologyRate = %v", l.ApologyRate())
	}
}

func TestBreakIssuesApologyAndHook(t *testing.T) {
	var hooked []string
	l := NewLedger(Options{OnBreak: func(p Promise, reason string) {
		hooked = append(hooked, p.ID+":"+reason)
	}})
	p := l.Make(Promise{Kind: "order-confirmation", Entity: book("b1"), Partner: "bob", TxnID: "txn-9"})
	a, err := l.Break(p.ID, "out of stock", "10% discount on next order")
	if err != nil {
		t.Fatalf("Break: %v", err)
	}
	if a.Partner != "bob" || a.Reason != "out of stock" {
		t.Fatalf("apology = %+v", a)
	}
	if !strings.Contains(a.String(), "compensation") {
		t.Fatalf("apology text: %s", a)
	}
	if len(hooked) != 1 || !strings.Contains(hooked[0], "out of stock") {
		t.Fatalf("hook = %v", hooked)
	}
	if len(l.Apologies()) != 1 {
		t.Fatalf("apologies = %v", l.Apologies())
	}
	if l.ApologyRate() != 1.0 {
		t.Fatalf("ApologyRate = %v", l.ApologyRate())
	}
}

func TestUnknownPromiseErrors(t *testing.T) {
	l := NewLedger(Options{})
	if _, err := l.Get("nope"); !errors.Is(err, ErrUnknownPromise) {
		t.Fatal("Get should fail")
	}
	if err := l.Keep("nope"); !errors.Is(err, ErrUnknownPromise) {
		t.Fatal("Keep should fail")
	}
	if _, err := l.Break("nope", "r", ""); !errors.Is(err, ErrUnknownPromise) {
		t.Fatal("Break should fail")
	}
}

func TestPendingOrderedByTime(t *testing.T) {
	clk, advance := fixedClock(time.Unix(100, 0))
	l := NewLedger(Options{Clock: clk})
	first := l.Make(Promise{Kind: "k", Partner: "p1", Entity: book("b")})
	advance(time.Second)
	second := l.Make(Promise{Kind: "k", Partner: "p2", Entity: book("b")})
	pending := l.Pending()
	if len(pending) != 2 || pending[0].ID != first.ID || pending[1].ID != second.ID {
		t.Fatalf("Pending order wrong: %+v", pending)
	}
	other := l.Make(Promise{Kind: "k", Partner: "p3", Entity: book("other")})
	forB := l.PendingFor(book("b"))
	if len(forB) != 2 {
		t.Fatalf("PendingFor = %+v", forB)
	}
	_ = other
}

func TestResolveOverbookingKeepsFIFO(t *testing.T) {
	// The paper's example: only 5 copies of the book, more than 5 sold.
	clk, advance := fixedClock(time.Unix(0, 0))
	l := NewLedger(Options{Clock: clk})
	var ids []string
	for i := 0; i < 8; i++ {
		p := l.Make(Promise{
			Kind:     "order-confirmation",
			Entity:   book("bestseller"),
			Partner:  fmt.Sprintf("customer-%d", i),
			Quantity: 1,
		})
		ids = append(ids, p.ID)
		advance(time.Millisecond)
	}
	kept, apologies, err := l.ResolveOverbooking(book("bestseller"), 5, "only 5 copies in stock", "full refund")
	if err != nil {
		t.Fatalf("ResolveOverbooking: %v", err)
	}
	if kept != 5 || len(apologies) != 3 {
		t.Fatalf("kept=%d apologies=%d", kept, len(apologies))
	}
	// The first five promises (FIFO) were honoured.
	for i := 0; i < 5; i++ {
		p, _ := l.Get(ids[i])
		if p.Status != Kept {
			t.Fatalf("promise %d status = %s", i, p.Status)
		}
	}
	for i := 5; i < 8; i++ {
		p, _ := l.Get(ids[i])
		if p.Status != Broken {
			t.Fatalf("promise %d status = %s", i, p.Status)
		}
	}
	if rate := l.ApologyRate(); rate != 3.0/8.0 {
		t.Fatalf("ApologyRate = %v", rate)
	}
}

func TestResolveOverbookingWithQuantities(t *testing.T) {
	l := NewLedger(Options{})
	l.Make(Promise{Kind: "atp", Entity: book("widget"), Partner: "a", Quantity: 3})
	l.Make(Promise{Kind: "atp", Entity: book("widget"), Partner: "b", Quantity: 4})
	l.Make(Promise{Kind: "atp", Entity: book("widget"), Partner: "c", Quantity: 2})
	kept, apologies, err := l.ResolveOverbooking(book("widget"), 5, "capacity", "")
	if err != nil {
		t.Fatal(err)
	}
	// a (3) fits, b (4) does not (only 2 left), c (2) fits.
	if kept != 2 || len(apologies) != 1 || apologies[0].Partner != "b" {
		t.Fatalf("kept=%d apologies=%+v", kept, apologies)
	}
}

func TestResolveOverbookingZeroQuantityTreatedAsOne(t *testing.T) {
	l := NewLedger(Options{})
	l.Make(Promise{Kind: "k", Entity: book("x"), Partner: "a"})
	l.Make(Promise{Kind: "k", Entity: book("x"), Partner: "b"})
	kept, apologies, err := l.ResolveOverbooking(book("x"), 1, "capacity", "")
	if err != nil || kept != 1 || len(apologies) != 1 {
		t.Fatalf("kept=%d apologies=%d err=%v", kept, len(apologies), err)
	}
}

func TestExpireOverdue(t *testing.T) {
	clk, advance := fixedClock(time.Unix(1000, 0))
	l := NewLedger(Options{Clock: clk})
	l.Make(Promise{Kind: "atp", Entity: book("w"), Partner: "a", Deadline: time.Unix(1500, 0)})
	l.Make(Promise{Kind: "atp", Entity: book("w"), Partner: "b", Deadline: time.Unix(3000, 0)})
	l.Make(Promise{Kind: "atp", Entity: book("w"), Partner: "c"}) // no deadline
	advance(1000 * time.Second)                                   // now = 2000
	apologies := l.ExpireOverdue("offer expired")
	if len(apologies) != 1 || apologies[0].Partner != "a" {
		t.Fatalf("apologies = %+v", apologies)
	}
	pending, _, broken := l.Counts()
	if pending != 2 || broken != 1 {
		t.Fatalf("counts = %d pending %d broken", pending, broken)
	}
}

func TestStatusString(t *testing.T) {
	if Pending.String() != "pending" || Kept.String() != "kept" || Broken.String() != "broken" {
		t.Fatal("status names wrong")
	}
	if Status(9).String() == "" {
		t.Fatal("unknown status should render")
	}
}

func TestConcurrentMakeAndSettle(t *testing.T) {
	l := NewLedger(Options{})
	const n = 200
	var wg sync.WaitGroup
	ids := make([]string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p := l.Make(Promise{Kind: "k", Entity: book("b"), Partner: fmt.Sprintf("p%d", i), Quantity: 1})
			ids[i] = p.ID
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i%2 == 0 {
				l.Keep(ids[i])
			} else {
				l.Break(ids[i], "r", "")
			}
		}(i)
	}
	wg.Wait()
	pending, kept, broken := l.Counts()
	if pending != 0 || kept != n/2 || broken != n/2 {
		t.Fatalf("counts = %d/%d/%d", pending, kept, broken)
	}
	if l.ApologyRate() != 0.5 {
		t.Fatalf("rate = %v", l.ApologyRate())
	}
}

func TestPromiseLimitExhaustion(t *testing.T) {
	l := NewLedger(Options{MaxPendingPerEntity: 2})
	// Fill the entity to its limit.
	p1, err := l.MakeChecked(Promise{Entity: book("b1"), Partner: "alice"})
	if err != nil {
		t.Fatalf("first promise: %v", err)
	}
	if _, err := l.MakeChecked(Promise{Entity: book("b1"), Partner: "bob"}); err != nil {
		t.Fatalf("second promise: %v", err)
	}
	// The third promise on the same entity is refused...
	if _, err := l.MakeChecked(Promise{Entity: book("b1"), Partner: "carol"}); !errors.Is(err, ErrPromiseLimit) {
		t.Fatalf("third promise: want ErrPromiseLimit, got %v", err)
	}
	// ...and registers nothing.
	if pending, _, _ := l.Counts(); pending != 2 {
		t.Fatalf("pending after refusal = %d, want 2", pending)
	}
	// Another entity is unaffected: the limit is per entity.
	if _, err := l.MakeChecked(Promise{Entity: book("b2"), Partner: "carol"}); err != nil {
		t.Fatalf("other entity: %v", err)
	}
	// Settling a promise frees capacity — kept or broken both count.
	if err := l.Keep(p1.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := l.MakeChecked(Promise{Entity: book("b1"), Partner: "carol"}); err != nil {
		t.Fatalf("promise after settling: %v", err)
	}
}

func TestPromiseLimitUnlimitedByDefault(t *testing.T) {
	l := NewLedger(Options{})
	for i := 0; i < 100; i++ {
		if _, err := l.MakeChecked(Promise{Entity: book("b1")}); err != nil {
			t.Fatalf("promise %d refused without a limit: %v", i, err)
		}
	}
}

func TestPromiseLimitConcurrentMakersNeverOvershoot(t *testing.T) {
	const limit = 5
	l := NewLedger(Options{MaxPendingPerEntity: limit})
	var wg sync.WaitGroup
	var refused sync.Map
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := l.MakeChecked(Promise{Entity: book("b1")}); err != nil {
				refused.Store(i, err)
			}
		}(i)
	}
	wg.Wait()
	pending, _, _ := l.Counts()
	if pending != limit {
		t.Fatalf("pending = %d, want exactly the limit %d", pending, limit)
	}
	refusals := 0
	refused.Range(func(_, v interface{}) bool {
		if !errors.Is(v.(error), ErrPromiseLimit) {
			t.Fatalf("unexpected refusal error: %v", v)
		}
		refusals++
		return true
	})
	if refusals != 20-limit {
		t.Fatalf("refusals = %d, want %d", refusals, 20-limit)
	}
}
