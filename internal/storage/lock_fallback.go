//go:build !unix

// Data-directory lock (non-unix fallback): an O_EXCL-created LOCK file
// holding the owner's pid. Unlike the flock lease on unix, this lock is not
// released by the kernel when the holder dies, so a crash leaves a stale
// LOCK behind; the error message tells the operator to remove it after
// verifying the recorded pid is gone (see docs/OPERATIONS.md).
package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// dirLock is a held data-directory lease.
type dirLock struct {
	path string
}

// acquireDirLock creates dir's LOCK file exclusively, failing fast with
// ErrDirLocked when it already exists.
func acquireDirLock(dir string) (*dirLock, error) {
	path := filepath.Join(dir, lockFileName)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		if os.IsExist(err) {
			pid, _ := os.ReadFile(path)
			return nil, fmt.Errorf("%w: %s exists (held by pid %s; remove it only after verifying that process is gone)",
				ErrDirLocked, path, strings.TrimSpace(string(pid)))
		}
		return nil, fmt.Errorf("storage: %w", err)
	}
	_, _ = fmt.Fprintf(f, "%d\n", os.Getpid())
	if err := f.Close(); err != nil {
		os.Remove(path)
		return nil, fmt.Errorf("storage: %w", err)
	}
	return &dirLock{path: path}, nil
}

// release removes the LOCK file.
func (l *dirLock) release() {
	if l == nil || l.path == "" {
		return
	}
	_ = os.Remove(l.path)
	l.path = ""
}
