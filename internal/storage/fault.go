// Fault-injecting backend wrapper.
//
// FaultBackend wraps any Backend and injects the disk's failure vocabulary
// on demand: ENOSPC-style append refusals, torn (partial) batch writes,
// fsync failures that poison the backend permanently, and read-side
// corruption discovered mid-log. Injection is explicit — the caller's test
// or harness decides, typically from a seeded RNG, which operation fails —
// so every schedule replays deterministically. The wrapper mirrors the
// WAL's degradation semantics exactly:
//
//   - a plain append failure writes nothing and is retryable (space frees),
//   - a torn append persists a prefix of the batch and fail-stops the
//     backend (ErrFailStopped) until Quarantine erases the partial suffix,
//   - an fsync failure poisons the backend permanently (ErrPoisoned) — a
//     retried fsync can lie, so nothing in-process clears it,
//   - injected corruption surfaces as *CorruptError from reads and appends
//     alike (a lying disk is usually caught at the next I/O) until
//     Quarantine cuts the log back to the last verifiably good record.
package storage

import (
	"errors"
	"fmt"
	"sync"
)

// ErrNoSpace is the injected analogue of ENOSPC: the append wrote nothing
// and may succeed later, once space frees.
var ErrNoSpace = errors.New("storage: no space left on device (injected)")

// errTornAppend marks an injected partial batch write.
var errTornAppend = errors.New("storage: torn append (injected)")

// FaultStats counts what the wrapper injected and passed through.
type FaultStats struct {
	AppendsPassed  uint64
	AppendsRefused uint64 // ENOSPC-style refusals (nothing written)
	TornAppends    uint64 // partial writes followed by fail-stop
	SyncPoisonings uint64 // fsync failures (permanent)
	CorruptionHits uint64 // operations refused by injected corruption
	Quarantines    uint64
}

// FaultBackend wraps an inner Backend with schedulable fault injection. All
// methods are safe for concurrent use. The zero fault state passes every
// operation through untouched.
type FaultBackend struct {
	mu    sync.Mutex
	inner Backend

	failAppends int    // next n appends fail with ErrNoSpace
	tornNext    bool   // next append persists a prefix, then fail-stops
	poisonNext  bool   // next append's "fsync" fails, poisoning permanently
	corruptAt   uint64 // injected corruption at/after this append LSN (0: none)

	broken   bool // fail-stopped after a torn append; Quarantine clears
	poisoned bool // fsync lied; permanent

	// goodMark is the highest append LSN the inner backend fully and
	// cleanly accepted — the truncation point Quarantine cuts back to.
	goodMark uint64

	stats FaultStats
}

// NewFaultBackend wraps inner. Typically inner is a Memory backend (the
// harness's standby-comparable log) or a WAL.
func NewFaultBackend(inner Backend) *FaultBackend {
	return &FaultBackend{inner: inner}
}

// FailAppends makes the next n AppendBatch calls fail with ErrNoSpace
// without writing anything — the injected disk-full window. It is
// retryable: call (or let the schedule run the window down) and appends
// succeed again, like space freeing.
func (f *FaultBackend) FailAppends(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failAppends = n
}

// TearNextAppend makes the next AppendBatch persist only a prefix of its
// batch and then fail-stop the backend with ErrFailStopped, imitating a
// partial frame write the WAL could not erase. Quarantine repairs it.
func (f *FaultBackend) TearNextAppend() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.tornNext = true
}

// PoisonNextSync makes the fsync of the next AppendBatch fail: the batch
// reaches the inner backend but the caller gets ErrPoisoned, and every
// later operation fails the same way. Permanent by design — never retry a
// failed fsync.
func (f *FaultBackend) PoisonNextSync() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.poisonNext = true
}

// CorruptFrom injects read-side corruption at and after lsn: Replay and
// StreamAfter fail with a typed *CorruptError when they reach it, and
// appends are refused the same way (a lying disk is usually detected at
// the next I/O). Quarantine clears it by cutting the log back to lsn-1.
func (f *FaultBackend) CorruptFrom(lsn uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.corruptAt = lsn
}

// Heal cancels any pending retryable injections (the ENOSPC window and a
// pending torn/fsync trigger that has not fired yet). It does not clear a
// fail-stop that already happened (Quarantine does) nor a poisoning
// (nothing does).
func (f *FaultBackend) Heal() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failAppends = 0
	f.tornNext = false
	f.poisonNext = false
}

// Stats returns a copy of the injection counters.
func (f *FaultBackend) Stats() FaultStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// Poisoned reports whether an injected fsync failure poisoned the backend.
func (f *FaultBackend) Poisoned() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.poisoned
}

// Inner returns the wrapped backend.
func (f *FaultBackend) Inner() Backend { return f.inner }

func (f *FaultBackend) corruptErrLocked(op string) error {
	f.stats.CorruptionHits++
	return &CorruptError{File: "injected", Offset: int64(f.corruptAt), Reason: op + " hit injected corruption"}
}

// AppendBatch applies the scheduled fault, if any, then delegates.
func (f *FaultBackend) AppendBatch(recs []WALRecord) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	switch {
	case f.poisoned:
		return fmt.Errorf("storage: append: %w", ErrPoisoned)
	case f.broken:
		return fmt.Errorf("storage: append: %w", ErrFailStopped)
	case f.corruptAt > 0:
		return f.corruptErrLocked("append")
	case f.failAppends > 0:
		f.failAppends--
		f.stats.AppendsRefused++
		return fmt.Errorf("storage: append: %w", ErrNoSpace)
	case f.tornNext:
		f.tornNext = false
		f.stats.TornAppends++
		if keep := len(recs) / 2; keep > 0 {
			if err := f.inner.AppendBatch(recs[:keep]); err != nil {
				return err
			}
		}
		f.broken = true
		return fmt.Errorf("storage: append: %w: %v", ErrFailStopped, errTornAppend)
	}
	if err := f.inner.AppendBatch(recs); err != nil {
		return err
	}
	for i := range recs {
		if recs[i].Kind == KindAppend && recs[i].LSN > f.goodMark {
			f.goodMark = recs[i].LSN
		}
	}
	if f.poisonNext {
		f.poisonNext = false
		f.poisoned = true
		f.stats.SyncPoisonings++
		return fmt.Errorf("storage: append sync: %w", ErrPoisoned)
	}
	f.stats.AppendsPassed++
	return nil
}

// Checkpoint delegates; a degraded backend refuses (the store should not be
// checkpointing a log it cannot append to).
func (f *FaultBackend) Checkpoint(watermark uint64, fill func(put func(WALRecord) error) error) error {
	f.mu.Lock()
	if f.poisoned {
		f.mu.Unlock()
		return fmt.Errorf("storage: checkpoint: %w", ErrPoisoned)
	}
	if f.broken {
		f.mu.Unlock()
		return fmt.Errorf("storage: checkpoint: %w", ErrFailStopped)
	}
	if f.corruptAt > 0 {
		err := f.corruptErrLocked("checkpoint")
		f.mu.Unlock()
		return err
	}
	f.mu.Unlock()
	return f.inner.Checkpoint(watermark, fill)
}

// Replay delegates, failing with a typed *CorruptError when the stream
// reaches injected corruption.
func (f *FaultBackend) Replay(fn func(WALRecord) error) (uint64, error) {
	f.mu.Lock()
	corruptAt := f.corruptAt
	f.mu.Unlock()
	wrapped := fn
	if corruptAt > 0 {
		wrapped = func(rec WALRecord) error {
			if rec.Kind == KindAppend && rec.LSN >= corruptAt {
				f.mu.Lock()
				err := f.corruptErrLocked("replay")
				f.mu.Unlock()
				return err
			}
			if fn == nil {
				return nil
			}
			return fn(rec)
		}
	}
	return f.inner.Replay(wrapped)
}

// Sync delegates unless poisoned.
func (f *FaultBackend) Sync() error {
	f.mu.Lock()
	if f.poisoned {
		f.mu.Unlock()
		return fmt.Errorf("storage: sync: %w", ErrPoisoned)
	}
	f.mu.Unlock()
	return f.inner.Sync()
}

// Close delegates.
func (f *FaultBackend) Close() error { return f.inner.Close() }

// StreamAfter delegates through the Streamer fast path when the inner
// backend has one, failing typed at injected corruption.
func (f *FaultBackend) StreamAfter(after uint64, fn func(WALRecord) error) error {
	f.mu.Lock()
	corruptAt := f.corruptAt
	f.mu.Unlock()
	wrapped := fn
	if corruptAt > 0 {
		wrapped = func(rec WALRecord) error {
			if rec.Kind == KindAppend && rec.LSN >= corruptAt {
				f.mu.Lock()
				err := f.corruptErrLocked("stream")
				f.mu.Unlock()
				return err
			}
			return fn(rec)
		}
	}
	st, ok := f.inner.(Streamer)
	if !ok {
		return errors.New("storage: inner backend does not stream")
	}
	return st.StreamAfter(after, wrapped)
}

// ReplicationWatermark delegates (0 when the inner backend has no marker).
func (f *FaultBackend) ReplicationWatermark() uint64 {
	if rm, ok := f.inner.(ReplicationMarker); ok {
		return rm.ReplicationWatermark()
	}
	return 0
}

// SetReplicationWatermark delegates when the inner backend has a marker.
func (f *FaultBackend) SetReplicationWatermark(lsn uint64) error {
	if rm, ok := f.inner.(ReplicationMarker); ok {
		return rm.SetReplicationWatermark(lsn)
	}
	return nil
}

// Quarantine cuts the log back to the last verifiably good append record:
// the torn suffix of a fail-stopped append and everything at or after an
// injected corruption point are dropped (delegating to the inner backend's
// own Quarantine when it has one), the fail-stop and corruption injections
// clear, and the backend accepts appends again. The caller refills the
// dropped suffix from a peer before resuming writes. A poisoned backend
// refuses — quarantine cannot restore unknown durability.
func (f *FaultBackend) Quarantine() (uint64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.poisoned {
		return 0, fmt.Errorf("storage: quarantine: %w", ErrPoisoned)
	}
	lastGood := f.goodMark
	if f.corruptAt > 0 && f.corruptAt-1 < lastGood {
		lastGood = f.corruptAt - 1
	}
	switch inner := f.inner.(type) {
	case *Memory:
		inner.truncateTailAfter(lastGood)
	case Quarantiner:
		lg, err := inner.Quarantine()
		if err != nil {
			return 0, err
		}
		if lg < lastGood {
			lastGood = lg
		}
	}
	f.corruptAt = 0
	f.broken = false
	f.goodMark = lastGood
	f.stats.Quarantines++
	return lastGood, nil
}
