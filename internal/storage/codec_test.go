package storage

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/clock"
	"repro/internal/entity"
)

func roundTrip(t *testing.T, rec WALRecord) WALRecord {
	t.Helper()
	b, err := EncodeRecord(nil, &rec)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	out, err := DecodeRecord(b)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	return out
}

func TestCodecRoundTripAppend(t *testing.T) {
	rec := WALRecord{
		LSN: 42,
		Key: entity.Key{Type: "Order", ID: "O-1"},
		Ops: []entity.Op{
			entity.Set("status", "OPEN").Described("open the order"),
			entity.Delta("total", 99.25),
			entity.InsertChild("lineitems", "L1", entity.Fields{
				"qty":    int64(3),
				"price":  12.5,
				"flag":   true,
				"nested": entity.Fields{"deep": int64(-7)},
				"list":   []interface{}{int64(1), "two", 3.0, nil},
			}),
			entity.DeleteChild("lineitems", "L0"),
			entity.Delete(),
		},
		Stamp:     clock.Timestamp{WallNanos: 123456789, Logical: 7, Node: "n1"},
		Origin:    "n1",
		TxnID:     "txn-9",
		Tentative: true,
		Obsolete:  true,
	}
	got := roundTrip(t, rec)
	if !reflect.DeepEqual(rec, got) {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", rec, got)
	}
}

// TestCodecInt64Exact is the regression test for the JSON round-trip bug:
// int64 magnitudes above 2^53 must survive the binary codec bit-for-bit.
func TestCodecInt64Exact(t *testing.T) {
	big := int64(1)<<62 + 12345 // not representable in float64
	vals := []interface{}{
		big, -big, int64(math.MaxInt64), int64(math.MinInt64),
		uint64(math.MaxUint64), // above MaxInt64: keeps its uint64 identity
	}
	for _, v := range vals {
		rec := WALRecord{
			LSN: 1, Key: entity.Key{Type: "T", ID: "i"},
			Ops: []entity.Op{entity.Set("v", v)},
		}
		got := roundTrip(t, rec)
		if out := got.Ops[0].Value; out != v {
			t.Errorf("value %v (%T) decoded as %v (%T)", v, v, out, out)
		}
	}
}

// TestCodecNormalisesSmallWidths pins the documented width normalisation:
// narrow integer kinds decode as int64 (the width the entity layer uses),
// float32 as float64.
func TestCodecNormalisesSmallWidths(t *testing.T) {
	rec := WALRecord{
		LSN: 1, Key: entity.Key{Type: "T", ID: "i"},
		Ops: []entity.Op{
			entity.Set("a", int(7)),
			entity.Set("b", int32(-9)),
			entity.Set("c", uint16(65535)),
			entity.Set("d", float32(1.5)),
			entity.Set("e", uint64(10)), // fits int64: normalised
		},
	}
	got := roundTrip(t, rec)
	want := []interface{}{int64(7), int64(-9), int64(65535), float64(1.5), int64(10)}
	for i, w := range want {
		if got.Ops[i].Value != w {
			t.Errorf("op %d: got %v (%T), want %v (%T)", i, got.Ops[i].Value, got.Ops[i].Value, w, w)
		}
	}
}

func TestCodecMarks(t *testing.T) {
	obs := roundTrip(t, WALRecord{Kind: KindObsolete, Key: entity.Key{Type: "A", ID: "x"}, TxnID: "t1"})
	if obs.Kind != KindObsolete || obs.Key.ID != "x" || obs.TxnID != "t1" {
		t.Fatalf("obsolete mark mangled: %+v", obs)
	}
	cmp := roundTrip(t, WALRecord{Kind: KindCompact, Horizon: 99})
	if cmp.Kind != KindCompact || cmp.Horizon != 99 {
		t.Fatalf("compact mark mangled: %+v", cmp)
	}
}

func TestCodecSummaryState(t *testing.T) {
	st := entity.NewState(entity.Key{Type: "Order", ID: "O-7"})
	st.Fields["status"] = "SHIPPED"
	st.Fields["total"] = 120.5
	st.Fields["count"] = int64(1) << 60
	st.Tentative = true
	st.RestoreChild("lineitems", entity.Child{ID: "L1", Fields: entity.Fields{"qty": int64(2)}})
	st.RestoreChild("lineitems", entity.Child{ID: "L2", Fields: entity.Fields{"qty": int64(5)}, Deleted: true})
	st.RestoreChild("notes", entity.Child{ID: "N1", Fields: entity.Fields{"text": "rush"}})
	st.Freeze()

	got := roundTrip(t, WALRecord{Kind: KindSummary, Key: st.Key, Summary: st})
	out := got.Summary
	if out == nil || !out.Frozen() {
		t.Fatalf("summary not decoded frozen: %+v", got)
	}
	if !reflect.DeepEqual(out.Fields, st.Fields) || out.Tentative != st.Tentative || out.Deleted != st.Deleted {
		t.Fatalf("summary root mismatch:\n in: %+v\nout: %+v", st.Fields, out.Fields)
	}
	if !reflect.DeepEqual(out.Collections(), st.Collections()) {
		t.Fatalf("collections mismatch: %v vs %v", out.Collections(), st.Collections())
	}
	for _, col := range st.Collections() {
		if !reflect.DeepEqual(out.Children(col), st.Children(col)) {
			t.Fatalf("collection %s mismatch:\n in: %+v\nout: %+v", col, st.Children(col), out.Children(col))
		}
	}
}

func TestCodecRejectsUnsupportedValue(t *testing.T) {
	rec := WALRecord{
		LSN: 1, Key: entity.Key{Type: "T", ID: "i"},
		Ops: []entity.Op{{Kind: entity.OpSet, Field: "bad", Value: struct{ X int }{1}}},
	}
	if _, err := EncodeRecord(nil, &rec); err == nil {
		t.Fatal("expected encode error for unsupported value type")
	}
}

func TestCodecTruncatedPayload(t *testing.T) {
	rec := WALRecord{
		LSN: 5, Key: entity.Key{Type: "T", ID: "i"},
		Ops: []entity.Op{entity.Set("f", "value")},
	}
	b, err := EncodeRecord(nil, &rec)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(b); cut++ {
		if _, err := DecodeRecord(b[:cut]); err == nil {
			t.Fatalf("decode of %d/%d bytes succeeded", cut, len(b))
		}
	}
}
