// Binary codec for WALRecords: the payload format inside WAL frames and
// checkpoint files. The format is length-safe (every variable-size element is
// length-prefixed), position-independent (a payload decodes without external
// context) and exact for 64-bit integers — unlike the JSON stream codec,
// which decodes every number through float64 and silently corrupts int64
// magnitudes above 2^53, values here round-trip bit-for-bit.
//
// Value encoding is a one-byte tag followed by the payload. Integer widths
// are normalised the same way the entity layer normalises them on input
// (everything integral becomes int64; uint64 values above MaxInt64 keep
// their own tag), so a decoded record is SanitizeOps-clean by construction.
package storage

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"repro/internal/clock"
	"repro/internal/entity"
)

// ErrCodec wraps encode failures for values outside the entity layer's
// supported set. Appends sanitize values before they reach a commit cycle,
// so hitting this means a record bypassed SanitizeOps.
type codecError struct{ msg string }

func (e *codecError) Error() string { return "storage: codec: " + e.msg }

// Value tags.
const (
	vNil byte = iota
	vFalse
	vTrue
	vInt    // varint int64
	vUint   // uvarint uint64 (only for values above MaxInt64)
	vFloat  // 8-byte little-endian IEEE 754
	vString // uvarint length + bytes
	vFields // uvarint count + (string key, value)*
	vMap    // same as vFields, decodes to map[string]interface{}
	vSlice  // uvarint count + value*
)

func appendUvarint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }
func appendVarint(b []byte, v int64) []byte   { return binary.AppendVarint(b, v) }

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendFloat(b []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(f))
}

// appendValue encodes one operation value. Map iteration order is
// deterministic (sorted keys) so identical values produce identical bytes —
// checkpoints of equal stores are byte-comparable.
func appendValue(b []byte, v interface{}) ([]byte, error) {
	switch x := v.(type) {
	case nil:
		return append(b, vNil), nil
	case bool:
		if x {
			return append(b, vTrue), nil
		}
		return append(b, vFalse), nil
	case int:
		return appendVarint(append(b, vInt), int64(x)), nil
	case int8:
		return appendVarint(append(b, vInt), int64(x)), nil
	case int16:
		return appendVarint(append(b, vInt), int64(x)), nil
	case int32:
		return appendVarint(append(b, vInt), int64(x)), nil
	case int64:
		return appendVarint(append(b, vInt), x), nil
	case uint:
		return appendUint(b, uint64(x)), nil
	case uint8:
		return appendVarint(append(b, vInt), int64(x)), nil
	case uint16:
		return appendVarint(append(b, vInt), int64(x)), nil
	case uint32:
		return appendVarint(append(b, vInt), int64(x)), nil
	case uint64:
		return appendUint(b, x), nil
	case float32:
		return appendFloat(append(b, vFloat), float64(x)), nil
	case float64:
		return appendFloat(append(b, vFloat), x), nil
	case string:
		return appendString(append(b, vString), x), nil
	case entity.Fields:
		return appendFieldMap(append(b, vFields), x)
	case map[string]interface{}:
		return appendFieldMap(append(b, vMap), x)
	case []interface{}:
		b = appendUvarint(append(b, vSlice), uint64(len(x)))
		var err error
		for _, e := range x {
			if b, err = appendValue(b, e); err != nil {
				return nil, err
			}
		}
		return b, nil
	default:
		return nil, &codecError{msg: fmt.Sprintf("unsupported value type %T", v)}
	}
}

func appendUint(b []byte, x uint64) []byte {
	if x > math.MaxInt64 {
		return appendUvarint(append(b, vUint), x)
	}
	return appendVarint(append(b, vInt), int64(x))
}

func appendFieldMap[M ~map[string]interface{}](b []byte, m M) ([]byte, error) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	b = appendUvarint(b, uint64(len(keys)))
	var err error
	for _, k := range keys {
		b = appendString(b, k)
		if b, err = appendValue(b, m[k]); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// decoder walks an encoded payload. All reads are bounds-checked; a short or
// malformed payload yields an error, never a panic, because the payload may
// come from a corrupt file (the frame CRC catches media errors, not bugs in
// a foreign writer).
type decoder struct {
	b []byte
}

func (d *decoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		return 0, &codecError{msg: "truncated uvarint"}
	}
	d.b = d.b[n:]
	return v, nil
}

func (d *decoder) varint() (int64, error) {
	v, n := binary.Varint(d.b)
	if n <= 0 {
		return 0, &codecError{msg: "truncated varint"}
	}
	d.b = d.b[n:]
	return v, nil
}

func (d *decoder) byte() (byte, error) {
	if len(d.b) == 0 {
		return 0, &codecError{msg: "truncated payload"}
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v, nil
}

func (d *decoder) string() (string, error) {
	n, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if uint64(len(d.b)) < n {
		return "", &codecError{msg: "truncated string"}
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s, nil
}

func (d *decoder) float() (float64, error) {
	if len(d.b) < 8 {
		return 0, &codecError{msg: "truncated float"}
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.b))
	d.b = d.b[8:]
	return v, nil
}

func (d *decoder) value() (interface{}, error) {
	tag, err := d.byte()
	if err != nil {
		return nil, err
	}
	switch tag {
	case vNil:
		return nil, nil
	case vFalse:
		return false, nil
	case vTrue:
		return true, nil
	case vInt:
		return d.varint()
	case vUint:
		return d.uvarint()
	case vFloat:
		return d.float()
	case vString:
		return d.string()
	case vFields:
		f, err := d.fieldMap()
		return f, err
	case vMap:
		f, err := d.fieldMap()
		if f == nil {
			return (map[string]interface{})(nil), err
		}
		return map[string]interface{}(f), err
	case vSlice:
		n, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if uint64(len(d.b)) < n { // each element is at least one tag byte
			return nil, &codecError{msg: "truncated slice"}
		}
		out := make([]interface{}, n)
		for i := range out {
			if out[i], err = d.value(); err != nil {
				return nil, err
			}
		}
		return out, nil
	default:
		return nil, &codecError{msg: fmt.Sprintf("unknown value tag 0x%02x", tag)}
	}
}

func (d *decoder) fieldMap() (entity.Fields, error) {
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if uint64(len(d.b)) < n { // each entry is at least two bytes
		return nil, &codecError{msg: "truncated field map"}
	}
	out := make(entity.Fields, n)
	for i := uint64(0); i < n; i++ {
		k, err := d.string()
		if err != nil {
			return nil, err
		}
		if out[k], err = d.value(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Record flag bits.
const (
	flagTentative = 1 << 0
	flagObsolete  = 1 << 1
	flagChildRow  = 1 << 2 // op-level: a ChildRow map follows
)

// EncodeRecord appends the binary payload of one record to b. The payload
// carries no length or checksum — framing (wal.go) supplies both.
func EncodeRecord(b []byte, rec *WALRecord) ([]byte, error) {
	b = append(b, byte(rec.Kind))
	switch rec.Kind {
	case KindObsolete:
		b = appendString(b, rec.Key.Type)
		b = appendString(b, rec.Key.ID)
		return appendString(b, rec.TxnID), nil
	case KindCompact:
		return appendUvarint(b, rec.Horizon), nil
	case KindSummary:
		b = appendString(b, rec.Key.Type)
		b = appendString(b, rec.Key.ID)
		b, err := appendState(b, rec.Summary)
		if err != nil {
			return nil, err
		}
		// Horizon (the highest LSN the summary folds in) trails the state so
		// pre-tiered snapshots — which end at the state — still decode: the
		// decoder reads it only when bytes remain.
		return appendUvarint(b, rec.Horizon), nil
	}
	b = appendUvarint(b, rec.LSN)
	b = appendString(b, rec.Key.Type)
	b = appendString(b, rec.Key.ID)
	b = appendVarint(b, rec.Stamp.WallNanos)
	b = appendUvarint(b, uint64(rec.Stamp.Logical))
	b = appendString(b, string(rec.Stamp.Node))
	b = appendString(b, string(rec.Origin))
	b = appendString(b, rec.TxnID)
	var flags byte
	if rec.Tentative {
		flags |= flagTentative
	}
	if rec.Obsolete {
		flags |= flagObsolete
	}
	b = append(b, flags)
	b = appendUvarint(b, uint64(len(rec.Ops)))
	var err error
	for i := range rec.Ops {
		if b, err = appendOp(b, &rec.Ops[i]); err != nil {
			return nil, err
		}
	}
	return b, nil
}

func appendOp(b []byte, op *entity.Op) ([]byte, error) {
	b = appendUvarint(b, uint64(op.Kind))
	b = appendString(b, op.Field)
	var err error
	if b, err = appendValue(b, op.Value); err != nil {
		return nil, err
	}
	b = appendFloat(b, op.Delta)
	b = appendString(b, op.Collection)
	b = appendString(b, op.ChildID)
	var flags byte
	if op.ChildRow != nil {
		flags |= flagChildRow
	}
	b = append(b, flags)
	if op.ChildRow != nil {
		if b, err = appendFieldMap(b, op.ChildRow); err != nil {
			return nil, err
		}
	}
	return appendString(b, op.Describe), nil
}

// appendState encodes an archived summary: flags, root fields, then every
// child collection with all rows (tombstones included — deletes are marks,
// not removals, and the summary preserves them).
func appendState(b []byte, st *entity.State) ([]byte, error) {
	var flags byte
	if st.Tentative {
		flags |= flagTentative
	}
	if st.Deleted {
		flags |= flagObsolete
	}
	b = append(b, flags)
	b, err := appendFieldMap(b, st.Fields)
	if err != nil {
		return nil, err
	}
	cols := st.Collections()
	b = appendUvarint(b, uint64(len(cols)))
	for _, name := range cols {
		b = appendString(b, name)
		rows := st.Children(name)
		b = appendUvarint(b, uint64(len(rows)))
		for _, row := range rows {
			b = appendString(b, row.ID)
			var rf byte
			if row.Deleted {
				rf |= flagObsolete
			}
			b = append(b, rf)
			if b, err = appendFieldMap(b, row.Fields); err != nil {
				return nil, err
			}
		}
	}
	return b, nil
}

// DecodeRecord parses one payload produced by EncodeRecord.
func DecodeRecord(payload []byte) (WALRecord, error) {
	d := &decoder{b: payload}
	kind, err := d.byte()
	if err != nil {
		return WALRecord{}, err
	}
	rec := WALRecord{Kind: RecordKind(kind)}
	switch rec.Kind {
	case KindObsolete:
		if rec.Key.Type, err = d.string(); err != nil {
			return rec, err
		}
		if rec.Key.ID, err = d.string(); err != nil {
			return rec, err
		}
		rec.TxnID, err = d.string()
		return rec, err
	case KindCompact:
		rec.Horizon, err = d.uvarint()
		return rec, err
	case KindSummary:
		if rec.Key.Type, err = d.string(); err != nil {
			return rec, err
		}
		if rec.Key.ID, err = d.string(); err != nil {
			return rec, err
		}
		if rec.Summary, err = d.state(rec.Key); err != nil {
			return rec, err
		}
		// Trailing horizon, absent in pre-tiered snapshots.
		if len(d.b) > 0 {
			rec.Horizon, err = d.uvarint()
		}
		return rec, err
	case KindAppend:
	default:
		return rec, &codecError{msg: fmt.Sprintf("unknown record kind 0x%02x", kind)}
	}
	if rec.LSN, err = d.uvarint(); err != nil {
		return rec, err
	}
	if rec.Key.Type, err = d.string(); err != nil {
		return rec, err
	}
	if rec.Key.ID, err = d.string(); err != nil {
		return rec, err
	}
	if rec.Stamp.WallNanos, err = d.varint(); err != nil {
		return rec, err
	}
	logical, err := d.uvarint()
	if err != nil {
		return rec, err
	}
	rec.Stamp.Logical = uint32(logical)
	node, err := d.string()
	if err != nil {
		return rec, err
	}
	rec.Stamp.Node = clock.NodeID(node)
	origin, err := d.string()
	if err != nil {
		return rec, err
	}
	rec.Origin = clock.NodeID(origin)
	if rec.TxnID, err = d.string(); err != nil {
		return rec, err
	}
	flags, err := d.byte()
	if err != nil {
		return rec, err
	}
	rec.Tentative = flags&flagTentative != 0
	rec.Obsolete = flags&flagObsolete != 0
	nOps, err := d.uvarint()
	if err != nil {
		return rec, err
	}
	if uint64(len(d.b)) < nOps {
		return rec, &codecError{msg: "truncated op list"}
	}
	if nOps > 0 {
		rec.Ops = make([]entity.Op, nOps)
		for i := range rec.Ops {
			if err := d.op(&rec.Ops[i]); err != nil {
				return rec, err
			}
		}
	}
	return rec, nil
}

func (d *decoder) op(op *entity.Op) error {
	kind, err := d.uvarint()
	if err != nil {
		return err
	}
	op.Kind = entity.OpKind(kind)
	if op.Field, err = d.string(); err != nil {
		return err
	}
	if op.Value, err = d.value(); err != nil {
		return err
	}
	if op.Delta, err = d.float(); err != nil {
		return err
	}
	if op.Collection, err = d.string(); err != nil {
		return err
	}
	if op.ChildID, err = d.string(); err != nil {
		return err
	}
	flags, err := d.byte()
	if err != nil {
		return err
	}
	if flags&flagChildRow != 0 {
		if op.ChildRow, err = d.fieldMap(); err != nil {
			return err
		}
	}
	op.Describe, err = d.string()
	return err
}

func (d *decoder) state(key entity.Key) (*entity.State, error) {
	st := entity.NewState(key)
	flags, err := d.byte()
	if err != nil {
		return nil, err
	}
	st.Tentative = flags&flagTentative != 0
	st.Deleted = flags&flagObsolete != 0
	if st.Fields, err = d.fieldMap(); err != nil {
		return nil, err
	}
	if st.Fields == nil {
		st.Fields = entity.Fields{}
	}
	nCols, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if uint64(len(d.b)) < nCols {
		return nil, &codecError{msg: "truncated collection list"}
	}
	for i := uint64(0); i < nCols; i++ {
		name, err := d.string()
		if err != nil {
			return nil, err
		}
		nRows, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if uint64(len(d.b)) < nRows {
			return nil, &codecError{msg: "truncated row list"}
		}
		for r := uint64(0); r < nRows; r++ {
			id, err := d.string()
			if err != nil {
				return nil, err
			}
			rf, err := d.byte()
			if err != nil {
				return nil, err
			}
			fields, err := d.fieldMap()
			if err != nil {
				return nil, err
			}
			if fields == nil {
				fields = entity.Fields{}
			}
			st.RestoreChild(name, entity.Child{ID: id, Fields: fields, Deleted: rf&flagObsolete != 0})
		}
	}
	return st.Freeze(), nil
}
