package storage

import "repro/internal/entity"

// Tiered is the seam between the store and an LSM-tiered persistence engine
// (internal/lsm). A tiered backend is a Backend whose monolithic Checkpoint
// is replaced by incremental flushes: the store captures the settled summary
// state of its dirty entities under the shard locks (cheap, zero-copy) and a
// background flusher turns the capture into an immutable sorted table, after
// which the WAL segments the table covers are pruned. The store detects the
// capability with a type assertion on Options.Backend.
type Tiered interface {
	Backend

	// SealWAL rotates the backing log's active segment so every record
	// appended so far lives in sealed, immutable segments, and returns the
	// index of the last sealed segment. A flush capture taken after SealWAL
	// covers everything in the sealed prefix, which FlushTable may therefore
	// prune once the table is durable.
	SealWAL() (uint64, error)

	// FlushTable durably writes one immutable level-0 table from a flush
	// capture — per dirty entity a settled summary (KindSummary, with
	// Horizon) and/or the detail records above the summary's horizon
	// (KindAppend), sorted by key — then prunes the backing log through the
	// sealed segment boundary. watermark is the highest LSN the capture
	// observed. An error means the table did not land; the log is untouched
	// and the caller re-arms the capture for the next attempt.
	FlushTable(entries []WALRecord, watermark, boundary uint64) error

	// LookupSummary returns the newest durable summary for key, searching
	// tables newest-to-oldest behind bloom filters, or (nil, nil) when no
	// table holds one. This is the cold read path for entities evicted from
	// the in-memory store.
	LookupSummary(key entity.Key) (*WALRecord, error)

	// TieredStats reports table/level layout and flush/compaction/bloom
	// counters for operational surfaces.
	TieredStats() TieredStats
}

// TieredStats is a point-in-time snapshot of a tiered backend's shape and
// counters.
type TieredStats struct {
	Levels    int    // distinct populated levels
	Tables    int    // total live tables
	L0Tables  int    // tables not yet compacted into a leveled run
	TableKeys uint64 // sum of per-table key counts (keys in several tables count once each)
	Bytes     int64  // total bytes of live table files

	BloomHits  uint64 // lookups a bloom filter passed through to a table read that found the key
	BloomSkips uint64 // table reads avoided because the bloom filter said absent
	BloomFalse uint64 // bloom said maybe, but the table did not hold the key

	Flushes           uint64 // tables successfully flushed
	FlushFailures     uint64 // flush attempts that did not land a table
	Compactions       uint64 // successful compaction passes
	CompactFailures   uint64 // compaction passes that failed (inputs retained)
	CompactionBacklog int    // level-0 tables at or beyond the compaction trigger
	WALPruneSkips     uint64 // flushes that landed but retained the log tail (lagging standby still streams it)
	WALPruneErrors    uint64 // flushes that landed but whose prune attempt failed
}
