// Segmented write-ahead log backend.
//
// Layout of a data directory:
//
//	wal-0000000001.seg   segment files: 8-byte magic, then framed records
//	ckpt-0000000003.snap checkpoint snapshot: 8-byte magic, framed records
//	CHECKPOINT           manifest (JSON): which snapshot is current and the
//	                     exact segment/offset the replayable tail starts at
//
// Every record — in segments and snapshots alike — is framed as
//
//	uint32 payload length | uint32 CRC32(payload) | payload
//
// (little-endian, IEEE CRC). A commit cycle is one buffered write of its
// batch's frames and, in SyncAlways mode, one fsync — the log force that
// group commit amortises across the batch's writers.
//
// Segments rotate by size: when the active segment exceeds SegmentBytes it
// is synced, sealed and a new one started. Checkpoints are written to a
// temporary file, fsynced and renamed before the manifest is atomically
// replaced, so a crash anywhere leaves either the old or the new checkpoint
// installed, never a half-written one. After a successful checkpoint,
// segments wholly before the manifest position are pruned.
//
// Recovery replays the manifest's snapshot, then only the log written after
// it: segments before the manifest position are skipped without being read.
// A torn final record — a crash mid-write leaves an incomplete frame at the
// end of the last segment — is truncated away and replay succeeds without
// it. Anything else that fails framing or CRC is surfaced as *CorruptError:
// silent data loss is the one outcome a durable log must never shrug at.
package storage

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Segment and snapshot file magics ("SOUPWAL"/"SOUPCKP" + format version).
var (
	segMagic  = []byte("SOUPWAL\x01")
	ckptMagic = []byte("SOUPCKP\x01")
)

const (
	manifestName = "CHECKPOINT"
	// lockFileName is the exclusive-access lease of a data directory; see
	// lock.go / lock_fallback.go.
	lockFileName = "LOCK"
	frameHeader  = 8 // uint32 length + uint32 CRC
	// maxFrame bounds a single record payload. A length prefix beyond it is
	// treated as corruption rather than an allocation request.
	maxFrame = 1 << 28
)

// ErrDirLocked is returned by OpenWAL when another process holds the data
// directory's lock: two writers interleaving appends in one WAL directory
// would corrupt the log, so the second opener fails fast instead.
var ErrDirLocked = errors.New("storage: data directory locked")

// SyncMode selects when the WAL forces appended bytes to stable storage.
type SyncMode int

// Sync modes.
const (
	// SyncOS leaves flushing to the operating system's page cache: appends
	// are buffered writes and fsync happens only on segment seal, checkpoint
	// and Close. Fastest, and a crash may lose the most recent commits (the
	// store itself stays consistent — recovery truncates the torn tail).
	SyncOS SyncMode = iota
	// SyncAlways fsyncs after every commit cycle: an acknowledged append
	// survives a crash. Group commit amortises the fsync across the batch.
	SyncAlways
)

// ParseSyncMode maps the -fsync-mode flag vocabulary onto a SyncMode.
func ParseSyncMode(s string) (SyncMode, error) {
	switch s {
	case "always", "fsync":
		return SyncAlways, nil
	case "os", "none", "":
		return SyncOS, nil
	default:
		return SyncOS, fmt.Errorf("storage: unknown fsync mode %q (want always or os)", s)
	}
}

// String returns the flag spelling of the mode.
func (m SyncMode) String() string {
	if m == SyncAlways {
		return "always"
	}
	return "os"
}

// WALOptions configure a segmented WAL.
type WALOptions struct {
	// Dir is the data directory; it is created if missing.
	Dir string
	// SegmentBytes is the rotation threshold for the active segment
	// (default 4 MiB).
	SegmentBytes int64
	// Sync selects the durability/latency trade-off (default SyncOS).
	Sync SyncMode
}

// CorruptError reports a framing or checksum failure in a segment or
// snapshot file. It is a typed error so recovery tooling can distinguish
// real corruption (refuse to open, restore from backup) from the benign torn
// tail a crash leaves (handled internally by truncation).
type CorruptError struct {
	File   string // file the bad frame lives in
	Offset int64  // byte offset of the frame
	Reason string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("storage: corrupt log: %s at %s+%d", e.Reason, e.File, e.Offset)
}

// manifest is the checkpoint manifest: the current snapshot plus the exact
// position the replayable tail starts at. It is replaced atomically
// (write-temp, rename, directory fsync).
type manifest struct {
	Seq       uint64 `json:"seq"`
	Snapshot  string `json:"snapshot"`
	Watermark uint64 `json:"watermark"`
	Segment   uint64 `json:"segment"`
	Offset    int64  `json:"offset"`
	// Replicated is the replication watermark: the highest LSN a standby has
	// durably received into this log (see ReplicationMarker). It rides the
	// manifest so it survives restarts without a log replay, and is carried
	// forward unchanged by checkpoints. A manifest may exist for this field
	// alone, before any checkpoint (Snapshot empty, Segment zero).
	Replicated uint64 `json:"replicated,omitempty"`
}

// WAL is the segmented write-ahead log backend. All methods are safe for
// concurrent use; appends from independently committing shards serialise on
// one internal mutex (the frames of two batches never interleave).
type WAL struct {
	mu     sync.Mutex
	opts   WALOptions
	closed bool
	// scanned is set once the existing tail has been validated (and a torn
	// record truncated); both Replay and the first append ensure it.
	scanned bool
	// broken marks the WAL fail-stopped: a partial append could not be
	// erased, so continuing would bury garbage under valid frames and turn
	// a transient write error into unrecoverable mid-segment corruption.
	// Quarantine repairs it by truncating the partial suffix.
	broken bool
	// poisoned marks the WAL permanently unusable for writes: an fsync
	// reported failure, so the page cache and the disk are in unknown
	// disagreement and a retried fsync could claim success without making
	// the lost pages durable. Nothing clears it in-process — recovery is a
	// restart (replaying what the disk really holds) or a failover.
	poisoned bool
	man      manifest
	hasMan   bool
	lock     *dirLock
	segIndex uint64
	seg      *os.File
	segSize  int64
	buf      []byte // frame scratch, reused across batches
	// next is a pre-created segment (magic written, creation durable) a
	// background goroutine prepared so rotation swaps to a ready file
	// instead of paying the create+fsync+dirsync on the append path.
	next      *os.File
	nextIndex uint64
	preparing bool
	prepCond  *sync.Cond // signalled when a background preparation finishes
	// sealing counts sealed segments whose data fsync runs on a background
	// goroutine (SyncOS rotation); sealCond is signalled as each completes.
	// Sync() waits the count out — it must not report success while a sealed
	// segment's pages are still draining.
	sealing  int
	sealCond *sync.Cond
	// dirDirty records a staged-segment rename whose directory entry is not
	// yet durable (SyncOS rotation skips the dirsync on the append path).
	// Until a directory fsync lands, a crash leaves the segment under its
	// preseg- staging name — which OpenWAL sweeps — so Sync() and SealActive
	// settle the debt before promising durability or a prune boundary.
	dirDirty bool
}

// OpenWAL opens (or initialises) the segmented WAL in dir, taking the
// directory's exclusive lock first — a second process opening the same
// directory fails fast with ErrDirLocked instead of interleaving appends.
// Opening reads only the manifest; segment scanning and torn-tail repair
// happen on Replay (or are done silently before the first append when
// Replay is skipped). Close releases the lock.
func OpenWAL(opts WALOptions) (*WAL, error) {
	if opts.Dir == "" {
		return nil, errors.New("storage: WALOptions.Dir must be set")
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = 4 << 20
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	lock, err := acquireDirLock(opts.Dir)
	if err != nil {
		return nil, err
	}
	w := &WAL{opts: opts, lock: lock}
	w.prepCond = sync.NewCond(&w.mu)
	w.sealCond = sync.NewCond(&w.mu)
	// Sweep staged segments a crashed process left behind — they are
	// scratch files, never part of the log until renamed into place.
	if strays, err := filepath.Glob(filepath.Join(opts.Dir, "preseg-*.tmp")); err == nil {
		for _, s := range strays {
			os.Remove(s)
		}
	}
	raw, err := os.ReadFile(filepath.Join(opts.Dir, manifestName))
	switch {
	case err == nil:
		if err := json.Unmarshal(raw, &w.man); err != nil {
			lock.release()
			return nil, fmt.Errorf("storage: malformed manifest: %w", err)
		}
		w.hasMan = true
	case !os.IsNotExist(err):
		lock.release()
		return nil, fmt.Errorf("storage: %w", err)
	}
	return w, nil
}

// Dir returns the data directory.
func (w *WAL) Dir() string { return w.opts.Dir }

// segName returns the file name of segment i.
func segName(i uint64) string { return fmt.Sprintf("wal-%010d.seg", i) }

// segments lists existing segment indexes, ascending.
func (w *WAL) segments() ([]uint64, error) {
	entries, err := os.ReadDir(w.opts.Dir)
	if err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	var out []uint64
	for _, e := range entries {
		var i uint64
		if n, _ := fmt.Sscanf(e.Name(), "wal-%d.seg", &i); n == 1 {
			out = append(out, i)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out, nil
}

// AppendBatch writes one commit cycle's records as consecutive frames: one
// buffered file write, one fsync in SyncAlways mode, and a rotation when the
// active segment crossed the size threshold.
func (w *WAL) AppendBatch(recs []WALRecord) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	if w.poisoned {
		return fmt.Errorf("storage: append: %w", ErrPoisoned)
	}
	if w.broken {
		return fmt.Errorf("storage: append: %w (unerasable partial append)", ErrFailStopped)
	}
	if err := w.ensureActiveLocked(); err != nil {
		return err
	}
	w.buf = w.buf[:0]
	for i := range recs {
		var err error
		if w.buf, err = appendFrame(w.buf, &recs[i]); err != nil {
			return err
		}
	}
	if _, err := w.seg.Write(w.buf); err != nil {
		// Erase the partial frame so valid frames never land after garbage.
		// If even the truncate fails, fail-stop: refusing further appends is
		// recoverable (restart, torn-tail repair), a poisoned segment is not.
		if terr := w.seg.Truncate(w.segSize); terr != nil {
			w.broken = true
		}
		return fmt.Errorf("storage: append: %w", err)
	}
	w.segSize += int64(len(w.buf))
	if w.opts.Sync == SyncAlways {
		if err := w.seg.Sync(); err != nil {
			// Never retry a failed fsync: the kernel marked the dirty pages
			// clean when it reported the error, so a second fsync can succeed
			// without the data being durable. Poison the WAL permanently.
			w.poisoned = true
			return fmt.Errorf("storage: append sync: %w: %v", ErrPoisoned, err)
		}
	}
	if w.segSize >= w.opts.SegmentBytes {
		return w.rotateLocked()
	}
	return nil
}

// appendFrame encodes rec and wraps it in a length+CRC frame.
func appendFrame(b []byte, rec *WALRecord) ([]byte, error) {
	start := len(b)
	b = append(b, 0, 0, 0, 0, 0, 0, 0, 0) // frame header placeholder
	b, err := EncodeRecord(b, rec)
	if err != nil {
		return nil, err
	}
	payload := b[start+frameHeader:]
	binary.LittleEndian.PutUint32(b[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(b[start+4:], crc32.ChecksumIEEE(payload))
	return b, nil
}

// ensureActiveLocked opens the active segment for appending, scanning and
// repairing the existing tail first if Replay has not done so already.
func (w *WAL) ensureActiveLocked() error {
	if w.seg != nil {
		return nil
	}
	if !w.scanned {
		// Appending without a prior Replay: validate the tail silently so a
		// torn record from a previous crash is truncated before new frames
		// land after it.
		if err := w.replayLocked(nil); err != nil {
			return err
		}
	}
	segs, err := w.segments()
	if err != nil {
		return err
	}
	if len(segs) == 0 {
		w.segIndex = 1
		if w.hasMan && w.man.Segment > 0 {
			w.segIndex = w.man.Segment
		}
		return w.createSegmentLocked(w.segIndex)
	}
	w.segIndex = segs[len(segs)-1]
	path := filepath.Join(w.opts.Dir, segName(w.segIndex))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("storage: %w", err)
	}
	w.seg, w.segSize = f, info.Size()
	return nil
}

// preSegName is the staging name for a pre-created segment. The prefix is
// deliberately not "wal-": segments() must never list a staged file (the
// torn-tail contract says only the final *segment* may be incomplete, and a
// staged file after the active segment would break that), and the lax
// Sscanf match would accept any "wal-…" name.
func preSegName(i uint64) string { return fmt.Sprintf("preseg-%010d.tmp", i) }

// writeSegmentFile creates a segment-shaped file at path: magic written,
// file fsynced, directory fsynced — durable before any frame may be
// acknowledged out of it, otherwise power loss after rotation could leave a
// headerless file under durable frames. On failure the partial file is
// removed.
func writeSegmentFile(dir, name string) (*os.File, error) {
	path := filepath.Join(dir, name)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	fail := func(err error) (*os.File, error) {
		f.Close()
		os.Remove(path)
		return nil, err
	}
	if _, err := f.Write(segMagic); err != nil {
		return fail(fmt.Errorf("storage: %w", err))
	}
	if err := f.Sync(); err != nil {
		return fail(fmt.Errorf("storage: %w", err))
	}
	if err := syncDir(dir); err != nil {
		return fail(err)
	}
	return f, nil
}

// createSegmentLocked makes segment i the active one. The common case
// renames the segment a background goroutine pre-created into place — one
// rename syscall on the append path instead of create+fsync+dirsync (the
// staged file's content is already durable; SyncAlways additionally syncs
// the directory so the new *name* is durable before a frame is acked out of
// it, while SyncOS never promised durability at ack time). When no staged
// segment is ready the creation happens inline under the final name — the
// staging name is distinct, so an in-flight preparation can never collide
// with it, and must NOT be waited for: cond-Wait would release w.mu
// mid-rotation and let an append land in a segment the caller already
// decided is sealed. A stale staging that finishes later is detected by
// index and dropped. Either way the next segment's preparation is kicked
// off before returning (a no-op while one is still in flight).
func (w *WAL) createSegmentLocked(i uint64) error {
	if w.next != nil {
		f, idx := w.next, w.nextIndex
		w.next = nil
		if idx == i {
			if err := os.Rename(filepath.Join(w.opts.Dir, preSegName(i)),
				filepath.Join(w.opts.Dir, segName(i))); err == nil {
				if w.opts.Sync == SyncAlways {
					if err := syncDir(w.opts.Dir); err != nil {
						f.Close()
						return err
					}
				} else {
					// The rename is not durable yet: until a directory fsync
					// lands, a crash leaves this segment under its staging
					// name and the open-time stray sweep would delete its
					// frames. Sync()/SealActive settle the debt.
					w.dirDirty = true
				}
				w.seg, w.segIndex, w.segSize = f, i, int64(len(segMagic))
				w.prepareNextLocked(i + 1)
				return nil
			}
			// Rename failed: fall through to inline creation.
			f.Close()
		} else {
			// Stale staging (index moved some other way): drop it.
			f.Close()
			os.Remove(filepath.Join(w.opts.Dir, preSegName(idx)))
		}
	}
	f, err := writeSegmentFile(w.opts.Dir, segName(i))
	if err != nil {
		return err
	}
	w.seg, w.segIndex, w.segSize = f, i, int64(len(segMagic))
	w.prepareNextLocked(i + 1)
	return nil
}

// prepareNextLocked starts background staging of segment i so the next
// rotation finds a ready file. A preparation failure is silent — rotation
// simply falls back to inline creation and reports the error there.
func (w *WAL) prepareNextLocked(i uint64) {
	if w.preparing || w.next != nil || w.closed {
		return
	}
	w.preparing = true
	go func() {
		f, err := writeSegmentFile(w.opts.Dir, preSegName(i))
		w.mu.Lock()
		defer w.mu.Unlock()
		w.preparing = false
		w.prepCond.Broadcast()
		if err != nil {
			return
		}
		if w.closed {
			f.Close()
			os.Remove(filepath.Join(w.opts.Dir, preSegName(i)))
			return
		}
		w.next, w.nextIndex = f, i
	}()
}

// rotateLocked seals the active segment (always fsynced — a sealed segment
// is immutable and must not lose its tail to a later crash) and starts the
// next one.
func (w *WAL) rotateLocked() error {
	old := w.seg
	w.seg = nil
	if w.opts.Sync == SyncAlways {
		// Every acked frame was already fsynced, so the pages are clean and
		// this sync is cheap; doing it inline preserves strict fail-stop
		// reporting on the appending goroutine.
		if err := old.Sync(); err != nil {
			w.poisoned = true
			return fmt.Errorf("storage: seal sync: %w: %v", ErrPoisoned, err)
		}
		if err := old.Close(); err != nil {
			return fmt.Errorf("storage: seal close: %w", err)
		}
	} else {
		// SyncOS never promised durability at ack time, so the sealed
		// segment's flush is a background durability checkpoint, not part of
		// the append: draining a full segment's pages inline would stall the
		// hot path for a multi-ms data fsync at every rotation. A sync
		// failure poisons the WAL exactly as an inline failure would. The
		// sealing count lets Sync() wait the drain out instead of reporting
		// success while the sealed segment's pages are still in flight.
		w.sealing++
		go func() {
			err := old.Sync()
			old.Close()
			w.mu.Lock()
			w.sealing--
			if err != nil {
				w.poisoned = true
			}
			w.sealCond.Broadcast()
			w.mu.Unlock()
		}()
	}
	return w.createSegmentLocked(w.segIndex + 1)
}

// Sync forces everything appended so far to stable storage: it waits out any
// just-sealed segment's background data fsync, makes staged-rename directory
// entries durable (SyncOS rotation defers that dirsync off the append path)
// and fsyncs the active segment. Success means every acked frame — and the
// segment name it lives under — survives a crash.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	for w.sealing > 0 {
		w.sealCond.Wait()
	}
	if w.closed {
		return ErrClosed
	}
	if w.poisoned {
		return fmt.Errorf("storage: sync: %w", ErrPoisoned)
	}
	if err := w.settleDirLocked(); err != nil {
		return err
	}
	if w.seg == nil {
		return nil
	}
	if err := w.seg.Sync(); err != nil {
		w.poisoned = true
		return fmt.Errorf("storage: sync: %w: %v", ErrPoisoned, err)
	}
	return nil
}

// settleDirLocked performs the directory fsync a SyncOS staged rename
// deferred, making every renamed-in segment durable under its final name.
func (w *WAL) settleDirLocked() error {
	if !w.dirDirty {
		return nil
	}
	if err := syncDir(w.opts.Dir); err != nil {
		return err
	}
	w.dirDirty = false
	return nil
}

// Close syncs and releases the WAL, dropping the data-directory lock.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	defer func() {
		w.lock.release()
		w.lock = nil
	}()
	// Wait out an in-flight segment preparation before dropping the
	// directory lock: its create must not land after another process has
	// taken ownership of the directory. Same for a sealed segment's
	// background data fsync.
	for w.preparing {
		w.prepCond.Wait()
	}
	for w.sealing > 0 {
		w.sealCond.Wait()
	}
	if err := w.settleDirLocked(); err != nil {
		return err
	}
	if w.next != nil {
		// The staged segment was never renamed into place: remove the
		// scratch file. A crash leaves it behind; OpenWAL sweeps strays.
		w.next.Close()
		os.Remove(filepath.Join(w.opts.Dir, preSegName(w.nextIndex)))
		w.next = nil
	}
	if w.seg == nil {
		return nil
	}
	if err := w.seg.Sync(); err != nil {
		w.seg.Close()
		return fmt.Errorf("storage: close sync: %w", err)
	}
	return w.seg.Close()
}

// Replay streams the durable content: the manifest's snapshot, then every
// record in segments at or after the manifest position. Segments wholly
// before the checkpoint are skipped unread — that is the recovery-time win
// checkpointing buys. Returns the checkpoint watermark (0 without one).
func (w *WAL) Replay(fn func(WALRecord) error) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, ErrClosed
	}
	if err := w.replayLocked(fn); err != nil {
		return 0, err
	}
	if w.hasMan {
		return w.man.Watermark, nil
	}
	return 0, nil
}

func (w *WAL) replayLocked(fn func(WALRecord) error) error {
	if w.hasMan && w.man.Snapshot != "" && fn != nil {
		path := filepath.Join(w.opts.Dir, w.man.Snapshot)
		if err := scanFile(path, ckptMagic, int64(len(ckptMagic)), false, fn); err != nil {
			return err
		}
	}
	segs, err := w.segments()
	if err != nil {
		return err
	}
	for n, i := range segs {
		start := int64(len(segMagic))
		if w.hasMan {
			if i < w.man.Segment {
				continue // wholly covered by the checkpoint: skipped unread
			}
			if i == w.man.Segment {
				start = w.man.Offset
			}
		}
		last := n == len(segs)-1
		path := filepath.Join(w.opts.Dir, segName(i))
		// A last segment shorter than its magic is the torn creation of a
		// crash right after rotation: the file exists (directory was synced)
		// but nothing in it was ever durable — unless the manifest claims
		// content here, in which case short is real corruption. Repair by
		// rewriting the header; there are no frames to scan.
		if last && (!w.hasMan || i != w.man.Segment) {
			if info, err := os.Stat(path); err == nil && info.Size() < int64(len(segMagic)) {
				if err := rewriteSegmentHeader(path); err != nil {
					return err
				}
				continue
			}
		}
		if err := scanFile(path, segMagic, start, last, fn); err != nil {
			return err
		}
	}
	w.scanned = true
	return nil
}

// rewriteSegmentHeader resets a torn-creation segment to a valid empty one.
func rewriteSegmentHeader(path string) error {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("storage: repairing torn segment: %w", err)
	}
	defer f.Close()
	if _, err := f.Write(segMagic); err != nil {
		return fmt.Errorf("storage: repairing torn segment: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("storage: repairing torn segment: %w", err)
	}
	return nil
}

// scanFile walks the frames of one segment or snapshot from offset start,
// invoking fn (when non-nil) with each decoded record. In a last segment
// (allowTorn) an incomplete frame at end of file is the torn tail of a
// crashed write: it is truncated away and the scan succeeds without it.
// Everything else — a bad magic, a CRC mismatch, an incomplete frame with a
// successor — is *CorruptError.
func scanFile(path string, magic []byte, start int64, allowTorn bool, fn func(WALRecord) error) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	defer f.Close()
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(f, head); err != nil || !bytes.Equal(head, magic) {
		return &CorruptError{File: filepath.Base(path), Offset: 0, Reason: "bad file magic"}
	}
	if start > int64(len(magic)) {
		if _, err := f.Seek(start, io.SeekStart); err != nil {
			return fmt.Errorf("storage: %w", err)
		}
	}
	br := bufio.NewReaderSize(f, 1<<16)
	offset := start
	hdr := make([]byte, frameHeader)
	var payload []byte
	for {
		_, err := io.ReadFull(br, hdr)
		if err == io.EOF {
			return nil // clean end of file
		}
		if err == io.ErrUnexpectedEOF {
			return tornOrCorrupt(path, offset, allowTorn, "incomplete frame header")
		}
		if err != nil {
			return fmt.Errorf("storage: %w", err)
		}
		length := binary.LittleEndian.Uint32(hdr)
		sum := binary.LittleEndian.Uint32(hdr[4:])
		if length > maxFrame {
			return &CorruptError{File: filepath.Base(path), Offset: offset, Reason: "implausible frame length"}
		}
		if cap(payload) < int(length) {
			payload = make([]byte, length)
		}
		payload = payload[:length]
		if _, err := io.ReadFull(br, payload); err != nil {
			if err == io.ErrUnexpectedEOF || err == io.EOF {
				return tornOrCorrupt(path, offset, allowTorn, "incomplete frame payload")
			}
			return fmt.Errorf("storage: %w", err)
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return &CorruptError{File: filepath.Base(path), Offset: offset, Reason: "CRC mismatch"}
		}
		if fn != nil {
			rec, err := DecodeRecord(payload)
			if err != nil {
				return &CorruptError{File: filepath.Base(path), Offset: offset, Reason: err.Error()}
			}
			if err := fn(rec); err != nil {
				return err
			}
		}
		offset += frameHeader + int64(length)
	}
}

// tornOrCorrupt resolves an incomplete frame: in the last segment it is the
// torn tail of a crashed write — truncate the file back to the last complete
// frame; anywhere else it is corruption.
func tornOrCorrupt(path string, offset int64, allowTorn bool, reason string) error {
	if !allowTorn {
		return &CorruptError{File: filepath.Base(path), Offset: offset, Reason: reason}
	}
	rw, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("storage: truncating torn tail: %w", err)
	}
	defer rw.Close()
	if err := rw.Truncate(offset); err != nil {
		return fmt.Errorf("storage: truncating torn tail: %w", err)
	}
	if err := rw.Sync(); err != nil {
		return fmt.Errorf("storage: truncating torn tail: %w", err)
	}
	return nil
}

// Checkpoint writes a snapshot of the store's content, installs it in the
// manifest and prunes segments the snapshot covers. The caller (the store)
// has quiesced writers, so the current end of the active segment is exactly
// the boundary between content inside the snapshot and the replayable tail.
func (w *WAL) Checkpoint(watermark uint64, fill func(put func(WALRecord) error) error) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	if err := w.ensureActiveLocked(); err != nil {
		return err
	}
	// Everything appended so far must be durable before the manifest can
	// claim the snapshot supersedes it.
	if err := w.seg.Sync(); err != nil {
		return fmt.Errorf("storage: checkpoint sync: %w", err)
	}
	seq := w.man.Seq + 1
	snapName := fmt.Sprintf("ckpt-%010d.snap", seq)
	if err := w.writeSnapshotLocked(snapName, fill); err != nil {
		return err
	}
	man := manifest{
		Seq:        seq,
		Snapshot:   snapName,
		Watermark:  watermark,
		Segment:    w.segIndex,
		Offset:     w.segSize,
		Replicated: w.man.Replicated,
	}
	if err := w.installManifestLocked(man); err != nil {
		return err
	}
	w.pruneLocked()
	return nil
}

// SealActive rotates the active segment so everything appended so far lives
// in sealed, immutable segments, and returns the index of the last sealed
// segment — the boundary a tiered flush may later prune through
// (TruncateThrough). An active segment holding no frames is left alone:
// sealing nothing would only litter the directory with empty files.
func (w *WAL) SealActive() (uint64, error) {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return 0, ErrClosed
	}
	if w.poisoned {
		w.mu.Unlock()
		return 0, fmt.Errorf("storage: seal: %w", ErrPoisoned)
	}
	if w.broken {
		w.mu.Unlock()
		return 0, fmt.Errorf("storage: seal: %w (unerasable partial append)", ErrFailStopped)
	}
	if err := w.ensureActiveLocked(); err != nil {
		w.mu.Unlock()
		return 0, err
	}
	if w.segSize <= int64(len(segMagic)) {
		boundary := w.segIndex - 1
		// The sealed prefix may be pruned through the boundary once a flush
		// covers it, so every retained segment's name must be durable first.
		err := w.settleDirLocked()
		w.mu.Unlock()
		if err != nil {
			return 0, err
		}
		return boundary, nil // empty active: all durable frames are already sealed
	}
	// Swap a fresh active segment in under the lock, then fsync and close the
	// sealed one outside it: the sealed file is immutable the moment the swap
	// lands, so appends proceed into the new segment while its predecessor's
	// pages drain to disk — a seal never stalls the hot path for a data
	// fsync. (createSegmentLocked keeps its own small magic+dir syncs under
	// the lock: the new segment must exist durably before a frame is acked
	// out of it.)
	old := w.seg
	if err := w.createSegmentLocked(w.segIndex + 1); err != nil {
		w.mu.Unlock()
		return 0, err
	}
	boundary := w.segIndex - 1
	w.mu.Unlock()
	if err := old.Sync(); err != nil {
		old.Close()
		w.mu.Lock()
		w.poisoned = true
		w.mu.Unlock()
		return 0, fmt.Errorf("storage: seal sync: %w: %v", ErrPoisoned, err)
	}
	if err := old.Close(); err != nil {
		return 0, fmt.Errorf("storage: seal close: %w", err)
	}
	// Settle the staged-rename directory debt (the swap above just created
	// one for the new active segment, and the sealed one may carry an older
	// one) before reporting the boundary: a flush prunes through it on the
	// strength of this return, and a crash must not be able to demote a
	// retained segment back to a swept preseg- stray.
	w.mu.Lock()
	err := w.settleDirLocked()
	w.mu.Unlock()
	if err != nil {
		return 0, err
	}
	return boundary, nil
}

// TruncateThrough advances the manifest past sealed segments whose records a
// tiered flush has made durable elsewhere: the replayable tail now begins at
// segment through+1 and the covered segments (and any superseded checkpoint
// snapshot) are pruned. The manifest watermark — the cutoff below which
// StreamAfter answers ErrCompacted once no snapshot backs it — advances only
// to the highest LSN the pruned segments actually contained, which the
// covered prefix is scanned for: the flush's own watermark can cover records
// still in the retained tail (the active segment, frames above the seal
// boundary), and adopting it would force a full resync on any standby whose
// cut the retained segments still serve. watermark is that flush capture
// watermark; it gates retention only. When replication is active and the
// standby's durable watermark trails it, nothing is pruned — catch-up may
// still need to stream these segments, and the next flush retries; the false
// return reports that skip.
func (w *WAL) TruncateThrough(watermark, through uint64) (bool, error) {
	prunedMax, scanned := uint64(0), false
	for {
		w.mu.Lock()
		if w.closed {
			w.mu.Unlock()
			return false, ErrClosed
		}
		if w.man.Replicated > 0 && w.man.Replicated < watermark {
			w.mu.Unlock()
			return false, nil // a lagging standby still needs this tail: retain it
		}
		man := w.man
		base := w.man.Seq
		firstSeg, firstOff, hasMan := w.man.Segment, w.man.Offset, w.hasMan
		w.mu.Unlock()

		// Find the true compaction cutoff: the highest append LSN in the
		// segments this prune covers. Scanning them costs one read of files
		// about to be deleted, off the append lock and off the hot path (the
		// flusher goroutine is the only caller). The scan is reused across
		// retries of the optimistic-commit loop — a concurrent manifest
		// install only ever changes replication fields, not the segment span.
		if !scanned {
			var err error
			prunedMax, err = w.maxLSNThrough(firstSeg, firstOff, hasMan, through)
			if err != nil {
				return false, err
			}
			scanned = true
		}
		man.Seq++
		man.Snapshot = ""
		if prunedMax > man.Watermark {
			man.Watermark = prunedMax
		}
		if through+1 > man.Segment {
			man.Segment = through + 1
			man.Offset = int64(len(segMagic))
		}

		// Stage the new manifest durably off the append lock: its data fsync
		// queues behind the flush's own table and sealed-segment syncs, so
		// holding w.mu across it would stall every append for the disk's
		// journal latency. The staging name is distinct from the locked
		// installer's, so the two never collide on a temp file.
		tmp, err := w.stageManifest(man, ".prune")
		if err != nil {
			return false, err
		}
		w.mu.Lock()
		if w.closed {
			w.mu.Unlock()
			os.Remove(tmp)
			return false, ErrClosed
		}
		if w.man.Seq != base {
			// A concurrent install (replication watermark update) advanced
			// the manifest while the lock was down: recompute against it
			// rather than clobbering its fields with stale copies.
			w.mu.Unlock()
			os.Remove(tmp)
			continue
		}
		err = w.commitManifestLocked(tmp, man)
		if err == nil {
			w.pruneLocked()
		}
		w.mu.Unlock()
		return err == nil, err
	}
}

// maxLSNThrough scans the sealed segments a TruncateThrough(_, through) call
// is about to prune — from the manifest position to segment through — and
// returns the highest append LSN they contain: the exact boundary below which
// the log can no longer serve a replication stream.
func (w *WAL) maxLSNThrough(firstSeg uint64, firstOff int64, hasMan bool, through uint64) (uint64, error) {
	segs, err := w.segments()
	if err != nil {
		return 0, err
	}
	var max uint64
	for _, i := range segs {
		if i > through {
			continue
		}
		start := int64(len(segMagic))
		if hasMan {
			if i < firstSeg {
				continue // already covered by the previous manifest position
			}
			if i == firstSeg {
				start = firstOff
			}
		}
		path := filepath.Join(w.opts.Dir, segName(i))
		if info, err := os.Stat(path); err != nil || info.Size() <= start {
			continue
		}
		err := scanFile(path, segMagic, start, false, func(rec WALRecord) error {
			if rec.Kind == KindAppend && rec.LSN > max {
				max = rec.LSN
			}
			return nil
		})
		if err != nil {
			return 0, err
		}
	}
	return max, nil
}

// writeSnapshotLocked streams fill's records into a temp snapshot file and
// atomically renames it into place.
func (w *WAL) writeSnapshotLocked(name string, fill func(put func(WALRecord) error) error) error {
	path := filepath.Join(w.opts.Dir, name)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	defer os.Remove(tmp) // no-op after the rename succeeds
	bw := bufio.NewWriterSize(f, 1<<16)
	if _, err := bw.Write(ckptMagic); err != nil {
		f.Close()
		return fmt.Errorf("storage: %w", err)
	}
	var scratch []byte
	putErr := fill(func(rec WALRecord) error {
		var err error
		scratch, err = appendFrame(scratch[:0], &rec)
		if err != nil {
			return err
		}
		_, err = bw.Write(scratch)
		return err
	})
	if putErr != nil {
		f.Close()
		return putErr
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("storage: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("storage: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	return syncDir(w.opts.Dir)
}

// stageManifest writes man durably to a temp file named by suffix and
// returns its path. The manifest bytes must be durable before a rename makes
// them current: pruning runs right after an install, so a garbage manifest
// with the old snapshot already deleted would leave the node unable to
// start. Safe to call without w.mu as long as each caller uses a distinct
// suffix.
func (w *WAL) stageManifest(man manifest, suffix string) (string, error) {
	raw, err := json.Marshal(man)
	if err != nil {
		return "", fmt.Errorf("storage: %w", err)
	}
	tmp := filepath.Join(w.opts.Dir, manifestName) + suffix
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return "", fmt.Errorf("storage: %w", err)
	}
	if _, err := f.Write(raw); err != nil {
		f.Close()
		return "", fmt.Errorf("storage: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return "", fmt.Errorf("storage: %w", err)
	}
	if err := f.Close(); err != nil {
		return "", fmt.Errorf("storage: %w", err)
	}
	return tmp, nil
}

// commitManifestLocked renames a staged manifest into place and adopts it.
func (w *WAL) commitManifestLocked(tmp string, man manifest) error {
	if err := os.Rename(tmp, filepath.Join(w.opts.Dir, manifestName)); err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	if err := syncDir(w.opts.Dir); err != nil {
		return err
	}
	w.man, w.hasMan = man, true
	return nil
}

// installManifestLocked atomically replaces the manifest.
func (w *WAL) installManifestLocked(man manifest) error {
	tmp, err := w.stageManifest(man, ".tmp")
	if err != nil {
		return err
	}
	return w.commitManifestLocked(tmp, man)
}

// ReplicationWatermark returns the manifest's replication watermark.
func (w *WAL) ReplicationWatermark() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.man.Replicated
}

// SetReplicationWatermark durably records lsn in the manifest. Installing a
// manifest is a write-fsync-rename cycle, so callers batch updates (every few
// shipped batches) rather than marking every append.
func (w *WAL) SetReplicationWatermark(lsn uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	if w.man.Replicated == lsn && (w.hasMan || lsn == 0) {
		return nil
	}
	man := w.man
	man.Replicated = lsn
	return w.installManifestLocked(man)
}

// StreamAfter streams retained append records with LSN > after plus the marks
// in range, per the Streamer contract. When the cut is at or past the
// checkpoint watermark the snapshot is skipped unread — everything in it has
// LSN <= watermark — which is the common case for a standby briefly behind.
// A cut inside a snapshot that holds archived summaries fails with
// ErrCompacted: the missing detail records no longer exist.
func (w *WAL) StreamAfter(after uint64, fn func(WALRecord) error) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	if !w.scanned {
		// Validate (and torn-tail repair) the segments once before serving
		// them, exactly as replay would.
		if err := w.replayLocked(nil); err != nil {
			return err
		}
	}
	filter := func(rec WALRecord) error {
		switch rec.Kind {
		case KindAppend:
			if rec.LSN <= after {
				return nil
			}
		case KindSummary:
			return ErrCompacted
		}
		return fn(rec)
	}
	if w.hasMan && after < w.man.Watermark {
		if w.man.Snapshot == "" {
			// Tiered pruning (TruncateThrough) dropped the detail below the
			// watermark without leaving a snapshot: the stream cannot be
			// reconstructed from this log alone.
			return ErrCompacted
		}
		path := filepath.Join(w.opts.Dir, w.man.Snapshot)
		if err := scanFile(path, ckptMagic, int64(len(ckptMagic)), false, filter); err != nil {
			return err
		}
	}
	segs, err := w.segments()
	if err != nil {
		return err
	}
	for n, i := range segs {
		start := int64(len(segMagic))
		if w.hasMan {
			if i < w.man.Segment {
				continue
			}
			if i == w.man.Segment {
				start = w.man.Offset
			}
		}
		path := filepath.Join(w.opts.Dir, segName(i))
		if info, err := os.Stat(path); err == nil && info.Size() <= start {
			continue // nothing after the cut (or torn creation already handled by replay)
		}
		if err := scanFile(path, segMagic, start, n == len(segs)-1, filter); err != nil {
			return err
		}
	}
	return nil
}

// Quarantine isolates a corrupt log suffix so the WAL can accept appends
// again: it re-scans the replayable tail, truncates the first corrupt
// segment at the corruption offset, sets every later segment aside (renamed
// with a .quarantined suffix — kept for forensics, invisible to replay) and
// clears the fail-stop flag. It returns the highest append LSN the log
// still verifiably holds; the caller refills everything after it from a
// peer's copy (replication catch-up) before resuming writes. A poisoned WAL
// (fsync failure) refuses: quarantine cannot restore unknown durability.
// A corrupt checkpoint snapshot also refuses — the suffix-truncation repair
// only applies to the tail, not to checkpointed state.
func (w *WAL) Quarantine() (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, ErrClosed
	}
	if w.poisoned {
		return 0, fmt.Errorf("storage: quarantine: %w", ErrPoisoned)
	}
	if w.seg != nil {
		w.seg.Close()
		w.seg = nil
	}
	var lastGood uint64
	if w.hasMan {
		lastGood = w.man.Watermark
		if w.man.Snapshot != "" {
			path := filepath.Join(w.opts.Dir, w.man.Snapshot)
			if err := scanFile(path, ckptMagic, int64(len(ckptMagic)), false, nil); err != nil {
				return 0, fmt.Errorf("storage: quarantine: checkpoint snapshot is corrupt, restore from backup: %w", err)
			}
		}
	}
	segs, err := w.segments()
	if err != nil {
		return 0, err
	}
	cut := -1
	for n, i := range segs {
		start := int64(len(segMagic))
		if w.hasMan {
			if i < w.man.Segment {
				continue
			}
			if i == w.man.Segment {
				start = w.man.Offset
			}
		}
		path := filepath.Join(w.opts.Dir, segName(i))
		if info, err := os.Stat(path); err == nil && info.Size() < int64(len(segMagic)) {
			// Torn creation: nothing in it was ever durable.
			if err := rewriteSegmentHeader(path); err != nil {
				return 0, err
			}
			continue
		}
		scanErr := scanFile(path, segMagic, start, false, func(rec WALRecord) error {
			if rec.Kind == KindAppend && rec.LSN > lastGood {
				lastGood = rec.LSN
			}
			return nil
		})
		if scanErr == nil {
			continue
		}
		var ce *CorruptError
		if !errors.As(scanErr, &ce) {
			return 0, scanErr
		}
		if ce.Offset < int64(len(segMagic)) {
			// The segment header itself is bad: no frame in it is trustworthy.
			if err := rewriteSegmentHeader(path); err != nil {
				return 0, err
			}
		} else if err := tornOrCorrupt(path, ce.Offset, true, ce.Reason); err != nil {
			return 0, err
		}
		cut = n
		break
	}
	if cut >= 0 {
		for _, i := range segs[cut+1:] {
			name := segName(i)
			os.Rename(filepath.Join(w.opts.Dir, name), filepath.Join(w.opts.Dir, name+".quarantined"))
		}
		if err := syncDir(w.opts.Dir); err != nil {
			return 0, err
		}
	}
	w.broken = false
	w.scanned = true
	return lastGood, nil
}

// pruneLocked removes segments wholly covered by the installed checkpoint
// and snapshots older than the current one. Best-effort: a leftover file is
// harmless (replay skips it), so removal errors are ignored.
func (w *WAL) pruneLocked() {
	segs, _ := w.segments()
	for _, i := range segs {
		if i < w.man.Segment {
			os.Remove(filepath.Join(w.opts.Dir, segName(i)))
		}
	}
	entries, err := os.ReadDir(w.opts.Dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		var i uint64
		if n, _ := fmt.Sscanf(e.Name(), "ckpt-%d.snap", &i); n == 1 && i < w.man.Seq {
			os.Remove(filepath.Join(w.opts.Dir, e.Name()))
		}
	}
}

// syncDir fsyncs a directory so renames and creations in it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	return nil
}
