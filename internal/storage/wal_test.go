package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/clock"
	"repro/internal/entity"
)

func appendRec(lsn uint64, id string) WALRecord {
	return WALRecord{
		LSN:    lsn,
		Key:    entity.Key{Type: "Account", ID: id},
		Ops:    []entity.Op{entity.Delta("balance", float64(lsn))},
		Stamp:  clock.Timestamp{WallNanos: int64(lsn), Node: "t"},
		Origin: "t",
		TxnID:  fmt.Sprintf("t%d", lsn),
	}
}

func collect(t *testing.T, b Backend) ([]WALRecord, uint64) {
	t.Helper()
	var out []WALRecord
	watermark, err := b.Replay(func(rec WALRecord) error {
		out = append(out, rec)
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return out, watermark
}

func TestWALAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(WALOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	var want []WALRecord
	for batch := 0; batch < 5; batch++ {
		var recs []WALRecord
		for i := 0; i < 3; i++ {
			recs = append(recs, appendRec(uint64(batch*3+i+1), fmt.Sprintf("a%d", i)))
		}
		if err := w.AppendBatch(recs); err != nil {
			t.Fatal(err)
		}
		want = append(want, recs...)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, err := OpenWAL(WALOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	got, watermark := collect(t, w2)
	if watermark != 0 {
		t.Fatalf("watermark = %d without a checkpoint", watermark)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("replay mismatch: %d in, %d out", len(want), len(got))
	}
	// The WAL stays appendable after replay.
	if err := w2.AppendBatch([]WALRecord{appendRec(99, "tail")}); err != nil {
		t.Fatal(err)
	}
	w2.Close()
	w3, _ := OpenWAL(WALOptions{Dir: dir})
	got3, _ := collect(t, w3)
	if len(got3) != len(want)+1 || got3[len(got3)-1].LSN != 99 {
		t.Fatalf("post-replay append lost: %d records", len(got3))
	}
	w3.Close()
}

func TestWALSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(WALOptions{Dir: dir, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	for i := 1; i <= n; i++ {
		if err := w.AppendBatch([]WALRecord{appendRec(uint64(i), "hot")}); err != nil {
			t.Fatal(err)
		}
	}
	segs, err := w.segments()
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("expected rotation to produce several segments, got %d", len(segs))
	}
	w.Close()
	w2, _ := OpenWAL(WALOptions{Dir: dir, SegmentBytes: 256})
	got, _ := collect(t, w2)
	if len(got) != n {
		t.Fatalf("replayed %d records across segments, want %d", len(got), n)
	}
	for i, rec := range got {
		if rec.LSN != uint64(i+1) {
			t.Fatalf("record %d has LSN %d", i, rec.LSN)
		}
	}
	w2.Close()
}

func TestWALCheckpointSkipsOldSegments(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(WALOptions{Dir: dir, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	var all []WALRecord
	for i := 1; i <= 40; i++ {
		rec := appendRec(uint64(i), "hot")
		if err := w.AppendBatch([]WALRecord{rec}); err != nil {
			t.Fatal(err)
		}
		all = append(all, rec)
	}
	// Checkpoint the full content at watermark 40.
	err = w.Checkpoint(40, func(put func(WALRecord) error) error {
		for _, rec := range all {
			if err := put(rec); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Old segments are pruned; only the active one survives.
	segs, _ := w.segments()
	if len(segs) != 1 {
		t.Fatalf("expected pruning to leave one segment, got %v", segs)
	}
	// Tail records after the checkpoint.
	for i := 41; i <= 45; i++ {
		rec := appendRec(uint64(i), "tail")
		if err := w.AppendBatch([]WALRecord{rec}); err != nil {
			t.Fatal(err)
		}
		all = append(all, rec)
	}
	w.Close()

	w2, _ := OpenWAL(WALOptions{Dir: dir, SegmentBytes: 256})
	got, watermark := collect(t, w2)
	if watermark != 40 {
		t.Fatalf("watermark = %d, want 40", watermark)
	}
	if len(got) != len(all) {
		t.Fatalf("replayed %d records, want %d", len(got), len(all))
	}
	if !reflect.DeepEqual(all, got) {
		t.Fatal("checkpoint + tail replay diverged from append order")
	}
	w2.Close()
}

func TestWALTornTailDropsOnlyLastRecord(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(WALOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 10; i++ {
		if err := w.AppendBatch([]WALRecord{appendRec(uint64(i), "a")}); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()

	// Tear the final record: chop bytes off the end of the last segment,
	// leaving a partial frame — what a crash mid-write leaves behind.
	segPath := filepath.Join(dir, segName(1))
	info, err := os.Stat(segPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(segPath, info.Size()-7); err != nil {
		t.Fatal(err)
	}

	w2, _ := OpenWAL(WALOptions{Dir: dir})
	got, _ := collect(t, w2)
	if len(got) != 9 {
		t.Fatalf("torn tail: replayed %d records, want 9 (only the torn record dropped)", len(got))
	}
	for i, rec := range got {
		if rec.LSN != uint64(i+1) {
			t.Fatalf("record %d has LSN %d after torn-tail repair", i, rec.LSN)
		}
	}
	// The tail was truncated back to the last complete frame: appends resume
	// cleanly and a further replay sees old + new records.
	if err := w2.AppendBatch([]WALRecord{appendRec(10, "a")}); err != nil {
		t.Fatal(err)
	}
	w2.Close()
	w3, _ := OpenWAL(WALOptions{Dir: dir})
	got3, _ := collect(t, w3)
	if len(got3) != 10 || got3[9].LSN != 10 {
		t.Fatalf("append after torn-tail repair lost records: %d", len(got3))
	}
	w3.Close()
}

func TestWALTornHeaderDropsOnlyLastRecord(t *testing.T) {
	dir := t.TempDir()
	w, _ := OpenWAL(WALOptions{Dir: dir})
	for i := 1; i <= 3; i++ {
		if err := w.AppendBatch([]WALRecord{appendRec(uint64(i), "a")}); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	// Leave only 3 bytes of the final frame's 8-byte header.
	segPath := filepath.Join(dir, segName(1))
	raw, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	// Find the last frame start by walking frames from the front.
	off := int64(len(segMagic))
	for {
		length := binary.LittleEndian.Uint32(raw[off:])
		next := off + frameHeader + int64(length)
		if next >= int64(len(raw)) {
			break
		}
		off = next
	}
	if err := os.Truncate(segPath, off+3); err != nil {
		t.Fatal(err)
	}
	w2, _ := OpenWAL(WALOptions{Dir: dir})
	got, _ := collect(t, w2)
	if len(got) != 2 {
		t.Fatalf("torn header: replayed %d records, want 2", len(got))
	}
	w2.Close()
}

func TestWALCRCMismatchIsTypedError(t *testing.T) {
	dir := t.TempDir()
	w, _ := OpenWAL(WALOptions{Dir: dir})
	for i := 1; i <= 10; i++ {
		if err := w.AppendBatch([]WALRecord{appendRec(uint64(i), "a")}); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()

	// Flip one byte in the middle of the segment: a media error, not a torn
	// write. Recovery must refuse, loudly and typed.
	segPath := filepath.Join(dir, segName(1))
	raw, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(segPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	w2, _ := OpenWAL(WALOptions{Dir: dir})
	_, err = w2.Replay(func(WALRecord) error { return nil })
	var corrupt *CorruptError
	if !errors.As(err, &corrupt) {
		t.Fatalf("mid-segment corruption returned %v, want *CorruptError", err)
	}
	if corrupt.File == "" || corrupt.Reason == "" {
		t.Fatalf("corrupt error lacks context: %+v", corrupt)
	}
	w2.Close()
}

func TestWALIncompleteFrameInSealedSegmentIsCorrupt(t *testing.T) {
	dir := t.TempDir()
	w, _ := OpenWAL(WALOptions{Dir: dir, SegmentBytes: 256})
	for i := 1; i <= 40; i++ {
		if err := w.AppendBatch([]WALRecord{appendRec(uint64(i), "a")}); err != nil {
			t.Fatal(err)
		}
	}
	segs, _ := w.segments()
	if len(segs) < 2 {
		t.Fatalf("need at least two segments, got %d", len(segs))
	}
	w.Close()
	// Truncate a NON-last segment: the data after the cut is unreachable, so
	// this is corruption, not a torn tail.
	victim := filepath.Join(dir, segName(segs[0]))
	info, _ := os.Stat(victim)
	if err := os.Truncate(victim, info.Size()-5); err != nil {
		t.Fatal(err)
	}
	w2, _ := OpenWAL(WALOptions{Dir: dir, SegmentBytes: 256})
	_, err := w2.Replay(func(WALRecord) error { return nil })
	var corrupt *CorruptError
	if !errors.As(err, &corrupt) {
		t.Fatalf("sealed-segment truncation returned %v, want *CorruptError", err)
	}
	w2.Close()
}

// TestWALTornSegmentCreation: a crash right after rotation can leave the new
// last segment file empty (or shorter than its magic) — the file creation
// reached the directory, the header never reached the platters. Recovery
// must repair it, not refuse with a corruption error.
func TestWALTornSegmentCreation(t *testing.T) {
	dir := t.TempDir()
	w, _ := OpenWAL(WALOptions{Dir: dir})
	for i := 1; i <= 5; i++ {
		if err := w.AppendBatch([]WALRecord{appendRec(uint64(i), "a")}); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	// Simulate the torn creation: a next segment exists but is empty.
	torn := filepath.Join(dir, segName(2))
	if err := os.WriteFile(torn, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	w2, _ := OpenWAL(WALOptions{Dir: dir})
	got, _ := collect(t, w2)
	if len(got) != 5 {
		t.Fatalf("torn segment creation: replayed %d records, want 5", len(got))
	}
	// The repaired segment accepts appends and a further replay sees them.
	if err := w2.AppendBatch([]WALRecord{appendRec(6, "a")}); err != nil {
		t.Fatal(err)
	}
	w2.Close()
	w3, _ := OpenWAL(WALOptions{Dir: dir})
	got3, _ := collect(t, w3)
	if len(got3) != 6 || got3[5].LSN != 6 {
		t.Fatalf("append after torn-creation repair lost records: %d", len(got3))
	}
	w3.Close()
}

func TestMemoryBackendContract(t *testing.T) {
	m := NewMemory()
	var recs []WALRecord
	for i := 1; i <= 6; i++ {
		recs = append(recs, appendRec(uint64(i), "a"))
	}
	if err := m.AppendBatch(recs[:3]); err != nil {
		t.Fatal(err)
	}
	if err := m.Checkpoint(3, func(put func(WALRecord) error) error {
		for _, r := range recs[:3] {
			if err := put(r); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := m.AppendBatch(recs[3:]); err != nil {
		t.Fatal(err)
	}
	got, watermark := collect(t, m)
	if watermark != 3 {
		t.Fatalf("watermark = %d, want 3", watermark)
	}
	if !reflect.DeepEqual(recs, got) {
		t.Fatalf("memory replay mismatch: %d vs %d records", len(recs), len(got))
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.AppendBatch(recs[:1]); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v, want ErrClosed", err)
	}
}

func TestWALCheckpointSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	w, _ := OpenWAL(WALOptions{Dir: dir, Sync: SyncAlways})
	rec := appendRec(1, "a")
	if err := w.AppendBatch([]WALRecord{rec}); err != nil {
		t.Fatal(err)
	}
	sum := entity.NewState(entity.Key{Type: "Account", ID: "gone"})
	sum.Fields["balance"] = 77.0
	sum.Freeze()
	err := w.Checkpoint(1, func(put func(WALRecord) error) error {
		if err := put(WALRecord{Kind: KindSummary, Key: sum.Key, Summary: sum}); err != nil {
			return err
		}
		return put(rec)
	})
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	w2, _ := OpenWAL(WALOptions{Dir: dir})
	got, watermark := collect(t, w2)
	if watermark != 1 || len(got) != 2 {
		t.Fatalf("watermark=%d records=%d, want 1/2", watermark, len(got))
	}
	if got[0].Kind != KindSummary || got[0].Summary.Fields["balance"] != 77.0 {
		t.Fatalf("summary lost in checkpoint: %+v", got[0])
	}
	if got[1].Kind != KindAppend || got[1].LSN != 1 {
		t.Fatalf("record lost in checkpoint: %+v", got[1])
	}
	w2.Close()
}

func TestWALDirLockRefusesSecondOpener(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(WALOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AppendBatch([]WALRecord{appendRec(1, "a")}); err != nil {
		t.Fatal(err)
	}
	// A second opener of the same directory must fail fast — two processes
	// interleaving appends in one WAL directory would corrupt the log.
	if _, err := OpenWAL(WALOptions{Dir: dir}); !errors.Is(err, ErrDirLocked) {
		t.Fatalf("second opener: got %v, want ErrDirLocked", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Close releases the lease: reopening succeeds and replays the log.
	w2, err := OpenWAL(WALOptions{Dir: dir})
	if err != nil {
		t.Fatalf("reopen after Close: %v", err)
	}
	got, _ := collect(t, w2)
	if len(got) != 1 || got[0].LSN != 1 {
		t.Fatalf("replay after relock = %v", got)
	}
	w2.Close()
}

func streamAfter(t *testing.T, s Streamer, after uint64) []WALRecord {
	t.Helper()
	var out []WALRecord
	if err := s.StreamAfter(after, func(rec WALRecord) error {
		out = append(out, rec)
		return nil
	}); err != nil {
		t.Fatalf("StreamAfter(%d): %v", after, err)
	}
	return out
}

func TestReplicationWatermarkPersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(WALOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if got := w.ReplicationWatermark(); got != 0 {
		t.Fatalf("fresh watermark = %d", got)
	}
	if err := w.AppendBatch([]WALRecord{appendRec(1, "a"), appendRec(2, "b")}); err != nil {
		t.Fatal(err)
	}
	if err := w.SetReplicationWatermark(2); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// The watermark must survive a reopen without a replay, even though no
	// checkpoint was ever taken, and the log content must be intact.
	w2, err := OpenWAL(WALOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if got := w2.ReplicationWatermark(); got != 2 {
		t.Fatalf("watermark after reopen = %d, want 2", got)
	}
	recs, _ := collect(t, w2)
	if len(recs) != 2 {
		t.Fatalf("replayed %d records, want 2", len(recs))
	}
}

func TestReplicationWatermarkCarriedThroughCheckpoint(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(WALOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	recs := []WALRecord{appendRec(1, "a"), appendRec(2, "b")}
	if err := w.AppendBatch(recs); err != nil {
		t.Fatal(err)
	}
	if err := w.SetReplicationWatermark(7); err != nil {
		t.Fatal(err)
	}
	err = w.Checkpoint(2, func(put func(WALRecord) error) error {
		for _, rec := range recs {
			if err := put(rec); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := w.ReplicationWatermark(); got != 7 {
		t.Fatalf("watermark after checkpoint = %d, want 7", got)
	}
}

func TestStreamAfterServesTail(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(WALOptions{Dir: dir, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for lsn := uint64(1); lsn <= 10; lsn++ {
		if err := w.AppendBatch([]WALRecord{appendRec(lsn, "a")}); err != nil {
			t.Fatal(err)
		}
	}
	got := streamAfter(t, w, 6)
	if len(got) != 4 {
		t.Fatalf("streamed %d records after 6, want 4", len(got))
	}
	for i, rec := range got {
		if want := uint64(7 + i); rec.LSN != want {
			t.Fatalf("rec[%d].LSN = %d, want %d", i, rec.LSN, want)
		}
	}
	// Marks in range pass through.
	if err := w.AppendBatch([]WALRecord{{Kind: KindObsolete, Key: entity.Key{Type: "Account", ID: "a"}, TxnID: "t3"}}); err != nil {
		t.Fatal(err)
	}
	got = streamAfter(t, w, 10)
	if len(got) != 1 || got[0].Kind != KindObsolete {
		t.Fatalf("stream after 10 = %+v, want the obsolete mark", got)
	}
}

func TestStreamAfterAcrossCheckpoint(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(WALOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	recs := []WALRecord{appendRec(1, "a"), appendRec(2, "b"), appendRec(3, "c")}
	if err := w.AppendBatch(recs); err != nil {
		t.Fatal(err)
	}
	if err := w.Checkpoint(3, func(put func(WALRecord) error) error {
		for _, rec := range recs {
			if err := put(rec); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendBatch([]WALRecord{appendRec(4, "d")}); err != nil {
		t.Fatal(err)
	}
	// Cut inside the checkpoint: snapshot records past the cut plus the tail.
	got := streamAfter(t, w, 1)
	if len(got) != 3 || got[0].LSN != 2 || got[2].LSN != 4 {
		t.Fatalf("stream after 1 = %d records (LSNs %v), want 2,3,4", len(got), lsns(got))
	}
	// Cut at the watermark: snapshot skipped wholesale, tail only.
	got = streamAfter(t, w, 3)
	if len(got) != 1 || got[0].LSN != 4 {
		t.Fatalf("stream after 3 = %v, want just LSN 4", lsns(got))
	}
}

func lsns(recs []WALRecord) []uint64 {
	out := make([]uint64, len(recs))
	for i, rec := range recs {
		out[i] = rec.LSN
	}
	return out
}

func TestStreamAfterCompactedHistoryFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(WALOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.AppendBatch([]WALRecord{appendRec(1, "a"), appendRec(2, "a")}); err != nil {
		t.Fatal(err)
	}
	// A checkpoint whose content includes an archived summary: the detail
	// records below the compaction horizon no longer exist individually.
	summary := WALRecord{Kind: KindSummary, Key: entity.Key{Type: "Account", ID: "a"}, Summary: &entity.State{}}
	if err := w.Checkpoint(2, func(put func(WALRecord) error) error {
		return put(summary)
	}); err != nil {
		t.Fatal(err)
	}
	err = w.StreamAfter(0, func(WALRecord) error { return nil })
	if !errors.Is(err, ErrCompacted) {
		t.Fatalf("stream into compacted history: want ErrCompacted, got %v", err)
	}
	// At or past the watermark the snapshot is skipped and streaming works.
	if got := streamAfter(t, w, 2); len(got) != 0 {
		t.Fatalf("stream after watermark = %v, want empty", lsns(got))
	}
}

func TestMemoryStreamAndWatermark(t *testing.T) {
	m := NewMemory()
	if err := m.AppendBatch([]WALRecord{appendRec(1, "a"), appendRec(2, "b")}); err != nil {
		t.Fatal(err)
	}
	if got := streamAfter(t, m, 1); len(got) != 1 || got[0].LSN != 2 {
		t.Fatalf("memory stream after 1 = %v", lsns(got))
	}
	if err := m.SetReplicationWatermark(2); err != nil {
		t.Fatal(err)
	}
	if got := m.ReplicationWatermark(); got != 2 {
		t.Fatalf("memory watermark = %d", got)
	}
}

// TestWALTornWriteRecoveryMatrix is the exhaustive crash-point sweep: a
// segment of known frames is truncated at every byte offset — mid-header,
// mid-payload, and exactly on each frame boundary — and recovery must yield
// exactly the wholly-written prefix, never an error and never a partial
// record. The single-offset torn-tail tests above are spot checks; this is
// the proof that no byte position in a crashed final write is special.
func TestWALTornWriteRecoveryMatrix(t *testing.T) {
	const n = 4
	pristine := t.TempDir()
	w, err := OpenWAL(WALOptions{Dir: pristine})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= n; i++ {
		if err := w.AppendBatch([]WALRecord{appendRec(uint64(i), "a")}); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	raw, err := os.ReadFile(filepath.Join(pristine, segName(1)))
	if err != nil {
		t.Fatal(err)
	}

	// Frame boundaries: boundaries[k] is the offset right after the k-th
	// complete frame (boundaries[0] is the end of the magic).
	boundaries := []int64{int64(len(segMagic))}
	for off := int64(len(segMagic)); off < int64(len(raw)); {
		length := binary.LittleEndian.Uint32(raw[off:])
		off += frameHeader + int64(length)
		boundaries = append(boundaries, off)
	}
	if len(boundaries) != n+1 || boundaries[n] != int64(len(raw)) {
		t.Fatalf("segment layout: %d frames ending at %v, file is %d bytes", len(boundaries)-1, boundaries, len(raw))
	}
	// survivors(cut) = how many frames are wholly below the cut.
	survivors := func(cut int64) int {
		k := 0
		for k < n && boundaries[k+1] <= cut {
			k++
		}
		return k
	}

	for cut := int64(len(segMagic)); cut <= int64(len(raw)); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(1)), raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		w2, err := OpenWAL(WALOptions{Dir: dir})
		if err != nil {
			t.Fatalf("cut %d: open: %v", cut, err)
		}
		var got []WALRecord
		if _, err := w2.Replay(func(rec WALRecord) error {
			got = append(got, rec)
			return nil
		}); err != nil {
			t.Fatalf("cut %d: replay of a torn final write must succeed, got %v", cut, err)
		}
		want := survivors(cut)
		if len(got) != want {
			t.Fatalf("cut %d: recovered %d records, want exactly the %d-frame prefix", cut, len(got), want)
		}
		for i, rec := range got {
			if rec.LSN != uint64(i+1) {
				t.Fatalf("cut %d: record %d has LSN %d, want the dense prefix", cut, i, rec.LSN)
			}
		}
		// The repair truncated back to the boundary: the log accepts appends
		// and a fresh replay sees prefix + new record, nothing torn.
		if err := w2.AppendBatch([]WALRecord{appendRec(uint64(want+1), "resume")}); err != nil {
			t.Fatalf("cut %d: append after repair: %v", cut, err)
		}
		w2.Close()
		w3, err := OpenWAL(WALOptions{Dir: dir})
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", cut, err)
		}
		got3, _ := collect(t, w3)
		if len(got3) != want+1 || got3[len(got3)-1].LSN != uint64(want+1) {
			t.Fatalf("cut %d: replay after resume has %d records, want %d", cut, len(got3), want+1)
		}
		w3.Close()
	}
}

// A torn write is repaired silently; a damaged byte under intact framing is
// not. The matrix above must not desensitise recovery: flipping one payload
// byte mid-log (framing intact, CRC wrong) stays a typed *CorruptError at
// every position, distinguishing bit rot from crash debris.
func TestWALMidLogCorruptionStaysTypedAcrossOffsets(t *testing.T) {
	const n = 4
	pristine := t.TempDir()
	w, err := OpenWAL(WALOptions{Dir: pristine})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= n; i++ {
		if err := w.AppendBatch([]WALRecord{appendRec(uint64(i), "a")}); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	raw, err := os.ReadFile(filepath.Join(pristine, segName(1)))
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte inside each of the first three frames (the last
	// frame's corruption is also detected — CRC runs before torn-tail logic
	// ever applies, which only triggers on incomplete reads, not bad sums).
	off := int64(len(segMagic))
	for frame := 0; frame < n; frame++ {
		length := binary.LittleEndian.Uint32(raw[off:])
		target := off + frameHeader + int64(length)/2
		dir := t.TempDir()
		mut := append([]byte(nil), raw...)
		mut[target] ^= 0xFF
		if err := os.WriteFile(filepath.Join(dir, segName(1)), mut, 0o644); err != nil {
			t.Fatal(err)
		}
		w2, err := OpenWAL(WALOptions{Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		_, err = w2.Replay(func(WALRecord) error { return nil })
		var ce *CorruptError
		if !errors.As(err, &ce) {
			t.Fatalf("frame %d: corrupted payload replayed with err %v, want *CorruptError", frame, err)
		}
		if ce.Offset != off {
			t.Fatalf("frame %d: CorruptError at offset %d, want frame start %d", frame, ce.Offset, off)
		}
		w2.Close()
		off += frameHeader + int64(length)
	}
}

// TestSealTruncatePrunesTieredHistory pins the tiered-pruning primitives:
// SealActive rotates the active segment and returns the sealed boundary,
// TruncateThrough prunes through it once a flush covers the records, replay
// afterwards yields only the tail, and replication cuts below the tiered
// watermark answer ErrCompacted.
func TestSealTruncatePrunesTieredHistory(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(WALOptions{Dir: dir, SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 20; i++ {
		if err := w.AppendBatch([]WALRecord{appendRec(uint64(i), "a")}); err != nil {
			t.Fatal(err)
		}
	}
	boundary, err := w.SealActive()
	if err != nil {
		t.Fatal(err)
	}
	if boundary == 0 {
		t.Fatal("seal returned no boundary despite durable frames")
	}
	// Sealing an already-empty active segment must not rotate again.
	again, err := w.SealActive()
	if err != nil || again != boundary {
		t.Fatalf("idempotent seal: %d, %v, want %d", again, err, boundary)
	}
	// Records after the seal land above the boundary and must survive pruning.
	for i := 21; i <= 23; i++ {
		if err := w.AppendBatch([]WALRecord{appendRec(uint64(i), "b")}); err != nil {
			t.Fatal(err)
		}
	}
	if pruned, err := w.TruncateThrough(20, boundary); err != nil || !pruned {
		t.Fatalf("TruncateThrough = %v, %v, want pruned", pruned, err)
	}
	got, watermark := collect(t, w)
	if watermark != 20 {
		t.Fatalf("replay watermark %d after truncate, want 20", watermark)
	}
	if len(got) != 3 || got[0].LSN != 21 || got[2].LSN != 23 {
		t.Fatalf("tail after truncate: %d records, first %d", len(got), got[0].LSN)
	}
	if segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg")); len(segs) != 1 {
		t.Fatalf("sealed segments not pruned: %v", segs)
	}
	// No snapshot backs the manifest, so a cut below the watermark is gone.
	if err := w.StreamAfter(5, func(WALRecord) error { return nil }); !errors.Is(err, ErrCompacted) {
		t.Fatalf("StreamAfter(5) = %v, want ErrCompacted", err)
	}
	// A cut at the watermark streams the tail.
	var tail []uint64
	if err := w.StreamAfter(20, func(rec WALRecord) error { tail = append(tail, rec.LSN); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(tail) != 3 || tail[0] != 21 {
		t.Fatalf("StreamAfter(20) tail %v", tail)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// The truncation survives reopen.
	w2, err := OpenWAL(WALOptions{Dir: dir, SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	got2, watermark2 := collect(t, w2)
	if watermark2 != 20 || len(got2) != 3 {
		t.Fatalf("after reopen: watermark %d, %d records", watermark2, len(got2))
	}
	w2.Close()
}

// TestTruncateThroughCutoffIsPrunedMax: the ErrCompacted cutoff a tiered
// prune installs is the highest LSN the pruned segments actually contained,
// not the flush capture watermark — the capture can cover records still
// sitting in the retained active segment, and a standby whose cut those
// retained frames serve must stream instead of being forced into a resync.
func TestTruncateThroughCutoffIsPrunedMax(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(WALOptions{Dir: dir, SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for i := 1; i <= 20; i++ {
		if err := w.AppendBatch([]WALRecord{appendRec(uint64(i), "a")}); err != nil {
			t.Fatal(err)
		}
	}
	boundary, err := w.SealActive()
	if err != nil {
		t.Fatal(err)
	}
	// Records 21..23 land above the seal, in the retained active segment; the
	// flush watermark (23) covers them anyway — a capture races ahead of the
	// seal boundary by design.
	for i := 21; i <= 23; i++ {
		if err := w.AppendBatch([]WALRecord{appendRec(uint64(i), "b")}); err != nil {
			t.Fatal(err)
		}
	}
	if pruned, err := w.TruncateThrough(23, boundary); err != nil || !pruned {
		t.Fatalf("TruncateThrough = %v, %v, want pruned", pruned, err)
	}
	// A standby at LSN 21: the retained segments hold 22 and 23, so the
	// stream must serve them, not answer ErrCompacted.
	var streamed []uint64
	if err := w.StreamAfter(21, func(rec WALRecord) error { streamed = append(streamed, rec.LSN); return nil }); err != nil {
		t.Fatalf("StreamAfter(21) = %v, want the retained tail", err)
	}
	if len(streamed) != 2 || streamed[0] != 22 || streamed[1] != 23 {
		t.Fatalf("StreamAfter(21) tail %v, want [22 23]", streamed)
	}
	// A cut at the true pruned max streams the whole retained tail.
	streamed = nil
	if err := w.StreamAfter(20, func(rec WALRecord) error { streamed = append(streamed, rec.LSN); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(streamed) != 3 || streamed[0] != 21 {
		t.Fatalf("StreamAfter(20) tail %v, want [21 22 23]", streamed)
	}
	// A cut genuinely below the pruned prefix is gone.
	if err := w.StreamAfter(19, func(WALRecord) error { return nil }); !errors.Is(err, ErrCompacted) {
		t.Fatalf("StreamAfter(19) = %v, want ErrCompacted", err)
	}
}

// TestTruncateThroughRetainsForLaggingStandby: when replication trails the
// flush watermark, pruning is refused so catch-up can still stream the tail.
func TestTruncateThroughRetainsForLaggingStandby(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(WALOptions{Dir: dir, SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for i := 1; i <= 10; i++ {
		if err := w.AppendBatch([]WALRecord{appendRec(uint64(i), "a")}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.SetReplicationWatermark(4); err != nil {
		t.Fatal(err)
	}
	boundary, err := w.SealActive()
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := w.TruncateThrough(10, boundary)
	if err != nil {
		t.Fatal(err)
	}
	if pruned {
		t.Fatal("TruncateThrough reported a prune despite the lagging standby")
	}
	// The standby only acked LSN 4: everything must still replay.
	got, _ := collect(t, w)
	if len(got) != 10 {
		t.Fatalf("lagging-standby tail pruned: %d records left", len(got))
	}
	var streamed []uint64
	if err := w.StreamAfter(4, func(rec WALRecord) error { streamed = append(streamed, rec.LSN); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(streamed) != 6 || streamed[0] != 5 {
		t.Fatalf("catch-up stream %v", streamed)
	}
}
