// Package storage is the pluggable persistence layer under the LSDB: it
// defines the durable form of the log — WALRecord — and the Backend interface
// a store writes its commit cycles through. The paper's model (section 3.1)
// makes the log the database; the natural durable form is therefore an
// append-only write-ahead log whose replay rebuilds the store, plus periodic
// checkpoints so a restart replays only the log tail instead of the full
// history.
//
// Two implementations ship with the package:
//
//   - Memory: retains everything in process memory. It is the no-op backend
//     for purely main-memory deployments and the reference implementation the
//     WAL's tests compare against.
//   - WAL (wal.go): segmented append-only files with length-prefixed binary
//     framing, per-record CRC32, size-based segment rotation, checkpoint
//     manifests and torn-tail recovery.
//
// The write-side attachment point in the store is the commit cycle
// (lsdb.Options.CommitHook's cadence): one AppendBatch call per cycle — one
// framed batch write and at most one fsync — so group commit amortises the
// log force across every writer in a batch.
package storage

import (
	"errors"
	"sync"

	"repro/internal/clock"
	"repro/internal/entity"
)

// RecordKind distinguishes the durable log entry types. Appended entity
// records are the bulk of the log; history rewrites (obsolescence marks,
// compaction horizons) and checkpoint summaries are records too, so one
// framing, one codec and one Replay stream carry everything.
type RecordKind uint8

// Durable record kinds.
const (
	// KindAppend is an appended entity record: the operations one
	// transaction applied to one entity.
	KindAppend RecordKind = iota
	// KindObsolete marks the record produced by TxnID on Key obsolete
	// (a tentative promise was withdrawn after the record was logged).
	KindObsolete
	// KindCompact records a compaction horizon: replay re-runs
	// Compact(Horizon) at this point in the log.
	KindCompact
	// KindSummary is an archived entity summary inside a checkpoint: the
	// rollup of an entity whose detail records were compacted away.
	KindSummary
)

// WALRecord is one durable log entry. For KindAppend it is exactly the
// store's in-memory record (the LSDB aliases its Record type to this struct,
// so commit cycles append with zero conversion); the other kinds use a
// subset of the fields:
//
//	KindObsolete: Key, TxnID
//	KindCompact:  Horizon
//	KindSummary:  Key, Summary
type WALRecord struct {
	LSN       uint64
	Key       entity.Key
	Ops       []entity.Op
	Stamp     clock.Timestamp
	Origin    clock.NodeID
	TxnID     string
	Tentative bool
	// Obsolete marks a tentative record whose promise was later withdrawn.
	// Obsolete records remain in the log for auditability but are skipped by
	// rollups.
	Obsolete bool

	// Kind distinguishes appended entity records (the zero value) from
	// history-rewrite marks and checkpoint summaries.
	Kind RecordKind
	// Horizon is the compaction horizon of a KindCompact record.
	Horizon uint64
	// Summary is the archived state of a KindSummary record. It is frozen.
	Summary *entity.State
}

// Backend is the persistence engine under one store. Implementations must be
// safe for concurrent use: shards commit independently, so AppendBatch may be
// invoked concurrently with itself and with Sync.
//
// Checkpoint and Replay are exclusive with appends by construction — the
// store quiesces writers (all shard locks held) while checkpointing, and
// replay happens before the store accepts writes — so implementations may
// serialise them on the same mutex as AppendBatch without deadlock.
type Backend interface {
	// AppendBatch durably appends one commit cycle's records: one framed
	// batch write, and one log force before returning when the backend is
	// configured to sync on append. An error means durability is unknown;
	// the store surfaces it to every writer in the cycle.
	AppendBatch(recs []WALRecord) error

	// Checkpoint captures the store's full content as of the durable LSN
	// watermark. fill streams the content — archived summaries first, then
	// retained records in global LSN order — through put. The store calls
	// Checkpoint with writers quiesced, so everything appended before the
	// call is covered by the checkpoint and everything after belongs to the
	// replayable tail. On success, recovery replays the checkpoint plus only
	// the log written after this call.
	Checkpoint(watermark uint64, fill func(put func(WALRecord) error) error) error

	// Replay streams the durable content in recovery order: the latest
	// checkpoint's summaries and records, then every log record appended
	// after that checkpoint. It returns the checkpoint's LSN watermark
	// (0 when no checkpoint exists). Replay must be called before the first
	// AppendBatch; a torn tail record left by a crash is truncated here.
	Replay(fn func(WALRecord) error) (watermark uint64, err error)

	// Sync forces everything appended so far to stable storage.
	Sync() error

	// Close syncs and releases the backend. The backend is unusable after.
	Close() error
}

// ErrClosed is returned by operations on a closed backend.
var ErrClosed = errors.New("storage: backend closed")

// ErrCompacted reports that a StreamAfter cut predates history that has been
// compacted into archived summaries: the records the receiver is missing no
// longer exist individually, so a tail stream cannot serve them. The receiver
// must bootstrap from a full copy instead.
var ErrCompacted = errors.New("storage: stream cut predates compacted history")

// ErrPoisoned reports a backend that observed an fsync failure. A failed
// fsync leaves the page cache and the disk in unknown disagreement, and a
// retried fsync can report success without making the lost pages durable
// (the kernel marks them clean when it first reports the error). The only
// honest reaction is to fail-stop the writer side permanently; recovery is
// a restart — which replays only what the disk really holds — or a repair
// from a peer's copy of the log.
var ErrPoisoned = errors.New("storage: backend poisoned by fsync failure")

// ErrFailStopped reports a backend that refused further appends after a
// partial write it could not erase: continuing would bury garbage under
// valid frames and turn a transient write error into mid-log corruption.
// Unlike ErrPoisoned it is repairable — Quarantine truncates the partial
// suffix and re-arms the backend.
var ErrFailStopped = errors.New("storage: backend fail-stopped after a partial append")

// Quarantiner is the optional repair interface of a backend. When replay or
// a tail stream hits corruption, Quarantine isolates the corrupt suffix —
// everything after the last verifiably good record is truncated or set
// aside — and re-arms the backend for appends. The caller then refills the
// removed suffix from a peer's copy of the log (replication catch-up)
// before resuming writes. It returns the LSN of the last good append record
// the backend still holds.
type Quarantiner interface {
	Quarantine() (lastGood uint64, err error)
}

// Streamer is the optional catch-up interface of a backend: replication uses
// it to re-ship the log tail a standby missed (loss, partition, restart)
// straight from durable storage, without holding the whole history in memory.
// Both bundled backends implement it.
type Streamer interface {
	// StreamAfter streams, in log order, every appended entity record with
	// LSN > after plus the history-rewrite marks (obsolescence, compaction)
	// in the scanned range. Archived summaries cannot be cut by LSN: when
	// the requested cut predates a checkpoint that contains summaries,
	// StreamAfter fails with ErrCompacted instead of silently gapping.
	StreamAfter(after uint64, fn func(WALRecord) error) error
}

// ReplicationMarker is the optional replication-watermark interface of a
// backend: a standby durably records the highest LSN it has received so a
// restart (or a promotion decision) can read how far the received log reaches
// without replaying it. The WAL persists the mark in its checkpoint manifest.
type ReplicationMarker interface {
	// ReplicationWatermark returns the recorded replication watermark
	// (0 when never set).
	ReplicationWatermark() uint64
	// SetReplicationWatermark durably records lsn as the replication
	// watermark.
	SetReplicationWatermark(lsn uint64) error
}

// Memory is the in-process backend: append-only slices, no durability. It is
// the no-op choice for main-memory deployments (a restart loses the log, as
// before this package existed) while still honouring the full Backend
// contract — Replay returns what was appended — so tests can run one store
// against Memory and one against a WAL and compare.
type Memory struct {
	mu         sync.Mutex
	closed     bool
	watermark  uint64
	replicated uint64
	ckpt       []WALRecord // latest checkpoint content
	tail       []WALRecord // records appended after the checkpoint
}

// NewMemory returns an empty in-memory backend.
func NewMemory() *Memory { return &Memory{} }

// AppendBatch retains the records in memory.
func (m *Memory) AppendBatch(recs []WALRecord) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	m.tail = append(m.tail, recs...)
	return nil
}

// Checkpoint replaces the retained prefix with the streamed content. The
// store quiesces writers across the call, so the tail cut is exact.
func (m *Memory) Checkpoint(watermark uint64, fill func(put func(WALRecord) error) error) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	var ckpt []WALRecord
	if err := fill(func(rec WALRecord) error {
		ckpt = append(ckpt, rec)
		return nil
	}); err != nil {
		return err
	}
	m.ckpt, m.tail, m.watermark = ckpt, nil, watermark
	return nil
}

// Replay streams the checkpoint content, then the tail.
func (m *Memory) Replay(fn func(WALRecord) error) (uint64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return 0, ErrClosed
	}
	for _, recs := range [2][]WALRecord{m.ckpt, m.tail} {
		for _, rec := range recs {
			if err := fn(rec); err != nil {
				return m.watermark, err
			}
		}
	}
	return m.watermark, nil
}

// Sync is a no-op: memory is as stable as this backend gets.
func (m *Memory) Sync() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	return nil
}

// Close marks the backend unusable.
func (m *Memory) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	return nil
}

// Len reports how many records the backend retains (checkpoint + tail).
func (m *Memory) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.ckpt) + len(m.tail)
}

// StreamAfter streams retained append records with LSN > after plus the marks
// in range, per the Streamer contract. A checkpoint holding archived
// summaries can only be skipped wholesale (every record in it has
// LSN <= watermark); a cut inside it fails with ErrCompacted.
func (m *Memory) StreamAfter(after uint64, fn func(WALRecord) error) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	parts := [2][]WALRecord{m.ckpt, m.tail}
	if after >= m.watermark {
		parts[0] = nil // checkpoint content is wholly at or below the cut
	}
	for _, recs := range parts {
		for _, rec := range recs {
			switch rec.Kind {
			case KindAppend:
				if rec.LSN <= after {
					continue
				}
			case KindSummary:
				return ErrCompacted
			}
			if err := fn(rec); err != nil {
				return err
			}
		}
	}
	return nil
}

// truncateTailAfter drops the tail suffix starting at the first append
// record with LSN > lsn (everything logged after that point — marks
// included — is suspect once the log is being quarantined; the repair
// refill re-supplies the range from a peer).
func (m *Memory) truncateTailAfter(lsn uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i, rec := range m.tail {
		if rec.Kind == KindAppend && rec.LSN > lsn {
			m.tail = m.tail[:i]
			return
		}
	}
}

// ReplicationWatermark returns the recorded replication watermark.
func (m *Memory) ReplicationWatermark() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.replicated
}

// SetReplicationWatermark records lsn as the replication watermark.
func (m *Memory) SetReplicationWatermark(lsn uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	m.replicated = lsn
	return nil
}
