//go:build unix

// Data-directory lock (unix): an exclusive flock lease on a LOCK file.
//
// Two processes appending to the same WAL directory would interleave
// frames and corrupt the log, so OpenWAL takes the lease before touching
// anything else and a second opener fails fast with ErrDirLocked. flock is
// an advisory lock tied to the open file description: the kernel releases
// it when the holder exits — including kill -9 — so a crashed process never
// leaves a stale lease behind and the recovery path reopens the directory
// without manual cleanup.
package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// dirLock is a held data-directory lease.
type dirLock struct {
	f *os.File
}

// acquireDirLock takes the exclusive lease on dir's LOCK file, failing fast
// with ErrDirLocked when another process holds it.
func acquireDirLock(dir string) (*dirLock, error) {
	path := filepath.Join(dir, lockFileName)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		// Only contention is "locked"; anything else (e.g. ENOLCK on a
		// filesystem without flock support) must surface as what it is, or
		// operators go hunting for a holder that does not exist.
		if err == syscall.EWOULDBLOCK || err == syscall.EAGAIN {
			return nil, fmt.Errorf("%w: %s is held by another process", ErrDirLocked, path)
		}
		return nil, fmt.Errorf("storage: locking %s: %w", path, err)
	}
	// Record the holder for operators inspecting the directory; the content
	// is informational — the flock, not the bytes, is the lease.
	_ = f.Truncate(0)
	_, _ = fmt.Fprintf(f, "%d\n", os.Getpid())
	return &dirLock{f: f}, nil
}

// release drops the lease. The LOCK file itself stays behind (removing it
// would race a concurrent opener); only the flock matters.
func (l *dirLock) release() {
	if l == nil || l.f == nil {
		return
	}
	_ = syscall.Flock(int(l.f.Fd()), syscall.LOCK_UN)
	_ = l.f.Close()
	l.f = nil
}
