package storage

// Unit tests for the fault-injecting backend wrapper: each injected failure
// mode must mirror the WAL's real degradation semantics — retryable ENOSPC,
// fail-stop after a torn write, permanent poisoning after a failed fsync,
// typed corruption from reads and appends — and Quarantine must cut the log
// back to exactly the last verifiably good record.

import (
	"errors"
	"testing"
)

func faultOverMemory() *FaultBackend { return NewFaultBackend(NewMemory()) }

func mustAppend(t *testing.T, b Backend, lsns ...uint64) {
	t.Helper()
	for _, lsn := range lsns {
		if err := b.AppendBatch([]WALRecord{appendRec(lsn, "a")}); err != nil {
			t.Fatalf("append LSN %d: %v", lsn, err)
		}
	}
}

func replayLSNs(t *testing.T, b Backend) []uint64 {
	t.Helper()
	var out []uint64
	if _, err := b.Replay(func(rec WALRecord) error {
		out = append(out, rec.LSN)
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return out
}

func TestFaultBackendEnospcWindowIsRetryable(t *testing.T) {
	fb := faultOverMemory()
	mustAppend(t, fb, 1)
	fb.FailAppends(2)
	for i := 0; i < 2; i++ {
		if err := fb.AppendBatch([]WALRecord{appendRec(2, "a")}); !errors.Is(err, ErrNoSpace) {
			t.Fatalf("refusal %d = %v, want ErrNoSpace", i, err)
		}
	}
	// The window ran down: the same append now succeeds, nothing from the
	// refused attempts leaked into the log.
	mustAppend(t, fb, 2)
	if got := replayLSNs(t, fb); len(got) != 2 || got[1] != 2 {
		t.Fatalf("log after window = %v, want [1 2]", got)
	}
	st := fb.Stats()
	if st.AppendsRefused != 2 || st.AppendsPassed != 2 {
		t.Fatalf("stats = %+v, want 2 refused / 2 passed", st)
	}
}

func TestFaultBackendHealCancelsPendingInjections(t *testing.T) {
	fb := faultOverMemory()
	fb.FailAppends(10)
	fb.TearNextAppend()
	fb.PoisonNextSync()
	fb.Heal()
	mustAppend(t, fb, 1)
	if st := fb.Stats(); st.AppendsRefused != 0 || st.TornAppends != 0 || st.SyncPoisonings != 0 {
		t.Fatalf("healed injections still fired: %+v", st)
	}
}

func TestFaultBackendTornAppendFailStopsUntilQuarantine(t *testing.T) {
	fb := faultOverMemory()
	mustAppend(t, fb, 1, 2)
	fb.TearNextAppend()
	// A 4-record batch: the tear persists the first half, then fail-stops.
	batch := []WALRecord{appendRec(3, "a"), appendRec(4, "a"), appendRec(5, "a"), appendRec(6, "a")}
	if err := fb.AppendBatch(batch); !errors.Is(err, ErrFailStopped) {
		t.Fatalf("torn append = %v, want ErrFailStopped", err)
	}
	if got := replayLSNs(t, fb); len(got) != 4 || got[3] != 4 {
		t.Fatalf("log after tear = %v, want the persisted prefix [1 2 3 4]", got)
	}
	// Fail-stopped: every further append refuses, and Heal does not clear a
	// fail-stop that already happened.
	fb.Heal()
	if err := fb.AppendBatch([]WALRecord{appendRec(7, "a")}); !errors.Is(err, ErrFailStopped) {
		t.Fatalf("append while fail-stopped = %v", err)
	}
	// Quarantine erases the partial suffix — everything after the last batch
	// that fully succeeded — and re-opens the log.
	lastGood, err := fb.Quarantine()
	if err != nil {
		t.Fatal(err)
	}
	if lastGood != 2 {
		t.Fatalf("quarantine cut at %d, want 2 (the torn batch is gone entirely)", lastGood)
	}
	if got := replayLSNs(t, fb); len(got) != 2 {
		t.Fatalf("log after quarantine = %v, want [1 2]", got)
	}
	mustAppend(t, fb, 3)
	if st := fb.Stats(); st.TornAppends != 1 || st.Quarantines != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFaultBackendPoisonIsPermanent(t *testing.T) {
	fb := faultOverMemory()
	mustAppend(t, fb, 1)
	fb.PoisonNextSync()
	// The poisoned append reaches the inner log but the ack is lost.
	if err := fb.AppendBatch([]WALRecord{appendRec(2, "a")}); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("poisoned append = %v, want ErrPoisoned", err)
	}
	if !fb.Poisoned() {
		t.Fatal("Poisoned() = false after an injected fsync failure")
	}
	for name, op := range map[string]func() error{
		"append": func() error { return fb.AppendBatch([]WALRecord{appendRec(3, "a")}) },
		"sync":   fb.Sync,
		"checkpoint": func() error {
			return fb.Checkpoint(1, func(func(WALRecord) error) error { return nil })
		},
		"quarantine": func() error { _, err := fb.Quarantine(); return err },
	} {
		if err := op(); !errors.Is(err, ErrPoisoned) {
			t.Fatalf("%s after poison = %v, want ErrPoisoned (nothing clears it)", name, err)
		}
	}
	fb.Heal() // must not resurrect a poisoned backend
	if err := fb.AppendBatch([]WALRecord{appendRec(3, "a")}); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("append after Heal = %v, poisoning must survive Heal", err)
	}
}

func TestFaultBackendCorruptionTypedOnEveryPathAndQuarantineCut(t *testing.T) {
	fb := faultOverMemory()
	mustAppend(t, fb, 1, 2, 3, 4)
	fb.CorruptFrom(3)
	var ce *CorruptError
	if err := fb.AppendBatch([]WALRecord{appendRec(5, "a")}); !errors.As(err, &ce) {
		t.Fatalf("append into corruption = %v, want *CorruptError", err)
	}
	if _, err := fb.Replay(func(WALRecord) error { return nil }); !errors.As(err, &ce) {
		t.Fatalf("replay across corruption = %v, want *CorruptError", err)
	}
	if err := fb.StreamAfter(0, func(WALRecord) error { return nil }); !errors.As(err, &ce) {
		t.Fatalf("stream across corruption = %v, want *CorruptError", err)
	}
	// Records before the corruption point still replay: the typed error fires
	// exactly at LSN 3, not before.
	var seen []uint64
	_, err := fb.Replay(func(rec WALRecord) error {
		seen = append(seen, rec.LSN)
		return nil
	})
	if !errors.As(err, &ce) || len(seen) != 2 {
		t.Fatalf("replay reached %v before failing with %v, want [1 2]", seen, err)
	}
	lastGood, err := fb.Quarantine()
	if err != nil {
		t.Fatal(err)
	}
	if lastGood != 2 {
		t.Fatalf("quarantine cut at %d, want corruptAt-1 = 2", lastGood)
	}
	if got := replayLSNs(t, fb); len(got) != 2 {
		t.Fatalf("log after quarantine = %v, want [1 2]", got)
	}
	// The refill path (the caller's job) resumes from the cut.
	mustAppend(t, fb, 3, 4)
	if got := replayLSNs(t, fb); len(got) != 4 {
		t.Fatalf("refilled log = %v", got)
	}
	if st := fb.Stats(); st.CorruptionHits < 4 || st.Quarantines != 1 {
		t.Fatalf("stats = %+v", st)
	}
}
