// Group-commit append batching (Options.GroupCommit).
//
// The write path's fixed costs — acquiring the shard's write lock and taking
// the global LSN sequence lock — are paid once per append on the serial path.
// Under concurrent writers those acquisitions dominate: every append is a
// contended lock handoff plus a scheduler round trip. Group commit amortises
// them the way write-ahead-log group commit amortises the log-force: writers
// enqueue their already-sanitized op-sets on a per-shard commit queue, the
// first writer to find the queue idle becomes the *leader*, and the leader
// drains the queue in batches — one shard-lock hold and one contiguous LSN
// run per batch — then wakes each follower with its individual AppendResult.
// The leader's own request rides in its first batch, so an uncontended
// append never pays a channel round trip at all.
//
// Equivalence with the serial path is the contract (and is what the
// TestGroupCommit* suite asserts): requests are validated in arrival order
// against a batch-local overlay of the shard state, so a request observes its
// batch predecessors exactly as it would have observed committed appends;
// duplicate-transaction detection, validation-mode errors and tentative
// semantics are all per-request; failed requests consume no LSN, so the log
// stays dense. Readers are unaffected — they take the shard lock as before
// and see batches atomically.
package lsdb

import (
	"fmt"
	"sync"

	"repro/internal/clock"
	"repro/internal/entity"
)

// appendReq is one writer's enqueued append: the sanitized operations plus a
// reusable one-slot channel the leader signals once res/err is filled in.
// Requests are pooled; the channel is drained by exactly one receive per
// signal, so a request (and its channel) can be reused as soon as its writer
// has read the result.
type appendReq struct {
	typ       *entity.Type
	key       entity.Key
	ops       []entity.Op
	stamp     clock.Timestamp
	origin    clock.NodeID
	txnID     string
	tentative bool

	// next is the applied (not yet frozen) state, set by the leader's
	// validation pass; requests that fail validation never reach the commit
	// pass and never consume an LSN.
	next *entity.State
	res  AppendResult
	err  error
	done chan struct{}
}

var reqPool = sync.Pool{
	New: func() interface{} { return &appendReq{done: make(chan struct{}, 1)} },
}

// appendGrouped enqueues one append on the shard's commit queue. The first
// writer to find the queue idle becomes the leader and drains it, its own
// request first; everyone else parks until a leader has committed their
// batch. Ops are already sanitized and the type resolved.
func (db *DB) appendGrouped(s *shard, typ *entity.Type, key entity.Key, ops []entity.Op, stamp clock.Timestamp, origin clock.NodeID, txnID string, tentative bool) (AppendResult, error) {
	req := reqPool.Get().(*appendReq)
	req.typ, req.key, req.ops = typ, key, ops
	req.stamp, req.origin, req.txnID, req.tentative = stamp, origin, txnID, tentative
	s.qmu.Lock()
	s.pending = append(s.pending, req)
	if s.draining {
		s.qmu.Unlock()
		<-req.done
	} else {
		// Leadership invariant: draining is only ever cleared with the queue
		// observed empty, so a writer that finds draining unset enqueued onto
		// an empty queue — its request is first in the leader's first batch
		// and is completed by its own drain, no channel round trip needed.
		s.draining = true
		s.qmu.Unlock()
		db.drainShard(s, req)
	}
	res, err := req.res, req.err
	req.typ, req.ops, req.next = nil, nil, nil
	req.res, req.err = AppendResult{}, nil
	reqPool.Put(req)
	return res, err
}

// drainShard is the leader loop: take up to MaxBatch queued requests, commit
// them as one batch under a single shard-lock hold, signal the followers,
// repeat until the queue is empty. The shard lock is released between
// batches, so readers and history rewrites (MarkObsolete, Compact) interleave
// at batch granularity instead of waiting out the whole queue. Leadership
// ends only under qmu with the queue observed empty, so there is never a
// moment where requests are pending but no leader is responsible for them.
// self is the leader's own request; it is signalled by returning, not through
// its channel.
func (db *DB) drainShard(s *shard, self *appendReq) {
	// Scratch space reused across every batch of this drain: the survivor
	// list and the batch-local overlay maps. One allocation set per drain,
	// not per batch.
	var live []*appendReq
	var states map[entity.Key]*entity.State
	var txns map[entity.Key]map[string]bool
	// batch is the in-flight, already-dequeued batch; the deferred recovery
	// below needs it so a panic escaping the commit path (realistically: a
	// user-supplied CommitHook) cannot wedge the shard. Without it, draining
	// would stay set forever and every parked and future writer on this shard
	// would block on its done channel.
	var batch []*appendReq
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		s.qmu.Lock()
		rest := s.pending
		s.pending = nil
		s.draining = false
		s.qmu.Unlock()
		// The in-flight batch may have installed its records before the
		// panic (a CommitHook runs post-install), so this error is
		// indeterminate for those writers — their append may be committed
		// and visible; see Options.CommitHook.
		err := fmt.Errorf("lsdb: group-commit leader failed (append may be committed): %v", r)
		for _, q := range [2][]*appendReq{batch, rest} {
			for _, req := range q {
				if req == self {
					continue
				}
				req.err = err
				req.done <- struct{}{}
			}
		}
		panic(r)
	}()
	for {
		s.qmu.Lock()
		if len(s.pending) == 0 {
			s.draining = false
			s.qmu.Unlock()
			return
		}
		n := len(s.pending)
		if n > db.opts.MaxBatch {
			n = db.opts.MaxBatch
		}
		batch = s.pending[:n:n]
		s.pending = s.pending[n:]
		s.qmu.Unlock()

		if live == nil {
			live = make([]*appendReq, 0, db.opts.MaxBatch)
		}
		if states == nil && n > 1 {
			states = make(map[entity.Key]*entity.State, n)
			txns = map[entity.Key]map[string]bool{}
		}
		clear(states)
		clear(txns)
		var wait func() error
		live, wait = db.commitBatch(s, batch, live[:0], states, txns)
		// The replication ack wait runs after commitBatch released the shard
		// lock and before the followers are signalled: readers and the next
		// batch's enqueuers proceed during the wait, but a sink error still
		// reaches every writer of this batch.
		if err := waitCommitSink(wait); err != nil {
			for _, r := range live {
				r.err = err
			}
		}
		for _, r := range batch {
			if r != self {
				r.done <- struct{}{}
			}
		}
		// Signalled followers may already be recycling their requests; drop
		// the reference so the recovery path can never double-signal them.
		batch = nil
	}
}

// commitBatch applies and commits one batch under one shard-lock hold.
//
// Pass one validates every request in arrival order: duplicate-txn check,
// prior-state lookup and copy-on-write Apply, with a batch-local overlay
// (states, txns) standing in for the not-yet-committed effects of earlier
// requests in the same batch. A failure parks the error on that request
// alone; later requests proceed against the last good state. Single-request
// batches skip the overlay entirely (states and txns are nil).
//
// Pass two reserves one contiguous LSN run — a single sequence-lock
// acquisition for the whole batch — and installs the survivors' records and
// frozen states in order. Because failed requests were excluded before the
// reservation, every reserved LSN is used and the global log stays dense,
// exactly as on the serial path.
func (db *DB) commitBatch(s *shard, batch, live []*appendReq, states map[entity.Key]*entity.State, txns map[entity.Key]map[string]bool) ([]*appendReq, func() error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range batch {
		next, warnings, err := db.applyForAppendLocked(s, r.typ, r.key, r.ops, r.txnID, r.tentative, states, txns)
		if err != nil {
			r.err = err
			continue
		}
		r.next = next
		r.res.Warnings = warnings
		if states != nil {
			states[r.key] = next
			if r.txnID != "" {
				if txns[r.key] == nil {
					txns[r.key] = map[string]bool{}
				}
				txns[r.key][r.txnID] = true
			}
		}
		live = append(live, r)
	}
	if len(live) == 0 {
		return live, nil
	}
	// One commit cycle — one LSN run, one backend append, one log force, one
	// commit-hook call — for the whole batch: this is where group commit
	// amortises durability latency across every writer in the batch.
	// Log-first: the batch reaches the durable backend before any record is
	// installed, so a backend refusal fails the whole batch cleanly — no
	// state changed, every writer gets the typed degraded error, and the
	// rolled-back reservation keeps the log dense.
	recs := make([]Record, len(live))
	for i, r := range live {
		recs[i] = Record{
			Key:       r.key,
			Ops:       r.ops,
			Stamp:     r.stamp,
			Origin:    r.origin,
			TxnID:     r.txnID,
			Tentative: r.tentative,
		}
	}
	if err := db.logAppend(recs); err != nil {
		for _, r := range live {
			r.err = err
			// The applied-but-never-installed state was private to this
			// batch (never frozen, never shared); its copied chunks go back
			// to the free list. Chained applies on one key already revoked
			// the intermediates' ownership, so only truly private chunks
			// are released.
			r.next.Recycle()
			r.next = nil
		}
		return live, nil
	}
	for i, r := range live {
		r.res.Record = recs[i]
		r.res.State = db.commitAppendLocked(s, &r.res.Record, r.next)
	}
	// The sink's capture runs here under the shard lock (order is the
	// contract); the returned ack wait is the caller's to run after this
	// function releases the lock. Its post-install error (replication ack
	// shortfall) is indeterminate for the whole batch — the records are
	// committed and visible — so the caller hands it to every writer.
	return live, db.postCommitLocked(recs)
}
