// Persistence for the log-structured store.
//
// Two codecs serialise the log:
//
//   - The export/import codec (PersistedRecord): JSON, one document per
//     record, self-describing and diffable. It backs the Save/Load
//     compatibility API, the kernel's backup/restore streams and nothing on
//     the hot path. Numbers decode through json.Number, so int64 values
//     round-trip exactly — the old float64 detour silently corrupted
//     magnitudes above 2^53.
//   - The binary WAL codec (internal/storage): length-prefixed, CRC-framed,
//     exact by construction. It backs the durable write path and recovery.
//
// Recovery (Recover) rebuilds a store from a storage.Backend: the latest
// checkpoint's summaries and records stream straight in, the post-checkpoint
// tail is replayed on top, and history-rewrite marks (obsolescence,
// compaction horizons) are re-applied in log order at the end.
package lsdb

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"

	"repro/internal/clock"
	"repro/internal/entity"
	"repro/internal/storage"
)

// PersistedRecord is the JSON wire shape of one record: the export/import
// codec shared by Save/Load and the kernel's backup/restore streams.
// Operations are stored in a restricted form that round-trips the Op fields
// actually used.
type PersistedRecord struct {
	LSN       uint64        `json:"lsn"`
	Key       string        `json:"key"`
	Stamp     string        `json:"stamp"`
	Origin    string        `json:"origin"`
	TxnID     string        `json:"txn,omitempty"`
	Tentative bool          `json:"tentative,omitempty"`
	Obsolete  bool          `json:"obsolete,omitempty"`
	Ops       []PersistedOp `json:"ops"`
	// Kind and Horizon carry history-rewrite marks (obsolescence, compaction)
	// over the replication wire. Both are zero on ordinary appended records —
	// and on every record in a backup stream, which exports live records only
	// — so the backup format is unchanged.
	Kind    int    `json:"kind,omitempty"`
	Horizon uint64 `json:"horizon,omitempty"`
}

// PersistedOp is the JSON wire shape of one operation descriptor.
type PersistedOp struct {
	Kind       int                    `json:"k"`
	Field      string                 `json:"f,omitempty"`
	Value      interface{}            `json:"v,omitempty"`
	Delta      float64                `json:"d,omitempty"`
	Collection string                 `json:"c,omitempty"`
	ChildID    string                 `json:"ci,omitempty"`
	ChildRow   map[string]interface{} `json:"cr,omitempty"`
	Describe   string                 `json:"desc,omitempty"`
}

// ToPersisted converts a record to its JSON wire shape.
func ToPersisted(r Record) PersistedRecord {
	pr := PersistedRecord{
		LSN:       r.LSN,
		Key:       r.Key.String(),
		Stamp:     r.Stamp.String(),
		Origin:    string(r.Origin),
		TxnID:     r.TxnID,
		Tentative: r.Tentative,
		Obsolete:  r.Obsolete,
		Kind:      int(r.Kind),
		Horizon:   r.Horizon,
	}
	if r.Key == (entity.Key{}) {
		pr.Key = "" // a compaction mark has no key; "/" would not re-parse
	}
	for _, op := range r.Ops {
		pr.Ops = append(pr.Ops, PersistedOp{
			Kind: int(op.Kind), Field: op.Field, Value: op.Value, Delta: op.Delta,
			Collection: op.Collection, ChildID: op.ChildID, ChildRow: op.ChildRow, Describe: op.Describe,
		})
	}
	return pr
}

// FromPersisted converts a decoded wire record back to a Record. Decode the
// stream with json.Decoder.UseNumber (Load and the kernel's import do): the
// json.Number values are then normalised to the exact int64/float64 split
// the entity layer expects, preserving 64-bit integer magnitudes that the
// float64 detour would corrupt.
func FromPersisted(pr PersistedRecord) (Record, error) {
	var key entity.Key
	if pr.Key != "" {
		var err error
		if key, err = entity.ParseKey(pr.Key); err != nil {
			return Record{}, err
		}
	}
	stamp, err := clock.ParseTimestamp(pr.Stamp)
	if err != nil {
		return Record{}, err
	}
	ops := make([]entity.Op, 0, len(pr.Ops))
	for _, po := range pr.Ops {
		ops = append(ops, entity.Op{
			Kind: entity.OpKind(po.Kind), Field: po.Field, Value: normaliseJSON(po.Value), Delta: po.Delta,
			Collection: po.Collection, ChildID: po.ChildID, ChildRow: normaliseRow(po.ChildRow), Describe: po.Describe,
		})
	}
	return Record{
		LSN: pr.LSN, Key: key, Ops: ops, Stamp: stamp,
		Origin: clock.NodeID(pr.Origin), TxnID: pr.TxnID,
		Tentative: pr.Tentative, Obsolete: pr.Obsolete,
		Kind: storage.RecordKind(pr.Kind), Horizon: pr.Horizon,
	}, nil
}

// PersistedState is the JSON wire shape of an archived summary: the rollup
// of an entity whose detail records were compacted away. Summaries are not
// reconstructible from the record stream, so a complete export must carry
// them explicitly — exactly as the binary checkpoint codec does with
// KindSummary records.
//
// Unlike record operations — whose values are re-coerced against the schema
// when a rollup applies them — summary fields install verbatim, so their
// wire form must be type-faithful: JSON renders float64(20) as "20",
// indistinguishable from int64(20). Floats are therefore wrapped as
// {"$float": v} (tagJSONValue); everything else round-trips through
// json.Number as usual.
type PersistedState struct {
	Key         string                      `json:"key"`
	Fields      map[string]interface{}      `json:"fields"`
	Tentative   bool                        `json:"tentative,omitempty"`
	Deleted     bool                        `json:"deleted,omitempty"`
	Collections map[string][]PersistedChild `json:"collections,omitempty"`
}

// PersistedChild is one child row of a persisted summary, tombstones
// included.
type PersistedChild struct {
	ID      string                 `json:"id"`
	Fields  map[string]interface{} `json:"fields"`
	Deleted bool                   `json:"deleted,omitempty"`
}

// floatTag marks a wrapped float64 in summary JSON. A user map carrying this
// exact single key would be mis-decoded; entity field values are built from
// operation descriptors, which have no reason to produce it.
const floatTag = "$float"

// tagJSONValue wraps floats so integral float64 values survive the JSON
// round trip with their type; containers recurse.
func tagJSONValue(v interface{}) interface{} {
	switch x := v.(type) {
	case float64:
		return map[string]interface{}{floatTag: x}
	case entity.Fields:
		return tagJSONRow(x)
	case map[string]interface{}:
		out := make(map[string]interface{}, len(x))
		for k, e := range x {
			out[k] = tagJSONValue(e)
		}
		return out
	case []interface{}:
		out := make([]interface{}, len(x))
		for i, e := range x {
			out[i] = tagJSONValue(e)
		}
		return out
	default:
		return v
	}
}

func tagJSONRow(row entity.Fields) map[string]interface{} {
	if row == nil {
		return nil
	}
	out := make(map[string]interface{}, len(row))
	for k, v := range row {
		out[k] = tagJSONValue(v)
	}
	return out
}

// untagJSONValue reverses tagJSONValue on a UseNumber-decoded value.
func untagJSONValue(v interface{}) interface{} {
	switch x := v.(type) {
	case map[string]interface{}:
		if len(x) == 1 {
			if f, ok := x[floatTag]; ok {
				if n, isNum := f.(json.Number); isNum {
					if fv, err := n.Float64(); err == nil {
						return fv
					}
				}
				if fv, isFloat := f.(float64); isFloat {
					return fv
				}
			}
		}
		out := make(map[string]interface{}, len(x))
		for k, e := range x {
			out[k] = untagJSONValue(e)
		}
		return out
	case []interface{}:
		out := make([]interface{}, len(x))
		for i, e := range x {
			out[i] = untagJSONValue(e)
		}
		return out
	default:
		return normaliseJSON(v)
	}
}

func untagJSONRow(row map[string]interface{}) entity.Fields {
	out := make(entity.Fields, len(row))
	for k, v := range row {
		out[k] = untagJSONValue(v)
	}
	return out
}

// ToPersistedState converts a (frozen) state to its JSON wire shape.
func ToPersistedState(st *entity.State) PersistedState {
	ps := PersistedState{
		Key:       st.Key.String(),
		Fields:    tagJSONRow(st.Fields),
		Tentative: st.Tentative,
		Deleted:   st.Deleted,
	}
	cols := st.Collections()
	if len(cols) > 0 {
		ps.Collections = make(map[string][]PersistedChild, len(cols))
		for _, name := range cols {
			rows := st.Children(name)
			out := make([]PersistedChild, len(rows))
			for i, row := range rows {
				out[i] = PersistedChild{ID: row.ID, Fields: tagJSONRow(row.Fields), Deleted: row.Deleted}
			}
			ps.Collections[name] = out
		}
	}
	return ps
}

// FromPersistedState rebuilds a frozen state from its wire shape. Decode the
// stream with UseNumber for exact int64 values, as with FromPersisted.
func FromPersistedState(ps PersistedState) (*entity.State, error) {
	key, err := entity.ParseKey(ps.Key)
	if err != nil {
		return nil, err
	}
	st := entity.NewState(key)
	for k, v := range ps.Fields {
		st.Fields[k] = untagJSONValue(v)
	}
	st.Tentative = ps.Tentative
	st.Deleted = ps.Deleted
	for name, rows := range ps.Collections {
		for _, row := range rows {
			fields := untagJSONRow(row.Fields)
			if fields == nil {
				fields = entity.Fields{}
			}
			st.RestoreChild(name, entity.Child{ID: row.ID, Fields: fields, Deleted: row.Deleted})
		}
	}
	return st.Freeze(), nil
}

// SummaryEntry is one archived summary in an export cut.
type SummaryEntry struct {
	Key   entity.Key
	State *entity.State
}

// ExportCut returns one atomic cut of the store: every archived summary
// (sorted by key) and every retained record in global LSN order, read under
// a single all-shard lock window. Atomicity matters: read in two windows, a
// concurrent Compact could move an entity from the record set into the
// archive between them and the entity would appear in neither. The states
// are frozen and shared; do not mutate them.
func (db *DB) ExportCut() ([]SummaryEntry, []Record) {
	if db.flush != nil {
		// A concurrent flush could evict a summary between this cut's two
		// halves; excluding it (and warming every cold summary back in
		// first) keeps the cut complete.
		db.flush.mu.Lock()
		defer db.flush.mu.Unlock()
		db.warmAll()
	}
	for _, s := range db.shards {
		s.mu.RLock()
	}
	defer func() {
		for _, s := range db.shards {
			s.mu.RUnlock()
		}
	}()
	var summaries []SummaryEntry
	for _, s := range db.shards {
		for k, st := range s.archived {
			summaries = append(summaries, SummaryEntry{Key: k, State: st})
		}
	}
	sort.Slice(summaries, func(i, j int) bool { return summaries[i].Key.String() < summaries[j].Key.String() })
	return summaries, db.recordsAfterLocked(0)
}

// RestoreSummary installs an archived summary through the bulk-load path
// (import codecs use it; normal archival happens via Compact). The state is
// frozen if it was not already.
func (db *DB) RestoreSummary(key entity.Key, st *entity.State) {
	s := db.shardFor(key)
	s.mu.Lock()
	s.archived[key] = st.Freeze()
	delete(s.cache, key)
	delete(s.cold, key)
	if db.tiered != nil {
		s.dirty[key] = struct{}{}
	}
	s.mu.Unlock()
}

// Save writes every retained record as one JSON document per line, in global
// LSN order (shard runs are merged so Load can rebuild per-shard ordering
// for any shard count). Output is buffered, so each record costs one encoder
// call rather than one syscall-sized write per line. Archived summaries are
// not persisted; callers that need them should compact after loading. Save
// remains as the portable export path — durable deployments use a
// storage.Backend instead (Options.Backend, Recover).
func (db *DB) Save(w io.Writer) error {
	records := db.RecordsAfter(0)
	bw := bufio.NewWriterSize(w, 1<<16)
	enc := json.NewEncoder(bw)
	for _, r := range records {
		if err := enc.Encode(ToPersisted(r)); err != nil {
			return fmt.Errorf("lsdb: save: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("lsdb: save: %w", err)
	}
	return nil
}

// Load replays a stream produced by Save into the database. Input is
// buffered. The database must be freshly opened with the same entity types
// registered. Loaded records invalidate any materialised state for their
// entity; reads after Load rebuild from the log.
func (db *DB) Load(r io.Reader) error {
	dec := json.NewDecoder(bufio.NewReaderSize(r, 1<<16))
	dec.UseNumber() // exact int64 round trip; see FromPersisted
	for {
		var pr PersistedRecord
		if err := dec.Decode(&pr); err == io.EOF {
			return nil
		} else if err != nil {
			return fmt.Errorf("lsdb: load: %w", err)
		}
		rec, err := FromPersisted(pr)
		if err != nil {
			return fmt.Errorf("lsdb: load: %w", err)
		}
		db.LoadRecord(rec)
	}
}

// LoadRecord installs one already-sealed record through the bulk-load path:
// no validation or state application, straight into the owning shard's log
// and indexes. Records for one entity must arrive in ascending LSN order
// (global LSN order, as Save/Replay produce, satisfies this for every shard
// count). The LSN sequence advances past the record so later appends never
// collide.
func (db *DB) LoadRecord(rec Record) {
	s := db.shardFor(rec.Key)
	s.mu.Lock()
	s.appendRecordLocked(rec, db.opts.SegmentSize)
	if db.tiered != nil {
		s.dirty[rec.Key] = struct{}{}
	}
	db.lsn.AdvanceTo(rec.LSN)
	if rec.TxnID != "" {
		if s.byTxn[rec.Key] == nil {
			s.byTxn[rec.Key] = map[string]uint64{}
		}
		s.byTxn[rec.Key][rec.TxnID] = rec.LSN
	}
	delete(s.cache, rec.Key)
	s.mu.Unlock()
}

// IngestShipped installs replicated records that arrive *after* a store has
// been recovered — the streaming half of promotion, where a promoted standby
// already serves reads while the union of its peers' log tails is still being
// pulled chunk by chunk. Appends keep their original LSNs (the bulk-load
// path, which also advances the LSN sequence so post-union writes continue
// the stream) and are re-appended to this store's own backend so the durable
// log stays a complete copy; history-rewrite marks are re-applied through the
// ordinary mark paths, which log and (when a sink is attached) re-ship them.
//
// The caller guarantees what Recover's replay would have: records arrive in
// log order, appends of one entity in ascending LSN order, no LSN collides
// with a locally-assigned one (promotion refuses writes until the union
// completes), and duplicates are filtered before the call.
func (db *DB) IngestShipped(recs []Record) error {
	for _, rec := range recs {
		switch rec.Kind {
		case storage.KindObsolete:
			// ErrNotFound mirrors Recover: the mark's record may live in a
			// chunk that never arrives (compacted away on the peer) — the
			// live store's mark was a no-op then too.
			if err := db.MarkObsolete(rec.Key, rec.TxnID); err != nil && !errors.Is(err, ErrNotFound) {
				return fmt.Errorf("lsdb: ingest mark: %w", err)
			}
		case storage.KindCompact:
			db.Compact(rec.Horizon)
		case storage.KindAppend:
			if db.opts.Backend != nil {
				one := []Record{rec}
				db.logMu.Lock()
				err := db.opts.Backend.AppendBatch(one)
				db.logMu.Unlock()
				if err != nil {
					return fmt.Errorf("lsdb: ingest append: %w", err)
				}
			}
			rec.Kind, rec.Horizon, rec.Summary = 0, 0, nil
			db.LoadRecord(rec)
		default:
			return fmt.Errorf("lsdb: ingest: unknown record kind %d", rec.Kind)
		}
	}
	return nil
}

// normaliseJSON converts JSON-decoded numbers to the int64/float64 split the
// entity layer expects. With UseNumber decoding, integral values of any
// magnitude map to int64 exactly; without it (a raw float64) the integral
// check is best-effort, as before. Containers are normalised recursively so
// nested values round-trip the same way scalars do.
func normaliseJSON(v interface{}) interface{} {
	switch x := v.(type) {
	case json.Number:
		if i, err := x.Int64(); err == nil {
			return i
		}
		// Above MaxInt64: a uint64 value that kept its identity through
		// canonicalisation (and the binary codec's vUint tag); falling back
		// to float64 would corrupt the magnitude.
		if u, err := strconv.ParseUint(x.String(), 10, 64); err == nil {
			return u
		}
		if f, err := x.Float64(); err == nil {
			return f
		}
		return x.String()
	case float64:
		if x == float64(int64(x)) {
			return int64(x)
		}
		return x
	case map[string]interface{}:
		out := make(map[string]interface{}, len(x))
		for k, e := range x {
			out[k] = normaliseJSON(e)
		}
		return out
	case []interface{}:
		out := make([]interface{}, len(x))
		for i, e := range x {
			out[i] = normaliseJSON(e)
		}
		return out
	default:
		return v
	}
}

func normaliseRow(row map[string]interface{}) entity.Fields {
	if row == nil {
		return nil
	}
	out := make(entity.Fields, len(row))
	for k, v := range row {
		out[k] = normaliseJSON(v)
	}
	return out
}

// --- Recovery ----------------------------------------------------------------

// Recover opens a database and rebuilds it from the backend in opts.Backend:
// the latest checkpoint's archived summaries and records, plus only the log
// segments written after that checkpoint — not the full history. The given
// entity types are registered before replay (compaction marks re-run rollups,
// which need them). After Recover returns, the store serves reads and writes
// exactly as the crashed instance did: byte-identical entity states, the
// same LSN watermark, and new appends continue the backend's log.
//
// A torn final record — a crash mid-append — is truncated away by the
// backend's replay; the store reopens with every record whose commit cycle
// completed. Any other framing or checksum failure surfaces as
// *storage.CorruptError.
func Recover(opts Options, types ...*entity.Type) (*DB, error) {
	if opts.Backend == nil {
		return nil, errors.New("lsdb: Recover needs Options.Backend")
	}
	db := Open(opts)
	for _, t := range types {
		if err := db.RegisterType(t); err != nil {
			return nil, err
		}
	}
	// Replay feeds the store through the bulk-load path; nothing is written
	// back to the backend (its content is already durable).
	db.recovering = true
	defer func() { db.recovering = false }()

	// Appended records are buffered and installed in global LSN order: the
	// WAL interleaves independently-committing shards, and the bulk-load
	// path needs per-entity LSN order for any shard count. History-rewrite
	// marks are anchored to the highest record LSN already in the log where
	// they appear (the WAL is in real commit order, so everything a mark
	// could have observed precedes it) and re-applied at exactly that point
	// in the LSN-ordered install — a serially-written store replays its
	// compaction decisions verbatim; for racy histories the interleaving is
	// one of the serialisations the live store could have taken.
	type anchoredMark struct {
		mark Record
		pos  uint64 // highest record LSN preceding the mark in the log
	}
	var records []Record
	var marks []anchoredMark
	var maxSeen uint64
	watermark, err := opts.Backend.Replay(func(rec storage.WALRecord) error {
		switch rec.Kind {
		case storage.KindAppend:
			if rec.LSN > maxSeen {
				maxSeen = rec.LSN
			}
			records = append(records, rec)
		case storage.KindSummary:
			s := db.shardFor(rec.Key)
			if rec.Summary == nil {
				// A tiered backend replays table summaries as light cold
				// pointers (key + horizon, no state): the summary stays
				// disk-resident until a read warms it. Newest-first replay
				// can deliver several per key; the highest horizon wins and
				// a warm always fetches the newest table's copy anyway.
				if db.tiered != nil {
					if rec.Horizon >= s.cold[rec.Key] {
						s.cold[rec.Key] = rec.Horizon
					}
					break
				}
				break // nil summary without a tiered backend: nothing to install
			}
			s.archived[rec.Key] = rec.Summary // decoded frozen
			if rec.Horizon > s.archivedAt[rec.Key] {
				s.archivedAt[rec.Key] = rec.Horizon
			}
			delete(s.cold, rec.Key)
			if db.tiered != nil {
				// A full summary in the WAL is a legacy (pre-tiered)
				// checkpoint snapshot; marking it dirty migrates it into the
				// first flush's table, after which the snapshot can be
				// pruned safely.
				s.dirty[rec.Key] = struct{}{}
			}
		case storage.KindObsolete, storage.KindCompact:
			marks = append(marks, anchoredMark{mark: rec, pos: maxSeen})
		default:
			return fmt.Errorf("lsdb: recover: unknown record kind %d", rec.Kind)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.SliceStable(records, func(i, j int) bool { return records[i].LSN < records[j].LSN })
	// A record can arrive twice: once as table detail and once from the WAL
	// tail past the flush boundary (segments prune at segment granularity,
	// so the tail can reach slightly below the newest table's watermark).
	// One copy per LSN installs.
	dedup := records[:0]
	for i := range records {
		if len(dedup) > 0 && dedup[len(dedup)-1].LSN == records[i].LSN {
			continue
		}
		dedup = append(dedup, records[i])
	}
	records = dedup
	apply := func(m Record) error {
		switch m.Kind {
		case storage.KindObsolete:
			// ErrNotFound means the marked record was archived by a later
			// compaction before this store crashed — the live store's mark
			// was a no-op then too.
			if err := db.MarkObsolete(m.Key, m.TxnID); err != nil && !errors.Is(err, ErrNotFound) {
				return fmt.Errorf("lsdb: recover: %w", err)
			}
		case storage.KindCompact:
			db.Compact(m.Horizon)
		}
		return nil
	}
	mi := 0
	for i := range records {
		for mi < len(marks) && marks[mi].pos < records[i].LSN {
			if err := apply(marks[mi].mark); err != nil {
				return nil, err
			}
			mi++
		}
		records[i].Kind, records[i].Horizon, records[i].Summary = 0, 0, nil
		db.LoadRecord(records[i])
	}
	for ; mi < len(marks); mi++ {
		if err := apply(marks[mi].mark); err != nil {
			return nil, err
		}
	}
	db.lsn.AdvanceTo(watermark)
	return db, nil
}
