package lsdb

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/entity"
)

// scriptOp is one step of a deterministic per-writer workload script; the
// same scripts drive both the batched and the serial run of the equivalence
// suite.
type scriptOp struct {
	key       entity.Key
	ops       []entity.Op
	txnID     string
	tentative bool
}

// buildScripts generates one deterministic op script per writer: each writer
// mixes Set/Delta/InsertChild traffic on its own private keys with
// commutative Delta traffic on a small shared hot set, so concurrent
// interleavings of different writers still have one well-defined final state.
func buildScripts(seed int64, writers, opsPerWriter, hotKeys int) [][]scriptOp {
	rng := rand.New(rand.NewSource(seed))
	scripts := make([][]scriptOp, writers)
	for w := range scripts {
		script := make([]scriptOp, 0, opsPerWriter)
		for i := 0; i < opsPerWriter; i++ {
			var so scriptOp
			switch rng.Intn(5) {
			case 0: // shared hot key, commutative increment
				so.key = entity.Key{Type: "Account", ID: fmt.Sprintf("hot-%d", rng.Intn(hotKeys))}
				so.ops = []entity.Op{entity.Delta("balance", float64(1+rng.Intn(9)))}
			case 1: // private key, non-commutative field write
				so.key = entity.Key{Type: "Account", ID: fmt.Sprintf("w%d-a%d", w, rng.Intn(4))}
				so.ops = []entity.Op{entity.Set("owner", fmt.Sprintf("owner-%d-%d", w, i))}
			case 2: // private key, child-row insert
				so.key = entity.Key{Type: "Order", ID: fmt.Sprintf("w%d-o%d", w, rng.Intn(3))}
				so.ops = []entity.Op{entity.InsertChild("lineitems", fmt.Sprintf("w%d-L%d", w, i), entity.Fields{"product": "widget", "qty": rng.Intn(7)})}
			case 3: // private key, idempotence-tracked write
				so.key = entity.Key{Type: "Account", ID: fmt.Sprintf("w%d-a%d", w, rng.Intn(4))}
				so.ops = []entity.Op{entity.Delta("balance", 1)}
				so.txnID = fmt.Sprintf("w%d-t%d", w, i)
			default: // private key, tentative promise
				so.key = entity.Key{Type: "Account", ID: fmt.Sprintf("w%d-a%d", w, rng.Intn(4))}
				so.ops = []entity.Op{entity.Delta("balance", 2)}
				so.txnID = fmt.Sprintf("w%d-tt%d", w, i)
				so.tentative = true
			}
			script = append(script, so)
		}
		scripts[w] = script
	}
	return scripts
}

// runScriptsConcurrent replays every script on its own goroutine.
func runScriptsConcurrent(t *testing.T, db *DB, scripts [][]scriptOp) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make(chan error, len(scripts))
	for w, script := range scripts {
		wg.Add(1)
		go func(w int, script []scriptOp) {
			defer wg.Done()
			for i, so := range script {
				if _, err := db.Append(so.key, so.ops, stamp(int64(w*1000000+i+1)), "gc", so.txnID); err != nil {
					errs <- fmt.Errorf("writer %d op %d: %w", w, i, err)
					return
				}
			}
		}(w, script)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// assertDenseLSNs checks the global log is exactly 1..n with no gaps or
// duplicates — failed or duplicate appends must not burn sequence numbers.
func assertDenseLSNs(t *testing.T, db *DB, n int) {
	t.Helper()
	records := db.RecordsAfter(0)
	if len(records) != n {
		t.Fatalf("log has %d records, want %d", len(records), n)
	}
	for i, rec := range records {
		if rec.LSN != uint64(i+1) {
			t.Fatalf("record %d has LSN %d, want %d (log not dense)", i, rec.LSN, i+1)
		}
	}
	if head := db.HeadLSN(); head != uint64(n) {
		t.Fatalf("HeadLSN = %d, want %d", head, n)
	}
}

// assertSameStates compares the final state of every key in a against its
// counterpart in b: root fields, live child rows and tentative flags.
func assertSameStates(t *testing.T, a, b *DB) {
	t.Helper()
	keysA, keysB := a.Keys(), b.Keys()
	if len(keysA) != len(keysB) {
		t.Fatalf("key sets differ: %d vs %d", len(keysA), len(keysB))
	}
	for i, key := range keysA {
		if keysB[i] != key {
			t.Fatalf("key sets differ at %d: %s vs %s", i, key, keysB[i])
		}
		stA, _, errA := a.Current(key)
		stB, _, errB := b.Current(key)
		if errA != nil || errB != nil {
			t.Fatalf("Current(%s): %v / %v", key, errA, errB)
		}
		if len(stA.Fields) != len(stB.Fields) {
			t.Fatalf("%s: field counts differ: %v vs %v", key, stA.Fields, stB.Fields)
		}
		for f, v := range stA.Fields {
			if stB.Fields[f] != v {
				t.Fatalf("%s.%s = %v, want %v", key, f, stB.Fields[f], v)
			}
		}
		if stA.Tentative != stB.Tentative {
			t.Fatalf("%s: tentative %v vs %v", key, stA.Tentative, stB.Tentative)
		}
		if got, want := stB.ChildCount("lineitems"), stA.ChildCount("lineitems"); got != want {
			t.Fatalf("%s: child count %d, want %d", key, got, want)
		}
	}
}

// TestGroupCommitSerialEquivalenceRandomized is the equivalence suite: for
// randomized multi-writer workloads, the batched path must produce the same
// final states, the same per-key record order for single-writer keys, and the
// same dense contiguous LSN space as the serial path. Run it under -race (CI
// does) to also exercise the leader/follower handoff.
func TestGroupCommitSerialEquivalenceRandomized(t *testing.T) {
	const writers, opsPerWriter, hotKeys = 8, 60, 3
	for _, seed := range []int64{1, 7, 42} {
		for _, shards := range []int{1, 4} {
			t.Run(fmt.Sprintf("seed=%d/shards=%d", seed, shards), func(t *testing.T) {
				scripts := buildScripts(seed, writers, opsPerWriter, hotKeys)

				batched := newTestDB(t, Options{GroupCommit: true, Shards: shards, SnapshotEvery: 16})
				runScriptsConcurrent(t, batched, scripts)

				// The serial reference: same scripts, per-append locking, one
				// writer at a time (any interleaving of different writers is
				// equivalent — private keys are single-writer and hot keys only
				// see commutative deltas).
				serial := newTestDB(t, Options{Shards: shards, SnapshotEvery: 16})
				for w, script := range scripts {
					for i, so := range script {
						if _, err := serial.Append(so.key, so.ops, stamp(int64(w*1000000+i+1)), "gc", so.txnID); err != nil {
							t.Fatalf("serial writer %d op %d: %v", w, i, err)
						}
					}
				}

				assertSameStates(t, batched, serial)
				assertDenseLSNs(t, batched, writers*opsPerWriter)
				assertDenseLSNs(t, serial, writers*opsPerWriter)

				// Per-key record order: a private key is written by exactly one
				// writer, whose appends are sequential, so the batched log must
				// hold its ops in submission order — identical to serial.
				for w, script := range scripts {
					var wantByKey = map[entity.Key][]string{}
					for _, so := range script {
						if so.key.ID[:1] == "w" {
							wantByKey[so.key] = append(wantByKey[so.key], fmt.Sprintf("%v", so.ops[0]))
						}
					}
					for key, want := range wantByKey {
						recs := batched.RecordsFor(key)
						if len(recs) != len(want) {
							t.Fatalf("writer %d key %s: %d records, want %d", w, key, len(recs), len(want))
						}
						for i, rec := range recs {
							if got := fmt.Sprintf("%v", rec.Ops[0]); got != want[i] {
								t.Fatalf("key %s record %d: op %s, want %s (submission order lost)", key, i, got, want[i])
							}
						}
					}
				}
			})
		}
	}
}

// TestGroupCommitPerWriterErrors asserts leader-side error isolation: one
// writer's invalid op-set (strict validation) or duplicate transaction id
// must fail only that writer, never the batch it rode in — and failed
// requests must not burn LSNs.
func TestGroupCommitPerWriterErrors(t *testing.T) {
	db := newTestDB(t, Options{GroupCommit: true, Validation: entity.Strict, Shards: 1})
	const writers, repeats = 8, 25
	var good, bad, dups atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < repeats; i++ {
				key := entity.Key{Type: "Account", ID: fmt.Sprintf("E%d", i)}
				switch {
				case w == 0:
					// The poison writer: strict mode rejects the unknown field.
					_, err := db.Append(key, []entity.Op{entity.Set("no_such_field", 1)}, stamp(int64(i+1)), "gc", "")
					if !errors.Is(err, entity.ErrUnknownField) {
						t.Errorf("poison writer: err = %v, want ErrUnknownField", err)
						return
					}
					bad.Add(1)
				case w == 1:
					// The duplicate writer: races writer 2 for the same txn id;
					// exactly one of the two may win each round.
					_, err := db.Append(key, []entity.Op{entity.Delta("balance", 1)}, stamp(int64(i+1)), "gc", fmt.Sprintf("shared-%d", i))
					if err == nil {
						good.Add(1)
					} else if errors.Is(err, ErrDuplicateTxn) {
						dups.Add(1)
					} else {
						t.Errorf("dup writer: unexpected err %v", err)
						return
					}
				case w == 2:
					_, err := db.Append(key, []entity.Op{entity.Delta("balance", 1)}, stamp(int64(i+1)), "gc", fmt.Sprintf("shared-%d", i))
					if err == nil {
						good.Add(1)
					} else if errors.Is(err, ErrDuplicateTxn) {
						dups.Add(1)
					} else {
						t.Errorf("dup writer: unexpected err %v", err)
						return
					}
				default:
					if _, err := db.Append(key, []entity.Op{entity.Delta("balance", 1)}, stamp(int64(i+1)), "gc", ""); err != nil {
						t.Errorf("healthy writer %d: %v", w, err)
						return
					}
					good.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	// Per round: writers 3..7 always commit (5), exactly one of writers 1/2
	// wins the shared txn id, writer 0 always fails. 6 commits, 1 dup, 1
	// invalid per round.
	if got, want := good.Load(), int64((writers-2)*repeats); got != want {
		t.Fatalf("successful appends = %d, want %d", got, want)
	}
	if got, want := dups.Load(), int64(repeats); got != want {
		t.Fatalf("duplicate-txn failures = %d, want %d", got, want)
	}
	if got, want := bad.Load(), int64(repeats); got != want {
		t.Fatalf("validation failures = %d, want %d", got, want)
	}
	assertDenseLSNs(t, db, (writers-2)*repeats)
	for i := 0; i < repeats; i++ {
		st, _, err := db.Current(entity.Key{Type: "Account", ID: fmt.Sprintf("E%d", i)})
		if err != nil {
			t.Fatalf("Current: %v", err)
		}
		if got := st.Float("balance"); got != float64(writers-2) {
			t.Fatalf("E%d balance = %v, want %d", i, got, writers-2)
		}
	}
}

// TestGroupCommitSnapshotCompactObsoleteRace races Snapshot, Compact and
// MarkObsolete against in-flight batched appends: history rewrites must
// invalidate the materialised cache correctly even while a leader is
// committing batches, so no reader is ever served a stale frozen state.
func TestGroupCommitSnapshotCompactObsoleteRace(t *testing.T) {
	db := newTestDB(t, Options{GroupCommit: true, Shards: 4, SnapshotEvery: 8, MaxBatch: 8})
	const writers, perWriter, keys = 6, 80, 8
	var expected [keys]atomic.Int64 // expected final balance per key
	type tentativeRec struct {
		key   entity.Key
		txnID string
	}
	obsoletable := make(chan tentativeRec, writers*perWriter)

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				ki := (w*perWriter + i) % keys
				key := entity.Key{Type: "Account", ID: fmt.Sprintf("R%d", ki)}
				if i%5 == 0 {
					txnID := fmt.Sprintf("w%d-i%d", w, i)
					if _, err := db.AppendTentative(key, []entity.Op{entity.Delta("balance", 1)}, stamp(int64(w*1000+i+1)), "gc", txnID); err != nil {
						t.Errorf("writer %d: %v", w, err)
						return
					}
					expected[ki].Add(1)
					obsoletable <- tentativeRec{key: key, txnID: txnID}
				} else {
					if _, err := db.Append(key, []entity.Op{entity.Delta("balance", 1)}, stamp(int64(w*1000+i+1)), "gc", ""); err != nil {
						t.Errorf("writer %d: %v", w, err)
						return
					}
					expected[ki].Add(1)
				}
			}
		}(w)
	}

	// The rewriters: withdraw tentative promises, force snapshots, compact,
	// and read continuously while batches are in flight.
	stop := make(chan struct{})
	var rewriters sync.WaitGroup
	rewriters.Add(1)
	go func() { // obsoleter
		defer rewriters.Done()
		for rec := range obsoletable {
			err := db.MarkObsolete(rec.key, rec.txnID)
			if errors.Is(err, ErrNotFound) {
				// The compactor archived the key first; the promise is baked
				// into the summary and can no longer be withdrawn, so the
				// expected balance keeps it.
				continue
			}
			if err != nil {
				t.Errorf("MarkObsolete(%s, %s): %v", rec.key, rec.txnID, err)
				return
			}
			ki := 0
			fmt.Sscanf(rec.key.ID, "R%d", &ki)
			expected[ki].Add(-1)
		}
	}()
	rewriters.Add(1)
	go func() { // snapshotter + compactor
		defer rewriters.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			key := entity.Key{Type: "Account", ID: fmt.Sprintf("R%d", i%keys)}
			if err := db.Snapshot(key); err != nil && !errors.Is(err, ErrNotFound) {
				t.Errorf("Snapshot: %v", err)
				return
			}
			if i%7 == 0 {
				db.Compact(db.HeadLSN() / 2)
			}
		}
	}()
	rewriters.Add(1)
	go func() { // reader: every served state must be internally consistent
		defer rewriters.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			key := entity.Key{Type: "Account", ID: fmt.Sprintf("R%d", i%keys)}
			st, _, err := db.Current(key)
			if errors.Is(err, ErrNotFound) {
				continue
			}
			if err != nil {
				t.Errorf("Current: %v", err)
				return
			}
			if bal := st.Float("balance"); bal < 0 || bal > float64(writers*perWriter) {
				t.Errorf("implausible balance %v served for %s", bal, key)
				return
			}
		}
	}()

	wg.Wait()
	close(obsoletable)
	close(stop)
	rewriters.Wait()
	if t.Failed() {
		return
	}

	// Every key's final materialised state must equal the live-record count:
	// all appends minus all withdrawn promises, with no stale cache entry
	// shadowing a rewrite.
	for ki := 0; ki < keys; ki++ {
		key := entity.Key{Type: "Account", ID: fmt.Sprintf("R%d", ki)}
		st, _, err := db.Current(key)
		if err != nil {
			t.Fatalf("Current(%s): %v", key, err)
		}
		if got, want := st.Float("balance"), float64(expected[ki].Load()); got != want {
			t.Fatalf("%s: balance %v, want %v (stale state served after rewrite?)", key, got, want)
		}
	}
}

// TestGroupCommitIdempotenceAndTentative re-runs the core append semantics on
// the batched path: duplicate txn ids are rejected across batches, tentative
// records flag the state and can be withdrawn.
func TestGroupCommitIdempotenceAndTentative(t *testing.T) {
	db := newTestDB(t, Options{GroupCommit: true})
	key := entity.Key{Type: "Account", ID: "A"}
	if _, err := db.Append(key, []entity.Op{entity.Delta("balance", 10)}, stamp(1), "n", "t1"); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if _, err := db.Append(key, []entity.Op{entity.Delta("balance", 10)}, stamp(2), "n", "t1"); !errors.Is(err, ErrDuplicateTxn) {
		t.Fatalf("duplicate append err = %v, want ErrDuplicateTxn", err)
	}
	res, err := db.AppendTentative(key, []entity.Op{entity.Delta("balance", 5)}, stamp(3), "n", "t2")
	if err != nil {
		t.Fatalf("AppendTentative: %v", err)
	}
	if !res.State.Tentative || res.State.Float("balance") != 15 {
		t.Fatalf("tentative state = %+v", res.State)
	}
	if err := db.MarkObsolete(key, "t2"); err != nil {
		t.Fatalf("MarkObsolete: %v", err)
	}
	st, _, err := db.Current(key)
	if err != nil {
		t.Fatalf("Current: %v", err)
	}
	if st.Float("balance") != 10 || st.Tentative {
		t.Fatalf("post-withdrawal state = %v tentative=%v", st.Float("balance"), st.Tentative)
	}
}

// TestCommitHookPerAppend: on the serial path the commit hook fires once per
// append with exactly that record — the baseline group commit amortises.
func TestCommitHookPerAppend(t *testing.T) {
	var calls int
	var total int
	opts := Options{CommitHook: func(recs []Record) {
		calls++
		total += len(recs)
	}}
	db := newTestDB(t, opts)
	key := entity.Key{Type: "Account", ID: "A"}
	for i := 0; i < 5; i++ {
		if _, err := db.Append(key, []entity.Op{entity.Delta("balance", 1)}, stamp(int64(i+1)), "n", ""); err != nil {
			t.Fatal(err)
		}
	}
	if calls != 5 || total != 5 {
		t.Fatalf("hook: %d calls / %d records, want 5/5", calls, total)
	}
}

// TestCommitHookAmortisedByGroupCommit pins the amortisation contract: while
// the leader is inside the hook (a slow log force), followers pile onto the
// queue, and the next drain iteration commits them as ONE batch with ONE hook
// call covering a contiguous LSN run.
func TestCommitHookAmortisedByGroupCommit(t *testing.T) {
	const followers = 4
	firstCall := make(chan struct{})
	release := make(chan struct{})
	var mu sync.Mutex
	var batches [][]uint64
	opts := Options{GroupCommit: true, Shards: 1, CommitHook: func(recs []Record) {
		lsns := make([]uint64, len(recs))
		for i, r := range recs {
			lsns[i] = r.LSN
		}
		mu.Lock()
		batches = append(batches, lsns)
		first := len(batches) == 1
		mu.Unlock()
		if first {
			close(firstCall) // let the followers start...
			<-release        // ...and stall the "log force" until they queued
		}
	}}
	db := newTestDB(t, opts)
	key := entity.Key{Type: "Account", ID: "A"}
	leaderDone := make(chan error, 1)
	go func() {
		_, err := db.Append(key, []entity.Op{entity.Delta("balance", 1)}, stamp(1), "n", "")
		leaderDone <- err
	}()
	<-firstCall
	var wg sync.WaitGroup
	var started sync.WaitGroup
	for i := 0; i < followers; i++ {
		wg.Add(1)
		started.Add(1)
		go func(i int) {
			defer wg.Done()
			started.Done()
			if _, err := db.Append(key, []entity.Op{entity.Delta("balance", 1)}, stamp(int64(i+2)), "n", ""); err != nil {
				t.Errorf("follower %d: %v", i, err)
			}
		}(i)
	}
	started.Wait()
	// Give the followers a moment to enqueue behind the stalled leader, then
	// release the log force.
	time.Sleep(50 * time.Millisecond)
	close(release)
	if err := <-leaderDone; err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	mu.Lock()
	defer mu.Unlock()
	if len(batches) != 2 {
		t.Fatalf("hook calls = %d (%v), want 2: one for the leader, one amortising all %d followers", len(batches), batches, followers)
	}
	if len(batches[0]) != 1 || len(batches[1]) != followers {
		t.Fatalf("batch sizes = %d/%d, want 1/%d", len(batches[0]), len(batches[1]), followers)
	}
	for i, lsn := range batches[1] {
		if lsn != uint64(i+2) {
			t.Fatalf("batch LSNs %v not a contiguous run from 2", batches[1])
		}
	}
	st, _, err := db.Current(key)
	if err != nil || st.Float("balance") != float64(followers+1) {
		t.Fatalf("final state: %v %v", st, err)
	}
}

// TestGroupCommitLeaderPanicDoesNotWedgeShard: a panic escaping the commit
// path (realistically a user-supplied CommitHook) must propagate to the
// leader's caller but leave the shard usable — leadership released, no writer
// parked forever.
func TestGroupCommitLeaderPanicDoesNotWedgeShard(t *testing.T) {
	armed := true
	opts := Options{GroupCommit: true, Shards: 1, CommitHook: func([]Record) {
		if armed {
			armed = false
			panic("log force exploded")
		}
	}}
	db := newTestDB(t, opts)
	key := entity.Key{Type: "Account", ID: "A"}
	func() {
		defer func() {
			if r := recover(); r == nil {
				t.Fatal("expected the leader's Append to panic")
			}
		}()
		db.Append(key, []entity.Op{entity.Delta("balance", 1)}, stamp(1), "n", "")
	}()
	// The shard must have released leadership: the next append elects a new
	// leader and commits normally.
	res, err := db.Append(key, []entity.Op{entity.Delta("balance", 1)}, stamp(2), "n", "")
	if err != nil {
		t.Fatalf("append after leader panic: %v", err)
	}
	// The panicking cycle had already installed its record (the hook runs
	// after installation), so the log holds both appends.
	if res.Record.LSN != 2 || res.State.Float("balance") != 2 {
		t.Fatalf("post-panic append: LSN=%d balance=%v, want 2/2", res.Record.LSN, res.State.Float("balance"))
	}
}

// TestGroupCommitUnknownTypeAndSanitization: failures that precede the queue
// must behave exactly as on the serial path.
func TestGroupCommitUnknownTypeAndSanitization(t *testing.T) {
	db := newTestDB(t, Options{GroupCommit: true})
	if _, err := db.Append(entity.Key{Type: "Nope", ID: "x"}, []entity.Op{entity.Delta("balance", 1)}, stamp(1), "n", ""); !errors.Is(err, ErrUnknownType) {
		t.Fatalf("err = %v, want ErrUnknownType", err)
	}
	type opaque struct{ X int }
	bad := []entity.Op{{Kind: entity.OpSet, Field: "owner", Value: &opaque{1}}}
	if _, err := db.Append(entity.Key{Type: "Account", ID: "A"}, bad, stamp(1), "n", ""); !errors.Is(err, entity.ErrUnsafeValue) {
		t.Fatalf("unsanitizable value: err = %v, want ErrUnsafeValue", err)
	}
	if db.Len() != 0 {
		t.Fatalf("failed appends left %d records", db.Len())
	}
}
