package lsdb

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/clock"
	"repro/internal/entity"
)

func accountType() *entity.Type {
	return &entity.Type{
		Name: "Account",
		Fields: []entity.Field{
			{Name: "owner", Type: entity.String},
			{Name: "balance", Type: entity.Float},
		},
	}
}

func orderType() *entity.Type {
	return &entity.Type{
		Name: "Order",
		Fields: []entity.Field{
			{Name: "status", Type: entity.String},
			{Name: "total", Type: entity.Float},
		},
		Children: []entity.ChildCollection{
			{Name: "lineitems", Fields: []entity.Field{
				{Name: "product", Type: entity.String},
				{Name: "qty", Type: entity.Int},
			}},
		},
	}
}

func newTestDB(t testing.TB, opts Options) *DB {
	t.Helper()
	if opts.Node == "" {
		opts.Node = "test-node"
	}
	db := Open(opts)
	if err := db.RegisterType(accountType()); err != nil {
		t.Fatalf("RegisterType: %v", err)
	}
	if err := db.RegisterType(orderType()); err != nil {
		t.Fatalf("RegisterType: %v", err)
	}
	return db
}

func stamp(n int64) clock.Timestamp {
	return clock.Timestamp{WallNanos: n, Node: "test-node"}
}

func TestAppendAndCurrent(t *testing.T) {
	db := newTestDB(t, Options{})
	key := entity.Key{Type: "Account", ID: "A1"}
	res, err := db.Append(key, []entity.Op{entity.Set("owner", "alice"), entity.Delta("balance", 100)}, stamp(1), "n1", "t1")
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	if res.Record.LSN != 1 {
		t.Fatalf("LSN = %d, want 1", res.Record.LSN)
	}
	if res.State.Float("balance") != 100 {
		t.Fatalf("balance = %v", res.State.Float("balance"))
	}
	st, head, err := db.Current(key)
	if err != nil {
		t.Fatalf("Current: %v", err)
	}
	if head != 1 || st.StringField("owner") != "alice" {
		t.Fatalf("Current = %+v head=%d", st.Fields, head)
	}
}

func TestAppendUnknownType(t *testing.T) {
	db := newTestDB(t, Options{})
	_, err := db.Append(entity.Key{Type: "Nope", ID: "1"}, nil, stamp(1), "n1", "")
	if !errors.Is(err, ErrUnknownType) {
		t.Fatalf("want ErrUnknownType, got %v", err)
	}
}

func TestCurrentNotFound(t *testing.T) {
	db := newTestDB(t, Options{})
	_, _, err := db.Current(entity.Key{Type: "Account", ID: "missing"})
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
	if db.Exists(entity.Key{Type: "Account", ID: "missing"}) {
		t.Fatal("Exists false positive")
	}
}

func TestRegisterInvalidType(t *testing.T) {
	db := Open(Options{Node: "n"})
	if err := db.RegisterType(&entity.Type{Name: ""}); err == nil {
		t.Fatal("invalid type accepted")
	}
}

func TestAppendIdempotenceByTxnID(t *testing.T) {
	db := newTestDB(t, Options{})
	key := entity.Key{Type: "Account", ID: "A1"}
	ops := []entity.Op{entity.Delta("balance", 50)}
	if _, err := db.Append(key, ops, stamp(1), "n1", "txn-dup"); err != nil {
		t.Fatalf("first append: %v", err)
	}
	_, err := db.Append(key, ops, stamp(2), "n1", "txn-dup")
	if !errors.Is(err, ErrDuplicateTxn) {
		t.Fatalf("want ErrDuplicateTxn, got %v", err)
	}
	st, _, _ := db.Current(key)
	if st.Float("balance") != 50 {
		t.Fatalf("duplicate delivery changed state: %v", st.Float("balance"))
	}
	// Empty txn ids never collide.
	if _, err := db.Append(key, ops, stamp(3), "n1", ""); err != nil {
		t.Fatalf("append without txn id: %v", err)
	}
	if _, err := db.Append(key, ops, stamp(4), "n1", ""); err != nil {
		t.Fatalf("second append without txn id: %v", err)
	}
}

func TestRollupAccumulatesDeltas(t *testing.T) {
	db := newTestDB(t, Options{})
	key := entity.Key{Type: "Account", ID: "A1"}
	for i := 1; i <= 10; i++ {
		if _, err := db.Append(key, []entity.Op{entity.Delta("balance", 10)}, stamp(int64(i)), "n1", fmt.Sprintf("t%d", i)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	st, head, err := db.Current(key)
	if err != nil {
		t.Fatalf("Current: %v", err)
	}
	if st.Float("balance") != 100 || head != 10 {
		t.Fatalf("balance = %v head = %d", st.Float("balance"), head)
	}
}

func TestSnapshotCacheMatchesFullReplay(t *testing.T) {
	withSnap := newTestDB(t, Options{SnapshotEvery: 4})
	noSnap := newTestDB(t, Options{})
	key := entity.Key{Type: "Account", ID: "A1"}
	for i := 1; i <= 25; i++ {
		ops := []entity.Op{entity.Delta("balance", float64(i))}
		if i%5 == 0 {
			ops = append(ops, entity.Set("owner", fmt.Sprintf("owner-%d", i)))
		}
		if _, err := withSnap.Append(key, ops, stamp(int64(i)), "n1", ""); err != nil {
			t.Fatal(err)
		}
		if _, err := noSnap.Append(key, ops, stamp(int64(i)), "n1", ""); err != nil {
			t.Fatal(err)
		}
	}
	a, _, _ := withSnap.Current(key)
	b, _, _ := noSnap.Current(key)
	if a.Float("balance") != b.Float("balance") || a.StringField("owner") != b.StringField("owner") {
		t.Fatalf("snapshotted rollup diverged: %v/%v vs %v/%v",
			a.Float("balance"), a.StringField("owner"), b.Float("balance"), b.StringField("owner"))
	}
}

func TestExplicitSnapshot(t *testing.T) {
	db := newTestDB(t, Options{})
	key := entity.Key{Type: "Account", ID: "A1"}
	for i := 1; i <= 5; i++ {
		db.Append(key, []entity.Op{entity.Delta("balance", 1)}, stamp(int64(i)), "n1", "")
	}
	if err := db.Snapshot(key); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	db.Append(key, []entity.Op{entity.Delta("balance", 1)}, stamp(6), "n1", "")
	st, _, _ := db.Current(key)
	if st.Float("balance") != 6 {
		t.Fatalf("balance after snapshot = %v", st.Float("balance"))
	}
	if err := db.Snapshot(entity.Key{Type: "Account", ID: "missing"}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Snapshot of missing key: %v", err)
	}
	if err := db.Snapshot(entity.Key{Type: "Nope", ID: "x"}); !errors.Is(err, ErrUnknownType) {
		t.Fatalf("Snapshot of unknown type: %v", err)
	}
}

func TestAsOf(t *testing.T) {
	db := newTestDB(t, Options{})
	key := entity.Key{Type: "Order", ID: "O1"}
	db.Append(key, []entity.Op{entity.Set("status", "OPEN")}, stamp(100), "n1", "")
	db.Append(key, []entity.Op{entity.Set("status", "PAID")}, stamp(200), "n1", "")
	db.Append(key, []entity.Op{entity.Set("status", "SHIPPED")}, stamp(300), "n1", "")
	st, err := db.AsOf(key, clock.Timestamp{WallNanos: 250, Node: "z"})
	if err != nil {
		t.Fatalf("AsOf: %v", err)
	}
	if st.StringField("status") != "PAID" {
		t.Fatalf("AsOf(250) = %q, want PAID", st.StringField("status"))
	}
	if _, err := db.AsOf(key, clock.Timestamp{WallNanos: 50, Node: "z"}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("AsOf before first record should be ErrNotFound, got %v", err)
	}
	if _, err := db.AsOf(entity.Key{Type: "Nope", ID: "1"}, stamp(1)); !errors.Is(err, ErrUnknownType) {
		t.Fatal("AsOf unknown type should fail")
	}
	if _, err := db.AsOf(entity.Key{Type: "Order", ID: "missing"}, stamp(1)); !errors.Is(err, ErrNotFound) {
		t.Fatal("AsOf missing key should fail")
	}
}

func TestTentativeAndMarkObsolete(t *testing.T) {
	db := newTestDB(t, Options{SnapshotEvery: 2})
	key := entity.Key{Type: "Account", ID: "A1"}
	db.Append(key, []entity.Op{entity.Delta("balance", 100)}, stamp(1), "n1", "t1")
	res, err := db.AppendTentative(key, []entity.Op{entity.Delta("balance", -30).Described("tentative reservation")}, stamp(2), "n1", "t2")
	if err != nil {
		t.Fatalf("AppendTentative: %v", err)
	}
	if !res.State.Tentative {
		t.Fatal("state should be tentative")
	}
	st, _, _ := db.Current(key)
	if st.Float("balance") != 70 || !st.Tentative {
		t.Fatalf("tentative rollup = %v tentative=%v", st.Float("balance"), st.Tentative)
	}
	// Withdraw the promise: the record becomes obsolete and the rollup
	// excludes it, but history still shows it.
	if err := db.MarkObsolete(key, "t2"); err != nil {
		t.Fatalf("MarkObsolete: %v", err)
	}
	st, _, _ = db.Current(key)
	if st.Float("balance") != 100 {
		t.Fatalf("balance after obsolete = %v, want 100", st.Float("balance"))
	}
	h, err := db.History(key)
	if err != nil {
		t.Fatalf("History: %v", err)
	}
	if h.Len() != 2 {
		t.Fatalf("history should keep obsolete record, len=%d", h.Len())
	}
	if !h.Versions[1].Obsolete {
		t.Fatal("second version should be obsolete")
	}
	if err := db.MarkObsolete(key, "no-such-txn"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("MarkObsolete missing txn: %v", err)
	}
}

func TestHistoryReconstruction(t *testing.T) {
	db := newTestDB(t, Options{})
	key := entity.Key{Type: "Order", ID: "O1"}
	db.Append(key, []entity.Op{entity.Set("status", "OPEN"), entity.InsertChild("lineitems", "L1", entity.Fields{"product": "widget", "qty": 2})}, stamp(1), "n1", "t1")
	db.Append(key, []entity.Op{entity.Set("status", "PAID")}, stamp(2), "n1", "t2")
	h, err := db.History(key)
	if err != nil {
		t.Fatalf("History: %v", err)
	}
	if h.Len() != 2 {
		t.Fatalf("history len = %d", h.Len())
	}
	if h.Versions[0].State.StringField("status") != "OPEN" {
		t.Fatalf("v1 status = %q", h.Versions[0].State.StringField("status"))
	}
	if h.Versions[1].State.StringField("status") != "PAID" {
		t.Fatalf("v2 status = %q", h.Versions[1].State.StringField("status"))
	}
	if !h.ContainsTxn("t1") || h.ContainsTxn("zzz") {
		t.Fatal("ContainsTxn wrong")
	}
	if _, err := db.History(entity.Key{Type: "Order", ID: "missing"}); !errors.Is(err, ErrNotFound) {
		t.Fatal("History of missing entity should fail")
	}
	if _, err := db.History(entity.Key{Type: "Nope", ID: "1"}); !errors.Is(err, ErrUnknownType) {
		t.Fatal("History of unknown type should fail")
	}
}

func TestRecordsAfterAndFor(t *testing.T) {
	db := newTestDB(t, Options{SegmentSize: 3})
	a := entity.Key{Type: "Account", ID: "A"}
	b := entity.Key{Type: "Account", ID: "B"}
	for i := 1; i <= 8; i++ {
		key := a
		if i%2 == 0 {
			key = b
		}
		db.Append(key, []entity.Op{entity.Delta("balance", 1)}, stamp(int64(i)), "n1", "")
	}
	recs := db.RecordsAfter(5)
	if len(recs) != 3 {
		t.Fatalf("RecordsAfter(5) = %d records, want 3", len(recs))
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].LSN <= recs[i-1].LSN {
			t.Fatal("RecordsAfter not in LSN order")
		}
	}
	if got := len(db.RecordsAfter(0)); got != 8 {
		t.Fatalf("RecordsAfter(0) = %d, want 8", got)
	}
	if got := len(db.RecordsAfter(100)); got != 0 {
		t.Fatalf("RecordsAfter(100) = %d, want 0", got)
	}
	forA := db.RecordsFor(a)
	if len(forA) != 4 {
		t.Fatalf("RecordsFor(A) = %d, want 4", len(forA))
	}
	if db.HeadLSN() != 8 || db.Len() != 8 {
		t.Fatalf("HeadLSN=%d Len=%d", db.HeadLSN(), db.Len())
	}
}

func TestSegmentSealing(t *testing.T) {
	db := newTestDB(t, Options{SegmentSize: 2})
	key := entity.Key{Type: "Account", ID: "A"}
	for i := 1; i <= 7; i++ {
		db.Append(key, []entity.Op{entity.Delta("balance", 1)}, stamp(int64(i)), "n1", "")
	}
	st, _, _ := db.Current(key)
	if st.Float("balance") != 7 {
		t.Fatalf("balance across segments = %v", st.Float("balance"))
	}
	if db.Len() != 7 {
		t.Fatalf("Len = %d", db.Len())
	}
}

func TestKeysAndScan(t *testing.T) {
	db := newTestDB(t, Options{})
	db.Append(entity.Key{Type: "Account", ID: "A"}, []entity.Op{entity.Delta("balance", 1)}, stamp(1), "n1", "")
	db.Append(entity.Key{Type: "Account", ID: "B"}, []entity.Op{entity.Delta("balance", 2)}, stamp(2), "n1", "")
	db.Append(entity.Key{Type: "Order", ID: "O1"}, []entity.Op{entity.Set("status", "OPEN")}, stamp(3), "n1", "")
	if got := len(db.Keys()); got != 3 {
		t.Fatalf("Keys = %d, want 3", got)
	}
	if got := len(db.KeysOfType("Account")); got != 2 {
		t.Fatalf("KeysOfType(Account) = %d, want 2", got)
	}
	var total float64
	err := db.Scan("Account", func(st *entity.State) bool {
		total += st.Float("balance")
		return true
	})
	if err != nil || total != 3 {
		t.Fatalf("Scan: err=%v total=%v", err, total)
	}
	// Early termination.
	count := 0
	db.Scan("Account", func(*entity.State) bool { count++; return false })
	if count != 1 {
		t.Fatalf("Scan did not stop early: %d", count)
	}
	if err := db.Scan("Nope", func(*entity.State) bool { return true }); !errors.Is(err, ErrUnknownType) {
		t.Fatal("Scan of unknown type should fail")
	}
	if len(db.Types()) != 2 {
		t.Fatalf("Types = %v", db.Types())
	}
	if _, ok := db.TypeOf("Account"); !ok {
		t.Fatal("TypeOf missed registered type")
	}
}

func TestCompactSummarisesColdEntities(t *testing.T) {
	db := newTestDB(t, Options{})
	cold := entity.Key{Type: "Account", ID: "cold"}
	hot := entity.Key{Type: "Account", ID: "hot"}
	for i := 1; i <= 5; i++ {
		db.Append(cold, []entity.Op{entity.Delta("balance", 10)}, stamp(int64(i)), "n1", "")
	}
	for i := 6; i <= 10; i++ {
		db.Append(hot, []entity.Op{entity.Delta("balance", 1)}, stamp(int64(i)), "n1", "")
	}
	stats := db.Compact(5)
	if stats.Summarised != 1 || stats.EntitiesKept != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.RecordsAfter >= stats.RecordsBefore {
		t.Fatalf("compaction did not shrink the log: %+v", stats)
	}
	// The summarised entity still reads correctly.
	st, _, err := db.Current(cold)
	if err != nil {
		t.Fatalf("Current(cold) after compact: %v", err)
	}
	if st.Float("balance") != 50 {
		t.Fatalf("cold balance = %v, want 50", st.Float("balance"))
	}
	if !db.Exists(cold) {
		t.Fatal("Exists(cold) should be true after compaction")
	}
	// New activity on the summarised entity builds on the summary.
	db.Append(cold, []entity.Op{entity.Delta("balance", 5)}, stamp(11), "n1", "")
	st, _, _ = db.Current(cold)
	if st.Float("balance") != 55 {
		t.Fatalf("cold balance after new activity = %v, want 55", st.Float("balance"))
	}
	// Hot entity untouched.
	st, _, _ = db.Current(hot)
	if st.Float("balance") != 5 {
		t.Fatalf("hot balance = %v, want 5", st.Float("balance"))
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	db := newTestDB(t, Options{SnapshotEvery: 2})
	acct := entity.Key{Type: "Account", ID: "A1"}
	order := entity.Key{Type: "Order", ID: "O1"}
	db.Append(acct, []entity.Op{entity.Set("owner", "alice"), entity.Delta("balance", 100)}, stamp(1), "n1", "t1")
	db.Append(order, []entity.Op{entity.Set("status", "OPEN"), entity.InsertChild("lineitems", "L1", entity.Fields{"product": "widget", "qty": 3})}, stamp(2), "n1", "t2")
	db.AppendTentative(acct, []entity.Op{entity.Delta("balance", -20).Described("hold")}, stamp(3), "n1", "t3")
	db.MarkObsolete(acct, "t3")

	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	restored := newTestDB(t, Options{})
	if err := restored.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("Load: %v", err)
	}
	if restored.HeadLSN() != db.HeadLSN() {
		t.Fatalf("HeadLSN %d != %d", restored.HeadLSN(), db.HeadLSN())
	}
	origAcct, _, _ := db.Current(acct)
	loadedAcct, _, err := restored.Current(acct)
	if err != nil {
		t.Fatalf("Current after load: %v", err)
	}
	if origAcct.Float("balance") != loadedAcct.Float("balance") {
		t.Fatalf("balance %v != %v", loadedAcct.Float("balance"), origAcct.Float("balance"))
	}
	loadedOrder, _, _ := restored.Current(order)
	c, ok := loadedOrder.ChildByID("lineitems", "L1")
	if !ok || c.Fields["qty"].(int64) != 3 {
		t.Fatalf("child lost in round trip: %+v", c)
	}
	// Idempotence map must be restored too.
	if _, err := restored.Append(acct, []entity.Op{entity.Delta("balance", 1)}, stamp(9), "n1", "t1"); !errors.Is(err, ErrDuplicateTxn) {
		t.Fatalf("txn dedup not restored: %v", err)
	}
	// New appends continue from the restored LSN.
	res, err := restored.Append(acct, []entity.Op{entity.Delta("balance", 1)}, stamp(10), "n1", "t4")
	if err != nil {
		t.Fatalf("append after load: %v", err)
	}
	if res.Record.LSN != db.HeadLSN()+1 {
		t.Fatalf("LSN after load = %d, want %d", res.Record.LSN, db.HeadLSN()+1)
	}
}

func TestLoadMalformed(t *testing.T) {
	db := newTestDB(t, Options{})
	if err := db.Load(bytes.NewReader([]byte("{not json"))); err == nil {
		t.Fatal("malformed stream accepted")
	}
	if err := db.Load(bytes.NewReader([]byte(`{"lsn":1,"key":"nokeysep","stamp":"1.0@n","ops":[]}` + "\n"))); err == nil {
		t.Fatal("malformed key accepted")
	}
	if err := db.Load(bytes.NewReader([]byte(`{"lsn":1,"key":"Account/A","stamp":"bogus","ops":[]}` + "\n"))); err == nil {
		t.Fatal("malformed stamp accepted")
	}
}

func TestStrictValidationAtAppend(t *testing.T) {
	db := Open(Options{Node: "n", Validation: entity.Strict})
	db.RegisterType(accountType())
	key := entity.Key{Type: "Account", ID: "A"}
	if _, err := db.Append(key, []entity.Op{entity.Set("bogus", 1)}, stamp(1), "n1", ""); err == nil {
		t.Fatal("strict mode should reject unknown field at append time")
	}
	// Managed mode accepts it and reports a warning.
	managed := Open(Options{Node: "n", Validation: entity.Managed})
	managed.RegisterType(accountType())
	res, err := managed.Append(key, []entity.Op{entity.Set("bogus", 1)}, stamp(1), "n1", "")
	if err != nil {
		t.Fatalf("managed append: %v", err)
	}
	if len(res.Warnings) != 1 {
		t.Fatalf("warnings = %v", res.Warnings)
	}
}

func TestConcurrentAppendsDifferentKeys(t *testing.T) {
	db := newTestDB(t, Options{SnapshotEvery: 8, SegmentSize: 64})
	const writers, perWriter = 8, 100
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			key := entity.Key{Type: "Account", ID: fmt.Sprintf("A%d", w)}
			for i := 0; i < perWriter; i++ {
				if _, err := db.Append(key, []entity.Op{entity.Delta("balance", 1)}, stamp(int64(i)), "n1", ""); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if db.Len() != writers*perWriter {
		t.Fatalf("Len = %d, want %d", db.Len(), writers*perWriter)
	}
	for w := 0; w < writers; w++ {
		st, _, err := db.Current(entity.Key{Type: "Account", ID: fmt.Sprintf("A%d", w)})
		if err != nil {
			t.Fatalf("Current: %v", err)
		}
		if st.Float("balance") != perWriter {
			t.Fatalf("writer %d balance = %v, want %d", w, st.Float("balance"), perWriter)
		}
	}
}

// --- Materialised state cache and sharding ---------------------------------

func TestStateCacheInvalidationOnMarkObsolete(t *testing.T) {
	db := newTestDB(t, Options{SnapshotEvery: 4})
	key := entity.Key{Type: "Account", ID: "A1"}
	for i := 1; i <= 10; i++ {
		db.Append(key, []entity.Op{entity.Delta("balance", 10)}, stamp(int64(i)), "n1", fmt.Sprintf("t%d", i))
	}
	db.AppendTentative(key, []entity.Op{entity.Delta("balance", -25)}, stamp(11), "n1", "hold")
	// Two reads in a row exercise the cache-hit path.
	for i := 0; i < 2; i++ {
		st, head, err := db.Current(key)
		if err != nil || st.Float("balance") != 75 || head != 11 {
			t.Fatalf("read %d: balance=%v head=%d err=%v", i, st.Float("balance"), head, err)
		}
		if !st.Tentative {
			t.Fatalf("read %d: state should be tentative", i)
		}
	}
	// Withdrawing the promise invalidates the materialised state; the next
	// read must fall back to a rollup that excludes the obsolete record and
	// clears the tentative flag.
	if err := db.MarkObsolete(key, "hold"); err != nil {
		t.Fatalf("MarkObsolete: %v", err)
	}
	st, head, err := db.Current(key)
	if err != nil || st.Float("balance") != 100 || head != 11 {
		t.Fatalf("after obsolete: balance=%v head=%d err=%v", st.Float("balance"), head, err)
	}
	if st.Tentative {
		t.Fatal("tentative flag survived withdrawal")
	}
	// The rebuilt state is re-materialised: appends keep it incremental.
	db.Append(key, []entity.Op{entity.Delta("balance", 1)}, stamp(12), "n1", "t12")
	st, _, _ = db.Current(key)
	if st.Float("balance") != 101 {
		t.Fatalf("balance after re-materialise = %v, want 101", st.Float("balance"))
	}
}

func TestStateCacheInvalidationOnCompact(t *testing.T) {
	db := newTestDB(t, Options{})
	cold := entity.Key{Type: "Account", ID: "cold"}
	for i := 1; i <= 5; i++ {
		db.Append(cold, []entity.Op{entity.Delta("balance", 10)}, stamp(int64(i)), "n1", "")
	}
	if st, _, _ := db.Current(cold); st.Float("balance") != 50 {
		t.Fatalf("pre-compact balance = %v", st.Float("balance"))
	}
	db.Compact(db.HeadLSN())
	// The cache entry was dropped with the detail records; the read must
	// rebuild from the archived summary.
	st, head, err := db.Current(cold)
	if err != nil || st.Float("balance") != 50 {
		t.Fatalf("post-compact: balance=%v err=%v", st.Float("balance"), err)
	}
	if head != 0 {
		t.Fatalf("post-compact head = %d, want 0 (no live records)", head)
	}
	// New activity builds on the summary and re-materialises.
	db.Append(cold, []entity.Op{entity.Delta("balance", 5)}, stamp(6), "n1", "")
	st, _, _ = db.Current(cold)
	if st.Float("balance") != 55 {
		t.Fatalf("balance after summary + append = %v, want 55", st.Float("balance"))
	}
}

func TestStateCacheInvalidationOnLoad(t *testing.T) {
	src := newTestDB(t, Options{})
	key := entity.Key{Type: "Account", ID: "A1"}
	src.Append(key, []entity.Op{entity.Delta("balance", 100)}, stamp(1), "n1", "t1")
	src.AppendTentative(key, []entity.Op{entity.Delta("balance", -40)}, stamp(2), "n1", "t2")
	src.MarkObsolete(key, "t2")

	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	dst := newTestDB(t, Options{})
	// Reading a key mid-restore materialises a partial state; the remaining
	// loaded records must invalidate it.
	lines := bytes.SplitAfter(buf.Bytes(), []byte("\n"))
	if err := dst.Load(bytes.NewReader(lines[0])); err != nil {
		t.Fatalf("Load first record: %v", err)
	}
	if st, _, _ := dst.Current(key); st.Float("balance") != 100 {
		t.Fatalf("mid-load balance = %v", st.Float("balance"))
	}
	if err := dst.Load(bytes.NewReader(bytes.Join(lines[1:], nil))); err != nil {
		t.Fatalf("Load rest: %v", err)
	}
	st, head, err := dst.Current(key)
	if err != nil || st.Float("balance") != 100 || st.Tentative {
		t.Fatalf("post-load: %v tentative=%v err=%v (obsolete record leaked in)", st.Float("balance"), st.Tentative, err)
	}
	if head != 2 {
		t.Fatalf("post-load head = %d, want 2", head)
	}
}

// TestCurrentReturnsCopy is the original aliasing check, restated for the
// copy-on-write contract: Current hands out a frozen state; a caller that
// Thaws it and mutates the copy (root fields directly, children through
// Apply) must never corrupt the cache.
func TestCurrentReturnsCopy(t *testing.T) {
	db := newTestDB(t, Options{})
	key := entity.Key{Type: "Order", ID: "O1"}
	db.Append(key, []entity.Op{entity.Set("status", "OPEN"), entity.InsertChild("lineitems", "L1", entity.Fields{"product": "widget", "qty": 1})}, stamp(1), "n1", "")
	st, _, _ := db.Current(key)
	if !st.Frozen() {
		t.Fatal("Current should return a frozen state")
	}
	mine := st.Thaw()
	mine.Fields["status"] = "MUTATED"
	typ, _ := db.TypeOf("Order")
	mine, _, err := entity.Apply(typ, mine, []entity.Op{entity.SetChildField("lineitems", "L1", "qty", 99)}, entity.Managed)
	if err != nil {
		t.Fatalf("Apply on thawed state: %v", err)
	}
	if mine.StringField("status") != "MUTATED" || func() int64 { c, _ := mine.ChildByID("lineitems", "L1"); return c.Fields["qty"].(int64) }() != 99 {
		t.Fatal("thawed copy lost its own writes")
	}
	again, _, _ := db.Current(key)
	if again.StringField("status") != "OPEN" {
		t.Fatalf("caller mutation leaked into cache: %q", again.StringField("status"))
	}
	if c, _ := again.ChildByID("lineitems", "L1"); c.Fields["qty"].(int64) != 1 {
		t.Fatalf("caller child mutation leaked into cache: %v", c.Fields["qty"])
	}
}

// mutateEverywhere thaws st and scribbles over it through every supported
// mutation channel: direct root-field writes, flags, and child ops applied
// through entity.Apply.
func mutateEverywhere(t *testing.T, db *DB, st *entity.State) {
	t.Helper()
	typ, ok := db.TypeOf(st.Key.Type)
	if !ok {
		t.Fatalf("unknown type %s", st.Key.Type)
	}
	m := st.Thaw()
	for k := range m.Fields {
		m.Fields[k] = "SCRIBBLED"
	}
	m.Fields["injected"] = "SCRIBBLED"
	m.Deleted = true
	m.Tentative = true
	ops := []entity.Op{entity.Set("owner", "SCRIBBLED"), entity.Delta("balance", 1e9)}
	for _, name := range m.Collections() {
		for _, row := range m.Children(name) {
			ops = append(ops,
				entity.SetChildField(name, row.ID, "qty", 424242),
				entity.DeleteChild(name, row.ID))
		}
		ops = append(ops, entity.InsertChild(name, "intruder", entity.Fields{"product": "intruder"}))
	}
	if _, _, err := entity.Apply(typ, m, ops, entity.Managed); err != nil {
		t.Fatalf("Apply: %v", err)
	}
}

// TestAliasingAcrossReadEntryPoints is the property-style COW-contract suite:
// whatever a caller does to a thawed copy of a state obtained from any read
// entry point (Append result, Current, Scan, AsOf, History, snapshots,
// archived summaries), re-reading must produce the untouched value.
func TestAliasingAcrossReadEntryPoints(t *testing.T) {
	db := newTestDB(t, Options{SnapshotEvery: 3, Shards: 2})
	key := entity.Key{Type: "Order", ID: "O1"}
	const rows = 10
	res, err := db.Append(key, []entity.Op{entity.Set("status", "OPEN"), entity.Set("total", 7.5)}, stamp(1), "n1", "t1")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		id := fmt.Sprintf("L%d", i)
		if res, err = db.Append(key, []entity.Op{entity.InsertChild("lineitems", id, entity.Fields{"product": "widget", "qty": i})}, stamp(int64(i+2)), "n1", fmt.Sprintf("ti%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	check := func(stage string) {
		t.Helper()
		st, _, err := db.Current(key)
		if err != nil {
			t.Fatalf("%s: Current: %v", stage, err)
		}
		if st.StringField("status") != "OPEN" || st.Float("total") != 7.5 || st.Deleted || st.Tentative {
			t.Fatalf("%s: root state corrupted: %+v del=%v tent=%v", stage, st.Fields, st.Deleted, st.Tentative)
		}
		if _, ok := st.Fields["injected"]; ok {
			t.Fatalf("%s: injected root field leaked in", stage)
		}
		live := st.LiveChildren("lineitems")
		if len(live) != rows {
			t.Fatalf("%s: live children = %d, want %d", stage, len(live), rows)
		}
		for i := 0; i < rows; i++ {
			c, ok := st.ChildByID("lineitems", fmt.Sprintf("L%d", i))
			if !ok || c.Deleted || c.Fields["qty"].(int64) != int64(i) {
				t.Fatalf("%s: child L%d corrupted: ok=%v %+v", stage, i, ok, c)
			}
		}
		if _, ok := st.ChildByID("lineitems", "intruder"); ok {
			t.Fatalf("%s: intruder child leaked in", stage)
		}
	}

	// Append result.
	mutateEverywhere(t, db, res.State)
	check("append-result")
	// Current (cache hit) — twice, so the second read checks the first
	// reader's scribbling.
	st, _, _ := db.Current(key)
	mutateEverywhere(t, db, st)
	check("current-hit")
	// Scan.
	if err := db.Scan("Order", func(s *entity.State) bool {
		mutateEverywhere(t, db, s)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	check("scan")
	// AsOf (historical read sharing snapshot structure).
	asOf, err := db.AsOf(key, stamp(100))
	if err != nil {
		t.Fatal(err)
	}
	mutateEverywhere(t, db, asOf)
	check("as-of")
	// History versions.
	h, err := db.History(key)
	if err != nil {
		t.Fatal(err)
	}
	mutateEverywhere(t, db, h.Versions[h.Len()-1].State)
	check("history")
	// Cache miss path: invalidate via MarkObsolete of a fresh tentative hold,
	// so the next read rebuilds from the (shared, frozen) snapshot.
	if _, err := db.AppendTentative(key, []entity.Op{entity.Delta("total", -1)}, stamp(200), "n1", "hold"); err != nil {
		t.Fatal(err)
	}
	if err := db.MarkObsolete(key, "hold"); err != nil {
		t.Fatal(err)
	}
	st, _, _ = db.Current(key)
	mutateEverywhere(t, db, st)
	check("rebuild-after-invalidation")
	// Archived summary: compact everything, mutate the read, re-read.
	db.Compact(db.HeadLSN())
	st, _, _ = db.Current(key)
	mutateEverywhere(t, db, st)
	check("archived-summary")
}

// TestAppendSanitizesOpValues covers the Fields.Clone aliasing hazard at the
// layer where it bites: an op carrying a container value must not alias into
// the sealed log or the state cache, and an op carrying an unsupported
// non-scalar kind is rejected outright.
func TestAppendSanitizesOpValues(t *testing.T) {
	db := newTestDB(t, Options{Validation: entity.Managed})
	key := entity.Key{Type: "Account", ID: "A1"}
	// Container values are detached from the caller's memory.
	blob := []interface{}{int64(1), int64(2)}
	op := entity.Op{Kind: entity.OpSet, Field: "blob", Value: blob}
	if _, err := db.Append(key, []entity.Op{op}, stamp(1), "n1", "t1"); err != nil {
		t.Fatalf("Append(container): %v", err)
	}
	blob[0] = int64(99) // caller scribbles after commit
	st, _, _ := db.Current(key)
	if got := st.Fields["blob"].([]interface{})[0].(int64); got != 1 {
		t.Fatalf("caller slice aliased into the cache: %v", got)
	}
	recs := db.RecordsFor(key)
	if got := recs[0].Ops[0].Value.([]interface{})[0].(int64); got != 1 {
		t.Fatalf("caller slice aliased into the sealed log: %v", got)
	}
	// Unsupported kinds never enter the log.
	type opaque struct{ X int }
	bad := entity.Op{Kind: entity.OpSet, Field: "bad", Value: &opaque{1}}
	if _, err := db.Append(key, []entity.Op{bad}, stamp(2), "n1", "t2"); !errors.Is(err, entity.ErrUnsafeValue) {
		t.Fatalf("pointer value accepted: %v", err)
	}
	if db.Len() != 1 {
		t.Fatalf("rejected op left a record behind: len=%d", db.Len())
	}
}

// TestSharedSnapshotSurvivesCallerWrites pins down the snapshot/cache sharing
// introduced by the COW refactor: the snapshot fallback stores the same
// frozen state the cache and callers see, so caller-side writes must never
// reach it.
func TestSharedSnapshotSurvivesCallerWrites(t *testing.T) {
	db := newTestDB(t, Options{SnapshotEvery: 2})
	key := entity.Key{Type: "Account", ID: "A1"}
	for i := 1; i <= 4; i++ {
		db.Append(key, []entity.Op{entity.Delta("balance", 10)}, stamp(int64(i)), "n1", fmt.Sprintf("t%d", i))
	}
	st, _, _ := db.Current(key)
	mutateEverywhere(t, db, st)
	// Force a snapshot-based rebuild: tentative append, then withdraw it.
	db.AppendTentative(key, []entity.Op{entity.Delta("balance", -5)}, stamp(5), "n1", "hold")
	if err := db.MarkObsolete(key, "hold"); err != nil {
		t.Fatal(err)
	}
	rebuilt, _, err := db.Current(key)
	if err != nil || rebuilt.Float("balance") != 40 {
		t.Fatalf("snapshot-backed rebuild corrupted: balance=%v err=%v", rebuilt.Float("balance"), err)
	}
}

func TestShardedRecordsAfterOrderAndLen(t *testing.T) {
	db := newTestDB(t, Options{Shards: 4, SegmentSize: 3})
	const n = 50
	for i := 1; i <= n; i++ {
		key := entity.Key{Type: "Account", ID: fmt.Sprintf("A%d", i%7)}
		if _, err := db.Append(key, []entity.Op{entity.Delta("balance", 1)}, stamp(int64(i)), "n1", ""); err != nil {
			t.Fatal(err)
		}
	}
	recs := db.RecordsAfter(0)
	if len(recs) != n {
		t.Fatalf("RecordsAfter(0) = %d, want %d", len(recs), n)
	}
	for i := range recs {
		if recs[i].LSN != uint64(i+1) {
			t.Fatalf("records not in global LSN order at %d: %d", i, recs[i].LSN)
		}
	}
	if db.Len() != n || db.HeadLSN() != n {
		t.Fatalf("Len=%d HeadLSN=%d", db.Len(), db.HeadLSN())
	}
	if db.Shards() != 4 {
		t.Fatalf("Shards = %d", db.Shards())
	}
}

func TestSaveLoadAcrossShardCounts(t *testing.T) {
	src := newTestDB(t, Options{Shards: 4})
	for i := 1; i <= 40; i++ {
		key := entity.Key{Type: "Account", ID: fmt.Sprintf("A%d", i%9)}
		src.Append(key, []entity.Op{entity.Delta("balance", float64(i))}, stamp(int64(i)), "n1", fmt.Sprintf("t%d", i))
	}
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	for _, shards := range []int{1, 2, 8} {
		dst := newTestDB(t, Options{Shards: shards})
		if err := dst.Load(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("Load into %d shards: %v", shards, err)
		}
		for _, key := range src.Keys() {
			want, _, _ := src.Current(key)
			got, _, err := dst.Current(key)
			if err != nil || got.Float("balance") != want.Float("balance") {
				t.Fatalf("shards=%d key=%s: got %v want %v err=%v", shards, key, got.Float("balance"), want.Float("balance"), err)
			}
		}
		if dst.HeadLSN() != src.HeadLSN() {
			t.Fatalf("shards=%d HeadLSN %d != %d", shards, dst.HeadLSN(), src.HeadLSN())
		}
	}
}

// TestScanCrossShardConsistency checks that a scan racing concurrent
// writers only ever observes internally consistent per-entity states: every
// record applies two +1 deltas atomically, so any valid rollup has an even
// balance.
func TestScanCrossShardConsistency(t *testing.T) {
	db := newTestDB(t, Options{Shards: 8})
	const writers, perWriter, entities = 4, 200, 16
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var scanErr error
	var scanMu sync.Mutex
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			db.Scan("Account", func(st *entity.State) bool {
				if int64(st.Float("balance"))%2 != 0 {
					scanMu.Lock()
					scanErr = fmt.Errorf("scan saw torn state: %s balance=%v", st.Key, st.Float("balance"))
					scanMu.Unlock()
					return false
				}
				return true
			})
		}
	}()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				key := entity.Key{Type: "Account", ID: fmt.Sprintf("E%d", (w*perWriter+i)%entities)}
				ops := []entity.Op{entity.Delta("balance", 1), entity.Delta("balance", 1)}
				if _, err := db.Append(key, ops, stamp(int64(i+1)), "n1", ""); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	scanMu.Lock()
	defer scanMu.Unlock()
	if scanErr != nil {
		t.Fatal(scanErr)
	}
	var total float64
	db.Scan("Account", func(st *entity.State) bool {
		total += st.Float("balance")
		return true
	})
	if total != writers*perWriter*2 {
		t.Fatalf("final scan total = %v, want %d", total, writers*perWriter*2)
	}
}

// TestDisabledStateCacheMatchesCached checks the E9/E13 baseline mode stays
// semantically identical to the cached read path.
func TestDisabledStateCacheMatchesCached(t *testing.T) {
	cachedDB := newTestDB(t, Options{SnapshotEvery: 4})
	baseline := newTestDB(t, Options{SnapshotEvery: 4, DisableStateCache: true})
	key := entity.Key{Type: "Account", ID: "A1"}
	for i := 1; i <= 30; i++ {
		ops := []entity.Op{entity.Delta("balance", float64(i))}
		if i%7 == 0 {
			ops = append(ops, entity.Set("owner", fmt.Sprintf("o%d", i)))
		}
		cachedDB.Append(key, ops, stamp(int64(i)), "n1", "")
		baseline.Append(key, ops, stamp(int64(i)), "n1", "")
	}
	a, ha, _ := cachedDB.Current(key)
	b, hb, _ := baseline.Current(key)
	if a.Float("balance") != b.Float("balance") || a.StringField("owner") != b.StringField("owner") || ha != hb {
		t.Fatalf("cached %v/%q@%d vs baseline %v/%q@%d",
			a.Float("balance"), a.StringField("owner"), ha, b.Float("balance"), b.StringField("owner"), hb)
	}
}

// Property: for any sequence of deltas, the rollup equals their sum — the
// "current state is an aggregation of the log" invariant from section 3.1.
func TestRollupEqualsSumProperty(t *testing.T) {
	f := func(deltas []int8) bool {
		db := Open(Options{Node: "n", SnapshotEvery: 3})
		db.RegisterType(accountType())
		key := entity.Key{Type: "Account", ID: "A"}
		var want float64
		for i, d := range deltas {
			want += float64(d)
			if _, err := db.Append(key, []entity.Op{entity.Delta("balance", float64(d))}, stamp(int64(i+1)), "n1", ""); err != nil {
				return false
			}
		}
		if len(deltas) == 0 {
			return true
		}
		st, _, err := db.Current(key)
		if err != nil {
			return false
		}
		return st.Float("balance") == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: Save/Load round-trips the rollup for random delta sequences.
func TestSaveLoadProperty(t *testing.T) {
	f := func(deltas []int8) bool {
		db := Open(Options{Node: "n"})
		db.RegisterType(accountType())
		key := entity.Key{Type: "Account", ID: "A"}
		for i, d := range deltas {
			db.Append(key, []entity.Op{entity.Delta("balance", float64(d))}, stamp(int64(i+1)), "n1", "")
		}
		var buf bytes.Buffer
		if err := db.Save(&buf); err != nil {
			return false
		}
		restored := Open(Options{Node: "n"})
		restored.RegisterType(accountType())
		if err := restored.Load(&buf); err != nil {
			return false
		}
		if len(deltas) == 0 {
			return restored.Len() == 0
		}
		a, _, err1 := db.Current(key)
		b, _, err2 := restored.Current(key)
		if err1 != nil || err2 != nil {
			return false
		}
		return a.Float("balance") == b.Float("balance")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
