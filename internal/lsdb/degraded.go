// Degraded read-only mode and the log-first commit protocol.
//
// Historically a backend append failure was post-install: the records were
// already committed in memory and the error merely told the writers their
// durability was unknown. That shape cannot degrade gracefully — a full
// disk would let the in-memory store run away from the log forever. The
// commit protocol is therefore log-first: a commit cycle reserves its LSN
// run and appends to the durable backend *before* installing anything in
// memory, under one global log mutex (db.logMu) so allocation and append
// are atomic. On failure the reservation is rolled back (the log stays
// dense — standby contiguous watermarks and the group-commit contract both
// depend on LSNs having no holes) and the unit transitions to a typed
// degraded state: reads keep serving from the materialised cache, writers
// get ErrDegraded with a reason.
//
// Degraded states differ in how they heal:
//
//   - "append-error" (ENOSPC and other transient write failures): nothing
//     was written; the unit re-arms itself by probing the backend with the
//     next real append once RearmAfter has elapsed — space freeing is
//     enough, no operator action.
//   - "fail-stopped" (a partial append the backend could not erase) and
//     "corrupt" (the backend detected log corruption): permanent until
//     Repair quarantines the bad suffix and refills it from a peer.
//   - "poisoned" (an fsync failure): permanent, full stop. A failed fsync
//     is never retried — the page cache may disagree with the disk in ways
//     a second fsync would paper over. Recovery is restart or failover.
//
// The CommitSink (replication) and CommitHook stay post-install: a sink
// failure still means "committed locally, replication in doubt", exactly
// as before.
package lsdb

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/storage"
)

// ErrDegraded is returned to writers while the unit is in degraded
// read-only mode: the durable log refused an append, so the store refuses
// installs rather than letting memory run ahead of the log. Reads are
// unaffected.
var ErrDegraded = errors.New("lsdb: degraded read-only mode, writes refused")

// DegradedState describes why a unit refuses writes.
type DegradedState struct {
	// Reason is the documented degraded state: "append-error" (retryable,
	// auto re-arms), "fail-stopped" or "corrupt" (permanent until Repair),
	// or "poisoned" (permanent until restart/failover).
	Reason string
	// Permanent reports that no append probe will be attempted; only
	// Repair (or a restart) clears the state.
	Permanent bool
	// Since is when the unit first entered the current degraded episode.
	Since time.Time
	// Err is the storage error that caused (or last confirmed) the state.
	Err error
}

// degradedInfo is the internal degraded record: the public state plus the
// earliest time a re-arm probe may run.
type degradedInfo struct {
	DegradedState
	retryAt time.Time
}

const defaultRearmAfter = time.Second

func (db *DB) rearmAfter() time.Duration {
	if db.opts.RearmAfter > 0 {
		return db.opts.RearmAfter
	}
	return defaultRearmAfter
}

// Degraded returns the unit's degraded state, or nil while writes are
// accepted. Lock-free; health surfaces poll it.
func (db *DB) Degraded() *DegradedState {
	if d := db.degraded.Load(); d != nil {
		st := d.DegradedState
		return &st
	}
	return nil
}

// DegradedEvents counts transitions into degraded mode.
func (db *DB) DegradedEvents() uint64 { return db.degradedEvents.Load() }

// WritesRefused counts appends and marks refused with ErrDegraded.
func (db *DB) WritesRefused() uint64 { return db.writesRefused.Load() }

// Rearms counts recoveries from degraded mode (successful probes and
// repairs).
func (db *DB) Rearms() uint64 { return db.rearms.Load() }

// classifyStorageErr maps a backend append error onto a degraded reason.
func classifyStorageErr(err error) (reason string, permanent bool) {
	var ce *storage.CorruptError
	switch {
	case errors.Is(err, storage.ErrPoisoned):
		return "poisoned", true
	case errors.As(err, &ce):
		return "corrupt", true
	case errors.Is(err, storage.ErrFailStopped):
		return "fail-stopped", true
	default:
		return "append-error", false
	}
}

// admitLocked decides whether an append may reach the backend. The caller
// holds logMu. While degraded it refuses with ErrDegraded — except that a
// retryable state past its retry time lets one real append through as the
// re-arm probe (success clears the state, failure re-arms the timer).
func (db *DB) admitLocked(now time.Time) error {
	d := db.degraded.Load()
	if d == nil {
		return nil
	}
	if !d.Permanent && now.After(d.retryAt) {
		return nil // probe
	}
	db.writesRefused.Add(1)
	return fmt.Errorf("%w (%s): %w", ErrDegraded, d.Reason, d.Err)
}

// degradeLocked records a backend append failure and returns the typed
// error the writers get. The caller holds logMu.
func (db *DB) degradeLocked(cause error, now time.Time) error {
	reason, permanent := classifyStorageErr(cause)
	d := &degradedInfo{
		DegradedState: DegradedState{Reason: reason, Permanent: permanent, Since: now, Err: cause},
		retryAt:       now.Add(db.rearmAfter()),
	}
	if prev := db.degraded.Load(); prev != nil {
		d.Since = prev.Since
		if prev.Permanent {
			// Never soften: a poisoning is not downgraded by a later
			// ENOSPC-looking error from the same backend.
			d.Reason, d.Permanent = prev.Reason, true
		}
	} else {
		db.degradedEvents.Add(1)
	}
	db.degraded.Store(d)
	// The append that trips (or re-trips) degraded mode is itself a refused
	// write: count it, so the counter matches the ErrDegraded responses
	// callers observe — external monitors cross-check exactly that.
	db.writesRefused.Add(1)
	// Both sentinels stay visible: errors.Is(err, ErrDegraded) for the mode,
	// errors.Is/As on the cause for the storage-level diagnosis.
	return fmt.Errorf("%w (%s): %w", ErrDegraded, reason, cause)
}

// clearDegradedLocked re-arms writes after a successful probe or repair.
// The caller holds logMu.
func (db *DB) clearDegradedLocked() {
	if db.degraded.Load() != nil {
		db.degraded.Store(nil)
		db.rearms.Add(1)
	}
}

// logAppend is the log-first half of a commit cycle: it assigns recs their
// contiguous LSN run and appends them to the durable backend, atomically
// with respect to every other allocation (logMu). Nothing is installed in
// memory until this returns nil. On a backend failure the reservation is
// rolled back — the log stays dense — and the error is the typed
// ErrDegraded the unit just transitioned into. The caller holds the
// shard's write lock (so backend cycles keep the order readers see, and
// checkpoints, which hold every shard lock, still quiesce appends).
func (db *DB) logAppend(recs []Record) error {
	db.logMu.Lock()
	defer db.logMu.Unlock()
	logged := db.opts.Backend != nil && !db.recovering
	if logged {
		if err := db.admitLocked(time.Now()); err != nil {
			return err
		}
	}
	first := db.lsn.Reserve(len(recs))
	for i := range recs {
		recs[i].LSN = first + uint64(i)
	}
	if !logged {
		return nil
	}
	if err := db.opts.Backend.AppendBatch(recs); err != nil {
		db.lsn.Rollback(first, len(recs))
		return db.degradeLocked(err, time.Now())
	}
	db.sinceCkpt.Add(int64(len(recs)))
	if db.flush != nil {
		db.flush.bytes.Add(approxRecordsSize(recs))
	}
	db.clearDegradedLocked()
	return nil
}

// logMarks appends history-rewrite marks (obsolescence, compaction) to the
// backend, log-first like logAppend but without an LSN reservation (marks
// carry none). The caller holds the owning shard's write lock.
func (db *DB) logMarks(marks []Record) error {
	if db.opts.Backend == nil || db.recovering {
		return nil
	}
	db.logMu.Lock()
	defer db.logMu.Unlock()
	if err := db.admitLocked(time.Now()); err != nil {
		return err
	}
	if err := db.opts.Backend.AppendBatch(marks); err != nil {
		return db.degradeLocked(err, time.Now())
	}
	db.clearDegradedLocked()
	return nil
}

// postCommitLocked finishes a commit cycle after its records are installed:
// the replication sink's capture phase, then the observability hook. The
// caller holds the shard's write lock; the sink's capture must therefore be
// fast and non-blocking (it snapshots the batch and hands it to the shipping
// lanes). The returned wait function — nil when no acknowledgement is owed —
// is the sink's ack barrier; the caller invokes it through waitCommitSink
// *after* releasing the shard lock, so a slow or retrying standby never
// stalls the shard's readers or other writers.
func (db *DB) postCommitLocked(records []Record) func() error {
	var wait func() error
	if db.opts.CommitSink != nil && !db.recovering {
		wait = db.opts.CommitSink(records)
	}
	if db.opts.CommitHook != nil {
		db.opts.CommitHook(records)
	}
	return wait
}

// waitCommitSink blocks on a commit sink's ack barrier (with no lock held)
// and wraps its error in the post-install phrasing: a sink failure is
// indeterminate — the records are committed locally and visible; only the
// replication guarantee is in doubt.
func waitCommitSink(wait func() error) error {
	if wait == nil {
		return nil
	}
	if err := wait(); err != nil {
		return fmt.Errorf("lsdb: commit sink failed (records are committed locally): %w", err)
	}
	return nil
}

// Repair heals a fail-stopped or corrupt backend: it quarantines the bad
// log suffix (storage.Quarantiner — the backend truncates to its last
// verifiably good record), refills everything after that point from fetch,
// and re-arms writes. fetch receives the quarantine's last-good LSN and
// returns the missing records in LSN order — typically replica.TailAfter
// over a standby's received log, or the primary's own RecordsAfter when
// the in-memory store still holds the suffix (log-first means memory is
// always a subset of what was acked, so its copy is authoritative). A
// poisoned backend refuses: quarantine cannot restore unknown durability.
//
// Between the quarantine and the refill the unit stays degraded (the
// fail-stopped and corrupt states are permanent, so no probe can slip an
// append into the gap); concurrent Repair calls serialise on repairMu.
func (db *DB) Repair(fetch func(after uint64) ([]Record, error)) error {
	if db.opts.Backend == nil {
		return errors.New("lsdb: no backend to repair")
	}
	q, ok := db.opts.Backend.(storage.Quarantiner)
	if !ok {
		return errors.New("lsdb: backend does not support quarantine")
	}
	db.repairMu.Lock()
	defer db.repairMu.Unlock()
	db.logMu.Lock()
	lastGood, err := q.Quarantine()
	db.logMu.Unlock()
	if err != nil {
		return fmt.Errorf("lsdb: quarantine: %w", err)
	}
	// Fetch outside logMu: a fetch from this store's own memory takes shard
	// read locks, and appenders hold their shard lock while waiting on
	// logMu — holding both here would deadlock.
	var refill []Record
	if fetch != nil {
		if refill, err = fetch(lastGood); err != nil {
			return fmt.Errorf("lsdb: repair fetch after LSN %d: %w", lastGood, err)
		}
	}
	db.logMu.Lock()
	defer db.logMu.Unlock()
	if len(refill) > 0 {
		if err := db.opts.Backend.AppendBatch(refill); err != nil {
			return db.degradeLocked(err, time.Now())
		}
	}
	db.clearDegradedLocked()
	return nil
}
