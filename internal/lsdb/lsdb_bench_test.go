package lsdb

import (
	"bytes"
	"fmt"
	"io"
	"testing"

	"repro/internal/entity"
)

// buildBenchDB fills a store with n records spread over several entities,
// including child-row traffic so persisted operations exercise every field.
func buildBenchDB(b *testing.B, n int) *DB {
	b.Helper()
	db := Open(Options{Node: "bench", Shards: 4})
	if err := db.RegisterType(accountType()); err != nil {
		b.Fatal(err)
	}
	if err := db.RegisterType(orderType()); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < n; i++ {
		var err error
		if i%4 == 0 {
			key := entity.Key{Type: "Order", ID: fmt.Sprintf("O%d", i%16)}
			_, err = db.Append(key, []entity.Op{
				entity.InsertChild("lineitems", fmt.Sprintf("L%d", i), entity.Fields{"product": "widget", "qty": i % 7}),
			}, stamp(int64(i+1)), "bench", fmt.Sprintf("t%d", i))
		} else {
			key := entity.Key{Type: "Account", ID: fmt.Sprintf("A%d", i%32)}
			_, err = db.Append(key, []entity.Op{entity.Delta("balance", float64(i))}, stamp(int64(i+1)), "bench", fmt.Sprintf("t%d", i))
		}
		if err != nil {
			b.Fatal(err)
		}
	}
	return db
}

// BenchmarkSaveLoadRoundTrip measures the persistence path the bufio
// buffering and pre-sized record merge speed up: Save streams every record
// out, Load replays the stream into a fresh store.
func BenchmarkSaveLoadRoundTrip(b *testing.B) {
	const records = 4096
	src := buildBenchDB(b, records)
	b.Run("save", func(b *testing.B) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := src.Save(io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	})
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		b.Fatal(err)
	}
	b.Run("load", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dst := Open(Options{Node: "bench", Shards: 4})
			if err := dst.RegisterType(accountType()); err != nil {
				b.Fatal(err)
			}
			if err := dst.RegisterType(orderType()); err != nil {
				b.Fatal(err)
			}
			if err := dst.Load(bytes.NewReader(buf.Bytes())); err != nil {
				b.Fatal(err)
			}
			if dst.Len() != records {
				b.Fatalf("loaded %d records, want %d", dst.Len(), records)
			}
		}
	})
	b.Run("roundtrip", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var rt bytes.Buffer
			if err := src.Save(&rt); err != nil {
				b.Fatal(err)
			}
			dst := Open(Options{Node: "bench", Shards: 4})
			dst.RegisterType(accountType())
			dst.RegisterType(orderType())
			if err := dst.Load(&rt); err != nil {
				b.Fatal(err)
			}
		}
	})
}
