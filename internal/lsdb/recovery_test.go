package lsdb

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/entity"
	"repro/internal/storage"
)

// openTestWAL opens a segmented WAL in dir with small segments so rotation
// and checkpoint-skipping are exercised even by small tests.
func openTestWAL(t testing.TB, dir string, sync storage.SyncMode) *storage.WAL {
	t.Helper()
	w, err := storage.OpenWAL(storage.WALOptions{Dir: dir, SegmentBytes: 4096, Sync: sync})
	if err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	return w
}

// assertIdenticalStores is the strict recovery check: identical record logs
// (every field of every record), identical LSN watermark, and byte-identical
// entity states — root fields compared deep, every child collection row for
// row including tombstones, and the deleted/tentative flags.
func assertIdenticalStores(t *testing.T, want, got *DB) {
	t.Helper()
	wr, gr := want.RecordsAfter(0), got.RecordsAfter(0)
	if !reflect.DeepEqual(wr, gr) {
		t.Fatalf("record logs differ: %d vs %d records", len(wr), len(gr))
	}
	if want.HeadLSN() != got.HeadLSN() {
		t.Fatalf("LSN watermark differs: %d vs %d", want.HeadLSN(), got.HeadLSN())
	}
	wantKeys, gotKeys := want.Keys(), got.Keys()
	if !reflect.DeepEqual(wantKeys, gotKeys) {
		t.Fatalf("key sets differ: %v vs %v", wantKeys, gotKeys)
	}
	for _, key := range wantKeys {
		sw, hw, errW := want.Current(key)
		sg, hg, errG := got.Current(key)
		if errW != nil || errG != nil {
			t.Fatalf("Current(%s): %v / %v", key, errW, errG)
		}
		if hw != hg {
			t.Fatalf("%s: head LSN %d vs %d", key, hw, hg)
		}
		if !reflect.DeepEqual(sw.Fields, sg.Fields) {
			t.Fatalf("%s: fields differ:\nwant %v\n got %v", key, sw.Fields, sg.Fields)
		}
		if sw.Tentative != sg.Tentative || sw.Deleted != sg.Deleted {
			t.Fatalf("%s: flags differ: tentative %v/%v deleted %v/%v",
				key, sw.Tentative, sg.Tentative, sw.Deleted, sg.Deleted)
		}
		if !reflect.DeepEqual(sw.Collections(), sg.Collections()) {
			t.Fatalf("%s: collections differ: %v vs %v", key, sw.Collections(), sg.Collections())
		}
		for _, col := range sw.Collections() {
			if !reflect.DeepEqual(sw.Children(col), sg.Children(col)) {
				t.Fatalf("%s.%s: rows differ:\nwant %v\n got %v", key, col, sw.Children(col), sg.Children(col))
			}
		}
	}
}

// TestRecoverRoundTripConcurrentWriters is the core serial/recovered
// equivalence check: a store populated by concurrent writers under group
// commit, with every commit cycle forced to the WAL, reopens from its data
// directory to byte-identical states and the same LSN watermark. Run under
// -race in CI.
func TestRecoverRoundTripConcurrentWriters(t *testing.T) {
	dir := t.TempDir()
	wal := openTestWAL(t, dir, storage.SyncAlways)
	db := newTestDB(t, Options{Shards: 4, GroupCommit: true, SnapshotEvery: 8, Backend: wal})
	scripts := buildScripts(99, 8, 40, 3)
	runScriptsConcurrent(t, db, scripts)
	if err := db.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Recover into a different shard layout on purpose: the durable log is
	// shard-count independent.
	rec, err := Recover(Options{Node: "test-node", Shards: 2, SnapshotEvery: 8, Backend: openTestWAL(t, dir, storage.SyncAlways)},
		accountType(), orderType())
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	assertIdenticalStores(t, db, rec)
	assertDenseLSNs(t, rec, len(db.RecordsAfter(0)))

	// The recovered store continues the log: new appends get fresh LSNs and
	// reach the same WAL.
	head := rec.HeadLSN()
	res, err := rec.Append(entity.Key{Type: "Account", ID: "post"}, []entity.Op{entity.Delta("balance", 1)}, stamp(1), "test-node", "")
	if err != nil {
		t.Fatalf("append after recover: %v", err)
	}
	if res.Record.LSN != head+1 {
		t.Fatalf("append after recover got LSN %d, want %d", res.Record.LSN, head+1)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRecoverReplaysOnlyPostCheckpointSegments pins the checkpoint win: after
// a checkpoint, segments before it are pruned from the directory and recovery
// rebuilds from snapshot + tail alone.
func TestRecoverReplaysOnlyPostCheckpointSegments(t *testing.T) {
	dir := t.TempDir()
	wal := openTestWAL(t, dir, storage.SyncOS)
	db := newTestDB(t, Options{Shards: 4, Backend: wal})
	key := func(i int) entity.Key { return entity.Key{Type: "Account", ID: fmt.Sprintf("a%d", i%7)} }
	for i := 0; i < 300; i++ {
		if _, err := db.Append(key(i), []entity.Op{entity.Delta("balance", 1)}, stamp(int64(i+1)), "n", ""); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	for i := 300; i < 340; i++ {
		if _, err := db.Append(key(i), []entity.Op{entity.Delta("balance", 1)}, stamp(int64(i+1)), "n", ""); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// The checkpoint pruned fully-covered segments; at 4 KiB per segment the
	// 300 pre-checkpoint records spanned several.
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(segs) > 2 {
		t.Fatalf("expected pre-checkpoint segments pruned, still have %d", len(segs))
	}

	rec, err := Recover(Options{Node: "test-node", Shards: 4, Backend: openTestWAL(t, dir, storage.SyncOS)},
		accountType(), orderType())
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	assertIdenticalStores(t, db, rec)
	rec.Close()
}

// TestRecoverAfterCompactAndMarkObsolete covers the history-rewrite marks:
// obsolescence and compaction must survive a restart, including summaries of
// entities whose detail records are gone from the log.
func TestRecoverAfterCompactAndMarkObsolete(t *testing.T) {
	for _, checkpointAfter := range []bool{false, true} {
		t.Run(fmt.Sprintf("checkpoint=%v", checkpointAfter), func(t *testing.T) {
			dir := t.TempDir()
			db := newTestDB(t, Options{Shards: 4, SnapshotEvery: 4, Backend: openTestWAL(t, dir, storage.SyncOS)})

			// Cold entities: all activity before the horizon, later archived.
			for i := 0; i < 6; i++ {
				k := entity.Key{Type: "Account", ID: fmt.Sprintf("cold%d", i)}
				for j := 0; j < 3; j++ {
					if _, err := db.Append(k, []entity.Op{entity.Delta("balance", float64(j+1))}, stamp(int64(i*10+j+1)), "n", fmt.Sprintf("c%d-%d", i, j)); err != nil {
						t.Fatal(err)
					}
				}
			}
			// One cold order with child rows and a tombstone, to prove
			// summaries carry collections through recovery.
			ok := entity.Key{Type: "Order", ID: "cold-order"}
			for _, ops := range [][]entity.Op{
				{entity.InsertChild("lineitems", "L1", entity.Fields{"product": "widget", "qty": int64(2)})},
				{entity.InsertChild("lineitems", "L2", entity.Fields{"product": "gadget", "qty": int64(5)})},
				{entity.DeleteChild("lineitems", "L2")},
			} {
				if _, err := db.Append(ok, ops, stamp(100), "n", ""); err != nil {
					t.Fatal(err)
				}
			}
			// A tentative promise, withdrawn: the obsolete mark must stick.
			hot := entity.Key{Type: "Account", ID: "hot"}
			if _, err := db.AppendTentative(hot, []entity.Op{entity.Delta("balance", 500)}, stamp(200), "n", "promise-1"); err != nil {
				t.Fatal(err)
			}
			horizon := db.HeadLSN() - 1 // cold entities below, hot above
			if err := db.MarkObsolete(hot, "promise-1"); err != nil {
				t.Fatal(err)
			}
			db.Compact(horizon)
			// Post-compact traffic on hot and one revived cold entity.
			for i := 0; i < 5; i++ {
				if _, err := db.Append(hot, []entity.Op{entity.Delta("balance", 1)}, stamp(int64(300+i)), "n", ""); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := db.Append(entity.Key{Type: "Account", ID: "cold0"}, []entity.Op{entity.Delta("balance", 100)}, stamp(400), "n", ""); err != nil {
				t.Fatal(err)
			}
			if checkpointAfter {
				if err := db.Checkpoint(); err != nil {
					t.Fatal(err)
				}
			}
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}

			rec, err := Recover(Options{Node: "test-node", Shards: 4, SnapshotEvery: 4, Backend: openTestWAL(t, dir, storage.SyncOS)},
				accountType(), orderType())
			if err != nil {
				t.Fatalf("Recover: %v", err)
			}
			assertIdenticalStores(t, db, rec)
			if rec.Len() != db.Len() {
				t.Fatalf("retained record counts differ: %d vs %d", rec.Len(), db.Len())
			}
			// The withdrawn promise stays withdrawn.
			st, _, err := rec.Current(hot)
			if err != nil {
				t.Fatal(err)
			}
			if st.Fields["balance"] != 5.0 {
				t.Fatalf("hot balance = %v after recovery, want 5 (obsolete mark lost?)", st.Fields["balance"])
			}
			rec.Close()
		})
	}
}

// TestRecoverTornTail kills the store mid-record: recovery drops only the
// torn final record and reopens to the state of every completed commit.
func TestRecoverTornTail(t *testing.T) {
	dir := t.TempDir()
	db := newTestDB(t, Options{Shards: 2, Backend: openTestWAL(t, dir, storage.SyncOS)})
	k := entity.Key{Type: "Account", ID: "a"}
	for i := 0; i < 10; i++ {
		if _, err := db.Append(k, []entity.Op{entity.Delta("balance", 1)}, stamp(int64(i+1)), "n", ""); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// Hard stop mid-write: the last frame is half on disk.
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(segs) != 1 {
		t.Fatalf("expected one segment, got %d", len(segs))
	}
	info, err := os.Stat(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(segs[0], info.Size()-9); err != nil {
		t.Fatal(err)
	}

	rec, err := Recover(Options{Node: "test-node", Shards: 2, Backend: openTestWAL(t, dir, storage.SyncOS)},
		accountType(), orderType())
	if err != nil {
		t.Fatalf("Recover with torn tail: %v", err)
	}
	assertDenseLSNs(t, rec, 9)
	st, _, err := rec.Current(k)
	if err != nil {
		t.Fatal(err)
	}
	if st.Fields["balance"] != 9.0 {
		t.Fatalf("balance = %v after torn-tail recovery, want 9", st.Fields["balance"])
	}
	rec.Close()
}

// TestRecoverCorruptMidSegmentTypedError: real corruption (not a torn tail)
// must refuse recovery with the typed error.
func TestRecoverCorruptMidSegmentTypedError(t *testing.T) {
	dir := t.TempDir()
	db := newTestDB(t, Options{Backend: openTestWAL(t, dir, storage.SyncOS)})
	for i := 0; i < 20; i++ {
		if _, err := db.Append(entity.Key{Type: "Account", ID: "a"}, []entity.Op{entity.Delta("balance", 1)}, stamp(int64(i+1)), "n", ""); err != nil {
			t.Fatal(err)
		}
	}
	db.Close()
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	raw, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x01
	if err := os.WriteFile(segs[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Recover(Options{Node: "test-node", Backend: openTestWAL(t, dir, storage.SyncOS)},
		accountType(), orderType())
	var corrupt *storage.CorruptError
	if !errors.As(err, &corrupt) {
		t.Fatalf("Recover on corrupt segment returned %v, want *storage.CorruptError", err)
	}
}

// TestAutoCheckpoint: Options.CheckpointEvery takes checkpoints as the log
// grows, without an explicit call.
func TestAutoCheckpoint(t *testing.T) {
	dir := t.TempDir()
	db := newTestDB(t, Options{Shards: 2, Backend: openTestWAL(t, dir, storage.SyncOS), CheckpointEvery: 10})
	for i := 0; i < 35; i++ {
		if _, err := db.Append(entity.Key{Type: "Account", ID: fmt.Sprintf("a%d", i%3)}, []entity.Op{entity.Delta("balance", 1)}, stamp(int64(i+1)), "n", ""); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.BackendErr(); err != nil {
		t.Fatalf("automatic checkpoint failed: %v", err)
	}
	db.Close()
	if _, err := os.Stat(filepath.Join(dir, "CHECKPOINT")); err != nil {
		t.Fatalf("no checkpoint manifest written: %v", err)
	}
	rec, err := Recover(Options{Node: "test-node", Shards: 2, Backend: openTestWAL(t, dir, storage.SyncOS)},
		accountType(), orderType())
	if err != nil {
		t.Fatal(err)
	}
	assertIdenticalStores(t, db, rec)
	rec.Close()
}

// TestInt64ExactBothPaths is the regression test for the normaliseJSON bug:
// int64 values with magnitudes above 2^53 — which a float64 round trip
// corrupts — must survive both the JSON export codec (Save/Load) and the
// binary WAL codec (Backend + Recover) exactly.
func TestInt64ExactBothPaths(t *testing.T) {
	big := int64(1)<<60 + 7 // not representable in float64
	seed := func(db *DB) {
		t.Helper()
		if err := db.RegisterType(&entity.Type{Name: "Big", Fields: []entity.Field{{Name: "n", Type: entity.Int}}}); err != nil {
			t.Fatal(err)
		}
		k := entity.Key{Type: "Big", ID: "x"}
		if _, err := db.Append(k, []entity.Op{entity.Set("n", big)}, stamp(1), "n", ""); err != nil {
			t.Fatal(err)
		}
		ok := entity.Key{Type: "Order", ID: "o"}
		if _, err := db.Append(ok, []entity.Op{entity.InsertChild("lineitems", "L1", entity.Fields{"qty": big})}, stamp(2), "n", ""); err != nil {
			t.Fatal(err)
		}
	}
	check := func(t *testing.T, db *DB) {
		t.Helper()
		st, _, err := db.Current(entity.Key{Type: "Big", ID: "x"})
		if err != nil {
			t.Fatal(err)
		}
		if got := st.Fields["n"]; got != big {
			t.Fatalf("root int64 corrupted: got %v (%T), want %d", got, got, big)
		}
		so, _, err := db.Current(entity.Key{Type: "Order", ID: "o"})
		if err != nil {
			t.Fatal(err)
		}
		row, found := so.ChildByID("lineitems", "L1")
		if !found {
			t.Fatal("child row lost")
		}
		if got := row.Fields["qty"]; got != big {
			t.Fatalf("child int64 corrupted: got %v (%T), want %d", got, got, big)
		}
	}

	t.Run("json", func(t *testing.T) {
		src := newTestDB(t, Options{})
		seed(src)
		var buf bytes.Buffer
		if err := src.Save(&buf); err != nil {
			t.Fatal(err)
		}
		dst := newTestDB(t, Options{})
		if err := dst.RegisterType(&entity.Type{Name: "Big", Fields: []entity.Field{{Name: "n", Type: entity.Int}}}); err != nil {
			t.Fatal(err)
		}
		if err := dst.Load(&buf); err != nil {
			t.Fatal(err)
		}
		check(t, dst)
	})
	t.Run("wal", func(t *testing.T) {
		dir := t.TempDir()
		src := newTestDB(t, Options{Backend: openTestWAL(t, dir, storage.SyncOS)})
		seed(src)
		if err := src.Checkpoint(); err != nil { // exercise snapshot codec too
			t.Fatal(err)
		}
		src.Close()
		rec, err := Recover(Options{Node: "test-node", Backend: openTestWAL(t, dir, storage.SyncOS)},
			accountType(), orderType(), &entity.Type{Name: "Big", Fields: []entity.Field{{Name: "n", Type: entity.Int}}})
		if err != nil {
			t.Fatal(err)
		}
		check(t, rec)
		rec.Close()
	})
}

// TestUint64ExactJSONCodec: uint64 values above MaxInt64 keep their identity
// through canonicalisation and the binary codec; the JSON export codec must
// not quietly demote them to float64 either.
func TestUint64ExactJSONCodec(t *testing.T) {
	huge := uint64(math.MaxUint64)
	rec := Record{
		LSN: 1, Key: entity.Key{Type: "Account", ID: "u"},
		Ops:   []entity.Op{{Kind: entity.OpSet, Field: "v", Value: huge}},
		Stamp: stamp(1), Origin: "n",
	}
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(ToPersisted(rec)); err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(&buf)
	dec.UseNumber()
	var pr PersistedRecord
	if err := dec.Decode(&pr); err != nil {
		t.Fatal(err)
	}
	got, err := FromPersisted(pr)
	if err != nil {
		t.Fatal(err)
	}
	if v := got.Ops[0].Value; v != huge {
		t.Fatalf("uint64 corrupted through JSON codec: got %v (%T), want %d", v, v, huge)
	}
}

// TestMemoryBackendRecoverEquivalence runs the same workload against the
// Memory backend: Recover must behave identically, so tests and deployments
// can swap backends freely.
func TestMemoryBackendRecoverEquivalence(t *testing.T) {
	mem := storage.NewMemory()
	db := newTestDB(t, Options{Shards: 4, GroupCommit: true, Backend: mem})
	runScriptsConcurrent(t, db, buildScripts(7, 4, 30, 2))
	rec, err := Recover(Options{Node: "test-node", Shards: 4, Backend: mem}, accountType(), orderType())
	if err != nil {
		t.Fatal(err)
	}
	assertIdenticalStores(t, db, rec)
}
