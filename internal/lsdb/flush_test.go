package lsdb

import (
	"errors"
	"fmt"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/entity"
	"repro/internal/lsm"
	"repro/internal/storage"
)

// openTestTiered builds the production stack for tests: a segmented WAL with
// small segments wrapped in an LSM store with a quiet auto-compactor (tests
// drive CompactNow explicitly).
func openTestTiered(t testing.TB, dir string, hooks *lsm.Hooks) *lsm.Store {
	t.Helper()
	wal := openTestWAL(t, dir, storage.SyncOS)
	s, err := lsm.Open(wal, lsm.Options{Dir: filepath.Join(dir, "sst"), CompactAfter: 100, Hooks: hooks})
	if err != nil {
		t.Fatalf("lsm.Open: %v", err)
	}
	return s
}

// assertTieredStates compares two stores by observable state: key set and
// every entity's fields, flags and child rows. Unlike assertIdenticalStores
// it does not compare record logs — a flushed store legitimately retains
// fewer raw records than the one that wrote them (settled history lives in
// table summaries, not the log).
func assertTieredStates(t *testing.T, want, got *DB) {
	t.Helper()
	wantKeys, gotKeys := want.Keys(), got.Keys()
	if !reflect.DeepEqual(wantKeys, gotKeys) {
		t.Fatalf("key sets differ: %v vs %v", wantKeys, gotKeys)
	}
	if want.HeadLSN() != got.HeadLSN() {
		t.Fatalf("LSN watermark differs: %d vs %d", want.HeadLSN(), got.HeadLSN())
	}
	for _, key := range wantKeys {
		sw, _, errW := want.Current(key)
		sg, _, errG := got.Current(key)
		if errW != nil || errG != nil {
			t.Fatalf("Current(%s): %v / %v", key, errW, errG)
		}
		if !reflect.DeepEqual(sw.Fields, sg.Fields) {
			t.Fatalf("%s: fields differ:\nwant %v\n got %v", key, sw.Fields, sg.Fields)
		}
		if sw.Tentative != sg.Tentative || sw.Deleted != sg.Deleted {
			t.Fatalf("%s: flags differ", key)
		}
		for _, col := range sw.Collections() {
			if !reflect.DeepEqual(sw.Children(col), sg.Children(col)) {
				t.Fatalf("%s.%s: rows differ:\nwant %v\n got %v", key, col, sw.Children(col), sg.Children(col))
			}
		}
	}
}

// warmEverything reads every key once so the source store's post-flush cold
// pointers are rehydrated before its backend closes; comparisons afterwards
// run purely in memory.
func warmEverything(t *testing.T, db *DB) {
	t.Helper()
	for _, key := range db.Keys() {
		if _, _, err := db.Current(key); err != nil {
			t.Fatalf("warm %s: %v", key, err)
		}
	}
}

// TestTieredFlushRecoverRoundTrip is the tiered analogue of the core recovery
// round trip: a concurrent group-commit workload with background flushes
// forced mid-run (tiny byte trigger), a final explicit flush, then recovery
// through table pointers plus the WAL tail. Run under -race in CI.
func TestTieredFlushRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	db := newTestDB(t, Options{
		Shards: 4, GroupCommit: true, SnapshotEvery: 8,
		Backend: openTestTiered(t, dir, nil), FlushBytes: 4096,
	})
	runScriptsConcurrent(t, db, buildScripts(41, 8, 40, 3))
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	// Post-flush traffic becomes the WAL tail recovery must graft on top.
	for i := 0; i < 20; i++ {
		k := entity.Key{Type: "Account", ID: fmt.Sprintf("tail%d", i%4)}
		if _, err := db.Append(k, []entity.Op{entity.Delta("balance", 1)}, stamp(int64(1000+i)), "n", ""); err != nil {
			t.Fatal(err)
		}
	}
	if fs := db.FlushStats(); fs.Flushes == 0 {
		t.Fatalf("no flush recorded: %+v", fs)
	}
	warmEverything(t, db)
	if err := db.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	rec, err := Recover(Options{Node: "test-node", Shards: 2, SnapshotEvery: 8,
		Backend: openTestTiered(t, dir, nil)}, accountType(), orderType())
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	assertTieredStates(t, db, rec)
	// The recovered store continues the log.
	head := rec.HeadLSN()
	res, err := rec.Append(entity.Key{Type: "Account", ID: "post"}, []entity.Op{entity.Delta("balance", 1)}, stamp(1), "test-node", "")
	if err != nil {
		t.Fatal(err)
	}
	if res.Record.LSN != head+1 {
		t.Fatalf("append after recover got LSN %d, want %d", res.Record.LSN, head+1)
	}
	rec.Close()
}

// TestTieredObsoleteAfterFlush pins the settled-horizon guarantee: a live
// tentative promise blocks the horizon, so when its MarkObsolete lands in the
// WAL tail after the flush, recovery still finds the promise to withdraw.
func TestTieredObsoleteAfterFlush(t *testing.T) {
	dir := t.TempDir()
	db := newTestDB(t, Options{Shards: 2, Backend: openTestTiered(t, dir, nil)})
	k := entity.Key{Type: "Account", ID: "hot"}
	if _, err := db.Append(k, []entity.Op{entity.Delta("balance", 5)}, stamp(1), "n", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := db.AppendTentative(k, []entity.Op{entity.Delta("balance", 500)}, stamp(2), "n", "promise-1"); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// The withdrawal reaches only the WAL tail; the promise itself is table
	// detail above the flushed horizon.
	if err := db.MarkObsolete(k, "promise-1"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Append(k, []entity.Op{entity.Delta("balance", 1)}, stamp(3), "n", ""); err != nil {
		t.Fatal(err)
	}
	warmEverything(t, db)
	db.Close()

	rec, err := Recover(Options{Node: "test-node", Shards: 2, Backend: openTestTiered(t, dir, nil)},
		accountType(), orderType())
	if err != nil {
		t.Fatal(err)
	}
	st, _, err := rec.Current(k)
	if err != nil {
		t.Fatal(err)
	}
	if st.Fields["balance"] != 6.0 {
		t.Fatalf("balance = %v after recovery, want 6 (withdrawn promise resurrected?)", st.Fields["balance"])
	}
	rec.Close()
}

// TestColdEvictionAndWarm: archived-and-settled entities leave memory after a
// flush, stay enumerable, and warm transparently through the bloom-guided
// table lookup on the next read.
func TestColdEvictionAndWarm(t *testing.T) {
	dir := t.TempDir()
	db := newTestDB(t, Options{Shards: 2, DisableStateCache: true, Backend: openTestTiered(t, dir, nil)})
	const keys = 12
	for i := 0; i < keys; i++ {
		k := entity.Key{Type: "Account", ID: fmt.Sprintf("c%02d", i)}
		for j := 0; j < 3; j++ {
			if _, err := db.Append(k, []entity.Op{entity.Delta("balance", 1)}, stamp(int64(i*3+j+1)), "n", ""); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Archive everything (Compact folds settled history into summaries and
	// empties the per-key index), then flush: every summary is now durable in
	// a table and eligible for eviction.
	db.Compact(db.HeadLSN() + 1)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	fs := db.FlushStats()
	if fs.Evicted == 0 {
		t.Fatalf("nothing evicted: %+v", fs)
	}
	if got := len(db.Keys()); got != keys {
		t.Fatalf("cold keys fell out of Keys(): %d, want %d", got, keys)
	}
	if !db.Exists(entity.Key{Type: "Account", ID: "c00"}) {
		t.Fatal("cold key not Exists()")
	}
	st, _, err := db.Current(entity.Key{Type: "Account", ID: "c03"})
	if err != nil {
		t.Fatalf("cold read: %v", err)
	}
	if st.Fields["balance"] != 3.0 {
		t.Fatalf("cold read balance = %v, want 3", st.Fields["balance"])
	}
	if fs := db.FlushStats(); fs.ColdReads == 0 {
		t.Fatalf("cold read not counted: %+v", fs)
	}
	db.Close()
}

// TestCheckpointFailureBreadcrumb is the satellite fix for the silent-retry
// gap: failed flush passes count, carry a typed reason, never refuse writes,
// and the breadcrumb clears on the next success.
func TestCheckpointFailureBreadcrumb(t *testing.T) {
	dir := t.TempDir()
	boom := errors.New("sidecar volume detached")
	armed := true
	hooks := &lsm.Hooks{FlushErr: func() error {
		if armed {
			return boom
		}
		return nil
	}}
	db := newTestDB(t, Options{Shards: 2, Backend: openTestTiered(t, dir, hooks)})
	k := entity.Key{Type: "Account", ID: "a"}
	if _, err := db.Append(k, []entity.Op{entity.Delta("balance", 1)}, stamp(1), "n", ""); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); !errors.Is(err, boom) {
		t.Fatalf("Checkpoint = %v, want injected failure", err)
	}
	failures, reason, err := db.CheckpointFailure()
	if failures != 1 || reason == "" || err == nil {
		t.Fatalf("CheckpointFailure = (%d, %q, %v), want a counted, typed failure", failures, reason, err)
	}
	// A failed flush degrades persistence, not availability.
	if _, err := db.Append(k, []entity.Op{entity.Delta("balance", 1)}, stamp(2), "n", ""); err != nil {
		t.Fatalf("append refused after flush failure: %v", err)
	}
	armed = false
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("recovered flush failed: %v", err)
	}
	failures, reason, err = db.CheckpointFailure()
	if failures != 1 || reason != "" || err != nil {
		t.Fatalf("breadcrumb not cleared after success: (%d, %q, %v)", failures, reason, err)
	}
	warmEverything(t, db)
	db.Close()
}

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestFailedFlushRetriesOnNextCommit: a failed automatic flush restores the
// trigger backlog it captured, so the very next commit re-fires the flush —
// instead of waiting for an entire fresh trigger's worth of commits, which on
// a then-idle store would mean the flush is never retried and the WAL never
// pruned until an explicit Checkpoint.
func TestFailedFlushRetriesOnNextCommit(t *testing.T) {
	dir := t.TempDir()
	boom := errors.New("flush volume detached")
	var armed atomic.Bool
	armed.Store(true)
	hooks := &lsm.Hooks{FlushErr: func() error {
		if armed.Load() {
			return boom
		}
		return nil
	}}
	db := newTestDB(t, Options{Shards: 2, Backend: openTestTiered(t, dir, hooks), CheckpointEvery: 4})
	defer db.Close()
	k := entity.Key{Type: "Account", ID: "retry"}
	for i := 0; i < 4; i++ {
		if _, err := db.Append(k, []entity.Op{entity.Delta("balance", 1)}, stamp(int64(i+1)), "n", ""); err != nil {
			t.Fatal(err)
		}
	}
	// The 4th commit crossed the record trigger and armed a background flush;
	// wait for its injected failure to be counted.
	waitUntil(t, "failed flush breadcrumb", func() bool {
		failures, _, _ := db.CheckpointFailure()
		return failures >= 1
	})
	if got := db.sinceCkpt.Load(); got < 4 {
		t.Fatalf("record-trigger backlog after failed flush = %d, want the captured 4 restored", got)
	}
	armed.Store(false)
	// One commit — not a whole new trigger's worth — must re-fire the flush.
	if _, err := db.Append(k, []entity.Op{entity.Delta("balance", 1)}, stamp(5), "n", ""); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "flush retry after re-arm", func() bool {
		return db.FlushStats().Flushes >= 1
	})
}

// TestLegacySnapshotMigratesToTiered: a store written by the monolithic
// checkpoint path reopens under a tiered backend, its snapshot summaries are
// re-marked dirty, and the first flush moves them into tables — after which a
// third open recovers the same states from tables alone.
func TestLegacySnapshotMigratesToTiered(t *testing.T) {
	dir := t.TempDir()
	legacy := newTestDB(t, Options{Shards: 2, Backend: openTestWAL(t, dir, storage.SyncOS)})
	for i := 0; i < 10; i++ {
		k := entity.Key{Type: "Account", ID: fmt.Sprintf("m%d", i%3)}
		if _, err := legacy.Append(k, []entity.Op{entity.Delta("balance", 1)}, stamp(int64(i+1)), "n", ""); err != nil {
			t.Fatal(err)
		}
	}
	if err := legacy.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	legacy.Close()

	mid, err := Recover(Options{Node: "test-node", Shards: 2, Backend: openTestTiered(t, dir, nil)},
		accountType(), orderType())
	if err != nil {
		t.Fatalf("Recover legacy store under tiering: %v", err)
	}
	assertTieredStates(t, legacy, mid)
	if err := mid.Checkpoint(); err != nil {
		t.Fatalf("migration flush: %v", err)
	}
	if ts := mid.Tiered().TieredStats(); ts.Tables == 0 {
		t.Fatalf("migration flush produced no table: %+v", ts)
	}
	warmEverything(t, mid)
	mid.Close()

	again, err := Recover(Options{Node: "test-node", Shards: 2, Backend: openTestTiered(t, dir, nil)},
		accountType(), orderType())
	if err != nil {
		t.Fatal(err)
	}
	assertTieredStates(t, legacy, again)
	again.Close()
}

// TestAsOfAndHistoryAcrossFlush: point-in-time reads above the flushed
// horizon keep working from retained detail after flush and recovery.
func TestAsOfAndHistoryAcrossFlush(t *testing.T) {
	dir := t.TempDir()
	db := newTestDB(t, Options{Shards: 2, Backend: openTestTiered(t, dir, nil)})
	k := entity.Key{Type: "Account", ID: "h"}
	for i := 0; i < 4; i++ {
		if _, err := db.Append(k, []entity.Op{entity.Delta("balance", 1)}, stamp(int64(i+1)), "n", ""); err != nil {
			t.Fatal(err)
		}
	}
	// A live promise pins the horizon below it: the settled prefix summarises,
	// the promise and everything after stay replayable detail.
	if _, err := db.AppendTentative(k, []entity.Op{entity.Delta("balance", 100)}, stamp(5), "n", "p1"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Append(k, []entity.Op{entity.Delta("balance", 1)}, stamp(6), "n", ""); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	db.Close()

	rec, err := Recover(Options{Node: "test-node", Shards: 2, Backend: openTestTiered(t, dir, nil)},
		accountType(), orderType())
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	st, err := rec.AsOf(k, stamp(1000))
	if err != nil {
		t.Fatalf("AsOf(now): %v", err)
	}
	if st.Fields["balance"] != 105.0 {
		t.Fatalf("AsOf(now) balance = %v, want 105", st.Fields["balance"])
	}
	hist, err := rec.History(k)
	if err != nil {
		t.Fatal(err)
	}
	// The settled prefix (LSNs 1-4) lives in the summary; retained history is
	// the promise and the record after it.
	if len(hist.Versions) != 2 {
		t.Fatalf("retained history %d versions, want 2", len(hist.Versions))
	}
}
