// The tiered flush pipeline: the off-hot-path replacement for stop-the-world
// checkpoints when the backend implements storage.Tiered.
//
// A legacy checkpoint quiesces every writer (all shard locks) while it
// re-serialises the store's *entire* content into one snapshot — cost grows
// with history, and the write path stalls for the duration. A flush instead
// captures only the entities dirtied since the last flush, per shard, under
// that one shard's write lock (a bounded O(delta) pass), and hands the frozen
// capture to the tiered backend which serialises and fsyncs an immutable
// SSTable on the flushing goroutine — writers of other shards never notice,
// and writers of the captured shard resume as soon as its capture ends.
//
// The capture per dirty key is horizon-based: the settled horizon h is the
// highest LSN such that every record at or below it is settled (non-tentative
// or obsolete). The flush emits one summary record — the rollup through h —
// plus a full copy of every index record above h (live tentative promises and
// records newer than the last settled point, obsolete flags included). That
// split makes history rewrites crash-safe: a MarkObsolete mark in the WAL
// tail always finds its target after recovery, because a record that was
// still withdrawable was never summarised away.
//
// After a flush lands, WAL segments up to the seal boundary are pruned (the
// tables now cover them) and summaries whose entities are fully settled and
// not referenced by hot caches are evicted from memory, leaving a cold
// pointer: the next read warms the summary back in through the backend's
// bloom-guided newest-to-oldest table lookup.
package lsdb

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/entity"
	"repro/internal/storage"
)

// defaultFlushBytes is the byte-trigger default: roughly one SSTable per
// 4 MiB of committed record payload.
const defaultFlushBytes = 4 << 20

// flusher owns the flush pipeline of one tiered store.
type flusher struct {
	db *DB
	// mu serialises flush passes (and excludes ExportCut and Close, which
	// need a stable capture state).
	mu sync.Mutex
	// busy gates the one-shot background goroutine; FlushNow bypasses it and
	// serialises on mu directly.
	busy atomic.Bool
	// stalled marks that the current backlog already counted a stall, so a
	// hot writer does not count one per append.
	stalled atomic.Bool

	bytes   atomic.Int64 // approximate payload bytes committed since last flush
	flushes atomic.Uint64
	stalls  atomic.Uint64
	evicted atomic.Uint64
}

func newFlusher(db *DB) *flusher { return &flusher{db: db} }

// flushBytes resolves the byte trigger (0 → default, negative → disabled).
func (f *flusher) flushBytes() int64 {
	if f.db.opts.FlushBytes == 0 {
		return defaultFlushBytes
	}
	if f.db.opts.FlushBytes < 0 {
		return 0
	}
	return f.db.opts.FlushBytes
}

// maybeTrigger starts a background flush when either trigger (bytes or
// record count) has fired. Called on the committing goroutine after every
// append, outside any lock.
func (f *flusher) maybeTrigger() {
	db := f.db
	byBytes := f.flushBytes() > 0 && f.bytes.Load() >= f.flushBytes()
	byRecs := db.opts.CheckpointEvery > 0 && db.sinceCkpt.Load() >= int64(db.opts.CheckpointEvery)
	if !byBytes && !byRecs {
		return
	}
	if !f.busy.CompareAndSwap(false, true) {
		// A flush is already running. If the backlog has run to twice the
		// trigger, the pipeline is stalling: writers outpace the flusher.
		if limit := f.flushBytes(); limit > 0 && f.bytes.Load() >= 2*limit &&
			f.stalled.CompareAndSwap(false, true) {
			f.stalls.Add(1)
		}
		return
	}
	go func() {
		defer f.busy.Store(false)
		if err := f.flushOnce(); err != nil {
			f.db.setBackendFailure(err)
		} else {
			f.db.clearBackendFailure()
		}
	}()
}

// FlushNow runs one flush pass synchronously — the Checkpoint-compatibility
// entry point and the test hook.
func (f *flusher) FlushNow() error {
	if err := f.flushOnce(); err != nil {
		f.db.setBackendFailure(err)
		return err
	}
	f.db.clearBackendFailure()
	return nil
}

// flushOnce is one complete flush pass: seal the WAL, capture every dirty
// entity shard by shard, write the SSTable, then prune and evict.
func (f *flusher) flushOnce() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	db := f.db
	if db.recovering {
		return nil
	}
	f.stalled.Store(false)
	// Seal first: every record already appended is now in a closed segment at
	// or below the boundary, and everything committed from here on lands in
	// the new active segment (above it). The watermark is read after the
	// seal, so it covers every LSN the sealed segments can hold.
	boundary, err := db.tiered.SealWAL()
	if err != nil {
		return fmt.Errorf("lsdb: flush seal: %w", err)
	}
	watermark := db.lsn.Peek()
	// Swap, not Store: the captured backlog is restored on a failed flush so
	// the triggers re-fire on the very next commit instead of waiting for a
	// whole fresh trigger's worth.
	capBytes := f.bytes.Swap(0)
	capRecs := db.sinceCkpt.Swap(0)

	var entries []storage.WALRecord
	var scratch []*entity.State // private rollups to recycle after the write
	captured := make([]map[entity.Key]struct{}, len(db.shards))
	for si, s := range db.shards {
		s.mu.Lock()
		if len(s.dirty) == 0 {
			s.mu.Unlock()
			continue
		}
		captured[si] = s.dirty
		s.dirty = map[entity.Key]struct{}{}
		keys := make([]entity.Key, 0, len(captured[si]))
		for key := range captured[si] {
			keys = append(keys, key)
		}
		s.mu.Unlock()
		// One key per lock hold: a writer to this shard waits at most one
		// entity's rollup, never the whole shard delta. A record committed
		// to an already-captured key between holds simply re-dirties it for
		// the next pass; one committed to a not-yet-captured key rides into
		// this table with an LSN above the watermark, which recovery
		// tolerates (the LSN dedup against the replayed WAL tail).
		for _, key := range keys {
			s.mu.Lock()
			recs, priv, err := db.captureKeyLocked(s, key)
			if err != nil {
				// Unknown type or unreadable cold summary: leave the key
				// dirty for the next pass rather than losing it.
				s.dirty[key] = struct{}{}
				s.mu.Unlock()
				continue
			}
			s.mu.Unlock()
			entries = append(entries, recs...)
			if priv != nil {
				scratch = append(scratch, priv)
			}
		}
	}
	if len(entries) == 0 {
		return nil
	}
	// The table writer requires key-grouped, key-ordered input; a stable
	// sort keeps each key's summary-then-details run intact. (Type, ID)
	// ordering matches the table's composite-key ordering.
	sort.SliceStable(entries, func(i, j int) bool {
		a, b := entries[i].Key, entries[j].Key
		if a.Type != b.Type {
			return a.Type < b.Type
		}
		return a.ID < b.ID
	})
	err = db.tiered.FlushTable(entries, watermark, boundary)
	for _, st := range scratch {
		st.Recycle()
	}
	if err != nil {
		// Re-arm every captured key: the table never landed, so the next
		// pass must cover them again (union with keys dirtied since). Restore
		// the trigger counters too — zeroed at capture, they would otherwise
		// leave maybeTrigger waiting for an entire new trigger's worth of
		// commits before retrying (forever, on a now-idle store).
		f.bytes.Add(capBytes)
		db.sinceCkpt.Add(capRecs)
		for si, s := range db.shards {
			if captured[si] == nil {
				continue
			}
			s.mu.Lock()
			for k := range captured[si] {
				s.dirty[k] = struct{}{}
			}
			s.mu.Unlock()
		}
		return fmt.Errorf("lsdb: flush: %w", err)
	}
	f.flushes.Add(1)
	f.evictCold(watermark)
	return nil
}

// captureKeyLocked emits one dirty entity's flush records: the summary at
// its settled horizon plus full copies of every record above it. The caller
// holds the shard's write lock. The returned private state, when non-nil, is
// a scratch rollup owned by the flush and recycled after serialisation.
func (db *DB) captureKeyLocked(s *shard, key entity.Key) ([]storage.WALRecord, *entity.State, error) {
	typ, ok := db.TypeOf(key.Type)
	if !ok {
		return nil, nil, fmt.Errorf("%w: %s", ErrUnknownType, key.Type)
	}
	// A dirty key can still be cold-resident when recovery installed both a
	// cold pointer and tail records; the capture needs its base in memory.
	if err := db.warmLocked(s, key); err != nil {
		return nil, nil, err
	}
	lsns := s.index[key]
	arch := s.archived[key]
	// Settled horizon: advance past every settled record (non-tentative, or
	// tentative but already withdrawn); the first live tentative promise
	// blocks it — that record must stay as detail so a later MarkObsolete in
	// the WAL tail still finds it after recovery.
	h := s.archivedAt[key]
	for _, lsn := range lsns {
		if lsn <= h {
			continue
		}
		rec := s.recordAtLocked(lsn)
		if rec == nil {
			continue
		}
		if rec.Tentative && !rec.Obsolete {
			break
		}
		h = lsn
	}
	var entries []storage.WALRecord
	var private *entity.State
	if h > 0 || arch != nil {
		sum := storage.WALRecord{Kind: storage.KindSummary, Key: key, Horizon: h}
		switch {
		case len(lsns) == 0 && arch != nil:
			// Fully archived (post-Compact or legacy-recovered): the frozen
			// summary ships zero-copy.
			sum.Summary = arch
		default:
			if c, ok := s.cache[key]; ok && c.head == h && !db.opts.DisableStateCache {
				// The materialised current state *is* the rollup through h
				// when no unsettled records sit above it — zero-copy.
				sum.Summary = c.state
			} else {
				st := s.rollupToLocked(key, typ, h)
				sum.Summary = st
				private = st
			}
		}
		entries = append(entries, sum)
	}
	for _, lsn := range lsns {
		if lsn <= h {
			continue
		}
		if rec := s.recordAtLocked(lsn); rec != nil {
			entries = append(entries, *rec)
		}
	}
	return entries, private, nil
}

// rollupToLocked is rollupLocked bounded to records at or below limit —
// the flush capture's summary builder. The caller holds the shard's write
// lock; the result is a private, unfrozen state the flush may recycle.
func (s *shard) rollupToLocked(key entity.Key, typ *entity.Type, limit uint64) *entity.State {
	base := entity.NewState(key)
	startLSN := s.archivedAt[key]
	if arch := s.archived[key]; arch != nil {
		base = arch.Clone()
	}
	if snap, ok := s.snaps[key]; ok && snap.state != nil && snap.lsn >= startLSN && snap.lsn <= limit {
		base = snap.state.Clone()
		startLSN = snap.lsn
	}
	for _, lsn := range s.index[key] {
		if lsn <= startLSN {
			continue
		}
		if lsn > limit {
			break
		}
		rec := s.recordAtLocked(lsn)
		if rec == nil || rec.Obsolete {
			continue
		}
		next, _, err := entity.Apply(typ, base, rec.Ops, entity.Managed)
		if err != nil {
			continue
		}
		base = next
	}
	return base
}

// evictCold demotes fully settled archived summaries to cold pointers after
// a successful flush: their content is durable in the tables (flushed at or
// below the just-written watermark), their entities have no retained detail,
// and no hot cache references them. Memory bounded by the working set, not
// by history.
func (f *flusher) evictCold(watermark uint64) {
	for _, s := range f.db.shards {
		s.mu.Lock()
		for key := range s.archived {
			if _, isDirty := s.dirty[key]; isDirty {
				continue
			}
			if len(s.index[key]) > 0 {
				continue
			}
			if _, hot := s.cache[key]; hot {
				continue
			}
			at := s.archivedAt[key]
			if at > watermark {
				continue // archived after the capture; not yet durable
			}
			delete(s.archived, key)
			delete(s.archivedAt, key)
			s.cold[key] = at
			f.evicted.Add(1)
		}
		s.mu.Unlock()
	}
}

// warmLocked pulls an evicted entity's summary back from the tiered store.
// The caller holds the shard's write lock. A no-op for non-cold keys and
// non-tiered stores.
func (db *DB) warmLocked(s *shard, key entity.Key) error {
	if db.tiered == nil {
		return nil
	}
	horizon, isCold := s.cold[key]
	if !isCold {
		return nil
	}
	rec, err := db.tiered.LookupSummary(key)
	if err != nil {
		return fmt.Errorf("lsdb: cold read %s: %w", key, err)
	}
	delete(s.cold, key)
	if rec == nil || rec.Summary == nil {
		return nil // pointer without a durable summary: treat as absent
	}
	s.archived[key] = rec.Summary
	if rec.Horizon > horizon {
		horizon = rec.Horizon
	}
	if horizon > s.archivedAt[key] {
		s.archivedAt[key] = horizon
	}
	db.coldReads.Add(1)
	return nil
}

// ensureWarm is warmLocked for read paths that hold no lock yet: it checks
// coldness under the read lock and escalates to the write lock only when a
// warm is actually needed.
func (db *DB) ensureWarm(s *shard, key entity.Key) error {
	if db.tiered == nil {
		return nil
	}
	s.mu.RLock()
	_, isCold := s.cold[key]
	s.mu.RUnlock()
	if !isCold {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return db.warmLocked(s, key)
}

// warmAllLocked warms every cold key of every shard — ExportCut needs the
// full archive in memory. The caller holds no shard lock.
func (db *DB) warmAll() error {
	if db.tiered == nil {
		return nil
	}
	for _, s := range db.shards {
		s.mu.Lock()
		for key := range s.cold {
			if err := db.warmLocked(s, key); err != nil {
				s.mu.Unlock()
				return err
			}
		}
		s.mu.Unlock()
	}
	return nil
}

// approxRecordsSize estimates the payload bytes of a committed batch for the
// flush byte trigger. An estimate is enough: the trigger tunes table sizes,
// not accounting.
func approxRecordsSize(recs []Record) int64 {
	var n int64
	for i := range recs {
		r := &recs[i]
		n += 48 + int64(len(r.Key.Type)+len(r.Key.ID)+len(r.TxnID))
		for j := range r.Ops {
			op := &r.Ops[j]
			n += 24 + int64(len(op.Field)+len(op.Collection)+len(op.ChildID)+len(op.Describe))
			if sv, ok := op.Value.(string); ok {
				n += int64(len(sv))
			}
			n += int64(16 * len(op.ChildRow))
		}
	}
	return n
}

// FlushStats reports the tiered flush pipeline's health; the zero value when
// the store is not tiered.
type FlushStats struct {
	// Flushes counts completed flush passes; Failures counts failed
	// automatic persistence passes (shared with the legacy checkpoint
	// counter); Stalls counts times the write path outran the flusher by 2x
	// the byte trigger.
	Flushes  uint64
	Failures uint64
	Stalls   uint64
	// PendingBytes is the approximate payload committed since the last
	// flush; Evicted and ColdReads count summary evictions and re-warms.
	PendingBytes int64
	Evicted      uint64
	ColdReads    uint64
	// Reason is the typed classification of the most recent failed pass
	// ("" while healthy).
	Reason string
}

// FlushStats returns the flush pipeline counters (zero without a tiered
// backend).
func (db *DB) FlushStats() FlushStats {
	if db.flush == nil {
		return FlushStats{}
	}
	_, reason, _ := db.CheckpointFailure()
	return FlushStats{
		Flushes:      db.flush.flushes.Load(),
		Failures:     db.ckptFailures.Load(),
		Stalls:       db.flush.stalls.Load(),
		PendingBytes: db.flush.bytes.Load(),
		Evicted:      db.flush.evicted.Load(),
		ColdReads:    db.coldReads.Load(),
		Reason:       reason,
	}
}

// Tiered exposes the tiered backend when one is attached (nil otherwise);
// health surfaces read its table/bloom/compaction statistics through it.
func (db *DB) Tiered() storage.Tiered { return db.tiered }
