package lsdb

import (
	"fmt"
	"testing"

	"repro/internal/entity"
)

// TestColdEvictionHistoryPinsArchivedContract pins the current History
// contract for a cold-evicted entity, as the baseline a future
// cold-detail-paging PR will build on:
//
//   - History on a cold entity does not error: the summary warms back in
//     from the tiered backend (one counted cold read).
//   - The warmed history carries ZERO versions — everything before the
//     archive horizon was folded into the summary, and per-version detail is
//     not yet pageable from the cold tier.
//   - Versions appended after the warm build on the archived base, so the
//     visible states remain correct even though the folded prefix is gone.
func TestColdEvictionHistoryPinsArchivedContract(t *testing.T) {
	dir := t.TempDir()
	db := newTestDB(t, Options{Shards: 2, DisableStateCache: true, Backend: openTestTiered(t, dir, nil)})
	defer db.Close()

	key := entity.Key{Type: "Account", ID: "cold-hist"}
	for j := 0; j < 3; j++ {
		if _, err := db.Append(key, []entity.Op{entity.Delta("balance", 1)}, stamp(int64(j+1)), "n", ""); err != nil {
			t.Fatal(err)
		}
	}
	db.Compact(db.HeadLSN() + 1)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if fs := db.FlushStats(); fs.Evicted == 0 {
		t.Fatalf("entity not evicted: %+v", fs)
	}

	coldBefore := db.FlushStats().ColdReads
	h, err := db.History(key)
	if err != nil {
		t.Fatalf("History on cold entity: %v", err)
	}
	if len(h.Versions) != 0 {
		t.Fatalf("cold history carries %d versions, want 0 (all folded into the archived summary)", len(h.Versions))
	}
	if got := db.FlushStats().ColdReads; got != coldBefore+1 {
		t.Fatalf("cold reads %d → %d, want exactly one warm for the History call", coldBefore, got)
	}
	// The warm restored the summary, not a zero state.
	st, _, err := db.Current(key)
	if err != nil {
		t.Fatal(err)
	}
	if st.Float("balance") != 3 {
		t.Fatalf("balance after warm = %v, want 3", st.Float("balance"))
	}

	// New writes on the warmed entity stack on the archived base and are the
	// only versions History reports.
	if _, err := db.Append(key, []entity.Op{entity.Delta("balance", 1)}, stamp(10), "n", ""); err != nil {
		t.Fatal(err)
	}
	h, err = db.History(key)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Versions) != 1 {
		t.Fatalf("history after post-warm append has %d versions, want 1", len(h.Versions))
	}
	if v := h.Versions[0]; v.State == nil || v.State.Float("balance") != 4 {
		t.Fatalf("post-warm version does not build on the archived base: %+v", v)
	}

	// A second archive/flush cycle folds the new version too and evicts the
	// entity again — the contract is stable across generations.
	db.Compact(db.HeadLSN() + 1)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	h, err = db.History(key)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Versions) != 0 {
		t.Fatalf("re-evicted history carries %d versions, want 0", len(h.Versions))
	}
	st, _, err = db.Current(key)
	if err != nil {
		t.Fatal(err)
	}
	if st.Float("balance") != 4 {
		t.Fatalf("balance after second cycle = %v, want 4", st.Float("balance"))
	}
}

// BenchmarkHistoryColdEntity is the cost baseline for History against
// cold-evicted entities: every call pays one bloom-guided table lookup to
// warm the summary back in. The future cold-detail-paging PR is expected to
// change this profile; keep the baseline comparable.
func BenchmarkHistoryColdEntity(b *testing.B) {
	dir := b.TempDir()
	db := newTestDB(b, Options{Shards: 4, DisableStateCache: true, Backend: openTestTiered(b, dir, nil)})
	defer db.Close()

	const keys = 512
	for i := 0; i < keys; i++ {
		k := entity.Key{Type: "Account", ID: fmt.Sprintf("bench-%04d", i)}
		for j := 0; j < 4; j++ {
			if _, err := db.Append(k, []entity.Op{entity.Delta("balance", 1)}, stamp(int64(i*4+j+1)), "n", ""); err != nil {
				b.Fatal(err)
			}
		}
	}
	churn := 0
	evict := func() {
		// A flush (and therefore eviction) only runs when something is
		// dirty; touch a sacrificial key so re-eviction passes do real work.
		churn++
		ck := entity.Key{Type: "Account", ID: "bench-churn"}
		if _, err := db.Append(ck, []entity.Op{entity.Delta("balance", 1)}, stamp(int64(100000+churn)), "n", ""); err != nil {
			b.Fatal(err)
		}
		db.Compact(db.HeadLSN() + 1)
		if err := db.Checkpoint(); err != nil {
			b.Fatal(err)
		}
	}
	evict()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%keys == 0 && i > 0 {
			// All keys warmed by the previous pass; demote them again off
			// the clock so every measured call is a true cold read.
			b.StopTimer()
			evict()
			b.StartTimer()
		}
		k := entity.Key{Type: "Account", ID: fmt.Sprintf("bench-%04d", i%keys)}
		if _, err := db.History(k); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	fs := db.FlushStats()
	b.ReportMetric(float64(fs.ColdReads)/float64(b.N), "coldreads/op")
}
