// Package lsdb implements the log-structured database sketched in section
// 3.1 of the paper: events (operation descriptors) are stored when they
// arrive, inserts are treated as events, and "what applications view as the
// current state of the database [is] a rollup aggregation of the contents of
// the LSDB, in the same way that rollforward using a log is an aggregation
// function".
//
// The database is main-memory resident (as the paper suggests), organised as
// an append-only sequence of records grouped into segments. Two mechanisms
// keep that view cheap to serve:
//
//   - The store is split into lock-striped shards keyed by entity hash
//     (partition.KeyShard). Each shard owns its own mutex, log segments,
//     per-entity index and caches, so writers and readers of unrelated
//     entities never contend on one store-wide lock. LSNs stay globally
//     unique and monotonic via a shared sequence.
//
//   - Each shard maintains a materialised current-state cache that is
//     updated incrementally on every append: the new record's operations are
//     applied copy-on-write to the cached rollup (O(delta), only the chunks
//     the ops touch are copied), and the result is frozen and handed to
//     readers directly — a cache hit is a map lookup, no clone at all.
//     Callers own nothing: states returned by Current/Scan are frozen and
//     must be Thaw()ed before mutating. Anything that rewrites history —
//     MarkObsolete, Compact, Load — invalidates the affected entry and the
//     next read falls back to a log rollup (bounded by per-entity
//     snapshots), then re-materialises.
//
// Compaction and summarisation bound growth while retaining the audit
// history principle 2.7 requires.
package lsdb

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/entity"
	"repro/internal/partition"
	"repro/internal/storage"
)

// Common errors.
var (
	// ErrUnknownType is returned when appending to an entity type that was
	// never registered.
	ErrUnknownType = errors.New("lsdb: unknown entity type")
	// ErrNotFound is returned when reading an entity with no records.
	ErrNotFound = errors.New("lsdb: entity not found")
	// ErrDuplicateTxn is returned when a transaction id has already been
	// applied to the entity (idempotent re-delivery).
	ErrDuplicateTxn = errors.New("lsdb: duplicate transaction")
)

// Record is one immutable log entry: the operations one transaction applied
// to one entity, plus causal metadata. It is an alias of the storage layer's
// durable record type, so a commit cycle hands its records to a
// storage.Backend with zero conversion; the storage-only fields (Kind,
// Horizon, Summary) are always zero on records in the in-memory log.
type Record = storage.WALRecord

// Options configure a database instance.
type Options struct {
	// Node identifies this database (serialization unit / replica) in
	// version stamps.
	Node clock.NodeID
	// SnapshotEvery materialises a per-entity snapshot after this many
	// records for the entity. Snapshots bound the log replay a read must do
	// after the state cache was invalidated (or when the cache is disabled);
	// zero disables automatic snapshots, which experiment E9 uses as the
	// baseline.
	SnapshotEvery int
	// SegmentSize is the number of records per sealed segment within one
	// shard. Zero uses a default of 4096.
	SegmentSize int
	// Validation selects Strict or Managed application of operations during
	// rollup (principle 2.2).
	Validation entity.ValidationMode
	// Shards is the number of lock-striped shards the store is split into.
	// Zero uses a default of 8; 1 reproduces the old single-lock layout.
	Shards int
	// DisableStateCache turns off the materialised current-state cache so
	// every read recomputes the rollup from the log (plus snapshots). It
	// exists for the E9/E13 baselines and for memory-constrained deployments
	// that prefer recomputation over caching.
	DisableStateCache bool
	// DeepCloneStates restores the pre-copy-on-write contract: every read
	// deep-clones the cached state and every write deep-clones the prior
	// state before applying, making reads and writes O(state size) again. It
	// exists as the baseline for experiments E15/E16.
	DeepCloneStates bool
	// GroupCommit enables group-commit append batching: concurrent writers
	// enqueue sanitized op-sets on a per-shard commit queue, the first writer
	// to find the queue idle becomes the leader and drains it under a single
	// shard-lock hold, stamping each batch with one contiguous LSN run and
	// waking every follower with its individual AppendResult. Semantics are
	// identical to the per-append path — idempotence, validation, tentative
	// records and per-writer errors all behave the same — only the locking
	// cadence changes. Off by default; experiment E17 measures the win.
	GroupCommit bool
	// MaxBatch bounds how many queued appends one leader drain folds into a
	// single lock hold / LSN run (default 64). Smaller batches bound how long
	// readers wait behind a busy leader; larger ones amortise more.
	MaxBatch int
	// CommitHook, when non-nil, is invoked under the shard lock at the end of
	// every commit cycle with the records that cycle installed: once per
	// record on the per-append path, once per batch under group commit. It is
	// the attachment point for a durable backend's log force (fsync,
	// replication ack): group commit then amortises that latency across the
	// whole batch, which is the classic group-commit win experiment E17
	// measures. The slice is only valid for the duration of the call.
	//
	// Leaders of different shards commit independently, so the hook may be
	// invoked concurrently (under different shard locks) and must be safe for
	// concurrent use. The hook runs after the cycle's records are installed;
	// if it panics, those records remain committed and visible — under group
	// commit the panic surfaces at the leader while the batch's other writers
	// get an error even though their appends are in the log (the same
	// indeterminacy any post-commit failure has).
	CommitHook func(records []Record)
	// CommitSink is the two-phase sibling of CommitHook: the attachment
	// point for WAL-shipping replication. The call itself (the capture
	// phase) receives every record written to the durable log — commit
	// cycles, obsolescence marks and compaction horizons — in the order the
	// backend does, under the same shard lock, so a sink that forwards to
	// another log observes this one's order. Because the shard lock is
	// held, the capture phase must be fast and must never block on I/O,
	// sleep, or wait for the network: it snapshots the batch, hands it to
	// the shipping machinery, and returns. The returned wait function (nil
	// when the mode needs no acknowledgement) is invoked by the store
	// *after* the shard lock is released; its error reaches the writers of
	// the cycle: a synchronous replication mode that could not gather its
	// acks fails the append. Like a backend error that failure is
	// post-install and therefore indeterminate — the records are committed
	// locally and visible; only the replication guarantee is in doubt.
	// Invoked concurrently from independently committing shards; not
	// invoked during Recover (the replayed records were already shipped
	// when first written). See also SetCommitSink for attaching after Open,
	// and docs/CONCURRENCY.md for the full sink contract.
	CommitSink func(records []Record) (wait func() error)
	// Backend, when non-nil, is the durable storage engine under the store:
	// every commit cycle appends its records to it (one AppendBatch — one
	// framed batch write, one log force — per cycle, so group commit
	// amortises durability latency exactly as it does the CommitHook), and
	// MarkObsolete/Compact log their history rewrites as marks. Open attaches
	// the backend for writing only; to rebuild a store from a backend's
	// content use Recover. Commits are log-first: the backend append happens
	// before the cycle's records are installed in memory, so a backend error
	// is a clean refusal — nothing was committed, the writers get a typed
	// ErrDegraded, and the unit enters degraded read-only mode (see
	// degraded.go) until the backend heals or is repaired.
	Backend storage.Backend
	// RearmAfter is how long a unit degraded by a retryable append error
	// (ENOSPC and kin) waits before probing the backend with the next real
	// append. Zero uses a one-second default. Permanent states (fsync
	// poisoning, corruption, fail-stop) never probe.
	RearmAfter time.Duration
	// CheckpointEvery, with a Backend attached, takes a checkpoint after
	// roughly this many records have been committed since the last one.
	// Checkpoints bound recovery to the log tail written after them. Zero
	// disables automatic checkpoints; Checkpoint can always be called
	// explicitly. Automatic checkpoints run inline on the committing
	// goroutine that crossed the threshold; a failure is remembered and
	// returned by CheckpointErr. With a tiered backend (storage.Tiered) the
	// same threshold triggers a background flush instead — see flush.go.
	CheckpointEvery int
	// FlushBytes, with a tiered backend, additionally triggers a background
	// flush once roughly this many bytes of record payload have been
	// committed since the last flush. Zero uses a 4 MiB default; negative
	// disables the byte trigger (the record-count trigger still applies).
	FlushBytes int64
}

const (
	defaultSegmentSize = 4096
	defaultShards      = 8
	defaultMaxBatch    = 64
)

// snapshot is a cached rollup of one entity up to (and including) an LSN.
// The state is frozen and may be shared with the current-state cache; rollups
// that start from it copy-on-write.
type snapshot struct {
	lsn   uint64
	seq   uint64 // number of live records folded in
	state *entity.State
}

// cached is one entry of the materialised current-state cache: the full
// rollup of an entity as of head. The state is frozen, so it is handed to
// readers directly — zero copies on a hit — and successive appends build on
// it with copy-on-write Apply.
type cached struct {
	head  uint64
	state *entity.State
}

// shard is one lock stripe of the store: a self-contained log with its own
// index and caches for the entities that hash to it.
type shard struct {
	mu       sync.RWMutex
	sealed   [][]Record              // sealed segments, each of SegmentSize records
	active   []Record                // current segment
	index    map[entity.Key][]uint64 // entity -> LSNs, ascending
	byTxn    map[entity.Key]map[string]uint64
	snaps    map[entity.Key]snapshot
	cache    map[entity.Key]*cached
	archived map[entity.Key]*entity.State // summarised entities whose detail records were compacted away

	// Tiered-storage bookkeeping (nil-safe no-ops without a tiered backend).
	// dirty tracks keys mutated since the last flush capture; archivedAt is
	// the LSN an archived summary folds in through (the flush horizon resumes
	// there); cold maps evicted keys to the horizon of their disk-resident
	// summary — a cold read warms the key back into archived on demand.
	dirty      map[entity.Key]struct{}
	archivedAt map[entity.Key]uint64
	cold       map[entity.Key]uint64

	// Group-commit queue (Options.GroupCommit): pending appends awaiting a
	// leader drain. qmu only ever guards these two fields and is never held
	// together with mu, so enqueueing stays cheap while a batch commits.
	qmu      sync.Mutex
	pending  []*appendReq
	draining bool
}

func newShard() *shard {
	return &shard{
		index:      map[entity.Key][]uint64{},
		byTxn:      map[entity.Key]map[string]uint64{},
		snaps:      map[entity.Key]snapshot{},
		cache:      map[entity.Key]*cached{},
		archived:   map[entity.Key]*entity.State{},
		dirty:      map[entity.Key]struct{}{},
		archivedAt: map[entity.Key]uint64{},
		cold:       map[entity.Key]uint64{},
	}
}

// DB is a log-structured database for one serialization unit. All methods
// are safe for concurrent use.
type DB struct {
	opts Options

	typeMu sync.RWMutex
	types  map[string]*entity.Type

	lsn    clock.Sequence // global LSN allocator, shared by all shards
	shards []*shard

	// logMu makes LSN allocation and the backend append of a commit cycle
	// atomic (log-first commit, see degraded.go): a failed append can then
	// roll its reservation back safely, keeping the log dense. Lock order:
	// shard.mu before logMu; logMu never wraps a shard lock.
	logMu sync.Mutex
	// repairMu serialises Repair calls (quarantine + refill spans two logMu
	// critical sections).
	repairMu sync.Mutex
	// degraded is the unit's degraded read-only state (nil: writes accepted).
	// Mutated under logMu; read lock-free by health surfaces.
	degraded       atomic.Pointer[degradedInfo]
	degradedEvents atomic.Uint64
	writesRefused  atomic.Uint64
	rearms         atomic.Uint64

	// recovering suppresses backend writes while Recover replays the
	// backend's own content back into the store. Written only before the DB
	// is shared.
	recovering bool
	// sinceCkpt counts records committed since the last checkpoint;
	// ckptBusy gates so only one automatic checkpoint runs at a time.
	sinceCkpt atomic.Int64
	ckptBusy  atomic.Bool
	ckptMu    sync.Mutex
	ckptErr   error
	// ckptFailures counts failed automatic persistence passes (legacy
	// checkpoints and tiered flushes alike); ckptReason is the typed degraded
	// classification of the most recent failure ("" when the last pass
	// succeeded). Both back the satellite observability for the old
	// silently-retrying maybeCheckpoint path.
	ckptFailures atomic.Uint64
	ckptReason   string // guarded by ckptMu

	// tiered is non-nil when Backend implements storage.Tiered; flush is the
	// off-hot-path flush pipeline that replaces stop-the-world checkpoints.
	tiered storage.Tiered
	flush  *flusher
	// coldReads counts reads that warmed a disk-resident summary back in.
	coldReads atomic.Uint64
}

// Open creates an empty database.
func Open(opts Options) *DB {
	if opts.SegmentSize <= 0 {
		opts.SegmentSize = defaultSegmentSize
	}
	if opts.Shards <= 0 {
		opts.Shards = defaultShards
	}
	if opts.MaxBatch <= 0 {
		opts.MaxBatch = defaultMaxBatch
	}
	db := &DB{
		opts:   opts,
		types:  map[string]*entity.Type{},
		shards: make([]*shard, opts.Shards),
	}
	for i := range db.shards {
		db.shards[i] = newShard()
	}
	if t, ok := opts.Backend.(storage.Tiered); ok {
		db.tiered = t
		db.flush = newFlusher(db)
	}
	return db
}

// Node returns the node identity of this database.
func (db *DB) Node() clock.NodeID { return db.opts.Node }

// Shards returns the number of lock stripes the store is split into.
func (db *DB) Shards() int { return len(db.shards) }

// shardFor returns the shard owning the key.
func (db *DB) shardFor(key entity.Key) *shard {
	return db.shards[partition.KeyShard(key, len(db.shards))]
}

// RegisterType makes an entity type known to the database. It must be called
// before appending records of that type.
func (db *DB) RegisterType(t *entity.Type) error {
	if err := t.Validate(); err != nil {
		return err
	}
	db.typeMu.Lock()
	defer db.typeMu.Unlock()
	db.types[t.Name] = t
	return nil
}

// TypeOf returns the registered type with the given name.
func (db *DB) TypeOf(name string) (*entity.Type, bool) {
	db.typeMu.RLock()
	defer db.typeMu.RUnlock()
	t, ok := db.types[name]
	return t, ok
}

// Types returns the names of all registered types, sorted.
func (db *DB) Types() []string {
	db.typeMu.RLock()
	defer db.typeMu.RUnlock()
	out := make([]string, 0, len(db.types))
	for n := range db.types {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// AppendResult reports the outcome of an append. State is the frozen new
// current state of the entity (shared with the cache); Thaw it to mutate.
type AppendResult struct {
	Record   Record
	State    *entity.State
	Warnings []entity.Warning
}

// Append writes one record: the operations one transaction applied to one
// entity. It validates the operations against the current rollup (so a
// strict-mode violation is detected at write time), assigns an LSN, and
// returns the new current state.
//
// If txnID is non-empty and has already been applied to this entity, Append
// returns ErrDuplicateTxn without writing; this gives at-least-once queue
// consumers idempotence (principles 2.4 and 3.1).
func (db *DB) Append(key entity.Key, ops []entity.Op, stamp clock.Timestamp, origin clock.NodeID, txnID string) (AppendResult, error) {
	res, err := db.append(key, ops, stamp, origin, txnID, false)
	db.maybeCheckpoint()
	return res, err
}

// AppendTentative writes a record whose effects are tentative (principle
// 2.9). Tentative records participate in rollups until marked obsolete.
func (db *DB) AppendTentative(key entity.Key, ops []entity.Op, stamp clock.Timestamp, origin clock.NodeID, txnID string) (AppendResult, error) {
	res, err := db.append(key, ops, stamp, origin, txnID, true)
	db.maybeCheckpoint()
	return res, err
}

func (db *DB) append(key entity.Key, ops []entity.Op, stamp clock.Timestamp, origin clock.NodeID, txnID string, tentative bool) (AppendResult, error) {
	typ, ok := db.TypeOf(key.Type)
	if !ok {
		return AppendResult{}, fmt.Errorf("%w: %s", ErrUnknownType, key.Type)
	}
	// The sealed log and the state cache share the operations with the
	// caller; sanitization rejects values that cannot be safely shared and
	// detaches container values from caller-owned memory. It runs before any
	// lock (or queue) is touched, so a malformed op-set never reaches a
	// group-commit batch.
	ops, err := entity.SanitizeOps(ops)
	if err != nil {
		return AppendResult{}, fmt.Errorf("lsdb: %w", err)
	}
	s := db.shardFor(key)
	if db.opts.GroupCommit {
		return db.appendGrouped(s, typ, key, ops, stamp, origin, txnID, tentative)
	}
	s.mu.Lock()
	next, warnings, err := db.applyForAppendLocked(s, typ, key, ops, txnID, tentative, nil, nil)
	if err != nil {
		s.mu.Unlock()
		return AppendResult{}, err
	}
	// Log-first: the record reaches the durable backend (which assigns the
	// cycle its LSN run atomically under logMu) before anything is installed
	// in memory. A refusal is clean — no state changed, the writer gets the
	// typed degraded error. See degraded.go.
	recs := []Record{{
		Key:       key,
		Ops:       ops,
		Stamp:     stamp,
		Origin:    origin,
		TxnID:     txnID,
		Tentative: tentative,
	}}
	if err := db.logAppend(recs); err != nil {
		s.mu.Unlock()
		return AppendResult{}, err
	}
	resState := db.commitAppendLocked(s, &recs[0], next)
	wait := db.postCommitLocked(recs)
	s.mu.Unlock()
	// The replication ack wait happens with no lock held: readers and other
	// writers of the shard proceed while this writer blocks on its acks.
	res := AppendResult{Record: recs[0], State: resState, Warnings: warnings}
	if err := waitCommitSink(wait); err != nil {
		return res, err
	}
	return res, nil
}

// SetCommitSink attaches (or replaces) the commit sink after Open. The kernel
// uses it to wire replication up once all the units' stores exist. It must be
// called before the store is shared with writers; attaching mid-traffic races
// with committing shards.
func (db *DB) SetCommitSink(fn func(records []Record) func() error) {
	db.opts.CommitSink = fn
}

// applyForAppendLocked validates one append and applies it to the current
// rollup, returning the new (not yet frozen) state. The caller holds the
// shard's write lock. batchStates and batchTxns overlay the shard's caches
// with the effects of earlier appends in the same group-commit batch — a
// request must observe its batch predecessors exactly as it would have on the
// serial path; both are nil outside a batch.
func (db *DB) applyForAppendLocked(s *shard, typ *entity.Type, key entity.Key, ops []entity.Op, txnID string, tentative bool, batchStates map[entity.Key]*entity.State, batchTxns map[entity.Key]map[string]bool) (*entity.State, []entity.Warning, error) {
	// A write to an evicted entity rolls up from its disk-resident summary.
	if err := db.warmLocked(s, key); err != nil {
		return nil, nil, err
	}
	if txnID != "" {
		if _, dup := s.byTxn[key][txnID]; dup {
			return nil, nil, fmt.Errorf("%w: %s on %s", ErrDuplicateTxn, txnID, key)
		}
		if batchTxns[key][txnID] {
			return nil, nil, fmt.Errorf("%w: %s on %s", ErrDuplicateTxn, txnID, key)
		}
	}
	// The cached rollup is the prior state; Apply copies-on-write, so the
	// frozen cache entry is never mutated and only the chunks the operations
	// touch are copied (O(delta), not O(state size)).
	var prior *entity.State
	if st, ok := batchStates[key]; ok {
		prior = st
	} else if c, ok := s.cache[key]; ok && !db.opts.DisableStateCache {
		prior = c.state
	} else {
		prior = s.rollupLocked(key, typ)
	}
	if db.opts.DeepCloneStates {
		prior = prior.DeepClone()
	}
	next, warnings, err := entity.Apply(typ, prior, ops, db.opts.Validation)
	if err != nil {
		return nil, nil, err
	}
	if tentative {
		next.Tentative = true
	}
	return next, warnings, nil
}

// commitAppendLocked installs one applied append: the record goes into the
// shard's log and indexes, and the frozen new state into the cache and the
// snapshot fallback. The caller holds the shard's write lock and has already
// assigned rec.LSN. It returns the state for the caller's AppendResult.
func (db *DB) commitAppendLocked(s *shard, rec *Record, next *entity.State) *entity.State {
	s.appendRecordLocked(*rec, db.opts.SegmentSize)
	if db.tiered != nil {
		s.dirty[rec.Key] = struct{}{}
	}
	if rec.TxnID != "" {
		if s.byTxn[rec.Key] == nil {
			s.byTxn[rec.Key] = map[string]uint64{}
		}
		s.byTxn[rec.Key][rec.TxnID] = rec.LSN
	}
	// Freeze the new current state: the cache, the snapshot fallback and the
	// caller all share the same immutable version — no clones anywhere.
	next.Freeze()
	resState := next
	if db.opts.DeepCloneStates {
		resState = next.DeepClone()
	}
	if !db.opts.DisableStateCache {
		s.cache[rec.Key] = &cached{head: rec.LSN, state: next}
	}
	// Maintain the snapshot fallback; frozen states are shared, not cloned.
	if db.opts.SnapshotEvery > 0 {
		snap := s.snaps[rec.Key]
		snap.seq++
		if snap.state == nil || int(snap.seq)%db.opts.SnapshotEvery == 0 {
			snap.lsn = rec.LSN
			snap.state = next
		}
		s.snaps[rec.Key] = snap
	}
	return resState
}

// appendRecordLocked adds rec to the shard's log and index. The caller holds
// the shard lock; records arrive in ascending LSN order per shard because
// LSNs are allocated under that lock.
func (s *shard) appendRecordLocked(rec Record, segmentSize int) {
	s.active = append(s.active, rec)
	if len(s.active) >= segmentSize {
		s.sealed = append(s.sealed, s.active)
		s.active = nil
	}
	s.index[rec.Key] = append(s.index[rec.Key], rec.LSN)
}

// MarkObsolete flags the record produced by txnID on key as obsolete (its
// tentative promise was withdrawn). Rollups exclude it from then on, but the
// record remains in the log for audit and apology purposes.
func (db *DB) MarkObsolete(key entity.Key, txnID string) error {
	s := db.shardFor(key)
	s.mu.Lock()
	lsn, ok := s.byTxn[key][txnID]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: txn %s on %s", ErrNotFound, txnID, key)
	}
	rec := s.recordAtLocked(lsn)
	if rec == nil {
		s.mu.Unlock()
		return fmt.Errorf("%w: lsn %d", ErrNotFound, lsn)
	}
	// The record is already durable without its obsolete flag; log the
	// history rewrite as a mark so recovery re-applies it — log-first, like
	// appends: a degraded backend refuses the mark before memory changes
	// (marks are writes too, and read-only mode refuses them the same way).
	// Written under the shard lock, so the mark is ordered after the record
	// it withdraws and before any later append to the same entity.
	mark := Record{Kind: storage.KindObsolete, Key: key, TxnID: txnID}
	if err := db.logMarks([]Record{mark}); err != nil {
		s.mu.Unlock()
		return err
	}
	rec.Obsolete = true
	if db.tiered != nil {
		s.dirty[key] = struct{}{}
	}
	// The materialised state folded the withdrawn record in; drop it so the
	// next read rebuilds from the log. The snapshot only has to go if it
	// already covers the withdrawn record — an older snapshot is still a
	// valid prefix and bounds the rebuild.
	delete(s.cache, key)
	if snap, ok := s.snaps[key]; ok && snap.lsn >= lsn {
		delete(s.snaps, key)
	}
	// The mark ships through the commit sink too: a standby's log must
	// withdraw the same promises. Captured under the shard lock (ordered
	// after the record it withdraws), acked after it, like any sink call.
	var wait func() error
	if !db.recovering && db.opts.CommitSink != nil {
		wait = db.opts.CommitSink([]Record{mark})
	}
	s.mu.Unlock()
	if wait != nil {
		if err := wait(); err != nil {
			return fmt.Errorf("lsdb: commit sink mark failed (mark is applied locally): %w", err)
		}
	}
	return nil
}

// recordAtLocked returns a pointer to the record with the given LSN, or nil
// if it was compacted away or lives in another shard. Records within each
// segment are in ascending LSN order (compaction preserves order), so a
// binary search per segment works.
func (s *shard) recordAtLocked(lsn uint64) *Record {
	find := func(seg []Record) *Record {
		i := sort.Search(len(seg), func(i int) bool { return seg[i].LSN >= lsn })
		if i < len(seg) && seg[i].LSN == lsn {
			return &seg[i]
		}
		return nil
	}
	for si := range s.sealed {
		seg := s.sealed[si]
		if len(seg) == 0 || seg[len(seg)-1].LSN < lsn {
			continue
		}
		if seg[0].LSN > lsn {
			return nil
		}
		return find(seg)
	}
	return find(s.active)
}

// Current returns the rollup of an entity's records: its current state and
// the LSN of the latest record folded in. With the state cache enabled
// (default) a hit is a map lookup that hands out the frozen cached state
// directly — zero copies, independent of both history length and state
// width. The returned state is frozen: call Thaw before mutating it.
func (db *DB) Current(key entity.Key) (*entity.State, uint64, error) {
	typ, ok := db.TypeOf(key.Type)
	if !ok {
		return nil, 0, fmt.Errorf("%w: %s", ErrUnknownType, key.Type)
	}
	s := db.shardFor(key)
	if db.opts.DisableStateCache {
		if err := db.ensureWarm(s, key); err != nil {
			return nil, 0, err
		}
		s.mu.RLock()
		defer s.mu.RUnlock()
		if len(s.index[key]) == 0 && s.archived[key] == nil {
			return nil, 0, fmt.Errorf("%w: %s", ErrNotFound, key)
		}
		return s.rollupLocked(key, typ).Freeze(), headOf(s.index[key]), nil
	}
	s.mu.RLock()
	if c, ok := s.cache[key]; ok {
		st, head := c.state, c.head
		s.mu.RUnlock()
		if db.opts.DeepCloneStates {
			st = st.DeepClone()
		}
		return st, head, nil
	}
	if _, isCold := s.cold[key]; !isCold && len(s.index[key]) == 0 && s.archived[key] == nil {
		// Nonexistent entity: answer under the read lock so polling for a
		// key that is not there never escalates to the shard's write lock.
		s.mu.RUnlock()
		return nil, 0, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	s.mu.RUnlock()
	// Cache miss: rebuild the rollup under the write lock and re-materialise.
	s.mu.Lock()
	defer s.mu.Unlock()
	var st *entity.State
	var head uint64
	if c, ok := s.cache[key]; ok { // raced with another rebuild
		st, head = c.state, c.head
	} else {
		if err := db.warmLocked(s, key); err != nil {
			return nil, 0, err
		}
		if len(s.index[key]) == 0 && s.archived[key] == nil {
			return nil, 0, fmt.Errorf("%w: %s", ErrNotFound, key)
		}
		st = s.rollupLocked(key, typ).Freeze()
		head = headOf(s.index[key])
		s.cache[key] = &cached{head: head, state: st}
	}
	if db.opts.DeepCloneStates {
		st = st.DeepClone()
	}
	return st, head, nil
}

// headOf returns the last (highest) LSN of an ascending index slice.
func headOf(lsns []uint64) uint64 {
	if len(lsns) == 0 {
		return 0
	}
	return lsns[len(lsns)-1]
}

// Exists reports whether any live record (or archived summary, in memory or
// evicted to the tiered store) exists for key.
func (db *DB) Exists(key entity.Key) bool {
	s := db.shardFor(key)
	s.mu.RLock()
	defer s.mu.RUnlock()
	if _, isCold := s.cold[key]; isCold {
		return true
	}
	return len(s.index[key]) > 0 || s.archived[key] != nil
}

// rollupLocked computes the current state of key by log replay, starting
// from the archived summary and/or snapshot when available. Callers hold at
// least a read lock on the shard. The returned state is freshly built and
// owned by the caller; it shares structure copy-on-write with the frozen
// snapshot or summary it started from.
func (s *shard) rollupLocked(key entity.Key, typ *entity.Type) *entity.State {
	base := entity.NewState(key)
	// The archived summary folds in everything through archivedAt; index
	// records at or below it (recovery can retain copies the summary already
	// covers) must not re-apply.
	startLSN := s.archivedAt[key]
	if arch := s.archived[key]; arch != nil {
		base = arch.Clone()
	}
	if snap, ok := s.snaps[key]; ok && snap.state != nil && snap.lsn >= startLSN {
		base = snap.state.Clone()
		startLSN = snap.lsn
	}
	for _, lsn := range s.index[key] {
		if lsn <= startLSN {
			continue
		}
		rec := s.recordAtLocked(lsn)
		if rec == nil || rec.Obsolete {
			continue
		}
		next, _, err := entity.Apply(typ, base, rec.Ops, entity.Managed)
		if err != nil {
			// Rollup always uses managed application; an error here means a
			// malformed operation kind, which Append would have rejected.
			continue
		}
		if rec.Tentative {
			next.Tentative = true
		}
		base = next
	}
	return base
}

// AsOf returns the state of key as of the given timestamp: the rollup of all
// non-obsolete records stamped at or before ts.
func (db *DB) AsOf(key entity.Key, ts clock.Timestamp) (*entity.State, error) {
	typ, ok := db.TypeOf(key.Type)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownType, key.Type)
	}
	s := db.shardFor(key)
	if err := db.ensureWarm(s, key); err != nil {
		return nil, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	lsns := s.index[key]
	if len(lsns) == 0 {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	state := entity.NewState(key)
	if arch := s.archived[key]; arch != nil {
		state = arch.Clone()
	}
	found := s.archived[key] != nil
	for _, lsn := range lsns {
		if lsn <= s.archivedAt[key] {
			continue // already folded into the archived summary
		}
		rec := s.recordAtLocked(lsn)
		if rec == nil || rec.Obsolete {
			continue
		}
		if rec.Stamp.Compare(ts) == clock.After {
			continue
		}
		next, _, err := entity.Apply(typ, state, rec.Ops, entity.Managed)
		if err != nil {
			continue
		}
		if rec.Tentative {
			next.Tentative = true
		}
		state = next
		found = true
	}
	if !found {
		return nil, fmt.Errorf("%w: %s as of %s", ErrNotFound, key, ts)
	}
	return state.Freeze(), nil
}

// History reconstructs the full insert-only version chain of key, including
// obsolete versions (principle 2.7: the past is never discarded, only
// summarised).
func (db *DB) History(key entity.Key) (*entity.History, error) {
	typ, ok := db.TypeOf(key.Type)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownType, key.Type)
	}
	s := db.shardFor(key)
	if err := db.ensureWarm(s, key); err != nil {
		return nil, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	lsns := s.index[key]
	if len(lsns) == 0 && s.archived[key] == nil {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	h := entity.NewHistory(key)
	state := entity.NewState(key)
	if arch := s.archived[key]; arch != nil {
		state = arch.Clone()
	}
	var seq uint64
	for _, lsn := range lsns {
		if lsn <= s.archivedAt[key] {
			continue // already folded into the archived summary
		}
		rec := s.recordAtLocked(lsn)
		if rec == nil {
			continue
		}
		seq++
		v := &entity.Version{
			Key:       key,
			Seq:       seq,
			Ops:       rec.Ops,
			Stamp:     rec.Stamp,
			Origin:    rec.Origin,
			TxnID:     rec.TxnID,
			Tentative: rec.Tentative,
			Obsolete:  rec.Obsolete,
		}
		if !rec.Obsolete {
			next, _, err := entity.Apply(typ, state, rec.Ops, entity.Managed)
			if err == nil {
				if rec.Tentative {
					next.Tentative = true
				}
				state = next.Freeze()
			}
		}
		v.State = state
		h.Append(v)
	}
	return h, nil
}

// RecordsAfter returns all records with LSN strictly greater than after, in
// LSN order across all shards. Replication and deferred-aggregate
// maintenance tail the log with this call.
//
// All shard locks are held together (always in shard order — this is the
// only multi-shard lock site) so the result is one atomic cut of the log:
// shard-at-a-time reads could return a higher LSN while missing a lower one
// committed to an already-released shard, and watermark-based consumers
// would then skip that record forever.
func (db *DB) RecordsAfter(after uint64) []Record {
	for _, s := range db.shards {
		s.mu.RLock()
	}
	defer func() {
		for _, s := range db.shards {
			s.mu.RUnlock()
		}
	}()
	return db.recordsAfterLocked(after)
}

// recordsAfterLocked is RecordsAfter's body; the caller holds (at least) a
// read lock on every shard, so the result is one atomic cut of the log.
func (db *DB) recordsAfterLocked(after uint64) []Record {
	// First pass: locate the qualifying suffix of every segment (segments are
	// LSN-ascending, so one binary search per segment) and pre-size the merge
	// buffer exactly instead of growing it append by append.
	type run struct {
		seg   []Record
		start int
	}
	var runs []run
	total := 0
	for _, s := range db.shards {
		collect := func(seg []Record) {
			if len(seg) == 0 || seg[len(seg)-1].LSN <= after {
				return
			}
			start := sort.Search(len(seg), func(i int) bool { return seg[i].LSN > after })
			if start == len(seg) {
				return
			}
			runs = append(runs, run{seg: seg, start: start})
			total += len(seg) - start
		}
		for _, seg := range s.sealed {
			collect(seg)
		}
		collect(s.active)
	}
	out := make([]Record, 0, total)
	for _, r := range runs {
		out = append(out, r.seg[r.start:]...)
	}
	// Each shard contributed an ascending run; merge them into one log order.
	sort.Slice(out, func(i, j int) bool { return out[i].LSN < out[j].LSN })
	return out
}

// RecordsAfterN is RecordsAfter bounded to the first limit records of the
// tail (in LSN order); limit <= 0 means unbounded. Streaming catch-up serves
// chunk-sized tails this way so one response never carries the whole log.
func (db *DB) RecordsAfterN(after uint64, limit int) []Record {
	recs := db.RecordsAfter(after)
	if limit > 0 && len(recs) > limit {
		recs = recs[:limit:limit]
	}
	return recs
}

// RecordsFor returns all records of one entity in LSN order.
func (db *DB) RecordsFor(key entity.Key) []Record {
	s := db.shardFor(key)
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []Record
	for _, lsn := range s.index[key] {
		if rec := s.recordAtLocked(lsn); rec != nil {
			out = append(out, *rec)
		}
	}
	return out
}

// HeadLSN returns the LSN of the most recent record (0 when empty).
func (db *DB) HeadLSN() uint64 {
	return db.lsn.Peek()
}

// Len returns the number of records currently retained in the log.
func (db *DB) Len() int {
	n := 0
	for _, s := range db.shards {
		s.mu.RLock()
		n += s.lenLocked()
		s.mu.RUnlock()
	}
	return n
}

// Keys returns every entity key with retained or archived records, sorted.
func (db *DB) Keys() []entity.Key {
	seen := map[entity.Key]bool{}
	for _, s := range db.shards {
		s.mu.RLock()
		for k := range s.index {
			if len(s.index[k]) > 0 {
				seen[k] = true
			}
		}
		for k := range s.archived {
			seen[k] = true
		}
		for k := range s.cold {
			seen[k] = true
		}
		s.mu.RUnlock()
	}
	out := make([]entity.Key, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// KeysOfType returns all keys of one entity type, sorted.
func (db *DB) KeysOfType(typeName string) []entity.Key {
	var out []entity.Key
	for _, k := range db.Keys() {
		if k.Type == typeName {
			out = append(out, k)
		}
	}
	return out
}

// Scan calls fn with the current state of every entity of the given type.
// Scanning stops early if fn returns false. Each state is an internally
// consistent rollup of its entity, handed out frozen and zero-copy from the
// state cache — fn must Thaw a state before mutating it. The scan as a whole
// is not a global snapshot — entities on other shards may change while one
// is visited (subjective consistency, principle 2.1).
func (db *DB) Scan(typeName string, fn func(*entity.State) bool) error {
	if _, ok := db.TypeOf(typeName); !ok {
		return fmt.Errorf("%w: %s", ErrUnknownType, typeName)
	}
	for _, k := range db.KeysOfType(typeName) {
		st, _, err := db.Current(k)
		if err != nil {
			if errors.Is(err, ErrNotFound) {
				continue
			}
			return err
		}
		if !fn(st) {
			return nil
		}
	}
	return nil
}

// Snapshot forces a snapshot of key's current state so subsequent reads do
// not replay its history even after a cache invalidation.
func (db *DB) Snapshot(key entity.Key) error {
	typ, ok := db.TypeOf(key.Type)
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownType, key.Type)
	}
	s := db.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := db.warmLocked(s, key); err != nil {
		return err
	}
	lsns := s.index[key]
	if len(lsns) == 0 {
		return fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	st := s.rollupLocked(key, typ).Freeze()
	s.snaps[key] = snapshot{lsn: headOf(lsns), seq: uint64(len(lsns)), state: st}
	if !db.opts.DisableStateCache {
		s.cache[key] = &cached{head: headOf(lsns), state: st}
	}
	return nil
}

// CompactStats reports what a compaction pass removed.
type CompactStats struct {
	RecordsBefore int
	RecordsAfter  int
	EntitiesKept  int
	Summarised    int
}

// Compact summarises and drops detail records up to and including beforeLSN.
// For every entity all of whose records fall at or before the horizon, the
// current rollup is stored as an archived summary (the paper's
// "summarization and archival functionality") and the detail records are
// removed. Entities with newer activity keep all their records so their
// audit trail stays complete. Shards compact independently.
func (db *DB) Compact(beforeLSN uint64) CompactStats {
	var stats CompactStats
	for _, s := range db.shards {
		s.mu.Lock()
		stats.RecordsBefore += s.lenLocked()
		drop := map[entity.Key]bool{}
		for key, lsns := range s.index {
			if len(lsns) == 0 {
				continue
			}
			if headOf(lsns) <= beforeLSN {
				typ, ok := db.TypeOf(key.Type)
				if !ok {
					continue
				}
				if err := db.warmLocked(s, key); err != nil {
					continue // summary unreadable; keep the detail records
				}
				s.archived[key] = s.rollupLocked(key, typ).Freeze()
				s.archivedAt[key] = headOf(lsns)
				if db.tiered != nil {
					s.dirty[key] = struct{}{}
				}
				drop[key] = true
				stats.Summarised++
			} else {
				stats.EntitiesKept++
			}
		}
		if len(drop) > 0 {
			rewrite := func(seg []Record) []Record {
				out := seg[:0]
				for _, r := range seg {
					if !drop[r.Key] {
						out = append(out, r)
					}
				}
				return out
			}
			for i := range s.sealed {
				s.sealed[i] = rewrite(s.sealed[i])
			}
			s.active = rewrite(s.active)
			for key := range drop {
				delete(s.index, key)
				delete(s.snaps, key)
				delete(s.byTxn, key)
				// The materialised state would now shadow the archived
				// summary; drop it and let the next read rebuild from the
				// summary.
				delete(s.cache, key)
			}
		}
		stats.RecordsAfter += s.lenLocked()
		s.mu.Unlock()
	}
	// Log the horizon so recovery re-runs the compaction at this point in
	// the log. Appends racing with the marker can make replay keep entities
	// the live store archived (or archive ones it kept) — the rollup states
	// are identical either way, only the summarised/retained split differs.
	if !db.recovering {
		mark := Record{Kind: storage.KindCompact, Horizon: beforeLSN}
		if err := db.logMarks([]Record{mark}); err != nil {
			// The in-memory compaction already happened; a refused mark is
			// remembered rather than returned (replay would keep entities
			// the live store archived — the rollup states are identical).
			db.setBackendErr(fmt.Errorf("lsdb: backend compact mark failed: %w", err))
		} else if db.opts.CommitSink != nil {
			// No shard lock is held here; capture and wait inline.
			if wait := db.opts.CommitSink([]Record{mark}); wait != nil {
				if err := wait(); err != nil {
					db.setBackendErr(fmt.Errorf("lsdb: commit sink compact mark failed: %w", err))
				}
			}
		}
	}
	return stats
}

func (s *shard) lenLocked() int {
	n := len(s.active)
	for _, seg := range s.sealed {
		n += len(seg)
	}
	return n
}

// --- Durable storage ---------------------------------------------------------

// Checkpoint captures the store's full content — archived summaries plus
// every retained record in global LSN order — into the backend, so recovery
// replays only the log tail written afterwards. Writers are quiesced for the
// duration (all shard locks are held; this is a stop-the-world checkpoint,
// the simple variant — a fuzzy checkpoint that lets writers proceed is an
// open ROADMAP item), which makes the cut exact: everything appended before
// the checkpoint is inside it, everything after is in the replayable tail.
// A no-op without a Backend. With a tiered backend, Checkpoint is a
// compatibility wrapper: it forces a synchronous flush of every dirty entity
// instead — recovery then reads the newest tables plus the WAL tail, and
// writers are never quiesced.
func (db *DB) Checkpoint() error {
	if db.opts.Backend == nil {
		return nil
	}
	if db.flush != nil {
		return db.flush.FlushNow()
	}
	// All shard locks, in shard order (the same order RecordsAfter uses).
	// Read locks suffice: they exclude writers (appends, marks, compaction)
	// while letting concurrent readers through.
	for _, s := range db.shards {
		s.mu.RLock()
	}
	defer func() {
		for _, s := range db.shards {
			s.mu.RUnlock()
		}
	}()
	watermark := db.lsn.Peek()
	err := db.opts.Backend.Checkpoint(watermark, func(put func(storage.WALRecord) error) error {
		// Archived summaries first — a replaying store needs them in place
		// before reads, and they are not reconstructible from the records.
		// Sorted per shard so identical stores write identical snapshots.
		for _, s := range db.shards {
			keys := make([]entity.Key, 0, len(s.archived))
			for k := range s.archived {
				keys = append(keys, k)
			}
			sort.Slice(keys, func(i, j int) bool { return keys[i].String() < keys[j].String() })
			for _, k := range keys {
				if err := put(Record{Kind: storage.KindSummary, Key: k, Summary: s.archived[k]}); err != nil {
					return err
				}
			}
		}
		for _, rec := range db.recordsAfterLocked(0) {
			if err := put(rec); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	db.sinceCkpt.Store(0)
	return nil
}

// maybeCheckpoint runs an automatic checkpoint once CheckpointEvery records
// have been committed since the last one. It runs inline on the committing
// goroutine that crossed the threshold, outside any shard lock; the gate
// keeps concurrent committers from piling into Checkpoint together.
func (db *DB) maybeCheckpoint() {
	if db.flush != nil {
		db.flush.maybeTrigger()
		return
	}
	every := int64(db.opts.CheckpointEvery)
	if every <= 0 || db.opts.Backend == nil || db.sinceCkpt.Load() < every {
		return
	}
	if !db.ckptBusy.CompareAndSwap(false, true) {
		return
	}
	defer db.ckptBusy.Store(false)
	if db.sinceCkpt.Load() < every { // raced with a finishing checkpoint
		return
	}
	if err := db.Checkpoint(); err != nil {
		db.setBackendFailure(err)
		// Back off: without this reset a persistent failure (disk full
		// mid-snapshot) would make every subsequent append retry a full
		// stop-the-world checkpoint. Retry after another CheckpointEvery
		// records instead; the failure stays visible via BackendErr — and,
		// unlike the old silent retry loop, counted and classified by
		// CheckpointFailure so health surfaces see the breadcrumb.
		db.sinceCkpt.Store(0)
	} else {
		db.clearBackendFailure()
	}
}

// setBackendErr remembers a background backend failure (automatic
// checkpoint, compaction mark) for BackendErr.
func (db *DB) setBackendErr(err error) {
	db.ckptMu.Lock()
	db.ckptErr = err
	db.ckptMu.Unlock()
}

// setBackendFailure records a failed automatic persistence pass: the error
// for BackendErr, a failure count, and the typed degraded classification as
// a breadcrumb for health surfaces.
func (db *DB) setBackendFailure(err error) {
	reason, _ := classifyStorageErr(err)
	db.ckptFailures.Add(1)
	db.ckptMu.Lock()
	db.ckptErr = err
	db.ckptReason = reason
	db.ckptMu.Unlock()
}

// clearBackendFailure clears the breadcrumb after a successful pass (the
// failure count is cumulative and stays).
func (db *DB) clearBackendFailure() {
	db.ckptMu.Lock()
	db.ckptReason = ""
	db.ckptErr = nil
	db.ckptMu.Unlock()
}

// CheckpointFailure reports the automatic-persistence failure breadcrumb:
// how many automatic checkpoints or flushes have failed since open, the
// typed reason of the most recent failure ("" once a later pass succeeded),
// and its error. The old behaviour was a silent retry loop; operators could
// not tell a unit that checkpoints cleanly from one that fails every pass.
func (db *DB) CheckpointFailure() (failures uint64, reason string, err error) {
	db.ckptMu.Lock()
	defer db.ckptMu.Unlock()
	return db.ckptFailures.Load(), db.ckptReason, db.ckptErr
}

// BackendErr returns the most recent background backend failure — an
// automatic checkpoint or a compaction mark that could not be logged — or
// nil. Foreground backend failures are returned from the failing call
// directly.
func (db *DB) BackendErr() error {
	db.ckptMu.Lock()
	defer db.ckptMu.Unlock()
	return db.ckptErr
}

// Sync forces everything committed so far to the backend's stable storage.
// A no-op without a Backend.
func (db *DB) Sync() error {
	if db.opts.Backend == nil {
		return nil
	}
	return db.opts.Backend.Sync()
}

// Close flushes and closes the backend. The in-memory store remains
// readable; further appends will fail against the closed backend. A no-op
// without a Backend.
func (db *DB) Close() error {
	if db.opts.Backend == nil {
		return nil
	}
	if db.flush != nil {
		// Wait out any in-flight background flush so the backend is not
		// closed under it (a clean shutdown also leaves the WAL tail as
		// short as the last flush made it).
		db.flush.mu.Lock()
		defer db.flush.mu.Unlock()
	}
	return db.opts.Backend.Close()
}
