// Package lsdb implements the log-structured database sketched in section
// 3.1 of the paper: events (operation descriptors) are stored when they
// arrive, inserts are treated as events, and "what applications view as the
// current state of the database [is] a rollup aggregation of the contents of
// the LSDB, in the same way that rollforward using a log is an aggregation
// function".
//
// The database is main-memory resident (as the paper suggests), organised as
// an append-only sequence of records grouped into segments. A per-entity
// index and periodic per-entity snapshots keep rollups cheap; compaction and
// summarisation bound growth while retaining the audit history principle 2.7
// requires.
package lsdb

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/clock"
	"repro/internal/entity"
)

// Common errors.
var (
	// ErrUnknownType is returned when appending to an entity type that was
	// never registered.
	ErrUnknownType = errors.New("lsdb: unknown entity type")
	// ErrNotFound is returned when reading an entity with no records.
	ErrNotFound = errors.New("lsdb: entity not found")
	// ErrDuplicateTxn is returned when a transaction id has already been
	// applied to the entity (idempotent re-delivery).
	ErrDuplicateTxn = errors.New("lsdb: duplicate transaction")
)

// Record is one immutable log entry: the operations one transaction applied
// to one entity, plus causal metadata.
type Record struct {
	LSN       uint64
	Key       entity.Key
	Ops       []entity.Op
	Stamp     clock.Timestamp
	Origin    clock.NodeID
	TxnID     string
	Tentative bool
	// Obsolete marks a tentative record whose promise was later withdrawn.
	// Obsolete records remain in the log for auditability but are skipped by
	// rollups.
	Obsolete bool
}

// Options configure a database instance.
type Options struct {
	// Node identifies this database (serialization unit / replica) in
	// version stamps.
	Node clock.NodeID
	// SnapshotEvery materialises a per-entity snapshot after this many
	// records for the entity. Zero disables automatic snapshots (every read
	// replays the entity's full history), which experiment E9 uses as the
	// baseline.
	SnapshotEvery int
	// SegmentSize is the number of records per sealed segment. Zero uses a
	// default of 4096.
	SegmentSize int
	// Validation selects Strict or Managed application of operations during
	// rollup (principle 2.2).
	Validation entity.ValidationMode
}

const defaultSegmentSize = 4096

// snapshot is a cached rollup of one entity up to (and including) an LSN.
type snapshot struct {
	lsn   uint64
	seq   uint64 // number of live records folded in
	state *entity.State
}

// DB is a log-structured database for one serialization unit. All methods
// are safe for concurrent use.
type DB struct {
	opts Options

	mu       sync.RWMutex
	types    map[string]*entity.Type
	sealed   [][]Record // sealed segments, each of SegmentSize records
	active   []Record   // current segment
	lsn      clock.Sequence
	index    map[entity.Key][]uint64 // entity -> LSNs, ascending
	byTxn    map[entity.Key]map[string]uint64
	snaps    map[entity.Key]snapshot
	archived map[entity.Key]*entity.State // summarised entities whose detail records were compacted away
}

// Open creates an empty database.
func Open(opts Options) *DB {
	if opts.SegmentSize <= 0 {
		opts.SegmentSize = defaultSegmentSize
	}
	return &DB{
		opts:     opts,
		types:    map[string]*entity.Type{},
		index:    map[entity.Key][]uint64{},
		byTxn:    map[entity.Key]map[string]uint64{},
		snaps:    map[entity.Key]snapshot{},
		archived: map[entity.Key]*entity.State{},
	}
}

// Node returns the node identity of this database.
func (db *DB) Node() clock.NodeID { return db.opts.Node }

// RegisterType makes an entity type known to the database. It must be called
// before appending records of that type.
func (db *DB) RegisterType(t *entity.Type) error {
	if err := t.Validate(); err != nil {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	db.types[t.Name] = t
	return nil
}

// TypeOf returns the registered type with the given name.
func (db *DB) TypeOf(name string) (*entity.Type, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.types[name]
	return t, ok
}

// Types returns the names of all registered types, sorted.
func (db *DB) Types() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.types))
	for n := range db.types {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// AppendResult reports the outcome of an append.
type AppendResult struct {
	Record   Record
	State    *entity.State
	Warnings []entity.Warning
}

// Append writes one record: the operations one transaction applied to one
// entity. It validates the operations against the current rollup (so a
// strict-mode violation is detected at write time), assigns an LSN, and
// returns the new current state.
//
// If txnID is non-empty and has already been applied to this entity, Append
// returns ErrDuplicateTxn without writing; this gives at-least-once queue
// consumers idempotence (principles 2.4 and 3.1).
func (db *DB) Append(key entity.Key, ops []entity.Op, stamp clock.Timestamp, origin clock.NodeID, txnID string) (AppendResult, error) {
	return db.append(key, ops, stamp, origin, txnID, false)
}

// AppendTentative writes a record whose effects are tentative (principle
// 2.9). Tentative records participate in rollups until marked obsolete.
func (db *DB) AppendTentative(key entity.Key, ops []entity.Op, stamp clock.Timestamp, origin clock.NodeID, txnID string) (AppendResult, error) {
	return db.append(key, ops, stamp, origin, txnID, true)
}

func (db *DB) append(key entity.Key, ops []entity.Op, stamp clock.Timestamp, origin clock.NodeID, txnID string, tentative bool) (AppendResult, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	typ, ok := db.types[key.Type]
	if !ok {
		return AppendResult{}, fmt.Errorf("%w: %s", ErrUnknownType, key.Type)
	}
	if txnID != "" {
		if _, dup := db.byTxn[key][txnID]; dup {
			return AppendResult{}, fmt.Errorf("%w: %s on %s", ErrDuplicateTxn, txnID, key)
		}
	}
	prior := db.rollupLocked(key, typ)
	next, warnings, err := entity.Apply(typ, prior, ops, db.opts.Validation)
	if err != nil {
		return AppendResult{}, err
	}
	if tentative {
		next.Tentative = true
	}
	rec := Record{
		LSN:       db.lsn.Next(),
		Key:       key,
		Ops:       ops,
		Stamp:     stamp,
		Origin:    origin,
		TxnID:     txnID,
		Tentative: tentative,
	}
	db.appendRecordLocked(rec)
	if txnID != "" {
		if db.byTxn[key] == nil {
			db.byTxn[key] = map[string]uint64{}
		}
		db.byTxn[key][txnID] = rec.LSN
	}
	// Maintain the snapshot cache.
	if db.opts.SnapshotEvery > 0 {
		snap := db.snaps[key]
		snap.seq++
		if snap.state == nil || int(snap.seq)%db.opts.SnapshotEvery == 0 {
			db.snaps[key] = snapshot{lsn: rec.LSN, seq: snap.seq, state: next.Clone()}
		} else {
			snap.state = db.snaps[key].state
			snap.lsn = db.snaps[key].lsn
			db.snaps[key] = snapshot{lsn: snap.lsn, seq: snap.seq, state: snap.state}
		}
	}
	return AppendResult{Record: rec, State: next, Warnings: warnings}, nil
}

func (db *DB) appendRecordLocked(rec Record) {
	db.active = append(db.active, rec)
	if len(db.active) >= db.opts.SegmentSize {
		db.sealed = append(db.sealed, db.active)
		db.active = nil
	}
	db.index[rec.Key] = append(db.index[rec.Key], rec.LSN)
}

// MarkObsolete flags the record produced by txnID on key as obsolete (its
// tentative promise was withdrawn). Rollups exclude it from then on, but the
// record remains in the log for audit and apology purposes.
func (db *DB) MarkObsolete(key entity.Key, txnID string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	lsn, ok := db.byTxn[key][txnID]
	if !ok {
		return fmt.Errorf("%w: txn %s on %s", ErrNotFound, txnID, key)
	}
	rec := db.recordAtLocked(lsn)
	if rec == nil {
		return fmt.Errorf("%w: lsn %d", ErrNotFound, lsn)
	}
	rec.Obsolete = true
	// The cached snapshot may now be wrong; drop it so the next read rebuilds.
	delete(db.snaps, key)
	return nil
}

// recordAtLocked returns a pointer to the record with the given LSN, or nil
// if it was compacted away. Records within each segment are in ascending LSN
// order (compaction preserves order), so a binary search per segment works.
func (db *DB) recordAtLocked(lsn uint64) *Record {
	find := func(seg []Record) *Record {
		i := sort.Search(len(seg), func(i int) bool { return seg[i].LSN >= lsn })
		if i < len(seg) && seg[i].LSN == lsn {
			return &seg[i]
		}
		return nil
	}
	for si := range db.sealed {
		seg := db.sealed[si]
		if len(seg) == 0 || seg[len(seg)-1].LSN < lsn {
			continue
		}
		if seg[0].LSN > lsn {
			return nil
		}
		return find(seg)
	}
	return find(db.active)
}

// Current returns the rollup of an entity's records: its current state and
// the LSN of the latest record folded in.
func (db *DB) Current(key entity.Key) (*entity.State, uint64, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	typ, ok := db.types[key.Type]
	if !ok {
		return nil, 0, fmt.Errorf("%w: %s", ErrUnknownType, key.Type)
	}
	lsns := db.index[key]
	if len(lsns) == 0 && db.archived[key] == nil {
		return nil, 0, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	st := db.rollupLocked(key, typ)
	var head uint64
	if len(lsns) > 0 {
		head = lsns[len(lsns)-1]
	}
	return st, head, nil
}

// Exists reports whether any live record (or archived summary) exists for key.
func (db *DB) Exists(key entity.Key) bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.index[key]) > 0 || db.archived[key] != nil
}

// rollupLocked computes the current state of key, using the snapshot cache
// when available. Callers hold at least a read lock.
func (db *DB) rollupLocked(key entity.Key, typ *entity.Type) *entity.State {
	base := entity.NewState(key)
	if arch := db.archived[key]; arch != nil {
		base = arch.Clone()
	}
	startLSN := uint64(0)
	if snap, ok := db.snaps[key]; ok && snap.state != nil {
		base = snap.state.Clone()
		startLSN = snap.lsn
	}
	for _, lsn := range db.index[key] {
		if lsn <= startLSN {
			continue
		}
		rec := db.recordAtLocked(lsn)
		if rec == nil || rec.Obsolete {
			continue
		}
		next, _, err := entity.Apply(typ, base, rec.Ops, entity.Managed)
		if err != nil {
			// Rollup always uses managed application; an error here means a
			// malformed operation kind, which Append would have rejected.
			continue
		}
		if rec.Tentative {
			next.Tentative = true
		}
		base = next
	}
	return base
}

// AsOf returns the state of key as of the given timestamp: the rollup of all
// non-obsolete records stamped at or before ts.
func (db *DB) AsOf(key entity.Key, ts clock.Timestamp) (*entity.State, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	typ, ok := db.types[key.Type]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownType, key.Type)
	}
	lsns := db.index[key]
	if len(lsns) == 0 {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	state := entity.NewState(key)
	if arch := db.archived[key]; arch != nil {
		state = arch.Clone()
	}
	found := db.archived[key] != nil
	for _, lsn := range lsns {
		rec := db.recordAtLocked(lsn)
		if rec == nil || rec.Obsolete {
			continue
		}
		if rec.Stamp.Compare(ts) == clock.After {
			continue
		}
		next, _, err := entity.Apply(typ, state, rec.Ops, entity.Managed)
		if err != nil {
			continue
		}
		if rec.Tentative {
			next.Tentative = true
		}
		state = next
		found = true
	}
	if !found {
		return nil, fmt.Errorf("%w: %s as of %s", ErrNotFound, key, ts)
	}
	return state, nil
}

// History reconstructs the full insert-only version chain of key, including
// obsolete versions (principle 2.7: the past is never discarded, only
// summarised).
func (db *DB) History(key entity.Key) (*entity.History, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	typ, ok := db.types[key.Type]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownType, key.Type)
	}
	lsns := db.index[key]
	if len(lsns) == 0 && db.archived[key] == nil {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	h := entity.NewHistory(key)
	state := entity.NewState(key)
	if arch := db.archived[key]; arch != nil {
		state = arch.Clone()
	}
	var seq uint64
	for _, lsn := range lsns {
		rec := db.recordAtLocked(lsn)
		if rec == nil {
			continue
		}
		seq++
		v := &entity.Version{
			Key:       key,
			Seq:       seq,
			Ops:       rec.Ops,
			Stamp:     rec.Stamp,
			Origin:    rec.Origin,
			TxnID:     rec.TxnID,
			Tentative: rec.Tentative,
			Obsolete:  rec.Obsolete,
		}
		if !rec.Obsolete {
			next, _, err := entity.Apply(typ, state, rec.Ops, entity.Managed)
			if err == nil {
				if rec.Tentative {
					next.Tentative = true
				}
				state = next
			}
		}
		v.State = state
		h.Append(v)
	}
	return h, nil
}

// RecordsAfter returns all records with LSN strictly greater than after, in
// LSN order. Replication and deferred-aggregate maintenance tail the log with
// this call.
func (db *DB) RecordsAfter(after uint64) []Record {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var out []Record
	appendFrom := func(seg []Record) {
		for _, r := range seg {
			if r.LSN > after {
				out = append(out, r)
			}
		}
	}
	for _, seg := range db.sealed {
		if len(seg) > 0 && seg[len(seg)-1].LSN <= after {
			continue
		}
		appendFrom(seg)
	}
	appendFrom(db.active)
	return out
}

// RecordsFor returns all records of one entity in LSN order.
func (db *DB) RecordsFor(key entity.Key) []Record {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var out []Record
	for _, lsn := range db.index[key] {
		if rec := db.recordAtLocked(lsn); rec != nil {
			out = append(out, *rec)
		}
	}
	return out
}

// HeadLSN returns the LSN of the most recent record (0 when empty).
func (db *DB) HeadLSN() uint64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.lsn.Peek()
}

// Len returns the number of records currently retained in the log.
func (db *DB) Len() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	n := len(db.active)
	for _, seg := range db.sealed {
		n += len(seg)
	}
	return n
}

// Keys returns every entity key with retained or archived records, sorted.
func (db *DB) Keys() []entity.Key {
	db.mu.RLock()
	defer db.mu.RUnlock()
	seen := map[entity.Key]bool{}
	for k := range db.index {
		if len(db.index[k]) > 0 {
			seen[k] = true
		}
	}
	for k := range db.archived {
		seen[k] = true
	}
	out := make([]entity.Key, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// KeysOfType returns all keys of one entity type, sorted.
func (db *DB) KeysOfType(typeName string) []entity.Key {
	var out []entity.Key
	for _, k := range db.Keys() {
		if k.Type == typeName {
			out = append(out, k)
		}
	}
	return out
}

// Scan calls fn with the current state of every entity of the given type.
// Scanning stops early if fn returns false.
func (db *DB) Scan(typeName string, fn func(*entity.State) bool) error {
	if _, ok := db.TypeOf(typeName); !ok {
		return fmt.Errorf("%w: %s", ErrUnknownType, typeName)
	}
	for _, k := range db.KeysOfType(typeName) {
		st, _, err := db.Current(k)
		if err != nil {
			if errors.Is(err, ErrNotFound) {
				continue
			}
			return err
		}
		if !fn(st) {
			return nil
		}
	}
	return nil
}

// Snapshot forces a snapshot of key's current state so subsequent reads do
// not replay its history.
func (db *DB) Snapshot(key entity.Key) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	typ, ok := db.types[key.Type]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownType, key.Type)
	}
	lsns := db.index[key]
	if len(lsns) == 0 {
		return fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	st := db.rollupLocked(key, typ)
	db.snaps[key] = snapshot{lsn: lsns[len(lsns)-1], seq: uint64(len(lsns)), state: st.Clone()}
	return nil
}

// CompactStats reports what a compaction pass removed.
type CompactStats struct {
	RecordsBefore int
	RecordsAfter  int
	EntitiesKept  int
	Summarised    int
}

// Compact summarises and drops detail records up to and including beforeLSN.
// For every entity all of whose records fall at or before the horizon, the
// current rollup is stored as an archived summary (the paper's
// "summarization and archival functionality") and the detail records are
// removed. Entities with newer activity keep all their records so their
// audit trail stays complete.
func (db *DB) Compact(beforeLSN uint64) CompactStats {
	db.mu.Lock()
	defer db.mu.Unlock()
	stats := CompactStats{RecordsBefore: db.lenLocked()}
	drop := map[entity.Key]bool{}
	for key, lsns := range db.index {
		if len(lsns) == 0 {
			continue
		}
		if lsns[len(lsns)-1] <= beforeLSN {
			typ := db.types[key.Type]
			if typ == nil {
				continue
			}
			db.archived[key] = db.rollupLocked(key, typ)
			drop[key] = true
			stats.Summarised++
		} else {
			stats.EntitiesKept++
		}
	}
	if len(drop) > 0 {
		rewrite := func(seg []Record) []Record {
			out := seg[:0]
			for _, r := range seg {
				if !drop[r.Key] {
					out = append(out, r)
				}
			}
			return out
		}
		for i := range db.sealed {
			db.sealed[i] = rewrite(db.sealed[i])
		}
		db.active = rewrite(db.active)
		for key := range drop {
			delete(db.index, key)
			delete(db.snaps, key)
			delete(db.byTxn, key)
		}
	}
	stats.RecordsAfter = db.lenLocked()
	return stats
}

func (db *DB) lenLocked() int {
	n := len(db.active)
	for _, seg := range db.sealed {
		n += len(seg)
	}
	return n
}

// persistedRecord is the JSON shape of one record; operations are stored as
// a restricted form that round-trips the Op fields actually used.
type persistedRecord struct {
	LSN       uint64        `json:"lsn"`
	Key       string        `json:"key"`
	Stamp     string        `json:"stamp"`
	Origin    string        `json:"origin"`
	TxnID     string        `json:"txn,omitempty"`
	Tentative bool          `json:"tentative,omitempty"`
	Obsolete  bool          `json:"obsolete,omitempty"`
	Ops       []persistedOp `json:"ops"`
}

type persistedOp struct {
	Kind       int                    `json:"k"`
	Field      string                 `json:"f,omitempty"`
	Value      interface{}            `json:"v,omitempty"`
	Delta      float64                `json:"d,omitempty"`
	Collection string                 `json:"c,omitempty"`
	ChildID    string                 `json:"ci,omitempty"`
	ChildRow   map[string]interface{} `json:"cr,omitempty"`
	Describe   string                 `json:"desc,omitempty"`
}

// Save writes every retained record as one JSON document per line. Archived
// summaries are not persisted; callers that need them should compact after
// loading.
func (db *DB) Save(w io.Writer) error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	enc := json.NewEncoder(w)
	write := func(seg []Record) error {
		for _, r := range seg {
			pr := persistedRecord{
				LSN:       r.LSN,
				Key:       r.Key.String(),
				Stamp:     r.Stamp.String(),
				Origin:    string(r.Origin),
				TxnID:     r.TxnID,
				Tentative: r.Tentative,
				Obsolete:  r.Obsolete,
			}
			for _, op := range r.Ops {
				pr.Ops = append(pr.Ops, persistedOp{
					Kind: int(op.Kind), Field: op.Field, Value: op.Value, Delta: op.Delta,
					Collection: op.Collection, ChildID: op.ChildID, ChildRow: op.ChildRow, Describe: op.Describe,
				})
			}
			if err := enc.Encode(pr); err != nil {
				return fmt.Errorf("lsdb: save: %w", err)
			}
		}
		return nil
	}
	for _, seg := range db.sealed {
		if err := write(seg); err != nil {
			return err
		}
	}
	return write(db.active)
}

// Load replays a stream produced by Save into the database. The database
// must be freshly opened with the same entity types registered.
func (db *DB) Load(r io.Reader) error {
	dec := json.NewDecoder(r)
	for {
		var pr persistedRecord
		if err := dec.Decode(&pr); err == io.EOF {
			return nil
		} else if err != nil {
			return fmt.Errorf("lsdb: load: %w", err)
		}
		key, err := entity.ParseKey(pr.Key)
		if err != nil {
			return fmt.Errorf("lsdb: load: %w", err)
		}
		stamp, err := clock.ParseTimestamp(pr.Stamp)
		if err != nil {
			return fmt.Errorf("lsdb: load: %w", err)
		}
		ops := make([]entity.Op, 0, len(pr.Ops))
		for _, po := range pr.Ops {
			ops = append(ops, entity.Op{
				Kind: entity.OpKind(po.Kind), Field: po.Field, Value: normaliseJSON(po.Value), Delta: po.Delta,
				Collection: po.Collection, ChildID: po.ChildID, ChildRow: normaliseRow(po.ChildRow), Describe: po.Describe,
			})
		}
		db.mu.Lock()
		rec := Record{
			LSN: pr.LSN, Key: key, Ops: ops, Stamp: stamp,
			Origin: clock.NodeID(pr.Origin), TxnID: pr.TxnID,
			Tentative: pr.Tentative, Obsolete: pr.Obsolete,
		}
		db.appendRecordLocked(rec)
		db.lsn.AdvanceTo(pr.LSN)
		if pr.TxnID != "" {
			if db.byTxn[key] == nil {
				db.byTxn[key] = map[string]uint64{}
			}
			db.byTxn[key][pr.TxnID] = pr.LSN
		}
		db.mu.Unlock()
	}
}

// normaliseJSON converts JSON-decoded numbers back to the int64/float64
// split the entity layer expects.
func normaliseJSON(v interface{}) interface{} {
	if f, ok := v.(float64); ok && f == float64(int64(f)) {
		return int64(f)
	}
	return v
}

func normaliseRow(row map[string]interface{}) entity.Fields {
	if row == nil {
		return nil
	}
	out := entity.Fields{}
	for k, v := range row {
		out[k] = normaliseJSON(v)
	}
	return out
}
