package lsdb

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync/atomic"
	"testing"

	"repro/internal/entity"
	"repro/internal/lsm"
	"repro/internal/storage"
)

// TestFlushCompactionCrashMatrix is the kill-9 matrix for the tiered
// pipeline. Each case arms one breakpoint inside a flush or compaction — the
// operation aborts exactly where a crash at that site would, leaving the
// directory in the crashed shape — then the store reopens from disk and must
// prove:
//
//   - no acknowledged write is lost (every balance matches the pre-crash
//     bookkeeping, the LSN watermark is intact);
//   - orphaned artifacts are quarantined or removed, never replayed;
//   - recovery reads the newest manifest plus the WAL tail and the store
//     stays fully writable and flushable afterwards.
//
// The WAL runs SyncAlways so "acknowledged" means durable at append time —
// the clean Close before reopening adds nothing a crash would take away.
// Run under -race in CI.
func TestFlushCompactionCrashMatrix(t *testing.T) {
	cases := []struct {
		site        string
		compaction  bool // crash during CompactNow rather than Checkpoint
		wantOrphans bool // reopening must quarantine leftover *.sst files
	}{
		{site: "flush:pre-rename"},
		{site: "flush:pre-manifest", wantOrphans: true},
		{site: "compact:pre-rename", compaction: true},
		{site: "compact:pre-manifest", compaction: true, wantOrphans: true},
		{site: "compact:pre-delete", compaction: true, wantOrphans: true},
	}
	for _, tc := range cases {
		t.Run(tc.site, func(t *testing.T) {
			dir := t.TempDir()
			var armed atomic.Bool
			boom := errors.New("simulated crash")
			hooks := &lsm.Hooks{Breakpoint: func(site string) error {
				if armed.Load() && site == tc.site {
					return boom
				}
				return nil
			}}
			wal := openTestWAL(t, dir, storage.SyncAlways)
			store, err := lsm.Open(wal, lsm.Options{Dir: filepath.Join(dir, "sst"), CompactAfter: 100, Hooks: hooks})
			if err != nil {
				t.Fatal(err)
			}
			db := newTestDB(t, Options{Shards: 2, Backend: store})

			// Acked writes, with expected balances tracked on the side. A
			// withdrawn promise rides along: its MarkObsolete lands after the
			// first flush, so for compaction cases the mark is WAL-tail-only
			// while the promise is table detail.
			balances := map[string]float64{}
			write := func(id string, delta float64) {
				t.Helper()
				k := entity.Key{Type: "Account", ID: id}
				if _, err := db.Append(k, []entity.Op{entity.Delta("balance", delta)}, stamp(1), "n", ""); err != nil {
					t.Fatal(err)
				}
				balances[id] += delta
			}
			for i := 0; i < 20; i++ {
				write(fmt.Sprintf("a%d", i%5), 1)
			}
			promised := entity.Key{Type: "Account", ID: "a0"}
			if _, err := db.AppendTentative(promised, []entity.Op{entity.Delta("balance", 999)}, stamp(2), "n", "p1"); err != nil {
				t.Fatal(err)
			}

			if tc.compaction {
				// Two clean flushes build the level-0 backlog the doomed
				// compaction will merge.
				if err := db.Checkpoint(); err != nil {
					t.Fatal(err)
				}
				if err := db.MarkObsolete(promised, "p1"); err != nil {
					t.Fatal(err)
				}
				for i := 0; i < 10; i++ {
					write(fmt.Sprintf("a%d", i%5), 2)
				}
				if err := db.Checkpoint(); err != nil {
					t.Fatal(err)
				}
				armed.Store(true)
				err := store.CompactNow()
				if tc.site == "compact:pre-delete" {
					// The merge committed (manifest superseded the inputs); only
					// the input deletion was lost to the crash.
					if err != nil {
						t.Fatalf("CompactNow at %s: %v", tc.site, err)
					}
				} else if !errors.Is(err, boom) {
					t.Fatalf("CompactNow at %s: %v, want simulated crash", tc.site, err)
				}
			} else {
				if err := db.MarkObsolete(promised, "p1"); err != nil {
					t.Fatal(err)
				}
				armed.Store(true)
				if err := db.Checkpoint(); !errors.Is(err, boom) {
					t.Fatalf("Checkpoint at %s: %v, want simulated crash", tc.site, err)
				}
				if failures, reason, _ := db.CheckpointFailure(); failures == 0 || reason == "" {
					t.Fatalf("crashed flush left no breadcrumb: (%d, %q)", failures, reason)
				}
			}
			head := db.HeadLSN()
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}

			// "Reboot": reopen the stack with the breakpoint disarmed. Open
			// sweeps the crash leftovers before any replay.
			armed.Store(false)
			store2, err := lsm.Open(openTestWAL(t, dir, storage.SyncAlways),
				lsm.Options{Dir: filepath.Join(dir, "sst"), CompactAfter: 100})
			if err != nil {
				t.Fatalf("reopen after %s: %v", tc.site, err)
			}
			rec, err := Recover(Options{Node: "test-node", Shards: 2, Backend: store2},
				accountType(), orderType())
			if err != nil {
				t.Fatalf("Recover after %s: %v", tc.site, err)
			}
			if rec.HeadLSN() != head {
				t.Fatalf("LSN watermark %d after recovery, want %d", rec.HeadLSN(), head)
			}
			for id, want := range balances {
				st, _, err := rec.Current(entity.Key{Type: "Account", ID: id})
				if err != nil {
					t.Fatalf("Current(%s): %v", id, err)
				}
				if st.Fields["balance"] != want {
					t.Fatalf("%s: balance %v after crash at %s, want %v (acked write lost)",
						id, st.Fields["balance"], tc.site, want)
				}
			}

			orphans, _ := filepath.Glob(filepath.Join(dir, "sst", "*.orphaned"))
			if tc.wantOrphans && len(orphans) == 0 {
				t.Fatalf("crash at %s left no quarantined orphan", tc.site)
			}
			if !tc.wantOrphans && len(orphans) != 0 {
				t.Fatalf("unexpected orphans after %s: %v", tc.site, orphans)
			}
			if tmps, _ := filepath.Glob(filepath.Join(dir, "sst", "*.tmp")); len(tmps) != 0 {
				t.Fatalf("temp files survived recovery: %v", tmps)
			}

			// The recovered store keeps working: new writes, a clean flush and
			// a clean compaction all succeed on top of the repaired layout.
			if _, err := rec.Append(entity.Key{Type: "Account", ID: "post"},
				[]entity.Op{entity.Delta("balance", 1)}, stamp(9), "test-node", ""); err != nil {
				t.Fatal(err)
			}
			if err := rec.Checkpoint(); err != nil {
				t.Fatalf("flush after recovery: %v", err)
			}
			if err := store2.CompactNow(); err != nil {
				t.Fatalf("compaction after recovery: %v", err)
			}
			if err := rec.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
