package lsdb

import (
	"errors"
	"reflect"
	"sync"
	"testing"

	"repro/internal/entity"
	"repro/internal/storage"
)

// sinkLog collects everything a commit sink receives, in order. Its capture
// phase records the batch; the returned wait reports the configured error, so
// the tests exercise both halves of the two-phase contract.
type sinkLog struct {
	mu    sync.Mutex
	recs  []Record
	err   error
	waits uint64 // how many wait functions were invoked
}

func (s *sinkLog) sink(recs []Record) func() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.recs = append(s.recs, recs...)
	return func() error {
		s.mu.Lock()
		defer s.mu.Unlock()
		s.waits++
		return s.err
	}
}

func (s *sinkLog) all() []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Record(nil), s.recs...)
}

// The sink must see exactly what the backend does — commit cycles,
// obsolescence marks and compaction horizons, in log order — so a sink that
// appends to a second log reproduces the first.
func TestCommitSinkMirrorsBackend(t *testing.T) {
	backend := storage.NewMemory()
	var log sinkLog
	db := newTestDB(t, Options{Backend: backend, Shards: 1, CommitSink: log.sink})
	key := entity.Key{Type: "Account", ID: "A1"}
	if _, err := db.Append(key, []entity.Op{entity.Delta("balance", 10)}, stamp(1), "n", "t1"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Append(key, []entity.Op{entity.Delta("balance", 5)}, stamp(2), "n", "t2"); err != nil {
		t.Fatal(err)
	}
	if err := db.MarkObsolete(key, "t2"); err != nil {
		t.Fatal(err)
	}
	db.Compact(1)

	var backendRecs []Record
	if _, err := backend.Replay(func(rec Record) error {
		backendRecs = append(backendRecs, rec)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := log.all(); !reflect.DeepEqual(got, backendRecs) {
		t.Fatalf("sink saw %d records, backend holds %d:\nsink    %+v\nbackend %+v",
			len(got), len(backendRecs), got, backendRecs)
	}
	kinds := map[storage.RecordKind]int{}
	for _, rec := range log.all() {
		kinds[rec.Kind]++
	}
	if kinds[storage.KindAppend] != 2 || kinds[storage.KindObsolete] != 1 || kinds[storage.KindCompact] != 1 {
		t.Fatalf("sink kinds = %v, want 2 appends, 1 obsolete, 1 compact", kinds)
	}
}

// A sink failure must reach the writer — a synchronous replication mode that
// cannot reach its standbys fails the append — while the record stays
// committed locally (post-install indeterminacy, same as a backend error).
func TestCommitSinkErrorReachesWriterRecordStaysCommitted(t *testing.T) {
	log := sinkLog{err: errors.New("standby unreachable")}
	db := newTestDB(t, Options{CommitSink: log.sink})
	key := entity.Key{Type: "Account", ID: "A1"}
	if _, err := db.Append(key, []entity.Op{entity.Delta("balance", 10)}, stamp(1), "n", "t1"); !errors.Is(err, log.err) {
		t.Fatalf("append with failing sink: err = %v, want wrapped sink error", err)
	}
	st, _, err := db.Current(key)
	if err != nil || st.Float("balance") != 10 {
		t.Fatalf("record not committed locally after sink failure: %v %v", st, err)
	}
}

// Under group commit, one sink call per batch and a failure fans out to every
// writer in it.
func TestCommitSinkGroupCommitBatchFanout(t *testing.T) {
	log := sinkLog{err: errors.New("quorum lost")}
	db := newTestDB(t, Options{GroupCommit: true, Shards: 1, CommitSink: log.sink})
	const writers = 8
	errs := make(chan error, writers)
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := db.Append(entity.Key{Type: "Account", ID: "A1"},
				[]entity.Op{entity.Delta("balance", 1)}, stamp(int64(i+1)), "n", "")
			errs <- err
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if !errors.Is(err, log.err) {
			t.Fatalf("writer err = %v, want the sink error", err)
		}
	}
	st, _, err := db.Current(entity.Key{Type: "Account", ID: "A1"})
	if err != nil || st.Float("balance") != writers {
		t.Fatalf("batch not committed locally: %v %v", st, err)
	}
}

// Recover must not re-ship: the replayed records went through the sink when
// they were first written, and a promoted standby replaying its received log
// must not try to replicate it back.
func TestCommitSinkSilentDuringRecover(t *testing.T) {
	backend := storage.NewMemory()
	db := newTestDB(t, Options{Backend: backend})
	key := entity.Key{Type: "Account", ID: "A1"}
	for i := 0; i < 5; i++ {
		if _, err := db.Append(key, []entity.Op{entity.Delta("balance", 1)}, stamp(int64(i+1)), "n", ""); err != nil {
			t.Fatal(err)
		}
	}
	var log sinkLog
	rec, err := Recover(Options{Node: "test-node", Backend: backend, CommitSink: log.sink}, accountType(), orderType())
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if got := log.all(); len(got) != 0 {
		t.Fatalf("sink received %d records during recovery, want 0", len(got))
	}
	// The sink stays attached for post-recovery traffic.
	if _, err := rec.Append(key, []entity.Op{entity.Delta("balance", 1)}, stamp(10), "n", ""); err != nil {
		t.Fatal(err)
	}
	if got := log.all(); len(got) != 1 {
		t.Fatalf("sink received %d records after recovery, want 1", len(got))
	}
}

// The ack wait runs with no shard lock held: a wait that reads the store —
// as a replication barrier consulting watermarks might — must not deadlock
// against the shard lock its own commit cycle held during capture. Exercised
// on both the serial and the group-commit path; a regression here hangs the
// test rather than failing an assert.
func TestCommitSinkWaitRunsOffShardLock(t *testing.T) {
	key := entity.Key{Type: "Account", ID: "A1"}
	for _, group := range []bool{false, true} {
		var db *DB
		sink := func(recs []Record) func() error {
			return func() error {
				_, _, err := db.Current(key) // same shard as the commit
				return err
			}
		}
		db = newTestDB(t, Options{Shards: 1, GroupCommit: group, CommitSink: sink})
		if _, err := db.Append(key, []entity.Op{entity.Delta("balance", 1)}, stamp(1), "n", "t1"); err != nil {
			t.Fatalf("group=%v: %v", group, err)
		}
		if err := db.MarkObsolete(key, "t1"); err != nil {
			t.Fatalf("group=%v: MarkObsolete: %v", group, err)
		}
	}
}

// SetCommitSink late-binds the sink after Open, before the store is shared.
func TestSetCommitSinkAfterOpen(t *testing.T) {
	db := newTestDB(t, Options{})
	var log sinkLog
	db.SetCommitSink(log.sink)
	if _, err := db.Append(entity.Key{Type: "Account", ID: "A1"},
		[]entity.Op{entity.Delta("balance", 1)}, stamp(1), "n", ""); err != nil {
		t.Fatal(err)
	}
	if len(log.all()) != 1 {
		t.Fatal("late-bound sink not invoked")
	}
}
